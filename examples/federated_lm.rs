//! Federated ML (paper §3.3): train a linear model over data that never
//! leaves its sites — only aggregates (Gram matrices, gradients) travel.
//!
//! ```bash
//! cargo run --release --example federated_lm
//! ```

use std::sync::Arc;
use sysds::api::SystemDS;
use sysds::Data;
use sysds_fed::learn::{federated_lm, FederatedParamServer};
use sysds_fed::{FederatedMatrix, Transport, WorkerHandle};
use sysds_tensor::kernels::gen;

fn main() -> sysds::Result<()> {
    let (x, y) = gen::synthetic_regression(5000, 8, 1.0, 0.05, 99);

    // --- Path 1: federated instructions through a DML script -------------
    // X and y are scattered across 4 in-process sites sharing one worker
    // set; `lmDS` executes with federated tsmm/tmv instructions.
    let mut sds = SystemDS::new();
    let mut fed = sds.federate_many(&[&x, &y], 4)?;
    let fy = fed.pop().unwrap();
    let fx = fed.pop().unwrap();
    let out = sds.execute(
        "B = lmDS(X=X, y=y, reg=0.001)",
        &[("X", fx), ("y", fy)],
        &["B"],
    )?;
    let fed_model = out.matrix("B")?;

    // The same model trained centrally must agree to numerical precision.
    let central = sds.execute(
        "B = lmDS(X=X, y=y, reg=0.001)",
        &[
            ("X", Data::from_matrix(x.clone())),
            ("y", Data::from_matrix(y.clone())),
        ],
        &["B"],
    )?;
    assert!(fed_model.approx_eq(&*central.matrix("B")?, 1e-7));
    println!(
        "federated lmDS == centralized lmDS ✓ (coef[0] = {:.4})",
        fed_model.get(0, 0)
    );

    // --- Path 2: the federated API directly ------------------------------
    let workers: Vec<Arc<dyn Transport>> = (0..3)
        .map(|_| Arc::new(WorkerHandle::spawn(vec![], 2)) as Arc<dyn Transport>)
        .collect();
    let fx = FederatedMatrix::scatter(&x, &workers)?;
    let fy = FederatedMatrix::scatter(&y, &workers)?;
    let direct = federated_lm(&fx, &fy, 0.001)?;
    assert!(direct.approx_eq(&fed_model, 1e-7));
    println!(
        "federated_lm API agrees across {} sites ✓",
        fx.num_partitions()
    );

    // --- Path 3: federated parameter server (gradient exchange only) -----
    let mut ps = FederatedParamServer::new(8, 0.5, 0.0);
    let epochs = ps.train(&fx, &fy, 500, 1e-9)?;
    println!(
        "federated SGD converged in {epochs} epochs; |w - exact| = {:.2e}",
        max_abs_diff(ps.weights(), &direct)
    );
    assert!(max_abs_diff(ps.weights(), &direct) < 0.05);

    println!(
        "no raw rows ever crossed a site boundary — only {}-element aggregates",
        8
    );
    Ok(())
}

fn max_abs_diff(a: &sysds_tensor::Matrix, b: &sysds_tensor::Matrix) -> f64 {
    (0..a.rows())
        .map(|i| (a.get(i, 0) - b.get(i, 0)).abs())
        .fold(0.0, f64::max)
}
