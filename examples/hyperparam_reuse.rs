//! The paper's §4 experiment in miniature: hyper-parameter optimization
//! over the regularization constant, with and without lineage-based reuse
//! of intermediates (Figure 5(c)).
//!
//! ```bash
//! cargo run --release --example hyperparam_reuse
//! ```

use std::time::Instant;
use sysds::api::SystemDS;
use sysds_common::config::ReusePolicy;
use sysds_common::EngineConfig;
use sysds_tensor::kernels::gen;

const SCRIPT: &str = r#"
    k = 20
    B = matrix(0, rows=ncol(X), cols=k)
    for (i in 1:k) {
        reg = 0.000001 * i
        # lmDS recomputes t(X)%*%X and t(X)%*%y per model — unless the
        # lineage cache recognizes the redundancy (paper §3.1/§4.3)
        Bi = lmDS(X=X, y=y, reg=reg)
        B[, i] = Bi
    }
"#;

fn main() -> sysds::Result<()> {
    // Scaled-down version of the paper's 100K x 1K input.
    let (x, y) = gen::synthetic_regression(20_000, 200, 1.0, 0.05, 7);

    let run = |policy: ReusePolicy, label: &str| -> sysds::Result<f64> {
        let mut sds = SystemDS::with_config(EngineConfig::default().reuse_policy(policy))?;
        let inputs = vec![("X", sds.matrix(x.clone())?), ("y", sds.matrix(y.clone())?)];
        let t0 = Instant::now();
        let out = sds.execute(SCRIPT, &inputs, &["B"])?;
        let secs = t0.elapsed().as_secs_f64();
        let stats = sds.cache_stats();
        println!(
            "{label:<22} {secs:>7.3}s  (cache hits={:>3}, partial={}, misses={})",
            stats.hits, stats.partial_hits, stats.misses
        );
        assert_eq!(out.matrix("B")?.shape(), (200, 20));
        Ok(secs)
    };

    let plain = run(ReusePolicy::None, "SysDS")?;
    let reuse = run(ReusePolicy::FullAndPartial, "SysDS w/ reuse")?;
    println!("speedup from reuse: {:.2}x over k=20 models", plain / reuse);
    assert!(reuse < plain, "reuse must not be slower on this workload");
    Ok(())
}
