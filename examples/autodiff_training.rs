//! Training with automatic differentiation (paper §3.1: lineage/DAGs as
//! the enabler for auto differentiation): the loss is written as a plain
//! DML expression, the engine derives its gradient by reverse-mode
//! differentiation over the HOP DAG, and plain gradient descent recovers
//! the closed-form solution.
//!
//! ```bash
//! cargo run --release --example autodiff_training
//! ```

use sysds::api::SystemDS;
use sysds::Data;
use sysds_tensor::kernels::BinaryOp;
use sysds_tensor::kernels::{elementwise, gen, solve, tsmm};
use sysds_tensor::Matrix;

fn main() -> sysds::Result<()> {
    let (x, y) = gen::synthetic_regression(500, 5, 1.0, 0.0, 4242);
    let mut sds = SystemDS::new();

    // The loss as a declarative expression — no hand-derived gradient.
    let loss_expr = "sum((X %*% w - y) * (X %*% w - y)) / nrow(X)";

    let mut w = Matrix::zeros(5, 1);
    let lr = 0.4;
    let mut last_loss = f64::INFINITY;
    for step in 0..400 {
        let (loss, grads) = sds.gradient(
            loss_expr,
            &[
                ("X", Data::from_matrix(x.clone())),
                ("y", Data::from_matrix(y.clone())),
                ("w", Data::from_matrix(w.clone())),
            ],
            &["w"],
        )?;
        if step % 100 == 0 {
            println!("step {step:>3}: loss {loss:.6}");
        }
        let update = elementwise::binary_ms(BinaryOp::Mul, &grads[0], lr);
        w = elementwise::binary_mm(BinaryOp::Sub, &w, &update)?;
        last_loss = loss;
    }

    // Compare against the closed-form normal-equations solution.
    let gram = tsmm::tsmm(&x, 1, false);
    let rhs = tsmm::tmv(&x, &y, 1)?;
    let exact = solve::solve(&gram, &rhs)?;
    let max_diff = (0..5)
        .map(|i| (w.get(i, 0) - exact.get(i, 0)).abs())
        .fold(0.0, f64::max);
    println!("final loss {last_loss:.3e}; |w - closed_form|_max = {max_diff:.3e}");
    assert!(
        max_diff < 1e-3,
        "autodiff training must reach the exact solution"
    );
    Ok(())
}
