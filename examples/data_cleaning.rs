//! The data-integration-and-cleaning half of the lifecycle (paper §3.2):
//! raw CSV with mixed types, missing values, and outliers → schema
//! detection → imputation/winsorizing → feature transformation → training,
//! without leaving the system.
//!
//! ```bash
//! cargo run --release --example data_cleaning
//! ```

use std::sync::Arc;
use sysds::api::SystemDS;
use sysds::Data;
use sysds_frame::clean::{self, ImputeMethod, OutlierMethod};
use sysds_frame::Frame;
use sysds_frame::FrameColumn;
use sysds_io::FormatDescriptor;

fn main() -> sysds::Result<()> {
    // 1. "Ingest" a messy CSV (written here to keep the example portable).
    let dir = std::env::temp_dir().join("sysds-example-cleaning");
    std::fs::create_dir_all(&dir).map_err(|e| sysds::SysDsError::io("tmp", e))?;
    let path = dir.join("sensors.csv");
    std::fs::write(
        &path,
        "site,temp,pressure,ok,target\n\
         north,21.5,1012,TRUE,0.52\n\
         south,22.1,NA,TRUE,0.61\n\
         north,21.9,1013,FALSE,0.55\n\
         east,900.0,1011,TRUE,0.57\n\
         south,22.4,1014,TRUE,0.63\n\
         east,21.2,1012,FALSE,0.49\n\
         north,20.8,1010,TRUE,0.47\n\
         south,22.0,1013,FALSE,0.58\n",
    )
    .map_err(|e| sysds::SysDsError::io(path.display().to_string(), e))?;

    // 2. Read as a frame and detect the schema (paper L4: heterogeneous data).
    let frame = sysds_io::csv::read_frame(&path, &FormatDescriptor::csv().with_header(true))?
        .detect_schema();
    println!("detected schema: {:?}", frame.schema());

    // 3. Clean the numeric columns: impute missing pressure, clamp the
    //    temperature outlier (900 °C is a sensor glitch).
    let numeric = Frame::from_columns(vec![
        ("temp".into(), frame.column_by_name("temp")?.clone()),
        ("pressure".into(), frame.column_by_name("pressure")?.clone()),
        ("target".into(), frame.column_by_name("target")?.clone()),
    ])?;
    let m = numeric.to_matrix()?;
    let (imputed, rules) = clean::impute(&m, ImputeMethod::Mean, 0.0)?;
    println!("impute rules (column means): {rules:?}");
    let outliers = clean::detect_outliers(&imputed, OutlierMethod::Iqr(1.5))?;
    println!("outlier cells flagged: {}", outliers.nnz());
    let clean_m = clean::winsorize(&imputed, OutlierMethod::Iqr(1.5))?;

    // 4. Rebuild a frame: categorical site + cleaned numerics.
    let mut cleaned = Frame::new();
    cleaned.push_column("site", frame.column_by_name("site")?.clone())?;
    for (j, name) in ["temp", "pressure", "target"].iter().enumerate() {
        let col: Vec<f64> = (0..clean_m.rows()).map(|i| clean_m.get(i, j)).collect();
        cleaned.push_column(*name, FrameColumn::F64(col))?;
    }

    // 5. Encode + train in one declarative script: the encoder state is
    //    itself data ("rules as tensors"), and lmDS trains on the result.
    let mut sds = SystemDS::new();
    sds.echo_stdout(true);
    let out = sds.execute(
        r#"
        [E, Meta] = transformencode(target=F, spec="dummy=site")
        d = ncol(E)
        X = E[, 1:(d - 1)]
        y = E[, d]
        B = lmDS(X=X, y=y, reg=0.0001)
        err = mse(yhat=lmPredict(X=X, B=B), y=y)
        print("clean-data training mse: " + err)
        "#,
        &[("F", Data::Frame(Arc::new(cleaned)))],
        &["B", "err"],
    )?;
    println!("model coefficients: {:?}", out.matrix("B")?.to_vec());
    assert!(out.f64("err")? < 0.01);
    Ok(())
}
