//! Quickstart: train a ridge-regression model with a declarative DML
//! script and inspect the result.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use sysds::api::SystemDS;

fn main() -> sysds::Result<()> {
    let mut sds = SystemDS::new();
    sds.echo_stdout(true);

    // A full DML script: generate data, train with the lmDS builtin
    // (paper Figure 2), and evaluate training error.
    let out = sds.execute(
        r#"
        # synthetic regression problem
        X = rand(rows=1000, cols=10, min=0, max=1, seed=42)
        w = rand(rows=10, cols=1, min=-1, max=1, seed=43)
        y = X %*% w + 0.01 * rand(rows=1000, cols=1, min=-1, max=1, seed=44)

        # declarative model training: the compiler fuses t(X)%*%X into a
        # single tsmm instruction and picks local vs distributed operators
        B = lmDS(X=X, y=y, reg=0.001)

        # evaluation
        yhat = lmPredict(X=X, B=B)
        err = mse(yhat=yhat, y=y)
        print("training mse: " + err)
        print("first coefficient: " + as.scalar(B[1, 1]))
        "#,
        &[],
        &["B", "err"],
    )?;

    let b = out.matrix("B")?;
    println!("model shape: {}x{}", b.rows(), b.cols());
    println!("mse from Rust: {:.6}", out.f64("err")?);
    assert!(
        out.f64("err")? < 1e-3,
        "the model must fit the synthetic data"
    );
    Ok(())
}
