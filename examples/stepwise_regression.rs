//! The paper's Example 1: stepwise linear regression (`steplm`) — greedy
//! forward feature selection by AIC, with what-if model training in a
//! `parfor` and lineage-based partial reuse of `t(Xg)%*%Xg` across the
//! candidate evaluations.
//!
//! ```bash
//! cargo run --release --example stepwise_regression
//! ```

use std::time::Instant;
use sysds::api::SystemDS;
use sysds::Data;
use sysds_common::config::ReusePolicy;
use sysds_common::EngineConfig;
use sysds_tensor::kernels::BinaryOp;
use sysds_tensor::kernels::{elementwise, gen, indexing};

fn main() -> sysds::Result<()> {
    // Build a dataset where only 3 of 25 features matter.
    let n = 2000;
    let m = 25;
    let x = gen::rand_uniform(n, m, -1.0, 1.0, 1.0, 7);
    let f3 = indexing::column(&x, 2)?;
    let f11 = indexing::column(&x, 10)?;
    let f19 = indexing::column(&x, 18)?;
    let mut y = elementwise::binary_ms(BinaryOp::Mul, &f3, 4.0);
    y = elementwise::binary_mm(
        BinaryOp::Add,
        &y,
        &elementwise::binary_ms(BinaryOp::Mul, &f11, -3.0),
    )?;
    y = elementwise::binary_mm(
        BinaryOp::Add,
        &y,
        &elementwise::binary_ms(BinaryOp::Mul, &f19, 2.0),
    )?;

    let script = "[B, S] = steplm(X=X, y=y, reg=0.000001)";

    // Without reuse (stats on, to show the fused cell-wise pipelines).
    let mut plain = SystemDS::with_config(EngineConfig::default().stats(true))?;
    let t0 = Instant::now();
    let out = plain.execute(
        script,
        &[
            ("X", Data::from_matrix(x.clone())),
            ("y", Data::from_matrix(y.clone())),
        ],
        &["B", "S"],
    )?;
    let t_plain = t0.elapsed();

    // With lineage-based full + partial reuse (paper §3.1).
    let mut reuse =
        SystemDS::with_config(EngineConfig::default().reuse_policy(ReusePolicy::FullAndPartial))?;
    let t0 = Instant::now();
    let out_r = reuse.execute(
        script,
        &[("X", Data::from_matrix(x)), ("y", Data::from_matrix(y))],
        &["B", "S"],
    )?;
    let t_reuse = t0.elapsed();

    let sel = out.matrix("S")?;
    let selected: Vec<usize> = (0..25)
        .filter(|&j| sel.get(0, j) != 0.0)
        .map(|j| j + 1)
        .collect();
    println!("selected features (1-based): {selected:?}");
    assert!(selected.contains(&3) && selected.contains(&11) && selected.contains(&19));

    // Both runs agree exactly.
    assert!(out.matrix("S")?.approx_eq(&*out_r.matrix("S")?, 0.0));
    let stats = reuse.cache_stats();
    println!(
        "steplm: {:>8.1?} without reuse, {:>8.1?} with reuse (hits={}, partial={})",
        t_plain, t_reuse, stats.hits, stats.partial_hits
    );

    // The residual chains (`sum(ri * ri)` over `ri = y - Xi %*% Bi`) compile
    // to fused templates; the counters prove the pipelines actually fired.
    let report = plain.run_report();
    println!(
        "fused cell-wise pipelines: {} hits, {} bytes of intermediates avoided",
        report.counters.fusion_hits, report.counters.fusion_bytes_saved
    );
    assert!(report.counters.fusion_hits > 0);
    Ok(())
}
