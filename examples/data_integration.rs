//! Data integration (paper §3.2): two heterogeneous sources with
//! mismatched schemas and dirty keys are aligned, entity-linked, joined,
//! and fed into model training — the "integration" box of Figure 1.
//!
//! ```bash
//! cargo run --release --example data_integration
//! ```

use std::sync::Arc;
use sysds::api::SystemDS;
use sysds::Data;
use sysds_frame::link::{align_schemas, join_linked, link_entities};
use sysds_frame::{Frame, FrameColumn};

fn main() -> sysds::Result<()> {
    // Source A: a CRM export.
    let crm = Frame::from_columns(vec![
        (
            "customer_name".into(),
            FrameColumn::Str(vec![
                "Alice Johnson".into(),
                "Bob Smith".into(),
                "Carol Diaz".into(),
                "Dan Brown".into(),
                "Eve Adams".into(),
            ]),
        ),
        ("Age".into(), FrameColumn::I64(vec![34, 45, 29, 52, 41])),
        (
            "tenure_years".into(),
            FrameColumn::F64(vec![3.0, 8.0, 1.5, 12.0, 6.0]),
        ),
    ])?;

    // Source B: a billing system with its own conventions and typos.
    let billing = Frame::from_columns(vec![
        (
            "CustomerName".into(),
            FrameColumn::Str(vec![
                "Bob Smyth".into(), // typo
                "Eve Adams".into(),
                "Alice Jonson".into(), // typo
                "Frank Green".into(),  // no CRM record
                "Carol Diaz".into(),
            ]),
        ),
        (
            "age".into(),
            FrameColumn::F64(vec![45.0, 41.0, 34.0, 63.0, 29.0]),
        ),
        // spend follows 2*age + 10*tenure for the real customers, so the
        // integrated model can fit exactly (Frank's value is arbitrary).
        (
            "monthly_spend".into(),
            FrameColumn::F64(vec![170.0, 142.0, 98.0, 90.0, 73.0]),
        ),
    ])?;

    // 1. Schema alignment: propose column matches for human review.
    println!("proposed schema alignment:");
    for m in align_schemas(&crm, &billing, 0.6) {
        println!(
            "  {:<15} ↔ {:<15} (name sim {:.2}, types {})",
            m.left,
            m.right,
            m.name_similarity,
            if m.types_compatible {
                "compatible"
            } else {
                "INCOMPATIBLE"
            }
        );
    }

    // 2. Entity linking across dirty keys.
    let links = link_entities(&crm, "customer_name", &billing, "CustomerName", 0.75)?;
    println!("\nlinked {} of {} CRM customers:", links.len(), crm.rows());
    for l in &links {
        println!(
            "  {:<15} ↔ {:<15} (score {:.2})",
            crm.get(l.left_row, 0)?.to_display_string(),
            billing.get(l.right_row, 0)?.to_display_string(),
            l.score
        );
    }
    assert_eq!(links.len(), 4, "Frank Green has no CRM record");

    // 3. Join the linked entities and train within one DML script:
    //    predict monthly spend from age and tenure.
    let joined = join_linked(&crm, &billing, &links)?;
    let mut sds = SystemDS::new();
    sds.echo_stdout(true);
    let out = sds.execute(
        r#"
        [E, M] = transformencode(target=F, spec="recode=customer_name,CustomerName")
        d = ncol(E)
        X = cbind(E[, 2:3], matrix(1, rows=nrow(E), cols=1))  # Age, tenure, icpt
        y = E[, d]                                            # monthly_spend
        B = lmDS(X=X, y=y, reg=0.0001)
        err = mse(yhat=lmPredict(X=X, B=B), y=y)
        print("integrated-data training mse: " + err)
        "#,
        &[("F", Data::Frame(Arc::new(joined)))],
        &["B", "err"],
    )?;
    // 4 rows, 3 coefficients: near-perfect fit expected.
    assert!(out.f64("err")? < 1e-6, "mse {}", out.f64("err")?);
    println!("spend model: {:?}", out.matrix("B")?.to_vec());
    Ok(())
}
