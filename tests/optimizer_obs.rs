//! Integration tests for optimizer observability through the `sysds` CLI:
//! `--explain hops|runtime` plan dumps, the estimate-vs-actual audit with
//! recompile-trigger attribution in `--stats`, and `--chrome-trace` export.

use std::collections::BTreeSet;
use std::process::Command;

fn sysds_bin() -> &'static str {
    env!("CARGO_BIN_EXE_sysds")
}

fn temp_dir() -> std::path::PathBuf {
    let dir = sysds_common::testing::unique_temp_dir("sysds-optobs-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_script(name: &str, content: &str) -> std::path::PathBuf {
    let p = temp_dir().join(format!("{name}-{}.dml", std::process::id()));
    std::fs::write(&p, content).unwrap();
    p
}

/// Multi-block script: a generic block, an if, and a trailing block.
const MULTI_BLOCK: &str = r#"
X = rand(rows=100, cols=10, seed=1)
G = t(X) %*% X
if (sum(G) > 0) { Z = G + 1 } else { Z = G - 1 }
print("z = " + sum(Z))
"#;

#[test]
fn explain_hops_renders_sizes_and_exec_types() {
    let p = write_script("explain-hops", MULTI_BLOCK);
    let out = Command::new(sysds_bin())
        .args(["run", p.to_str().unwrap(), "--explain", "hops"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("EXPLAIN (HOPS):"), "{err}");
    assert!(err.contains("MAIN PROGRAM"), "{err}");
    // Block structure: generic blocks plus the if with its predicate.
    assert!(err.contains("GENERIC block"), "{err}");
    assert!(err.contains("IF block"), "{err}");
    assert!(err.contains("predicate:"), "{err}");
    // Per-HOP propagated dims, sparsity, memory estimate, exec type.
    assert!(err.contains("tsmm"), "{err}");
    assert!(err.contains("[100x10"), "{err}");
    assert!(err.contains("10x10"), "{err}");
    assert!(err.contains("sp="), "{err}");
    assert!(err.contains("mem="), "{err}");
    assert!(err.contains("] CP"), "{err}");
    // The script still executed after explaining.
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("z = "),
        "{err}"
    );
}

#[test]
fn explain_runtime_lists_lowered_instructions() {
    let p = write_script("explain-runtime", MULTI_BLOCK);
    let out = Command::new(sysds_bin())
        .args(["run", p.to_str().unwrap(), "--explain", "runtime"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("EXPLAIN (RUNTIME):"), "{err}");
    // Slot-numbered instruction lines with exec type and opcode.
    assert!(err.contains("[0] CP"), "{err}");
    assert!(err.contains("CP tsmm"), "{err}");
    assert!(err.contains("in=["), "{err}");
    // Bare --explain still works and defaults to the HOP view.
    let out = Command::new(sysds_bin())
        .args(["run", p.to_str().unwrap(), "--explain"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("EXPLAIN (HOPS):"), "{err}");
}

#[test]
fn stats_report_audits_estimates_and_attributes_recompiles() {
    // `rows=i*10` is unknown at compile time: every iteration lowers with
    // unknowns, so iterations 2..3 recompile the body block, attributed to
    // the unknown-dims trigger. The audit table fills with per-opcode
    // estimate-vs-actual rows from the executed matrix instructions.
    let p = write_script(
        "audit-recompile",
        r#"
s = 0
for (i in 1:3) {
  M = matrix(1, rows=i*10, cols=4)
  s = s + sum(M)
}
print("s = " + s)
"#,
    );
    let out = Command::new(sysds_bin())
        .args(["run", p.to_str().unwrap(), "--stats"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    // Estimate-vs-actual audit table is present and non-empty: the header
    // plus at least one opcode row ('matrix' ran with unknown estimates).
    assert!(err.contains("Estimate vs actual"), "{err}");
    assert!(err.contains("Opcode"), "{err}");
    assert!(err.contains("matrix"), "{err}");
    // Recompiles happened and are attributed to their trigger.
    let recompiles: u64 = err
        .lines()
        .find_map(|l| l.strip_prefix("Recompiles: "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("no recompile count in: {err}"));
    assert!(recompiles >= 2, "expected >=2 recompiles: {err}");
    assert!(err.contains("Recompile triggers:"), "{err}");
    let triggers = err
        .lines()
        .find(|l| l.contains("Recompile triggers:"))
        .unwrap();
    assert!(triggers.contains("unknown dims"), "{triggers}");
    assert!(!triggers.contains("unknown dims 0,"), "{triggers}");
}

#[test]
fn chrome_trace_exports_valid_events_with_worker_tids() {
    let p = write_script(
        "chrome-trace",
        r#"
X = rand(rows=30, cols=5, seed=1)
Y = t(X) %*% X
s = 0
parfor (i in 1:4) { s = i + sum(Y) }
print("s = " + s)
"#,
    );
    let trace = temp_dir().join(format!("chrome-{}.json", std::process::id()));
    let out = Command::new(sysds_bin())
        .args([
            "run",
            p.to_str().unwrap(),
            "--threads",
            "4",
            "--chrome-trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("chrome trace written"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let body = std::fs::read_to_string(&trace).unwrap();
    let events = sysds_obs::parse_events(&body)
        .unwrap_or_else(|| panic!("chrome trace is not valid trace_event JSON: {body}"));
    assert!(!events.is_empty(), "trace must contain events");

    // Every event carries the required trace_event fields; complete
    // events ("X") additionally carry a duration.
    for ev in &events {
        assert!(
            matches!(ev.ph.as_str(), "X" | "i" | "M"),
            "unexpected phase {ev:?}"
        );
        assert_eq!(ev.pid, sysds_obs::chrome_trace::TRACE_PID, "{ev:?}");
        if ev.ph == "X" {
            assert!(ev.dur.is_some(), "complete event without dur: {ev:?}");
            assert!(ev.ts >= 0.0, "{ev:?}");
        }
    }
    assert!(events.iter().any(|e| e.ph == "X"));

    // Compiler phases and instructions appear by name.
    let names: BTreeSet<&str> = events.iter().map(|e| e.name.as_str()).collect();
    assert!(names.contains("parse"), "names: {names:?}");
    assert!(names.contains("tsmm"), "names: {names:?}");

    // Parfor workers appear as four distinct synthetic tids.
    let base = sysds_obs::chrome_trace::WORKER_TID_BASE;
    let worker_tids: BTreeSet<u64> = events
        .iter()
        .filter(|e| e.ph == "X" && e.tid >= base && e.tid < base + 64)
        .map(|e| e.tid)
        .collect();
    assert_eq!(
        worker_tids,
        (base..base + 4).collect::<BTreeSet<u64>>(),
        "events: {events:?}"
    );

    // Worker threads are labelled via thread_name metadata.
    assert!(
        events
            .iter()
            .any(|e| e.ph == "M" && e.arg_name.as_deref() == Some("worker-0")),
        "missing worker thread_name metadata"
    );

    let _ = std::fs::remove_file(&trace);
}
