//! Integration tests for the `sysds` command-line launcher.

use std::process::Command;

fn sysds_bin() -> &'static str {
    env!("CARGO_BIN_EXE_sysds")
}

fn write_script(name: &str, content: &str) -> std::path::PathBuf {
    let dir = sysds_common::testing::unique_temp_dir("sysds-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!("{name}-{}.dml", std::process::id()));
    std::fs::write(&p, content).unwrap();
    p
}

#[test]
fn runs_a_script_and_prints() {
    let p = write_script("hello", r#"print("hello from dml: " + (2 + 3))"#);
    let out = Command::new(sysds_bin())
        .args(["run", p.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("hello from dml: 5"));
}

#[test]
fn argument_substitution() {
    let p = write_script("args", r#"print("n = " + sum(matrix(1, rows=$N, cols=1)))"#);
    let out = Command::new(sysds_bin())
        .args(["run", p.to_str().unwrap(), "--arg", "N=7"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("n = 7"));
}

#[test]
fn stats_and_explain_flags() {
    let p = write_script(
        "stats",
        r#"
        X = rand(rows=200, cols=20, seed=1)
        y = rand(rows=200, cols=1, seed=2)
        for (i in 1:3) { B = lmDS(X=X, y=y, reg=0.001 * i) }
        "#,
    );
    let out = Command::new(sysds_bin())
        .args([
            "run",
            p.to_str().unwrap(),
            "--reuse",
            "--stats",
            "--explain",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("compiled program"), "{err}");
    assert!(err.contains("EXPLAIN (HOPS):"), "{err}");
    assert!(err.contains("Lineage cache:"), "{err}");
    assert!(err.contains("Heavy hitter instructions:"), "{err}");
}

#[test]
fn script_errors_set_exit_code() {
    let p = write_script("bad", "x = undefined_variable + 1");
    let out = Command::new(sysds_bin())
        .args(["run", p.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("undefined_variable"));
}

#[test]
fn missing_script_reported() {
    let out = Command::new(sysds_bin())
        .args(["run", "/nonexistent/script.dml"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn usage_on_bad_invocation() {
    let out = Command::new(sysds_bin())
        .arg("frobnicate")
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn stop_statement_exit_code() {
    let p = write_script("stop", r#"stop("refusing to continue")"#);
    let out = Command::new(sysds_bin())
        .args(["run", p.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("refusing to continue"));
}
