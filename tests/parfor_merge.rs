#![allow(clippy::field_reassign_with_default)]

//! Regression tests for parfor result merge ordering and worker failure
//! handling.
//!
//! Iterations are dealt round-robin across workers (iteration k runs on
//! worker k % workers), so the worker owning the lexically LAST iteration
//! is `(n - 1) % workers` — not the last-spawned worker. These tests pin
//! that down with an iteration count that is not a multiple of the worker
//! count: with 6 iterations on 4 threads the last iteration (i=6) runs on
//! worker 1, while the buggy "take the last worker" merge would have
//! returned worker 3's final value (i=4).

use sysds::api::SystemDS;
use sysds_common::{EngineConfig, ScalarValue, SysDsError};

fn session(threads: usize) -> SystemDS {
    let mut config = EngineConfig::default();
    config.num_threads = threads;
    config.spill_dir = sysds_common::testing::unique_temp_dir("sysds-parfor-merge-tests");
    SystemDS::with_config(config).unwrap()
}

#[test]
fn scalar_accumulator_takes_lexically_last_iteration() {
    let mut s = session(4);
    let out = s
        .execute(
            r#"
            acc = 0
            parfor (i in 1:6) { acc = i }
            "#,
            &[],
            &["acc"],
        )
        .unwrap();
    // Sequential semantics: the last iteration (i=6) wins. The old merge
    // read the last worker's table, which held i=4.
    assert_eq!(out.scalar("acc").unwrap(), ScalarValue::I64(6));
}

#[test]
fn shape_changing_write_takes_lexically_last_iteration() {
    let mut s = session(4);
    let out = s
        .execute(
            r#"
            R = matrix(0, rows=1, cols=1)
            parfor (i in 1:6) { R = matrix(i, rows=i, cols=1) }
            "#,
            &[],
            &["R"],
        )
        .unwrap();
    let r = out.matrix("R").unwrap();
    // i=6 produced a 6x1 matrix of sixes; worker 3's last write was 4x1.
    assert_eq!(r.shape(), (6, 1));
    assert_eq!(r.get(0, 0), 6.0);
    assert_eq!(r.get(5, 0), 6.0);
}

#[test]
fn merge_matches_sequential_for_loop() {
    // The same body run with `for` and `parfor` must agree, including a
    // scalar carried out of the loop.
    let script = |kw: &str| {
        format!(
            r#"
            B = matrix(0, rows=2, cols=7)
            last = 0
            {kw} (i in 1:7) {{
                B[, i] = matrix(i * i, rows=2, cols=1)
                last = i * 10
            }}
            total = sum(B)
            "#
        )
    };
    let mut seq = session(1);
    let mut par = session(4);
    let a = seq
        .execute(&script("for"), &[], &["total", "last"])
        .unwrap();
    let b = par
        .execute(&script("parfor"), &[], &["total", "last"])
        .unwrap();
    assert_eq!(a.f64("total").unwrap(), b.f64("total").unwrap());
    assert_eq!(a.f64("last").unwrap(), 70.0);
    assert_eq!(b.f64("last").unwrap(), 70.0);
}

#[test]
fn stop_inside_parfor_surfaces_as_error() {
    let mut s = session(4);
    let err = s
        .execute(
            r#"
            parfor (i in 1:8) {
                if (i == 3) { stop("worker failure at " + i) }
            }
            "#,
            &[],
            &[],
        )
        .unwrap_err();
    // stop() must surface as a structured error from the owning worker —
    // not abort the process or poison the other workers.
    match err {
        SysDsError::Stop(msg) => assert!(msg.contains("worker failure at 3"), "{msg}"),
        other => panic!("expected Stop error, got: {other}"),
    }
}

#[test]
fn session_usable_after_parfor_error() {
    let mut s = session(4);
    let _ = s
        .execute(r#"parfor (i in 1:4) { stop("boom") }"#, &[], &[])
        .unwrap_err();
    // The engine must stay usable after a failed parfor.
    let out = s.execute("x = 1 + 1", &[], &["x"]).unwrap();
    assert_eq!(out.f64("x").unwrap(), 2.0);
}
