//! Tier-1 replay of the committed conformance corpus.
//!
//! Every `.dml` under `tests/corpus/` is a self-contained repro written by
//! the fuzzing harness (`sysds fuzz`): either a minimized diverging seed
//! (committed as a regression test after the fix) or a feature-diverse
//! passing sample. Each entry re-runs the full differential configuration
//! matrix on every build, so a reintroduced divergence fails `cargo test`.

use std::path::PathBuf;
use sysds_conformance::corpus;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

#[test]
fn corpus_is_populated() {
    let entries = corpus::list_entries(&corpus_dir()).expect("corpus dir exists");
    assert!(
        entries.len() >= 10,
        "expected at least 10 corpus entries, found {}",
        entries.len()
    );
}

#[test]
fn corpus_includes_federated_entries() {
    let entries = corpus::list_entries(&corpus_dir()).unwrap();
    let fed = entries
        .iter()
        .filter(|p| corpus::load_entry(p).unwrap().fed_input.is_some())
        .count();
    assert!(fed >= 1, "no federated corpus entries committed");
}

#[test]
fn every_entry_parses_with_metadata() {
    for path in corpus::list_entries(&corpus_dir()).unwrap() {
        let script = corpus::load_entry(&path)
            .unwrap_or_else(|e| panic!("{} failed to parse: {e}", path.display()));
        assert!(
            !script.outputs.is_empty(),
            "{} has no compared outputs",
            path.display()
        );
        assert!(
            !script.render().trim().is_empty(),
            "{} has an empty body",
            path.display()
        );
    }
}

#[test]
fn every_entry_replays_green_across_the_config_matrix() {
    for path in corpus::list_entries(&corpus_dir()).unwrap() {
        let script = corpus::load_entry(&path).unwrap();
        let divergence = sysds_conformance::check_script(&script)
            .unwrap_or_else(|e| panic!("{} failed to execute: {e}", path.display()));
        assert!(
            divergence.is_none(),
            "{} diverged: {}",
            path.display(),
            divergence.unwrap().render()
        );
    }
}
