#![allow(clippy::field_reassign_with_default)]

//! "Besides reuse, this approach also ensures consistency across local and
//! distributed operations" (paper §2.3 (4)) — the same script must produce
//! the same result on the CP backend, the simulated distributed backend
//! (forced by a tiny memory budget), and over federated inputs.

use sysds::api::SystemDS;
use sysds::Data;
use sysds_common::EngineConfig;
use sysds_tensor::kernels::gen;

fn local_session() -> SystemDS {
    let mut config = EngineConfig::default();
    config.spill_dir = sysds_common::testing::unique_temp_dir("sysds-backend-tests");
    SystemDS::with_config(config).unwrap()
}

fn dist_session() -> SystemDS {
    // A tiny memory budget pushes every sizeable operation to the
    // distributed backend; a small block size exercises tiling.
    let mut config = EngineConfig::default().budget(4 * 1024);
    config.block_size = 32;
    config.spill_dir = sysds_common::testing::unique_temp_dir("sysds-backend-tests");
    SystemDS::with_config(config).unwrap()
}

const SCRIPT: &str = r#"
    G = t(X) %*% X
    s = sum(G)
    P = X %*% B
    E = (P - y) * (P - y)
    err = sum(E)
"#;

#[test]
fn local_and_distributed_agree() {
    let (x, y) = gen::synthetic_regression(150, 12, 1.0, 0.1, 801);
    let b = gen::rand_uniform(12, 1, -1.0, 1.0, 1.0, 802);
    let inputs = vec![
        ("X", Data::from_matrix(x)),
        ("y", Data::from_matrix(y)),
        ("B", Data::from_matrix(b)),
    ];
    let mut local = local_session();
    let lout = local.execute(SCRIPT, &inputs, &["G", "s", "err"]).unwrap();
    let mut dist = dist_session();
    let dout = dist.execute(SCRIPT, &inputs, &["G", "s", "err"]).unwrap();
    assert!(lout
        .matrix("G")
        .unwrap()
        .approx_eq(&dout.matrix("G").unwrap(), 1e-8));
    assert!((lout.f64("s").unwrap() - dout.f64("s").unwrap()).abs() < 1e-6);
    assert!((lout.f64("err").unwrap() - dout.f64("err").unwrap()).abs() < 1e-6);
}

#[test]
fn sparse_script_on_both_backends() {
    let x = gen::rand_uniform(200, 30, -1.0, 1.0, 0.1, 803).compact();
    assert!(x.is_sparse());
    let inputs = vec![("X", Data::from_matrix(x))];
    let script = "G = t(X) %*% X\ntotal = sum(G)";
    let mut local = local_session();
    let mut dist = dist_session();
    let l = local.execute(script, &inputs, &["total"]).unwrap();
    let d = dist.execute(script, &inputs, &["total"]).unwrap();
    assert!((l.f64("total").unwrap() - d.f64("total").unwrap()).abs() < 1e-7);
}

#[test]
fn federated_tsmm_inside_script_matches_local() {
    let (x, _) = gen::synthetic_regression(120, 8, 1.0, 0.0, 804);
    let mut s = local_session();
    let fed = s.federate(&x, 3).unwrap();
    let script = "G = t(X) %*% X";
    let fout = s.execute(script, &[("X", fed)], &["G"]).unwrap();
    let lout = s
        .execute(script, &[("X", Data::from_matrix(x))], &["G"])
        .unwrap();
    assert!(fout
        .matrix("G")
        .unwrap()
        .approx_eq(&lout.matrix("G").unwrap(), 1e-9));
}

#[test]
fn federated_lm_via_script_matches_local_lm() {
    let (x, y) = gen::synthetic_regression(100, 5, 1.0, 0.05, 805);
    let mut s = local_session();
    // X and y must live on the SAME worker set so federated instructions
    // can combine them site-locally (t(X_i) y_i never moves rows).
    let mut fed = s.federate_many(&[&x, &y], 2).unwrap();
    let fy = fed.pop().unwrap();
    let fx = fed.pop().unwrap();
    let script = "B = lmDS(X=X, y=y, reg=0.001)";
    let fout = s.execute(script, &[("X", fx), ("y", fy)], &["B"]).unwrap();
    let lout = s
        .execute(
            script,
            &[("X", Data::from_matrix(x)), ("y", Data::from_matrix(y))],
            &["B"],
        )
        .unwrap();
    assert!(fout
        .matrix("B")
        .unwrap()
        .approx_eq(&lout.matrix("B").unwrap(), 1e-7));
}

#[test]
fn federated_scalar_and_colsums_ops() {
    let (x, _) = gen::synthetic_regression(60, 4, 1.0, 0.0, 806);
    let mut s = local_session();
    let fed = s.federate(&x, 3).unwrap();
    let script = r#"
        Z = X * 2
        cs = colSums(Z)
        total = sum(Z)
    "#;
    let fout = s.execute(script, &[("X", fed)], &["cs", "total"]).unwrap();
    let lout = s
        .execute(script, &[("X", Data::from_matrix(x))], &["cs", "total"])
        .unwrap();
    assert!(fout
        .matrix("cs")
        .unwrap()
        .approx_eq(&lout.matrix("cs").unwrap(), 1e-9));
    assert!((fout.f64("total").unwrap() - lout.f64("total").unwrap()).abs() < 1e-9);
}

#[test]
fn paramserver_matches_closed_form() {
    use sysds::runtime::paramserver::{train_linreg, PsConfig, UpdateMode};
    let (x, y) = gen::synthetic_regression(250, 4, 1.0, 0.0, 807);
    let w = train_linreg(
        &x,
        &y,
        &PsConfig {
            workers: 4,
            epochs: 400,
            batch_size: 32,
            learning_rate: 0.5,
            mode: UpdateMode::Bsp,
        },
    )
    .unwrap();
    // closed form through a DML script on the same session
    let mut s = local_session();
    let out = s
        .execute(
            "B = lmDS(X=X, y=y, reg=0.0)",
            &[("X", Data::from_matrix(x)), ("y", Data::from_matrix(y))],
            &["B"],
        )
        .unwrap();
    assert!(w.approx_eq(&out.matrix("B").unwrap(), 5e-2));
}

#[test]
fn buffer_pool_pressure_does_not_change_results() {
    // A tiny buffer pool forces eviction/restore cycles mid-script.
    let mut config = EngineConfig::default();
    config.buffer_pool_limit = 64 * 1024; // 64 KB
    config.spill_dir = sysds_common::testing::unique_temp_dir("sysds-backend-tests-pool");
    let mut tight = SystemDS::with_config(config).unwrap();
    let mut roomy = local_session();
    let script = r#"
        A = rand(rows=200, cols=60, seed=5)
        B = rand(rows=60, cols=50, seed=6)
        C = A %*% B
        D = t(C) %*% C
        total = sum(D)
    "#;
    let t = tight.execute(script, &[], &["total"]).unwrap();
    let r = roomy.execute(script, &[], &["total"]).unwrap();
    let (tv, rv) = (t.f64("total").unwrap(), r.f64("total").unwrap());
    assert!((tv - rv).abs() < 1e-9 * rv.abs().max(1.0), "{tv} vs {rv}");
}
