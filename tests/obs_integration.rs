//! Integration tests for the observability subsystem through the `sysds`
//! CLI: `--stats` report rendering and `--trace FILE` JSONL span export.

use std::collections::BTreeSet;
use std::process::Command;
use sysds_obs::{parse_record, TraceRecord};

fn sysds_bin() -> &'static str {
    env!("CARGO_BIN_EXE_sysds")
}

fn temp_dir() -> std::path::PathBuf {
    let dir = sysds_common::testing::unique_temp_dir("sysds-obs-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_script(name: &str, content: &str) -> std::path::PathBuf {
    let p = temp_dir().join(format!("{name}-{}.dml", std::process::id()));
    std::fs::write(&p, content).unwrap();
    p
}

const SCRIPT: &str = r#"
X = rand(rows=30, cols=5, seed=1)
Y = t(X) %*% X
s = 0
parfor (i in 1:4) { s = i + sum(Y) }
print("s = " + s)
"#;

#[test]
fn stats_flag_prints_full_report() {
    let p = write_script("stats-report", SCRIPT);
    let out = Command::new(sysds_bin())
        .args(["run", p.to_str().unwrap(), "--stats", "--threads", "4"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    // The three mandatory report sections.
    assert!(err.contains("Heavy hitter instructions:"), "{err}");
    assert!(err.contains("Buffer pool:"), "{err}");
    assert!(err.contains("Lineage cache:"), "{err}");
    // Instructions actually executed, so the table must have rows.
    assert!(!err.contains("(none recorded)"), "{err}");
    assert!(err.contains("Instruction"), "{err}");
    // Compiler phases recorded time too.
    assert!(err.contains("Compiler phases:"), "{err}");
    assert!(err.contains("parse"), "{err}");
    // Parfor ran, so worker counters must be reported.
    assert!(err.contains("Parfor: 4 workers"), "{err}");
}

#[test]
fn trace_flag_writes_parseable_jsonl_spans() {
    let p = write_script("trace-spans", SCRIPT);
    let trace = temp_dir().join(format!("trace-{}.jsonl", std::process::id()));
    let out = Command::new(sysds_bin())
        .args([
            "run",
            p.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
            "--threads",
            "4",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let body = std::fs::read_to_string(&trace).unwrap();
    let records: Vec<TraceRecord> = body
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| parse_record(l).unwrap_or_else(|| panic!("unparseable trace line: {l}")))
        .collect();
    assert!(!records.is_empty(), "trace file must contain spans");

    // One span per executed instruction: this script runs rand, t, %*%,
    // sum and more, so well over five instruction spans.
    let instr: Vec<&TraceRecord> = records
        .iter()
        .filter(|r| r.phase == "instruction")
        .collect();
    assert!(
        instr.len() >= 5,
        "expected >=5 instruction spans, got {}",
        instr.len()
    );

    // Compiler phases are traced as spans too.
    let phases: BTreeSet<&str> = records.iter().map(|r| r.phase.as_str()).collect();
    assert!(phases.contains("parse"), "phases: {phases:?}");
    assert!(phases.contains("hop_build"), "phases: {phases:?}");
    assert!(phases.contains("lower"), "phases: {phases:?}");

    // Parfor worker spans carry their worker id: 4 iterations on 4
    // threads means workers 0..=3 each ran (and traced) a chunk.
    let worker_ids: BTreeSet<u64> = records
        .iter()
        .filter(|r| r.phase == "parfor_worker")
        .map(|r| r.worker.expect("parfor worker span must carry worker id"))
        .collect();
    assert_eq!(
        worker_ids,
        (0..4).collect::<BTreeSet<u64>>(),
        "records: {records:?}"
    );

    // Parent linking: instructions executed inside a parfor worker hang
    // off that worker's span.
    let worker_span_ids: BTreeSet<u64> = records
        .iter()
        .filter(|r| r.phase == "parfor_worker")
        .map(|r| r.id)
        .collect();
    assert!(
        instr.iter().any(|r| worker_span_ids.contains(&r.parent)),
        "no instruction span is parented to a parfor worker"
    );

    let _ = std::fs::remove_file(&trace);
}

#[test]
fn trace_and_stats_compose() {
    let p = write_script("both-flags", "x = sum(matrix(2, rows=4, cols=4))\nprint(x)");
    let trace = temp_dir().join(format!("both-{}.jsonl", std::process::id()));
    let out = Command::new(sysds_bin())
        .args([
            "run",
            p.to_str().unwrap(),
            "--stats",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("Heavy hitter instructions:"));
    let body = std::fs::read_to_string(&trace).unwrap();
    assert!(body.lines().any(|l| parse_record(l).is_some()));
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn trace_to_unwritable_path_fails_cleanly() {
    let p = write_script("bad-trace", "x = 1");
    let out = Command::new(sysds_bin())
        .args([
            "run",
            p.to_str().unwrap(),
            "--trace",
            "/nonexistent-dir/trace.jsonl",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("trace"));
}
