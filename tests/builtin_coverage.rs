#![allow(clippy::field_reassign_with_default)]

//! Coverage of every runtime builtin through DML scripts — each assertion
//! exercises the full parse → compile → execute path.

use sysds::api::SystemDS;
use sysds::Data;
use sysds_common::{EngineConfig, ScalarValue};
use sysds_tensor::Matrix;

fn run(script: &str, inputs: &[(&str, Data)], outputs: &[&str]) -> sysds::api::ScriptOutputs {
    let mut config = EngineConfig::default();
    config.spill_dir = sysds_common::testing::unique_temp_dir("sysds-builtin-tests");
    let mut s = SystemDS::with_config(config).unwrap();
    s.execute(script, inputs, outputs).unwrap()
}

fn m(rows: &[&[f64]]) -> Data {
    Data::from_matrix(Matrix::from_rows(rows).unwrap())
}

#[test]
fn shape_builtins() {
    let out = run(
        "r = nrow(X)\nc = ncol(X)\nl = length(X)\nz = nnz(X)",
        &[("X", m(&[&[1.0, 0.0, 3.0], &[0.0, 5.0, 6.0]]))],
        &["r", "c", "l", "z"],
    );
    assert_eq!(out.scalar("r").unwrap(), ScalarValue::I64(2));
    assert_eq!(out.scalar("c").unwrap(), ScalarValue::I64(3));
    assert_eq!(out.scalar("l").unwrap(), ScalarValue::I64(6));
    assert_eq!(out.scalar("z").unwrap(), ScalarValue::I64(4));
}

#[test]
fn aggregate_builtins() {
    let x = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
    let out = run(
        r#"
        s = sum(X); mn = mean(X); mi = min(X); ma = max(X)
        v = var(X); sd_ = sd(X)
        rs = rowSums(X); cs = colSums(X)
        rm = rowMeans(X); cm = colMeans(X)
        rmx = rowMaxs(X); cmn = colMins(X)
        "#,
        &[("X", x)],
        &[
            "s", "mn", "mi", "ma", "v", "sd_", "rs", "cs", "rm", "cm", "rmx", "cmn",
        ],
    );
    assert_eq!(out.f64("s").unwrap(), 10.0);
    assert_eq!(out.f64("mn").unwrap(), 2.5);
    assert_eq!(out.f64("mi").unwrap(), 1.0);
    assert_eq!(out.f64("ma").unwrap(), 4.0);
    assert!((out.f64("v").unwrap() - 5.0 / 3.0).abs() < 1e-12);
    assert!((out.f64("sd_").unwrap() - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    assert_eq!(out.matrix("rs").unwrap().to_vec(), vec![3.0, 7.0]);
    assert_eq!(out.matrix("cs").unwrap().to_vec(), vec![4.0, 6.0]);
    assert_eq!(out.matrix("rm").unwrap().to_vec(), vec![1.5, 3.5]);
    assert_eq!(out.matrix("cm").unwrap().to_vec(), vec![2.0, 3.0]);
    assert_eq!(out.matrix("rmx").unwrap().to_vec(), vec![2.0, 4.0]);
    assert_eq!(out.matrix("cmn").unwrap().to_vec(), vec![1.0, 2.0]);
}

#[test]
fn reorg_builtins() {
    let out = run(
        r#"
        T = t(X)
        R = rev(X)
        D = diag(X)
        C = cumsum(X)
        P = cumprod(X)
        O = order(target=X, by=1, decreasing=TRUE)
        I = rowIndexMax(X)
        "#,
        &[("X", m(&[&[1.0, 4.0], &[3.0, 2.0]]))],
        &["T", "R", "D", "C", "P", "O", "I"],
    );
    assert_eq!(out.matrix("T").unwrap().to_vec(), vec![1.0, 3.0, 4.0, 2.0]);
    assert_eq!(out.matrix("R").unwrap().to_vec(), vec![3.0, 2.0, 1.0, 4.0]);
    assert_eq!(out.matrix("D").unwrap().to_vec(), vec![1.0, 2.0]);
    assert_eq!(out.matrix("C").unwrap().to_vec(), vec![1.0, 4.0, 4.0, 6.0]);
    assert_eq!(out.matrix("P").unwrap().to_vec(), vec![1.0, 4.0, 3.0, 8.0]);
    assert_eq!(out.matrix("O").unwrap().to_vec(), vec![3.0, 2.0, 1.0, 4.0]);
    assert_eq!(out.matrix("I").unwrap().to_vec(), vec![2.0, 1.0]);
}

#[test]
fn linear_algebra_builtins() {
    let out = run(
        r#"
        A = matrix(0, rows=2, cols=2)
        A[1, 1] = 4; A[1, 2] = 1; A[2, 1] = 1; A[2, 2] = 3
        b = matrix(1, rows=2, cols=1)
        x = solve(A, b)
        Ai = inv(A)
        d = det(A)
        tr = trace(A)
        L = cholesky(A)
        check = sum(abs(L %*% t(L) - A))
        "#,
        &[],
        &["x", "Ai", "d", "tr", "check"],
    );
    // A = [[4,1],[1,3]], det=11, trace=7
    assert!((out.f64("d").unwrap() - 11.0).abs() < 1e-9);
    assert_eq!(out.f64("tr").unwrap(), 7.0);
    assert!(out.f64("check").unwrap() < 1e-9);
    let x = out.matrix("x").unwrap();
    // solve([[4,1],[1,3]], [1,1]) = [2/11, 3/11]
    assert!((x.get(0, 0) - 2.0 / 11.0).abs() < 1e-9);
    assert!((x.get(1, 0) - 3.0 / 11.0).abs() < 1e-9);
}

#[test]
fn elementwise_and_casting_builtins() {
    let out = run(
        r#"
        E = exp(X); L = log(E); Q = sqrt(X * X)
        S = sign(X); R = round(X + 0.4); F = floor(X + 0.9); C = ceil(X + 0.1)
        sg = sigmoid(0)
        i = as.integer(3.9)
        dd = as.double(7)
        bb = as.logical(1)
        sc = as.scalar(X[1, 1])
        M = as.matrix(5)
        "#,
        &[("X", m(&[&[1.0, -2.0]]))],
        &[
            "L", "Q", "S", "R", "F", "C", "sg", "i", "dd", "bb", "sc", "M",
        ],
    );
    assert!(out
        .matrix("L")
        .unwrap()
        .approx_eq(&Matrix::from_rows(&[&[1.0, -2.0]]).unwrap(), 1e-12));
    assert_eq!(out.matrix("Q").unwrap().to_vec(), vec![1.0, 2.0]);
    assert_eq!(out.matrix("S").unwrap().to_vec(), vec![1.0, -1.0]);
    assert_eq!(out.matrix("R").unwrap().to_vec(), vec![1.0, -2.0]);
    assert_eq!(out.matrix("F").unwrap().to_vec(), vec![1.0, -2.0]);
    assert_eq!(out.matrix("C").unwrap().to_vec(), vec![2.0, -1.0]);
    assert_eq!(out.f64("sg").unwrap(), 0.5);
    assert_eq!(out.scalar("i").unwrap(), ScalarValue::I64(3));
    assert_eq!(out.scalar("dd").unwrap(), ScalarValue::F64(7.0));
    assert_eq!(out.scalar("bb").unwrap(), ScalarValue::Bool(true));
    assert_eq!(out.f64("sc").unwrap(), 1.0);
    assert_eq!(out.matrix("M").unwrap().shape(), (1, 1));
}

#[test]
fn data_builtins() {
    let out = run(
        r#"
        Z = matrix(7, rows=2, cols=3)
        S = seq(2, 10, 2)
        U = rand(rows=4, cols=4, min=0, max=1, sparsity=0.5, seed=3)
        RE = removeEmpty(target=Z - 7, margin="rows")
        RP = replace(target=Z, pattern=7, replacement=9)
        "#,
        &[],
        &["Z", "S", "U", "RE", "RP"],
    );
    assert_eq!(out.matrix("Z").unwrap().to_vec(), vec![7.0; 6]);
    assert_eq!(
        out.matrix("S").unwrap().to_vec(),
        vec![2.0, 4.0, 6.0, 8.0, 10.0]
    );
    assert_eq!(out.matrix("U").unwrap().shape(), (4, 4));
    // all-zero input collapses to 1x1
    assert_eq!(out.matrix("RE").unwrap().shape(), (1, 1));
    assert_eq!(out.matrix("RP").unwrap().to_vec(), vec![9.0; 6]);
}

#[test]
fn string_builtins_and_print() {
    let out = run(
        r#"
        msg = "k=" + 3 + ", v=" + 2.5
        print(msg)
        print("two", "parts")
        t = toString(42)
        "#,
        &[],
        &["msg", "t"],
    );
    assert_eq!(out.scalar("msg").unwrap().to_display_string(), "k=3, v=2.5");
    assert_eq!(
        out.stdout,
        vec!["k=3, v=2.5".to_string(), "two parts".to_string()]
    );
    assert_eq!(out.scalar("t").unwrap().to_display_string(), "42");
}

#[test]
fn recursive_functions_work() {
    let out = run(
        r#"
        fact = function(int n) return (int f) {
            if (n <= 1) { f = 1 } else {
                r = fact(n - 1)
                f = n * r
            }
        }
        f10 = fact(10)
        "#,
        &[],
        &["f10"],
    );
    assert_eq!(out.scalar("f10").unwrap(), ScalarValue::I64(3_628_800));
}

#[test]
fn min_max_two_argument_forms() {
    let out = run(
        r#"
        a = min(3, 7)
        b = max(3, 7)
        M = min(X, 0)
        "#,
        &[("X", m(&[&[-1.0, 2.0]]))],
        &["a", "b", "M"],
    );
    assert_eq!(out.f64("a").unwrap(), 3.0);
    assert_eq!(out.f64("b").unwrap(), 7.0);
    assert_eq!(out.matrix("M").unwrap().to_vec(), vec![-1.0, 0.0]);
}

#[test]
fn matrix_market_read_via_script() {
    let dir = sysds_common::testing::unique_temp_dir("sysds-builtin-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!("script-{}.mtx", std::process::id()));
    let x = Matrix::from_rows(&[&[0.0, 2.0], &[3.0, 0.0]]).unwrap();
    sysds_io::formats::write_matrix_market(&p, &x).unwrap();
    let out = run(
        &format!(
            r#"X = read("{}", format="mm")
                    total = sum(X)"#,
            p.display()
        ),
        &[],
        &["total"],
    );
    assert_eq!(out.f64("total").unwrap(), 5.0);
}

#[test]
fn statistics_builtins() {
    let out = run(
        r#"
        q1 = quantile(X, 0.25)
        md = median(X)
        "#,
        &[("X", m(&[&[10.0, 20.0], &[30.0, 40.0]]))],
        &["q1", "md"],
    );
    assert_eq!(out.f64("q1").unwrap(), 17.5);
    assert_eq!(out.f64("md").unwrap(), 25.0);
}

#[test]
fn table_and_outer_builtins() {
    let out = run(
        r#"
        v1 = matrix(seq(1, 3), rows=3, cols=1)
        v2 = matrix(1, rows=3, cols=1)
        T = table(v1, v2)
        O = outer(v1, t(v1), "*")
        Ocmp = outer(v1, t(v1), "<")
        "#,
        &[],
        &["T", "O", "Ocmp"],
    );
    let t = out.matrix("T").unwrap();
    assert_eq!(t.shape(), (3, 1));
    assert_eq!(t.to_vec(), vec![1.0, 1.0, 1.0]);
    let o = out.matrix("O").unwrap();
    assert_eq!(o.get(2, 2), 9.0);
    assert_eq!(o.get(0, 1), 2.0);
    let c = out.matrix("Ocmp").unwrap();
    assert_eq!(c.get(0, 2), 1.0);
    assert_eq!(c.get(2, 0), 0.0);
}

#[test]
fn eigen_builtin_end_to_end() {
    let out = run(
        r#"
        X = rand(rows=30, cols=4, seed=9)
        A = t(X) %*% X
        [w, V] = eigen(A)
        # reconstruction error must vanish
        R = V %*% diag(w) %*% t(V)
        err = sum(abs(R - A))
        # vectors orthonormal
        ortho = sum(abs(t(V) %*% V - diag(matrix(1, rows=4, cols=1))))
        "#,
        &[],
        &["w", "err", "ortho"],
    );
    assert_eq!(out.matrix("w").unwrap().shape(), (4, 1));
    assert!(
        out.f64("err").unwrap() < 1e-7,
        "reconstruction {}",
        out.f64("err").unwrap()
    );
    assert!(out.f64("ortho").unwrap() < 1e-7);
}
