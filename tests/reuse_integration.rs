#![allow(clippy::field_reassign_with_default)]

//! Lineage tracing and reuse of intermediates across lifecycle tasks —
//! the paper's §3.1 and the mechanism behind Figure 5(c)/(d).

use sysds::api::SystemDS;
use sysds::Data;
use sysds_common::config::ReusePolicy;
use sysds_common::EngineConfig;
use sysds_tensor::kernels::gen;

fn session(reuse: ReusePolicy) -> SystemDS {
    let mut config = EngineConfig::default().reuse_policy(reuse);
    config.spill_dir = sysds_common::testing::unique_temp_dir("sysds-reuse-tests");
    SystemDS::with_config(config).unwrap()
}

/// The Figure 5 workload as a DML script: k models over a λ sweep.
const HYPERPARAM: &str = r#"
    k = 8
    B = matrix(0, rows=ncol(X), cols=k)
    for (i in 1:k) {
        reg = 0.000001 * i
        Bi = lmDS(X=X, y=y, reg=reg)
        B[, i] = Bi
    }
"#;

#[test]
fn reuse_produces_identical_results() {
    let (x, y) = gen::synthetic_regression(400, 20, 1.0, 0.05, 701);
    let inputs = |s: &SystemDS| {
        vec![
            ("X", s.matrix(x.clone()).unwrap()),
            ("y", s.matrix(y.clone()).unwrap()),
        ]
    };
    let mut plain = session(ReusePolicy::None);
    let i1 = inputs(&plain);
    let out_plain = plain.execute(HYPERPARAM, &i1, &["B"]).unwrap();

    let mut reuse = session(ReusePolicy::FullAndPartial);
    let i2 = inputs(&reuse);
    let out_reuse = reuse.execute(HYPERPARAM, &i2, &["B"]).unwrap();

    assert!(out_plain
        .matrix("B")
        .unwrap()
        .approx_eq(&out_reuse.matrix("B").unwrap(), 1e-12));
    // Reuse must actually have happened: X'X and X'y hit for 7 of 8 models.
    let stats = reuse.cache_stats();
    assert!(stats.hits >= 7, "expected >= 7 hits, got {stats:?}");
    assert_eq!(plain.cache_stats().hits, 0);
}

#[test]
fn reuse_across_execute_calls_in_one_session() {
    // The session owns the cache, so a second script over the same input
    // reuses intermediates — "reuse across lifecycle tasks".
    let (x, y) = gen::synthetic_regression(300, 15, 1.0, 0.05, 702);
    let mut s = session(ReusePolicy::Full);
    let xin = s.matrix(x).unwrap();
    let yin = s.matrix(y).unwrap();
    s.execute(
        "B = lmDS(X=X, y=y, reg=0.001)",
        &[("X", xin.clone()), ("y", yin.clone())],
        &["B"],
    )
    .unwrap();
    let before = s.cache_stats();
    s.execute(
        "B2 = lmDS(X=X, y=y, reg=0.002)",
        &[("X", xin), ("y", yin)],
        &["B2"],
    )
    .unwrap();
    let after = s.cache_stats();
    assert!(
        after.hits > before.hits,
        "cross-script reuse: {before:?} -> {after:?}"
    );
}

#[test]
fn steplm_benefits_from_partial_reuse() {
    // steplm trains what-if models over cbind(Xg, X[,j]) — partial reuse
    // assembles tsmm(cbind(...)) from the cached tsmm(Xg).
    let n = 300;
    let x = gen::rand_uniform(n, 10, -1.0, 1.0, 1.0, 703);
    let c1 = sysds_tensor::kernels::indexing::column(&x, 0).unwrap();
    let c7 = sysds_tensor::kernels::indexing::column(&x, 6).unwrap();
    let y = sysds_tensor::kernels::elementwise::binary_mm(
        sysds_tensor::kernels::BinaryOp::Add,
        &sysds_tensor::kernels::elementwise::binary_ms(
            sysds_tensor::kernels::BinaryOp::Mul,
            &c1,
            2.0,
        ),
        &c7,
    )
    .unwrap();

    let mut plain = session(ReusePolicy::None);
    let out_plain = plain
        .execute(
            "[B, S] = steplm(X=X, y=y)",
            &[
                ("X", Data::from_matrix(x.clone())),
                ("y", Data::from_matrix(y.clone())),
            ],
            &["B", "S"],
        )
        .unwrap();

    let mut reuse = session(ReusePolicy::FullAndPartial);
    let out_reuse = reuse
        .execute(
            "[B, S] = steplm(X=X, y=y)",
            &[("X", Data::from_matrix(x)), ("y", Data::from_matrix(y))],
            &["B", "S"],
        )
        .unwrap();

    // identical selections and models
    assert!(out_plain
        .matrix("S")
        .unwrap()
        .approx_eq(&out_reuse.matrix("S").unwrap(), 0.0));
    assert!(out_plain
        .matrix("B")
        .unwrap()
        .approx_eq(&out_reuse.matrix("B").unwrap(), 1e-9));
}

#[test]
fn full_reuse_policy_skips_partial() {
    let (x, y) = gen::synthetic_regression(200, 10, 1.0, 0.05, 704);
    let mut s = session(ReusePolicy::Full);
    s.execute(
        HYPERPARAM,
        &[("X", Data::from_matrix(x)), ("y", Data::from_matrix(y))],
        &["B"],
    )
    .unwrap();
    let stats = s.cache_stats();
    assert!(stats.hits > 0);
    assert_eq!(stats.partial_hits, 0);
}

#[test]
fn lineage_seeds_keep_rand_reusable_but_distinct() {
    let mut s = session(ReusePolicy::Full);
    let out = s
        .execute(
            r#"
            A = rand(rows=200, cols=40, seed=1)
            B = rand(rows=200, cols=40, seed=2)
            G1 = t(A) %*% A
            G2 = t(B) %*% B
            G1b = t(A) %*% A
            d_same = sum((G1 - G1b) * (G1 - G1b))
            d_diff = sum((G1 - G2) * (G1 - G2))
            "#,
            &[],
            &["d_same", "d_diff"],
        )
        .unwrap();
    assert_eq!(out.f64("d_same").unwrap(), 0.0);
    assert!(
        out.f64("d_diff").unwrap() > 0.0,
        "different seeds → different lineage"
    );
}

#[test]
fn cache_stats_reset_with_clear() {
    let (x, y) = gen::synthetic_regression(200, 10, 1.0, 0.05, 705);
    let mut s = session(ReusePolicy::Full);
    let xin = Data::from_matrix(x);
    let yin = Data::from_matrix(y);
    s.execute(
        HYPERPARAM,
        &[("X", xin.clone()), ("y", yin.clone())],
        &["B"],
    )
    .unwrap();
    assert!(s.cache_stats().hits > 0);
    s.clear_cache();
    // After clearing, the same work misses again (same session stats keep
    // accumulating, so compare the delta of misses).
    let misses_before = s.cache_stats().misses;
    s.execute(HYPERPARAM, &[("X", xin), ("y", yin)], &["B"])
        .unwrap();
    assert!(s.cache_stats().misses > misses_before);
}
