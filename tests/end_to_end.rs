#![allow(clippy::field_reassign_with_default)]

//! End-to-end script execution through the public API: the language,
//! compiler, runtime, and builtin stack working together.

use sysds::api::SystemDS;
use sysds::Data;
use sysds_common::{EngineConfig, ScalarValue, SysDsError};
use sysds_tensor::kernels::{gen, matmult, solve, tsmm};
use sysds_tensor::Matrix;

fn session() -> SystemDS {
    let mut config = EngineConfig::default();
    config.spill_dir = sysds_common::testing::unique_temp_dir("sysds-e2e-tests");
    SystemDS::with_config(config).unwrap()
}

#[test]
fn quickstart_example_from_readme() {
    let mut s = session();
    let out = s
        .execute(
            r#"
            X = rand(rows=100, cols=5, seed=7)
            y = rand(rows=100, cols=1, seed=8)
            B = lmDS(X=X, y=y, reg=0.001)
            "#,
            &[],
            &["B"],
        )
        .unwrap();
    assert_eq!(out.matrix("B").unwrap().shape(), (5, 1));
}

#[test]
fn lmds_matches_direct_solve() {
    let mut s = session();
    let (x, y) = gen::synthetic_regression(80, 6, 1.0, 0.1, 601);
    let out = s
        .execute(
            "B = lmDS(X=X, y=y, reg=0.01)",
            &[
                ("X", Data::from_matrix(x.clone())),
                ("y", Data::from_matrix(y.clone())),
            ],
            &["B"],
        )
        .unwrap();
    // reference: (X'X + 0.01 I) b = X'y
    let mut gram = tsmm::tsmm(&x, 1, false);
    for i in 0..6 {
        let v = gram.get(i, i) + 0.01;
        gram.set(i, i, v);
    }
    let rhs = tsmm::tmv(&x, &y, 1).unwrap();
    let expect = solve::solve(&gram, &rhs).unwrap();
    assert!(out.matrix("B").unwrap().approx_eq(&expect, 1e-8));
}

#[test]
fn lm_dispatches_by_width() {
    // narrow → lmDS path; the result must solve the normal equations
    let mut s = session();
    let (x, y) = gen::synthetic_regression(50, 3, 1.0, 0.0, 602);
    let out = s
        .execute(
            "B = lm(X=X, y=y, reg=0.0)",
            &[
                ("X", Data::from_matrix(x.clone())),
                ("y", Data::from_matrix(y.clone())),
            ],
            &["B"],
        )
        .unwrap();
    let yhat = matmult::matmul(&x, &out.matrix("B").unwrap(), 1, false).unwrap();
    assert!(yhat.approx_eq(&y, 1e-6));
}

#[test]
fn lmcg_agrees_with_lmds() {
    let mut s = session();
    let (x, y) = gen::synthetic_regression(60, 5, 1.0, 0.1, 603);
    let out = s
        .execute(
            r#"
            B1 = lmDS(X=X, y=y, reg=0.001)
            B2 = lmCG(X=X, y=y, reg=0.001, tol=0.000000000001, maxi=100)
            d = sum((B1 - B2) * (B1 - B2))
            "#,
            &[("X", Data::from_matrix(x)), ("y", Data::from_matrix(y))],
            &["d"],
        )
        .unwrap();
    assert!(
        out.f64("d").unwrap() < 1e-8,
        "lmCG vs lmDS distance {}",
        out.f64("d").unwrap()
    );
}

#[test]
fn steplm_selects_informative_features() {
    let mut s = session();
    // y depends only on columns 2 and 5 (1-based) out of 8.
    let n = 120;
    let x = gen::rand_uniform(n, 8, -1.0, 1.0, 1.0, 604);
    let c2 = sysds_tensor::kernels::indexing::column(&x, 1).unwrap();
    let c5 = sysds_tensor::kernels::indexing::column(&x, 4).unwrap();
    let y = sysds_tensor::kernels::elementwise::binary_mm(
        sysds_tensor::kernels::BinaryOp::Add,
        &sysds_tensor::kernels::elementwise::binary_ms(
            sysds_tensor::kernels::BinaryOp::Mul,
            &c2,
            3.0,
        ),
        &sysds_tensor::kernels::elementwise::binary_ms(
            sysds_tensor::kernels::BinaryOp::Mul,
            &c5,
            -2.0,
        ),
    )
    .unwrap();
    let out = s
        .execute(
            "[B, S] = steplm(X=X, y=y, reg=0.000001)",
            &[("X", Data::from_matrix(x)), ("y", Data::from_matrix(y))],
            &["B", "S"],
        )
        .unwrap();
    let sel = out.matrix("S").unwrap();
    assert_eq!(sel.shape(), (1, 8));
    assert_eq!(sel.get(0, 1), 1.0, "column 2 must be selected");
    assert_eq!(sel.get(0, 4), 1.0, "column 5 must be selected");
    assert!(
        sel.nnz() <= 3,
        "at most one spurious feature, got {:?}",
        sel.to_vec()
    );
}

#[test]
fn parfor_writes_disjoint_columns() {
    let mut s = session();
    let out = s
        .execute(
            r#"
            B = matrix(0, rows=3, cols=10)
            parfor (i in 1:10) {
                B[, i] = matrix(i, rows=3, cols=1)
            }
            total = sum(B)
            "#,
            &[],
            &["B", "total"],
        )
        .unwrap();
    assert_eq!(out.f64("total").unwrap(), 3.0 * 55.0);
    let b = out.matrix("B").unwrap();
    assert_eq!(b.get(2, 9), 10.0);
    assert_eq!(b.get(0, 0), 1.0);
}

#[test]
fn pca_reduces_dimensions_and_captures_variance() {
    let mut s = session();
    // Strongly correlated data: first component captures most variance.
    let base = gen::rand_uniform(100, 1, -1.0, 1.0, 1.0, 605);
    let noise = gen::rand_uniform(100, 3, -0.01, 0.01, 1.0, 606);
    let mut x = Matrix::zeros(100, 3);
    for i in 0..100 {
        for j in 0..3 {
            x.set(i, j, base.get(i, 0) * (j as f64 + 1.0) + noise.get(i, j));
        }
    }
    let out = s
        .execute(
            "[Xr, W] = pca(X=X, k=2)",
            &[("X", Data::from_matrix(x))],
            &["Xr", "W"],
        )
        .unwrap();
    let xr = out.matrix("Xr").unwrap();
    assert_eq!(xr.shape(), (100, 2));
    // Variance of the first PC dominates that of the second.
    let var = |j: usize| {
        let col: Vec<f64> = (0..100).map(|i| xr.get(i, j)).collect();
        let m = col.iter().sum::<f64>() / 100.0;
        col.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / 99.0
    };
    assert!(var(0) > 100.0 * var(1), "pc1 {} pc2 {}", var(0), var(1));
}

#[test]
fn kmeans_separates_two_far_clusters() {
    let mut s = session();
    let a = gen::rand_uniform(30, 2, 0.0, 1.0, 1.0, 607);
    let b = sysds_tensor::kernels::elementwise::binary_ms(
        sysds_tensor::kernels::BinaryOp::Add,
        &gen::rand_uniform(30, 2, 0.0, 1.0, 1.0, 608),
        100.0,
    );
    let x = sysds_tensor::kernels::indexing::rbind(&a, &b).unwrap();
    let out = s
        .execute(
            "[C, labels] = kmeans(X=X, k=2, maxi=10)",
            &[("X", Data::from_matrix(x))],
            &["C", "labels"],
        )
        .unwrap();
    let labels = out.matrix("labels").unwrap();
    let l0 = labels.get(0, 0);
    let l1 = labels.get(30, 0);
    assert_ne!(l0, l1);
    for i in 0..30 {
        assert_eq!(labels.get(i, 0), l0);
        assert_eq!(labels.get(30 + i, 0), l1);
    }
}

#[test]
fn l2svm_separates_linearly_separable_data() {
    let mut s = session();
    // +1 points have positive coordinates, -1 points negative.
    let pos = gen::rand_uniform(40, 2, 0.5, 1.5, 1.0, 609);
    let neg = sysds_tensor::kernels::elementwise::binary_ms(
        sysds_tensor::kernels::BinaryOp::Mul,
        &gen::rand_uniform(40, 2, 0.5, 1.5, 1.0, 610),
        -1.0,
    );
    let x = sysds_tensor::kernels::indexing::rbind(&pos, &neg).unwrap();
    let mut yv = vec![1.0; 40];
    yv.extend(vec![-1.0; 40]);
    let y = Matrix::from_vec(80, 1, yv).unwrap();
    let out = s
        .execute(
            r#"
            w = l2svm(X=X, y=y, reg=0.01, step=0.01, maxi=200)
            pred = sign(X %*% w)
            acc = sum(pred == y) / nrow(y)
            "#,
            &[("X", Data::from_matrix(x)), ("y", Data::from_matrix(y))],
            &["acc"],
        )
        .unwrap();
    assert!(
        out.f64("acc").unwrap() > 0.95,
        "accuracy {}",
        out.f64("acc").unwrap()
    );
}

#[test]
fn read_write_round_trip_with_metadata() {
    let mut s = session();
    let dir = sysds_common::testing::unique_temp_dir("sysds-e2e-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("rw-{}.csv", std::process::id()));
    let x = gen::rand_uniform(20, 4, -1.0, 1.0, 1.0, 611);
    let script_w = format!(r#"write(X, "{}")"#, path.display());
    s.execute(&script_w, &[("X", Data::from_matrix(x.clone()))], &[])
        .unwrap();
    assert!(path.exists());
    assert!(
        sysds_io::Metadata::load(&path).unwrap().is_some(),
        "mtd sidecar written"
    );
    let script_r = format!(r#"Y = read("{}")"#, path.display());
    let out = s.execute(&script_r, &[], &["Y"]).unwrap();
    assert!(out.matrix("Y").unwrap().approx_eq(&x, 1e-12));
}

#[test]
fn scale_and_normalize_builtins() {
    let mut s = session();
    let x = gen::rand_uniform(50, 3, 5.0, 9.0, 1.0, 612);
    let out = s
        .execute(
            r#"
            Z = scale(X=X)
            cm = colMeans(Z)
            cs = colSds(Z)
            N = normalize(X=X)
            nmin = min(N)
            nmax = max(N)
            "#,
            &[("X", Data::from_matrix(x))],
            &["cm", "cs", "nmin", "nmax"],
        )
        .unwrap();
    let cm = out.matrix("cm").unwrap();
    let cs = out.matrix("cs").unwrap();
    for j in 0..3 {
        assert!(cm.get(0, j).abs() < 1e-10);
        assert!((cs.get(0, j) - 1.0).abs() < 1e-10);
    }
    assert_eq!(out.f64("nmin").unwrap(), 0.0);
    assert_eq!(out.f64("nmax").unwrap(), 1.0);
}

#[test]
fn nested_function_calls_with_control_flow() {
    let mut s = session();
    let out = s
        .execute(
            r#"
            collatz_steps = function(int n) return (int steps) {
                steps = 0
                while (n > 1) {
                    if (n %% 2 == 0) { n = n %/% 2 } else { n = 3 * n + 1 }
                    steps = steps + 1
                }
            }
            s27 = collatz_steps(27)
            "#,
            &[],
            &["s27"],
        )
        .unwrap();
    assert_eq!(out.scalar("s27").unwrap().as_i64().unwrap(), 111);
}

#[test]
fn error_messages_surface_from_scripts() {
    let mut s = session();
    let err = s
        .execute(
            "Z = X %*% X",
            &[("X", Data::from_matrix(Matrix::zeros(2, 3)))],
            &["Z"],
        )
        .unwrap_err();
    assert!(matches!(err, SysDsError::DimensionMismatch { .. }), "{err}");
    let err = s.execute("Z = missing + 1", &[], &["Z"]).unwrap_err();
    assert!(err.to_string().contains("missing"));
}

#[test]
fn dynamic_recompilation_handles_data_dependent_sizes() {
    let mut s = session();
    // removeEmpty has a data-dependent output size; the subsequent ops
    // must recompile with the observed dims.
    let x = Matrix::from_rows(&[
        &[1.0, 2.0],
        &[0.0, 0.0],
        &[3.0, 4.0],
        &[0.0, 0.0],
        &[5.0, 6.0],
    ])
    .unwrap();
    let out = s
        .execute(
            r#"
            Z = removeEmpty(target=X, margin="rows")
            n = nrow(Z)
            G = t(Z) %*% Z
            "#,
            &[("X", Data::from_matrix(x))],
            &["n", "G"],
        )
        .unwrap();
    assert_eq!(out.f64("n").unwrap(), 3.0);
    assert_eq!(out.matrix("G").unwrap().shape(), (2, 2));
}

#[test]
fn matrix_literal_and_indexing_semantics() {
    let mut s = session();
    let out = s
        .execute(
            r#"
            X = matrix(seq(1, 12), rows=3, cols=4)
            a = as.scalar(X[2, 3])
            R = X[2:3, ]
            C = X[, 4]
            X[1, 1] = 99
            b = as.scalar(X[1, 1])
            "#,
            &[],
            &["a", "R", "C", "b"],
        )
        .unwrap();
    // row-major fill: X[2,3] = 7
    assert_eq!(out.f64("a").unwrap(), 7.0);
    assert_eq!(out.matrix("R").unwrap().shape(), (2, 4));
    assert_eq!(out.matrix("C").unwrap().to_vec(), vec![4.0, 8.0, 12.0]);
    assert_eq!(out.f64("b").unwrap(), 99.0);
}

#[test]
fn scalar_ifelse_and_logic() {
    let mut s = session();
    let out = s
        .execute(
            r#"
            a = ifelse(3 > 2, 10, 20)
            b = ifelse(FALSE, 1, 2)
            c = (1 < 2) & !(3 <= 2) | FALSE
            "#,
            &[],
            &["a", "b", "c"],
        )
        .unwrap();
    assert_eq!(out.f64("a").unwrap(), 10.0);
    assert_eq!(out.f64("b").unwrap(), 2.0);
    assert_eq!(out.scalar("c").unwrap(), ScalarValue::Bool(true));
}

#[test]
fn cv_and_grid_search_builtins() {
    let mut s = session();
    let (x, y) = gen::synthetic_regression(200, 5, 1.0, 0.1, 613);
    let out = s
        .execute(
            r#"
            err = cvLM(X=X, y=y, folds=4, reg=0.001)
            lambdas = matrix(seq(1, 5), rows=5, cols=1) * 0.001
            [B, best] = gridSearchLM(X=X, y=y, lambdas=lambdas)
            "#,
            &[("X", Data::from_matrix(x)), ("y", Data::from_matrix(y))],
            &["err", "B", "best"],
        )
        .unwrap();
    // noise 0.1 → per-fold mse should be near 0.01
    let err = out.f64("err").unwrap();
    assert!(err > 0.0 && err < 0.1, "cv error {err}");
    assert_eq!(out.matrix("B").unwrap().shape(), (5, 1));
    let best = out.f64("best").unwrap();
    assert!((0.0009..=0.0051).contains(&best), "best lambda {best}");
}

#[test]
fn logistic_regression_builtin_classifies() {
    let mut s = session();
    // labels in {0,1}: 1 iff first feature above 0.5
    let x = gen::rand_uniform(300, 2, 0.0, 1.0, 1.0, 614);
    let mut yv = Vec::with_capacity(300);
    for i in 0..300 {
        yv.push(if x.get(i, 0) > 0.5 { 1.0 } else { 0.0 });
    }
    let y = Matrix::from_vec(300, 1, yv).unwrap();
    let out = s
        .execute(
            r#"
            Xb = cbind(X, matrix(1, rows=nrow(X), cols=1))
            w = logisticReg(X=Xb, y=y, step=2.0, maxi=500, reg=0.0001)
            p = sigmoid(Xb %*% w)
            pred = p > 0.5
            acc = sum(pred == y) / nrow(y)
            "#,
            &[("X", Data::from_matrix(x)), ("y", Data::from_matrix(y))],
            &["acc"],
        )
        .unwrap();
    assert!(
        out.f64("acc").unwrap() > 0.9,
        "accuracy {}",
        out.f64("acc").unwrap()
    );
}

#[test]
fn paramserv_builtin_trains_linear_model() {
    let mut s = session();
    let (x, y) = gen::synthetic_regression(300, 4, 1.0, 0.0, 615);
    let out = s
        .execute(
            r#"
            w = paramserv(X=X, y=y, epochs=300, batchsize=50, lr=0.5, mode="BSP", workers=2)
            exact = lmDS(X=X, y=y, reg=0.0)
            d = max(abs(w - exact))
            "#,
            &[("X", Data::from_matrix(x)), ("y", Data::from_matrix(y))],
            &["w", "d"],
        )
        .unwrap();
    assert_eq!(out.matrix("w").unwrap().shape(), (4, 1));
    assert!(
        out.f64("d").unwrap() < 0.05,
        "distance {}",
        out.f64("d").unwrap()
    );
}

#[test]
fn lineage_trace_exposed_for_debugging() {
    let mut config = EngineConfig::default();
    config.lineage = true;
    config.spill_dir = sysds_common::testing::unique_temp_dir("sysds-e2e-tests");
    let mut s = SystemDS::with_config(config).unwrap();
    let out = s
        .execute(
            r#"
            X = rand(rows=10, cols=3, seed=5)
            G = t(X) %*% X
            "#,
            &[],
            &["G"],
        )
        .unwrap();
    let trace = out.lineage_trace("G").expect("lineage recorded");
    // The trace names the fused op and the seeded generator.
    assert!(trace.contains("tsmm"), "{trace}");
    assert!(
        trace.contains("rand:10:3:") && trace.contains(":5:uniform"),
        "{trace}"
    );
}
