#![allow(clippy::field_reassign_with_default)]

//! The end-to-end data-science lifecycle (paper §1, Figure 1): raw CSV →
//! schema detection → cleaning → feature transformation → model training
//! → evaluation, crossing frames, transform encoders, and DML scripts
//! without any boundary crossing into external tools.

use std::path::PathBuf;
use sysds::api::SystemDS;
use sysds::Data;
use sysds_common::EngineConfig;
use sysds_frame::clean::{self, ImputeMethod, OutlierMethod};
use sysds_frame::{Frame, FrameColumn};
use sysds_io::FormatDescriptor;

fn session() -> SystemDS {
    let mut config = EngineConfig::default();
    config.spill_dir = sysds_common::testing::unique_temp_dir("sysds-lifecycle-tests");
    SystemDS::with_config(config).unwrap()
}

fn dir() -> PathBuf {
    let d = sysds_common::testing::unique_temp_dir("sysds-lifecycle-tests");
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// A small messy dataset: categorical city, numeric age/income with a
/// missing value and an outlier, boolean-ish flag, and a target column.
fn messy_csv() -> PathBuf {
    // Unique per call: tests in this binary run concurrently, and a shared
    // path would race one test's truncating write against another's read.
    use std::sync::atomic::{AtomicU64, Ordering};
    static CALL: AtomicU64 = AtomicU64::new(0);
    let p = dir().join(format!(
        "people-{}-{}.csv",
        std::process::id(),
        CALL.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(
        &p,
        "city,age,income,flag,target\n\
         graz,30,50000,TRUE,1.0\n\
         wien,40,NA,FALSE,2.0\n\
         graz,35,52000,TRUE,1.5\n\
         linz,999,51000,FALSE,1.7\n\
         wien,38,49000,TRUE,1.9\n\
         graz,33,50500,FALSE,1.4\n",
    )
    .unwrap();
    p
}

#[test]
fn frame_ingestion_and_schema_detection() {
    let p = messy_csv();
    let f = sysds_io::csv::read_frame(&p, &FormatDescriptor::csv().with_header(true))
        .unwrap()
        .detect_schema();
    assert_eq!(f.rows(), 6);
    assert_eq!(f.cols(), 5);
    use sysds_common::ValueType::*;
    assert_eq!(f.schema(), vec![String, Int64, Fp64, Boolean, Fp64]);
    // NA became NaN in the numeric column
    let income = f.column_by_name("income").unwrap().as_f64().unwrap();
    assert!(income[1].is_nan());
}

#[test]
fn cleaning_pipeline_impute_winsorize() {
    let p = messy_csv();
    let f = sysds_io::csv::read_frame(&p, &FormatDescriptor::csv().with_header(true))
        .unwrap()
        .detect_schema();
    // numeric sub-frame → matrix
    let numeric = Frame::from_columns(vec![
        ("age".into(), f.column_by_name("age").unwrap().clone()),
        ("income".into(), f.column_by_name("income").unwrap().clone()),
    ])
    .unwrap();
    let m = numeric.to_matrix().unwrap();
    // impute missing income by mean
    let (imputed, rules) = clean::impute(&m, ImputeMethod::Mean, 0.0).unwrap();
    assert!(!imputed.get(1, 1).is_nan());
    assert_eq!(rules.len(), 2);
    // the age 999 outlier is flagged and clamped
    let outliers = clean::detect_outliers(&imputed, OutlierMethod::ZScore(2.0)).unwrap();
    assert_eq!(outliers.get(3, 0), 1.0, "age=999 must be an outlier");
    let clamped = clean::winsorize(&imputed, OutlierMethod::ZScore(2.0)).unwrap();
    assert!(clamped.get(3, 0) < 999.0);
}

#[test]
fn transformencode_to_training_in_one_script() {
    let p = messy_csv();
    let mut s = session();
    let f = sysds_io::csv::read_frame(&p, &FormatDescriptor::csv().with_header(true))
        .unwrap()
        .detect_schema();
    let out = s
        .execute(
            r#"
            [X, M] = transformencode(target=F, spec="dummy=city bin=age:3")
            n = nrow(X)
            d = ncol(X)
            "#,
            &[("F", Data::Frame(std::sync::Arc::new(f)))],
            &["X", "M", "n", "d"],
        )
        .unwrap();
    // city dummy (3) + age bin (1) + income (1) + flag (1) + target (1)
    assert_eq!(out.f64("d").unwrap(), 7.0);
    assert_eq!(out.f64("n").unwrap(), 6.0);
    let meta = out.frame("M").unwrap();
    assert!(meta.rows() > 0);
}

#[test]
fn transformapply_reuses_fitted_encoder() {
    let p = messy_csv();
    let mut s = session();
    let f = sysds_io::csv::read_frame(&p, &FormatDescriptor::csv().with_header(true))
        .unwrap()
        .detect_schema();
    let fdata = Data::Frame(std::sync::Arc::new(f.clone()));
    let out = s
        .execute(
            r#"
            [X1, M] = transformencode(target=F, spec="recode=city bin=income:3")
            X2 = transformapply(target=F, meta=M)
            d = sum((X1 - X2) * (X1 - X2))
            "#,
            &[("F", fdata)],
            &["d"],
        )
        .unwrap();
    assert_eq!(out.f64("d").unwrap(), 0.0, "apply(fit(F)) == encode(F)");
}

#[test]
fn full_lifecycle_train_and_score() {
    // CSV → frame → encode → split → train (lm) → score (mse) all driven
    // from Rust + DML, with data written and read through sysds-io.
    let p = messy_csv();
    let mut s = session();
    let f = sysds_io::csv::read_frame(&p, &FormatDescriptor::csv().with_header(true))
        .unwrap()
        .detect_schema();
    let out = s
        .execute(
            r#"
            [E, M] = transformencode(target=F, spec="dummy=city bin=income:5")
            n = ncol(E)
            X = E[, 1:(n - 1)]
            y = E[, n]
            B = lmDS(X=X, y=y, reg=0.001)
            yhat = lmPredict(X=X, B=B)
            err = mse(yhat=yhat, y=y)
            "#,
            &[("F", Data::Frame(std::sync::Arc::new(f)))],
            &["B", "err"],
        )
        .unwrap();
    // 6 rows, 6 features: must fit closely (small ridge).
    assert!(
        out.f64("err").unwrap() < 1e-2,
        "mse {}",
        out.f64("err").unwrap()
    );
}

#[test]
fn dedup_and_drop_invalid() {
    let f = Frame::from_columns(vec![
        (
            "a".into(),
            FrameColumn::Str(vec!["x".into(), "x".into(), "y".into(), "NA".into()]),
        ),
        ("b".into(), FrameColumn::F64(vec![1.0, 1.0, 2.0, 3.0])),
    ])
    .unwrap();
    let d = clean::dedup(&f).unwrap();
    assert_eq!(d.rows(), 3);
    let v = clean::drop_invalid(&d).unwrap();
    assert_eq!(v.rows(), 2);
}

#[test]
fn frame_to_data_tensor_round_trip() {
    // Frames convert into the heterogeneous tensor data model (§2.4).
    let p = messy_csv();
    let f = sysds_io::csv::read_frame(&p, &FormatDescriptor::csv().with_header(true))
        .unwrap()
        .detect_schema();
    let t = f.to_data_tensor().unwrap();
    assert_eq!(t.dims(), &[6, 5]);
    assert_eq!(t.schema(), f.schema().as_slice());
    assert_eq!(
        t.get(&[0, 0]).unwrap(),
        sysds_common::ScalarValue::Str("graz".into())
    );
}

#[test]
fn prepared_script_for_low_latency_scoring() {
    // JMLC-style: pre-compile once, score many small inputs.
    let s = session();
    let prep = s.prepare("yhat = X %*% B", &["yhat"]).unwrap();
    let b = sysds_tensor::Matrix::from_vec(3, 1, vec![1.0, -1.0, 0.5]).unwrap();
    for i in 0..10 {
        let x = sysds_tensor::kernels::gen::rand_uniform(1, 3, -1.0, 1.0, 1.0, 800 + i);
        let out = prep
            .execute(&[
                ("X", Data::from_matrix(x.clone())),
                ("B", Data::from_matrix(b.clone())),
            ])
            .unwrap();
        let expect = sysds_tensor::kernels::matmult::matmul(&x, &b, 1, false).unwrap();
        assert!(out.matrix("yhat").unwrap().approx_eq(&expect, 1e-12));
    }
}
