//! `sysds fuzz` must be byte-for-byte reproducible: same seed, same
//! iteration count → identical stdout and identical corpus bytes. The
//! report contains no wall-clock, no absolute paths, and no map-ordered
//! output, so any nondeterminism here is a real generator/oracle bug.

use std::process::Command;

fn sysds_bin() -> &'static str {
    env!("CARGO_BIN_EXE_sysds")
}

fn run_fuzz(args: &[&str]) -> (String, bool) {
    let out = Command::new(sysds_bin())
        .arg("fuzz")
        .args(args)
        .output()
        .expect("sysds fuzz runs");
    (
        String::from_utf8(out.stdout).expect("report is utf-8"),
        out.status.success(),
    )
}

#[test]
fn same_seed_same_bytes() {
    let args = ["--seed", "11", "--iters", "12", "--fed-every", "6"];
    let (a, ok_a) = run_fuzz(&args);
    let (b, ok_b) = run_fuzz(&args);
    assert!(ok_a && ok_b, "fuzz campaign failed:\n{a}");
    assert_eq!(a, b, "two identical invocations printed different bytes");
    assert!(a.contains("12 iterations (2 federated)"), "report: {a}");
    assert!(a.ends_with("result: PASS\n"), "report: {a}");
}

#[test]
fn corpus_samples_are_reproducible_bytes() {
    let dir_a = sysds_common::testing::unique_temp_dir("sysds-fuzz-cli-a");
    let dir_b = sysds_common::testing::unique_temp_dir("sysds-fuzz-cli-b");
    let run = |dir: &std::path::Path| {
        let (out, ok) = run_fuzz(&[
            "--seed",
            "21",
            "--iters",
            "6",
            "--fed-every",
            "3",
            "--max-dim",
            "6",
            "--corpus",
            dir.to_str().unwrap(),
            "--save-samples",
            "2",
        ]);
        assert!(ok, "campaign failed:\n{out}");
    };
    run(&dir_a);
    run(&dir_b);
    let list = |d: &std::path::Path| {
        let mut v: Vec<_> = std::fs::read_dir(d)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        v.sort();
        v
    };
    let (files_a, files_b) = (list(&dir_a), list(&dir_b));
    assert!(!files_a.is_empty(), "no samples written");
    assert_eq!(files_a.len(), files_b.len());
    for (pa, pb) in files_a.iter().zip(&files_b) {
        assert_eq!(pa.file_name(), pb.file_name());
        assert_eq!(
            std::fs::read(pa).unwrap(),
            std::fs::read(pb).unwrap(),
            "{} differs between runs",
            pa.display()
        );
    }
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn failing_seed_exits_nonzero_with_minimized_repro() {
    // An unseeded rand() is genuinely nondeterministic, so the oracle must
    // flag it. Plant it as a corpus-style script and replay through the
    // library (the CLI replays the same path); the point here is that the
    // harness *can* fail — a fuzzer that cannot detect its target class of
    // bug proves nothing by passing.
    let dir = sysds_common::testing::unique_temp_dir("sysds-fuzz-cli-div");
    let entry = dir.join("seed_0_local.dml");
    std::fs::write(
        &entry,
        "# sysds-conformance corpus v1\n# seed: 0\n# outputs: m0\n\
         m0 = rand(rows=3, cols=3, min=0, max=1)\n",
    )
    .unwrap();
    let script = sysds_conformance::corpus::load_entry(&entry).unwrap();
    let divergence = sysds_conformance::check_script(&script).unwrap();
    let d = divergence.expect("unseeded rand must diverge across configs");
    assert_eq!(d.variable, "m0");
    assert!(!d.fingerprint_a.is_empty() && !d.fingerprint_b.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
