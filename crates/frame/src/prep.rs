//! Data preparation: scaling/normalization and train/test splitting.

use sysds_common::rng::XorShift64;
use sysds_common::{Result, SysDsError};
use sysds_tensor::{DenseMatrix, Matrix};

/// Fitted scaling parameters, exportable as two row vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleRules {
    /// Per-column shift (mean, or min for min-max scaling).
    pub shift: Vec<f64>,
    /// Per-column divisor (std-dev, or range).
    pub scale: Vec<f64>,
}

/// `scale(X, center, scale)`: z-score standardization per column.
/// Columns with zero variance are centered but left unscaled (divisor 1).
pub fn scale_fit(m: &Matrix, center: bool, scale: bool) -> ScaleRules {
    let (rows, cols) = m.shape();
    let mut shift = vec![0.0; cols];
    let mut div = vec![1.0; cols];
    for j in 0..cols {
        let col: Vec<f64> = (0..rows).map(|i| m.get(i, j)).collect();
        let n = rows as f64;
        let mean = col.iter().sum::<f64>() / n;
        if center {
            shift[j] = mean;
        }
        if scale && rows > 1 {
            let var = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
            let sd = var.sqrt();
            if sd > 0.0 {
                div[j] = sd;
            }
        }
    }
    ScaleRules { shift, scale: div }
}

/// Apply scaling rules: `(X - shift) / scale` column-wise.
pub fn scale_apply(m: &Matrix, rules: &ScaleRules) -> Result<Matrix> {
    let (rows, cols) = m.shape();
    if rules.shift.len() != cols || rules.scale.len() != cols {
        return Err(SysDsError::runtime("scale rules column count mismatch"));
    }
    let mut out = DenseMatrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            out.set(i, j, (m.get(i, j) - rules.shift[j]) / rules.scale[j]);
        }
    }
    Ok(Matrix::Dense(out).compact())
}

/// Min-max normalization to `[0, 1]` per column; constant columns map to 0.
pub fn normalize(m: &Matrix) -> Matrix {
    let (rows, cols) = m.shape();
    let mut out = DenseMatrix::zeros(rows, cols);
    for j in 0..cols {
        let col: Vec<f64> = (0..rows).map(|i| m.get(i, j)).collect();
        let min = col.iter().copied().fold(f64::INFINITY, f64::min);
        let max = col.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let range = max - min;
        for (i, &v) in col.iter().enumerate() {
            out.set(i, j, if range > 0.0 { (v - min) / range } else { 0.0 });
        }
    }
    Matrix::Dense(out).compact()
}

/// Shuffled train/test split of `(X, y)`; `train_fraction` in `(0, 1)`.
/// Deterministic under `seed` (recorded in lineage by callers).
pub fn train_test_split(
    x: &Matrix,
    y: &Matrix,
    train_fraction: f64,
    seed: u64,
) -> Result<(Matrix, Matrix, Matrix, Matrix)> {
    if x.rows() != y.rows() {
        return Err(SysDsError::DimensionMismatch {
            op: "split",
            lhs: x.shape(),
            rhs: y.shape(),
        });
    }
    if !(0.0..1.0).contains(&train_fraction) || train_fraction == 0.0 {
        return Err(SysDsError::runtime("train fraction must be in (0, 1)"));
    }
    let rows = x.rows();
    let mut perm: Vec<usize> = (0..rows).collect();
    let mut rng = XorShift64::new(seed);
    // Fisher–Yates.
    for i in (1..rows).rev() {
        let j = rng.next_below(i + 1);
        perm.swap(i, j);
    }
    let n_train = ((rows as f64) * train_fraction).round() as usize;
    let n_train = n_train.clamp(1, rows.saturating_sub(1).max(1));
    let pick = |idx: &[usize], m: &Matrix| -> Matrix {
        let mut out = DenseMatrix::zeros(idx.len(), m.cols());
        for (dst, &src) in idx.iter().enumerate() {
            for j in 0..m.cols() {
                out.set(dst, j, m.get(src, j));
            }
        }
        Matrix::Dense(out).compact()
    };
    let (train_idx, test_idx) = perm.split_at(n_train);
    Ok((
        pick(train_idx, x),
        pick(train_idx, y),
        pick(test_idx, x),
        pick(test_idx, y),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysds_tensor::kernels::{aggregate, gen};
    use sysds_tensor::kernels::{AggFn, Direction};

    #[test]
    fn scale_standardizes() {
        let m = gen::rand_uniform(200, 3, 5.0, 10.0, 1.0, 91);
        let rules = scale_fit(&m, true, true);
        let s = scale_apply(&m, &rules).unwrap();
        let means = aggregate::aggregate_axis(AggFn::Mean, Direction::Col, &s).unwrap();
        let sds = aggregate::aggregate_axis(AggFn::Sd, Direction::Col, &s).unwrap();
        for j in 0..3 {
            assert!(means.get(0, j).abs() < 1e-10);
            assert!((sds.get(0, j) - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn scale_constant_column_safe() {
        let m = Matrix::filled(5, 1, 7.0);
        let rules = scale_fit(&m, true, true);
        let s = scale_apply(&m, &rules).unwrap();
        for i in 0..5 {
            assert_eq!(s.get(i, 0), 0.0);
        }
    }

    #[test]
    fn scale_rules_mismatch_rejected() {
        let m = Matrix::zeros(2, 2);
        let rules = ScaleRules {
            shift: vec![0.0],
            scale: vec![1.0],
        };
        assert!(scale_apply(&m, &rules).is_err());
    }

    #[test]
    fn normalize_to_unit_interval() {
        let m = Matrix::from_vec(3, 1, vec![10.0, 20.0, 30.0]).unwrap();
        let n = normalize(&m);
        assert_eq!(n.to_vec(), vec![0.0, 0.5, 1.0]);
        // constant column maps to zero
        let c = normalize(&Matrix::filled(3, 1, 4.0));
        assert_eq!(c.to_vec(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn split_sizes_and_determinism() {
        let (x, y) = gen::synthetic_regression(100, 4, 1.0, 0.1, 92);
        let (xtr, ytr, xte, yte) = train_test_split(&x, &y, 0.7, 7).unwrap();
        assert_eq!(xtr.rows(), 70);
        assert_eq!(xte.rows(), 30);
        assert_eq!(ytr.rows(), 70);
        assert_eq!(yte.rows(), 30);
        let (xtr2, ..) = train_test_split(&x, &y, 0.7, 7).unwrap();
        assert!(xtr.approx_eq(&xtr2, 0.0));
        let (xtr3, ..) = train_test_split(&x, &y, 0.7, 8).unwrap();
        assert!(!xtr.approx_eq(&xtr3, 0.0));
    }

    #[test]
    fn split_preserves_row_pairing() {
        let x = Matrix::from_vec(10, 1, (0..10).map(|i| i as f64).collect()).unwrap();
        let y = Matrix::from_vec(10, 1, (0..10).map(|i| i as f64 * 10.0).collect()).unwrap();
        let (xtr, ytr, xte, yte) = train_test_split(&x, &y, 0.5, 3).unwrap();
        for i in 0..xtr.rows() {
            assert_eq!(ytr.get(i, 0), xtr.get(i, 0) * 10.0);
        }
        for i in 0..xte.rows() {
            assert_eq!(yte.get(i, 0), xte.get(i, 0) * 10.0);
        }
    }

    #[test]
    fn split_validates_inputs() {
        let x = Matrix::zeros(4, 2);
        let y = Matrix::zeros(3, 1);
        assert!(train_test_split(&x, &y, 0.5, 1).is_err());
        let y = Matrix::zeros(4, 1);
        assert!(train_test_split(&x, &y, 0.0, 1).is_err());
        assert!(train_test_split(&x, &y, 1.0, 1).is_err());
    }
}
