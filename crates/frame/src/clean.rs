//! Data cleaning primitives (paper §3.2): imputation, outlier detection,
//! winsorizing, and deduplication.
//!
//! All functions are vectorized over matrices/frames and pure — cleaned
//! data out, rules (means, thresholds) representable as tensors.

use crate::frame::{Frame, FrameColumn};
use sysds_common::{Result, SysDsError};
use sysds_tensor::{DenseMatrix, Matrix};

/// Imputation strategy for missing (NaN) values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImputeMethod {
    Mean,
    Median,
    /// Most frequent value (mode); ties broken by smaller value.
    Mode,
    /// A constant fill value is supplied separately.
    Constant,
}

/// Column statistics used to impute, returned so rules can be persisted.
pub type ImputeRules = Vec<f64>;

/// Impute NaNs per column of a matrix; returns the cleaned matrix and the
/// per-column fill values ("rules as tensors").
pub fn impute(m: &Matrix, method: ImputeMethod, constant: f64) -> Result<(Matrix, ImputeRules)> {
    let (rows, cols) = m.shape();
    let mut rules = Vec::with_capacity(cols);
    for j in 0..cols {
        let clean: Vec<f64> = (0..rows)
            .map(|i| m.get(i, j))
            .filter(|v| !v.is_nan())
            .collect();
        let fill = match method {
            ImputeMethod::Constant => constant,
            _ if clean.is_empty() => {
                return Err(SysDsError::runtime(format!(
                    "column {j} has no observed values"
                )))
            }
            ImputeMethod::Mean => clean.iter().sum::<f64>() / clean.len() as f64,
            ImputeMethod::Median => median(clean),
            ImputeMethod::Mode => mode(clean),
        };
        rules.push(fill);
    }
    Ok((apply_impute(m, &rules), rules))
}

/// Apply previously-learned fill values to another matrix.
#[allow(clippy::needless_range_loop)] // rules is indexed per column j
pub fn apply_impute(m: &Matrix, rules: &[f64]) -> Matrix {
    let (rows, cols) = m.shape();
    let mut out = m.to_dense();
    for i in 0..rows {
        for j in 0..cols {
            if out.get(i, j).is_nan() {
                out.set(i, j, rules[j]);
            }
        }
    }
    Matrix::Dense(out).compact()
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

fn mode(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mut best = v[0];
    let mut best_count = 0usize;
    let mut i = 0;
    while i < v.len() {
        let mut j = i;
        while j < v.len() && v[j] == v[i] {
            j += 1;
        }
        if j - i > best_count {
            best_count = j - i;
            best = v[i];
        }
        i = j;
    }
    best
}

/// Outlier detection method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OutlierMethod {
    /// |z-score| above the threshold.
    ZScore(f64),
    /// Outside `[Q1 - k*IQR, Q3 + k*IQR]`.
    Iqr(f64),
}

/// Per-column outlier indicator matrix: 1 where the cell is an outlier.
pub fn detect_outliers(m: &Matrix, method: OutlierMethod) -> Result<Matrix> {
    let (rows, cols) = m.shape();
    let mut out = DenseMatrix::zeros(rows, cols);
    for j in 0..cols {
        let col: Vec<f64> = (0..rows).map(|i| m.get(i, j)).collect();
        let (lo, hi) = bounds(&col, method)?;
        for (i, &v) in col.iter().enumerate() {
            if !v.is_nan() && (v < lo || v > hi) {
                out.set(i, j, 1.0);
            }
        }
    }
    Ok(Matrix::Dense(out).compact())
}

/// Winsorize: clamp each column into its outlier bounds.
pub fn winsorize(m: &Matrix, method: OutlierMethod) -> Result<Matrix> {
    let (rows, cols) = m.shape();
    let mut out = m.to_dense();
    for j in 0..cols {
        let col: Vec<f64> = (0..rows).map(|i| m.get(i, j)).collect();
        let (lo, hi) = bounds(&col, method)?;
        for i in 0..rows {
            let v = out.get(i, j);
            if !v.is_nan() {
                out.set(i, j, v.clamp(lo, hi));
            }
        }
    }
    Ok(Matrix::Dense(out).compact())
}

fn bounds(col: &[f64], method: OutlierMethod) -> Result<(f64, f64)> {
    let clean: Vec<f64> = col.iter().copied().filter(|v| !v.is_nan()).collect();
    if clean.len() < 2 {
        return Err(SysDsError::runtime(
            "outlier bounds need at least two observed values",
        ));
    }
    Ok(match method {
        OutlierMethod::ZScore(k) => {
            let n = clean.len() as f64;
            let mean = clean.iter().sum::<f64>() / n;
            let var = clean.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0);
            let sd = var.sqrt();
            (mean - k * sd, mean + k * sd)
        }
        OutlierMethod::Iqr(k) => {
            let mut sorted = clean;
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let q1 = quantile(&sorted, 0.25);
            let q3 = quantile(&sorted, 0.75);
            let iqr = q3 - q1;
            (q1 - k * iqr, q3 + k * iqr)
        }
    })
}

/// Linear-interpolation quantile over a sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (pos - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Drop duplicate frame rows (exact string-representation match),
/// keeping first occurrences in order.
pub fn dedup(frame: &Frame) -> Result<Frame> {
    let rows = frame.rows();
    let mut seen = std::collections::HashSet::new();
    let mut keep = Vec::new();
    let cols: Vec<Vec<String>> = (0..frame.cols())
        .map(|j| frame.column(j).unwrap().as_strings())
        .collect();
    for i in 0..rows {
        let key: String = cols
            .iter()
            .map(|c| c[i].as_str())
            .collect::<Vec<_>>()
            .join("\u{1}");
        if seen.insert(key) {
            keep.push(i);
        }
    }
    frame.select_rows(&keep)
}

/// Drop frame rows containing any missing value (empty/NA strings or NaN).
pub fn drop_invalid(frame: &Frame) -> Result<Frame> {
    let rows = frame.rows();
    let mut keep = Vec::new();
    'row: for i in 0..rows {
        for j in 0..frame.cols() {
            match frame.column(j)? {
                FrameColumn::F64(v) if v[i].is_nan() => {
                    continue 'row;
                }
                FrameColumn::Str(v) => {
                    let t = v[i].trim();
                    if t.is_empty() || t == "NA" || t == "NaN" {
                        continue 'row;
                    }
                }
                _ => {}
            }
        }
        keep.push(i);
    }
    frame.select_rows(&keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_nans() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, 10.0],
            &[f64::NAN, 20.0],
            &[3.0, f64::NAN],
            &[5.0, 30.0],
        ])
        .unwrap()
    }

    #[test]
    fn impute_mean() {
        let (m, rules) = impute(&with_nans(), ImputeMethod::Mean, 0.0).unwrap();
        assert_eq!(rules, vec![3.0, 20.0]);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(2, 1), 20.0);
        assert_eq!(m.get(0, 0), 1.0);
    }

    #[test]
    fn impute_median_and_mode() {
        let m = Matrix::from_vec(5, 1, vec![1.0, 2.0, 2.0, 9.0, f64::NAN]).unwrap();
        let (_, med) = impute(&m, ImputeMethod::Median, 0.0).unwrap();
        assert_eq!(med, vec![2.0]);
        let (_, mode_r) = impute(&m, ImputeMethod::Mode, 0.0).unwrap();
        assert_eq!(mode_r, vec![2.0]);
        let (c, _) = impute(&m, ImputeMethod::Constant, -1.0).unwrap();
        assert_eq!(c.get(4, 0), -1.0);
    }

    #[test]
    fn impute_all_missing_column_fails() {
        let m = Matrix::from_vec(2, 1, vec![f64::NAN, f64::NAN]).unwrap();
        assert!(impute(&m, ImputeMethod::Mean, 0.0).is_err());
        // but constant works
        assert!(impute(&m, ImputeMethod::Constant, 7.0).is_ok());
    }

    #[test]
    fn apply_impute_reuses_rules() {
        let (_, rules) = impute(&with_nans(), ImputeMethod::Mean, 0.0).unwrap();
        let test = Matrix::from_rows(&[&[f64::NAN, f64::NAN]]).unwrap();
        let cleaned = apply_impute(&test, &rules);
        assert_eq!(cleaned.get(0, 0), 3.0);
        assert_eq!(cleaned.get(0, 1), 20.0);
    }

    #[test]
    fn zscore_outliers() {
        let m = Matrix::from_vec(6, 1, vec![1.0, 1.1, 0.9, 1.0, 1.05, 100.0]).unwrap();
        let o = detect_outliers(&m, OutlierMethod::ZScore(2.0)).unwrap();
        assert_eq!(o.get(5, 0), 1.0);
        assert_eq!(o.get(0, 0), 0.0);
    }

    #[test]
    fn iqr_outliers() {
        let m = Matrix::from_vec(8, 1, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 1000.0]).unwrap();
        let o = detect_outliers(&m, OutlierMethod::Iqr(1.5)).unwrap();
        assert_eq!(o.get(7, 0), 1.0);
        let normal: f64 = (0..7).map(|i| o.get(i, 0)).sum();
        assert_eq!(normal, 0.0);
    }

    #[test]
    fn winsorize_clamps() {
        let m = Matrix::from_vec(6, 1, vec![1.0, 1.1, 0.9, 1.0, 1.05, 100.0]).unwrap();
        let w = winsorize(&m, OutlierMethod::ZScore(2.0)).unwrap();
        assert!(w.get(5, 0) < 100.0);
        assert_eq!(w.get(0, 0), 1.0);
        // idempotent on already-clean data
        let w2 = winsorize(&w, OutlierMethod::ZScore(4.0)).unwrap();
        assert!(w2.approx_eq(&w, 1e-12));
    }

    #[test]
    fn bounds_need_two_values() {
        let m = Matrix::from_vec(1, 1, vec![1.0]).unwrap();
        assert!(detect_outliers(&m, OutlierMethod::ZScore(2.0)).is_err());
    }

    #[test]
    fn dedup_keeps_first() {
        let f = Frame::from_columns(vec![
            ("a".into(), FrameColumn::I64(vec![1, 2, 1, 3])),
            (
                "b".into(),
                FrameColumn::Str(vec!["x".into(), "y".into(), "x".into(), "x".into()]),
            ),
        ])
        .unwrap();
        let d = dedup(&f).unwrap();
        assert_eq!(d.rows(), 3);
        assert_eq!(d.get(0, 0).unwrap().as_i64().unwrap(), 1);
        assert_eq!(d.get(2, 0).unwrap().as_i64().unwrap(), 3);
    }

    #[test]
    fn drop_invalid_removes_missing_rows() {
        let f = Frame::from_columns(vec![
            ("a".into(), FrameColumn::F64(vec![1.0, f64::NAN, 3.0])),
            (
                "b".into(),
                FrameColumn::Str(vec!["x".into(), "y".into(), "NA".into()]),
            ),
        ])
        .unwrap();
        let d = drop_invalid(&f).unwrap();
        assert_eq!(d.rows(), 1);
        assert_eq!(d.get(0, 0).unwrap().as_f64().unwrap(), 1.0);
    }
}
