//! Data integration: schema alignment and entity linking (paper §3.2).
//!
//! "We aim to provide abstractions (e.g., data extraction, schema
//! alignment, entity linking, ...) that help a user compose data
//! preparation pipelines." Two such abstractions live here:
//!
//! * [`align_schemas`] — match columns of two frames by name similarity
//!   and type compatibility, producing an alignment the caller can review
//!   (semi-automated, per the paper's stance that full automation is
//!   unrealistic);
//! * [`link_entities`] — fuzzy key matching between two frames using
//!   normalized Levenshtein similarity with a blocking pass on the first
//!   character to avoid the full cross product.

use crate::frame::Frame;
use sysds_common::{Result, SysDsError};

/// Levenshtein edit distance (iterative two-row DP).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalized similarity in `[0, 1]`: `1 - dist / max_len`.
pub fn similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// One proposed column alignment.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnMatch {
    pub left: String,
    pub right: String,
    pub name_similarity: f64,
    pub types_compatible: bool,
}

/// Normalize a column name for matching: lowercase alphanumerics only.
fn normalize(name: &str) -> String {
    name.chars()
        .filter(|c| c.is_alphanumeric())
        .collect::<String>()
        .to_lowercase()
}

/// Propose a column alignment between two frames: greedy best-match by
/// normalized name similarity above `threshold`, one-to-one.
pub fn align_schemas(left: &Frame, right: &Frame, threshold: f64) -> Vec<ColumnMatch> {
    let lnames = left.names();
    let rnames = right.names();
    let lschema = left.schema();
    let rschema = right.schema();
    // Score all pairs, then greedily take the best remaining.
    let mut scored: Vec<(f64, usize, usize)> = Vec::new();
    for (i, ln) in lnames.iter().enumerate() {
        for (j, rn) in rnames.iter().enumerate() {
            let s = similarity(&normalize(ln), &normalize(rn));
            if s >= threshold {
                scored.push((s, i, j));
            }
        }
    }
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let mut used_l = vec![false; lnames.len()];
    let mut used_r = vec![false; rnames.len()];
    let mut out = Vec::new();
    for (s, i, j) in scored {
        if used_l[i] || used_r[j] {
            continue;
        }
        used_l[i] = true;
        used_r[j] = true;
        out.push(ColumnMatch {
            left: lnames[i].clone(),
            right: rnames[j].clone(),
            name_similarity: s,
            types_compatible: lschema[i] == rschema[j]
                || (lschema[i].is_numeric() && rschema[j].is_numeric()),
        });
    }
    out
}

/// One linked entity pair (row indices into the two frames).
#[derive(Debug, Clone, PartialEq)]
pub struct EntityLink {
    pub left_row: usize,
    pub right_row: usize,
    pub score: f64,
}

/// Link rows of two frames by fuzzy matching of a key column. Keys are
/// normalized, blocked by first character, and matched greedily above
/// `threshold` (one-to-one).
pub fn link_entities(
    left: &Frame,
    left_key: &str,
    right: &Frame,
    right_key: &str,
    threshold: f64,
) -> Result<Vec<EntityLink>> {
    if !(0.0..=1.0).contains(&threshold) {
        return Err(SysDsError::runtime("link threshold must be in [0, 1]"));
    }
    let lkeys: Vec<String> = left
        .column_by_name(left_key)?
        .as_strings()
        .iter()
        .map(|s| normalize(s))
        .collect();
    let rkeys: Vec<String> = right
        .column_by_name(right_key)?
        .as_strings()
        .iter()
        .map(|s| normalize(s))
        .collect();

    // Blocking: group right rows by first character to avoid n*m compares.
    let mut blocks: std::collections::HashMap<char, Vec<usize>> = std::collections::HashMap::new();
    for (j, k) in rkeys.iter().enumerate() {
        if let Some(c) = k.chars().next() {
            blocks.entry(c).or_default().push(j);
        }
    }
    let mut scored: Vec<(f64, usize, usize)> = Vec::new();
    for (i, lk) in lkeys.iter().enumerate() {
        let Some(c) = lk.chars().next() else { continue };
        if let Some(cands) = blocks.get(&c) {
            for &j in cands {
                let s = similarity(lk, &rkeys[j]);
                if s >= threshold {
                    scored.push((s, i, j));
                }
            }
        }
    }
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let mut used_l = vec![false; lkeys.len()];
    let mut used_r = vec![false; rkeys.len()];
    let mut out = Vec::new();
    for (s, i, j) in scored {
        if used_l[i] || used_r[j] {
            continue;
        }
        used_l[i] = true;
        used_r[j] = true;
        out.push(EntityLink {
            left_row: i,
            right_row: j,
            score: s,
        });
    }
    out.sort_by_key(|l| l.left_row);
    Ok(out)
}

/// Materialize linked pairs as one joined frame (left columns then right
/// columns, right names prefixed on collision).
pub fn join_linked(left: &Frame, right: &Frame, links: &[EntityLink]) -> Result<Frame> {
    let lrows: Vec<usize> = links.iter().map(|l| l.left_row).collect();
    let rrows: Vec<usize> = links.iter().map(|l| l.right_row).collect();
    let lpart = left.select_rows(&lrows)?;
    let rpart = right.select_rows(&rrows)?;
    let mut out = Frame::new();
    for (name, j) in lpart.names().to_vec().iter().zip(0..) {
        out.push_column(name.clone(), lpart.column(j)?.clone())?;
    }
    for (name, j) in rpart.names().to_vec().iter().zip(0..) {
        let final_name = if out.column_index(name).is_ok() {
            format!("right.{name}")
        } else {
            name.clone()
        };
        out.push_column(final_name, rpart.column(j)?.clone())?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::FrameColumn;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn similarity_normalized() {
        assert_eq!(similarity("", ""), 1.0);
        assert_eq!(similarity("abc", "abc"), 1.0);
        assert!(similarity("smith", "smyth") > 0.7);
        assert!(similarity("abc", "xyz") < 0.01);
    }

    fn customers() -> Frame {
        Frame::from_columns(vec![
            (
                "customer_name".into(),
                FrameColumn::Str(vec![
                    "John Smith".into(),
                    "Maria Garcia".into(),
                    "Wei Chen".into(),
                ]),
            ),
            ("age".into(), FrameColumn::I64(vec![34, 28, 45])),
        ])
        .unwrap()
    }

    fn orders() -> Frame {
        Frame::from_columns(vec![
            (
                "CustomerName".into(),
                FrameColumn::Str(vec![
                    "Wei Chen".into(),
                    "Jon Smith".into(), // typo'd duplicate of John Smith
                    "Ahmed Hassan".into(),
                ]),
            ),
            ("Age".into(), FrameColumn::F64(vec![45.0, 34.0, 52.0])),
            ("total".into(), FrameColumn::F64(vec![10.0, 20.0, 30.0])),
        ])
        .unwrap()
    }

    #[test]
    fn schema_alignment_matches_by_normalized_name() {
        let m = align_schemas(&customers(), &orders(), 0.7);
        assert_eq!(m.len(), 2);
        let names: Vec<(&str, &str)> = m
            .iter()
            .map(|c| (c.left.as_str(), c.right.as_str()))
            .collect();
        assert!(names.contains(&("customer_name", "CustomerName")));
        assert!(names.contains(&("age", "Age")));
        // int64 vs fp64 counts as numerically compatible
        assert!(m.iter().all(|c| c.types_compatible));
    }

    #[test]
    fn alignment_is_one_to_one() {
        let left = Frame::from_columns(vec![
            ("a".into(), FrameColumn::I64(vec![1])),
            ("ab".into(), FrameColumn::I64(vec![1])),
        ])
        .unwrap();
        let right = Frame::from_columns(vec![("ab".into(), FrameColumn::I64(vec![2]))]).unwrap();
        let m = align_schemas(&left, &right, 0.4);
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].left, "ab", "exact match wins over fuzzy");
    }

    #[test]
    fn entity_linking_tolerates_typos() {
        let links = link_entities(
            &customers(),
            "customer_name",
            &orders(),
            "CustomerName",
            0.8,
        )
        .unwrap();
        // John Smith ↔ Jon Smith, Wei Chen ↔ Wei Chen
        assert_eq!(links.len(), 2);
        assert!(links
            .iter()
            .any(|l| l.left_row == 0 && l.right_row == 1 && l.score < 1.0));
        assert!(links
            .iter()
            .any(|l| l.left_row == 2 && l.right_row == 0 && l.score == 1.0));
    }

    #[test]
    fn threshold_filters_weak_links() {
        let links = link_entities(
            &customers(),
            "customer_name",
            &orders(),
            "CustomerName",
            0.999,
        )
        .unwrap();
        assert_eq!(links.len(), 1, "only the exact match survives");
        assert!(link_entities(
            &customers(),
            "customer_name",
            &orders(),
            "CustomerName",
            2.0
        )
        .is_err());
        assert!(link_entities(&customers(), "nope", &orders(), "CustomerName", 0.5).is_err());
    }

    #[test]
    fn join_linked_produces_combined_frame() {
        let links = link_entities(
            &customers(),
            "customer_name",
            &orders(),
            "CustomerName",
            0.8,
        )
        .unwrap();
        let joined = join_linked(&customers(), &orders(), &links).unwrap();
        assert_eq!(joined.rows(), 2);
        // columns: customer_name, age, CustomerName, Age, total
        assert_eq!(joined.cols(), 5);
        // row pairing is correct: ages agree across sources
        for i in 0..joined.rows() {
            let l_age = joined.column_by_name("age").unwrap().as_f64().unwrap()[i];
            let r_age = joined.column_by_name("Age").unwrap().as_f64().unwrap()[i];
            assert_eq!(l_age, r_age);
        }
    }

    #[test]
    fn name_collisions_get_prefixed() {
        let a =
            Frame::from_columns(vec![("k".into(), FrameColumn::Str(vec!["x".into()]))]).unwrap();
        let b =
            Frame::from_columns(vec![("k".into(), FrameColumn::Str(vec!["x".into()]))]).unwrap();
        let links = link_entities(&a, "k", &b, "k", 0.9).unwrap();
        let joined = join_linked(&a, &b, &links).unwrap();
        assert_eq!(joined.names(), &["k".to_string(), "right.k".to_string()]);
    }
}
