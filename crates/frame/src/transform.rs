//! Feature transformation encoders (`transformencode`/`transformapply`).
//!
//! The encoder follows SystemDS's fit/apply split: [`TransformSpec`] names
//! which columns get recoded, dummy-coded, binned, or passed through;
//! [`TransformEncoder::fit`] learns the dictionaries on training data;
//! [`TransformEncoder::apply`] maps any frame with the same schema to a
//! numeric matrix. Fitted state is exportable as a frame of `key=value`
//! tokens — rules as data, keeping the runtime stateless (paper §3.2).

use crate::frame::{Frame, FrameColumn};
use std::collections::BTreeMap;
use sysds_common::{Result, SysDsError};
use sysds_tensor::{DenseMatrix, Matrix};

/// Per-column transformation requested by the user.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnTransform {
    /// Copy the numeric value through unchanged.
    PassThrough,
    /// Map distinct values to contiguous codes `1..=K` (sorted by value).
    Recode,
    /// One-hot encode: `K` output columns of 0/1 indicators.
    DummyCode,
    /// Equi-width binning into `n` bins, codes `1..=n`.
    Bin(usize),
}

/// The transformation plan over a frame, by column name.
#[derive(Debug, Clone, Default)]
pub struct TransformSpec {
    transforms: Vec<(String, ColumnTransform)>,
}

impl TransformSpec {
    /// Empty spec: every column passes through.
    pub fn new() -> TransformSpec {
        TransformSpec::default()
    }

    /// Request recoding for a column.
    pub fn recode(mut self, col: impl Into<String>) -> Self {
        self.transforms.push((col.into(), ColumnTransform::Recode));
        self
    }

    /// Request dummy-coding for a column.
    pub fn dummy_code(mut self, col: impl Into<String>) -> Self {
        self.transforms
            .push((col.into(), ColumnTransform::DummyCode));
        self
    }

    /// Request equi-width binning for a column.
    pub fn bin(mut self, col: impl Into<String>, bins: usize) -> Self {
        self.transforms
            .push((col.into(), ColumnTransform::Bin(bins)));
        self
    }

    fn transform_for(&self, name: &str) -> ColumnTransform {
        self.transforms
            .iter()
            .rev() // later requests win
            .find(|(n, _)| n == name)
            .map_or(ColumnTransform::PassThrough, |&(_, t)| t)
    }
}

/// Fitted per-column state.
#[derive(Debug, Clone, PartialEq)]
enum FittedColumn {
    PassThrough,
    /// value -> 1-based code, ordered by value for determinism.
    Recode(BTreeMap<String, usize>),
    /// Like recode, but expanded to indicator columns on apply.
    DummyCode(BTreeMap<String, usize>),
    /// (min, width, bins)
    Bin {
        min: f64,
        width: f64,
        bins: usize,
    },
}

impl FittedColumn {
    fn output_width(&self) -> usize {
        match self {
            FittedColumn::DummyCode(map) => map.len().max(1),
            _ => 1,
        }
    }
}

/// A fitted transformation: apply to any same-schema frame.
#[derive(Debug, Clone)]
pub struct TransformEncoder {
    names: Vec<String>,
    fitted: Vec<FittedColumn>,
}

impl TransformEncoder {
    /// Learn dictionaries/bin boundaries from `frame` under `spec`.
    pub fn fit(frame: &Frame, spec: &TransformSpec) -> Result<TransformEncoder> {
        let mut fitted = Vec::with_capacity(frame.cols());
        for (j, name) in frame.names().iter().enumerate() {
            let col = frame.column(j)?;
            let f = match spec.transform_for(name) {
                // String columns cannot pass through numerically; they are
                // auto-recoded, mirroring SystemDS's implicit recode.
                ColumnTransform::PassThrough
                    if col.value_type() == sysds_common::ValueType::String =>
                {
                    FittedColumn::Recode(build_dictionary(col))
                }
                ColumnTransform::PassThrough => FittedColumn::PassThrough,
                ColumnTransform::Recode => FittedColumn::Recode(build_dictionary(col)),
                ColumnTransform::DummyCode => FittedColumn::DummyCode(build_dictionary(col)),
                ColumnTransform::Bin(bins) => {
                    if bins == 0 {
                        return Err(SysDsError::runtime("binning requires at least one bin"));
                    }
                    let vals = col.as_f64()?;
                    let clean: Vec<f64> = vals.into_iter().filter(|v| !v.is_nan()).collect();
                    if clean.is_empty() {
                        return Err(SysDsError::runtime(format!(
                            "cannot fit bins on all-missing column '{name}'"
                        )));
                    }
                    let min = clean.iter().copied().fold(f64::INFINITY, f64::min);
                    let max = clean.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let width = ((max - min) / bins as f64).max(f64::MIN_POSITIVE);
                    FittedColumn::Bin { min, width, bins }
                }
            };
            fitted.push(f);
        }
        Ok(TransformEncoder {
            names: frame.names().to_vec(),
            fitted,
        })
    }

    /// Total number of output matrix columns.
    pub fn output_cols(&self) -> usize {
        self.fitted.iter().map(FittedColumn::output_width).sum()
    }

    /// Encode a frame into a numeric matrix. Unseen categories map to code
    /// 0 (all-zero indicator row for dummy coding), mirroring SystemDS.
    pub fn apply(&self, frame: &Frame) -> Result<Matrix> {
        if frame.names() != self.names.as_slice() {
            return Err(SysDsError::runtime(
                "transformapply: frame columns differ from fit",
            ));
        }
        let rows = frame.rows();
        let out_cols = self.output_cols();
        let mut out = DenseMatrix::zeros(rows, out_cols);
        let mut base = 0usize;
        for (j, f) in self.fitted.iter().enumerate() {
            let col = frame.column(j)?;
            match f {
                FittedColumn::PassThrough => {
                    let vals = col.as_f64()?;
                    for (i, v) in vals.into_iter().enumerate() {
                        out.set(i, base, v);
                    }
                    base += 1;
                }
                FittedColumn::Recode(map) => {
                    for (i, key) in col.as_strings().into_iter().enumerate() {
                        let code = map.get(key.trim()).copied().unwrap_or(0);
                        out.set(i, base, code as f64);
                    }
                    base += 1;
                }
                FittedColumn::DummyCode(map) => {
                    let width = map.len().max(1);
                    for (i, key) in col.as_strings().into_iter().enumerate() {
                        if let Some(&code) = map.get(key.trim()) {
                            out.set(i, base + code - 1, 1.0);
                        }
                    }
                    base += width;
                }
                FittedColumn::Bin { min, width, bins } => {
                    let vals = col.as_f64()?;
                    for (i, v) in vals.into_iter().enumerate() {
                        let code = if v.is_nan() {
                            0.0
                        } else {
                            let raw = ((v - min) / width).floor() as i64 + 1;
                            raw.clamp(1, *bins as i64) as f64
                        };
                        out.set(i, base, code);
                    }
                    base += 1;
                }
            }
        }
        Ok(Matrix::Dense(out).compact())
    }

    /// Export the fitted state as a frame of `column,kind,token` rows —
    /// "rules as data". [`TransformEncoder::from_metadata`] restores it.
    pub fn to_metadata(&self) -> Frame {
        let mut cols = Vec::new();
        let mut kinds = Vec::new();
        let mut tokens = Vec::new();
        for (name, f) in self.names.iter().zip(&self.fitted) {
            match f {
                FittedColumn::PassThrough => {
                    cols.push(name.clone());
                    kinds.push("pass".to_string());
                    tokens.push(String::new());
                }
                FittedColumn::Recode(map) | FittedColumn::DummyCode(map) => {
                    let kind = if matches!(f, FittedColumn::Recode(_)) {
                        "recode"
                    } else {
                        "dummy"
                    };
                    for (key, code) in map {
                        cols.push(name.clone());
                        kinds.push(kind.to_string());
                        tokens.push(format!("{key}\u{1}{code}"));
                    }
                }
                FittedColumn::Bin { min, width, bins } => {
                    cols.push(name.clone());
                    kinds.push("bin".to_string());
                    tokens.push(format!("{min}\u{1}{width}\u{1}{bins}"));
                }
            }
        }
        Frame::from_columns(vec![
            ("column".into(), FrameColumn::Str(cols)),
            ("kind".into(), FrameColumn::Str(kinds)),
            ("token".into(), FrameColumn::Str(tokens)),
        ])
        .expect("metadata columns share length")
    }

    /// Restore an encoder from its metadata frame.
    pub fn from_metadata(meta: &Frame) -> Result<TransformEncoder> {
        let cols = meta.column_by_name("column")?.as_strings();
        let kinds = meta.column_by_name("kind")?.as_strings();
        let tokens = meta.column_by_name("token")?.as_strings();
        let mut names: Vec<String> = Vec::new();
        let mut fitted: Vec<FittedColumn> = Vec::new();
        for ((name, kind), token) in cols.iter().zip(&kinds).zip(&tokens) {
            if names.last().map(String::as_str) != Some(name.as_str()) {
                names.push(name.clone());
                fitted.push(match kind.as_str() {
                    "pass" => FittedColumn::PassThrough,
                    "recode" => FittedColumn::Recode(BTreeMap::new()),
                    "dummy" => FittedColumn::DummyCode(BTreeMap::new()),
                    "bin" => {
                        let parts: Vec<&str> = token.split('\u{1}').collect();
                        if parts.len() != 3 {
                            return Err(SysDsError::Format("malformed bin token".into()));
                        }
                        FittedColumn::Bin {
                            min: parts[0]
                                .parse()
                                .map_err(|_| SysDsError::Format("bin min".into()))?,
                            width: parts[1]
                                .parse()
                                .map_err(|_| SysDsError::Format("bin width".into()))?,
                            bins: parts[2]
                                .parse()
                                .map_err(|_| SysDsError::Format("bin count".into()))?,
                        }
                    }
                    other => {
                        return Err(SysDsError::Format(format!(
                            "unknown encoder kind '{other}'"
                        )))
                    }
                });
            }
            if matches!(kind.as_str(), "recode" | "dummy") {
                let (key, code) = token
                    .split_once('\u{1}')
                    .ok_or_else(|| SysDsError::Format("malformed recode token".into()))?;
                let code: usize = code
                    .parse()
                    .map_err(|_| SysDsError::Format("recode code".into()))?;
                match fitted.last_mut().unwrap() {
                    FittedColumn::Recode(map) | FittedColumn::DummyCode(map) => {
                        map.insert(key.to_string(), code);
                    }
                    _ => return Err(SysDsError::Format("mixed encoder kinds per column".into())),
                }
            }
        }
        Ok(TransformEncoder { names, fitted })
    }
}

fn build_dictionary(col: &FrameColumn) -> BTreeMap<String, usize> {
    let mut map = BTreeMap::new();
    for s in col.as_strings() {
        let t = s.trim().to_string();
        let next = map.len() + 1;
        map.entry(t).or_insert(next);
    }
    // Re-number by sorted order for determinism across insert orders.
    let keys: Vec<String> = map.keys().cloned().collect();
    for (k, key) in keys.into_iter().enumerate() {
        map.insert(key, k + 1);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::from_columns(vec![
            ("num".into(), FrameColumn::F64(vec![1.0, 2.0, 3.0, 4.0])),
            (
                "city".into(),
                FrameColumn::Str(vec![
                    "graz".into(),
                    "wien".into(),
                    "graz".into(),
                    "linz".into(),
                ]),
            ),
            (
                "level".into(),
                FrameColumn::Str(vec!["lo".into(), "hi".into(), "hi".into(), "lo".into()]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn recode_assigns_sorted_codes() {
        let f = sample();
        let enc = TransformEncoder::fit(&f, &TransformSpec::new().recode("city")).unwrap();
        let m = enc.apply(&f).unwrap();
        assert_eq!(m.shape(), (4, 3));
        // sorted dictionary: graz=1, linz=2, wien=3
        let city: Vec<f64> = (0..4).map(|i| m.get(i, 1)).collect();
        assert_eq!(city, vec![1.0, 3.0, 1.0, 2.0]);
    }

    #[test]
    fn dummy_code_expands_columns() {
        let f = sample();
        let enc = TransformEncoder::fit(&f, &TransformSpec::new().dummy_code("city")).unwrap();
        assert_eq!(enc.output_cols(), 1 + 3 + 1);
        let m = enc.apply(&f).unwrap();
        assert_eq!(m.shape(), (4, 5));
        // row 1 is wien -> indicator in third dummy column (cols 1..4)
        assert_eq!(m.get(1, 3), 1.0);
        assert_eq!(m.get(1, 1), 0.0);
        // exactly one indicator per row
        for i in 0..4 {
            let s: f64 = (1..4).map(|j| m.get(i, j)).sum();
            assert_eq!(s, 1.0);
        }
    }

    #[test]
    fn binning_equi_width() {
        let f = sample();
        let enc = TransformEncoder::fit(&f, &TransformSpec::new().bin("num", 2)).unwrap();
        let m = enc.apply(&f).unwrap();
        let bins: Vec<f64> = (0..4).map(|i| m.get(i, 0)).collect();
        assert_eq!(bins, vec![1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn unseen_categories_map_to_zero() {
        let f = sample();
        let enc = TransformEncoder::fit(&f, &TransformSpec::new().recode("city")).unwrap();
        let test = Frame::from_columns(vec![
            ("num".into(), FrameColumn::F64(vec![9.0])),
            ("city".into(), FrameColumn::Str(vec!["paris".into()])),
            ("level".into(), FrameColumn::Str(vec!["lo".into()])),
        ])
        .unwrap();
        let m = enc.apply(&test).unwrap();
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn apply_rejects_different_schema() {
        let f = sample();
        let enc = TransformEncoder::fit(&f, &TransformSpec::new()).unwrap();
        let other = Frame::from_columns(vec![("x".into(), FrameColumn::F64(vec![1.0]))]).unwrap();
        assert!(enc.apply(&other).is_err());
    }

    #[test]
    fn metadata_round_trip() {
        let f = sample();
        let spec = TransformSpec::new()
            .recode("city")
            .dummy_code("level")
            .bin("num", 3);
        let enc = TransformEncoder::fit(&f, &spec).unwrap();
        let meta = enc.to_metadata();
        let enc2 = TransformEncoder::from_metadata(&meta).unwrap();
        let (a, b) = (enc.apply(&f).unwrap(), enc2.apply(&f).unwrap());
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn later_spec_entries_win() {
        let f = sample();
        let spec = TransformSpec::new().recode("city").dummy_code("city");
        let enc = TransformEncoder::fit(&f, &spec).unwrap();
        assert_eq!(enc.output_cols(), 1 + 3 + 1);
    }

    #[test]
    fn zero_bins_rejected() {
        let f = sample();
        assert!(TransformEncoder::fit(&f, &TransformSpec::new().bin("num", 0)).is_err());
    }

    #[test]
    fn bin_codes_clamped_for_out_of_range() {
        let f = sample();
        let enc = TransformEncoder::fit(&f, &TransformSpec::new().bin("num", 2)).unwrap();
        let test = Frame::from_columns(vec![
            ("num".into(), FrameColumn::F64(vec![-100.0, 100.0])),
            (
                "city".into(),
                FrameColumn::Str(vec!["graz".into(), "graz".into()]),
            ),
            (
                "level".into(),
                FrameColumn::Str(vec!["lo".into(), "lo".into()]),
            ),
        ])
        .unwrap();
        let m = enc.apply(&test).unwrap();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 0), 2.0);
    }
}
