//! Frames and feature transformations (paper §2.1 L4, §3.2).
//!
//! A [`Frame`] is a 2-D table with a per-column schema — the entry point of
//! the data-science lifecycle before data turns into matrices. This crate
//! provides:
//!
//! * [`frame`] — the `Frame` container with typed columns and schema
//!   detection;
//! * [`transform`] — `transformencode`-style feature encoders (recode,
//!   dummy-code, binning, pass-through) whose fitted state is exported as
//!   plain matrices/frames, keeping the system stateless ("consuming
//!   pre-trained models and rules as tensors themselves");
//! * [`clean`] — imputation, outlier detection (z-score and IQR),
//!   winsorizing, deduplication;
//! * [`link`] — schema alignment and fuzzy entity linking across frames
//!   (the paper's data-integration abstractions);
//! * [`prep`] — scaling/normalization, train/test splits.

pub mod clean;
pub mod frame;
pub mod link;
pub mod prep;
pub mod transform;

pub use frame::{Frame, FrameColumn};
pub use transform::{TransformEncoder, TransformSpec};
