//! The `Frame` container: a 2-D table with a per-column schema.

use sysds_common::{Result, ScalarValue, SysDsError, ValueType};
use sysds_tensor::{DataTensorBlock, Matrix};

/// One typed column of a frame.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameColumn {
    F64(Vec<f64>),
    I64(Vec<i64>),
    Bool(Vec<bool>),
    Str(Vec<String>),
}

impl FrameColumn {
    /// The column's value type.
    pub fn value_type(&self) -> ValueType {
        match self {
            FrameColumn::F64(_) => ValueType::Fp64,
            FrameColumn::I64(_) => ValueType::Int64,
            FrameColumn::Bool(_) => ValueType::Boolean,
            FrameColumn::Str(_) => ValueType::String,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            FrameColumn::F64(v) => v.len(),
            FrameColumn::I64(v) => v.len(),
            FrameColumn::Bool(v) => v.len(),
            FrameColumn::Str(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cell read as a scalar value.
    pub fn get(&self, i: usize) -> ScalarValue {
        match self {
            FrameColumn::F64(v) => ScalarValue::F64(v[i]),
            FrameColumn::I64(v) => ScalarValue::I64(v[i]),
            FrameColumn::Bool(v) => ScalarValue::Bool(v[i]),
            FrameColumn::Str(v) => ScalarValue::Str(v[i].clone()),
        }
    }

    /// Numeric view of the column; strings must parse (empty string and
    /// "NA" map to NaN, the frame-level missing-value marker).
    pub fn as_f64(&self) -> Result<Vec<f64>> {
        Ok(match self {
            FrameColumn::F64(v) => v.clone(),
            FrameColumn::I64(v) => v.iter().map(|&x| x as f64).collect(),
            FrameColumn::Bool(v) => v.iter().map(|&b| f64::from(b)).collect(),
            FrameColumn::Str(v) => {
                let mut out = Vec::with_capacity(v.len());
                for s in v {
                    let t = s.trim();
                    if t.is_empty() || t == "NA" || t == "NaN" {
                        out.push(f64::NAN);
                    } else {
                        out.push(t.parse::<f64>().map_err(|_| {
                            SysDsError::TypeError(format!("cannot convert '{s}' to fp64"))
                        })?);
                    }
                }
                out
            }
        })
    }

    /// String view of the column (always succeeds).
    pub fn as_strings(&self) -> Vec<String> {
        match self {
            FrameColumn::Str(v) => v.clone(),
            FrameColumn::F64(v) => v
                .iter()
                .map(|x| sysds_common::value::format_f64(*x))
                .collect(),
            FrameColumn::I64(v) => v.iter().map(|x| x.to_string()).collect(),
            FrameColumn::Bool(v) => v
                .iter()
                .map(|&b| if b { "TRUE" } else { "FALSE" }.to_string())
                .collect(),
        }
    }
}

/// A 2-D table with named, typed columns (SystemDS `Frame`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Frame {
    names: Vec<String>,
    columns: Vec<FrameColumn>,
}

impl Frame {
    /// Empty frame.
    pub fn new() -> Frame {
        Frame::default()
    }

    /// Build from `(name, column)` pairs; all columns must share length.
    pub fn from_columns(cols: Vec<(String, FrameColumn)>) -> Result<Frame> {
        let mut f = Frame::new();
        for (name, col) in cols {
            f.push_column(name, col)?;
        }
        Ok(f)
    }

    /// Append a column; length must match existing columns.
    pub fn push_column(&mut self, name: impl Into<String>, col: FrameColumn) -> Result<()> {
        if let Some(first) = self.columns.first() {
            if first.len() != col.len() {
                return Err(SysDsError::runtime(format!(
                    "frame column length mismatch: {} vs {}",
                    first.len(),
                    col.len()
                )));
            }
        }
        self.names.push(name.into());
        self.columns.push(col);
        Ok(())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.columns.first().map_or(0, FrameColumn::len)
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.columns.len()
    }

    /// Column names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Per-column schema.
    pub fn schema(&self) -> Vec<ValueType> {
        self.columns.iter().map(FrameColumn::value_type).collect()
    }

    /// Borrow a column by position.
    pub fn column(&self, j: usize) -> Result<&FrameColumn> {
        self.columns
            .get(j)
            .ok_or_else(|| SysDsError::IndexOutOfBounds {
                msg: format!("frame column {j} of {}", self.cols()),
            })
    }

    /// Find a column index by name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.names
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| SysDsError::runtime(format!("unknown frame column '{name}'")))
    }

    /// Borrow a column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&FrameColumn> {
        self.column(self.column_index(name)?)
    }

    /// Replace a column's data in place.
    pub fn set_column(&mut self, j: usize, col: FrameColumn) -> Result<()> {
        if col.len() != self.rows() {
            return Err(SysDsError::runtime("replacement column length mismatch"));
        }
        if j >= self.cols() {
            return Err(SysDsError::IndexOutOfBounds {
                msg: format!("frame column {j}"),
            });
        }
        self.columns[j] = col;
        Ok(())
    }

    /// Cell read.
    pub fn get(&self, i: usize, j: usize) -> Result<ScalarValue> {
        if i >= self.rows() {
            return Err(SysDsError::IndexOutOfBounds {
                msg: format!("frame row {i}"),
            });
        }
        Ok(self.column(j)?.get(i))
    }

    /// Select a subset of rows (by index) into a new frame.
    pub fn select_rows(&self, idx: &[usize]) -> Result<Frame> {
        for &i in idx {
            if i >= self.rows() {
                return Err(SysDsError::IndexOutOfBounds {
                    msg: format!("frame row {i}"),
                });
            }
        }
        let mut out = Frame::new();
        for (name, col) in self.names.iter().zip(&self.columns) {
            let picked = match col {
                FrameColumn::F64(v) => FrameColumn::F64(idx.iter().map(|&i| v[i]).collect()),
                FrameColumn::I64(v) => FrameColumn::I64(idx.iter().map(|&i| v[i]).collect()),
                FrameColumn::Bool(v) => FrameColumn::Bool(idx.iter().map(|&i| v[i]).collect()),
                FrameColumn::Str(v) => {
                    FrameColumn::Str(idx.iter().map(|&i| v[i].clone()).collect())
                }
            };
            out.push_column(name.clone(), picked)?;
        }
        Ok(out)
    }

    /// Convert every column to numbers, producing a dense [`Matrix`]
    /// (strings must parse; missing values become NaN).
    pub fn to_matrix(&self) -> Result<Matrix> {
        let (rows, cols) = (self.rows(), self.cols());
        let mut data = vec![0.0f64; rows * cols];
        for (j, col) in self.columns.iter().enumerate() {
            let vals = col.as_f64()?;
            for (i, v) in vals.into_iter().enumerate() {
                data[i * cols + j] = v;
            }
        }
        Matrix::from_vec(rows, cols, data)
    }

    /// Build a single-schema frame from a matrix (all FP64 columns).
    pub fn from_matrix(m: &Matrix, names: Option<Vec<String>>) -> Result<Frame> {
        let (rows, cols) = m.shape();
        let names = match names {
            Some(n) if n.len() != cols => {
                return Err(SysDsError::runtime("frame name count mismatch"))
            }
            Some(n) => n,
            None => (1..=cols).map(|j| format!("C{j}")).collect(),
        };
        let mut f = Frame::new();
        for (j, name) in names.into_iter().enumerate() {
            let col = (0..rows).map(|i| m.get(i, j)).collect();
            f.push_column(name, FrameColumn::F64(col))?;
        }
        Ok(f)
    }

    /// Convert to the heterogeneous tensor data model (paper §2.4).
    pub fn to_data_tensor(&self) -> Result<DataTensorBlock> {
        let rows = self.rows();
        let mut tensors = Vec::with_capacity(self.cols());
        for col in &self.columns {
            let mut t = sysds_tensor::BasicTensorBlock::zeros(col.value_type(), vec![rows]);
            for i in 0..rows {
                t.set(&[i], col.get(i))?;
            }
            tensors.push(t);
        }
        DataTensorBlock::from_columns(tensors)
    }

    /// Detect the tightest value type for each string column and convert
    /// (paper §3.2 "schema alignment"): boolean ⊂ int64 ⊂ fp64 ⊂ string.
    pub fn detect_schema(&self) -> Frame {
        let mut out = Frame::new();
        for (name, col) in self.names.iter().zip(&self.columns) {
            let converted = match col {
                FrameColumn::Str(v) => detect_column(v),
                other => other.clone(),
            };
            out.push_column(name.clone(), converted)
                .expect("lengths preserved");
        }
        out
    }
}

fn detect_column(v: &[String]) -> FrameColumn {
    let mut all_bool = true;
    let mut all_int = true;
    let mut all_f64 = true;
    for s in v {
        let t = s.trim();
        if t.is_empty() || t == "NA" {
            // Missing values do not constrain the type but rule out
            // bool/int (which have no NaN representation).
            all_bool = false;
            all_int = false;
            continue;
        }
        if !matches!(t, "TRUE" | "FALSE" | "true" | "false") {
            all_bool = false;
        }
        if t.parse::<i64>().is_err() {
            all_int = false;
        }
        if t.parse::<f64>().is_err() {
            all_f64 = false;
        }
    }
    if all_bool {
        FrameColumn::Bool(
            v.iter()
                .map(|s| matches!(s.trim(), "TRUE" | "true"))
                .collect(),
        )
    } else if all_int {
        FrameColumn::I64(v.iter().map(|s| s.trim().parse().unwrap()).collect())
    } else if all_f64 {
        FrameColumn::F64(
            v.iter()
                .map(|s| {
                    let t = s.trim();
                    if t.is_empty() || t == "NA" {
                        f64::NAN
                    } else {
                        t.parse().unwrap()
                    }
                })
                .collect(),
        )
    } else {
        FrameColumn::Str(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::from_columns(vec![
            ("age".into(), FrameColumn::I64(vec![30, 40, 50])),
            ("score".into(), FrameColumn::F64(vec![1.5, 2.5, 3.5])),
            (
                "city".into(),
                FrameColumn::Str(vec!["graz".into(), "wien".into(), "graz".into()]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let f = sample();
        assert_eq!(f.rows(), 3);
        assert_eq!(f.cols(), 3);
        assert_eq!(
            f.schema(),
            vec![ValueType::Int64, ValueType::Fp64, ValueType::String]
        );
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut f = sample();
        assert!(f.push_column("bad", FrameColumn::F64(vec![1.0])).is_err());
    }

    #[test]
    fn column_lookup_by_name() {
        let f = sample();
        assert_eq!(f.column_index("score").unwrap(), 1);
        assert!(f.column_index("missing").is_err());
        assert_eq!(f.column_by_name("age").unwrap().len(), 3);
    }

    #[test]
    fn cell_access() {
        let f = sample();
        assert_eq!(f.get(1, 0).unwrap(), ScalarValue::I64(40));
        assert_eq!(f.get(2, 2).unwrap(), ScalarValue::Str("graz".into()));
        assert!(f.get(3, 0).is_err());
        assert!(f.get(0, 9).is_err());
    }

    #[test]
    fn select_rows_subset() {
        let f = sample();
        let s = f.select_rows(&[2, 0]).unwrap();
        assert_eq!(s.rows(), 2);
        assert_eq!(s.get(0, 0).unwrap(), ScalarValue::I64(50));
        assert_eq!(s.get(1, 0).unwrap(), ScalarValue::I64(30));
        assert!(f.select_rows(&[5]).is_err());
    }

    #[test]
    fn to_matrix_numeric_columns() {
        let f = Frame::from_columns(vec![
            ("a".into(), FrameColumn::I64(vec![1, 2])),
            ("b".into(), FrameColumn::F64(vec![0.5, 1.5])),
        ])
        .unwrap();
        let m = f.to_matrix().unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(1, 0), 2.0);
        assert_eq!(m.get(0, 1), 0.5);
        // string column that is not numeric fails
        assert!(sample().to_matrix().is_err());
    }

    #[test]
    fn matrix_round_trip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let f = Frame::from_matrix(&m, None).unwrap();
        assert_eq!(f.names(), &["C1".to_string(), "C2".to_string()]);
        assert!(f.to_matrix().unwrap().approx_eq(&m, 0.0));
        assert!(Frame::from_matrix(&m, Some(vec!["only-one".into()])).is_err());
    }

    #[test]
    fn schema_detection() {
        let f = Frame::from_columns(vec![
            ("i".into(), FrameColumn::Str(vec!["1".into(), "2".into()])),
            ("d".into(), FrameColumn::Str(vec!["1.5".into(), "2".into()])),
            (
                "b".into(),
                FrameColumn::Str(vec!["TRUE".into(), "false".into()]),
            ),
            ("s".into(), FrameColumn::Str(vec!["x".into(), "2".into()])),
            (
                "m".into(),
                FrameColumn::Str(vec!["1.0".into(), "NA".into()]),
            ),
        ])
        .unwrap()
        .detect_schema();
        assert_eq!(
            f.schema(),
            vec![
                ValueType::Int64,
                ValueType::Fp64,
                ValueType::Boolean,
                ValueType::String,
                ValueType::Fp64
            ]
        );
        // missing value became NaN
        let vals = f.column(4).unwrap().as_f64().unwrap();
        assert!(vals[1].is_nan());
    }

    #[test]
    fn to_data_tensor_schema_matches() {
        let f = sample();
        let t = f.to_data_tensor().unwrap();
        assert_eq!(t.dims(), &[3, 3]);
        assert_eq!(t.schema(), f.schema().as_slice());
        assert_eq!(t.get(&[0, 2]).unwrap(), ScalarValue::Str("graz".into()));
    }

    #[test]
    fn missing_string_values_to_nan() {
        let c = FrameColumn::Str(vec!["1.0".into(), "".into(), "NA".into()]);
        let v = c.as_f64().unwrap();
        assert_eq!(v[0], 1.0);
        assert!(v[1].is_nan() && v[2].is_nan());
    }
}
