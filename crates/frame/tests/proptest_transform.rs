#![allow(clippy::needless_range_loop)]

//! Property tests over the transformation encoders and cleaning
//! primitives: encode/decode invariants that must hold for any data.

use proptest::prelude::*;
use sysds_frame::clean::{self, ImputeMethod, OutlierMethod};
use sysds_frame::prep;
use sysds_frame::{Frame, FrameColumn, TransformEncoder, TransformSpec};
use sysds_tensor::kernels::gen;

fn string_frame(categories: Vec<String>, numbers: Vec<f64>) -> Frame {
    Frame::from_columns(vec![
        ("cat".into(), FrameColumn::Str(categories)),
        ("num".into(), FrameColumn::F64(numbers)),
    ])
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn recode_codes_are_dense_and_consistent(
        cats in proptest::collection::vec("[a-e]{1,2}", 1..50),
    ) {
        let n = cats.len();
        let f = string_frame(cats.clone(), vec![0.0; n]);
        let enc = TransformEncoder::fit(&f, &TransformSpec::new().recode("cat")).unwrap();
        let m = enc.apply(&f).unwrap();
        // codes are 1..=K with no gaps, identical strings → identical codes
        let mut seen = std::collections::HashMap::new();
        let mut max_code = 0.0f64;
        for (i, c) in cats.iter().enumerate() {
            let code = m.get(i, 0);
            prop_assert!(code >= 1.0);
            max_code = max_code.max(code);
            if let Some(&prev) = seen.get(c) {
                prop_assert_eq!(prev, code);
            }
            seen.insert(c.clone(), code);
        }
        prop_assert_eq!(max_code as usize, seen.len());
    }

    #[test]
    fn dummy_code_rows_sum_to_one(cats in proptest::collection::vec("[a-d]", 1..40)) {
        let n = cats.len();
        let f = string_frame(cats, vec![1.0; n]);
        let enc = TransformEncoder::fit(&f, &TransformSpec::new().dummy_code("cat")).unwrap();
        let m = enc.apply(&f).unwrap();
        let width = enc.output_cols() - 1; // minus the passthrough column
        for i in 0..n {
            let s: f64 = (0..width).map(|j| m.get(i, j)).sum();
            prop_assert_eq!(s, 1.0, "exactly one indicator per row");
        }
    }

    #[test]
    fn bin_codes_in_range(
        nums in proptest::collection::vec(-1e3f64..1e3, 2..60),
        bins in 1usize..10,
    ) {
        let n = nums.len();
        let f = string_frame(vec!["x".into(); n], nums);
        let enc = TransformEncoder::fit(&f, &TransformSpec::new().bin("num", bins)).unwrap();
        let m = enc.apply(&f).unwrap();
        for i in 0..n {
            let code = m.get(i, 1);
            prop_assert!(code >= 1.0 && code <= bins as f64);
        }
    }

    #[test]
    fn metadata_round_trip_equivalence(
        cats in proptest::collection::vec("[a-c]{1,2}", 2..30),
        bins in 2usize..6,
    ) {
        let n = cats.len();
        let nums: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let f = string_frame(cats, nums);
        let spec = TransformSpec::new().dummy_code("cat").bin("num", bins);
        let enc = TransformEncoder::fit(&f, &spec).unwrap();
        let enc2 = TransformEncoder::from_metadata(&enc.to_metadata()).unwrap();
        let (a, b) = (enc.apply(&f).unwrap(), enc2.apply(&f).unwrap());
        prop_assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn impute_removes_all_nans_and_preserves_observed(
        mut vals in proptest::collection::vec(-100f64..100.0, 3..50),
        nan_at in proptest::collection::vec(0usize..50, 0..5),
    ) {
        for &i in &nan_at {
            if i < vals.len() - 1 {
                vals[i] = f64::NAN;
            }
        }
        // guarantee at least one observed value
        let last = vals.len() - 1;
        vals[last] = 1.0;
        let n = vals.len();
        let m = sysds_tensor::Matrix::from_vec(n, 1, vals.clone()).unwrap();
        let (fixed, _) = clean::impute(&m, ImputeMethod::Mean, 0.0).unwrap();
        for i in 0..n {
            prop_assert!(!fixed.get(i, 0).is_nan());
            if !vals[i].is_nan() {
                prop_assert_eq!(fixed.get(i, 0), vals[i]);
            }
        }
    }

    #[test]
    fn winsorize_bounds_all_cells(seed in any::<u64>(), k in 1.0f64..4.0) {
        let m = gen::rand_uniform(40, 3, -10.0, 10.0, 1.0, seed);
        let w = clean::winsorize(&m, OutlierMethod::ZScore(k)).unwrap();
        let o = clean::detect_outliers(&w, OutlierMethod::ZScore(k * 1.5)).unwrap();
        // after clamping at k sigma, nothing lies beyond 1.5k sigma
        prop_assert_eq!(o.nnz(), 0);
    }

    #[test]
    fn split_partitions_exactly(rows in 4usize..100, frac in 0.1f64..0.9, seed in any::<u64>()) {
        let (x, y) = gen::synthetic_regression(rows, 3, 1.0, 0.1, seed);
        let (xtr, ytr, xte, yte) = prep::train_test_split(&x, &y, frac, seed).unwrap();
        prop_assert_eq!(xtr.rows() + xte.rows(), rows);
        prop_assert_eq!(ytr.rows(), xtr.rows());
        prop_assert_eq!(yte.rows(), xte.rows());
        prop_assert!(xtr.rows() >= 1);
    }

    #[test]
    fn scale_apply_is_invertible(seed in any::<u64>()) {
        let m = gen::rand_uniform(30, 4, -5.0, 5.0, 1.0, seed);
        let rules = prep::scale_fit(&m, true, true);
        let scaled = prep::scale_apply(&m, &rules).unwrap();
        // invert: x = z * sd + mean
        for i in 0..30 {
            for j in 0..4 {
                let back = scaled.get(i, j) * rules.scale[j] + rules.shift[j];
                prop_assert!((back - m.get(i, j)).abs() < 1e-9);
            }
        }
    }
}
