//! Input shrinking for failing seeds.
//!
//! Two reduction passes, both validated by re-running the differential
//! oracle on every candidate (a candidate is kept only if it *still*
//! diverges):
//!
//! 1. **Dimension shrinking**: regenerate the same seed with `max_dim`
//!    halved (16 → 8 → 4 → 2). The generator is deterministic in
//!    `(seed, options)`, so this reliably produces the "same program,
//!    smaller data" — usually the single biggest reduction.
//! 2. **Statement slicing**: repeatedly try to delete one statement plus
//!    its transitive dependents (everything reading a deleted definition),
//!    from the last statement backwards, until a fixpoint.
//!
//! The result is the smallest still-diverging script found, suitable for
//! committing to `tests/corpus/` as a regression repro.

use crate::gen::{generate, GenOptions, Script, Stmt};
use crate::oracle::Divergence;

/// Re-check callback: `Some(divergence)` when the candidate still fails.
pub type Check<'a> = dyn Fn(&Script) -> Option<Divergence> + 'a;

/// Remove `stmts[victim]` and every later statement that (transitively)
/// reads a removed definition. Returns `None` when the slice would leave
/// no compared outputs.
fn slice_out(script: &Script, victim: usize) -> Option<Script> {
    let mut removed_defs: Vec<String> = script.stmts[victim].defines.clone();
    let mut stmts: Vec<Stmt> = script.stmts[..victim].to_vec();
    for s in &script.stmts[victim + 1..] {
        if s.uses.iter().any(|u| removed_defs.contains(u)) {
            removed_defs.extend(s.defines.iter().cloned());
        } else {
            stmts.push(s.clone());
        }
    }
    let outputs: Vec<String> = script
        .outputs
        .iter()
        .filter(|o| !removed_defs.contains(o))
        .cloned()
        .collect();
    if outputs.is_empty() || stmts.is_empty() {
        return None;
    }
    Some(Script {
        seed: script.seed,
        stmts,
        outputs,
        fed_input: script.fed_input,
    })
}

/// Shrink a diverging script to a smaller still-diverging one.
///
/// `opts` are the options the script was generated with (used for the
/// dimension-shrinking pass; pass `None` for corpus entries that were not
/// generated this session, which skips that pass).
pub fn shrink(script: &Script, opts: Option<GenOptions>, check: &Check) -> Script {
    let mut best = script.clone();

    // Pass 1: same seed, smaller dims.
    if let Some(base) = opts {
        let mut dim = base.max_dim;
        while dim > 2 {
            dim /= 2;
            let candidate = generate(
                best.seed,
                GenOptions {
                    max_dim: dim.max(2),
                    ..base
                },
            );
            if check(&candidate).is_some() {
                best = candidate;
            } else {
                break;
            }
        }
    }

    // Pass 2: statement slicing to a fixpoint. Walk from the end so late,
    // irrelevant statements go first; restart after every success because
    // indices shift.
    loop {
        let mut reduced = false;
        for victim in (0..best.stmts.len()).rev() {
            if best.stmts.len() == 1 {
                break;
            }
            if let Some(candidate) = slice_out(&best, victim) {
                if candidate.stmts.len() < best.stmts.len() && check(&candidate).is_some() {
                    best = candidate;
                    reduced = true;
                    break;
                }
            }
        }
        if !reduced {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stmt(text: &str, defines: &[&str], uses: &[&str]) -> Stmt {
        Stmt {
            text: text.into(),
            defines: defines.iter().map(|s| s.to_string()).collect(),
            uses: uses.iter().map(|s| s.to_string()).collect(),
        }
    }

    fn three_stmt_script() -> Script {
        Script {
            seed: 1,
            stmts: vec![
                stmt("a = rand(rows=2, cols=2, seed=1)", &["a"], &[]),
                stmt("b = a + 1", &["b"], &["a"]),
                stmt("c = 7", &["c"], &[]),
            ],
            outputs: vec!["a".into(), "b".into(), "c".into()],
            fed_input: None,
        }
    }

    #[test]
    fn slicing_removes_dependents_transitively() {
        let s = three_stmt_script();
        let sliced = slice_out(&s, 0).expect("outputs remain");
        // Removing `a` also removes `b` (reads a); `c` survives.
        assert_eq!(sliced.stmts.len(), 1);
        assert_eq!(sliced.outputs, vec!["c".to_string()]);
    }

    #[test]
    fn slicing_refuses_to_empty_the_script() {
        let s = Script {
            seed: 1,
            stmts: vec![stmt("a = 1", &["a"], &[])],
            outputs: vec!["a".into()],
            fed_input: None,
        };
        assert!(slice_out(&s, 0).is_none());
    }

    #[test]
    fn shrink_keeps_only_what_the_failure_needs() {
        // Pretend the divergence is "output c differs": any candidate still
        // defining c keeps failing, so a and b must be sliced away.
        let s = three_stmt_script();
        let check = |cand: &Script| {
            cand.outputs.contains(&"c".to_string()).then(|| Divergence {
                seed: 1,
                config_a: "reference".into(),
                config_b: "fusion".into(),
                variable: "c".into(),
                detail: "test".into(),
                fingerprint_a: "0".into(),
                fingerprint_b: "1".into(),
            })
        };
        let out = shrink(&s, None, &check);
        assert_eq!(out.stmts.len(), 1);
        assert_eq!(out.stmts[0].defines, vec!["c".to_string()]);
    }

    #[test]
    fn shrink_never_returns_a_passing_script() {
        // A checker that always fails keeps the script non-empty.
        let s = three_stmt_script();
        let check = |_: &Script| {
            Some(Divergence {
                seed: 1,
                config_a: "a".into(),
                config_b: "b".into(),
                variable: "v".into(),
                detail: "d".into(),
                fingerprint_a: "0".into(),
                fingerprint_b: "1".into(),
            })
        };
        let out = shrink(&s, None, &check);
        assert!(!out.stmts.is_empty());
        assert!(!out.outputs.is_empty());
    }
}
