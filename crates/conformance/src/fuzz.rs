//! The fuzzing driver behind `sysds fuzz`.
//!
//! Derives one independent generator seed per iteration via
//! `sysds_common::rng::split(seed, i)`, runs the differential oracle on the
//! generated script, shrinks any failure, and (when a corpus directory is
//! given) writes the minimized repro there. Every federated-compatible
//! iteration (every `fed_every`-th) additionally cross-checks in-process
//! against TCP transports.
//!
//! The report is **byte-for-byte deterministic** for a given `(seed,
//! iters)` pair: no wall-clock, no paths, no map iteration order — so two
//! runs of `sysds fuzz --seed S --iters N` must print identical bytes
//! (pinned by `tests/fuzz_cli.rs`).

use crate::corpus;
use crate::gen::{generate, GenOptions};
use crate::oracle::{check_script, Divergence};
use crate::shrink::shrink;
use std::path::PathBuf;
use sysds_common::rng::split;
use sysds_common::Result;

/// Options for one fuzzing campaign.
#[derive(Debug, Clone)]
pub struct FuzzOptions {
    /// Campaign seed; iteration `i` fuzzes `split(seed, i)`.
    pub seed: u64,
    /// Number of scripts to generate and cross-check.
    pub iters: u64,
    /// Where to write minimized repros (and optional samples).
    pub corpus_dir: Option<PathBuf>,
    /// Every Nth iteration generates a federated-compatible script
    /// (0 disables federated iterations).
    pub fed_every: u64,
    /// Upper bound on generated matrix dimensions.
    pub max_dim: usize,
    /// When Some(n) and a corpus dir is set, also save every `n`-th
    /// *passing* script as a corpus sample (seeds the replay suite with
    /// feature-diverse green entries).
    pub save_samples: Option<u64>,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 0,
            iters: 100,
            corpus_dir: None,
            fed_every: 10,
            max_dim: 16,
            save_samples: None,
        }
    }
}

/// Outcome of a campaign. Rendering is deterministic.
#[derive(Debug, Default)]
pub struct FuzzReport {
    pub iters: u64,
    pub fed_iters: u64,
    /// Shrunk divergences, in iteration order.
    pub divergences: Vec<Divergence>,
    /// Corpus entries written (repros + samples), in write order,
    /// file names only.
    pub corpus_written: Vec<String>,
}

impl FuzzReport {
    pub fn passed(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Deterministic report text (stdout of `sysds fuzz`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "conformance fuzz: {} iterations ({} federated), {} divergence(s)\n",
            self.iters,
            self.fed_iters,
            self.divergences.len()
        ));
        for d in &self.divergences {
            out.push_str("DIVERGENCE ");
            out.push_str(&d.render());
            out.push('\n');
        }
        for name in &self.corpus_written {
            out.push_str(&format!("corpus: {name}\n"));
        }
        out.push_str(if self.passed() {
            "result: PASS\n"
        } else {
            "result: FAIL\n"
        });
        out
    }
}

/// Run a fuzzing campaign.
pub fn run(opts: &FuzzOptions) -> Result<FuzzReport> {
    let mut report = FuzzReport::default();
    for i in 0..opts.iters {
        let fed = opts.fed_every > 0 && i % opts.fed_every == opts.fed_every - 1;
        let gen_opts = GenOptions {
            max_dim: opts.max_dim,
            fed,
            ..GenOptions::default()
        };
        let script_seed = split(opts.seed, i);
        let script = generate(script_seed, gen_opts);
        if fed {
            report.fed_iters += 1;
        }
        match check_script(&script)? {
            None => {
                if let (Some(dir), Some(every)) = (&opts.corpus_dir, opts.save_samples) {
                    if every > 0 && i % every == 0 {
                        let path = corpus::write_entry(dir, &script)?;
                        report
                            .corpus_written
                            .push(path.file_name().unwrap().to_string_lossy().into_owned());
                    }
                }
            }
            Some(_) => {
                // Shrink while the oracle still reports a divergence; the
                // final divergence re-derived from the minimized script is
                // what we report and commit.
                let check = |cand: &crate::gen::Script| check_script(cand).ok().flatten();
                let minimized = shrink(&script, Some(gen_opts), &check);
                let final_div = check_script(&minimized)?.unwrap_or_else(|| Divergence {
                    seed: script_seed,
                    config_a: "reference".into(),
                    config_b: "unknown".into(),
                    variable: "<flaky>".into(),
                    detail: "divergence did not reproduce on the minimized script".into(),
                    fingerprint_a: "n/a".into(),
                    fingerprint_b: "n/a".into(),
                });
                if let Some(dir) = &opts.corpus_dir {
                    let path = corpus::write_entry(dir, &minimized)?;
                    report
                        .corpus_written
                        .push(path.file_name().unwrap().to_string_lossy().into_owned());
                }
                report.divergences.push(final_div);
            }
        }
        report.iters += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_campaign_passes_and_is_deterministic() {
        let opts = FuzzOptions {
            seed: 1,
            iters: 4,
            fed_every: 4,
            max_dim: 6,
            ..FuzzOptions::default()
        };
        let a = run(&opts).unwrap();
        let b = run(&opts).unwrap();
        assert!(a.passed(), "divergences: {:?}", a.divergences);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.fed_iters, 1);
    }

    #[test]
    fn samples_are_written_when_requested() {
        let dir = sysds_common::testing::unique_temp_dir("sysds-conf-samples");
        let opts = FuzzOptions {
            seed: 2,
            iters: 3,
            fed_every: 0,
            max_dim: 5,
            corpus_dir: Some(dir.clone()),
            save_samples: Some(2),
        };
        let report = run(&opts).unwrap();
        assert!(report.passed());
        // Iterations 0 and 2 are sampled.
        assert_eq!(report.corpus_written.len(), 2);
        assert_eq!(corpus::list_entries(&dir).unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
