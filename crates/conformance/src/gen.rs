//! Seeded random DML program generator.
//!
//! Produces scripts that are *deterministic* (every `rand` call carries an
//! explicit seed), *numerically tame* (matrix-valued assignments are wrapped
//! in contractions like `sigmoid`, divisions are guarded away from zero, no
//! discontinuous ops like `round` or comparisons on data), and *feature
//! dense*: elementwise chains feeding aggregates (fusion), matmuls and
//! `t(X)%*%X` (tsmm rewrite), `for` loops appending with `cbind` (lineage
//! partial reuse), `parfor` column writes (result merge), `while`/`if`
//! control flow (dynamic recompilation), and DML-bodied builtins.
//!
//! The same seed always yields byte-identical DML, so a failing seed is a
//! complete bug report on its own.

use sysds_common::rng::{split, XorShift64};

/// One generated statement (possibly a multi-line loop), with its def/use
/// sets so the shrinker can slice the program.
#[derive(Debug, Clone)]
pub struct Stmt {
    /// Rendered DML (one or more lines, no trailing newline).
    pub text: String,
    /// Variables this statement (re)defines.
    pub defines: Vec<String>,
    /// Variables this statement reads.
    pub uses: Vec<String>,
}

/// The federated input contract of a script: a matrix named `X` of this
/// shape is bound by the harness (locally or scattered across sites).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FedInput {
    pub rows: usize,
    pub cols: usize,
}

/// A generated DML script plus the metadata the oracle needs to run it.
#[derive(Debug, Clone)]
pub struct Script {
    /// Seed that produced this script (0 for hand-written corpus entries).
    pub seed: u64,
    pub stmts: Vec<Stmt>,
    /// Variables to compare across configurations, in definition order —
    /// divergence reports name the *first* differing one.
    pub outputs: Vec<String>,
    /// `Some` for federated-compatible scripts (input `X` bound by the
    /// harness); `None` for self-contained scripts.
    pub fed_input: Option<FedInput>,
}

impl Script {
    /// Render to executable DML.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.stmts {
            out.push_str(&s.text);
            out.push('\n');
        }
        out
    }
}

/// Generator knobs. `Default` matches the CLI defaults.
#[derive(Debug, Clone, Copy)]
pub struct GenOptions {
    /// Upper bound on generated top-level statements.
    pub max_stmts: usize,
    /// Upper bound on any matrix dimension.
    pub max_dim: usize,
    /// Generate a federated-compatible script (restricted op set on `X`).
    pub fed: bool,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            max_stmts: 12,
            max_dim: 16,
            fed: false,
        }
    }
}

#[derive(Debug, Clone)]
struct MatVar {
    name: String,
    rows: usize,
    cols: usize,
}

struct Gen {
    rng: XorShift64,
    mats: Vec<MatVar>,
    /// Integer scalars with compile-time-known values (loop counters,
    /// literals) — safe to branch on without fp-order hazards.
    ints: Vec<(String, i64)>,
    stmts: Vec<Stmt>,
    outputs: Vec<String>,
    next_id: usize,
    max_dim: usize,
}

/// Generate a script for `seed`.
pub fn generate(seed: u64, opts: GenOptions) -> Script {
    if opts.fed {
        generate_fed(seed, opts)
    } else {
        generate_local(seed, opts)
    }
}

fn generate_local(seed: u64, opts: GenOptions) -> Script {
    let mut g = Gen {
        rng: XorShift64::new(split(seed, 0x9e37)),
        mats: Vec::new(),
        ints: Vec::new(),
        stmts: Vec::new(),
        outputs: Vec::new(),
        next_id: 0,
        max_dim: opts.max_dim.max(2),
    };
    // Leaves first so every later production has operands.
    let leaves = 2 + g.rng.next_below(2);
    for _ in 0..leaves {
        g.emit_leaf();
    }
    let body = 2 + g
        .rng
        .next_below(opts.max_stmts.saturating_sub(leaves).max(1));
    for _ in 0..body {
        match g.rng.next_below(10) {
            0 => g.emit_leaf(),
            1 | 2 | 3 => g.emit_elementwise(),
            4 | 5 => g.emit_aggregate(),
            6 => g.emit_matmul(),
            7 => g.emit_for_cbind(),
            8 => g.emit_parfor_write(),
            _ => match g.rng.next_below(3) {
                0 => g.emit_while(),
                1 => g.emit_if(),
                _ => g.emit_builtin(),
            },
        }
    }
    Script {
        seed,
        stmts: g.stmts,
        outputs: g.outputs,
        fed_input: None,
    }
}

impl Gen {
    fn fresh(&mut self, prefix: &str) -> String {
        let n = self.next_id;
        self.next_id += 1;
        format!("{prefix}{n}")
    }

    fn dim(&mut self) -> usize {
        2 + self.rng.next_below(self.max_dim - 1)
    }

    fn push(&mut self, text: String, defines: Vec<String>, uses: Vec<String>) {
        for d in &defines {
            if !self.outputs.contains(d) {
                self.outputs.push(d.clone());
            }
        }
        self.stmts.push(Stmt {
            text,
            defines,
            uses,
        });
    }

    fn pick_mat(&mut self) -> MatVar {
        let i = self.rng.next_below(self.mats.len());
        self.mats[i].clone()
    }

    fn pick_mat_shaped(&mut self, rows: usize, cols: usize) -> Option<MatVar> {
        let same: Vec<MatVar> = self
            .mats
            .iter()
            .filter(|m| m.rows == rows && m.cols == cols)
            .cloned()
            .collect();
        if same.is_empty() {
            None
        } else {
            Some(same[self.rng.next_below(same.len())].clone())
        }
    }

    /// `mN = rand(...)` or a constant/sequence leaf.
    fn emit_leaf(&mut self) {
        let name = self.fresh("m");
        let rows = self.dim();
        let cols = self.dim();
        let text = match self.rng.next_below(6) {
            0 => format!("{name} = matrix({:.2}, rows={rows}, cols={cols})", {
                self.rng.next_range(-1.0, 1.0)
            }),
            1 => {
                // seq is rows x 1; rescale into [-1, 1] to stay tame.
                format!("{name} = (seq(1, {rows}) / {rows}) - 0.5")
            }
            _ => {
                let sparsity = if self.rng.next_below(4) == 0 {
                    0.3
                } else {
                    1.0
                };
                let seed = self.rng.next_below(1 << 20);
                format!(
                    "{name} = rand(rows={rows}, cols={cols}, min=-1, max=1, \
                     sparsity={sparsity}, seed={seed})"
                )
            }
        };
        let cols = if text.contains("seq(") { 1 } else { cols };
        self.mats.push(MatVar {
            name: name.clone(),
            rows,
            cols,
        });
        self.push(text, vec![name], vec![]);
    }

    /// Random elementwise expression over matrices of `shape` (and scalar
    /// literals), depth-bounded. Returns `(dml, used_vars)`. The result may
    /// be unbounded; callers wrap it in a contraction.
    fn ew_expr(&mut self, rows: usize, cols: usize, depth: usize) -> (String, Vec<String>) {
        if depth == 0 {
            let m = self
                .pick_mat_shaped(rows, cols)
                .expect("caller guarantees a same-shape operand exists");
            return (m.name.clone(), vec![m.name]);
        }
        let (lhs, mut used) = self.ew_expr(rows, cols, depth - 1);
        let (rhs, rhs_used) = if self.rng.next_below(3) == 0 {
            (format!("{:.2}", self.rng.next_range(-1.0, 1.0)), vec![])
        } else {
            self.ew_expr(rows, cols, depth - 1)
        };
        used.extend(rhs_used);
        let expr = match self.rng.next_below(6) {
            0 => format!("({lhs} + {rhs})"),
            1 => format!("({lhs} - {rhs})"),
            2 | 3 => format!("({lhs} * {rhs})"),
            4 => format!("({lhs} / (abs({rhs}) + 1.5))"),
            _ => match self.rng.next_below(4) {
                0 => format!("abs({lhs} - {rhs})"),
                1 => format!("sqrt(abs({lhs} + {rhs}))"),
                2 => format!("(({lhs} * {rhs}) ^ 2)"),
                _ => format!("exp(0 - abs({lhs} * {rhs}))"),
            },
        };
        (expr, used)
    }

    /// Contraction wrapper keeping matrix values in [-1, 1] so derivation
    /// chains never overflow no matter how deep the script gets.
    fn contract(&mut self, expr: &str) -> String {
        match self.rng.next_below(4) {
            0 => format!("sigmoid({expr})"),
            1 => format!("(1 - sigmoid({expr}))"),
            2 => format!("sigmoid(0 - ({expr}))"),
            _ => format!("(sigmoid({expr}) - 0.5)"),
        }
    }

    /// `mN = sigmoid(<chain>)` — the fusion workhorse.
    fn emit_elementwise(&mut self) {
        let proto = self.pick_mat();
        let depth = 1 + self.rng.next_below(3);
        let (expr, used) = self.ew_expr(proto.rows, proto.cols, depth);
        let name = self.fresh("m");
        let text = format!("{name} = {}", self.contract(&expr));
        self.mats.push(MatVar {
            name: name.clone(),
            rows: proto.rows,
            cols: proto.cols,
        });
        self.push(text, vec![name], used);
    }

    /// Full or column/row aggregate, often over an inline chain so the
    /// lowering fuses chain-into-aggregate.
    fn emit_aggregate(&mut self) {
        let proto = self.pick_mat();
        let (expr, used) = if self.rng.next_below(2) == 0 {
            let depth = 1 + self.rng.next_below(2);
            let (e, u) = self.ew_expr(proto.rows, proto.cols, depth);
            (self.contract(&e), u)
        } else {
            (proto.name.clone(), vec![proto.name.clone()])
        };
        match self.rng.next_below(7) {
            0 | 1 => {
                let name = self.fresh("s");
                let agg = ["sum", "mean", "min", "max"][self.rng.next_below(4)];
                self.push(format!("{name} = {agg}({expr})"), vec![name], used);
            }
            2 | 3 | 4 => {
                let name = self.fresh("m");
                let agg = ["colSums", "colMeans"][self.rng.next_below(2)];
                self.mats.push(MatVar {
                    name: name.clone(),
                    rows: 1,
                    cols: proto.cols,
                });
                self.push(format!("{name} = {agg}({expr})"), vec![name], used);
            }
            _ => {
                let name = self.fresh("m");
                self.mats.push(MatVar {
                    name: name.clone(),
                    rows: proto.rows,
                    cols: 1,
                });
                self.push(format!("{name} = rowSums({expr})"), vec![name], used);
            }
        }
    }

    /// Matmul with shape search; falls back to the always-legal tsmm.
    fn emit_matmul(&mut self) {
        let a = self.pick_mat();
        let b = self.pick_mat();
        let (expr, rows, cols, used) = if a.cols == b.rows && a.rows * b.cols <= 2048 {
            (
                format!("{} %*% {}", a.name, b.name),
                a.rows,
                b.cols,
                vec![a.name, b.name],
            )
        } else if a.rows == b.rows && a.cols * b.cols <= 2048 {
            (
                format!("t({}) %*% {}", a.name, b.name),
                a.cols,
                b.cols,
                vec![a.name, b.name],
            )
        } else {
            (
                format!("t({0}) %*% {0}", a.name),
                a.cols,
                a.cols,
                vec![a.name],
            )
        };
        let name = self.fresh("m");
        self.mats.push(MatVar {
            name: name.clone(),
            rows,
            cols,
        });
        self.push(format!("{name} = {expr}"), vec![name], used);
    }

    /// `for` loop growing a matrix with cbind — the lineage partial-reuse
    /// shape (each iteration appends to a reused prefix).
    fn emit_for_cbind(&mut self) {
        let src = self.pick_mat();
        let iters = 2 + self.rng.next_below(3);
        let acc = self.fresh("m");
        let body = self.contract(&format!("{}[, 1] * i", src.name));
        let text = format!(
            "{acc} = {src}[, 1]\nfor (i in 1:{iters}) {{\n  {acc} = cbind({acc}, {body})\n}}",
            src = src.name
        );
        self.mats.push(MatVar {
            name: acc.clone(),
            rows: src.rows,
            cols: 1 + iters,
        });
        self.push(text, vec![acc], vec![src.name]);
    }

    /// `parfor` writing disjoint columns — exercises the result merge.
    fn emit_parfor_write(&mut self) {
        let src = self.pick_mat();
        let iters = 2 + self.rng.next_below(4);
        let name = self.fresh("m");
        let body = self.contract(&format!("{}[, 1] + i", src.name));
        let text = format!(
            "{name} = matrix(0, rows={rows}, cols={iters})\n\
             parfor (i in 1:{iters}) {{\n  {name}[, i] = {body}\n}}",
            rows = src.rows
        );
        self.mats.push(MatVar {
            name: name.clone(),
            rows: src.rows,
            cols: iters,
        });
        self.push(text, vec![name], vec![src.name]);
    }

    /// Counter-driven `while` (the counter's final value is statically
    /// known, so later `if`s can branch on it deterministically).
    fn emit_while(&mut self) {
        let src = self.pick_mat();
        let iters = 2 + self.rng.next_below(3) as i64;
        let w = self.fresh("m");
        let c = self.fresh("c");
        let text = format!(
            "{w} = {src}\n{c} = 0\nwhile ({c} < {iters}) {{\n  \
             {w} = sigmoid({w} + 0.25)\n  {c} = {c} + 1\n}}",
            src = src.name
        );
        self.mats.push(MatVar {
            name: w.clone(),
            rows: src.rows,
            cols: src.cols,
        });
        self.ints.push((c.clone(), iters));
        self.push(text, vec![w, c], vec![src.name]);
    }

    /// Branch on an integer scalar whose value is known at generation time
    /// (never on data — fp summation order must not flip branches).
    fn emit_if(&mut self) {
        let (cond_var, cond_val, extra_def) = if self.ints.is_empty() || self.rng.next_below(2) == 0
        {
            let c = self.fresh("c");
            let v = 1 + self.rng.next_below(9) as i64;
            self.ints.push((c.clone(), v));
            (c.clone(), v, Some((c, v)))
        } else {
            let i = self.rng.next_below(self.ints.len());
            let (n, v) = self.ints[i].clone();
            (n, v, None)
        };
        let threshold = 1 + self.rng.next_below(9) as i64;
        let src = self.pick_mat();
        let name = self.fresh("m");
        let then_e = self.contract(&format!("{} + 1", src.name));
        let else_e = self.contract(&format!("{} - 1", src.name));
        let mut text = String::new();
        let mut defines = vec![name.clone()];
        if let Some((c, v)) = extra_def {
            text.push_str(&format!("{c} = {v}\n"));
            defines.push(c);
        }
        let _ = cond_val;
        text.push_str(&format!(
            "if ({cond_var} > {threshold}) {{\n  {name} = {then_e}\n}} else {{\n  {name} = {else_e}\n}}"
        ));
        self.mats.push(MatVar {
            name: name.clone(),
            rows: src.rows,
            cols: src.cols,
        });
        self.push(text, defines, vec![cond_var, src.name]);
    }

    /// Call a numerically-continuous DML-bodied builtin (see
    /// `sysds::builtins::FUZZ_SAFE`).
    fn emit_builtin(&mut self) {
        let src = self.pick_mat();
        match self.rng.next_below(3) {
            0 => {
                // scale: z-score normalize columns; constant columns are
                // handled (map to 0), output shape preserved.
                let name = self.fresh("m");
                self.mats.push(MatVar {
                    name: name.clone(),
                    rows: src.rows,
                    cols: src.cols,
                });
                self.push(
                    format!("{name} = scale({}, TRUE, TRUE)", src.name),
                    vec![name],
                    vec![src.name],
                );
            }
            1 => {
                let name = self.fresh("m");
                self.mats.push(MatVar {
                    name: name.clone(),
                    rows: src.rows,
                    cols: src.cols,
                });
                self.push(
                    format!("{name} = normalize({})", src.name),
                    vec![name],
                    vec![src.name],
                );
            }
            _ => {
                // mse of a matrix against a shifted copy of itself.
                let name = self.fresh("s");
                self.push(
                    format!("{name} = mse({0}, sigmoid({0}))", src.name),
                    vec![name],
                    vec![src.name],
                );
            }
        }
    }
}

/// Federated-compatible generation: the harness binds input `X` (locally or
/// scattered). Only ops with federated execution paths touch `X` directly
/// (mat-vec, tsmm, colSums/sum/mean, scalar and fed-fed elementwise);
/// everything downstream of an aggregate is ordinary local compute. All
/// compared outputs are local values.
fn generate_fed(seed: u64, opts: GenOptions) -> Script {
    let mut rng = XorShift64::new(split(seed, 0xfed));
    let rows = 4 + rng.next_below(opts.max_dim.max(6));
    let cols = 2 + rng.next_below(6);
    let mut stmts: Vec<Stmt> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut next_id = 0usize;
    let fresh = |p: &str, next_id: &mut usize| {
        let n = *next_id;
        *next_id += 1;
        format!("{p}{n}")
    };
    // Federated values currently alive (name only; all are rows x cols
    // elementwise derivatives of X).
    let mut fed_vars: Vec<String> = vec!["X".into()];
    let out = |name: &String, outputs: &mut Vec<String>| {
        if !outputs.contains(name) {
            outputs.push(name.clone());
        }
    };

    let n = 4 + rng.next_below(5);
    for _ in 0..n {
        match rng.next_below(6) {
            0 => {
                let s = fresh("s", &mut next_id);
                let src = fed_vars[rng.next_below(fed_vars.len())].clone();
                let agg = ["sum", "mean"][rng.next_below(2)];
                stmts.push(Stmt {
                    text: format!("{s} = {agg}({src})"),
                    defines: vec![s.clone()],
                    uses: vec![src],
                });
                out(&s, &mut outputs);
            }
            1 => {
                let m = fresh("m", &mut next_id);
                let src = fed_vars[rng.next_below(fed_vars.len())].clone();
                stmts.push(Stmt {
                    text: format!("{m} = colSums({src})"),
                    defines: vec![m.clone()],
                    uses: vec![src],
                });
                out(&m, &mut outputs);
            }
            2 => {
                // Fed mat-vec, aggregated to a scalar in the same statement
                // so the compared value is local.
                let v = fresh("m", &mut next_id);
                let s = fresh("s", &mut next_id);
                let seed_lit = rng.next_below(1 << 20);
                let src = fed_vars[rng.next_below(fed_vars.len())].clone();
                stmts.push(Stmt {
                    text: format!(
                        "{v} = rand(rows={cols}, cols=1, min=-1, max=1, sparsity=1.0, seed={seed_lit})\n\
                         {s} = sum({src} %*% {v})"
                    ),
                    defines: vec![v.clone(), s.clone()],
                    uses: vec![src],
                });
                out(&s, &mut outputs);
            }
            3 => {
                // tsmm: t(X) %*% X executes federated, result is local.
                let g = fresh("m", &mut next_id);
                let src = fed_vars[rng.next_below(fed_vars.len())].clone();
                stmts.push(Stmt {
                    text: format!("{g} = t({src}) %*% {src}"),
                    defines: vec![g.clone()],
                    uses: vec![src],
                });
                out(&g, &mut outputs);
            }
            4 => {
                // Fed-scalar elementwise: result stays federated (NOT an
                // output; later statements may aggregate it).
                let y = fresh("f", &mut next_id);
                let src = fed_vars[rng.next_below(fed_vars.len())].clone();
                let k = 1 + rng.next_below(3);
                let op = ["*", "+", "-"][rng.next_below(3)];
                stmts.push(Stmt {
                    text: format!("{y} = {src} {op} {k}"),
                    defines: vec![y.clone()],
                    uses: vec![src],
                });
                fed_vars.push(y);
            }
            _ => {
                // Fed-fed elementwise over the same federation map.
                let y = fresh("f", &mut next_id);
                let a = fed_vars[rng.next_below(fed_vars.len())].clone();
                let b = fed_vars[rng.next_below(fed_vars.len())].clone();
                let op = ["*", "+"][rng.next_below(2)];
                stmts.push(Stmt {
                    text: format!("{y} = {a} {op} {b}"),
                    defines: vec![y.clone()],
                    uses: vec![a, b],
                });
                fed_vars.push(y);
            }
        }
    }
    // Guarantee at least one compared output even if the draw above only
    // produced federated intermediates.
    if outputs.is_empty() {
        stmts.push(Stmt {
            text: "sX = sum(X)".into(),
            defines: vec!["sX".into()],
            uses: vec!["X".into()],
        });
        outputs.push("sX".into());
    }
    Script {
        seed,
        stmts,
        outputs,
        fed_input: Some(FedInput { rows, cols }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_script() {
        for seed in 0..50 {
            let a = generate(seed, GenOptions::default());
            let b = generate(seed, GenOptions::default());
            assert_eq!(a.render(), b.render(), "seed {seed} not deterministic");
            assert_eq!(a.outputs, b.outputs);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(1, GenOptions::default());
        let b = generate(2, GenOptions::default());
        assert_ne!(a.render(), b.render());
    }

    #[test]
    fn every_script_has_outputs() {
        for seed in 0..100 {
            let s = generate(seed, GenOptions::default());
            assert!(!s.outputs.is_empty(), "seed {seed} produced no outputs");
            assert!(!s.stmts.is_empty());
        }
    }

    #[test]
    fn fed_scripts_reference_x_and_have_local_outputs() {
        for seed in 0..50 {
            let s = generate(
                seed,
                GenOptions {
                    fed: true,
                    ..GenOptions::default()
                },
            );
            let fed = s.fed_input.expect("fed script has a fed input");
            assert!(fed.rows >= 2 && fed.cols >= 2);
            assert!(s.render().contains('X'), "seed {seed} never uses X");
            // Outputs never name a federated intermediate (f-prefixed) or X.
            for o in &s.outputs {
                assert!(!o.starts_with('f') && o != "X", "fed output {o} leaked");
            }
        }
    }

    #[test]
    fn feature_productions_all_reachable() {
        // Across a seed range, every major production should appear.
        let mut seen_parfor = false;
        let mut seen_for = false;
        let mut seen_while = false;
        let mut seen_if = false;
        let mut seen_mm = false;
        let mut seen_builtin = false;
        for seed in 0..400 {
            let text = generate(seed, GenOptions::default()).render();
            seen_parfor |= text.contains("parfor");
            seen_for |= text.contains("cbind");
            seen_while |= text.contains("while");
            seen_if |= text.contains("if (");
            seen_mm |= text.contains("%*%");
            seen_builtin |=
                text.contains("scale(") || text.contains("normalize(") || text.contains("mse(");
        }
        assert!(seen_parfor && seen_for && seen_while && seen_if && seen_mm && seen_builtin);
    }
}
