//! The `sysds` command-line launcher (paper §2.2 (1): "command line
//! invocation").
//!
//! ```bash
//! sysds run script.dml                      # execute a DML script
//! sysds run script.dml --reuse --stats      # with lineage reuse + stats
//! sysds run script.dml --threads 8 --budget-mb 512
//! sysds run script.dml --arg X=features.csv # $X substitution
//! sysds run script.dml --explain hops       # HOP DAGs with size estimates
//! sysds run script.dml --chrome-trace t.json # chrome://tracing timeline
//! sysds worker --listen 127.0.0.1:7461      # federated site daemon
//! sysds fedlm --workers 127.0.0.1:7461 --stats # federated lm over TCP
//! sysds fuzz --seed 0 --iters 1000          # differential conformance fuzz
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use sysds::api::SystemDS;
use sysds::compiler::explain::ExplainLevel;
use sysds_common::config::ReusePolicy;
use sysds_common::{EngineConfig, NetConfig};
use sysds_fed::{FederatedMatrix, Transport, WorkerHandle};
use sysds_net::{TcpTransport, WorkerServer};

fn usage() -> ! {
    eprintln!(
        "usage: sysds run <script.dml> [options]\n\
         \x20      sysds worker --listen ADDR [--threads N]\n\
         \x20      sysds fedlm [--workers A,B,..] [options]\n\
         \x20      sysds fuzz --seed S --iters N [--corpus DIR]\n\
         \n\
         run options:\n\
           --arg NAME=VALUE   substitute $NAME in the script with VALUE\n\
           --threads N        kernel/parfor parallelism (default: cores)\n\
           --budget-mb N      driver memory budget before ops go distributed\n\
           --reuse            enable lineage tracing + full/partial reuse\n\
           --blas             use the optimized (BLAS-like) kernels\n\
           --no-recompile     disable dynamic recompilation\n\
           --no-fusion        disable cell-wise operator fusion\n\
           --stats            print heavy-hitter, buffer-pool, cache and\n\
                              estimate-vs-actual statistics after execution\n\
           --trace FILE       write one JSONL span record per compiler\n\
                              phase / instruction / worker to FILE\n\
           --chrome-trace FILE  export the run timeline as Chrome\n\
                              trace_event JSON (chrome://tracing, Perfetto)\n\
           --explain [LEVEL]  print the compiled plan before executing;\n\
                              LEVEL is 'hops' (default: HOP DAGs with\n\
                              dims/sparsity/memory/exec) or 'runtime'\n\
                              (lowered instructions)\n\
         \n\
         worker options (federated site daemon, framed wire protocol):\n\
           --listen ADDR      bind address, e.g. 127.0.0.1:7461 (required;\n\
                              port 0 picks an ephemeral port)\n\
           --threads N        kernel parallelism for site-local compute\n\
         \n\
         fedlm options (federated linear regression driver):\n\
           --workers A,B,..   comma-separated site addresses (host:port);\n\
                              omitted: spawn in-process workers instead\n\
           --sites N          in-process site count when --workers is\n\
                              omitted (default 2)\n\
           --rows N --cols N  synthetic regression data shape (200 x 8)\n\
           --lambda L         ridge regularization (default 0.001)\n\
           --seed S           data generator seed (default 42)\n\
           --stats            print runtime statistics incl. the per-site\n\
                              network table\n\
           --shutdown-workers send a graceful Shutdown to each remote site\n\
                              after the run\n\
         \n\
         fuzz options (differential conformance harness):\n\
           --seed S           campaign seed (default 0); iteration i fuzzes\n\
                              an independent seed derived from (S, i)\n\
           --iters N          scripts to generate and cross-check (default\n\
                              100); each runs under the full configuration\n\
                              matrix (fusion, threads, reuse, evict,\n\
                              norecompile, blas vs the reference)\n\
           --corpus DIR       write minimized .dml repros of any failing\n\
                              seed into DIR\n\
           --fed-every N      every Nth script is federated-compatible and\n\
                              additionally cross-checks in-process vs TCP\n\
                              transports (default 10; 0 disables)\n\
           --max-dim N        generated matrix dimension cap (default 16)\n\
           --save-samples N   with --corpus: also save every Nth passing\n\
                              script as a replayable corpus sample"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run_cmd(&args[1..]),
        Some("worker") => worker_cmd(&args[1..]),
        Some("fedlm") => fedlm_cmd(&args[1..]),
        Some("fuzz") => fuzz_cmd(&args[1..]),
        _ => usage(),
    }
}

fn run_cmd(args: &[String]) -> ExitCode {
    if args.is_empty() {
        usage();
    }
    let script_path = &args[0];
    let mut config = EngineConfig::default();
    let mut stats = false;
    let mut explain: Option<ExplainLevel> = None;
    let mut substitutions: Vec<(String, String)> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--arg" => {
                i += 1;
                let Some(pair) = args.get(i) else { usage() };
                let Some((k, v)) = pair.split_once('=') else {
                    usage()
                };
                substitutions.push((k.to_string(), v.to_string()));
            }
            "--threads" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|v| v.parse().ok()) else {
                    usage()
                };
                config.num_threads = n;
            }
            "--budget-mb" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|v| v.parse::<usize>().ok()) else {
                    usage()
                };
                config.memory_budget = n << 20;
            }
            "--reuse" => config = config.reuse_policy(ReusePolicy::FullAndPartial),
            "--blas" => config.native_blas = true,
            "--no-recompile" => config.dynamic_recompile = false,
            "--no-fusion" => config.fusion = false,
            "--stats" => {
                stats = true;
                config.stats = true;
            }
            "--trace" => {
                i += 1;
                let Some(path) = args.get(i) else { usage() };
                config.trace_file = Some(path.into());
            }
            "--chrome-trace" => {
                i += 1;
                let Some(path) = args.get(i) else { usage() };
                config.chrome_trace_file = Some(path.into());
            }
            "--explain" => {
                // Optional level: `--explain runtime`; bare `--explain`
                // defaults to the HOP view.
                match args.get(i + 1).map(|s| s.parse::<ExplainLevel>()) {
                    Some(Ok(level)) => {
                        explain = Some(level);
                        i += 1;
                    }
                    _ => explain = Some(ExplainLevel::Hops),
                }
            }
            other => {
                eprintln!("unknown option '{other}'");
                usage();
            }
        }
        i += 1;
    }

    let mut script = match std::fs::read_to_string(script_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read '{script_path}': {e}");
            return ExitCode::FAILURE;
        }
    };
    // $NAME substitution, longest names first so $XY wins over $X.
    substitutions.sort_by_key(|(k, _)| std::cmp::Reverse(k.len()));
    for (k, v) in &substitutions {
        script = script.replace(&format!("${k}"), v);
    }

    let mut sds = match SystemDS::with_config(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("engine init failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    sds.echo_stdout(true);

    // Compile exactly once; explain and execution share the program.
    let program = match sds.compile(&script) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("compile error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(level) = explain {
        eprintln!(
            "# compiled program: {} top-level blocks, {} functions",
            program.blocks.len(),
            program.functions.len()
        );
        eprint!("{}", sds.explain(&program, level));
    }

    let tracing = sds.config().trace_file.is_some();
    let start = std::time::Instant::now();
    let result = sds.execute_program(&program, &[], &[]);
    if tracing {
        // Flush and close the JSONL sink so every span record is on disk.
        sysds_obs::disable_trace();
    }
    match sds.export_chrome_trace() {
        Ok(Some(path)) => eprintln!("# chrome trace written to {}", path.display()),
        Ok(None) => {}
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    match result {
        Ok(_) => {
            if stats {
                eprintln!("# elapsed: {:.3}s", start.elapsed().as_secs_f64());
                eprint!("{}", sds.run_report().render());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `sysds fuzz`: run a differential conformance campaign. Prints a
/// deterministic report (no wall-clock, no paths) so identical invocations
/// print identical bytes; exits non-zero when any seed diverged.
fn fuzz_cmd(args: &[String]) -> ExitCode {
    let mut opts = sysds_conformance::FuzzOptions::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse().ok()) else {
                    usage()
                };
                opts.seed = v;
            }
            "--iters" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse().ok()) else {
                    usage()
                };
                opts.iters = v;
            }
            "--corpus" => {
                i += 1;
                let Some(dir) = args.get(i) else { usage() };
                opts.corpus_dir = Some(dir.into());
            }
            "--fed-every" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse().ok()) else {
                    usage()
                };
                opts.fed_every = v;
            }
            "--max-dim" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse().ok()) else {
                    usage()
                };
                opts.max_dim = v;
            }
            "--save-samples" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse().ok()) else {
                    usage()
                };
                opts.save_samples = Some(v);
            }
            other => {
                eprintln!("unknown option '{other}'");
                usage();
            }
        }
        i += 1;
    }
    match sysds_conformance::run(&opts) {
        Ok(report) => {
            print!("{}", report.render());
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `sysds worker --listen ADDR`: run one federated site daemon until a
/// wire `Shutdown` request arrives (or the process is killed).
fn worker_cmd(args: &[String]) -> ExitCode {
    let mut listen: Option<String> = None;
    let mut threads = 1usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => {
                i += 1;
                let Some(addr) = args.get(i) else { usage() };
                listen = Some(addr.clone());
            }
            "--threads" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|v| v.parse().ok()) else {
                    usage()
                };
                threads = n;
            }
            other => {
                eprintln!("unknown option '{other}'");
                usage();
            }
        }
        i += 1;
    }
    let Some(addr) = listen else { usage() };
    let server = match WorkerServer::bind(&addr, vec![], threads) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The endpoint line is the startup handshake scripts wait for (the
    // bound port matters when --listen used port 0).
    println!("# sysds worker listening on {}", server.endpoint());
    while !server.is_stopped() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    eprintln!("# sysds worker shut down");
    ExitCode::SUCCESS
}

/// `sysds fedlm`: federated ridge regression driver — the CLI entry point
/// for exercising the networked federation path end to end. Runs the same
/// model over the requested transports AND over in-process workers, and
/// reports whether the results are bitwise identical.
fn fedlm_cmd(args: &[String]) -> ExitCode {
    let mut worker_addrs: Vec<String> = Vec::new();
    let mut sites = 2usize;
    let mut rows = 200usize;
    let mut cols = 8usize;
    let mut lambda = 0.001f64;
    let mut seed = 42u64;
    let mut stats = false;
    let mut shutdown_workers = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                i += 1;
                let Some(list) = args.get(i) else { usage() };
                worker_addrs = list
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(String::from)
                    .collect();
            }
            "--sites" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|v| v.parse().ok()) else {
                    usage()
                };
                sites = n;
            }
            "--rows" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|v| v.parse().ok()) else {
                    usage()
                };
                rows = n;
            }
            "--cols" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|v| v.parse().ok()) else {
                    usage()
                };
                cols = n;
            }
            "--lambda" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse().ok()) else {
                    usage()
                };
                lambda = v;
            }
            "--seed" => {
                i += 1;
                let Some(v) = args.get(i).and_then(|v| v.parse().ok()) else {
                    usage()
                };
                seed = v;
            }
            "--stats" => stats = true,
            "--shutdown-workers" => shutdown_workers = true,
            other => {
                eprintln!("unknown option '{other}'");
                usage();
            }
        }
        i += 1;
    }
    if stats {
        sysds_obs::enable_stats();
    }
    let (x, y) = sysds_tensor::kernels::gen::synthetic_regression(rows, cols, 1.0, 0.1, seed);

    // Remote TCP transports (kept concretely typed for shutdown_site).
    let mut tcp_sites: Vec<Arc<TcpTransport>> = Vec::new();
    let workers: Vec<Arc<dyn Transport>> = if worker_addrs.is_empty() {
        (0..sites.max(1))
            .map(|_| Arc::new(WorkerHandle::spawn(vec![], 1)) as Arc<dyn Transport>)
            .collect()
    } else {
        let cfg = NetConfig::default();
        let mut ws = Vec::new();
        for addr in &worker_addrs {
            match TcpTransport::connect(addr, cfg) {
                Ok(t) => {
                    let t = Arc::new(t);
                    tcp_sites.push(Arc::clone(&t));
                    ws.push(t as Arc<dyn Transport>);
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        ws
    };
    for site in &workers {
        println!("# site: {}", site.endpoint());
    }

    let start = std::time::Instant::now();
    let fed = (|| {
        let fx = FederatedMatrix::scatter(&x, &workers)?;
        let fy = FederatedMatrix::scatter(&y, &workers)?;
        sysds_fed::learn::federated_lm(&fx, &fy, lambda)
    })();
    let fed = match fed {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = start.elapsed();

    // Reference: the identical model over in-process workers with the same
    // partitioning — must be bitwise identical, transport changes nothing.
    let reference = (|| {
        let local: Vec<Arc<dyn Transport>> = (0..workers.len())
            .map(|_| Arc::new(WorkerHandle::spawn(vec![], 1)) as Arc<dyn Transport>)
            .collect();
        let fx = FederatedMatrix::scatter(&x, &local)?;
        let fy = FederatedMatrix::scatter(&y, &local)?;
        sysds_fed::learn::federated_lm(&fx, &fy, lambda)
    })();
    match reference {
        Ok(r) => {
            let identical = r.to_vec() == fed.to_vec();
            println!("# identical to in-process: {identical}");
            if !identical {
                eprintln!("error: transport changed the result");
                return ExitCode::FAILURE;
            }
        }
        Err(e) => {
            eprintln!("error: reference run failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    let w = fed.to_vec();
    println!(
        "# weights[0..{}] = {:?}",
        w.len().min(4),
        &w[..w.len().min(4)]
    );

    if shutdown_workers {
        for site in &tcp_sites {
            if let Err(e) = site.shutdown_site() {
                eprintln!("warning: shutdown of {} failed: {e}", site.endpoint());
            }
        }
    }
    if stats {
        eprintln!("# elapsed: {:.3}s", elapsed.as_secs_f64());
        let sds = match SystemDS::with_config(EngineConfig {
            stats: true,
            ..EngineConfig::default()
        }) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("engine init failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprint!("{}", sds.run_report().render());
    }
    ExitCode::SUCCESS
}
