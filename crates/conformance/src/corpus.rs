//! Corpus format: self-contained `.dml` repro files under `tests/corpus/`.
//!
//! Each entry is an ordinary DML script prefixed with `#`-comment
//! directives that carry the oracle metadata:
//!
//! ```text
//! # sysds-conformance corpus v1
//! # seed: 42
//! # outputs: m0 s1 m2
//! # fed: 8x3          (only for federated scripts: shape of input X)
//! m0 = rand(rows=4, cols=3, min=-1, max=1, sparsity=1.0, seed=7)
//! ...
//! ```
//!
//! Directives are comments, so every entry also runs unmodified under
//! `sysds run`. The corpus is replayed by the tier-1 integration test
//! `tests/conformance_corpus.rs` on every build.

use crate::gen::{FedInput, Script, Stmt};
use std::path::{Path, PathBuf};
use sysds_common::{Result, SysDsError};

const HEADER: &str = "# sysds-conformance corpus v1";

/// Serialize a script (with its oracle metadata) to corpus text.
pub fn to_corpus_text(script: &Script) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    out.push_str(&format!("# seed: {}\n", script.seed));
    out.push_str(&format!("# outputs: {}\n", script.outputs.join(" ")));
    if let Some(f) = script.fed_input {
        out.push_str(&format!("# fed: {}x{}\n", f.rows, f.cols));
    }
    out.push_str(&script.render());
    out
}

/// Parse corpus text back into a runnable [`Script`].
///
/// The statement list is collapsed to one statement holding the whole body
/// (def/use slicing already happened before the entry was written).
pub fn from_corpus_text(text: &str) -> Result<Script> {
    let mut seed = 0u64;
    let mut outputs: Vec<String> = Vec::new();
    let mut fed_input: Option<FedInput> = None;
    let mut body = String::new();
    let mut saw_header = false;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# seed:") {
            seed = rest
                .trim()
                .parse()
                .map_err(|_| SysDsError::runtime("corpus: bad '# seed:' directive"))?;
        } else if let Some(rest) = line.strip_prefix("# outputs:") {
            outputs = rest.split_whitespace().map(String::from).collect();
        } else if let Some(rest) = line.strip_prefix("# fed:") {
            let dims = rest.trim();
            let (r, c) = dims
                .split_once('x')
                .ok_or_else(|| SysDsError::runtime("corpus: bad '# fed:' directive"))?;
            fed_input = Some(FedInput {
                rows: r
                    .trim()
                    .parse()
                    .map_err(|_| SysDsError::runtime("corpus: bad fed rows"))?,
                cols: c
                    .trim()
                    .parse()
                    .map_err(|_| SysDsError::runtime("corpus: bad fed cols"))?,
            });
        } else if line.starts_with(HEADER) {
            saw_header = true;
        } else {
            body.push_str(line);
            body.push('\n');
        }
    }
    if !saw_header {
        return Err(SysDsError::runtime(
            "corpus: missing '# sysds-conformance corpus v1' header",
        ));
    }
    if outputs.is_empty() {
        return Err(SysDsError::runtime(
            "corpus: missing '# outputs:' directive",
        ));
    }
    Ok(Script {
        seed,
        stmts: vec![Stmt {
            text: body.trim_end().to_string(),
            defines: outputs.clone(),
            uses: Vec::new(),
        }],
        outputs,
        fed_input,
    })
}

/// Write a corpus entry; the name is derived from the seed so re-fuzzing
/// the same seed overwrites (rather than duplicates) its repro.
pub fn write_entry(dir: &Path, script: &Script) -> Result<PathBuf> {
    std::fs::create_dir_all(dir).map_err(|e| {
        SysDsError::runtime(format!("corpus: cannot create {}: {e}", dir.display()))
    })?;
    let kind = if script.fed_input.is_some() {
        "fed"
    } else {
        "local"
    };
    let path = dir.join(format!("seed_{}_{kind}.dml", script.seed));
    std::fs::write(&path, to_corpus_text(script)).map_err(|e| {
        SysDsError::runtime(format!("corpus: cannot write {}: {e}", path.display()))
    })?;
    Ok(path)
}

/// All `.dml` entries in a corpus directory, sorted by file name so replay
/// order (and reports) are deterministic.
pub fn list_entries(dir: &Path) -> Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| SysDsError::runtime(format!("corpus: cannot read {}: {e}", dir.display())))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "dml"))
        .collect();
    entries.sort();
    Ok(entries)
}

/// Load one corpus entry from disk.
pub fn load_entry(path: &Path) -> Result<Script> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SysDsError::runtime(format!("corpus: cannot read {}: {e}", path.display())))?;
    from_corpus_text(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenOptions};

    #[test]
    fn roundtrip_preserves_body_outputs_and_metadata() {
        let script = generate(11, GenOptions::default());
        let text = to_corpus_text(&script);
        let back = from_corpus_text(&text).unwrap();
        assert_eq!(back.seed, script.seed);
        assert_eq!(back.outputs, script.outputs);
        assert_eq!(back.fed_input, script.fed_input);
        assert_eq!(back.render().trim(), script.render().trim());
    }

    #[test]
    fn roundtrip_preserves_fed_directive() {
        let script = generate(
            3,
            GenOptions {
                fed: true,
                ..GenOptions::default()
            },
        );
        let back = from_corpus_text(&to_corpus_text(&script)).unwrap();
        assert_eq!(back.fed_input, script.fed_input);
    }

    #[test]
    fn rejects_files_without_header_or_outputs() {
        assert!(from_corpus_text("x = 1\n").is_err());
        assert!(from_corpus_text("# sysds-conformance corpus v1\nx = 1\n").is_err());
    }

    #[test]
    fn write_and_list_are_deterministic() {
        let dir = sysds_common::testing::unique_temp_dir("sysds-conf-corpus");
        let a = generate(5, GenOptions::default());
        let b = generate(6, GenOptions::default());
        write_entry(&dir, &b).unwrap();
        write_entry(&dir, &a).unwrap();
        let listed = list_entries(&dir).unwrap();
        assert_eq!(listed.len(), 2);
        assert!(listed[0] < listed[1]);
        let back = load_entry(&listed[0]).unwrap();
        assert_eq!(back.seed, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
