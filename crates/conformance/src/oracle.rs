//! The differential oracle: run one script under a matrix of optimizer and
//! runtime configurations and demand identical results.
//!
//! This is the declarative-system contract the paper's optimizer relies on:
//! fusion, threading, lineage reuse, buffer-pool eviction, recompilation,
//! and federation are *plan* choices — none may change the computed values
//! beyond floating-point reassociation noise. The reference configuration
//! turns every optimization off (no fusion, one thread, no reuse, an
//! effectively unbounded buffer pool); each variant turns one dimension on.
//!
//! Comparison policy: shapes must match exactly; scalars and cells compare
//! with a relative tolerance of `1e-9` (`|a-b| <= 1e-9 * max(1, |a|, |b|)`),
//! NaNs are equal to NaNs. Divergences are reported as the *first* differing
//! output variable (in definition order) plus both configurations' plan
//! fingerprints so a report names which plans disagreed.

use crate::gen::Script;
use std::sync::Arc;
use sysds::api::{ScriptOutputs, SystemDS};
use sysds_common::config::ReusePolicy;
use sysds_common::rng::{split, XorShift64};
use sysds_common::testing::unique_temp_dir;
use sysds_common::{EngineConfig, NetConfig, Result, ScalarValue};
use sysds_fed::Transport;
use sysds_net::WorkerServer;
use sysds_tensor::Matrix;

/// Relative tolerance for value comparison across configurations.
pub const REL_TOL: f64 = 1e-9;

/// One entry in the configuration matrix.
pub struct OracleConfig {
    /// Short stable name used in reports ("reference", "fusion", ...).
    pub name: &'static str,
    pub config: EngineConfig,
}

/// A confirmed cross-configuration mismatch.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Seed of the generated script (0 for corpus entries).
    pub seed: u64,
    /// The two configuration names that disagreed.
    pub config_a: String,
    pub config_b: String,
    /// First output variable (definition order) that differs.
    pub variable: String,
    /// Human-readable detail (shape mismatch, cell index + values, error).
    pub detail: String,
    /// Plan fingerprints under each configuration (hex, via sysds-obs).
    pub fingerprint_a: String,
    pub fingerprint_b: String,
}

impl Divergence {
    /// Deterministic single-line rendering (no paths, no timing).
    pub fn render(&self) -> String {
        format!(
            "seed={} var={} configs={}<->{} plans={}<->{} :: {}",
            self.seed,
            self.variable,
            self.config_a,
            self.config_b,
            self.fingerprint_a,
            self.fingerprint_b,
            self.detail
        )
    }
}

fn base_config() -> EngineConfig {
    let mut c = EngineConfig::default();
    c.spill_dir = unique_temp_dir("sysds-conf-oracle");
    c.num_threads = 1;
    c.fusion = false;
    c.lineage = false;
    c.reuse = ReusePolicy::None;
    c.buffer_pool_limit = 4 << 30;
    c
}

/// The local configuration matrix. Index 0 is always the reference.
pub fn config_matrix() -> Vec<OracleConfig> {
    let mut m = vec![OracleConfig {
        name: "reference",
        config: base_config(),
    }];
    m.push(OracleConfig {
        name: "fusion",
        config: {
            let mut c = base_config();
            c.fusion = true;
            c
        },
    });
    m.push(OracleConfig {
        name: "threads4",
        config: {
            let mut c = base_config();
            c.fusion = true;
            c.num_threads = 4;
            c
        },
    });
    m.push(OracleConfig {
        name: "reuse",
        config: {
            let mut c = base_config();
            c.fusion = true;
            c.lineage = true;
            c.reuse = ReusePolicy::FullAndPartial;
            c
        },
    });
    m.push(OracleConfig {
        name: "evict",
        config: {
            let mut c = base_config();
            c.fusion = true;
            // A few KiB: every matrix beyond a handful of cells is evicted
            // and restored, exercising spill round-trips mid-script.
            c.buffer_pool_limit = 8 << 10;
            c
        },
    });
    m.push(OracleConfig {
        name: "norecompile",
        config: {
            let mut c = base_config();
            c.fusion = true;
            c.dynamic_recompile = false;
            c
        },
    });
    m.push(OracleConfig {
        name: "blas",
        config: {
            let mut c = base_config();
            c.fusion = true;
            c.native_blas = true;
            c
        },
    });
    m
}

/// Compare two scalars under the tolerance policy.
fn scalar_close(a: f64, b: f64) -> bool {
    if a.is_nan() && b.is_nan() {
        return true;
    }
    (a - b).abs() <= REL_TOL * f64::max(1.0, f64::max(a.abs(), b.abs()))
}

/// First difference between two output values, or `None` when equivalent.
fn diff_value(a_out: &ScriptOutputs, b_out: &ScriptOutputs, name: &str) -> Option<String> {
    // Scalar vs scalar: compare by kind first, then value.
    let (a, b) = match (a_out.get(name), b_out.get(name)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(_), Ok(_)) => return Some("missing in first config".into()),
        (Ok(_), Err(_)) => return Some("missing in second config".into()),
        (Err(_), Err(_)) => return None,
    };
    match (a.as_scalar(), b.as_scalar()) {
        (Ok(sa), Ok(sb)) => {
            let close = match (&sa, &sb) {
                (ScalarValue::F64(x), ScalarValue::F64(y)) => scalar_close(*x, *y),
                _ => sa == sb,
            };
            if close {
                None
            } else {
                Some(format!("scalar {sa:?} != {sb:?}"))
            }
        }
        _ => {
            let ma = match a.as_matrix() {
                Ok(m) => m,
                Err(e) => return Some(format!("not a matrix in first config: {e}")),
            };
            let mb = match b.as_matrix() {
                Ok(m) => m,
                Err(e) => return Some(format!("not a matrix in second config: {e}")),
            };
            if ma.shape() != mb.shape() {
                return Some(format!("shape {:?} != {:?}", ma.shape(), mb.shape()));
            }
            for i in 0..ma.rows() {
                for j in 0..ma.cols() {
                    let (x, y) = (ma.get(i, j), mb.get(i, j));
                    if !scalar_close(x, y) {
                        return Some(format!("cell ({i},{j}): {x:?} != {y:?}"));
                    }
                }
            }
            None
        }
    }
}

fn run_under(
    script_text: &str,
    config: EngineConfig,
    inputs: &[(&str, sysds::runtime::value::Data)],
    outputs: &[&str],
) -> Result<(ScriptOutputs, u64)> {
    let mut sds = SystemDS::with_config(config)?;
    let program = sds.compile(script_text)?;
    let fp = sds.plan_fingerprint(&program);
    let out = sds.execute_program(&program, inputs, outputs)?;
    Ok((out, fp))
}

/// Run `script` under the full local configuration matrix (plus transports
/// for federated scripts); return the first divergence found.
pub fn check_script(script: &Script) -> Result<Option<Divergence>> {
    if script.fed_input.is_some() {
        return check_fed_script(script);
    }
    let text = script.render();
    let out_names: Vec<&str> = script.outputs.iter().map(String::as_str).collect();
    let matrix = config_matrix();
    let (ref_out, ref_fp) = run_under(&text, matrix[0].config.clone(), &[], &out_names)?;
    for oc in &matrix[1..] {
        sysds_obs::counters()
            .conf_checks
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let (out, fp) = match run_under(&text, oc.config.clone(), &[], &out_names) {
            Ok(r) => r,
            Err(e) => {
                sysds_obs::counters()
                    .conf_divergences
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return Ok(Some(Divergence {
                    seed: script.seed,
                    config_a: matrix[0].name.into(),
                    config_b: oc.name.into(),
                    variable: "<execution>".into(),
                    detail: format!("error under {}: {e}", oc.name),
                    fingerprint_a: sysds_obs::render_fingerprint(ref_fp),
                    fingerprint_b: "n/a".into(),
                }));
            }
        };
        for name in &script.outputs {
            if let Some(detail) = diff_value(&ref_out, &out, name) {
                sysds_obs::counters()
                    .conf_divergences
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return Ok(Some(Divergence {
                    seed: script.seed,
                    config_a: matrix[0].name.into(),
                    config_b: oc.name.into(),
                    variable: name.clone(),
                    detail,
                    fingerprint_a: sysds_obs::render_fingerprint(ref_fp),
                    fingerprint_b: sysds_obs::render_fingerprint(fp),
                }));
            }
        }
    }
    Ok(None)
}

/// Deterministic input matrix for federated scripts.
pub fn fed_input_matrix(seed: u64, rows: usize, cols: usize) -> Matrix {
    let mut rng = XorShift64::new(split(seed, 0x1a7e));
    let data: Vec<f64> = (0..rows * cols)
        .map(|_| rng.next_range(-1.0, 1.0))
        .collect();
    Matrix::from_vec(rows, cols, data).expect("shape matches data length")
}

/// Federated oracle: the same script and data under (a) a plain local
/// binding of `X`, (b) in-process federation over 2 and 3 workers, and
/// (c) TCP federation over 2 networked worker servers.
fn check_fed_script(script: &Script) -> Result<Option<Divergence>> {
    let fed = script.fed_input.expect("caller checked fed_input");
    let text = script.render();
    let out_names: Vec<&str> = script.outputs.iter().map(String::as_str).collect();
    let x = fed_input_matrix(script.seed, fed.rows, fed.cols);

    let mut fed_cfg = EngineConfig::default();
    fed_cfg.spill_dir = unique_temp_dir("sysds-conf-fed");
    fed_cfg.num_threads = 2;

    // Reference: plain local execution.
    let (ref_out, ref_fp) = {
        let mut sds = SystemDS::with_config(fed_cfg.clone())?;
        let program = sds.compile(&text)?;
        let fp = sds.plan_fingerprint(&program);
        let xd = sds.matrix(x.clone())?;
        let out = sds.execute_program(&program, &[("X", xd)], &out_names)?;
        (out, fp)
    };

    let mut variants: Vec<(String, Result<(ScriptOutputs, u64)>)> = Vec::new();
    for workers in [2usize, 3] {
        let run = (|| {
            let mut sds = SystemDS::with_config(fed_cfg.clone())?;
            let program = sds.compile(&text)?;
            let fp = sds.plan_fingerprint(&program);
            let xd = sds.federate(&x, workers)?;
            let out = sds.execute_program(&program, &[("X", xd)], &out_names)?;
            Ok((out, fp))
        })();
        variants.push((format!("fed{workers}"), run));
    }
    // TCP transport: two in-process worker servers over real sockets.
    {
        let run = (|| {
            let mut servers: Vec<WorkerServer> = (0..2)
                .map(|_| WorkerServer::bind("127.0.0.1:0", vec![], 1))
                .collect::<Result<_>>()?;
            let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
            let addr_refs: Vec<&str> = addrs.iter().map(String::as_str).collect();
            let mut sds = SystemDS::with_config(fed_cfg.clone())?;
            let program = sds.compile(&text)?;
            let fp = sds.plan_fingerprint(&program);
            let sites: Vec<Arc<dyn Transport>> =
                sds.connect_sites(&addr_refs, NetConfig::default())?;
            let xd = sds.federate_with(&x, &sites)?;
            let out = sds.execute_program(&program, &[("X", xd)], &out_names)?;
            for s in &mut servers {
                s.shutdown();
            }
            Ok((out, fp))
        })();
        variants.push(("tcp2".into(), run));
    }

    for (vname, run) in variants {
        sysds_obs::counters()
            .conf_checks
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let (out, fp) = match run {
            Ok(r) => r,
            Err(e) => {
                sysds_obs::counters()
                    .conf_divergences
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return Ok(Some(Divergence {
                    seed: script.seed,
                    config_a: "local".into(),
                    config_b: vname.clone(),
                    variable: "<execution>".into(),
                    detail: format!("error under {vname}: {e}"),
                    fingerprint_a: sysds_obs::render_fingerprint(ref_fp),
                    fingerprint_b: "n/a".into(),
                }));
            }
        };
        for name in &script.outputs {
            if let Some(detail) = diff_value(&ref_out, &out, name) {
                sysds_obs::counters()
                    .conf_divergences
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return Ok(Some(Divergence {
                    seed: script.seed,
                    config_a: "local".into(),
                    config_b: vname,
                    variable: name.clone(),
                    detail,
                    fingerprint_a: sysds_obs::render_fingerprint(ref_fp),
                    fingerprint_b: sysds_obs::render_fingerprint(fp),
                }));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenOptions};

    #[test]
    fn tolerance_accepts_reassociation_noise() {
        assert!(scalar_close(1.0, 1.0 + 1e-12));
        assert!(scalar_close(1e12, 1e12 + 1.0));
        assert!(scalar_close(f64::NAN, f64::NAN));
        assert!(!scalar_close(1.0, 1.001));
        assert!(!scalar_close(0.0, 1e-6));
    }

    #[test]
    fn matrix_has_reference_first_and_all_dimensions() {
        let m = config_matrix();
        assert_eq!(m[0].name, "reference");
        let names: Vec<&str> = m.iter().map(|c| c.name).collect();
        for expected in [
            "fusion",
            "threads4",
            "reuse",
            "evict",
            "norecompile",
            "blas",
        ] {
            assert!(names.contains(&expected), "missing config {expected}");
        }
        assert!(!m[0].config.fusion);
        assert_eq!(m[0].config.num_threads, 1);
    }

    #[test]
    fn a_simple_generated_script_passes_the_matrix() {
        let script = generate(7, GenOptions::default());
        let div = check_script(&script).expect("oracle runs");
        assert!(div.is_none(), "unexpected divergence: {:?}", div);
    }

    #[test]
    fn fed_input_matrix_is_deterministic() {
        let a = fed_input_matrix(9, 5, 3);
        let b = fed_input_matrix(9, 5, 3);
        assert_eq!(a.to_vec(), b.to_vec());
        let c = fed_input_matrix(10, 5, 3);
        assert_ne!(a.to_vec(), c.to_vec());
    }
}
