//! `sysds-conformance` — differential DML fuzzing harness.
//!
//! A declarative ML system promises that optimizer and runtime choices are
//! invisible in results: operator fusion, multi-threading, lineage-based
//! reuse, buffer-pool eviction, dynamic recompilation, and federation are
//! plan decisions, not semantics. This crate checks that promise by
//! construction:
//!
//! * [`gen`] — a seeded random DML program generator (deterministic,
//!   numerically tame, feature-dense);
//! * [`oracle`] — runs one script under a configuration matrix and compares
//!   all outputs (shape-exact, value-approximate at 1e-9 relative);
//! * [`shrink`] — minimizes failing seeds (smaller dims, fewer statements);
//! * [`corpus`] — self-contained `.dml` repro files under `tests/corpus/`,
//!   replayed as a tier-1 test;
//! * [`fuzz`] — the campaign driver behind `sysds fuzz --seed S --iters N`.

pub mod corpus;
pub mod fuzz;
pub mod gen;
pub mod oracle;
pub mod shrink;

pub use fuzz::{run, FuzzOptions, FuzzReport};
pub use gen::{generate, GenOptions, Script};
pub use oracle::{check_script, config_matrix, Divergence, REL_TOL};
