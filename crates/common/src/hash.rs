//! A fast, deterministic, non-cryptographic 64-bit hasher.
//!
//! Lineage keys (paper §3.1) are structural hashes over lineage DAGs, probed
//! on *every* instruction execution, so hashing must be cheap. We implement
//! the FxHash mixing function (as used in rustc) by hand to avoid an extra
//! dependency; determinism across runs matters because lineage hashes key the
//! reuse cache and appear in debug traces.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style 64-bit hasher.
#[derive(Debug, Default, Clone)]
pub struct FxHasher64 {
    hash: u64,
}

impl FxHasher64 {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) ^ rem.len() as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `BuildHasher` for use in `HashMap`s on hot paths.
pub type FxBuildHasher = BuildHasherDefault<FxHasher64>;

/// A `HashMap` using [`FxHasher64`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher64`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

/// Hash a byte slice in one call.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher64::default();
    h.write(bytes);
    h.finish()
}

/// Combine two 64-bit hashes order-dependently (for DAG-node hashing).
#[inline]
pub fn combine(a: u64, b: u64) -> u64 {
    (a.rotate_left(5) ^ b).wrapping_mul(SEED)
}

/// Hash a string in one call.
pub fn hash_str(s: &str) -> u64 {
    hash_bytes(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        assert_eq!(hash_str("tsmm"), hash_str("tsmm"));
        assert_ne!(hash_str("tsmm"), hash_str("ba+*"));
    }

    #[test]
    fn combine_is_order_dependent() {
        let (a, b) = (hash_str("x"), hash_str("y"));
        assert_ne!(combine(a, b), combine(b, a));
    }

    #[test]
    fn unaligned_tail_contributes() {
        assert_ne!(hash_bytes(b"abcdefgh"), hash_bytes(b"abcdefghi"));
        assert_ne!(hash_bytes(b"abcdefghi"), hash_bytes(b"abcdefghj"));
    }

    #[test]
    fn empty_input_is_stable() {
        assert_eq!(hash_bytes(b""), hash_bytes(b""));
    }

    #[test]
    fn fx_hashmap_usable() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(42, "answer");
        assert_eq!(m.get(&42), Some(&"answer"));
    }
}
