//! Shared foundations for the `systemds-rs` workspace.
//!
//! This crate hosts the pieces every other crate needs: the workspace-wide
//! error type ([`SysDsError`]), the value-type lattice of the heterogeneous
//! tensor data model ([`ValueType`], [`ScalarValue`]), engine configuration
//! ([`config::EngineConfig`]), a fast non-cryptographic hasher used for
//! lineage keys ([`hash`]), and small deterministic RNG utilities ([`rng`]).

pub mod config;
pub mod error;
pub mod hash;
pub mod rng;
pub mod testing;
pub mod value;

pub use config::{EngineConfig, NetConfig};
pub use error::{Result, SysDsError};
pub use value::{ScalarValue, ValueType};
