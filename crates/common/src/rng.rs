//! Deterministic pseudo-random number generation.
//!
//! The paper stresses that lineage must capture non-determinism "like
//! generated seeds" (§3.1). We therefore route all randomness through an
//! explicitly-seeded xorshift generator: seeds are plain `u64`s that can be
//! recorded in lineage items, and streams can be split deterministically for
//! multi-threaded data generation (each thread derives `split(seed, i)`).

/// A small, fast xorshift64* PRNG. Not cryptographic; used for synthetic
/// data generation and sampling where reproducibility matters more than
/// statistical perfection.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Create a generator from a seed; a zero seed is remapped (xorshift
    /// has a fixed point at 0).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform double in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform double in `[lo, hi)`.
    #[inline]
    pub fn next_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)`; `n` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Standard-normal sample via Box–Muller.
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Derive a substream seed for worker `index` from a master seed, so that
/// parallel generators produce disjoint, reproducible streams.
pub fn split(seed: u64, index: u64) -> u64 {
    // SplitMix64 step keyed by the index.
    let mut z = seed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_does_not_stall() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn unit_interval_bounds() {
        let mut r = XorShift64::new(42);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_bounds() {
        let mut r = XorShift64::new(42);
        for _ in 0..1_000 {
            let v = r.next_range(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&v));
        }
    }

    #[test]
    fn gaussian_moments_roughly_standard() {
        let mut r = XorShift64::new(123);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn split_streams_differ() {
        let s = 99;
        assert_ne!(split(s, 0), split(s, 1));
        let mut a = XorShift64::new(split(s, 0));
        let mut b = XorShift64::new(split(s, 1));
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_range() {
        let mut r = XorShift64::new(5);
        for _ in 0..1000 {
            assert!(r.next_below(7) < 7);
        }
    }
}
