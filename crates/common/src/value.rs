//! Value types of the heterogeneous tensor data model (paper §2.4).
//!
//! A `BasicTensorBlock` is homogeneous over one [`ValueType`]; a
//! `DataTensorBlock` carries a schema (one [`ValueType`] per column).
//! Scalars in the DML runtime are represented by [`ScalarValue`].

use crate::error::{Result, SysDsError};
use std::fmt;

/// The six value types supported by SystemDS tensor blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    Fp32,
    Fp64,
    Int32,
    Int64,
    Boolean,
    /// Strings (the paper includes JSON under this type).
    String,
}

impl ValueType {
    /// Whether this type participates in numeric promotion.
    pub fn is_numeric(self) -> bool {
        !matches!(self, ValueType::String)
    }

    /// Size of one element in bytes for dense storage (strings estimated).
    pub fn element_size(self) -> usize {
        match self {
            ValueType::Fp32 | ValueType::Int32 => 4,
            ValueType::Fp64 | ValueType::Int64 => 8,
            ValueType::Boolean => 1,
            // Average in-memory string estimate, as used for memory budgeting.
            ValueType::String => 32,
        }
    }

    /// Numeric promotion lattice: the smallest type able to represent both.
    pub fn promote(self, other: ValueType) -> ValueType {
        use ValueType::*;
        match (self, other) {
            (String, _) | (_, String) => String,
            (Fp64, _) | (_, Fp64) => Fp64,
            (Fp32, Int64) | (Int64, Fp32) => Fp64,
            (Fp32, _) | (_, Fp32) => Fp32,
            (Int64, _) | (_, Int64) => Int64,
            (Int32, _) | (_, Int32) => Int32,
            (Boolean, Boolean) => Boolean,
        }
    }

    /// Parse the external name used in `.mtd` metadata and frame schemas.
    pub fn from_name(name: &str) -> Result<ValueType> {
        match name {
            "fp32" | "float" => Ok(ValueType::Fp32),
            "fp64" | "double" => Ok(ValueType::Fp64),
            "int32" | "int" => Ok(ValueType::Int32),
            "int64" | "long" => Ok(ValueType::Int64),
            "bool" | "boolean" => Ok(ValueType::Boolean),
            "string" | "str" => Ok(ValueType::String),
            other => Err(SysDsError::TypeError(format!(
                "unknown value type '{other}'"
            ))),
        }
    }

    /// External name, inverse of [`ValueType::from_name`].
    pub fn name(self) -> &'static str {
        match self {
            ValueType::Fp32 => "fp32",
            ValueType::Fp64 => "fp64",
            ValueType::Int32 => "int32",
            ValueType::Int64 => "int64",
            ValueType::Boolean => "boolean",
            ValueType::String => "string",
        }
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A runtime scalar value as produced and consumed by DML programs.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarValue {
    F64(f64),
    I64(i64),
    Bool(bool),
    Str(String),
}

impl ScalarValue {
    /// The value type of this scalar.
    pub fn value_type(&self) -> ValueType {
        match self {
            ScalarValue::F64(_) => ValueType::Fp64,
            ScalarValue::I64(_) => ValueType::Int64,
            ScalarValue::Bool(_) => ValueType::Boolean,
            ScalarValue::Str(_) => ValueType::String,
        }
    }

    /// Coerce to `f64`, following R-like semantics (`TRUE` → 1.0).
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            ScalarValue::F64(v) => Ok(*v),
            ScalarValue::I64(v) => Ok(*v as f64),
            ScalarValue::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
            ScalarValue::Str(s) => s
                .trim()
                .parse::<f64>()
                .map_err(|_| SysDsError::TypeError(format!("cannot convert '{s}' to double"))),
        }
    }

    /// Coerce to `i64`, truncating doubles like DML's `as.integer`.
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            ScalarValue::F64(v) => Ok(*v as i64),
            ScalarValue::I64(v) => Ok(*v),
            ScalarValue::Bool(b) => Ok(*b as i64),
            ScalarValue::Str(s) => s
                .trim()
                .parse::<i64>()
                .or_else(|_| s.trim().parse::<f64>().map(|v| v as i64))
                .map_err(|_| SysDsError::TypeError(format!("cannot convert '{s}' to integer"))),
        }
    }

    /// Coerce to `bool`; numbers are true iff non-zero.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            ScalarValue::F64(v) => Ok(*v != 0.0),
            ScalarValue::I64(v) => Ok(*v != 0),
            ScalarValue::Bool(b) => Ok(*b),
            ScalarValue::Str(s) => match s.trim() {
                "TRUE" | "true" => Ok(true),
                "FALSE" | "false" => Ok(false),
                other => Err(SysDsError::TypeError(format!(
                    "cannot convert '{other}' to boolean"
                ))),
            },
        }
    }

    /// Render for `print()`/`toString()`; integers without decimal point.
    pub fn to_display_string(&self) -> String {
        match self {
            ScalarValue::F64(v) => format_f64(*v),
            ScalarValue::I64(v) => v.to_string(),
            ScalarValue::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            ScalarValue::Str(s) => s.clone(),
        }
    }
}

impl fmt::Display for ScalarValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_display_string())
    }
}

/// Format a double the way DML's `print` does: integral values without a
/// trailing `.0`, otherwise shortest round-trip representation.
pub fn format_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 && v.is_finite() {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotion_lattice() {
        use ValueType::*;
        assert_eq!(Fp32.promote(Int64), Fp64);
        assert_eq!(Int32.promote(Int64), Int64);
        assert_eq!(Boolean.promote(Boolean), Boolean);
        assert_eq!(Boolean.promote(Int32), Int32);
        assert_eq!(Fp64.promote(String), String);
        assert_eq!(Fp32.promote(Fp32), Fp32);
    }

    #[test]
    fn promotion_is_commutative() {
        use ValueType::*;
        for a in [Fp32, Fp64, Int32, Int64, Boolean, String] {
            for b in [Fp32, Fp64, Int32, Int64, Boolean, String] {
                assert_eq!(a.promote(b), b.promote(a));
            }
        }
    }

    #[test]
    fn name_round_trip() {
        use ValueType::*;
        for vt in [Fp32, Fp64, Int32, Int64, Boolean, String] {
            assert_eq!(ValueType::from_name(vt.name()).unwrap(), vt);
        }
        assert!(ValueType::from_name("complex").is_err());
    }

    #[test]
    fn scalar_coercions() {
        assert_eq!(ScalarValue::Str("3.5".into()).as_f64().unwrap(), 3.5);
        assert_eq!(ScalarValue::F64(3.9).as_i64().unwrap(), 3);
        assert_eq!(ScalarValue::Bool(true).as_f64().unwrap(), 1.0);
        assert!(ScalarValue::Str("abc".into()).as_f64().is_err());
        assert!(ScalarValue::F64(0.0).as_bool().is_ok());
        assert!(!ScalarValue::F64(0.0).as_bool().unwrap());
        assert!(ScalarValue::Str("TRUE".into()).as_bool().unwrap());
    }

    #[test]
    fn display_formatting() {
        assert_eq!(ScalarValue::F64(2.0).to_display_string(), "2");
        assert_eq!(ScalarValue::F64(2.5).to_display_string(), "2.5");
        assert_eq!(ScalarValue::Bool(false).to_display_string(), "FALSE");
        assert_eq!(ScalarValue::I64(-7).to_display_string(), "-7");
    }

    #[test]
    fn element_sizes() {
        assert_eq!(ValueType::Fp64.element_size(), 8);
        assert_eq!(ValueType::Boolean.element_size(), 1);
        assert_eq!(ValueType::Fp32.element_size(), 4);
    }
}
