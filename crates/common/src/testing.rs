//! Test-support utilities shared across the workspace's test suites.
//!
//! Integration tests used to share fixed temp directories (e.g. one spill
//! dir per test *file*), which made concurrently running test binaries race
//! on identical paths. Every test should instead call [`unique_temp_dir`]
//! and get a directory that is unique per process *and* per call, so no two
//! tests — in the same binary or across binaries — ever share a path.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh, created temp directory `<tmp>/<prefix>-<pid>-<seq>`.
///
/// The pid isolates concurrently running test binaries; the per-process
/// sequence number isolates tests (and repeated calls) within one binary.
/// The directory exists on return.
pub fn unique_temp_dir(prefix: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("{prefix}-{}-{seq}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("can create temp dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirs_are_unique_and_exist() {
        let a = unique_temp_dir("sysds-testing");
        let b = unique_temp_dir("sysds-testing");
        assert_ne!(a, b);
        assert!(a.is_dir());
        assert!(b.is_dir());
        let _ = std::fs::remove_dir_all(&a);
        let _ = std::fs::remove_dir_all(&b);
    }

    #[test]
    fn prefix_appears_in_path() {
        let d = unique_temp_dir("sysds-prefix-check");
        assert!(d
            .file_name()
            .unwrap()
            .to_string_lossy()
            .starts_with("sysds-prefix-check-"));
        let _ = std::fs::remove_dir_all(&d);
    }
}
