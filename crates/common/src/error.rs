//! Workspace-wide error type.
//!
//! SystemDS distinguishes language-level errors (parse/validate), compiler
//! errors (size propagation, plan generation), and runtime errors
//! (instruction execution, I/O). We mirror that with one enum so errors can
//! flow across crate boundaries without boxing.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, SysDsError>;

/// The error type shared by all `systemds-rs` crates.
#[derive(Debug)]
pub enum SysDsError {
    /// Lexer/parser failures, with 1-based line/column positions.
    Parse {
        line: usize,
        col: usize,
        msg: String,
    },
    /// Semantic validation failures (unknown variables, arity mismatches, ...).
    Validate(String),
    /// Compiler failures (size propagation, operator selection, lop gen).
    Compile(String),
    /// Runtime instruction failures (shape mismatches, singular matrices, ...).
    Runtime(String),
    /// Dimension mismatch in a linear-algebra kernel.
    DimensionMismatch {
        op: &'static str,
        lhs: (usize, usize),
        rhs: (usize, usize),
    },
    /// Index out of bounds on a tensor/matrix/frame access.
    IndexOutOfBounds { msg: String },
    /// Numerical failure (singular system, non-PD matrix, divergence).
    Numerical(String),
    /// Value-type errors in the heterogeneous tensor data model.
    TypeError(String),
    /// I/O failures wrapping `std::io::Error` with file context.
    Io {
        path: String,
        source: std::io::Error,
    },
    /// Malformed external data (CSV cells, metadata files, binary blocks).
    Format(String),
    /// Federated-backend failures (worker died, exchange-constraint breach).
    Federated(String),
    /// A federated site became unreachable: every retry within the deadline
    /// budget failed, so the federated operation is aborted instead of
    /// hanging. `endpoint` identifies the site, `detail` the last transport
    /// error observed.
    FederatedSiteLost { endpoint: String, detail: String },
    /// User script called `stop("...")`.
    Stop(String),
}

impl fmt::Display for SysDsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SysDsError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            SysDsError::Validate(msg) => write!(f, "validation error: {msg}"),
            SysDsError::Compile(msg) => write!(f, "compile error: {msg}"),
            SysDsError::Runtime(msg) => write!(f, "runtime error: {msg}"),
            SysDsError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            SysDsError::IndexOutOfBounds { msg } => write!(f, "index out of bounds: {msg}"),
            SysDsError::Numerical(msg) => write!(f, "numerical error: {msg}"),
            SysDsError::TypeError(msg) => write!(f, "type error: {msg}"),
            SysDsError::Io { path, source } => write!(f, "i/o error on '{path}': {source}"),
            SysDsError::Format(msg) => write!(f, "format error: {msg}"),
            SysDsError::Federated(msg) => write!(f, "federated error: {msg}"),
            SysDsError::FederatedSiteLost { endpoint, detail } => {
                write!(f, "federated site '{endpoint}' lost: {detail}")
            }
            SysDsError::Stop(msg) => write!(f, "stop: {msg}"),
        }
    }
}

impl std::error::Error for SysDsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SysDsError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl SysDsError {
    /// Wrap an `std::io::Error` with the path that produced it.
    pub fn io(path: impl Into<String>, source: std::io::Error) -> Self {
        SysDsError::Io {
            path: path.into(),
            source,
        }
    }

    /// Shorthand constructor for runtime errors.
    pub fn runtime(msg: impl Into<String>) -> Self {
        SysDsError::Runtime(msg.into())
    }

    /// Shorthand constructor for compile errors.
    pub fn compile(msg: impl Into<String>) -> Self {
        SysDsError::Compile(msg.into())
    }

    /// Shorthand constructor for validation errors.
    pub fn validate(msg: impl Into<String>) -> Self {
        SysDsError::Validate(msg.into())
    }

    /// Shorthand constructor for a lost federated site.
    pub fn site_lost(endpoint: impl Into<String>, detail: impl Into<String>) -> Self {
        SysDsError::FederatedSiteLost {
            endpoint: endpoint.into(),
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_error() {
        let e = SysDsError::Parse {
            line: 3,
            col: 7,
            msg: "unexpected ')'".into(),
        };
        assert_eq!(e.to_string(), "parse error at 3:7: unexpected ')'");
    }

    #[test]
    fn display_dimension_mismatch() {
        let e = SysDsError::DimensionMismatch {
            op: "%*%",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        assert_eq!(e.to_string(), "dimension mismatch in %*%: 2x3 vs 4x5");
    }

    #[test]
    fn io_error_preserves_source() {
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = SysDsError::io("/tmp/x.csv", inner);
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("/tmp/x.csv"));
    }

    #[test]
    fn display_site_lost() {
        let e = SysDsError::site_lost("127.0.0.1:7700", "connection refused");
        assert_eq!(
            e.to_string(),
            "federated site '127.0.0.1:7700' lost: connection refused"
        );
        assert!(matches!(e, SysDsError::FederatedSiteLost { .. }));
    }

    #[test]
    fn shorthand_constructors() {
        assert!(matches!(SysDsError::runtime("x"), SysDsError::Runtime(_)));
        assert!(matches!(SysDsError::compile("x"), SysDsError::Compile(_)));
        assert!(matches!(SysDsError::validate("x"), SysDsError::Validate(_)));
    }
}
