//! Engine configuration.
//!
//! SystemDS decides between local (CP) and distributed operators based on
//! memory estimates against the driver budget (paper §2.3), caps buffer-pool
//! occupancy, and toggles lineage tracing / reuse. All of those knobs live
//! here so the compiler, runtime, and benchmarks share one source of truth.

use std::path::PathBuf;

/// How lineage-based reuse of intermediates behaves (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReusePolicy {
    /// No reuse; lineage may still be traced for provenance.
    None,
    /// Reuse only exact (full) lineage matches.
    Full,
    /// Full reuse plus compensation-plan based partial reuse.
    FullAndPartial,
}

/// Robustness knobs for networked federation (timeouts, retries, health).
///
/// All durations are milliseconds. Retries apply only to requests that are
/// idempotent or deduplicated site-side by request id; the backoff between
/// attempt `k` and `k+1` is `backoff_base_ms * 2^k` plus deterministic
/// jitter, capped at `backoff_max_ms`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetConfig {
    /// TCP connect timeout per attempt.
    pub connect_timeout_ms: u64,
    /// Per-request deadline (send + site execution + receive).
    pub request_timeout_ms: u64,
    /// Retries after the first failed attempt (0 = fail fast).
    pub max_retries: u32,
    /// Base backoff before the first retry.
    pub backoff_base_ms: u64,
    /// Upper bound on any single backoff sleep.
    pub backoff_max_ms: u64,
    /// Interval between heartbeat pings from the health checker.
    pub heartbeat_interval_ms: u64,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            connect_timeout_ms: 2_000,
            request_timeout_ms: 30_000,
            max_retries: 3,
            backoff_base_ms: 20,
            backoff_max_ms: 2_000,
            heartbeat_interval_ms: 1_000,
            jitter_seed: 0x5d5d5,
        }
    }
}

impl NetConfig {
    /// Builder-style setter for the per-request deadline.
    pub fn request_timeout_ms(mut self, ms: u64) -> Self {
        self.request_timeout_ms = ms;
        self
    }

    /// Builder-style setter for the retry budget.
    pub fn max_retries(mut self, n: u32) -> Self {
        self.max_retries = n;
        self
    }

    /// Builder-style setter for the base backoff.
    pub fn backoff_base_ms(mut self, ms: u64) -> Self {
        self.backoff_base_ms = ms;
        self
    }
}

/// Global engine configuration, threaded through compiler and runtime.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Degree of parallelism for multi-threaded kernels, parfor, and I/O.
    pub num_threads: usize,
    /// Driver memory budget in bytes; operations estimated above this are
    /// compiled to the distributed backend.
    pub memory_budget: usize,
    /// Maximum bytes the buffer pool holds before evicting to disk.
    pub buffer_pool_limit: usize,
    /// Directory for buffer-pool spill files.
    pub spill_dir: PathBuf,
    /// Whether lineage tracing is enabled.
    pub lineage: bool,
    /// Reuse policy for the lineage cache.
    pub reuse: ReusePolicy,
    /// Maximum bytes held by the lineage reuse cache.
    pub reuse_cache_limit: usize,
    /// Use the optimized (BLAS-like blocked, multi-threaded) matmul kernels
    /// instead of the portable naive ones. Models SysDS vs SysDS-B (§4.2).
    pub native_blas: bool,
    /// Block side length for distributed 2-D blocking (paper: 1024).
    pub block_size: usize,
    /// Enable dynamic recompilation of blocks with unknown sizes.
    pub dynamic_recompile: bool,
    /// Fuse single-consumer cell-wise chains (and aggregates over them)
    /// into one-pass `Fused` operators during lowering.
    pub fusion: bool,
    /// Collect runtime statistics (heavy hitters, counters) for reporting.
    pub stats: bool,
    /// When set, append one JSONL span record per instrumented region to
    /// this file.
    pub trace_file: Option<PathBuf>,
    /// When set, buffer span records in memory and export them as Chrome
    /// `trace_event` JSON (chrome://tracing, Perfetto) to this file after
    /// the run.
    pub chrome_trace_file: Option<PathBuf>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        EngineConfig {
            num_threads: threads,
            memory_budget: 4 << 30,     // 4 GiB driver budget
            buffer_pool_limit: 2 << 30, // 2 GiB buffer pool
            spill_dir: std::env::temp_dir().join("sysds-spill"),
            lineage: false,
            reuse: ReusePolicy::None,
            reuse_cache_limit: 1 << 30, // 1 GiB lineage cache
            native_blas: false,
            block_size: 1024,
            dynamic_recompile: true,
            fusion: true,
            stats: false,
            trace_file: None,
            chrome_trace_file: None,
        }
    }
}

impl EngineConfig {
    /// Configuration with lineage tracing and full+partial reuse enabled.
    pub fn with_reuse() -> Self {
        EngineConfig {
            lineage: true,
            reuse: ReusePolicy::FullAndPartial,
            ..Self::default()
        }
    }

    /// Builder-style setter for the thread count.
    pub fn threads(mut self, n: usize) -> Self {
        self.num_threads = n.max(1);
        self
    }

    /// Builder-style setter for the driver memory budget.
    pub fn budget(mut self, bytes: usize) -> Self {
        self.memory_budget = bytes;
        self
    }

    /// Builder-style setter enabling the optimized kernel path (SysDS-B).
    pub fn blas(mut self, enabled: bool) -> Self {
        self.native_blas = enabled;
        self
    }

    /// Builder-style setter for the reuse policy (implies lineage tracing
    /// when the policy is not [`ReusePolicy::None`]).
    pub fn reuse_policy(mut self, policy: ReusePolicy) -> Self {
        self.reuse = policy;
        if policy != ReusePolicy::None {
            self.lineage = true;
        }
        self
    }

    /// Builder-style setter for operator fusion (`--no-fusion` disables).
    pub fn fusion(mut self, enabled: bool) -> Self {
        self.fusion = enabled;
        self
    }

    /// Builder-style setter for statistics collection (`--stats`).
    pub fn stats(mut self, enabled: bool) -> Self {
        self.stats = enabled;
        self
    }

    /// Builder-style setter for JSONL span tracing (`--trace FILE`).
    pub fn trace(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_file = Some(path.into());
        self
    }

    /// Builder-style setter for Chrome trace export (`--chrome-trace FILE`).
    pub fn chrome_trace(mut self, path: impl Into<PathBuf>) -> Self {
        self.chrome_trace_file = Some(path.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = EngineConfig::default();
        assert!(c.num_threads >= 1);
        assert!(c.memory_budget > 0);
        assert_eq!(c.reuse, ReusePolicy::None);
        assert!(!c.lineage);
    }

    #[test]
    fn with_reuse_enables_lineage() {
        let c = EngineConfig::with_reuse();
        assert!(c.lineage);
        assert_eq!(c.reuse, ReusePolicy::FullAndPartial);
    }

    #[test]
    fn builder_chain() {
        let c = EngineConfig::default().threads(2).budget(1024).blas(true);
        assert_eq!(c.num_threads, 2);
        assert_eq!(c.memory_budget, 1024);
        assert!(c.native_blas);
    }

    #[test]
    fn reuse_policy_setter_implies_lineage() {
        let c = EngineConfig::default().reuse_policy(ReusePolicy::Full);
        assert!(c.lineage);
    }

    #[test]
    fn threads_clamped_to_one() {
        assert_eq!(EngineConfig::default().threads(0).num_threads, 1);
    }

    #[test]
    fn stats_and_trace_builders() {
        let c = EngineConfig::default();
        assert!(!c.stats);
        assert!(c.trace_file.is_none());
        let c = c.stats(true).trace("/tmp/out.jsonl");
        assert!(c.stats);
        assert_eq!(
            c.trace_file.as_deref(),
            Some(std::path::Path::new("/tmp/out.jsonl"))
        );
    }

    #[test]
    fn net_config_defaults_and_builders() {
        let n = NetConfig::default();
        assert!(n.request_timeout_ms > 0);
        assert!(n.max_retries >= 1);
        let n = n.request_timeout_ms(500).max_retries(0).backoff_base_ms(5);
        assert_eq!(n.request_timeout_ms, 500);
        assert_eq!(n.max_retries, 0);
        assert_eq!(n.backoff_base_ms, 5);
    }

    #[test]
    fn chrome_trace_builder() {
        let c = EngineConfig::default();
        assert!(c.chrome_trace_file.is_none());
        let c = c.chrome_trace("/tmp/out.trace.json");
        assert_eq!(
            c.chrome_trace_file.as_deref(),
            Some(std::path::Path::new("/tmp/out.trace.json"))
        );
    }
}
