//! Property-based tests over the kernel library's algebraic invariants.

use proptest::prelude::*;
use sysds_tensor::kernels::{aggregate, elementwise, gen, indexing, matmult, reorg, tsmm};
use sysds_tensor::kernels::{AggFn, BinaryOp, Direction, UnaryOp};
use sysds_tensor::Matrix;

/// Strategy: a random matrix of bounded shape with the given sparsity.
fn mat(max_dim: usize, sparsity: f64) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim, any::<u64>())
        .prop_map(move |(r, c, seed)| gen::rand_uniform(r, c, -2.0, 2.0, sparsity, seed).compact())
}

/// Strategy: compatible (A, B) for matrix multiplication.
fn mat_pair(max_dim: usize) -> impl Strategy<Value = (Matrix, Matrix, Matrix)> {
    (1..=max_dim, 1..=max_dim, 1..=max_dim, any::<u64>(), 0u8..3).prop_map(
        move |(m, k, n, seed, sp)| {
            let s = |x: u8| if x == 0 { 1.0 } else { 0.2 };
            (
                gen::rand_uniform(m, k, -1.0, 1.0, s(sp % 2), seed).compact(),
                gen::rand_uniform(k, n, -1.0, 1.0, s(sp / 2), seed ^ 0xABCD).compact(),
                gen::rand_uniform(k, n, -1.0, 1.0, 1.0, seed ^ 0x1234),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transpose_is_involution(m in mat(24, 1.0)) {
        let t2 = reorg::transpose(&reorg::transpose(&m, 2), 2);
        prop_assert!(t2.approx_eq(&m, 0.0));
    }

    #[test]
    fn transpose_is_involution_sparse(m in mat(24, 0.15)) {
        let t2 = reorg::transpose(&reorg::transpose(&m, 1), 1);
        prop_assert!(t2.approx_eq(&m, 0.0));
    }

    #[test]
    fn matmul_distributes_over_addition((a, b, c) in mat_pair(12)) {
        // A(B + C) == AB + AC
        let bc = elementwise::binary_mm(BinaryOp::Add, &b, &c).unwrap();
        let lhs = matmult::matmul(&a, &bc, 2, false).unwrap();
        let ab = matmult::matmul(&a, &b, 2, true).unwrap();
        let ac = matmult::matmul(&a, &c, 2, false).unwrap();
        let rhs = elementwise::binary_mm(BinaryOp::Add, &ab, &ac).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-8));
    }

    #[test]
    fn transpose_of_product_is_reversed_product((a, b, _) in mat_pair(10)) {
        // t(AB) == t(B) t(A)
        let lhs = reorg::transpose(&matmult::matmul(&a, &b, 1, false).unwrap(), 1);
        let rhs = matmult::matmul(&reorg::transpose(&b, 1), &reorg::transpose(&a, 1), 1, false).unwrap();
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn tsmm_equals_explicit_product(m in mat(20, 1.0)) {
        let fused = tsmm::tsmm(&m, 2, true);
        let explicit = matmult::matmul(&reorg::transpose(&m, 1), &m, 1, false).unwrap();
        prop_assert!(fused.approx_eq(&explicit, 1e-9));
    }

    #[test]
    fn tsmm_equals_explicit_product_sparse(m in mat(24, 0.2)) {
        let fused = tsmm::tsmm(&m, 3, false);
        let explicit = matmult::matmul(&reorg::transpose(&m, 1), &m, 1, false).unwrap();
        prop_assert!(fused.approx_eq(&explicit, 1e-9));
    }

    #[test]
    fn sum_invariant_under_transpose_and_reshape(m in mat(20, 0.3)) {
        let s0 = aggregate::aggregate_full(AggFn::Sum, &m).unwrap();
        let s1 = aggregate::aggregate_full(AggFn::Sum, &reorg::transpose(&m, 1)).unwrap();
        let s2 = aggregate::aggregate_full(
            AggFn::Sum,
            &reorg::reshape(&m, m.cols(), m.rows()).unwrap(),
        ).unwrap();
        prop_assert!((s0 - s1).abs() < 1e-9);
        prop_assert!((s0 - s2).abs() < 1e-9);
    }

    #[test]
    fn row_sums_sum_to_full_sum(m in mat(20, 1.0)) {
        let full = aggregate::aggregate_full(AggFn::Sum, &m).unwrap();
        let rows = aggregate::aggregate_axis(AggFn::Sum, Direction::Row, &m).unwrap();
        let total = aggregate::aggregate_full(AggFn::Sum, &rows).unwrap();
        prop_assert!((full - total).abs() < 1e-9);
    }

    #[test]
    fn cbind_slice_round_trip(a in mat(15, 1.0), seed in any::<u64>()) {
        let b = gen::rand_uniform(a.rows(), 3, -1.0, 1.0, 1.0, seed);
        let both = indexing::cbind(&a, &b).unwrap();
        let left = indexing::slice(&both, 0..a.rows(), 0..a.cols()).unwrap();
        let right = indexing::slice(&both, 0..a.rows(), a.cols()..a.cols() + 3).unwrap();
        prop_assert!(left.approx_eq(&a, 0.0));
        prop_assert!(right.approx_eq(&b, 0.0));
    }

    #[test]
    fn rbind_slice_round_trip(a in mat(15, 0.3), seed in any::<u64>()) {
        let b = gen::rand_uniform(4, a.cols(), -1.0, 1.0, 1.0, seed);
        let both = indexing::rbind(&a, &b).unwrap();
        let top = indexing::slice(&both, 0..a.rows(), 0..a.cols()).unwrap();
        let bottom = indexing::slice(&both, a.rows()..a.rows() + 4, 0..a.cols()).unwrap();
        prop_assert!(top.approx_eq(&a, 0.0));
        prop_assert!(bottom.approx_eq(&b, 0.0));
    }

    #[test]
    fn unary_neg_twice_is_identity(m in mat(20, 0.3)) {
        let back = elementwise::unary(UnaryOp::Neg, &elementwise::unary(UnaryOp::Neg, &m));
        prop_assert!(back.approx_eq(&m, 0.0));
    }

    #[test]
    fn scalar_ops_match_cellwise(m in mat(12, 1.0), s in -3.0f64..3.0) {
        let r = elementwise::binary_ms(BinaryOp::Add, &m, s);
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                prop_assert!((r.get(i, j) - (m.get(i, j) + s)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn compact_preserves_values(m in mat(20, 0.25)) {
        let dense = Matrix::Dense(m.to_dense());
        let compacted = dense.clone().compact();
        prop_assert!(compacted.approx_eq(&dense, 0.0));
    }

    #[test]
    fn solve_recovers_solution(n in 2usize..8, seed in any::<u64>()) {
        // Build SPD system A = X'X + I and verify solve(A, A w) == w.
        let x = gen::rand_uniform(n * 3, n, -1.0, 1.0, 1.0, seed);
        let g = tsmm::tsmm(&x, 1, false);
        let a = elementwise::binary_mm(
            BinaryOp::Add, &g, &Matrix::Dense(Matrix::identity(n).to_dense())).unwrap();
        let w = gen::rand_uniform(n, 1, -1.0, 1.0, 1.0, seed ^ 99);
        let b = matmult::matmul(&a, &w, 1, false).unwrap();
        let got = sysds_tensor::kernels::solve::solve(&a, &b).unwrap();
        prop_assert!(got.approx_eq(&w, 1e-6));
    }

    #[test]
    fn order_produces_sorted_column(m in mat(20, 1.0)) {
        let sorted = reorg::order(&m, 0, false, false).unwrap();
        for i in 1..sorted.rows() {
            prop_assert!(sorted.get(i - 1, 0) <= sorted.get(i, 0));
        }
    }
}
