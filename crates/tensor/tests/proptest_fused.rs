//! Property-based equivalence: the fused one-pass evaluator must match the
//! composition of unfused elementwise/aggregate kernels within 1e-9 on
//! randomly generated templates and inputs — dense and sparse, with and
//! without a closing aggregate, including NaN/Inf cells and empty shapes.

use proptest::prelude::*;
use sysds_tensor::kernels::fused::{self, FusedInput, FusedOutput, FusedTemplate, TemplateNode};
use sysds_tensor::kernels::{aggregate, elementwise, gen};
use sysds_tensor::kernels::{AggFn, BinaryOp, Direction, UnaryOp};
use sysds_tensor::Matrix;

const UNARY: [UnaryOp; 7] = [
    UnaryOp::Neg,
    UnaryOp::Abs,
    UnaryOp::Sqrt,
    UnaryOp::Exp,
    UnaryOp::Sigmoid,
    UnaryOp::Round,
    UnaryOp::Sign,
];
const BINARY: [BinaryOp; 7] = [
    BinaryOp::Add,
    BinaryOp::Sub,
    BinaryOp::Mul,
    BinaryOp::Div,
    BinaryOp::Min,
    BinaryOp::Max,
    BinaryOp::Pow,
];

/// Decode a raw step recipe into a template. Seeds the program with one
/// `Input` node per leaf, then appends one node per step: selector `< 7`
/// picks a unary op, `< 14` a binary op, otherwise a small literal; operand
/// bytes index (mod current length) into the nodes built so far.
fn build_template(
    num_inputs: usize,
    steps: &[(u8, u8, u8)],
    agg: Option<(AggFn, Direction)>,
) -> FusedTemplate {
    let mut nodes: Vec<TemplateNode> = (0..num_inputs).map(TemplateNode::Input).collect();
    for &(sel, a, b) in steps {
        let len = nodes.len();
        let node = match sel % 15 {
            s @ 0..=6 => TemplateNode::Unary(UNARY[s as usize], a as usize % len),
            s @ 7..=13 => {
                TemplateNode::Binary(BINARY[(s - 7) as usize], a as usize % len, b as usize % len)
            }
            _ => TemplateNode::Const((a as i8) as f64 / 4.0),
        };
        nodes.push(node);
    }
    let root = nodes.len() - 1;
    let saved_intermediates = steps.len();
    FusedTemplate {
        nodes,
        root,
        agg,
        num_inputs,
        saved_intermediates,
    }
}

/// Reference semantics: run the template node by node through the unfused
/// kernels, materializing every intermediate, then apply the aggregate.
fn reference(
    t: &FusedTemplate,
    inputs: &[FusedInput],
    m: usize,
    n: usize,
) -> sysds_common::Result<FusedOutput> {
    enum Val {
        M(Matrix),
        S(f64),
    }
    let mut vals: Vec<Val> = Vec::with_capacity(t.nodes.len());
    for node in &t.nodes {
        let v = match node {
            TemplateNode::Input(k) => match inputs[*k] {
                FusedInput::Matrix(mat) => Val::M(mat.clone()),
                FusedInput::Scalar(s) => Val::S(s),
            },
            TemplateNode::Const(c) => Val::S(*c),
            TemplateNode::Unary(op, a) => match &vals[*a] {
                Val::M(x) => Val::M(elementwise::unary(*op, x)),
                Val::S(x) => Val::S(op.apply(*x)),
            },
            TemplateNode::Binary(op, a, b) => match (&vals[*a], &vals[*b]) {
                (Val::M(x), Val::M(y)) => Val::M(elementwise::binary_mm(*op, x, y)?),
                (Val::M(x), Val::S(y)) => Val::M(elementwise::binary_ms(*op, x, *y)),
                (Val::S(x), Val::M(y)) => Val::M(elementwise::binary_sm(*op, *x, y)),
                (Val::S(x), Val::S(y)) => Val::S(op.apply(*x, *y)),
            },
        };
        vals.push(v);
    }
    // A scalar-only root broadcasts to the common input shape, exactly as
    // the fused dense path evaluates it per cell.
    let root = match &vals[t.root] {
        Val::M(x) => x.clone(),
        Val::S(s) => Matrix::from_vec(m, n, vec![*s; m * n])?,
    };
    match t.agg {
        None => Ok(FusedOutput::Matrix(root)),
        Some((f, Direction::Full)) => Ok(FusedOutput::Scalar(aggregate::aggregate_full(f, &root)?)),
        Some((f, d)) => Ok(FusedOutput::Matrix(aggregate::aggregate_axis(f, d, &root)?)),
    }
}

/// Scale-aware closeness: 1e-9 relative to the larger magnitude (floor 1.0),
/// with NaN matching NaN so divergent cells must diverge identically.
fn close(a: f64, b: f64) -> bool {
    a == b // covers equal infinities, where a - b would be NaN
        || (a.is_nan() && b.is_nan())
        || (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

fn outputs_match(fused: &FusedOutput, expect: &FusedOutput) -> Result<(), String> {
    match (fused, expect) {
        (FusedOutput::Scalar(a), FusedOutput::Scalar(b)) => {
            if close(*a, *b) {
                Ok(())
            } else {
                Err(format!("scalar mismatch: fused {a} vs unfused {b}"))
            }
        }
        (FusedOutput::Matrix(a), FusedOutput::Matrix(b)) => {
            if a.shape() != b.shape() {
                return Err(format!(
                    "shape mismatch: {:?} vs {:?}",
                    a.shape(),
                    b.shape()
                ));
            }
            for i in 0..a.rows() {
                for j in 0..a.cols() {
                    if !close(a.get(i, j), b.get(i, j)) {
                        return Err(format!(
                            "cell ({i},{j}) mismatch: fused {} vs unfused {}",
                            a.get(i, j),
                            b.get(i, j)
                        ));
                    }
                }
            }
            Ok(())
        }
        _ => Err("output kind mismatch (scalar vs matrix)".into()),
    }
}

/// Run fused and unfused evaluations and compare. Errors must agree too:
/// e.g. min() over an empty matrix fails on both paths.
fn check_equivalence(
    t: &FusedTemplate,
    inputs: &[FusedInput],
    m: usize,
    n: usize,
    threads: usize,
) -> Result<(), String> {
    let fused = fused::eval(t, inputs, threads);
    let expect = reference(t, inputs, m, n);
    let r = match (fused, expect) {
        (Ok(f), Ok(e)) => outputs_match(&f, &e),
        (Err(_), Err(_)) => Ok(()),
        (Ok(_), Err(e)) => Err(format!("fused succeeded but unfused failed: {e}")),
        (Err(e), Ok(_)) => Err(format!("fused failed but unfused succeeded: {e}")),
    };
    r.map_err(|e| format!("{e} [template {}]", t.signature()))
}

fn steps() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..=5)
}

fn agg() -> impl Strategy<Value = Option<(AggFn, Direction)>> {
    let fns = [
        AggFn::Sum,
        AggFn::SumSq,
        AggFn::Mean,
        AggFn::Min,
        AggFn::Max,
    ];
    let dirs = [Direction::Full, Direction::Row, Direction::Col];
    prop_oneof![
        Just(None),
        (0usize..fns.len(), 0usize..dirs.len()).prop_map(move |(f, d)| Some((fns[f], dirs[d]))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dense: two same-shape matrices plus a scalar, arbitrary template.
    #[test]
    fn fused_matches_unfused_dense(
        (r, c, seed) in (1usize..=9, 1usize..=9, any::<u64>()),
        s in -2.0f64..2.0,
        steps in steps(),
        agg in agg(),
        threads in 1usize..=3,
    ) {
        let x = gen::rand_uniform(r, c, -2.0, 2.0, 1.0, seed);
        let y = gen::rand_uniform(r, c, -2.0, 2.0, 1.0, seed ^ 0xBEEF);
        let t = build_template(3, &steps, agg);
        let inputs = [FusedInput::Matrix(&x), FusedInput::Matrix(&y), FusedInput::Scalar(s)];
        check_equivalence(&t, &inputs, r, c, threads).map_err(TestCaseError::fail)?;
    }

    /// Sparse: a single low-sparsity matrix plus a scalar, so zero-preserving
    /// templates take the nonzero-only fast path.
    #[test]
    fn fused_matches_unfused_sparse(
        (r, c, seed) in (1usize..=12, 1usize..=12, any::<u64>()),
        s in -2.0f64..2.0,
        steps in steps(),
        agg in agg(),
        threads in 1usize..=3,
    ) {
        let x = gen::rand_uniform(r, c, -2.0, 2.0, 0.2, seed).compact();
        let t = build_template(2, &steps, agg);
        let inputs = [FusedInput::Matrix(&x), FusedInput::Scalar(s)];
        check_equivalence(&t, &inputs, r, c, threads).map_err(TestCaseError::fail)?;
    }
}

/// sum((X - Y)^2) with NaN, +Inf, and -Inf cells: divergence must propagate
/// identically through the fused single pass.
#[test]
fn nan_and_inf_cells_propagate_identically() {
    let mut xs = vec![1.0; 12];
    let mut ys = vec![0.5; 12];
    xs[1] = f64::NAN;
    xs[4] = f64::INFINITY;
    ys[4] = f64::INFINITY; // Inf - Inf = NaN
    xs[7] = f64::NEG_INFINITY;
    ys[10] = f64::NAN;
    let x = Matrix::from_vec(3, 4, xs).unwrap();
    let y = Matrix::from_vec(3, 4, ys).unwrap();
    let t = FusedTemplate {
        nodes: vec![
            TemplateNode::Input(0),
            TemplateNode::Input(1),
            TemplateNode::Binary(BinaryOp::Sub, 0, 1),
            TemplateNode::Const(2.0),
            TemplateNode::Binary(BinaryOp::Pow, 2, 3),
        ],
        root: 4,
        agg: None,
        num_inputs: 2,
        saved_intermediates: 2,
    };
    let inputs = [FusedInput::Matrix(&x), FusedInput::Matrix(&y)];
    for threads in [1, 2, 4] {
        check_equivalence(&t, &inputs, 3, 4, threads).unwrap();
    }
    // Full-sum over the same template: NaN poisons both reductions.
    let t_sum = FusedTemplate {
        agg: Some((AggFn::Sum, Direction::Full)),
        ..t.clone()
    };
    let FusedOutput::Scalar(v) = fused::eval(&t_sum, &inputs, 2).unwrap() else {
        panic!("full aggregate must yield a scalar");
    };
    assert!(v.is_nan());
}

/// Empty shapes mirror the unfused kernels: sums yield 0 / empty outputs,
/// min/max/mean over zero cells fail on both paths.
#[test]
fn empty_matrices_match_unfused_semantics() {
    let t = |agg| FusedTemplate {
        nodes: vec![
            TemplateNode::Input(0),
            TemplateNode::Const(1.5),
            TemplateNode::Binary(BinaryOp::Mul, 0, 1),
        ],
        root: 2,
        agg,
        num_inputs: 1,
        saved_intermediates: 1,
    };
    for (r, c) in [(0usize, 4usize), (3, 0), (0, 0)] {
        let x = Matrix::zeros(r, c);
        let inputs = [FusedInput::Matrix(&x)];
        for agg in [
            None,
            Some((AggFn::Sum, Direction::Full)),
            Some((AggFn::SumSq, Direction::Full)),
            Some((AggFn::Min, Direction::Full)),
            Some((AggFn::Mean, Direction::Full)),
            Some((AggFn::Sum, Direction::Row)),
            Some((AggFn::Max, Direction::Col)),
        ] {
            check_equivalence(&t(agg), &inputs, r, c, 2).unwrap();
        }
    }
}
