//! Dense row-major `f64` storage.

/// A dense row-major matrix. Element `(i, j)` lives at `data[i * cols + j]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> DenseMatrix {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> DenseMatrix {
        DenseMatrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Wrap a row-major vector; `data.len()` must equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> DenseMatrix {
        assert_eq!(data.len(), rows * cols, "dense storage length mismatch");
        DenseMatrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element read.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Element write.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    /// Borrow the backing row-major slice.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the backing row-major slice.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Consume into the backing vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Count actual non-zero values (O(n)).
    pub fn count_nonzeros(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// Iterate all cells as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(k, &v)| (k / cols, k % cols, v))
    }

    /// Split the row range into `n` nearly equal chunks for parallel
    /// kernels; returns `(start_row, end_row)` pairs covering `0..rows`.
    pub fn row_partitions(rows: usize, n: usize) -> Vec<(usize, usize)> {
        let n = n.max(1).min(rows.max(1));
        let base = rows / n;
        let rem = rows % n;
        let mut out = Vec::with_capacity(n);
        let mut start = 0;
        for k in 0..n {
            let len = base + usize::from(k < rem);
            if len == 0 {
                break;
            }
            out.push((start, start + len));
            start += len;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_round_trip() {
        let mut m = DenseMatrix::zeros(3, 4);
        m.set(2, 3, 9.5);
        assert_eq!(m.get(2, 3), 9.5);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_vec_length_checked() {
        DenseMatrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn row_slices() {
        let m = DenseMatrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.row(0), &[1., 2., 3.]);
        assert_eq!(m.row(1), &[4., 5., 6.]);
    }

    #[test]
    fn iter_yields_coordinates() {
        let m = DenseMatrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let cells: Vec<_> = m.iter().collect();
        assert_eq!(cells, vec![(0, 0, 1.), (0, 1, 2.), (1, 0, 3.), (1, 1, 4.)]);
    }

    #[test]
    fn partitions_cover_all_rows() {
        for rows in [0usize, 1, 7, 100] {
            for n in [1usize, 3, 8, 200] {
                let parts = DenseMatrix::row_partitions(rows, n);
                let total: usize = parts.iter().map(|(s, e)| e - s).sum();
                assert_eq!(total, rows, "rows={rows} n={n}");
                // contiguous and ordered
                let mut expect = 0;
                for (s, e) in parts {
                    assert_eq!(s, expect);
                    assert!(e > s);
                    expect = e;
                }
            }
        }
    }

    #[test]
    fn count_nonzeros_ignores_zero() {
        let m = DenseMatrix::from_vec(1, 4, vec![0., 1., 0., 2.]);
        assert_eq!(m.count_nonzeros(), 2);
    }
}
