//! The 2-D `f64` matrix workhorse.
//!
//! Like SystemML's `MatrixBlock`, a [`Matrix`] transparently switches between
//! a dense row-major representation and a sparse CSR representation based on
//! observed sparsity; all runtime linear-algebra instructions operate on this
//! type. Kernels live in [`crate::kernels`] and are re-exported as inherent
//! methods where ergonomic.

mod dense;
mod sparse;

pub use dense::DenseMatrix;
pub use sparse::{SparseBuilder, SparseMatrix};

use sysds_common::{Result, SysDsError};

/// Sparsity below which a freshly produced matrix is stored as CSR.
/// SystemML uses the same threshold for its dense/sparse decision.
pub const SPARSE_THRESHOLD: f64 = 0.4;

/// A 2-D `f64` matrix with automatic dense/sparse representation.
#[derive(Debug, Clone, PartialEq)]
pub enum Matrix {
    Dense(DenseMatrix),
    Sparse(SparseMatrix),
}

impl Matrix {
    /// A dense all-zero matrix. (An all-zero matrix is conceptually sparse,
    /// but callers that immediately fill it want dense storage; use
    /// [`Matrix::compact`] afterwards when in doubt.)
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix::Dense(DenseMatrix::zeros(rows, cols))
    }

    /// A dense matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Matrix {
        Matrix::Dense(DenseMatrix::filled(rows, cols, value))
    }

    /// The identity matrix of order `n` (stored sparse for n > 8).
    pub fn identity(n: usize) -> Matrix {
        if n > 8 {
            let mut b = sparse::SparseBuilder::new(n, n);
            for i in 0..n {
                b.push(i, i, 1.0);
            }
            Matrix::Sparse(b.finish())
        } else {
            let mut m = DenseMatrix::zeros(n, n);
            for i in 0..n {
                m.set(i, i, 1.0);
            }
            Matrix::Dense(m)
        }
    }

    /// Build from a row-major vector; length must equal `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Matrix> {
        if data.len() != rows * cols {
            return Err(SysDsError::runtime(format!(
                "matrix({rows}x{cols}) requires {} values, got {}",
                rows * cols,
                data.len()
            )));
        }
        Ok(Matrix::Dense(DenseMatrix::from_vec(rows, cols, data)))
    }

    /// Build from nested rows (test convenience); all rows must have equal
    /// length.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Matrix> {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            if row.len() != c {
                return Err(SysDsError::runtime("ragged rows in matrix literal"));
            }
            data.extend_from_slice(row);
        }
        Matrix::from_vec(r, c, data)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        match self {
            Matrix::Dense(d) => d.rows(),
            Matrix::Sparse(s) => s.rows(),
        }
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        match self {
            Matrix::Dense(d) => d.cols(),
            Matrix::Sparse(s) => s.cols(),
        }
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows(), self.cols())
    }

    /// Number of structurally stored non-zeros (dense matrices count actual
    /// non-zero values).
    pub fn nnz(&self) -> usize {
        match self {
            Matrix::Dense(d) => d.count_nonzeros(),
            Matrix::Sparse(s) => s.nnz(),
        }
    }

    /// Fraction of non-zero cells, `nnz / (rows*cols)`; 0 for empty shapes.
    pub fn sparsity(&self) -> f64 {
        let cells = self.rows() * self.cols();
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }

    /// Whether the current representation is sparse.
    #[inline]
    pub fn is_sparse(&self) -> bool {
        matches!(self, Matrix::Sparse(_))
    }

    /// Element access with bounds checking in debug builds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        match self {
            Matrix::Dense(d) => d.get(i, j),
            Matrix::Sparse(s) => s.get(i, j),
        }
    }

    /// Set one element, converting to dense if necessary (sparse point
    /// updates are expensive; the runtime only uses this on small outputs).
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        if let Matrix::Sparse(_) = self {
            *self = Matrix::Dense(self.to_dense());
        }
        match self {
            Matrix::Dense(d) => d.set(i, j, v),
            Matrix::Sparse(_) => unreachable!("converted to dense above"),
        }
    }

    /// Materialize a dense copy (no-op clone when already dense).
    pub fn to_dense(&self) -> DenseMatrix {
        match self {
            Matrix::Dense(d) => d.clone(),
            Matrix::Sparse(s) => s.to_dense(),
        }
    }

    /// Materialize a CSR copy (no-op clone when already sparse).
    pub fn to_sparse(&self) -> SparseMatrix {
        match self {
            Matrix::Dense(d) => SparseMatrix::from_dense(d),
            Matrix::Sparse(s) => s.clone(),
        }
    }

    /// Re-examine sparsity and switch representation when crossing
    /// [`SPARSE_THRESHOLD`], mirroring SystemML's `examSparsity`.
    pub fn compact(self) -> Matrix {
        let sp = self.sparsity();
        match &self {
            Matrix::Dense(d) if sp < SPARSE_THRESHOLD && d.rows() * d.cols() >= 64 => {
                Matrix::Sparse(self.to_sparse())
            }
            Matrix::Sparse(_) if sp >= SPARSE_THRESHOLD => Matrix::Dense(self.to_dense()),
            _ => self,
        }
    }

    /// Like [`Matrix::compact`], but large dense outputs are sampled first:
    /// a strided probe of ~1k cells estimates the sparsity, and the exact
    /// O(mn) non-zero scan only runs when the estimate is near or below
    /// [`SPARSE_THRESHOLD`]. Hot kernels producing mostly-dense outputs
    /// (matmul, fused pipelines) skip the full scan entirely.
    pub fn compact_estimated(self) -> Matrix {
        const SAMPLE_MIN_CELLS: usize = 1 << 14;
        const SAMPLE_TARGET: usize = 1024;
        if let Matrix::Dense(d) = &self {
            let cells = d.rows() * d.cols();
            if cells >= SAMPLE_MIN_CELLS {
                let stride = cells / SAMPLE_TARGET;
                let mut sampled = 0usize;
                let mut nonzero = 0usize;
                for &v in d.values().iter().step_by(stride) {
                    sampled += 1;
                    nonzero += usize::from(v != 0.0);
                }
                let estimate = nonzero as f64 / sampled as f64;
                // Margin absorbs sampling error: only clearly-dense outputs
                // skip the exact scan, so representation flips near the
                // threshold still go through `compact`.
                if estimate >= SPARSE_THRESHOLD + 0.1 {
                    return self;
                }
            }
        }
        self.compact()
    }

    /// Estimated in-memory size in bytes, used by the compiler's memory
    /// estimates and the buffer pool.
    pub fn in_memory_size(&self) -> usize {
        match self {
            Matrix::Dense(d) => 32 + 8 * d.rows() * d.cols(),
            // values + column indices + row pointers
            Matrix::Sparse(s) => 48 + 16 * s.nnz() + 8 * (s.rows() + 1),
        }
    }

    /// Estimate the in-memory size of a matrix with the given shape and
    /// sparsity *without* materializing it (compiler memory estimates).
    pub fn estimate_size(rows: usize, cols: usize, sparsity: f64) -> usize {
        if sparsity < SPARSE_THRESHOLD {
            let nnz = (rows as f64 * cols as f64 * sparsity).ceil() as usize;
            48 + 16 * nnz + 8 * (rows + 1)
        } else {
            32 + 8 * rows * cols
        }
    }

    /// Iterate all cells as `(row, col, value)`, skipping structural zeros
    /// for sparse matrices.
    pub fn iter_nonzeros(&self) -> Box<dyn Iterator<Item = (usize, usize, f64)> + '_> {
        match self {
            Matrix::Dense(d) => Box::new(d.iter().filter(|&(_, _, v)| v != 0.0)),
            Matrix::Sparse(s) => Box::new(s.iter_nonzeros()),
        }
    }

    /// Extract the full matrix into a row-major `Vec<f64>`.
    pub fn to_vec(&self) -> Vec<f64> {
        self.to_dense().into_vec()
    }

    /// Treat an `n x 1` or `1 x n` matrix as a vector of values.
    pub fn as_vector(&self) -> Result<Vec<f64>> {
        if self.rows() != 1 && self.cols() != 1 {
            return Err(SysDsError::runtime(format!(
                "expected a vector, got {}x{}",
                self.rows(),
                self.cols()
            )));
        }
        Ok(self.to_vec())
    }

    /// Scalar extraction from a 1x1 matrix (DML `as.scalar`).
    pub fn as_scalar(&self) -> Result<f64> {
        if self.rows() == 1 && self.cols() == 1 {
            Ok(self.get(0, 0))
        } else {
            Err(SysDsError::runtime(format!(
                "as.scalar on {}x{} matrix",
                self.rows(),
                self.cols()
            )))
        }
    }

    /// Approximate equality for tests: same shape, all cells within `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        if self.shape() != other.shape() {
            return false;
        }
        for i in 0..self.rows() {
            for j in 0..self.cols() {
                let (a, b) = (self.get(i, j), other.get(i, j));
                if (a - b).abs() > tol && !(a.is_nan() && b.is_nan()) {
                    return false;
                }
            }
        }
        true
    }
}

impl std::fmt::Display for Matrix {
    /// Render like DML's `toString`: space-separated rows, capped at 20x20.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rmax = self.rows().min(20);
        let cmax = self.cols().min(20);
        for i in 0..rmax {
            for j in 0..cmax {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:.3}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        if rmax < self.rows() || cmax < self.cols() {
            writeln!(f, "... ({}x{} total)", self.rows(), self.cols())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_shape_check() {
        assert!(Matrix::from_vec(2, 3, vec![0.0; 5]).is_err());
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]).unwrap();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).is_err());
    }

    #[test]
    fn identity_values() {
        for n in [3usize, 20] {
            let i = Matrix::identity(n);
            for r in 0..n {
                for c in 0..n {
                    assert_eq!(i.get(r, c), if r == c { 1.0 } else { 0.0 });
                }
            }
        }
    }

    #[test]
    fn sparsity_and_nnz() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 2.0]).unwrap();
        assert_eq!(m.nnz(), 2);
        assert!((m.sparsity() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn compact_switches_representation() {
        // 10x10 with 5 nonzeros => sparsity 0.05 < 0.4, and >= 64 cells.
        let mut m = Matrix::zeros(10, 10);
        for k in 0..5 {
            m.set(k, k, 1.0);
        }
        let m = m.compact();
        assert!(m.is_sparse());
        // Dense-ish content converts back.
        let d = Matrix::filled(10, 10, 3.0).to_sparse();
        let back = Matrix::Sparse(d).compact();
        assert!(!back.is_sparse());
    }

    #[test]
    fn compact_estimated_matches_compact_decisions() {
        // Large dense matrix: sampling skips the scan, stays dense.
        let dense = Matrix::filled(200, 200, 1.0).compact_estimated();
        assert!(!dense.is_sparse());
        // Large mostly-zero matrix: converts to sparse like compact().
        let mut m = Matrix::zeros(200, 200);
        for k in 0..40 {
            m.set(k, k, 1.0);
        }
        assert!(m.compact_estimated().is_sparse());
        // Small matrices delegate to the exact path.
        let mut small = Matrix::zeros(10, 10);
        small.set(0, 0, 1.0);
        assert!(small.compact_estimated().is_sparse());
    }

    #[test]
    fn set_on_sparse_converts() {
        let mut m = Matrix::identity(20);
        assert!(m.is_sparse());
        m.set(0, 1, 5.0);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(0, 0), 1.0);
    }

    #[test]
    fn size_estimates_match_reality_dense() {
        let m = Matrix::filled(100, 10, 1.0);
        assert_eq!(m.in_memory_size(), Matrix::estimate_size(100, 10, 1.0));
    }

    #[test]
    fn as_scalar_and_vector() {
        let m = Matrix::filled(1, 1, 7.0);
        assert_eq!(m.as_scalar().unwrap(), 7.0);
        assert!(Matrix::zeros(2, 2).as_scalar().is_err());
        let v = Matrix::from_vec(3, 1, vec![1., 2., 3.]).unwrap();
        assert_eq!(v.as_vector().unwrap(), vec![1., 2., 3.]);
        assert!(Matrix::zeros(2, 2).as_vector().is_err());
    }

    #[test]
    fn approx_eq_tolerates() {
        let a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 1.0 + 1e-12);
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&Matrix::zeros(2, 2), 1e-9));
        assert!(!a.approx_eq(&Matrix::zeros(2, 3), 1e-9));
    }

    #[test]
    fn display_truncates() {
        let s = format!("{}", Matrix::zeros(30, 2));
        assert!(s.contains("(30x2 total)"));
    }
}
