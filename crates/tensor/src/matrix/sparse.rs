//! Sparse CSR (compressed sparse row) `f64` storage.

use super::dense::DenseMatrix;

/// A CSR sparse matrix: row `i`'s entries live at
/// `row_ptr[i]..row_ptr[i+1]` in `col_idx`/`values`, with `col_idx` strictly
/// increasing within each row.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// An empty (all-zero) sparse matrix.
    pub fn empty(rows: usize, cols: usize) -> SparseMatrix {
        assert!(
            cols <= u32::MAX as usize,
            "sparse matrices cap columns at u32::MAX"
        );
        SparseMatrix {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from raw CSR components (debug-asserted invariants).
    pub fn from_csr(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> SparseMatrix {
        debug_assert_eq!(row_ptr.len(), rows + 1);
        debug_assert_eq!(col_idx.len(), values.len());
        debug_assert_eq!(*row_ptr.last().unwrap_or(&0), values.len());
        SparseMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Convert from dense, dropping zeros.
    pub fn from_dense(d: &DenseMatrix) -> SparseMatrix {
        let mut b = SparseBuilder::new(d.rows(), d.cols());
        for i in 0..d.rows() {
            for (j, &v) in d.row(i).iter().enumerate() {
                if v != 0.0 {
                    b.push(i, j, v);
                }
            }
        }
        b.finish()
    }

    /// Build from coordinate triples; duplicates are summed, entries sorted.
    pub fn from_triples(
        rows: usize,
        cols: usize,
        mut triples: Vec<(usize, usize, f64)>,
    ) -> SparseMatrix {
        triples.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut b = SparseBuilder::new(rows, cols);
        let mut iter = triples.into_iter().peekable();
        while let Some((r, c, mut v)) = iter.next() {
            while iter.peek().is_some_and(|&(r2, c2, _)| r2 == r && c2 == c) {
                v += iter.next().unwrap().2;
            }
            if v != 0.0 {
                b.push(r, c, v);
            }
        }
        b.finish()
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored non-zero count.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Element read by binary search within the row.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        match self.col_idx[lo..hi].binary_search(&(j as u32)) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// The `(col_idx, values)` slices of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Number of stored entries in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Iterate stored entries as `(row, col, value)` in row-major order.
    pub fn iter_nonzeros(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter()
                .zip(vals)
                .map(move |(&c, &v)| (i, c as usize, v))
        })
    }

    /// Materialize a dense copy.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for (i, j, v) in self.iter_nonzeros() {
            d.set(i, j, v);
        }
        d
    }

    /// Raw CSR parts `(row_ptr, col_idx, values)` for serialization.
    pub fn csr_parts(&self) -> (&[usize], &[u32], &[f64]) {
        (&self.row_ptr, &self.col_idx, &self.values)
    }
}

/// Incremental row-major CSR builder. `push` calls must be in
/// non-decreasing row order with strictly increasing columns per row.
#[derive(Debug)]
pub struct SparseBuilder {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
    cur_row: usize,
}

impl SparseBuilder {
    /// Start building a `rows x cols` matrix.
    pub fn new(rows: usize, cols: usize) -> SparseBuilder {
        assert!(cols <= u32::MAX as usize);
        let mut row_ptr = Vec::with_capacity(rows + 1);
        row_ptr.push(0);
        SparseBuilder {
            rows,
            cols,
            row_ptr,
            col_idx: Vec::new(),
            values: Vec::new(),
            cur_row: 0,
        }
    }

    /// Reserve space for an expected number of non-zeros.
    pub fn reserve(&mut self, nnz: usize) {
        self.col_idx.reserve(nnz);
        self.values.reserve(nnz);
    }

    /// Append one entry; zeros are skipped.
    pub fn push(&mut self, row: usize, col: usize, v: f64) {
        debug_assert!(row < self.rows && col < self.cols);
        debug_assert!(row >= self.cur_row, "rows must be pushed in order");
        if v == 0.0 {
            return;
        }
        while self.cur_row < row {
            self.row_ptr.push(self.values.len());
            self.cur_row += 1;
        }
        debug_assert!(
            self.col_idx.len() == *self.row_ptr.last().unwrap()
                || *self.col_idx.last().unwrap() < col as u32,
            "columns must be strictly increasing within a row"
        );
        self.col_idx.push(col as u32);
        self.values.push(v);
    }

    /// Finish, closing any trailing empty rows.
    pub fn finish(mut self) -> SparseMatrix {
        while self.cur_row < self.rows {
            self.row_ptr.push(self.values.len());
            self.cur_row += 1;
        }
        SparseMatrix::from_csr(
            self.rows,
            self.cols,
            self.row_ptr,
            self.col_idx,
            self.values,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseMatrix {
        // [1 0 2]
        // [0 0 0]
        // [0 3 0]
        SparseMatrix::from_triples(3, 3, vec![(0, 0, 1.0), (0, 2, 2.0), (2, 1, 3.0)])
    }

    #[test]
    fn get_hits_and_misses() {
        let s = sample();
        assert_eq!(s.get(0, 0), 1.0);
        assert_eq!(s.get(0, 1), 0.0);
        assert_eq!(s.get(0, 2), 2.0);
        assert_eq!(s.get(1, 1), 0.0);
        assert_eq!(s.get(2, 1), 3.0);
        assert_eq!(s.nnz(), 3);
    }

    #[test]
    fn triples_merge_duplicates() {
        let s = SparseMatrix::from_triples(
            2,
            2,
            vec![(0, 0, 1.0), (0, 0, 2.0), (1, 1, -1.0), (1, 1, 1.0)],
        );
        assert_eq!(s.get(0, 0), 3.0);
        // cancelled duplicate dropped entirely
        assert_eq!(s.nnz(), 1);
    }

    #[test]
    fn dense_round_trip() {
        let s = sample();
        let d = s.to_dense();
        let s2 = SparseMatrix::from_dense(&d);
        assert_eq!(s, s2);
    }

    #[test]
    fn builder_skips_zeros_and_closes_rows() {
        let mut b = SparseBuilder::new(4, 2);
        b.push(0, 1, 5.0);
        b.push(2, 0, 0.0); // skipped
        b.push(3, 1, 7.0);
        let s = b.finish();
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.row_nnz(0), 1);
        assert_eq!(s.row_nnz(1), 0);
        assert_eq!(s.row_nnz(2), 0);
        assert_eq!(s.row_nnz(3), 1);
    }

    #[test]
    fn iter_nonzeros_order() {
        let s = sample();
        let cells: Vec<_> = s.iter_nonzeros().collect();
        assert_eq!(cells, vec![(0, 0, 1.0), (0, 2, 2.0), (2, 1, 3.0)]);
    }

    #[test]
    fn empty_matrix() {
        let s = SparseMatrix::empty(3, 3);
        assert_eq!(s.nnz(), 0);
        assert_eq!(s.get(2, 2), 0.0);
    }
}
