//! The TensorBlock operation library of `systemds-rs` (paper §2.4).
//!
//! Three layers live here:
//!
//! 1. [`matrix`] — the 2-D `f64` workhorse used by the runtime's linear
//!    algebra instructions: [`Matrix`] with dense (row-major) and sparse
//!    (CSR) representations chosen automatically by sparsity.
//! 2. [`kernels`] — the operation library: matrix multiplication (portable
//!    naive and BLAS-like blocked multi-threaded kernels), the fused
//!    transpose-self product `tsmm` (`t(X) %*% X`), element-wise ops with
//!    broadcasting, aggregations, reorg ops, solvers, indexing, and
//!    generators.
//! 3. [`tensor`] — the general data model: [`BasicTensorBlock`]
//!    (homogeneous, n-dimensional, typed) and [`DataTensorBlock`]
//!    (heterogeneous, schema on the second dimension).

pub mod compress;
pub mod kernels;
pub mod matrix;
pub mod tensor;

pub use compress::CompressedMatrix;
pub use matrix::{DenseMatrix, Matrix, SparseMatrix, SPARSE_THRESHOLD};
pub use tensor::{BasicTensorBlock, DataTensorBlock, TensorStorage};
