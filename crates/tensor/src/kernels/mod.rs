//! The operation library over [`crate::Matrix`].
//!
//! Mirrors SystemDS's TensorBlock operation library (paper §2.4): every
//! kernel comes in a single-threaded portable form and, where it matters,
//! a multi-threaded and/or "native BLAS"-style optimized form. The runtime
//! selects kernels through [`sysds_common::EngineConfig`] (`num_threads`,
//! `native_blas`), which models the SysDS vs SysDS-B distinction in the
//! paper's §4.2.

pub mod aggregate;
pub mod elementwise;
pub mod fused;
pub mod gen;
pub mod indexing;
pub mod matmult;
pub mod reorg;
pub mod solve;
pub mod tsmm;

pub use aggregate::{AggFn, Direction};
pub use elementwise::{BinaryOp, UnaryOp};

use crate::matrix::DenseMatrix;

/// Cell count below which row-partitioned kernels stay sequential; thread
/// spawns cost more than the work they would split.
pub(crate) const PAR_MIN_CELLS: usize = 1 << 15;

/// Row partitions for a parallel kernel over an `rows x cols` operand:
/// collapses to a single partition when the input is too small to amortize
/// thread spawns.
pub(crate) fn par_row_partitions(rows: usize, cols: usize, threads: usize) -> Vec<(usize, usize)> {
    let t = if rows.saturating_mul(cols) < PAR_MIN_CELLS {
        1
    } else {
        threads
    };
    DenseMatrix::row_partitions(rows, t)
}

/// Run `f` once per `(lo, hi)` row partition — on scoped threads when there
/// is more than one partition — and return the results in partition order.
pub(crate) fn run_partitions<T, F>(parts: &[(usize, usize)], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    if parts.len() <= 1 {
        return parts.iter().map(|&(lo, hi)| f(lo, hi)).collect();
    }
    let mut out: Vec<Option<T>> = Vec::new();
    out.resize_with(parts.len(), || None);
    crossbeam::thread::scope(|s| {
        for (slot, &(lo, hi)) in out.iter_mut().zip(parts) {
            let f = &f;
            s.spawn(move |_| *slot = Some(f(lo, hi)));
        }
    })
    .expect("parallel kernel worker panicked");
    out.into_iter()
        .map(|r| r.expect("worker fills its slot"))
        .collect()
}
