//! The operation library over [`crate::Matrix`].
//!
//! Mirrors SystemDS's TensorBlock operation library (paper §2.4): every
//! kernel comes in a single-threaded portable form and, where it matters,
//! a multi-threaded and/or "native BLAS"-style optimized form. The runtime
//! selects kernels through [`sysds_common::EngineConfig`] (`num_threads`,
//! `native_blas`), which models the SysDS vs SysDS-B distinction in the
//! paper's §4.2.

pub mod aggregate;
pub mod elementwise;
pub mod gen;
pub mod indexing;
pub mod matmult;
pub mod reorg;
pub mod solve;
pub mod tsmm;

pub use aggregate::{AggFn, Direction};
pub use elementwise::{BinaryOp, UnaryOp};
