//! Reorganization operations: transpose, diag, reshape, rev, order.
//!
//! Dense transpose is cache-blocked (paper: "blocks ... allow local
//! transformations for operations like transpose"); sparse transpose uses a
//! counting pass to build the transposed CSR directly.

use crate::matrix::{DenseMatrix, Matrix, SparseMatrix};
use sysds_common::{Result, SysDsError};

/// Tile edge for the cache-blocked dense transpose.
const TILE: usize = 32;

/// `t(X)`.
pub fn transpose(m: &Matrix, threads: usize) -> Matrix {
    match m {
        Matrix::Dense(d) => Matrix::Dense(transpose_dense(d, threads)),
        Matrix::Sparse(s) => Matrix::Sparse(transpose_sparse(s)),
    }
}

#[allow(clippy::needless_range_loop)] // tiled gather indexes source by (i, j)
fn transpose_dense(d: &DenseMatrix, threads: usize) -> DenseMatrix {
    let (m, n) = (d.rows(), d.cols());
    let mut out = DenseMatrix::zeros(n, m);
    // Parallelize across output rows (input columns) in tile stripes.
    let parts = DenseMatrix::row_partitions(n, threads);
    let mut rest = out.values_mut();
    crossbeam::thread::scope(|s| {
        for &(lo, hi) in &parts {
            let (chunk, tail) = rest.split_at_mut((hi - lo) * m);
            rest = tail;
            s.spawn(move |_| {
                for jb in (lo..hi).step_by(TILE) {
                    let jmax = (jb + TILE).min(hi);
                    for ib in (0..m).step_by(TILE) {
                        let imax = (ib + TILE).min(m);
                        for j in jb..jmax {
                            let dst = &mut chunk[(j - lo) * m..(j - lo) * m + m];
                            for i in ib..imax {
                                dst[i] = d.get(i, j);
                            }
                        }
                    }
                }
            });
        }
    })
    .expect("transpose worker panicked");
    out
}

fn transpose_sparse(s: &SparseMatrix) -> SparseMatrix {
    let (m, n) = (s.rows(), s.cols());
    // Counting pass: nnz per output row (= input column).
    let mut counts = vec![0usize; n + 1];
    for (_, j, _) in s.iter_nonzeros() {
        counts[j + 1] += 1;
    }
    for k in 1..=n {
        counts[k] += counts[k - 1];
    }
    let row_ptr = counts.clone();
    let nnz = s.nnz();
    let mut col_idx = vec![0u32; nnz];
    let mut values = vec![0.0f64; nnz];
    let mut next = row_ptr.clone();
    for (i, j, v) in s.iter_nonzeros() {
        let pos = next[j];
        col_idx[pos] = i as u32;
        values[pos] = v;
        next[j] += 1;
    }
    SparseMatrix::from_csr(n, m, row_ptr, col_idx, values)
}

/// `diag(X)`: vector → diagonal matrix, or square matrix → diagonal vector.
pub fn diag(m: &Matrix) -> Result<Matrix> {
    if m.cols() == 1 {
        let n = m.rows();
        let triples = (0..n).map(|i| (i, i, m.get(i, 0))).collect();
        Ok(Matrix::Sparse(SparseMatrix::from_triples(n, n, triples)).compact())
    } else if m.rows() == m.cols() {
        let n = m.rows();
        let data = (0..n).map(|i| m.get(i, i)).collect();
        Matrix::from_vec(n, 1, data)
    } else {
        Err(SysDsError::runtime(format!(
            "diag on non-square {}x{} matrix",
            m.rows(),
            m.cols()
        )))
    }
}

/// Row-major `matrix(X, rows, cols)` reshape.
pub fn reshape(m: &Matrix, rows: usize, cols: usize) -> Result<Matrix> {
    if rows * cols != m.rows() * m.cols() {
        return Err(SysDsError::runtime(format!(
            "reshape {}x{} -> {rows}x{cols} changes cell count",
            m.rows(),
            m.cols()
        )));
    }
    match m {
        Matrix::Dense(d) => Ok(Matrix::Dense(DenseMatrix::from_vec(
            rows,
            cols,
            d.values().to_vec(),
        ))),
        Matrix::Sparse(s) => {
            let old_cols = s.cols();
            let triples = s
                .iter_nonzeros()
                .map(|(i, j, v)| {
                    let lin = i * old_cols + j;
                    (lin / cols, lin % cols, v)
                })
                .collect();
            Ok(Matrix::Sparse(SparseMatrix::from_triples(
                rows, cols, triples,
            )))
        }
    }
}

/// `rev(X)`: reverse the row order.
pub fn rev(m: &Matrix) -> Matrix {
    let (rows, cols) = m.shape();
    match m {
        Matrix::Dense(d) => {
            let mut out = DenseMatrix::zeros(rows, cols);
            for i in 0..rows {
                out.row_mut(i).copy_from_slice(d.row(rows - 1 - i));
            }
            Matrix::Dense(out)
        }
        Matrix::Sparse(s) => {
            let triples = s
                .iter_nonzeros()
                .map(|(i, j, v)| (rows - 1 - i, j, v))
                .collect();
            Matrix::Sparse(SparseMatrix::from_triples(rows, cols, triples))
        }
    }
}

/// `order(X, by, decreasing, index.return)`: sort rows of `X` by column
/// `by` (0-based here; the language layer translates from 1-based DML).
/// With `index_return`, yields the permutation as 1-based row indices.
pub fn order(m: &Matrix, by: usize, decreasing: bool, index_return: bool) -> Result<Matrix> {
    if by >= m.cols() {
        return Err(SysDsError::IndexOutOfBounds {
            msg: format!("order by column {} of {} columns", by + 1, m.cols()),
        });
    }
    let mut perm: Vec<usize> = (0..m.rows()).collect();
    // Stable sort keeps ties in original order, like R.
    perm.sort_by(|&a, &b| {
        let (va, vb) = (m.get(a, by), m.get(b, by));
        let ord = va.partial_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal);
        if decreasing {
            ord.reverse()
        } else {
            ord
        }
    });
    if index_return {
        let data = perm.iter().map(|&i| (i + 1) as f64).collect();
        return Matrix::from_vec(m.rows(), 1, data);
    }
    let (rows, cols) = m.shape();
    let mut out = DenseMatrix::zeros(rows, cols);
    for (dst, &src) in perm.iter().enumerate() {
        for j in 0..cols {
            out.set(dst, j, m.get(src, j));
        }
    }
    Ok(Matrix::Dense(out).compact())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::gen;

    #[test]
    fn transpose_dense_round_trip() {
        let m = gen::rand_uniform(37, 21, -1.0, 1.0, 1.0, 41);
        let t = transpose(&m, 3);
        assert_eq!(t.shape(), (21, 37));
        assert!(transpose(&t, 2).approx_eq(&m, 0.0));
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(t.get(j, i), m.get(i, j));
            }
        }
    }

    #[test]
    fn transpose_sparse_round_trip() {
        let m = gen::rand_uniform(40, 25, -1.0, 1.0, 0.1, 42).compact();
        assert!(m.is_sparse());
        let t = transpose(&m, 1);
        assert!(t.is_sparse());
        assert!(transpose(&t, 1).approx_eq(&m, 0.0));
        assert_eq!(t.nnz(), m.nnz());
    }

    #[test]
    fn diag_vector_to_matrix_and_back() {
        let v = Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]).unwrap();
        let d = diag(&v).unwrap();
        assert_eq!(d.shape(), (3, 3));
        assert_eq!(d.get(1, 1), 2.0);
        assert_eq!(d.get(0, 1), 0.0);
        let back = diag(&d).unwrap();
        assert!(back.approx_eq(&v, 0.0));
        assert!(diag(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn reshape_row_major() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let r = reshape(&m, 3, 2).unwrap();
        assert!(r.approx_eq(
            &Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap(),
            0.0
        ));
        assert!(reshape(&m, 4, 2).is_err());
    }

    #[test]
    fn reshape_sparse_preserves_values() {
        let m = gen::rand_uniform(10, 6, -1.0, 1.0, 0.15, 43).compact();
        let r = reshape(&m, 6, 10).unwrap();
        let dense = reshape(&Matrix::Dense(m.to_dense()), 6, 10).unwrap();
        assert!(r.approx_eq(&dense, 0.0));
    }

    #[test]
    fn rev_reverses_rows() {
        let m = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]).unwrap();
        assert!(rev(&m).approx_eq(&Matrix::from_rows(&[&[3.0], &[2.0], &[1.0]]).unwrap(), 0.0));
    }

    #[test]
    fn order_sorts_rows_stably() {
        let m = Matrix::from_rows(&[&[2.0, 10.0], &[1.0, 20.0], &[2.0, 30.0]]).unwrap();
        let asc = order(&m, 0, false, false).unwrap();
        assert!(asc.approx_eq(
            &Matrix::from_rows(&[&[1.0, 20.0], &[2.0, 10.0], &[2.0, 30.0]]).unwrap(),
            0.0
        ));
        let idx = order(&m, 0, true, true).unwrap();
        assert_eq!(idx.to_vec(), vec![1.0, 3.0, 2.0]);
        assert!(order(&m, 5, false, false).is_err());
    }

    #[test]
    fn transpose_single_threaded_equals_parallel() {
        let m = gen::rand_uniform(65, 130, 0.0, 1.0, 1.0, 44);
        assert!(transpose(&m, 1).approx_eq(&transpose(&m, 8), 0.0));
    }
}
