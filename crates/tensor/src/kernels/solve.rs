//! Direct linear system solvers: Cholesky, LU with partial pivoting,
//! triangular solves, and matrix inversion.
//!
//! `lmDS` (paper Figure 2) solves the normal equations
//! `(t(X)%*%X + diag(lambda)) beta = t(X)%*%y`; the system matrix is
//! symmetric positive definite, so [`solve`] tries Cholesky first and falls
//! back to pivoted LU for general systems.

use crate::matrix::{DenseMatrix, Matrix};
use sysds_common::{Result, SysDsError};

/// Cholesky factorization `A = L L'` of a symmetric positive-definite
/// matrix; returns the lower-triangular factor.
pub fn cholesky(a: &Matrix) -> Result<Matrix> {
    let n = square_dim(a, "cholesky")?;
    let mut l = vec![0.0f64; n * n];
    let ad = a.to_dense();
    for i in 0..n {
        for j in 0..=i {
            let mut s = ad.get(i, j);
            for k in 0..j {
                s -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if s <= 0.0 {
                    return Err(SysDsError::Numerical(format!(
                        "cholesky: matrix not positive definite (pivot {s:.3e} at {i})"
                    )));
                }
                l[i * n + j] = s.sqrt();
            } else {
                l[i * n + j] = s / l[j * n + j];
            }
        }
    }
    Ok(Matrix::Dense(DenseMatrix::from_vec(n, n, l)))
}

/// LU factorization with partial pivoting. Returns `(lu, perm)` where `lu`
/// packs `L` (unit diagonal, below) and `U` (on/above the diagonal), and
/// `perm[i]` is the source row of output row `i`.
pub fn lu(a: &Matrix) -> Result<(DenseMatrix, Vec<usize>)> {
    let n = square_dim(a, "lu")?;
    let mut m = a.to_dense();
    let mut perm: Vec<usize> = (0..n).collect();
    for k in 0..n {
        // Pivot: largest |value| in column k at/below the diagonal.
        let mut p = k;
        let mut best = m.get(k, k).abs();
        for i in (k + 1)..n {
            let v = m.get(i, k).abs();
            if v > best {
                best = v;
                p = i;
            }
        }
        if best == 0.0 {
            return Err(SysDsError::Numerical(format!(
                "lu: singular matrix (column {k})"
            )));
        }
        if p != k {
            perm.swap(p, k);
            for j in 0..n {
                let (a, b) = (m.get(k, j), m.get(p, j));
                m.set(k, j, b);
                m.set(p, j, a);
            }
        }
        let pivot = m.get(k, k);
        for i in (k + 1)..n {
            let factor = m.get(i, k) / pivot;
            m.set(i, k, factor);
            if factor != 0.0 {
                for j in (k + 1)..n {
                    let v = m.get(i, j) - factor * m.get(k, j);
                    m.set(i, j, v);
                }
            }
        }
    }
    Ok((m, perm))
}

#[allow(clippy::needless_range_loop)] // permutation application is clearer indexed
/// Solve `A X = B` for possibly multiple right-hand sides. Tries Cholesky
/// when `A` is symmetric, falling back to pivoted LU.
pub fn solve(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    let n = square_dim(a, "solve")?;
    if b.rows() != n {
        return Err(SysDsError::DimensionMismatch {
            op: "solve",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    if is_symmetric(a) {
        if let Ok(l) = cholesky(a) {
            return solve_cholesky(&l, b);
        }
    }
    let (lum, perm) = lu(a)?;
    solve_lu(&lum, &perm, b)
}

fn solve_cholesky(l: &Matrix, b: &Matrix) -> Result<Matrix> {
    let n = l.rows();
    let k = b.cols();
    let ld = l.to_dense();
    let mut x = b.to_dense();
    // Forward substitution L y = b.
    for col in 0..k {
        for i in 0..n {
            let mut s = x.get(i, col);
            for j in 0..i {
                s -= ld.get(i, j) * x.get(j, col);
            }
            x.set(i, col, s / ld.get(i, i));
        }
        // Backward substitution L' x = y.
        for i in (0..n).rev() {
            let mut s = x.get(i, col);
            for j in (i + 1)..n {
                s -= ld.get(j, i) * x.get(j, col);
            }
            x.set(i, col, s / ld.get(i, i));
        }
    }
    Ok(Matrix::Dense(x))
}

#[allow(clippy::needless_range_loop)] // i indexes perm and the triangular sweep
fn solve_lu(lum: &DenseMatrix, perm: &[usize], b: &Matrix) -> Result<Matrix> {
    let n = lum.rows();
    let k = b.cols();
    let mut x = DenseMatrix::zeros(n, k);
    for col in 0..k {
        // Apply permutation, then forward substitution (unit L).
        for i in 0..n {
            let mut s = b.get(perm[i], col);
            for j in 0..i {
                s -= lum.get(i, j) * x.get(j, col);
            }
            x.set(i, col, s);
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let mut s = x.get(i, col);
            for j in (i + 1)..n {
                s -= lum.get(i, j) * x.get(j, col);
            }
            x.set(i, col, s / lum.get(i, i));
        }
    }
    Ok(Matrix::Dense(x))
}

/// Matrix inverse via LU solve against the identity.
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    let n = square_dim(a, "inv")?;
    solve(a, &Matrix::Dense(Matrix::identity(n).to_dense()))
}

/// Determinant via LU (product of U's diagonal, sign from the permutation).
pub fn det(a: &Matrix) -> Result<f64> {
    let n = square_dim(a, "det")?;
    let (lum, perm) = match lu(a) {
        Ok(x) => x,
        Err(SysDsError::Numerical(_)) => return Ok(0.0),
        Err(e) => return Err(e),
    };
    let mut d = 1.0;
    for i in 0..n {
        d *= lum.get(i, i);
    }
    // Permutation sign: count cycles.
    let mut seen = vec![false; n];
    let mut swaps = 0usize;
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut len = 0usize;
        let mut i = start;
        while !seen[i] {
            seen[i] = true;
            i = perm[i];
            len += 1;
        }
        swaps += len - 1;
    }
    Ok(if swaps.is_multiple_of(2) { d } else { -d })
}

fn square_dim(a: &Matrix, op: &'static str) -> Result<usize> {
    if a.rows() != a.cols() {
        Err(SysDsError::runtime(format!(
            "{op} requires a square matrix, got {}x{}",
            a.rows(),
            a.cols()
        )))
    } else {
        Ok(a.rows())
    }
}

fn is_symmetric(a: &Matrix) -> bool {
    let n = a.rows();
    for i in 0..n {
        for j in (i + 1)..n {
            if (a.get(i, j) - a.get(j, i)).abs() > 1e-12 * (1.0 + a.get(i, j).abs()) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{gen, matmult, reorg, tsmm};

    fn spd(n: usize, seed: u64) -> Matrix {
        // X'X + I is symmetric positive definite.
        let x = gen::rand_uniform(n * 3, n, -1.0, 1.0, 1.0, seed);
        let g = tsmm::tsmm(&x, 1, false);
        crate::kernels::elementwise::binary_mm(
            crate::kernels::elementwise::BinaryOp::Add,
            &g,
            &Matrix::Dense(Matrix::identity(n).to_dense()),
        )
        .unwrap()
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd(8, 51);
        let l = cholesky(&a).unwrap();
        let lt = reorg::transpose(&l, 1);
        let back = matmult::matmul(&l, &lt, 1, false).unwrap();
        assert!(back.approx_eq(&a, 1e-8));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(cholesky(&a).is_err());
    }

    #[test]
    fn solve_spd_system() {
        let a = spd(10, 52);
        let x_true = gen::rand_uniform(10, 1, -1.0, 1.0, 1.0, 53);
        let b = matmult::matmul(&a, &x_true, 1, false).unwrap();
        let x = solve(&a, &b).unwrap();
        assert!(x.approx_eq(&x_true, 1e-7));
    }

    #[test]
    fn solve_general_system_with_pivoting() {
        // Requires pivoting: zero on the first diagonal entry.
        let a = Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, 0.0, 1.0], &[2.0, 1.0, 0.0]]).unwrap();
        let x_true = Matrix::from_vec(3, 1, vec![1.0, -2.0, 3.0]).unwrap();
        let b = matmult::matmul(&a, &x_true, 1, false).unwrap();
        let x = solve(&a, &b).unwrap();
        assert!(x.approx_eq(&x_true, 1e-10));
    }

    #[test]
    fn solve_multiple_rhs() {
        let a = spd(6, 54);
        let xs = gen::rand_uniform(6, 3, -1.0, 1.0, 1.0, 55);
        let b = matmult::matmul(&a, &xs, 1, false).unwrap();
        let x = solve(&a, &b).unwrap();
        assert!(x.approx_eq(&xs, 1e-7));
    }

    #[test]
    fn singular_matrix_reported() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        let b = Matrix::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        assert!(matches!(solve(&a, &b), Err(SysDsError::Numerical(_))));
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let a = spd(7, 56);
        let inv = inverse(&a).unwrap();
        let prod = matmult::matmul(&a, &inv, 1, false).unwrap();
        assert!(prod.approx_eq(&Matrix::Dense(Matrix::identity(7).to_dense()), 1e-7));
    }

    #[test]
    fn determinant_values() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 2.0]]).unwrap();
        assert!((det(&a).unwrap() - 6.0).abs() < 1e-12);
        // Pivoted case with a sign flip.
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!((det(&b).unwrap() + 1.0).abs() < 1e-12);
        // Singular.
        let c = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert_eq!(det(&c).unwrap(), 0.0);
    }

    #[test]
    fn shape_checks() {
        let rect = Matrix::zeros(2, 3);
        assert!(cholesky(&rect).is_err());
        assert!(solve(&rect, &Matrix::zeros(2, 1)).is_err());
        let a = spd(3, 57);
        assert!(solve(&a, &Matrix::zeros(4, 1)).is_err());
    }
}

/// Symmetric eigendecomposition via the cyclic Jacobi method. Returns
/// `(values, vectors)` with eigenvalues ascending and eigenvectors in the
/// corresponding columns (`A = V diag(w) t(V)`).
pub fn eigen_symmetric(a: &Matrix) -> Result<(Matrix, Matrix)> {
    let n = square_dim(a, "eigen")?;
    if !is_symmetric(a) {
        return Err(SysDsError::Numerical(
            "eigen requires a symmetric matrix".into(),
        ));
    }
    let mut m = a.to_dense();
    let mut v = Matrix::identity(n).to_dense();
    let max_sweeps = 64;
    for _sweep in 0..max_sweeps {
        // Off-diagonal Frobenius norm.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += 2.0 * m.get(i, j) * m.get(i, j);
            }
        }
        if off.sqrt() < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Stable rotation angle.
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply rotation to rows/columns p and q.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    // Sort eigenpairs ascending by eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m.get(i, i).partial_cmp(&m.get(j, j)).unwrap());
    let mut values = DenseMatrix::zeros(n, 1);
    let mut vectors = DenseMatrix::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        values.set(dst, 0, m.get(src, src));
        for k in 0..n {
            vectors.set(k, dst, v.get(k, src));
        }
    }
    Ok((Matrix::Dense(values), Matrix::Dense(vectors)))
}

#[cfg(test)]
mod eigen_tests {
    use super::*;
    use crate::kernels::BinaryOp;
    use crate::kernels::{elementwise, gen, matmult, reorg, tsmm};

    #[test]
    fn eigen_reconstructs_symmetric_matrix() {
        let x = gen::rand_uniform(20, 6, -1.0, 1.0, 1.0, 71);
        let a = tsmm::tsmm(&x, 1, false); // symmetric PSD
        let (w, v) = eigen_symmetric(&a).unwrap();
        // A ≈ V diag(w) V'
        let d = reorg::diag(&w).unwrap();
        let vd = matmult::matmul(&v, &d, 1, false).unwrap();
        let back = matmult::matmul(&vd, &reorg::transpose(&v, 1), 1, false).unwrap();
        assert!(back.approx_eq(&a, 1e-8));
    }

    #[test]
    fn eigenvalues_sorted_and_orthonormal_vectors() {
        let x = gen::rand_uniform(30, 5, -1.0, 1.0, 1.0, 72);
        let a = tsmm::tsmm(&x, 1, false);
        let (w, v) = eigen_symmetric(&a).unwrap();
        for i in 1..5 {
            assert!(w.get(i - 1, 0) <= w.get(i, 0) + 1e-12, "ascending");
        }
        let vtv = matmult::matmul(&reorg::transpose(&v, 1), &v, 1, false).unwrap();
        assert!(vtv.approx_eq(&Matrix::Dense(Matrix::identity(5).to_dense()), 1e-8));
    }

    #[test]
    fn eigen_known_values() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let (w, _) = eigen_symmetric(&a).unwrap();
        assert!((w.get(0, 0) - 1.0).abs() < 1e-10);
        assert!((w.get(1, 0) - 3.0).abs() < 1e-10);
    }

    #[test]
    fn eigen_rejects_nonsymmetric_and_rectangular() {
        assert!(eigen_symmetric(&Matrix::zeros(2, 3)).is_err());
        let ns = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]).unwrap();
        assert!(eigen_symmetric(&ns).is_err());
    }

    #[test]
    fn eigen_agrees_with_trace_and_det() {
        let x = gen::rand_uniform(12, 4, -1.0, 1.0, 1.0, 73);
        let g = tsmm::tsmm(&x, 1, false);
        let a = elementwise::binary_mm(
            BinaryOp::Add,
            &g,
            &Matrix::Dense(Matrix::identity(4).to_dense()),
        )
        .unwrap();
        let (w, _) = eigen_symmetric(&a).unwrap();
        let sum_w: f64 = w.to_vec().iter().sum();
        let prod_w: f64 = w.to_vec().iter().product();
        assert!((sum_w - crate::kernels::aggregate::trace(&a).unwrap()).abs() < 1e-8);
        assert!((prod_w - det(&a).unwrap()).abs() < 1e-6 * prod_w.abs());
    }
}
