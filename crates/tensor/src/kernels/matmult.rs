//! Matrix multiplication kernels.
//!
//! The paper's §4.2 rests on three kernel-level facts that we reproduce:
//!
//! 1. A *portable* multi-threaded dense kernel (SystemDS's Java code) is
//!    slower than a *native-BLAS-style* kernel (SysDS-B / Julia) — here the
//!    portable kernel is a straightforward i-k-j loop, while the optimized
//!    kernel adds cache blocking and 4-way register tiling.
//! 2. Sparse-dense multiplication iterates CSR rows directly, so a **fused**
//!    `t(X) %*% y` (see [`super::tsmm`]) avoids materializing the transpose
//!    — TensorFlow's lack of that fused call is exactly what Figure 5(b)
//!    shows.
//! 3. All kernels are row-partitioned across threads.

use crate::matrix::{DenseMatrix, Matrix, SparseMatrix};
use sysds_common::{Result, SysDsError};
use DenseMatrix as DM;

/// Cache-block edge for the optimized dense kernel (fits L1 comfortably).
const BLOCK: usize = 64;

/// `A %*% B` with kernel selection by representation, `threads`, and the
/// `blas` flag (optimized dense path).
pub fn matmul(a: &Matrix, b: &Matrix, threads: usize, blas: bool) -> Result<Matrix> {
    if a.cols() != b.rows() {
        return Err(SysDsError::DimensionMismatch {
            op: "%*%",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let out = match (a, b) {
        (Matrix::Dense(da), Matrix::Dense(db)) => Matrix::Dense(dense_dense(da, db, threads, blas)),
        (Matrix::Sparse(sa), Matrix::Dense(db)) => Matrix::Dense(sparse_dense(sa, db, threads)),
        (Matrix::Dense(da), Matrix::Sparse(sb)) => Matrix::Dense(dense_sparse(da, sb, threads)),
        (Matrix::Sparse(sa), Matrix::Sparse(sb)) => sparse_sparse(sa, sb),
    };
    // Sampled sparsity probe: dense products are almost always dense, so
    // skip the full O(mn) non-zero scan unless a sample suggests otherwise.
    Ok(out.compact_estimated())
}

/// Dense `A %*% B`.
fn dense_dense(a: &DM, b: &DM, threads: usize, blas: bool) -> DenseMatrix {
    let (m, n) = (a.rows(), b.cols());
    let mut c = DenseMatrix::zeros(m, n);
    let parts = DM::row_partitions(m, threads);
    if parts.len() <= 1 {
        let rows = 0..m;
        if blas {
            dense_block_rows(a, b, c.values_mut(), rows);
        } else {
            dense_naive_rows(a, b, c.values_mut(), rows);
        }
        return c;
    }
    // Split the output buffer by row ranges so threads write disjoint slices.
    let mut out = c.values_mut();
    crossbeam::thread::scope(|s| {
        for &(lo, hi) in &parts {
            let (chunk, rest) = out.split_at_mut((hi - lo) * n);
            out = rest;
            s.spawn(move |_| {
                // Each chunk is rows lo..hi of C, written in place.
                if blas {
                    dense_block_rows_offset(a, b, chunk, lo, hi);
                } else {
                    dense_naive_rows_offset(a, b, chunk, lo, hi);
                }
            });
        }
    })
    .expect("matmul worker panicked");
    c
}

/// Portable kernel: i-k-j loop over rows `rows` of A writing into `out`
/// (the full output buffer).
fn dense_naive_rows(a: &DM, b: &DM, out: &mut [f64], rows: std::ops::Range<usize>) {
    dense_naive_rows_offset(
        a,
        b,
        &mut out[rows.start * b.cols()..rows.end * b.cols()],
        rows.start,
        rows.end,
    )
}

/// Portable kernel writing into a buffer that starts at output row `lo`.
fn dense_naive_rows_offset(a: &DM, b: &DM, out: &mut [f64], lo: usize, hi: usize) {
    let n = b.cols();
    let k_dim = a.cols();
    for i in lo..hi {
        let arow = a.row(i);
        let crow = &mut out[(i - lo) * n..(i - lo + 1) * n];
        for (k, &aik) in arow.iter().enumerate().take(k_dim) {
            if aik == 0.0 {
                continue;
            }
            let brow = b.row(k);
            for j in 0..n {
                crow[j] += aik * brow[j];
            }
        }
    }
}

/// Optimized kernel: cache-blocked over (k, j) with 4-row register tiling.
fn dense_block_rows(a: &DM, b: &DM, out: &mut [f64], rows: std::ops::Range<usize>) {
    dense_block_rows_offset(
        a,
        b,
        &mut out[rows.start * b.cols()..rows.end * b.cols()],
        rows.start,
        rows.end,
    )
}

#[allow(clippy::needless_range_loop)] // k indexes two row slices in lockstep
fn dense_block_rows_offset(a: &DM, b: &DM, out: &mut [f64], lo: usize, hi: usize) {
    let n = b.cols();
    let k_dim = a.cols();
    for kb in (0..k_dim).step_by(BLOCK) {
        let kmax = (kb + BLOCK).min(k_dim);
        for jb in (0..n).step_by(BLOCK) {
            let jmax = (jb + BLOCK).min(n);
            let mut i = lo;
            // 4-row register tile.
            while i + 4 <= hi {
                let (a0, a1, a2, a3) = (a.row(i), a.row(i + 1), a.row(i + 2), a.row(i + 3));
                for k in kb..kmax {
                    let (v0, v1, v2, v3) = (a0[k], a1[k], a2[k], a3[k]);
                    if v0 == 0.0 && v1 == 0.0 && v2 == 0.0 && v3 == 0.0 {
                        continue;
                    }
                    let brow = &b.row(k)[jb..jmax];
                    let base = (i - lo) * n;
                    for (dj, &bv) in brow.iter().enumerate() {
                        let j = jb + dj;
                        out[base + j] += v0 * bv;
                        out[base + n + j] += v1 * bv;
                        out[base + 2 * n + j] += v2 * bv;
                        out[base + 3 * n + j] += v3 * bv;
                    }
                }
                i += 4;
            }
            while i < hi {
                let arow = a.row(i);
                let base = (i - lo) * n;
                for k in kb..kmax {
                    let aik = arow[k];
                    if aik == 0.0 {
                        continue;
                    }
                    let brow = &b.row(k)[jb..jmax];
                    for (dj, &bv) in brow.iter().enumerate() {
                        out[base + jb + dj] += aik * bv;
                    }
                }
                i += 1;
            }
        }
    }
}

/// Sparse `A` times dense `B`: iterate stored entries of each CSR row.
fn sparse_dense(a: &SparseMatrix, b: &DM, threads: usize) -> DenseMatrix {
    let (m, n) = (a.rows(), b.cols());
    let mut c = DenseMatrix::zeros(m, n);
    let parts = DM::row_partitions(m, threads);
    let mut out = c.values_mut();
    crossbeam::thread::scope(|s| {
        for &(lo, hi) in &parts {
            let (chunk, rest) = out.split_at_mut((hi - lo) * n);
            out = rest;
            s.spawn(move |_| {
                for i in lo..hi {
                    let (cols, vals) = a.row(i);
                    let crow = &mut chunk[(i - lo) * n..(i - lo + 1) * n];
                    for (&k, &aik) in cols.iter().zip(vals) {
                        let brow = b.row(k as usize);
                        for j in 0..n {
                            crow[j] += aik * brow[j];
                        }
                    }
                }
            });
        }
    })
    .expect("sparse_dense worker panicked");
    c
}

/// Dense `A` times sparse `B`: scatter each `B[k, :]` row into the output.
fn dense_sparse(a: &DM, b: &SparseMatrix, threads: usize) -> DenseMatrix {
    let (m, n) = (a.rows(), b.cols());
    let mut c = DenseMatrix::zeros(m, n);
    let parts = DM::row_partitions(m, threads);
    let mut out = c.values_mut();
    crossbeam::thread::scope(|s| {
        for &(lo, hi) in &parts {
            let (chunk, rest) = out.split_at_mut((hi - lo) * n);
            out = rest;
            s.spawn(move |_| {
                for i in lo..hi {
                    let arow = a.row(i);
                    let crow = &mut chunk[(i - lo) * n..(i - lo + 1) * n];
                    for (k, &aik) in arow.iter().enumerate() {
                        if aik == 0.0 {
                            continue;
                        }
                        let (cols, vals) = b.row(k);
                        for (&j, &bkj) in cols.iter().zip(vals) {
                            crow[j as usize] += aik * bkj;
                        }
                    }
                }
            });
        }
    })
    .expect("dense_sparse worker panicked");
    c
}

/// Sparse-sparse product via per-row sparse accumulation (Gustavson).
fn sparse_sparse(a: &SparseMatrix, b: &SparseMatrix) -> Matrix {
    let (m, n) = (a.rows(), b.cols());
    let mut triples = Vec::new();
    let mut acc = vec![0.0f64; n];
    let mut touched: Vec<usize> = Vec::new();
    for i in 0..m {
        let (acols, avals) = a.row(i);
        for (&k, &aik) in acols.iter().zip(avals) {
            let (bcols, bvals) = b.row(k as usize);
            for (&j, &bkj) in bcols.iter().zip(bvals) {
                let j = j as usize;
                if acc[j] == 0.0 {
                    touched.push(j);
                }
                acc[j] += aik * bkj;
            }
        }
        touched.sort_unstable();
        for &j in &touched {
            if acc[j] != 0.0 {
                triples.push((i, j, acc[j]));
            }
            acc[j] = 0.0;
        }
        touched.clear();
    }
    Matrix::Sparse(SparseMatrix::from_triples(m, n, triples))
}

/// Matrix-vector product `A %*% v` returning an `m x 1` matrix; `v` must be
/// `n x 1`.
pub fn mat_vec(a: &Matrix, v: &Matrix, threads: usize) -> Result<Matrix> {
    if v.cols() != 1 || a.cols() != v.rows() {
        return Err(SysDsError::DimensionMismatch {
            op: "%*% (mat-vec)",
            lhs: a.shape(),
            rhs: v.shape(),
        });
    }
    matmul(a, v, threads, false)
}

/// Vector dot product of two `n x 1` (or `1 x n`) matrices.
pub fn dot(a: &Matrix, b: &Matrix) -> Result<f64> {
    let (va, vb) = (a.as_vector()?, b.as_vector()?);
    if va.len() != vb.len() {
        return Err(SysDsError::DimensionMismatch {
            op: "dot",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    Ok(va.iter().zip(&vb).map(|(x, y)| x * y).sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::gen;

    fn reference(a: &Matrix, b: &Matrix) -> Matrix {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut c = Matrix::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for p in 0..k {
                    s += a.get(i, p) * b.get(p, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        assert!(matmul(&a, &b, 1, false).is_err());
    }

    #[test]
    fn dense_dense_all_kernels_agree() {
        let a = gen::rand_uniform(17, 13, -1.0, 1.0, 1.0, 7);
        let b = gen::rand_uniform(13, 9, -1.0, 1.0, 1.0, 8);
        let expect = reference(&a, &b);
        for threads in [1usize, 4] {
            for blas in [false, true] {
                let c = matmul(&a, &b, threads, blas).unwrap();
                assert!(c.approx_eq(&expect, 1e-9), "threads={threads} blas={blas}");
            }
        }
    }

    #[test]
    fn blocked_kernel_handles_non_multiple_of_tile() {
        // rows not divisible by 4, dims not divisible by BLOCK
        let a = gen::rand_uniform(67, 70, 0.0, 1.0, 1.0, 1);
        let b = gen::rand_uniform(70, 65, 0.0, 1.0, 1.0, 2);
        let c = matmul(&a, &b, 3, true).unwrap();
        assert!(c.approx_eq(&reference(&a, &b), 1e-8));
    }

    #[test]
    fn sparse_dense_agrees() {
        let a = gen::rand_uniform(20, 15, -1.0, 1.0, 0.1, 3).compact();
        assert!(a.is_sparse());
        let b = gen::rand_uniform(15, 7, -1.0, 1.0, 1.0, 4);
        let c = matmul(&a, &b, 2, false).unwrap();
        assert!(c.approx_eq(&reference(&a, &b), 1e-9));
    }

    #[test]
    fn dense_sparse_agrees() {
        let a = gen::rand_uniform(12, 15, -1.0, 1.0, 1.0, 5);
        let b = gen::rand_uniform(15, 20, -1.0, 1.0, 0.1, 6).compact();
        assert!(b.is_sparse());
        let c = matmul(&a, &b, 2, false).unwrap();
        assert!(c.approx_eq(&reference(&a, &b), 1e-9));
    }

    #[test]
    fn sparse_sparse_agrees() {
        let a = gen::rand_uniform(25, 18, -1.0, 1.0, 0.15, 7).compact();
        let b = gen::rand_uniform(18, 22, -1.0, 1.0, 0.15, 8).compact();
        assert!(a.is_sparse() && b.is_sparse());
        let c = matmul(&a, &b, 1, false).unwrap();
        assert!(c.approx_eq(&reference(&a, &b), 1e-9));
    }

    #[test]
    fn identity_is_neutral() {
        let a = gen::rand_uniform(9, 9, -1.0, 1.0, 1.0, 9);
        let i = Matrix::identity(9);
        assert!(matmul(&a, &i, 1, false).unwrap().approx_eq(&a, 1e-12));
        assert!(matmul(&i, &a, 1, true).unwrap().approx_eq(&a, 1e-12));
    }

    #[test]
    fn mat_vec_and_dot() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let v = Matrix::from_vec(2, 1, vec![1.0, -1.0]).unwrap();
        let got = mat_vec(&a, &v, 1).unwrap();
        assert!(got.approx_eq(&Matrix::from_vec(2, 1, vec![-1.0, -1.0]).unwrap(), 1e-12));
        assert_eq!(dot(&v, &v).unwrap(), 2.0);
        assert!(mat_vec(&a, &a, 1).is_err());
    }

    #[test]
    fn zero_row_matrices() {
        let a = Matrix::zeros(0, 3);
        let b = Matrix::zeros(3, 2);
        let c = matmul(&a, &b, 2, false).unwrap();
        assert_eq!(c.shape(), (0, 2));
    }
}
