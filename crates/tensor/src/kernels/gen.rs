//! Data generators: `rand`, `seq`, and multi-threaded synthetic data.
//!
//! All generators take explicit seeds (recorded in lineage, §3.1) and use
//! per-thread split streams so multi-threaded generation is reproducible
//! regardless of scheduling.

use crate::matrix::{DenseMatrix, Matrix, SparseMatrix};
use sysds_common::rng::{split, XorShift64};
use sysds_common::{Result, SysDsError};

/// `rand(rows, cols, min, max, sparsity, seed)` with a uniform PDF.
/// Sparsity selects the expected fraction of non-zero cells.
pub fn rand_uniform(
    rows: usize,
    cols: usize,
    min: f64,
    max: f64,
    sparsity: f64,
    seed: u64,
) -> Matrix {
    gen_with(rows, cols, sparsity, seed, move |r| r.next_range(min, max))
}

/// `rand(..., pdf="normal")`: standard-normal cells (scaled by callers).
pub fn rand_normal(rows: usize, cols: usize, sparsity: f64, seed: u64) -> Matrix {
    gen_with(rows, cols, sparsity, seed, |r| r.next_gaussian())
}

fn gen_with(
    rows: usize,
    cols: usize,
    sparsity: f64,
    seed: u64,
    f: impl Fn(&mut XorShift64) -> f64,
) -> Matrix {
    let sparsity = sparsity.clamp(0.0, 1.0);
    if sparsity >= 1.0 {
        let mut out = DenseMatrix::zeros(rows, cols);
        // One split stream per row keeps generation order-independent.
        for i in 0..rows {
            let mut r = XorShift64::new(split(seed, i as u64));
            for cell in out.row_mut(i) {
                *cell = f(&mut r);
            }
        }
        return Matrix::Dense(out);
    }
    // Sparse: per-row Bernoulli selection, then values.
    let mut triples = Vec::with_capacity((rows as f64 * cols as f64 * sparsity) as usize + 16);
    for i in 0..rows {
        let mut r = XorShift64::new(split(seed, i as u64));
        for j in 0..cols {
            if r.next_f64() < sparsity {
                let v = f(&mut r);
                triples.push((i, j, v));
            }
        }
    }
    Matrix::Sparse(SparseMatrix::from_triples(rows, cols, triples)).compact()
}

/// `seq(from, to, by)` as a column vector (inclusive bounds, like DML).
pub fn seq(from: f64, to: f64, by: f64) -> Result<Matrix> {
    if by == 0.0 {
        return Err(SysDsError::runtime("seq increment must be non-zero"));
    }
    if (to - from) * by < 0.0 {
        return Matrix::from_vec(0, 1, Vec::new());
    }
    let n = ((to - from) / by).floor() as usize + 1;
    let data: Vec<f64> = (0..n).map(|k| from + k as f64 * by).collect();
    Matrix::from_vec(n, 1, data)
}

/// A linear-regression style synthetic dataset: `X` with given sparsity,
/// `y = X w + noise` for a random weight vector. Mirrors the paper's §4.1
/// synthetic data generation for the hyper-parameter workload.
pub fn synthetic_regression(
    rows: usize,
    cols: usize,
    sparsity: f64,
    noise: f64,
    seed: u64,
) -> (Matrix, Matrix) {
    let x = rand_uniform(rows, cols, 0.0, 1.0, sparsity, seed);
    let w = rand_uniform(cols, 1, -1.0, 1.0, 1.0, split(seed, 0xBEEF));
    let mut y = crate::kernels::matmult::matmul(&x, &w, 1, false).expect("shapes agree");
    if noise > 0.0 {
        let mut r = XorShift64::new(split(seed, 0xF00D));
        let yd = y.to_dense();
        let data = yd
            .values()
            .iter()
            .map(|&v| v + noise * r.next_gaussian())
            .collect();
        y = Matrix::Dense(DenseMatrix::from_vec(rows, 1, data));
    }
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rand_uniform_respects_bounds() {
        let m = rand_uniform(20, 20, -2.0, 3.0, 1.0, 71);
        for (_, _, v) in m.iter_nonzeros() {
            assert!((-2.0..3.0).contains(&v));
        }
        assert_eq!(m.nnz(), 400); // fully dense with min>... actually range crosses 0
    }

    #[test]
    fn rand_is_deterministic_per_seed() {
        let a = rand_uniform(10, 10, 0.0, 1.0, 0.5, 72);
        let b = rand_uniform(10, 10, 0.0, 1.0, 0.5, 72);
        assert!(a.approx_eq(&b, 0.0));
        let c = rand_uniform(10, 10, 0.0, 1.0, 0.5, 73);
        assert!(!a.approx_eq(&c, 0.0));
    }

    #[test]
    fn sparsity_close_to_requested() {
        let m = rand_uniform(200, 200, 1.0, 2.0, 0.1, 74);
        let sp = m.sparsity();
        assert!((sp - 0.1).abs() < 0.02, "sparsity {sp}");
        assert!(m.is_sparse());
    }

    #[test]
    fn normal_moments() {
        let m = rand_normal(100, 100, 1.0, 75);
        let mean =
            crate::kernels::aggregate::aggregate_full(crate::kernels::aggregate::AggFn::Mean, &m)
                .unwrap();
        let sd =
            crate::kernels::aggregate::aggregate_full(crate::kernels::aggregate::AggFn::Sd, &m)
                .unwrap();
        assert!(mean.abs() < 0.05);
        assert!((sd - 1.0).abs() < 0.05);
    }

    #[test]
    fn seq_inclusive() {
        assert_eq!(
            seq(1.0, 5.0, 1.0).unwrap().to_vec(),
            vec![1.0, 2.0, 3.0, 4.0, 5.0]
        );
        assert_eq!(seq(5.0, 1.0, -2.0).unwrap().to_vec(), vec![5.0, 3.0, 1.0]);
        assert_eq!(seq(1.0, 1.0, 1.0).unwrap().to_vec(), vec![1.0]);
        assert_eq!(seq(2.0, 1.0, 1.0).unwrap().rows(), 0);
        assert!(seq(1.0, 2.0, 0.0).is_err());
    }

    #[test]
    fn synthetic_regression_is_learnable() {
        let (x, y) = synthetic_regression(50, 3, 1.0, 0.0, 76);
        assert_eq!(x.shape(), (50, 3));
        assert_eq!(y.shape(), (50, 1));
        // Zero noise: y must lie exactly in the column space of X.
        let g = crate::kernels::tsmm::tsmm(&x, 1, false);
        let b = crate::kernels::tsmm::tmv(&x, &y, 1).unwrap();
        let w = crate::kernels::solve::solve(&g, &b).unwrap();
        let yhat = crate::kernels::matmult::matmul(&x, &w, 1, false).unwrap();
        assert!(yhat.approx_eq(&y, 1e-6));
    }

    #[test]
    fn zero_sparsity_yields_empty() {
        let m = rand_uniform(10, 10, 0.0, 1.0, 0.0, 77);
        assert_eq!(m.nnz(), 0);
    }
}

/// `table(v1, v2)` — contingency table: output cell `(i, j)` counts rows
/// where `v1 = i+1` and `v2 = j+1` (1-based category codes, like DML).
pub fn table(v1: &Matrix, v2: &Matrix) -> Result<Matrix> {
    if v1.cols() != 1 || v2.cols() != 1 || v1.rows() != v2.rows() {
        return Err(SysDsError::DimensionMismatch {
            op: "table",
            lhs: v1.shape(),
            rhs: v2.shape(),
        });
    }
    let mut triples: Vec<(usize, usize, f64)> = Vec::with_capacity(v1.rows());
    let mut max_i = 0usize;
    let mut max_j = 0usize;
    for r in 0..v1.rows() {
        let (a, b) = (v1.get(r, 0), v2.get(r, 0));
        if a < 1.0 || b < 1.0 || a.fract() != 0.0 || b.fract() != 0.0 {
            return Err(SysDsError::runtime(format!(
                "table expects positive integer codes, got ({a}, {b}) at row {}",
                r + 1
            )));
        }
        let (i, j) = (a as usize - 1, b as usize - 1);
        max_i = max_i.max(i + 1);
        max_j = max_j.max(j + 1);
        triples.push((i, j, 1.0));
    }
    Ok(Matrix::Sparse(crate::matrix::SparseMatrix::from_triples(
        max_i, max_j, triples,
    ))
    .compact())
}

/// `outer(v1, v2, op)` — apply `op` to every pair `(v1[i], v2[j])`.
pub fn outer(v1: &Matrix, v2: &Matrix, op: crate::kernels::BinaryOp) -> Result<Matrix> {
    if v1.cols() != 1 || v2.rows() != 1 {
        return Err(SysDsError::runtime(
            "outer expects a column vector and a row vector",
        ));
    }
    let (m, n) = (v1.rows(), v2.cols());
    let mut out = DenseMatrix::zeros(m, n);
    for i in 0..m {
        let a = v1.get(i, 0);
        for j in 0..n {
            out.set(i, j, op.apply(a, v2.get(0, j)));
        }
    }
    Ok(Matrix::Dense(out).compact())
}

#[cfg(test)]
mod table_outer_tests {
    use super::*;
    use crate::kernels::BinaryOp;

    #[test]
    fn table_counts_pairs() {
        let v1 = Matrix::from_vec(5, 1, vec![1.0, 2.0, 1.0, 3.0, 1.0]).unwrap();
        let v2 = Matrix::from_vec(5, 1, vec![2.0, 1.0, 2.0, 1.0, 1.0]).unwrap();
        let t = table(&v1, &v2).unwrap();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(0, 1), 2.0); // (1,2) twice
        assert_eq!(t.get(0, 0), 1.0); // (1,1) once
        assert_eq!(t.get(1, 0), 1.0);
        assert_eq!(t.get(2, 0), 1.0);
    }

    #[test]
    fn table_validates_codes() {
        let bad = Matrix::from_vec(1, 1, vec![0.0]).unwrap();
        let ok = Matrix::from_vec(1, 1, vec![1.0]).unwrap();
        assert!(table(&bad, &ok).is_err());
        let frac = Matrix::from_vec(1, 1, vec![1.5]).unwrap();
        assert!(table(&frac, &ok).is_err());
        assert!(table(&ok, &Matrix::zeros(2, 1)).is_err());
    }

    #[test]
    fn outer_products_and_comparisons() {
        let a = Matrix::from_vec(3, 1, vec![1.0, 2.0, 3.0]).unwrap();
        let b = Matrix::from_vec(1, 2, vec![10.0, 20.0]).unwrap();
        let p = outer(&a, &b, BinaryOp::Mul).unwrap();
        assert_eq!(p.shape(), (3, 2));
        assert_eq!(p.get(2, 1), 60.0);
        let lt = outer(&a, &b, BinaryOp::Lt).unwrap();
        assert_eq!(lt.get(0, 0), 1.0);
        assert!(outer(&b, &b, BinaryOp::Mul).is_err());
    }
}
