//! Element-wise binary and unary operations with R-style broadcasting.
//!
//! Binary operations support matrix-matrix (equal shapes), matrix-scalar,
//! and row-/column-vector broadcasting, matching DML semantics. Sparse
//! inputs stay sparse for zero-preserving operations (e.g. `sparse * dense`,
//! `sparse ^ 2`) and densify otherwise.

use crate::matrix::{DenseMatrix, Matrix, SparseMatrix};
use sysds_common::{Result, SysDsError};

/// Binary element-wise operators of the DML language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Mod,
    IntDiv,
    Min,
    Max,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl BinaryOp {
    /// Apply to two scalars.
    #[inline]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => a / b,
            BinaryOp::Pow => a.powf(b),
            BinaryOp::Mod => {
                // R-style modulus: result has the sign of the divisor.
                let r = a % b;
                if r != 0.0 && (r < 0.0) != (b < 0.0) {
                    r + b
                } else {
                    r
                }
            }
            BinaryOp::IntDiv => (a / b).floor(),
            BinaryOp::Min => a.min(b),
            BinaryOp::Max => a.max(b),
            BinaryOp::Eq => f64::from(a == b),
            BinaryOp::Neq => f64::from(a != b),
            BinaryOp::Lt => f64::from(a < b),
            BinaryOp::Le => f64::from(a <= b),
            BinaryOp::Gt => f64::from(a > b),
            BinaryOp::Ge => f64::from(a >= b),
            BinaryOp::And => f64::from(a != 0.0 && b != 0.0),
            BinaryOp::Or => f64::from(a != 0.0 || b != 0.0),
        }
    }

    /// Whether `op(0, x) == 0` for all x — the left-sparse-safe property.
    pub fn zero_preserving_left(self) -> bool {
        matches!(self, BinaryOp::Mul | BinaryOp::And)
    }

    /// Whether `op(x, 0) == 0` for all x.
    pub fn zero_preserving_right(self) -> bool {
        matches!(self, BinaryOp::Mul | BinaryOp::And)
    }

    /// Whether `op(0, 0) == 0` (sparse-sparse outputs stay sparse).
    pub fn zero_on_zero(self) -> bool {
        matches!(
            self,
            BinaryOp::Add
                | BinaryOp::Sub
                | BinaryOp::Mul
                | BinaryOp::And
                | BinaryOp::Neq
                | BinaryOp::Lt
                | BinaryOp::Gt
        )
    }

    /// The DML opcode string (used for lineage and instruction names).
    pub fn opcode(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Pow => "^",
            BinaryOp::Mod => "%%",
            BinaryOp::IntDiv => "%/%",
            BinaryOp::Min => "min",
            BinaryOp::Max => "max",
            BinaryOp::Eq => "==",
            BinaryOp::Neq => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "&",
            BinaryOp::Or => "|",
        }
    }
}

/// Unary element-wise operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    Neg,
    Not,
    Abs,
    Exp,
    Log,
    Sqrt,
    Sin,
    Cos,
    Tan,
    Sign,
    Round,
    Floor,
    Ceil,
    Sigmoid,
}

impl UnaryOp {
    /// Apply to one scalar.
    #[inline]
    pub fn apply(self, v: f64) -> f64 {
        match self {
            UnaryOp::Neg => -v,
            UnaryOp::Not => f64::from(v == 0.0),
            UnaryOp::Abs => v.abs(),
            UnaryOp::Exp => v.exp(),
            UnaryOp::Log => v.ln(),
            UnaryOp::Sqrt => v.sqrt(),
            UnaryOp::Sin => v.sin(),
            UnaryOp::Cos => v.cos(),
            UnaryOp::Tan => v.tan(),
            UnaryOp::Sign => {
                if v > 0.0 {
                    1.0
                } else if v < 0.0 {
                    -1.0
                } else {
                    0.0
                }
            }
            UnaryOp::Round => v.round(),
            UnaryOp::Floor => v.floor(),
            UnaryOp::Ceil => v.ceil(),
            UnaryOp::Sigmoid => 1.0 / (1.0 + (-v).exp()),
        }
    }

    /// Whether `op(0) == 0` (sparse inputs keep their representation).
    pub fn zero_preserving(self) -> bool {
        matches!(
            self,
            UnaryOp::Neg
                | UnaryOp::Abs
                | UnaryOp::Sqrt
                | UnaryOp::Sin
                | UnaryOp::Tan
                | UnaryOp::Sign
                | UnaryOp::Round
                | UnaryOp::Floor
                | UnaryOp::Ceil
        )
    }

    /// The DML opcode string.
    pub fn opcode(self) -> &'static str {
        match self {
            UnaryOp::Neg => "u-",
            UnaryOp::Not => "!",
            UnaryOp::Abs => "abs",
            UnaryOp::Exp => "exp",
            UnaryOp::Log => "log",
            UnaryOp::Sqrt => "sqrt",
            UnaryOp::Sin => "sin",
            UnaryOp::Cos => "cos",
            UnaryOp::Tan => "tan",
            UnaryOp::Sign => "sign",
            UnaryOp::Round => "round",
            UnaryOp::Floor => "floor",
            UnaryOp::Ceil => "ceil",
            UnaryOp::Sigmoid => "sigmoid",
        }
    }
}

/// How the right operand broadcasts onto the left.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Broadcast {
    /// Shapes equal, cell-by-cell.
    None,
    /// Right is a column vector (`m x 1`) repeated across columns.
    ColVector,
    /// Right is a row vector (`1 x n`) repeated down rows.
    RowVector,
}

fn broadcast_mode(lhs: (usize, usize), rhs: (usize, usize)) -> Result<Broadcast> {
    if lhs == rhs {
        Ok(Broadcast::None)
    } else if rhs == (lhs.0, 1) {
        Ok(Broadcast::ColVector)
    } else if rhs == (1, lhs.1) {
        Ok(Broadcast::RowVector)
    } else {
        Err(SysDsError::DimensionMismatch {
            op: "elementwise",
            lhs,
            rhs,
        })
    }
}

/// Matrix ⊕ matrix with broadcasting of the right operand (sequential).
pub fn binary_mm(op: BinaryOp, a: &Matrix, b: &Matrix) -> Result<Matrix> {
    binary_mm_mt(op, a, b, 1)
}

/// Matrix ⊕ matrix with broadcasting, row-partitioned over `threads`.
pub fn binary_mm_mt(op: BinaryOp, a: &Matrix, b: &Matrix, threads: usize) -> Result<Matrix> {
    let mode = broadcast_mode(a.shape(), b.shape())?;
    // Sparse fast path: zero-preserving ops on a sparse left operand touch
    // only stored entries.
    if let (Matrix::Sparse(sa), true) = (a, op.zero_preserving_left()) {
        return Ok(sparse_left_zero_preserving(op, sa, b, mode));
    }
    let (m, n) = a.shape();
    let mut out = DenseMatrix::zeros(m, n);
    let fill = |lo: usize, hi: usize, chunk: &mut [f64]| {
        for i in lo..hi {
            let row = &mut chunk[(i - lo) * n..(i - lo + 1) * n];
            for (j, cell) in row.iter_mut().enumerate() {
                let bv = match mode {
                    Broadcast::None => b.get(i, j),
                    Broadcast::ColVector => b.get(i, 0),
                    Broadcast::RowVector => b.get(0, j),
                };
                *cell = op.apply(a.get(i, j), bv);
            }
        }
    };
    let parts = super::par_row_partitions(m, n, threads);
    if parts.len() <= 1 {
        fill(0, m, out.values_mut());
    } else {
        let mut rest = out.values_mut();
        crossbeam::thread::scope(|s| {
            for &(lo, hi) in &parts {
                let (chunk, r2) = rest.split_at_mut((hi - lo) * n);
                rest = r2;
                let fill = &fill;
                s.spawn(move |_| fill(lo, hi, chunk));
            }
        })
        .expect("elementwise worker panicked");
    }
    Ok(Matrix::Dense(out).compact())
}

fn sparse_left_zero_preserving(
    op: BinaryOp,
    a: &SparseMatrix,
    b: &Matrix,
    mode: Broadcast,
) -> Matrix {
    let mut triples = Vec::with_capacity(a.nnz());
    for (i, j, v) in a.iter_nonzeros() {
        let bv = match mode {
            Broadcast::None => b.get(i, j),
            Broadcast::ColVector => b.get(i, 0),
            Broadcast::RowVector => b.get(0, j),
        };
        let r = op.apply(v, bv);
        if r != 0.0 {
            triples.push((i, j, r));
        }
    }
    Matrix::Sparse(SparseMatrix::from_triples(a.rows(), a.cols(), triples))
}

/// Matrix ⊕ scalar (sequential).
pub fn binary_ms(op: BinaryOp, a: &Matrix, s: f64) -> Matrix {
    binary_ms_mt(op, a, s, 1)
}

/// Matrix ⊕ scalar, row-partitioned over `threads`.
pub fn binary_ms_mt(op: BinaryOp, a: &Matrix, s: f64, threads: usize) -> Matrix {
    // Keep sparsity when op(0, s) == 0.
    if let Matrix::Sparse(sa) = a {
        if op.apply(0.0, s) == 0.0 {
            let triples = sa
                .iter_nonzeros()
                .map(|(i, j, v)| (i, j, op.apply(v, s)))
                .filter(|&(_, _, v)| v != 0.0)
                .collect();
            return Matrix::Sparse(SparseMatrix::from_triples(sa.rows(), sa.cols(), triples));
        }
    }
    map_dense(a, threads, |v| op.apply(v, s))
}

/// Scalar ⊕ matrix (non-commutative ops need this separate form).
pub fn binary_sm(op: BinaryOp, s: f64, a: &Matrix) -> Matrix {
    binary_sm_mt(op, s, a, 1)
}

/// Scalar ⊕ matrix, row-partitioned over `threads`.
pub fn binary_sm_mt(op: BinaryOp, s: f64, a: &Matrix, threads: usize) -> Matrix {
    if let Matrix::Sparse(sa) = a {
        if op.apply(s, 0.0) == 0.0 {
            let triples = sa
                .iter_nonzeros()
                .map(|(i, j, v)| (i, j, op.apply(s, v)))
                .filter(|&(_, _, v)| v != 0.0)
                .collect();
            return Matrix::Sparse(SparseMatrix::from_triples(sa.rows(), sa.cols(), triples));
        }
    }
    map_dense(a, threads, |v| op.apply(s, v))
}

/// Unary element-wise application (sequential).
pub fn unary(op: UnaryOp, a: &Matrix) -> Matrix {
    unary_mt(op, a, 1)
}

/// Unary element-wise application, row-partitioned over `threads`.
pub fn unary_mt(op: UnaryOp, a: &Matrix, threads: usize) -> Matrix {
    if let (Matrix::Sparse(sa), true) = (a, op.zero_preserving()) {
        let triples = sa
            .iter_nonzeros()
            .map(|(i, j, v)| (i, j, op.apply(v)))
            .filter(|&(_, _, v)| v != 0.0)
            .collect();
        return Matrix::Sparse(SparseMatrix::from_triples(sa.rows(), sa.cols(), triples));
    }
    map_dense(a, threads, |v| op.apply(v))
}

/// Densify `a` and apply `f` cell-wise, splitting row partitions across
/// scoped threads when the input is large enough.
fn map_dense(a: &Matrix, threads: usize, f: impl Fn(f64) -> f64 + Sync) -> Matrix {
    let d = a.to_dense();
    let (m, n) = (d.rows(), d.cols());
    let src = d.values();
    let mut out = DenseMatrix::zeros(m, n);
    let parts = super::par_row_partitions(m, n, threads);
    if parts.len() <= 1 {
        for (dst, &v) in out.values_mut().iter_mut().zip(src) {
            *dst = f(v);
        }
    } else {
        let mut rest = out.values_mut();
        crossbeam::thread::scope(|s| {
            for &(lo, hi) in &parts {
                let (chunk, r2) = rest.split_at_mut((hi - lo) * n);
                rest = r2;
                let f = &f;
                let src = &src[lo * n..hi * n];
                s.spawn(move |_| {
                    for (dst, &v) in chunk.iter_mut().zip(src) {
                        *dst = f(v);
                    }
                });
            }
        })
        .expect("elementwise worker panicked");
    }
    Matrix::Dense(out).compact()
}

/// `ifelse(cond, yes, no)` with scalar or matrix branches broadcast by cell.
pub fn ifelse(cond: &Matrix, yes: &Matrix, no: &Matrix) -> Result<Matrix> {
    if cond.shape() != yes.shape() || cond.shape() != no.shape() {
        return Err(SysDsError::runtime("ifelse operands must share shapes"));
    }
    let (m, n) = cond.shape();
    let mut out = DenseMatrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            out.set(
                i,
                j,
                if cond.get(i, j) != 0.0 {
                    yes.get(i, j)
                } else {
                    no.get(i, j)
                },
            );
        }
    }
    Ok(Matrix::Dense(out).compact())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::gen;

    #[test]
    fn add_equal_shapes() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[10.0, 20.0], &[30.0, 40.0]]).unwrap();
        let c = binary_mm(BinaryOp::Add, &a, &b).unwrap();
        assert!(c.approx_eq(
            &Matrix::from_rows(&[&[11.0, 22.0], &[33.0, 44.0]]).unwrap(),
            1e-12
        ));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 2);
        assert!(binary_mm(BinaryOp::Add, &a, &b).is_err());
    }

    #[test]
    fn column_vector_broadcast() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let v = Matrix::from_vec(2, 1, vec![10.0, 100.0]).unwrap();
        let c = binary_mm(BinaryOp::Mul, &a, &v).unwrap();
        assert!(c.approx_eq(
            &Matrix::from_rows(&[&[10.0, 20.0], &[300.0, 400.0]]).unwrap(),
            1e-12
        ));
    }

    #[test]
    fn row_vector_broadcast() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let v = Matrix::from_vec(1, 2, vec![-1.0, 1.0]).unwrap();
        let c = binary_mm(BinaryOp::Add, &a, &v).unwrap();
        assert!(c.approx_eq(
            &Matrix::from_rows(&[&[0.0, 3.0], &[2.0, 5.0]]).unwrap(),
            1e-12
        ));
    }

    #[test]
    fn sparse_multiply_stays_sparse() {
        let a = gen::rand_uniform(20, 20, 1.0, 2.0, 0.05, 21).compact();
        assert!(a.is_sparse());
        let b = Matrix::filled(20, 20, 2.0);
        let c = binary_mm(BinaryOp::Mul, &a, &b).unwrap();
        assert!(c.is_sparse());
        for (i, j, v) in a.iter_nonzeros() {
            assert_eq!(c.get(i, j), 2.0 * v);
        }
    }

    #[test]
    fn sparse_scalar_multiply_keeps_sparsity() {
        let a = gen::rand_uniform(20, 20, 1.0, 2.0, 0.05, 22).compact();
        let c = binary_ms(BinaryOp::Mul, &a, 3.0);
        assert!(c.is_sparse());
        assert_eq!(c.nnz(), a.nnz());
    }

    #[test]
    fn scalar_minus_matrix_is_not_commutative() {
        let a = Matrix::filled(1, 2, 3.0);
        let l = binary_sm(BinaryOp::Sub, 10.0, &a);
        let r = binary_ms(BinaryOp::Sub, &a, 10.0);
        assert_eq!(l.get(0, 0), 7.0);
        assert_eq!(r.get(0, 0), -7.0);
    }

    #[test]
    fn r_style_modulus() {
        assert_eq!(BinaryOp::Mod.apply(-7.0, 3.0), 2.0);
        assert_eq!(BinaryOp::Mod.apply(7.0, -3.0), -2.0);
        assert_eq!(BinaryOp::Mod.apply(7.0, 3.0), 1.0);
    }

    #[test]
    fn comparisons_yield_indicators() {
        let a = Matrix::from_rows(&[&[1.0, 5.0]]).unwrap();
        let c = binary_ms(BinaryOp::Gt, &a, 2.0);
        assert_eq!(c.get(0, 0), 0.0);
        assert_eq!(c.get(0, 1), 1.0);
    }

    #[test]
    fn unary_ops_on_sparse() {
        let a = gen::rand_uniform(15, 15, -2.0, 2.0, 0.1, 23).compact();
        let c = unary(UnaryOp::Abs, &a);
        assert!(c.is_sparse());
        for (i, j, v) in a.iter_nonzeros() {
            assert_eq!(c.get(i, j), v.abs());
        }
        // exp(0) = 1, so exp must densify.
        let e = unary(UnaryOp::Exp, &a);
        assert!(!e.is_sparse());
        assert_eq!(e.get(0, 1).min(1.0), e.get(0, 1).min(1.0)); // well-defined
    }

    #[test]
    fn sigmoid_range() {
        let a = Matrix::from_rows(&[&[-100.0, 0.0, 100.0]]).unwrap();
        let s = unary(UnaryOp::Sigmoid, &a);
        assert!(s.get(0, 0) < 1e-6);
        assert_eq!(s.get(0, 1), 0.5);
        assert!(s.get(0, 2) > 1.0 - 1e-6);
    }

    #[test]
    fn ifelse_selects_by_condition() {
        let c = Matrix::from_rows(&[&[1.0, 0.0]]).unwrap();
        let y = Matrix::filled(1, 2, 7.0);
        let n = Matrix::filled(1, 2, -7.0);
        let r = ifelse(&c, &y, &n).unwrap();
        assert_eq!(r.get(0, 0), 7.0);
        assert_eq!(r.get(0, 1), -7.0);
        assert!(ifelse(&c, &Matrix::zeros(2, 2), &n).is_err());
    }

    #[test]
    fn parallel_variants_match_sequential() {
        // Big enough (> PAR_MIN_CELLS) to take the multi-partition path.
        let a = gen::rand_uniform(300, 120, -2.0, 2.0, 1.0, 24);
        let b = gen::rand_uniform(300, 120, -2.0, 2.0, 1.0, 25);
        let mm1 = binary_mm(BinaryOp::Mul, &a, &b).unwrap();
        let mm4 = binary_mm_mt(BinaryOp::Mul, &a, &b, 4).unwrap();
        assert!(mm1.approx_eq(&mm4, 1e-12));
        let ms4 = binary_ms_mt(BinaryOp::Add, &a, 1.5, 4);
        assert!(binary_ms(BinaryOp::Add, &a, 1.5).approx_eq(&ms4, 1e-12));
        let sm4 = binary_sm_mt(BinaryOp::Div, 2.0, &a, 4);
        assert!(binary_sm(BinaryOp::Div, 2.0, &a).approx_eq(&sm4, 1e-12));
        let u4 = unary_mt(UnaryOp::Exp, &a, 4);
        assert!(unary(UnaryOp::Exp, &a).approx_eq(&u4, 1e-12));
    }

    #[test]
    fn opcode_strings_unique() {
        use std::collections::HashSet;
        let ops = [
            BinaryOp::Add,
            BinaryOp::Sub,
            BinaryOp::Mul,
            BinaryOp::Div,
            BinaryOp::Pow,
            BinaryOp::Mod,
            BinaryOp::IntDiv,
            BinaryOp::Min,
            BinaryOp::Max,
            BinaryOp::Eq,
            BinaryOp::Neq,
            BinaryOp::Lt,
            BinaryOp::Le,
            BinaryOp::Gt,
            BinaryOp::Ge,
            BinaryOp::And,
            BinaryOp::Or,
        ];
        let set: HashSet<_> = ops.iter().map(|o| o.opcode()).collect();
        assert_eq!(set.len(), ops.len());
    }
}
