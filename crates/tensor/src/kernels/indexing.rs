//! Right/left indexing, `cbind`, `rbind`, and `removeEmpty`.
//!
//! Ranges here are half-open 0-based `(start..end)` pairs; the language
//! layer converts DML's inclusive 1-based `X[a:b, c:d]` before calling in.

use crate::matrix::{DenseMatrix, Matrix, SparseMatrix};
use sysds_common::{Result, SysDsError};

fn check_range(
    rows: usize,
    cols: usize,
    r: &std::ops::Range<usize>,
    c: &std::ops::Range<usize>,
) -> Result<()> {
    if r.start > r.end || c.start > c.end || r.end > rows || c.end > cols {
        return Err(SysDsError::IndexOutOfBounds {
            msg: format!(
                "slice [{}:{}, {}:{}] of a {}x{} matrix",
                r.start, r.end, c.start, c.end, rows, cols
            ),
        });
    }
    Ok(())
}

/// Right indexing `X[r, c]` producing a copy of the sub-matrix.
pub fn slice(m: &Matrix, r: std::ops::Range<usize>, c: std::ops::Range<usize>) -> Result<Matrix> {
    check_range(m.rows(), m.cols(), &r, &c)?;
    let (or, oc) = (r.end - r.start, c.end - c.start);
    match m {
        Matrix::Dense(d) => {
            let mut out = DenseMatrix::zeros(or, oc);
            for i in 0..or {
                out.row_mut(i)
                    .copy_from_slice(&d.row(r.start + i)[c.clone()]);
            }
            Ok(Matrix::Dense(out).compact())
        }
        Matrix::Sparse(s) => {
            let mut triples = Vec::new();
            for i in r.clone() {
                let (cols, vals) = s.row(i);
                for (&j, &v) in cols.iter().zip(vals) {
                    let j = j as usize;
                    if c.contains(&j) {
                        triples.push((i - r.start, j - c.start, v));
                    }
                }
            }
            Ok(Matrix::Sparse(SparseMatrix::from_triples(or, oc, triples)).compact())
        }
    }
}

/// A single column as an `m x 1` matrix.
pub fn column(m: &Matrix, j: usize) -> Result<Matrix> {
    slice(m, 0..m.rows(), j..j + 1)
}

/// A single row as a `1 x n` matrix.
pub fn row(m: &Matrix, i: usize) -> Result<Matrix> {
    slice(m, i..i + 1, 0..m.cols())
}

/// Left indexing `X[r, c] = V`: returns a new matrix with the region
/// replaced (DML left-indexing is copy-on-write).
pub fn assign(
    m: &Matrix,
    r: std::ops::Range<usize>,
    c: std::ops::Range<usize>,
    v: &Matrix,
) -> Result<Matrix> {
    check_range(m.rows(), m.cols(), &r, &c)?;
    if v.rows() != r.end - r.start || v.cols() != c.end - c.start {
        return Err(SysDsError::DimensionMismatch {
            op: "left-indexing",
            lhs: (r.end - r.start, c.end - c.start),
            rhs: v.shape(),
        });
    }
    let mut out = m.to_dense();
    for i in 0..v.rows() {
        for j in 0..v.cols() {
            out.set(r.start + i, c.start + j, v.get(i, j));
        }
    }
    Ok(Matrix::Dense(out).compact())
}

/// Column-wise concatenation `cbind(A, B)`.
pub fn cbind(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.rows() != b.rows() {
        return Err(SysDsError::DimensionMismatch {
            op: "cbind",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (rows, ca, cb) = (a.rows(), a.cols(), b.cols());
    if a.is_sparse() && b.is_sparse() {
        let mut triples = Vec::with_capacity(a.nnz() + b.nnz());
        triples.extend(a.iter_nonzeros());
        triples.extend(b.iter_nonzeros().map(|(i, j, v)| (i, j + ca, v)));
        return Ok(Matrix::Sparse(SparseMatrix::from_triples(
            rows,
            ca + cb,
            triples,
        )));
    }
    let mut out = DenseMatrix::zeros(rows, ca + cb);
    let (ad, bd) = (a.to_dense(), b.to_dense());
    for i in 0..rows {
        out.row_mut(i)[..ca].copy_from_slice(ad.row(i));
        out.row_mut(i)[ca..].copy_from_slice(bd.row(i));
    }
    Ok(Matrix::Dense(out).compact())
}

/// Row-wise concatenation `rbind(A, B)`.
pub fn rbind(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.cols() {
        return Err(SysDsError::DimensionMismatch {
            op: "rbind",
            lhs: a.shape(),
            rhs: b.shape(),
        });
    }
    let (ra, rb, cols) = (a.rows(), b.rows(), a.cols());
    if a.is_sparse() && b.is_sparse() {
        let mut triples = Vec::with_capacity(a.nnz() + b.nnz());
        triples.extend(a.iter_nonzeros());
        triples.extend(b.iter_nonzeros().map(|(i, j, v)| (i + ra, j, v)));
        return Ok(Matrix::Sparse(SparseMatrix::from_triples(
            ra + rb,
            cols,
            triples,
        )));
    }
    let mut out = DenseMatrix::zeros(ra + rb, cols);
    let (ad, bd) = (a.to_dense(), b.to_dense());
    for i in 0..ra {
        out.row_mut(i).copy_from_slice(ad.row(i));
    }
    for i in 0..rb {
        out.row_mut(ra + i).copy_from_slice(bd.row(i));
    }
    Ok(Matrix::Dense(out).compact())
}

/// `removeEmpty(target=X, margin="rows"/"cols")`: drop all-zero rows or
/// columns. Returns the filtered matrix (at least 1x1 like SystemDS, which
/// keeps a single zero cell when everything is empty).
pub fn remove_empty(m: &Matrix, by_rows: bool) -> Matrix {
    let (rows, cols) = m.shape();
    let keep: Vec<usize> = if by_rows {
        (0..rows)
            .filter(|&i| (0..cols).any(|j| m.get(i, j) != 0.0))
            .collect()
    } else {
        (0..cols)
            .filter(|&j| (0..rows).any(|i| m.get(i, j) != 0.0))
            .collect()
    };
    if keep.is_empty() {
        return Matrix::zeros(1, 1);
    }
    if by_rows {
        let mut out = DenseMatrix::zeros(keep.len(), cols);
        for (dst, &src) in keep.iter().enumerate() {
            for j in 0..cols {
                out.set(dst, j, m.get(src, j));
            }
        }
        Matrix::Dense(out).compact()
    } else {
        let mut out = DenseMatrix::zeros(rows, keep.len());
        for i in 0..rows {
            for (dst, &src) in keep.iter().enumerate() {
                out.set(i, dst, m.get(i, src));
            }
        }
        Matrix::Dense(out).compact()
    }
}

/// `replace(target=X, pattern, replacement)` over all cells; `pattern` may
/// be NaN (matched with `is_nan`).
pub fn replace(m: &Matrix, pattern: f64, replacement: f64) -> Matrix {
    let matches = |v: f64| {
        if pattern.is_nan() {
            v.is_nan()
        } else {
            v == pattern
        }
    };
    let d = m.to_dense();
    let (rows, cols) = (d.rows(), d.cols());
    let data = d
        .values()
        .iter()
        .map(|&v| if matches(v) { replacement } else { v })
        .collect();
    Matrix::Dense(DenseMatrix::from_vec(rows, cols, data)).compact()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::gen;

    fn sample() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, 2.0, 3.0, 4.0],
            &[5.0, 6.0, 7.0, 8.0],
            &[9.0, 10.0, 11.0, 12.0],
        ])
        .unwrap()
    }

    #[test]
    fn slice_extracts_region() {
        let m = sample();
        let s = slice(&m, 1..3, 1..3).unwrap();
        assert!(s.approx_eq(
            &Matrix::from_rows(&[&[6.0, 7.0], &[10.0, 11.0]]).unwrap(),
            0.0
        ));
    }

    #[test]
    fn slice_bounds_checked() {
        let m = sample();
        assert!(slice(&m, 0..4, 0..2).is_err());
        assert!(slice(&m, 2..1, 0..2).is_err());
    }

    #[test]
    fn sparse_slice_matches_dense() {
        let m = gen::rand_uniform(30, 20, -1.0, 1.0, 0.1, 61).compact();
        let d = Matrix::Dense(m.to_dense());
        let a = slice(&m, 5..25, 3..17).unwrap();
        let b = slice(&d, 5..25, 3..17).unwrap();
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn column_and_row_helpers() {
        let m = sample();
        assert_eq!(column(&m, 2).unwrap().to_vec(), vec![3.0, 7.0, 11.0]);
        assert_eq!(row(&m, 1).unwrap().to_vec(), vec![5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn assign_replaces_region_without_mutating_source() {
        let m = sample();
        let v = Matrix::filled(2, 2, 0.0);
        let out = assign(&m, 0..2, 0..2, &v).unwrap();
        assert_eq!(out.get(0, 0), 0.0);
        assert_eq!(out.get(0, 2), 3.0);
        assert_eq!(m.get(0, 0), 1.0, "source untouched");
        assert!(assign(&m, 0..2, 0..2, &Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn cbind_dense_and_sparse() {
        let a = sample();
        let b = Matrix::filled(3, 1, -1.0);
        let c = cbind(&a, &b).unwrap();
        assert_eq!(c.shape(), (3, 5));
        assert_eq!(c.get(2, 4), -1.0);
        assert_eq!(c.get(2, 3), 12.0);

        let sa = gen::rand_uniform(10, 5, 1.0, 2.0, 0.1, 62).compact();
        let sb = gen::rand_uniform(10, 5, 1.0, 2.0, 0.1, 63).compact();
        let sc = cbind(&sa, &sb).unwrap();
        assert!(sc.is_sparse());
        assert_eq!(sc.nnz(), sa.nnz() + sb.nnz());
        assert!(cbind(&a, &Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn rbind_stacks_rows() {
        let a = sample();
        let b = Matrix::filled(1, 4, 0.5);
        let c = rbind(&a, &b).unwrap();
        assert_eq!(c.shape(), (4, 4));
        assert_eq!(c.get(3, 0), 0.5);
        assert!(rbind(&a, &Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn remove_empty_rows_and_cols() {
        let m = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[0.0, 0.0, 0.0], &[0.0, 2.0, 3.0]]).unwrap();
        let r = remove_empty(&m, true);
        assert_eq!(r.shape(), (2, 3));
        assert_eq!(r.get(1, 1), 2.0);
        let c = remove_empty(&m, false);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.get(2, 0), 2.0);
        // all-empty collapses to 1x1 zero
        assert_eq!(remove_empty(&Matrix::zeros(3, 3), true).shape(), (1, 1));
    }

    #[test]
    fn replace_values_and_nan() {
        let m = Matrix::from_rows(&[&[1.0, f64::NAN], &[1.0, 3.0]]).unwrap();
        let a = replace(&m, 1.0, 9.0);
        assert_eq!(a.get(0, 0), 9.0);
        assert_eq!(a.get(1, 1), 3.0);
        let b = replace(&m, f64::NAN, 0.0);
        assert_eq!(b.get(0, 1), 0.0);
        assert_eq!(b.get(0, 0), 1.0);
    }
}
