//! Fused transpose-self matrix multiply: `t(X) %*% X` and `t(X) %*% y`.
//!
//! These are the dominant operations of the paper's `lmDS` workload
//! (§4.2: "The main computation of lmDS is X>X and X>y"). The fusion
//! matters twice:
//!
//! * **dense**: `t(X) %*% X` is symmetric, so only the upper triangle is
//!   computed and mirrored — about half the FLOPs of a general matmul
//!   (this is the "fused API call" the authors had to hand-write for TF);
//! * **sparse**: the transpose is never materialized — each CSR row `x_i`
//!   contributes the outer product `x_i' x_i`, which is exactly why SysDS
//!   "largely outperforms Julia and TF on sparse data" in Figure 5(b).

use crate::matrix::{DenseMatrix, Matrix};
use sysds_common::{Result, SysDsError};

/// `t(X) %*% X` (a `cols x cols` symmetric matrix).
pub fn tsmm(x: &Matrix, threads: usize, blas: bool) -> Matrix {
    match x {
        Matrix::Dense(d) => Matrix::Dense(tsmm_dense(d, threads, blas)),
        Matrix::Sparse(_) => tsmm_sparse(x, threads),
    }
}

fn tsmm_dense(x: &DenseMatrix, threads: usize, blas: bool) -> DenseMatrix {
    let (m, n) = (x.rows(), x.cols());
    // Partition input rows; each thread accumulates a private n x n buffer,
    // then buffers are reduced. For tall-skinny X (the lmDS shape) the
    // private buffers are tiny relative to X.
    let parts = DenseMatrix::row_partitions(m, threads);
    let mut partials: Vec<Vec<f64>> = Vec::with_capacity(parts.len());
    crossbeam::thread::scope(|s| {
        let handles: Vec<_> = parts
            .iter()
            .map(|&(lo, hi)| {
                s.spawn(move |_| {
                    let mut acc = vec![0.0f64; n * n];
                    if blas {
                        tsmm_rows_blocked(x, &mut acc, lo, hi);
                    } else {
                        tsmm_rows_naive(x, &mut acc, lo, hi);
                    }
                    acc
                })
            })
            .collect();
        for h in handles {
            partials.push(h.join().expect("tsmm worker panicked"));
        }
    })
    .expect("tsmm scope failed");

    let mut out = partials.pop().unwrap_or_else(|| vec![0.0; n * n]);
    for p in &partials {
        for (o, v) in out.iter_mut().zip(p) {
            *o += *v;
        }
    }
    // Mirror the upper triangle into the lower one.
    for i in 0..n {
        for j in (i + 1)..n {
            out[j * n + i] = out[i * n + j];
        }
    }
    DenseMatrix::from_vec(n, n, out)
}

/// Upper-triangle accumulation, row-at-a-time outer products.
fn tsmm_rows_naive(x: &DenseMatrix, acc: &mut [f64], lo: usize, hi: usize) {
    let n = x.cols();
    for r in lo..hi {
        let row = x.row(r);
        for i in 0..n {
            let vi = row[i];
            if vi == 0.0 {
                continue;
            }
            let dst = &mut acc[i * n..(i + 1) * n];
            for j in i..n {
                dst[j] += vi * row[j];
            }
        }
    }
}

/// Blocked variant: processes 8 input rows per sweep to increase register
/// reuse of the accumulator lines (the "native BLAS" flavor).
fn tsmm_rows_blocked(x: &DenseMatrix, acc: &mut [f64], lo: usize, hi: usize) {
    let n = x.cols();
    let mut r = lo;
    while r + 8 <= hi {
        for i in 0..n {
            let dst = &mut acc[i * n..(i + 1) * n];
            let (v0, v1, v2, v3) = (
                x.get(r, i),
                x.get(r + 1, i),
                x.get(r + 2, i),
                x.get(r + 3, i),
            );
            let (v4, v5, v6, v7) = (
                x.get(r + 4, i),
                x.get(r + 5, i),
                x.get(r + 6, i),
                x.get(r + 7, i),
            );
            if v0 == 0.0
                && v1 == 0.0
                && v2 == 0.0
                && v3 == 0.0
                && v4 == 0.0
                && v5 == 0.0
                && v6 == 0.0
                && v7 == 0.0
            {
                continue;
            }
            let (r0, r1, r2, r3) = (x.row(r), x.row(r + 1), x.row(r + 2), x.row(r + 3));
            let (r4, r5, r6, r7) = (x.row(r + 4), x.row(r + 5), x.row(r + 6), x.row(r + 7));
            for j in i..n {
                dst[j] += v0 * r0[j]
                    + v1 * r1[j]
                    + v2 * r2[j]
                    + v3 * r3[j]
                    + v4 * r4[j]
                    + v5 * r5[j]
                    + v6 * r6[j]
                    + v7 * r7[j];
            }
        }
        r += 8;
    }
    if r < hi {
        tsmm_rows_naive(x, acc, r, hi);
    }
}

/// Sparse `t(X) %*% X` without materializing the transpose: sum of sparse
/// row outer products. Output is dense `n x n` (Gram matrices of sparse
/// data are usually dense).
fn tsmm_sparse(x: &Matrix, threads: usize) -> Matrix {
    let Matrix::Sparse(s) = x else {
        unreachable!("caller dispatched on sparse")
    };
    let n = s.cols();
    let parts = DenseMatrix::row_partitions(s.rows(), threads);
    let mut partials: Vec<Vec<f64>> = Vec::with_capacity(parts.len());
    crossbeam::thread::scope(|sc| {
        let handles: Vec<_> = parts
            .iter()
            .map(|&(lo, hi)| {
                sc.spawn(move |_| {
                    let mut acc = vec![0.0f64; n * n];
                    for r in lo..hi {
                        let (cols, vals) = s.row(r);
                        for (a, &ci) in cols.iter().enumerate() {
                            let vi = vals[a];
                            let dst = &mut acc[ci as usize * n..(ci as usize + 1) * n];
                            for (b, &cj) in cols.iter().enumerate().skip(a) {
                                dst[cj as usize] += vi * vals[b];
                            }
                        }
                    }
                    acc
                })
            })
            .collect();
        for h in handles {
            partials.push(h.join().expect("tsmm sparse worker panicked"));
        }
    })
    .expect("tsmm sparse scope failed");

    let mut out = partials.pop().unwrap_or_else(|| vec![0.0; n * n]);
    for p in &partials {
        for (o, v) in out.iter_mut().zip(p) {
            *o += *v;
        }
    }
    for i in 0..n {
        for j in (i + 1)..n {
            out[j * n + i] = out[i * n + j];
        }
    }
    Matrix::Dense(DenseMatrix::from_vec(n, n, out)).compact()
}

/// Fused `t(X) %*% y` for an `m x 1` vector `y`; never materializes `t(X)`.
#[allow(clippy::needless_range_loop)] // r indexes both X rows and y
pub fn tmv(x: &Matrix, y: &Matrix, threads: usize) -> Result<Matrix> {
    if y.cols() != 1 || x.rows() != y.rows() {
        return Err(SysDsError::DimensionMismatch {
            op: "t(X)%*%y",
            lhs: x.shape(),
            rhs: y.shape(),
        });
    }
    let n = x.cols();
    let yv = y.to_vec();
    let parts = DenseMatrix::row_partitions(x.rows(), threads);
    let mut partials: Vec<Vec<f64>> = Vec::with_capacity(parts.len());
    crossbeam::thread::scope(|sc| {
        let handles: Vec<_> = parts
            .iter()
            .map(|&(lo, hi)| {
                let yv = &yv;
                sc.spawn(move |_| {
                    let mut acc = vec![0.0f64; n];
                    match x {
                        Matrix::Dense(d) => {
                            for r in lo..hi {
                                let yr = yv[r];
                                if yr == 0.0 {
                                    continue;
                                }
                                for (j, &v) in d.row(r).iter().enumerate() {
                                    acc[j] += v * yr;
                                }
                            }
                        }
                        Matrix::Sparse(s) => {
                            for r in lo..hi {
                                let yr = yv[r];
                                if yr == 0.0 {
                                    continue;
                                }
                                let (cols, vals) = s.row(r);
                                for (&c, &v) in cols.iter().zip(vals) {
                                    acc[c as usize] += v * yr;
                                }
                            }
                        }
                    }
                    acc
                })
            })
            .collect();
        for h in handles {
            partials.push(h.join().expect("tmv worker panicked"));
        }
    })
    .expect("tmv scope failed");

    let mut out = partials.pop().unwrap_or_else(|| vec![0.0; n]);
    for p in &partials {
        for (o, v) in out.iter_mut().zip(p) {
            *o += *v;
        }
    }
    Matrix::from_vec(n, 1, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{gen, matmult, reorg};

    fn reference_tsmm(x: &Matrix) -> Matrix {
        let xt = reorg::transpose(x, 1);
        matmult::matmul(&xt, x, 1, false).unwrap()
    }

    #[test]
    fn dense_tsmm_matches_explicit() {
        let x = gen::rand_uniform(33, 9, -1.0, 1.0, 1.0, 11);
        for threads in [1usize, 4] {
            for blas in [false, true] {
                let got = tsmm(&x, threads, blas);
                assert!(
                    got.approx_eq(&reference_tsmm(&x), 1e-9),
                    "threads={threads} blas={blas}"
                );
            }
        }
    }

    #[test]
    fn dense_tsmm_row_count_not_multiple_of_eight() {
        let x = gen::rand_uniform(13, 5, -2.0, 2.0, 1.0, 12);
        let got = tsmm(&x, 2, true);
        assert!(got.approx_eq(&reference_tsmm(&x), 1e-9));
    }

    #[test]
    fn sparse_tsmm_matches_explicit() {
        let x = gen::rand_uniform(50, 12, -1.0, 1.0, 0.1, 13).compact();
        assert!(x.is_sparse());
        let got = tsmm(&x, 3, false);
        assert!(got.approx_eq(&reference_tsmm(&x), 1e-9));
    }

    #[test]
    fn tsmm_output_is_symmetric() {
        let x = gen::rand_uniform(40, 7, 0.0, 1.0, 1.0, 14);
        let g = tsmm(&x, 2, false);
        for i in 0..7 {
            for j in 0..7 {
                assert_eq!(g.get(i, j), g.get(j, i));
            }
        }
    }

    #[test]
    fn tmv_matches_explicit_dense_and_sparse() {
        let y = gen::rand_uniform(30, 1, -1.0, 1.0, 1.0, 16);
        for sp in [1.0, 0.1] {
            let x = gen::rand_uniform(30, 8, -1.0, 1.0, sp, 15).compact();
            let got = tmv(&x, &y, 2).unwrap();
            let expect = matmult::matmul(&reorg::transpose(&x, 1), &y, 1, false).unwrap();
            assert!(got.approx_eq(&expect, 1e-9), "sparsity={sp}");
        }
    }

    #[test]
    fn tmv_shape_check() {
        let x = Matrix::zeros(5, 3);
        assert!(tmv(&x, &Matrix::zeros(4, 1), 1).is_err());
        assert!(tmv(&x, &Matrix::zeros(5, 2), 1).is_err());
    }

    #[test]
    fn empty_input() {
        let x = Matrix::zeros(0, 4);
        let g = tsmm(&x, 2, false);
        assert_eq!(g.shape(), (4, 4));
        assert_eq!(g.nnz(), 0);
    }
}
