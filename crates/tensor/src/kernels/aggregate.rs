//! Full, row-wise, and column-wise aggregations, plus cumulative ops.
//!
//! Full-matrix sums use Kahan compensation like SystemML's `KahanPlus`
//! aggregation operator, so large reductions stay accurate.

use crate::matrix::{DenseMatrix, Matrix};
use sysds_common::{Result, SysDsError};

/// Aggregation functions of the DML language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFn {
    Sum,
    Mean,
    Min,
    Max,
    Var,
    Sd,
    /// Sum of squares (used by `lmCG` and norm computations).
    SumSq,
}

/// Aggregation direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Collapse everything to a scalar.
    Full,
    /// One result per row (`m x 1`).
    Row,
    /// One result per column (`1 x n`).
    Col,
}

/// Kahan-compensated accumulator (shared with the fused kernel).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Kahan {
    pub(crate) sum: f64,
    pub(crate) corr: f64,
}

impl Kahan {
    #[inline]
    pub(crate) fn add(&mut self, v: f64) {
        let y = v - self.corr;
        let t = self.sum + y;
        self.corr = (t - self.sum) - y;
        self.sum = t;
    }

    /// Fold another partition's partial sum into this accumulator,
    /// preserving that partition's own compensation term.
    #[inline]
    pub(crate) fn merge(&mut self, other: Kahan) {
        self.add(other.sum);
        self.add(-other.corr);
    }
}

/// Full aggregation to a scalar.
pub fn aggregate_full(f: AggFn, m: &Matrix) -> Result<f64> {
    let cells = (m.rows() * m.cols()) as f64;
    if cells == 0.0 {
        return match f {
            AggFn::Sum | AggFn::SumSq => Ok(0.0),
            _ => Err(SysDsError::runtime("aggregation over empty matrix")),
        };
    }
    Ok(match f {
        AggFn::Sum => full_sum(m, false),
        AggFn::SumSq => full_sum(m, true),
        AggFn::Mean => full_sum(m, false) / cells,
        AggFn::Min => fold_all(m, f64::INFINITY, f64::min),
        AggFn::Max => fold_all(m, f64::NEG_INFINITY, f64::max),
        AggFn::Var => full_var(m),
        AggFn::Sd => full_var(m).sqrt(),
    })
}

/// Full aggregation to a scalar, row-partitioned over `threads` for dense
/// inputs. Per-partition Kahan compensation is preserved and merged, so the
/// result stays within a few ulps of the sequential kernel.
pub fn aggregate_full_mt(f: AggFn, m: &Matrix, threads: usize) -> Result<f64> {
    let (rows, cols) = m.shape();
    let d = match m {
        Matrix::Dense(d) if rows * cols > 0 => d,
        _ => return aggregate_full(f, m),
    };
    let parts = super::par_row_partitions(rows, cols, threads);
    if parts.len() <= 1 {
        return aggregate_full(f, m);
    }
    let vals = d.values();
    let part_sum = |lo: usize, hi: usize, map: &(dyn Fn(f64) -> f64 + Sync)| {
        let mut acc = Kahan::default();
        for &v in &vals[lo * cols..hi * cols] {
            acc.add(map(v));
        }
        acc
    };
    let merged_sum = |map: &(dyn Fn(f64) -> f64 + Sync)| {
        let partials = super::run_partitions(&parts, |lo, hi| part_sum(lo, hi, map));
        let mut acc = Kahan::default();
        for p in partials {
            acc.merge(p);
        }
        acc.sum
    };
    let cells = (rows * cols) as f64;
    Ok(match f {
        AggFn::Sum => merged_sum(&|v| v),
        AggFn::SumSq => merged_sum(&|v| v * v),
        AggFn::Mean => merged_sum(&|v| v) / cells,
        AggFn::Min | AggFn::Max => {
            let (init, pick): (f64, fn(f64, f64) -> f64) = if f == AggFn::Min {
                (f64::INFINITY, f64::min)
            } else {
                (f64::NEG_INFINITY, f64::max)
            };
            let partials = super::run_partitions(&parts, |lo, hi| {
                vals[lo * cols..hi * cols]
                    .iter()
                    .fold(init, |a, &v| pick(a, v))
            });
            partials.into_iter().fold(init, pick)
        }
        AggFn::Var | AggFn::Sd => {
            // Parallel two-pass; unbiased (n-1) like the sequential kernel.
            let var = if cells < 2.0 {
                0.0
            } else {
                let mean = merged_sum(&|v| v) / cells;
                merged_sum(&|v| (v - mean) * (v - mean)) / (cells - 1.0)
            };
            if f == AggFn::Sd {
                var.sqrt()
            } else {
                var
            }
        }
    })
}

fn full_sum(m: &Matrix, squared: bool) -> f64 {
    let mut acc = Kahan::default();
    match m {
        Matrix::Dense(d) => {
            for &v in d.values() {
                acc.add(if squared { v * v } else { v });
            }
        }
        Matrix::Sparse(s) => {
            for (_, _, v) in s.iter_nonzeros() {
                acc.add(if squared { v * v } else { v });
            }
        }
    }
    acc.sum
}

/// Fold including structural zeros (min/max must see zeros of sparse
/// matrices).
fn fold_all(m: &Matrix, init: f64, f: impl Fn(f64, f64) -> f64) -> f64 {
    match m {
        Matrix::Dense(d) => d.values().iter().fold(init, |a, &v| f(a, v)),
        Matrix::Sparse(s) => {
            let mut acc = init;
            for (_, _, v) in s.iter_nonzeros() {
                acc = f(acc, v);
            }
            if s.nnz() < s.rows() * s.cols() {
                acc = f(acc, 0.0);
            }
            acc
        }
    }
}

fn full_var(m: &Matrix) -> f64 {
    // Two-pass algorithm; unbiased (n-1) like R.
    let n = (m.rows() * m.cols()) as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mean = full_sum(m, false) / n;
    let mut acc = Kahan::default();
    match m {
        Matrix::Dense(d) => {
            for &v in d.values() {
                acc.add((v - mean) * (v - mean));
            }
        }
        Matrix::Sparse(s) => {
            for (_, _, v) in s.iter_nonzeros() {
                acc.add((v - mean) * (v - mean));
            }
            let zeros = s.rows() * s.cols() - s.nnz();
            acc.add(zeros as f64 * mean * mean);
        }
    }
    acc.sum / (n - 1.0)
}

/// Row- or column-wise aggregation producing a vector-shaped matrix.
pub fn aggregate_axis(f: AggFn, dir: Direction, m: &Matrix) -> Result<Matrix> {
    match dir {
        Direction::Full => {
            let v = aggregate_full(f, m)?;
            Matrix::from_vec(1, 1, vec![v])
        }
        Direction::Row => aggregate_rows(f, m),
        Direction::Col => aggregate_cols(f, m),
    }
}

/// Row- or column-wise aggregation, row-partitioned over `threads`. Row
/// results are computed on disjoint row ranges; column results merge
/// per-partition partial vectors.
pub fn aggregate_axis_mt(f: AggFn, dir: Direction, m: &Matrix, threads: usize) -> Result<Matrix> {
    let (rows, cols) = m.shape();
    match dir {
        Direction::Full => {
            let v = aggregate_full_mt(f, m, threads)?;
            Matrix::from_vec(1, 1, vec![v])
        }
        Direction::Row => {
            if cols == 0 && !matches!(f, AggFn::Sum | AggFn::SumSq) {
                return Err(SysDsError::runtime("row aggregation over zero columns"));
            }
            let parts = super::par_row_partitions(rows, cols, threads);
            if parts.len() <= 1 {
                return aggregate_rows(f, m);
            }
            let partials = super::run_partitions(&parts, |lo, hi| {
                (lo..hi)
                    .map(|i| agg_slice(f, row_values(m, i), cols))
                    .collect::<Vec<f64>>()
            });
            Matrix::from_vec(rows, 1, partials.concat())
        }
        Direction::Col => {
            let d = match m {
                Matrix::Dense(d) if matches!(f, AggFn::Sum | AggFn::Mean | AggFn::SumSq) => d,
                _ => return aggregate_cols(f, m),
            };
            if rows == 0 {
                return aggregate_cols(f, m);
            }
            let parts = super::par_row_partitions(rows, cols, threads);
            if parts.len() <= 1 {
                return aggregate_cols(f, m);
            }
            let partials = super::run_partitions(&parts, |lo, hi| {
                let mut sums = vec![0.0f64; cols];
                for i in lo..hi {
                    for (acc, &v) in sums.iter_mut().zip(d.row(i)) {
                        *acc += if f == AggFn::SumSq { v * v } else { v };
                    }
                }
                sums
            });
            let mut sums = vec![0.0f64; cols];
            for p in partials {
                for (acc, v) in sums.iter_mut().zip(p) {
                    *acc += v;
                }
            }
            if f == AggFn::Mean {
                for v in &mut sums {
                    *v /= rows as f64;
                }
            }
            Matrix::from_vec(1, cols, sums)
        }
    }
}

fn aggregate_rows(f: AggFn, m: &Matrix) -> Result<Matrix> {
    let (rows, cols) = m.shape();
    if cols == 0 && !matches!(f, AggFn::Sum | AggFn::SumSq) {
        return Err(SysDsError::runtime("row aggregation over zero columns"));
    }
    let mut out = Vec::with_capacity(rows);
    for i in 0..rows {
        out.push(agg_slice(f, row_values(m, i), cols));
    }
    Matrix::from_vec(rows, 1, out)
}

fn aggregate_cols(f: AggFn, m: &Matrix) -> Result<Matrix> {
    let (rows, cols) = m.shape();
    if rows == 0 && !matches!(f, AggFn::Sum | AggFn::SumSq) {
        return Err(SysDsError::runtime("column aggregation over zero rows"));
    }
    // Column-wise over CSR: accumulate per column in one sweep.
    match f {
        AggFn::Sum | AggFn::Mean | AggFn::SumSq => {
            let mut sums = vec![0.0f64; cols];
            match m {
                Matrix::Dense(d) => {
                    for i in 0..rows {
                        for (j, &v) in d.row(i).iter().enumerate() {
                            sums[j] += if f == AggFn::SumSq { v * v } else { v };
                        }
                    }
                }
                Matrix::Sparse(s) => {
                    for (_, j, v) in s.iter_nonzeros() {
                        sums[j] += if f == AggFn::SumSq { v * v } else { v };
                    }
                }
            }
            if f == AggFn::Mean {
                for v in &mut sums {
                    *v /= rows as f64;
                }
            }
            Matrix::from_vec(1, cols, sums)
        }
        _ => {
            let mut out = Vec::with_capacity(cols);
            for j in 0..cols {
                let col: Vec<f64> = (0..rows).map(|i| m.get(i, j)).collect();
                out.push(agg_slice(f, col, rows));
            }
            Matrix::from_vec(1, cols, out)
        }
    }
}

fn row_values(m: &Matrix, i: usize) -> Vec<f64> {
    match m {
        Matrix::Dense(d) => d.row(i).to_vec(),
        Matrix::Sparse(s) => {
            let mut row = vec![0.0; s.cols()];
            let (cols, vals) = s.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                row[c as usize] = v;
            }
            row
        }
    }
}

fn agg_slice(f: AggFn, values: Vec<f64>, n: usize) -> f64 {
    match f {
        AggFn::Sum => values.iter().sum(),
        AggFn::SumSq => values.iter().map(|v| v * v).sum(),
        AggFn::Mean => values.iter().sum::<f64>() / n as f64,
        AggFn::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
        AggFn::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        AggFn::Var => slice_var(&values),
        AggFn::Sd => slice_var(&values).sqrt(),
    }
}

fn slice_var(values: &[f64]) -> f64 {
    let n = values.len() as f64;
    if n < 2.0 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / n;
    values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1.0)
}

/// Sum of the main diagonal.
pub fn trace(m: &Matrix) -> Result<f64> {
    if m.rows() != m.cols() {
        return Err(SysDsError::runtime("trace of a non-square matrix"));
    }
    Ok((0..m.rows()).map(|i| m.get(i, i)).sum())
}

/// Per-row index (1-based, like DML) of the maximum value.
pub fn row_index_max(m: &Matrix) -> Matrix {
    let (rows, cols) = m.shape();
    let mut out = Vec::with_capacity(rows);
    for i in 0..rows {
        let mut best = f64::NEG_INFINITY;
        let mut arg = 0usize;
        for j in 0..cols {
            let v = m.get(i, j);
            if v > best {
                best = v;
                arg = j;
            }
        }
        out.push((arg + 1) as f64);
    }
    Matrix::from_vec(rows, 1, out).expect("shape correct by construction")
}

/// Column-wise cumulative sum (`cumsum`), matching DML semantics.
pub fn cumsum(m: &Matrix) -> Matrix {
    let (rows, cols) = m.shape();
    let mut out = DenseMatrix::zeros(rows, cols);
    for j in 0..cols {
        let mut acc = 0.0;
        for i in 0..rows {
            acc += m.get(i, j);
            out.set(i, j, acc);
        }
    }
    Matrix::Dense(out)
}

/// Column-wise cumulative product (`cumprod`).
pub fn cumprod(m: &Matrix) -> Matrix {
    let (rows, cols) = m.shape();
    let mut out = DenseMatrix::zeros(rows, cols);
    for j in 0..cols {
        let mut acc = 1.0;
        for i in 0..rows {
            acc *= m.get(i, j);
            out.set(i, j, acc);
        }
    }
    Matrix::Dense(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::gen;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn full_aggregations() {
        let m = sample();
        assert_eq!(aggregate_full(AggFn::Sum, &m).unwrap(), 21.0);
        assert_eq!(aggregate_full(AggFn::Mean, &m).unwrap(), 3.5);
        assert_eq!(aggregate_full(AggFn::Min, &m).unwrap(), 1.0);
        assert_eq!(aggregate_full(AggFn::Max, &m).unwrap(), 6.0);
        assert_eq!(aggregate_full(AggFn::SumSq, &m).unwrap(), 91.0);
        assert!((aggregate_full(AggFn::Var, &m).unwrap() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn sparse_min_includes_structural_zeros() {
        let m = gen::rand_uniform(10, 10, 1.0, 2.0, 0.1, 31).compact();
        assert!(m.is_sparse());
        // all stored values >= 1.0, but min must be 0.
        assert_eq!(aggregate_full(AggFn::Min, &m).unwrap(), 0.0);
        assert!(aggregate_full(AggFn::Max, &m).unwrap() >= 1.0);
    }

    #[test]
    fn sparse_var_accounts_for_zeros() {
        let m = gen::rand_uniform(30, 30, 1.0, 2.0, 0.1, 32).compact();
        let dense = Matrix::Dense(m.to_dense());
        let sv = aggregate_full(AggFn::Var, &m).unwrap();
        let dv = aggregate_full(AggFn::Var, &dense).unwrap();
        assert!((sv - dv).abs() < 1e-9);
    }

    #[test]
    fn row_and_col_sums() {
        let m = sample();
        let r = aggregate_axis(AggFn::Sum, Direction::Row, &m).unwrap();
        assert!(r.approx_eq(&Matrix::from_vec(2, 1, vec![6.0, 15.0]).unwrap(), 1e-12));
        let c = aggregate_axis(AggFn::Sum, Direction::Col, &m).unwrap();
        assert!(c.approx_eq(&Matrix::from_vec(1, 3, vec![5.0, 7.0, 9.0]).unwrap(), 1e-12));
    }

    #[test]
    fn col_means_on_sparse() {
        let m = gen::rand_uniform(50, 4, 0.0, 1.0, 0.2, 33).compact();
        let got = aggregate_axis(AggFn::Mean, Direction::Col, &m).unwrap();
        let dense = Matrix::Dense(m.to_dense());
        let expect = aggregate_axis(AggFn::Mean, Direction::Col, &dense).unwrap();
        assert!(got.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn row_max_and_min() {
        let m = sample();
        let mx = aggregate_axis(AggFn::Max, Direction::Row, &m).unwrap();
        assert!(mx.approx_eq(&Matrix::from_vec(2, 1, vec![3.0, 6.0]).unwrap(), 1e-12));
        let mn = aggregate_axis(AggFn::Min, Direction::Col, &m).unwrap();
        assert!(mn.approx_eq(&Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap(), 1e-12));
    }

    #[test]
    fn full_direction_yields_one_by_one() {
        let m = sample();
        let s = aggregate_axis(AggFn::Sum, Direction::Full, &m).unwrap();
        assert_eq!(s.shape(), (1, 1));
        assert_eq!(s.get(0, 0), 21.0);
    }

    #[test]
    fn trace_square_only() {
        let m = Matrix::from_rows(&[&[1.0, 9.0], &[9.0, 2.0]]).unwrap();
        assert_eq!(trace(&m).unwrap(), 3.0);
        assert!(trace(&sample()).is_err());
    }

    #[test]
    fn row_index_max_is_one_based() {
        let m = Matrix::from_rows(&[&[1.0, 9.0, 3.0], &[7.0, 2.0, 1.0]]).unwrap();
        let idx = row_index_max(&m);
        assert_eq!(idx.to_vec(), vec![2.0, 1.0]);
    }

    #[test]
    fn cumsum_column_wise() {
        let m = sample();
        let c = cumsum(&m);
        assert!(c.approx_eq(
            &Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[5.0, 7.0, 9.0]]).unwrap(),
            1e-12
        ));
    }

    #[test]
    fn cumprod_column_wise() {
        let m = sample();
        let c = cumprod(&m);
        assert!(c.approx_eq(
            &Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 10.0, 18.0]]).unwrap(),
            1e-12
        ));
    }

    #[test]
    fn kahan_sum_is_accurate() {
        // 1 + 1e-16 repeated: naive f64 sum loses the small terms entirely.
        let n = 10_000;
        let mut data = vec![1e-16; n];
        data[0] = 1.0;
        let m = Matrix::from_vec(n, 1, data).unwrap();
        let s = aggregate_full(AggFn::Sum, &m).unwrap();
        let expect = 1.0 + (n as f64 - 1.0) * 1e-16;
        assert!((s - expect).abs() < 1e-18, "got {s}, want {expect}");
    }

    #[test]
    fn parallel_aggregates_match_sequential() {
        // Big enough (> PAR_MIN_CELLS) to take the multi-partition path.
        let m = gen::rand_uniform(400, 100, -3.0, 3.0, 1.0, 40);
        for f in [
            AggFn::Sum,
            AggFn::SumSq,
            AggFn::Mean,
            AggFn::Min,
            AggFn::Max,
            AggFn::Var,
            AggFn::Sd,
        ] {
            let seq = aggregate_full(f, &m).unwrap();
            let par = aggregate_full_mt(f, &m, 4).unwrap();
            assert!((seq - par).abs() < 1e-9, "{f:?}: {seq} vs {par}");
        }
        for dir in [Direction::Row, Direction::Col] {
            for f in [AggFn::Sum, AggFn::Mean, AggFn::SumSq, AggFn::Max] {
                let seq = aggregate_axis(f, dir, &m).unwrap();
                let par = aggregate_axis_mt(f, dir, &m, 4).unwrap();
                assert!(seq.approx_eq(&par, 1e-9), "{f:?} {dir:?}");
            }
        }
    }

    #[test]
    fn parallel_kahan_merge_stays_accurate() {
        let n = 70_000; // > PAR_MIN_CELLS, so the partitioned path engages
        let mut data = vec![1e-16; n];
        data[0] = 1.0;
        let m = Matrix::from_vec(n / 2, 2, data).unwrap();
        let s = aggregate_full_mt(AggFn::Sum, &m, 4).unwrap();
        let expect = 1.0 + (n as f64 - 1.0) * 1e-16;
        assert!((s - expect).abs() < 1e-12, "got {s}, want {expect}");
    }

    #[test]
    fn empty_matrix_sum_is_zero() {
        let m = Matrix::zeros(0, 3);
        assert_eq!(aggregate_full(AggFn::Sum, &m).unwrap(), 0.0);
        assert!(aggregate_full(AggFn::Mean, &m).is_err());
    }
}

/// `quantile(X, p)` over all cells via linear interpolation (R type 7).
pub fn quantile(m: &Matrix, p: f64) -> Result<f64> {
    if !(0.0..=1.0).contains(&p) {
        return Err(SysDsError::runtime("quantile p must be in [0, 1]"));
    }
    let mut v = m.to_dense().into_vec();
    if v.is_empty() {
        return Err(SysDsError::runtime("quantile of an empty matrix"));
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = p * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    Ok(if lo == hi {
        v[lo]
    } else {
        v[lo] + (pos - lo as f64) * (v[hi] - v[lo])
    })
}

/// `median(X)` over all cells.
pub fn median(m: &Matrix) -> Result<f64> {
    quantile(m, 0.5)
}

#[cfg(test)]
mod quantile_tests {
    use super::*;

    #[test]
    fn quantile_interpolates() {
        let m = Matrix::from_vec(5, 1, vec![10.0, 20.0, 30.0, 40.0, 50.0]).unwrap();
        assert_eq!(quantile(&m, 0.0).unwrap(), 10.0);
        assert_eq!(quantile(&m, 1.0).unwrap(), 50.0);
        assert_eq!(quantile(&m, 0.5).unwrap(), 30.0);
        assert_eq!(quantile(&m, 0.25).unwrap(), 20.0);
        assert_eq!(quantile(&m, 0.1).unwrap(), 14.0);
    }

    #[test]
    fn median_even_count() {
        let m = Matrix::from_vec(4, 1, vec![1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(median(&m).unwrap(), 2.5);
    }

    #[test]
    fn quantile_validation() {
        let m = Matrix::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        assert!(quantile(&m, -0.1).is_err());
        assert!(quantile(&m, 1.1).is_err());
        assert!(quantile(&Matrix::zeros(0, 0), 0.5).is_err());
    }
}
