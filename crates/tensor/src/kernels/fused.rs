//! One-pass execution of fused cell-wise operator pipelines (paper §4.2).
//!
//! The compiler collapses single-consumer chains of element-wise operators
//! (optionally topped by an aggregate) into a [`FusedTemplate`]: a tiny
//! postorder expression program over the chain's leaf inputs. This module
//! evaluates such templates in a single pass over the data — no per-operator
//! intermediate matrices — row-partition-parallel like
//! [`super::matmult`], with a sparse-exploiting path when the template maps
//! zero cells to zero under the actual scalar operands.

use super::aggregate::{AggFn, Direction, Kahan};
use super::elementwise::{BinaryOp, UnaryOp};
use crate::matrix::{DenseMatrix, Matrix, SparseMatrix};
use sysds_common::{Result, SysDsError};

/// One step of a fused expression program. Operand indices refer to earlier
/// nodes in [`FusedTemplate::nodes`] (strict postorder), `Input(k)` to the
/// k-th leaf operand of the fused instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TemplateNode {
    /// The k-th leaf operand (matrix or scalar) of the fused instruction.
    Input(usize),
    /// A literal folded into the template at compile time.
    Const(f64),
    /// Unary element-wise operator over an earlier node.
    Unary(UnaryOp, usize),
    /// Binary element-wise operator over two earlier nodes.
    Binary(BinaryOp, usize, usize),
}

/// A fused cell-wise expression, optionally topped by an aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedTemplate {
    /// Expression program in postorder; operands index earlier entries.
    pub nodes: Vec<TemplateNode>,
    /// Index of the node producing the cell-wise result.
    pub root: usize,
    /// Aggregate applied over the cell-wise result, if any.
    pub agg: Option<(AggFn, Direction)>,
    /// Number of leaf operands the fused instruction receives.
    pub num_inputs: usize,
    /// How many per-operator intermediate matrices fusion eliminated
    /// (drives the bytes-avoided statistic).
    pub saved_intermediates: usize,
}

impl FusedTemplate {
    /// Check structural invariants: postorder operand indices, in-range
    /// inputs and root. Cheap; run once per evaluation.
    pub fn validate(&self) -> Result<()> {
        for (i, node) in self.nodes.iter().enumerate() {
            let ok = match node {
                TemplateNode::Input(k) => *k < self.num_inputs,
                TemplateNode::Const(_) => true,
                TemplateNode::Unary(_, a) => *a < i,
                TemplateNode::Binary(_, a, b) => *a < i && *b < i,
            };
            if !ok {
                return Err(SysDsError::runtime("fused: malformed template"));
            }
        }
        if self.root >= self.nodes.len() {
            return Err(SysDsError::runtime("fused: template root out of range"));
        }
        Ok(())
    }

    /// Deterministic human-readable form, e.g. `sum((X-Y)^2)`. Used as the
    /// instruction opcode so heavy-hitter stats, lineage, and the
    /// estimate-vs-actual audit attribute fused work per template.
    pub fn signature(&self) -> String {
        let body = self.render(self.root);
        match self.agg {
            None => body,
            Some((f, d)) => {
                let name = agg_name(f, d);
                if is_parenthesized(&body) {
                    format!("{name}{body}")
                } else {
                    format!("{name}({body})")
                }
            }
        }
    }

    fn render(&self, idx: usize) -> String {
        match &self.nodes[idx] {
            TemplateNode::Input(k) => input_name(*k),
            TemplateNode::Const(c) => {
                if *c < 0.0 {
                    format!("({c})")
                } else {
                    format!("{c}")
                }
            }
            TemplateNode::Unary(op, a) => {
                let inner = self.render(*a);
                match op {
                    UnaryOp::Neg => format!("(-{inner})"),
                    _ if is_parenthesized(&inner) => format!("{}{inner}", op.opcode()),
                    _ => format!("{}({inner})", op.opcode()),
                }
            }
            TemplateNode::Binary(op, a, b) => {
                let (l, r) = (self.render(*a), self.render(*b));
                let oc = op.opcode();
                if oc.chars().all(|c| c.is_ascii_alphanumeric()) {
                    // function-style operators: min, max
                    format!("{oc}({l},{r})")
                } else {
                    format!("({l}{oc}{r})")
                }
            }
        }
    }
}

fn input_name(k: usize) -> String {
    const NAMES: [&str; 6] = ["X", "Y", "Z", "W", "U", "V"];
    NAMES
        .get(k)
        .map(|s| s.to_string())
        .unwrap_or_else(|| format!("in{k}"))
}

fn agg_name(f: AggFn, d: Direction) -> &'static str {
    match (d, f) {
        (Direction::Full, AggFn::Sum) => "sum",
        (Direction::Full, AggFn::SumSq) => "sumSq",
        (Direction::Full, AggFn::Mean) => "mean",
        (Direction::Full, AggFn::Min) => "min",
        (Direction::Full, AggFn::Max) => "max",
        (Direction::Full, AggFn::Var) => "var",
        (Direction::Full, AggFn::Sd) => "sd",
        (Direction::Row, AggFn::Sum) => "rowSums",
        (Direction::Row, AggFn::SumSq) => "rowSumSqs",
        (Direction::Row, AggFn::Mean) => "rowMeans",
        (Direction::Row, AggFn::Min) => "rowMins",
        (Direction::Row, AggFn::Max) => "rowMaxs",
        (Direction::Row, AggFn::Var) => "rowVars",
        (Direction::Row, AggFn::Sd) => "rowSds",
        (Direction::Col, AggFn::Sum) => "colSums",
        (Direction::Col, AggFn::SumSq) => "colSumSqs",
        (Direction::Col, AggFn::Mean) => "colMeans",
        (Direction::Col, AggFn::Min) => "colMins",
        (Direction::Col, AggFn::Max) => "colMaxs",
        (Direction::Col, AggFn::Var) => "colVars",
        (Direction::Col, AggFn::Sd) => "colSds",
    }
}

/// Whether `s` is wrapped in one outer pair of parentheses.
fn is_parenthesized(s: &str) -> bool {
    if !(s.starts_with('(') && s.ends_with(')')) {
        return false;
    }
    let mut depth = 0i64;
    for (i, ch) in s.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return i == s.len() - 1;
                }
            }
            _ => {}
        }
    }
    false
}

/// A leaf operand at evaluation time.
#[derive(Debug, Clone, Copy)]
pub enum FusedInput<'a> {
    Scalar(f64),
    Matrix(&'a Matrix),
}

/// The result of a fused evaluation: scalar for full aggregates, matrix
/// otherwise.
#[derive(Debug)]
pub enum FusedOutput {
    Scalar(f64),
    Matrix(Matrix),
}

/// Evaluate `t` over `inputs` in one pass, splitting row partitions across
/// up to `threads` scoped threads. All matrix inputs must share one shape
/// (broadcasting is excluded at fusion time); at least one input must be a
/// matrix.
pub fn eval(t: &FusedTemplate, inputs: &[FusedInput], threads: usize) -> Result<FusedOutput> {
    t.validate()?;
    if inputs.len() != t.num_inputs {
        return Err(SysDsError::runtime(format!(
            "fused: template expects {} inputs, got {}",
            t.num_inputs,
            inputs.len()
        )));
    }
    let mut shape: Option<(usize, usize)> = None;
    for inp in inputs {
        if let FusedInput::Matrix(mat) = inp {
            match shape {
                None => shape = Some(mat.shape()),
                Some(s) if s == mat.shape() => {}
                Some(s) => {
                    return Err(SysDsError::DimensionMismatch {
                        op: "fused",
                        lhs: s,
                        rhs: mat.shape(),
                    });
                }
            }
        }
    }
    let Some((m, n)) = shape else {
        return Err(SysDsError::runtime("fused: template has no matrix input"));
    };
    if m == 0 || n == 0 {
        return eval_empty(t, m, n);
    }
    if let Some(out) = try_sparse(t, inputs, m, n)? {
        return Ok(out);
    }
    dense_eval(t, inputs, m, n, threads)
}

/// Empty-shape handling, mirroring the unfused kernels' semantics exactly.
fn eval_empty(t: &FusedTemplate, m: usize, n: usize) -> Result<FusedOutput> {
    match t.agg {
        None => Ok(FusedOutput::Matrix(Matrix::zeros(m, n))),
        Some((f, Direction::Full)) => match f {
            AggFn::Sum | AggFn::SumSq => Ok(FusedOutput::Scalar(0.0)),
            _ => Err(SysDsError::runtime("aggregation over empty matrix")),
        },
        Some((f, Direction::Row)) => {
            if n == 0 && !matches!(f, AggFn::Sum | AggFn::SumSq) {
                return Err(SysDsError::runtime("row aggregation over zero columns"));
            }
            Ok(FusedOutput::Matrix(Matrix::zeros(m, 1)))
        }
        Some((f, Direction::Col)) => {
            if m == 0 && !matches!(f, AggFn::Sum | AggFn::SumSq) {
                return Err(SysDsError::runtime("column aggregation over zero rows"));
            }
            Ok(FusedOutput::Matrix(Matrix::zeros(1, n)))
        }
    }
}

/// Evaluate the template at one cell: the matrix leaf takes value `v`,
/// scalar leaves their fixed values. `scratch` is reused across calls.
fn eval_cell(
    t: &FusedTemplate,
    scalars: &[f64],
    leaf: usize,
    v: f64,
    scratch: &mut Vec<f64>,
) -> f64 {
    scratch.clear();
    for node in &t.nodes {
        let val = match node {
            TemplateNode::Input(k) => {
                if *k == leaf {
                    v
                } else {
                    scalars[*k]
                }
            }
            TemplateNode::Const(c) => *c,
            TemplateNode::Unary(op, a) => op.apply(scratch[*a]),
            TemplateNode::Binary(op, a, b) => op.apply(scratch[*a], scratch[*b]),
        };
        scratch.push(val);
    }
    scratch[t.root]
}

/// Sparse-exploiting path: exactly one matrix input, stored sparse, and the
/// template maps zero cells to exactly `0.0` under the actual scalar
/// operands — the same runtime check `binary_ms`/`unary` perform. Touches
/// stored non-zeros only. Returns `None` when the computation does not
/// qualify; the dense path then handles it.
fn try_sparse(
    t: &FusedTemplate,
    inputs: &[FusedInput],
    m: usize,
    n: usize,
) -> Result<Option<FusedOutput>> {
    let mut only = None;
    for (k, inp) in inputs.iter().enumerate() {
        if let FusedInput::Matrix(mat) = inp {
            if only.is_some() {
                return Ok(None);
            }
            only = Some((k, *mat));
        }
    }
    let Some((leaf, Matrix::Sparse(s))) = only else {
        return Ok(None);
    };
    let scalars: Vec<f64> = inputs
        .iter()
        .map(|i| match i {
            FusedInput::Scalar(v) => *v,
            FusedInput::Matrix(_) => 0.0,
        })
        .collect();
    let mut scratch = Vec::with_capacity(t.nodes.len());
    if eval_cell(t, &scalars, leaf, 0.0, &mut scratch) != 0.0 {
        return Ok(None);
    }
    let cells = m * n;
    match t.agg {
        None => {
            let mut triples = Vec::with_capacity(s.nnz());
            for (i, j, v) in s.iter_nonzeros() {
                let r = eval_cell(t, &scalars, leaf, v, &mut scratch);
                if r != 0.0 {
                    triples.push((i, j, r));
                }
            }
            Ok(Some(FusedOutput::Matrix(Matrix::Sparse(
                SparseMatrix::from_triples(m, n, triples),
            ))))
        }
        Some((f @ (AggFn::Sum | AggFn::SumSq | AggFn::Mean), Direction::Full)) => {
            let mut acc = Kahan::default();
            for (_, _, v) in s.iter_nonzeros() {
                let r = eval_cell(t, &scalars, leaf, v, &mut scratch);
                acc.add(if f == AggFn::SumSq { r * r } else { r });
            }
            let out = if f == AggFn::Mean {
                acc.sum / cells as f64
            } else {
                acc.sum
            };
            Ok(Some(FusedOutput::Scalar(out)))
        }
        Some((f @ (AggFn::Min | AggFn::Max), Direction::Full)) => {
            let (init, pick) = min_max(f);
            let mut acc = init;
            for (_, _, v) in s.iter_nonzeros() {
                acc = pick(acc, eval_cell(t, &scalars, leaf, v, &mut scratch));
            }
            if s.nnz() < cells {
                // structural zeros map to 0.0 (checked above)
                acc = pick(acc, 0.0);
            }
            Ok(Some(FusedOutput::Scalar(acc)))
        }
        Some((f @ (AggFn::Sum | AggFn::SumSq | AggFn::Mean), Direction::Row)) => {
            let mut out = Vec::with_capacity(m);
            for i in 0..m {
                let (_, vals) = s.row(i);
                let mut sum = 0.0f64;
                for &v in vals {
                    let r = eval_cell(t, &scalars, leaf, v, &mut scratch);
                    sum += if f == AggFn::SumSq { r * r } else { r };
                }
                out.push(if f == AggFn::Mean {
                    sum / n as f64
                } else {
                    sum
                });
            }
            Ok(Some(FusedOutput::Matrix(Matrix::from_vec(m, 1, out)?)))
        }
        Some((f @ (AggFn::Sum | AggFn::SumSq | AggFn::Mean), Direction::Col)) => {
            let mut sums = vec![0.0f64; n];
            for (_, j, v) in s.iter_nonzeros() {
                let r = eval_cell(t, &scalars, leaf, v, &mut scratch);
                sums[j] += if f == AggFn::SumSq { r * r } else { r };
            }
            if f == AggFn::Mean {
                for v in &mut sums {
                    *v /= m as f64;
                }
            }
            Ok(Some(FusedOutput::Matrix(Matrix::from_vec(1, n, sums)?)))
        }
        // Row/col min/max must observe structural zeros; densify instead.
        Some(_) => Ok(None),
    }
}

fn min_max(f: AggFn) -> (f64, fn(f64, f64) -> f64) {
    if f == AggFn::Min {
        (f64::INFINITY, f64::min)
    } else {
        (f64::NEG_INFINITY, f64::max)
    }
}

/// A leaf as seen by the dense evaluator.
#[derive(Clone, Copy)]
enum Leaf<'a> {
    Scalar(f64),
    Dense(&'a [f64]),
}

/// How a template node resolves during block evaluation: a folded scalar, a
/// borrowed slice of an input, or a computed scratch buffer.
#[derive(Clone, Copy)]
enum Val {
    Scalar(f64),
    Leaf(usize),
    Node(usize),
}

enum Operand<'a> {
    Scalar(f64),
    Slice(&'a [f64]),
}

enum RangeVal<'a> {
    Scalar(f64),
    Slice(&'a [f64]),
}

fn leaf_slice<'a>(leaf: &Leaf<'a>, off: usize, len: usize) -> &'a [f64] {
    match *leaf {
        Leaf::Dense(s) => &s[off..off + len],
        Leaf::Scalar(_) => unreachable!("scalar leaves fold into Val::Scalar"),
    }
}

fn operand<'a>(
    kind: Val,
    done: &'a [Vec<f64>],
    leaves: &'a [Leaf<'a>],
    off: usize,
    len: usize,
) -> Operand<'a> {
    match kind {
        Val::Scalar(v) => Operand::Scalar(v),
        Val::Leaf(k) => Operand::Slice(leaf_slice(&leaves[k], off, len)),
        Val::Node(j) => Operand::Slice(&done[j][..len]),
    }
}

/// Block evaluator: walks the template once per cell block, keeping one
/// scratch buffer per computed node (block-sized, reused across blocks), so
/// peak extra memory is `O(nodes * block)` regardless of matrix size.
struct Evaluator<'a> {
    t: &'a FusedTemplate,
    leaves: &'a [Leaf<'a>],
    kinds: Vec<Val>,
    scratch: Vec<Vec<f64>>,
}

impl<'a> Evaluator<'a> {
    fn new(t: &'a FusedTemplate, leaves: &'a [Leaf<'a>]) -> Evaluator<'a> {
        // Fold scalar-only subtrees once: their value is block-independent.
        let mut kinds: Vec<Val> = Vec::with_capacity(t.nodes.len());
        for (i, node) in t.nodes.iter().enumerate() {
            let v = match node {
                TemplateNode::Input(k) => match leaves[*k] {
                    Leaf::Scalar(v) => Val::Scalar(v),
                    Leaf::Dense(_) => Val::Leaf(*k),
                },
                TemplateNode::Const(c) => Val::Scalar(*c),
                TemplateNode::Unary(op, a) => match kinds[*a] {
                    Val::Scalar(v) => Val::Scalar(op.apply(v)),
                    _ => Val::Node(i),
                },
                TemplateNode::Binary(op, a, b) => match (kinds[*a], kinds[*b]) {
                    (Val::Scalar(x), Val::Scalar(y)) => Val::Scalar(op.apply(x, y)),
                    _ => Val::Node(i),
                },
            };
            kinds.push(v);
        }
        let scratch = vec![Vec::new(); t.nodes.len()];
        Evaluator {
            t,
            leaves,
            kinds,
            scratch,
        }
    }

    /// Evaluate the template root over the flat row-major cell range
    /// `[off, off + len)` of the operands.
    fn eval_range(&mut self, off: usize, len: usize) -> RangeVal<'_> {
        for i in 0..self.t.nodes.len() {
            if !matches!(self.kinds[i], Val::Node(_)) {
                continue;
            }
            let (done, rest) = self.scratch.split_at_mut(i);
            let dst = &mut rest[0];
            dst.clear();
            dst.resize(len, 0.0);
            match &self.t.nodes[i] {
                TemplateNode::Unary(op, a) => {
                    match operand(self.kinds[*a], done, self.leaves, off, len) {
                        Operand::Scalar(x) => dst.fill(op.apply(x)),
                        Operand::Slice(s) => {
                            for (d, &x) in dst.iter_mut().zip(s) {
                                *d = op.apply(x);
                            }
                        }
                    }
                }
                TemplateNode::Binary(op, a, b) => {
                    let oa = operand(self.kinds[*a], done, self.leaves, off, len);
                    let ob = operand(self.kinds[*b], done, self.leaves, off, len);
                    match (oa, ob) {
                        (Operand::Scalar(x), Operand::Scalar(y)) => dst.fill(op.apply(x, y)),
                        (Operand::Scalar(x), Operand::Slice(sb)) => {
                            for (d, &y) in dst.iter_mut().zip(sb) {
                                *d = op.apply(x, y);
                            }
                        }
                        (Operand::Slice(sa), Operand::Scalar(y)) => {
                            for (d, &x) in dst.iter_mut().zip(sa) {
                                *d = op.apply(x, y);
                            }
                        }
                        (Operand::Slice(sa), Operand::Slice(sb)) => {
                            for ((d, &x), &y) in dst.iter_mut().zip(sa).zip(sb) {
                                *d = op.apply(x, y);
                            }
                        }
                    }
                }
                TemplateNode::Input(_) | TemplateNode::Const(_) => {
                    unreachable!("leaves never classify as Val::Node")
                }
            }
        }
        match self.kinds[self.t.root] {
            Val::Scalar(v) => RangeVal::Scalar(v),
            Val::Leaf(k) => RangeVal::Slice(leaf_slice(&self.leaves[k], off, len)),
            Val::Node(i) => RangeVal::Slice(&self.scratch[i][..len]),
        }
    }
}

/// Rows per evaluation block: caps scratch at ~8k cells per template node.
fn rows_per_block(n: usize) -> usize {
    const ROW_BLOCK_CELLS: usize = 8192;
    (ROW_BLOCK_CELLS / n.max(1)).max(1)
}

/// Flat `(offset, len)` cell blocks covering rows `lo..hi`.
fn blocks(lo: usize, hi: usize, n: usize) -> impl Iterator<Item = (usize, usize)> {
    let block = rows_per_block(n);
    let mut r = lo;
    std::iter::from_fn(move || {
        if r >= hi {
            return None;
        }
        let r2 = (r + block).min(hi);
        let item = (r * n, (r2 - r) * n);
        r = r2;
        Some(item)
    })
}

fn dense_eval(
    t: &FusedTemplate,
    inputs: &[FusedInput],
    m: usize,
    n: usize,
    threads: usize,
) -> Result<FusedOutput> {
    // Densify non-exploitable sparse leaves once up front — the unfused
    // pipeline would densify them at the first non-zero-preserving operator.
    let owned: Vec<Option<DenseMatrix>> = inputs
        .iter()
        .map(|i| match i {
            FusedInput::Matrix(Matrix::Sparse(s)) => Some(s.to_dense()),
            _ => None,
        })
        .collect();
    let leaves: Vec<Leaf> = inputs
        .iter()
        .zip(&owned)
        .map(|(i, o)| match (i, o) {
            (FusedInput::Scalar(v), _) => Leaf::Scalar(*v),
            (FusedInput::Matrix(Matrix::Dense(d)), _) => Leaf::Dense(d.values()),
            (FusedInput::Matrix(Matrix::Sparse(_)), Some(d)) => Leaf::Dense(d.values()),
            (FusedInput::Matrix(Matrix::Sparse(_)), None) => unreachable!("densified above"),
        })
        .collect();
    let leaves = &leaves[..];
    let parts = super::par_row_partitions(m, n, threads);

    match t.agg {
        None => {
            let mut out = DenseMatrix::zeros(m, n);
            if parts.len() <= 1 {
                fill_chunk(t, leaves, 0, m, n, out.values_mut());
            } else {
                let mut rest = out.values_mut();
                crossbeam::thread::scope(|s| {
                    for &(lo, hi) in &parts {
                        let (chunk, r2) = rest.split_at_mut((hi - lo) * n);
                        rest = r2;
                        s.spawn(move |_| fill_chunk(t, leaves, lo, hi, n, chunk));
                    }
                })
                .expect("fused worker panicked");
            }
            Ok(FusedOutput::Matrix(Matrix::Dense(out).compact_estimated()))
        }
        Some((f, Direction::Full)) => dense_full(t, leaves, &parts, m, n, f),
        Some((f, Direction::Row)) => dense_row(t, leaves, &parts, m, n, f),
        Some((f, Direction::Col)) => dense_col(t, leaves, &parts, m, n, f),
    }
}

fn fill_chunk(
    t: &FusedTemplate,
    leaves: &[Leaf],
    lo: usize,
    hi: usize,
    n: usize,
    chunk: &mut [f64],
) {
    let mut ev = Evaluator::new(t, leaves);
    for (off, len) in blocks(lo, hi, n) {
        let start = off - lo * n;
        let dst = &mut chunk[start..start + len];
        match ev.eval_range(off, len) {
            RangeVal::Scalar(v) => dst.fill(v),
            RangeVal::Slice(s) => dst.copy_from_slice(s),
        }
    }
}

fn unfusable(f: AggFn) -> SysDsError {
    SysDsError::runtime(format!("fused: aggregate {f:?} is not fusable"))
}

fn dense_full(
    t: &FusedTemplate,
    leaves: &[Leaf],
    parts: &[(usize, usize)],
    m: usize,
    n: usize,
    f: AggFn,
) -> Result<FusedOutput> {
    match f {
        AggFn::Sum | AggFn::SumSq | AggFn::Mean => {
            let squared = f == AggFn::SumSq;
            let partials = super::run_partitions(parts, |lo, hi| {
                let mut ev = Evaluator::new(t, leaves);
                let mut acc = Kahan::default();
                for (off, len) in blocks(lo, hi, n) {
                    match ev.eval_range(off, len) {
                        RangeVal::Scalar(v) => {
                            let v = if squared { v * v } else { v };
                            for _ in 0..len {
                                acc.add(v);
                            }
                        }
                        RangeVal::Slice(s) => {
                            for &v in s {
                                acc.add(if squared { v * v } else { v });
                            }
                        }
                    }
                }
                acc
            });
            let mut acc = Kahan::default();
            for p in partials {
                acc.merge(p);
            }
            let v = if f == AggFn::Mean {
                acc.sum / (m * n) as f64
            } else {
                acc.sum
            };
            Ok(FusedOutput::Scalar(v))
        }
        AggFn::Min | AggFn::Max => {
            let (init, pick) = min_max(f);
            let partials = super::run_partitions(parts, |lo, hi| {
                let mut ev = Evaluator::new(t, leaves);
                let mut acc = init;
                for (off, len) in blocks(lo, hi, n) {
                    match ev.eval_range(off, len) {
                        RangeVal::Scalar(v) => acc = pick(acc, v),
                        RangeVal::Slice(s) => {
                            for &v in s {
                                acc = pick(acc, v);
                            }
                        }
                    }
                }
                acc
            });
            Ok(FusedOutput::Scalar(partials.into_iter().fold(init, pick)))
        }
        AggFn::Var | AggFn::Sd => Err(unfusable(f)),
    }
}

fn row_agg(f: AggFn, row: &[f64]) -> f64 {
    match f {
        AggFn::Sum => row.iter().sum(),
        AggFn::SumSq => row.iter().map(|v| v * v).sum(),
        AggFn::Mean => row.iter().sum::<f64>() / row.len() as f64,
        AggFn::Min => row.iter().copied().fold(f64::INFINITY, f64::min),
        AggFn::Max => row.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        AggFn::Var | AggFn::Sd => unreachable!("rejected before dispatch"),
    }
}

fn const_row_agg(f: AggFn, v: f64, n: usize) -> f64 {
    match f {
        AggFn::Sum => v * n as f64,
        AggFn::SumSq => v * v * n as f64,
        AggFn::Mean => v,
        // Fold from the identity like the unfused kernels, so a NaN row
        // yields the identity (f64::min/max skip NaN), not NaN.
        AggFn::Min => f64::min(f64::INFINITY, v),
        AggFn::Max => f64::max(f64::NEG_INFINITY, v),
        AggFn::Var | AggFn::Sd => unreachable!("rejected before dispatch"),
    }
}

fn dense_row(
    t: &FusedTemplate,
    leaves: &[Leaf],
    parts: &[(usize, usize)],
    m: usize,
    n: usize,
    f: AggFn,
) -> Result<FusedOutput> {
    if matches!(f, AggFn::Var | AggFn::Sd) {
        return Err(unfusable(f));
    }
    let partials = super::run_partitions(parts, |lo, hi| {
        let mut ev = Evaluator::new(t, leaves);
        let mut out = Vec::with_capacity(hi - lo);
        for (off, len) in blocks(lo, hi, n) {
            match ev.eval_range(off, len) {
                RangeVal::Scalar(v) => {
                    for _ in 0..len / n {
                        out.push(const_row_agg(f, v, n));
                    }
                }
                RangeVal::Slice(s) => {
                    for row in s.chunks(n) {
                        out.push(row_agg(f, row));
                    }
                }
            }
        }
        out
    });
    Ok(FusedOutput::Matrix(Matrix::from_vec(
        m,
        1,
        partials.concat(),
    )?))
}

fn dense_col(
    t: &FusedTemplate,
    leaves: &[Leaf],
    parts: &[(usize, usize)],
    m: usize,
    n: usize,
    f: AggFn,
) -> Result<FusedOutput> {
    match f {
        AggFn::Sum | AggFn::SumSq | AggFn::Mean => {
            let squared = f == AggFn::SumSq;
            let partials = super::run_partitions(parts, |lo, hi| {
                let mut ev = Evaluator::new(t, leaves);
                let mut sums = vec![0.0f64; n];
                for (off, len) in blocks(lo, hi, n) {
                    match ev.eval_range(off, len) {
                        RangeVal::Scalar(v) => {
                            let v = if squared { v * v } else { v };
                            let rows = (len / n) as f64;
                            for s in sums.iter_mut() {
                                *s += v * rows;
                            }
                        }
                        RangeVal::Slice(s) => {
                            for row in s.chunks(n) {
                                for (acc, &v) in sums.iter_mut().zip(row) {
                                    *acc += if squared { v * v } else { v };
                                }
                            }
                        }
                    }
                }
                sums
            });
            let mut sums = vec![0.0f64; n];
            for p in partials {
                for (acc, v) in sums.iter_mut().zip(p) {
                    *acc += v;
                }
            }
            if f == AggFn::Mean {
                for v in &mut sums {
                    *v /= m as f64;
                }
            }
            Ok(FusedOutput::Matrix(Matrix::from_vec(1, n, sums)?))
        }
        AggFn::Min | AggFn::Max => {
            let (init, pick) = min_max(f);
            let partials = super::run_partitions(parts, |lo, hi| {
                let mut ev = Evaluator::new(t, leaves);
                let mut acc = vec![init; n];
                for (off, len) in blocks(lo, hi, n) {
                    match ev.eval_range(off, len) {
                        RangeVal::Scalar(v) => {
                            for a in acc.iter_mut() {
                                *a = pick(*a, v);
                            }
                        }
                        RangeVal::Slice(s) => {
                            for row in s.chunks(n) {
                                for (a, &v) in acc.iter_mut().zip(row) {
                                    *a = pick(*a, v);
                                }
                            }
                        }
                    }
                }
                acc
            });
            let mut acc = vec![init; n];
            for p in partials {
                for (a, v) in acc.iter_mut().zip(p) {
                    *a = pick(*a, v);
                }
            }
            Ok(FusedOutput::Matrix(Matrix::from_vec(1, n, acc)?))
        }
        AggFn::Var | AggFn::Sd => Err(unfusable(f)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{aggregate, elementwise, gen};

    /// sum((X - Y)^2)
    fn sub_sq_sum() -> FusedTemplate {
        FusedTemplate {
            nodes: vec![
                TemplateNode::Input(0),
                TemplateNode::Input(1),
                TemplateNode::Binary(BinaryOp::Sub, 0, 1),
                TemplateNode::Const(2.0),
                TemplateNode::Binary(BinaryOp::Pow, 2, 3),
            ],
            root: 4,
            agg: Some((AggFn::Sum, Direction::Full)),
            num_inputs: 2,
            saved_intermediates: 2,
        }
    }

    /// (X - Y)^2 without the aggregate.
    fn sub_sq() -> FusedTemplate {
        FusedTemplate {
            agg: None,
            saved_intermediates: 1,
            ..sub_sq_sum()
        }
    }

    /// X * s (scalar leaf) — zero-preserving for any finite s.
    fn mul_scalar() -> FusedTemplate {
        FusedTemplate {
            nodes: vec![
                TemplateNode::Input(0),
                TemplateNode::Input(1),
                TemplateNode::Binary(BinaryOp::Mul, 0, 1),
            ],
            root: 2,
            agg: None,
            num_inputs: 2,
            saved_intermediates: 0,
        }
    }

    fn unfused_sub_sq(x: &Matrix, y: &Matrix) -> Matrix {
        let d = elementwise::binary_mm(BinaryOp::Sub, x, y).unwrap();
        elementwise::binary_ms(BinaryOp::Pow, &d, 2.0)
    }

    #[test]
    fn signature_renders_infix() {
        assert_eq!(sub_sq_sum().signature(), "sum((X-Y)^2)");
        assert_eq!(sub_sq().signature(), "((X-Y)^2)");
        assert_eq!(mul_scalar().signature(), "(X*Y)");
    }

    #[test]
    fn validate_rejects_malformed() {
        let bad = FusedTemplate {
            nodes: vec![TemplateNode::Binary(BinaryOp::Add, 0, 1)],
            root: 0,
            agg: None,
            num_inputs: 0,
            saved_intermediates: 0,
        };
        assert!(bad.validate().is_err());
        let no_root = FusedTemplate {
            nodes: vec![],
            root: 0,
            agg: None,
            num_inputs: 0,
            saved_intermediates: 0,
        };
        assert!(no_root.validate().is_err());
    }

    #[test]
    fn dense_full_sum_matches_composition() {
        let x = gen::rand_uniform(40, 7, -1.0, 1.0, 1.0, 1);
        let y = gen::rand_uniform(40, 7, -1.0, 1.0, 1.0, 2);
        let t = sub_sq_sum();
        let got = match eval(&t, &[FusedInput::Matrix(&x), FusedInput::Matrix(&y)], 1).unwrap() {
            FusedOutput::Scalar(v) => v,
            other => panic!("expected scalar, got {other:?}"),
        };
        let want = aggregate::aggregate_full(AggFn::Sum, &unfused_sub_sq(&x, &y)).unwrap();
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }

    #[test]
    fn parallel_matches_sequential() {
        // Big enough to take the multi-partition path.
        let x = gen::rand_uniform(300, 120, -2.0, 2.0, 1.0, 3);
        let y = gen::rand_uniform(300, 120, -2.0, 2.0, 1.0, 4);
        let ins = [FusedInput::Matrix(&x), FusedInput::Matrix(&y)];
        for t in [sub_sq_sum(), sub_sq()] {
            let a = eval(&t, &ins, 1).unwrap();
            let b = eval(&t, &ins, 4).unwrap();
            match (a, b) {
                (FusedOutput::Scalar(u), FusedOutput::Scalar(v)) => {
                    assert!((u - v).abs() < 1e-9)
                }
                (FusedOutput::Matrix(u), FusedOutput::Matrix(v)) => {
                    assert!(u.approx_eq(&v, 1e-9))
                }
                _ => panic!("output kind mismatch"),
            }
        }
    }

    #[test]
    fn row_and_col_aggregates_match_composition() {
        let x = gen::rand_uniform(30, 11, -1.0, 1.0, 1.0, 5);
        let y = gen::rand_uniform(30, 11, -1.0, 1.0, 1.0, 6);
        let ins = [FusedInput::Matrix(&x), FusedInput::Matrix(&y)];
        let ref_mat = unfused_sub_sq(&x, &y);
        for (f, d) in [
            (AggFn::Sum, Direction::Row),
            (AggFn::Mean, Direction::Row),
            (AggFn::Max, Direction::Row),
            (AggFn::Sum, Direction::Col),
            (AggFn::Mean, Direction::Col),
            (AggFn::Min, Direction::Col),
        ] {
            let t = FusedTemplate {
                agg: Some((f, d)),
                ..sub_sq()
            };
            let got = match eval(&t, &ins, 1).unwrap() {
                FusedOutput::Matrix(mat) => mat,
                other => panic!("expected matrix, got {other:?}"),
            };
            let want = aggregate::aggregate_axis(f, d, &ref_mat).unwrap();
            assert!(got.approx_eq(&want, 1e-9), "{f:?} {d:?}");
        }
    }

    #[test]
    fn sparse_path_stays_sparse() {
        let x = gen::rand_uniform(50, 50, 1.0, 2.0, 0.05, 7).compact();
        assert!(x.is_sparse());
        let t = mul_scalar();
        let ins = [FusedInput::Matrix(&x), FusedInput::Scalar(3.0)];
        let got = match eval(&t, &ins, 1).unwrap() {
            FusedOutput::Matrix(mat) => mat,
            other => panic!("expected matrix, got {other:?}"),
        };
        assert!(got.is_sparse());
        let want = elementwise::binary_ms(BinaryOp::Mul, &x, 3.0);
        assert!(got.approx_eq(&want, 1e-12));
    }

    #[test]
    fn non_zero_preserving_template_densifies() {
        let x = gen::rand_uniform(50, 50, 1.0, 2.0, 0.05, 8).compact();
        // X + 1 maps zero cells to 1: the sparse path must be rejected.
        let t = FusedTemplate {
            nodes: vec![
                TemplateNode::Input(0),
                TemplateNode::Const(1.0),
                TemplateNode::Binary(BinaryOp::Add, 0, 1),
            ],
            root: 2,
            agg: None,
            num_inputs: 1,
            saved_intermediates: 0,
        };
        let got = match eval(&t, &[FusedInput::Matrix(&x)], 1).unwrap() {
            FusedOutput::Matrix(mat) => mat,
            other => panic!("expected matrix, got {other:?}"),
        };
        let want = elementwise::binary_ms(BinaryOp::Add, &x, 1.0);
        assert!(got.approx_eq(&want, 1e-12));
        assert_eq!(got.get(1, 1), x.get(1, 1) + 1.0);
    }

    #[test]
    fn sparse_full_sum_matches_dense() {
        let x = gen::rand_uniform(60, 40, -1.0, 1.0, 0.1, 9).compact();
        assert!(x.is_sparse());
        let dense = Matrix::Dense(x.to_dense());
        let t = FusedTemplate {
            agg: Some((AggFn::Sum, Direction::Full)),
            ..mul_scalar()
        };
        let s = |m: &Matrix| match eval(&t, &[FusedInput::Matrix(m), FusedInput::Scalar(2.5)], 1)
            .unwrap()
        {
            FusedOutput::Scalar(v) => v,
            other => panic!("expected scalar, got {other:?}"),
        };
        assert!((s(&x) - s(&dense)).abs() < 1e-9);
    }

    #[test]
    fn empty_matrix_semantics_match_aggregate() {
        let x = Matrix::zeros(0, 3);
        let sum = FusedTemplate {
            agg: Some((AggFn::Sum, Direction::Full)),
            ..mul_scalar()
        };
        match eval(&sum, &[FusedInput::Matrix(&x), FusedInput::Scalar(1.0)], 1).unwrap() {
            FusedOutput::Scalar(v) => assert_eq!(v, 0.0),
            other => panic!("expected scalar, got {other:?}"),
        }
        let mean = FusedTemplate {
            agg: Some((AggFn::Mean, Direction::Full)),
            ..mul_scalar()
        };
        assert!(eval(&mean, &[FusedInput::Matrix(&x), FusedInput::Scalar(1.0)], 1).is_err());
    }

    #[test]
    fn input_errors_are_reported() {
        let t = mul_scalar();
        // wrong arity
        assert!(eval(&t, &[FusedInput::Scalar(1.0)], 1).is_err());
        // no matrix input
        assert!(eval(&t, &[FusedInput::Scalar(1.0), FusedInput::Scalar(2.0)], 1).is_err());
        // shape mismatch
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(3, 2);
        assert!(eval(&t, &[FusedInput::Matrix(&a), FusedInput::Matrix(&b)], 1).is_err());
        // var is not fusable
        let var = FusedTemplate {
            agg: Some((AggFn::Var, Direction::Full)),
            ..mul_scalar()
        };
        let c = Matrix::filled(2, 2, 1.0);
        assert!(eval(&var, &[FusedInput::Matrix(&c), FusedInput::Scalar(1.0)], 1).is_err());
    }

    #[test]
    fn nan_and_inf_flow_through() {
        let x = Matrix::from_vec(1, 4, vec![f64::NAN, f64::INFINITY, -1.0, 2.0]).unwrap();
        let y = Matrix::from_vec(1, 4, vec![1.0, 1.0, f64::NAN, 2.0]).unwrap();
        let t = sub_sq();
        let got = match eval(&t, &[FusedInput::Matrix(&x), FusedInput::Matrix(&y)], 1).unwrap() {
            FusedOutput::Matrix(mat) => mat,
            other => panic!("expected matrix, got {other:?}"),
        };
        let want = unfused_sub_sq(&x, &y);
        assert!(got.approx_eq(&want, 1e-12));
        assert!(got.get(0, 0).is_nan());
        assert!(got.get(0, 1).is_infinite());
    }
}
