//! Compressed linear algebra (paper §3.4 research direction; modeled on
//! "Compressed Linear Algebra for Large-Scale Machine Learning", VLDB'16,
//! the paper's reference \[20\]).
//!
//! Columns are compressed independently with lightweight, *operable*
//! encodings — linear algebra executes directly on the compressed form:
//!
//! * **DDC** (dense dictionary coding): a dictionary of distinct values
//!   plus one u8/u16 code per row. Low-cardinality columns (categorical,
//!   binned, dummy-coded — exactly what `transformencode` produces)
//!   compress by 4–8×.
//! * **RLE** (run-length encoding): `(value, run)` pairs for sorted or
//!   piecewise-constant columns.
//! * **UC** (uncompressed fallback) for high-cardinality columns.
//!
//! Supported compressed ops: `X %*% v`, `t(X) %*% v`, column sums, scalar
//! multiply (dictionary-only update!), and decompression.

use crate::matrix::{DenseMatrix, Matrix};
use sysds_common::{Result, SysDsError};

/// One compressed column.
#[derive(Debug, Clone)]
pub enum ColumnGroup {
    /// Dictionary + 8-bit codes (≤ 256 distinct values).
    Ddc8 { dict: Vec<f64>, codes: Vec<u8> },
    /// Dictionary + 16-bit codes (≤ 65536 distinct values).
    Ddc16 { dict: Vec<f64>, codes: Vec<u16> },
    /// Run-length encoded `(value, run_length)` pairs.
    Rle { runs: Vec<(f64, u32)> },
    /// Uncompressed fallback.
    Uc { values: Vec<f64> },
}

impl ColumnGroup {
    /// Compress one column, choosing the cheapest encoding.
    pub fn compress(values: &[f64]) -> ColumnGroup {
        let n = values.len();
        // Count runs and distincts in one pass over a sorted copy.
        let mut runs = 1usize;
        for w in values.windows(2) {
            if w[0].to_bits() != w[1].to_bits() {
                runs += 1;
            }
        }
        let mut sorted: Vec<u64> = values.iter().map(|v| v.to_bits()).collect();
        sorted.sort_unstable();
        sorted.dedup();
        let distinct = sorted.len();

        // Candidate sizes in bytes.
        let uc = n * 8;
        let rle = runs * 12;
        let ddc8 = if distinct <= 256 {
            distinct * 8 + n
        } else {
            usize::MAX
        };
        let ddc16 = if distinct <= 65_536 {
            distinct * 8 + n * 2
        } else {
            usize::MAX
        };

        let best = uc.min(rle).min(ddc8).min(ddc16);
        if best == rle && rle < uc {
            let mut out: Vec<(f64, u32)> = Vec::with_capacity(runs);
            for &v in values {
                match out.last_mut() {
                    Some((last, run)) if last.to_bits() == v.to_bits() && *run < u32::MAX => {
                        *run += 1
                    }
                    _ => out.push((v, 1)),
                }
            }
            return ColumnGroup::Rle { runs: out };
        }
        if best == ddc8 {
            let dict: Vec<f64> = sorted.iter().map(|&b| f64::from_bits(b)).collect();
            let codes = values
                .iter()
                .map(|v| sorted.binary_search(&v.to_bits()).expect("value in dict") as u8)
                .collect();
            return ColumnGroup::Ddc8 { dict, codes };
        }
        if best == ddc16 {
            let dict: Vec<f64> = sorted.iter().map(|&b| f64::from_bits(b)).collect();
            let codes = values
                .iter()
                .map(|v| sorted.binary_search(&v.to_bits()).expect("value in dict") as u16)
                .collect();
            return ColumnGroup::Ddc16 { dict, codes };
        }
        ColumnGroup::Uc {
            values: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnGroup::Ddc8 { codes, .. } => codes.len(),
            ColumnGroup::Ddc16 { codes, .. } => codes.len(),
            ColumnGroup::Rle { runs } => runs.iter().map(|&(_, r)| r as usize).sum(),
            ColumnGroup::Uc { values } => values.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compressed size estimate in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            ColumnGroup::Ddc8 { dict, codes } => 24 + dict.len() * 8 + codes.len(),
            ColumnGroup::Ddc16 { dict, codes } => 24 + dict.len() * 8 + codes.len() * 2,
            ColumnGroup::Rle { runs } => 24 + runs.len() * 12,
            ColumnGroup::Uc { values } => 24 + values.len() * 8,
        }
    }

    /// Decompress into a vector.
    pub fn decompress(&self) -> Vec<f64> {
        match self {
            ColumnGroup::Ddc8 { dict, codes } => codes.iter().map(|&c| dict[c as usize]).collect(),
            ColumnGroup::Ddc16 { dict, codes } => codes.iter().map(|&c| dict[c as usize]).collect(),
            ColumnGroup::Rle { runs } => {
                let mut out = Vec::with_capacity(self.len());
                for &(v, r) in runs {
                    out.extend(std::iter::repeat_n(v, r as usize));
                }
                out
            }
            ColumnGroup::Uc { values } => values.clone(),
        }
    }

    /// Dot product with a dense vector of the same length:
    /// `sum_i col[i] * v[i]`. For DDC this groups by code — one multiply
    /// per *distinct* value (the CLA trick).
    pub fn dot(&self, v: &[f64]) -> f64 {
        match self {
            ColumnGroup::Ddc8 { dict, codes } => {
                let mut acc = vec![0.0f64; dict.len()];
                for (i, &c) in codes.iter().enumerate() {
                    acc[c as usize] += v[i];
                }
                acc.iter().zip(dict).map(|(a, d)| a * d).sum()
            }
            ColumnGroup::Ddc16 { dict, codes } => {
                let mut acc = vec![0.0f64; dict.len()];
                for (i, &c) in codes.iter().enumerate() {
                    acc[c as usize] += v[i];
                }
                acc.iter().zip(dict).map(|(a, d)| a * d).sum()
            }
            ColumnGroup::Rle { runs } => {
                let mut acc = 0.0;
                let mut i = 0usize;
                for &(val, r) in runs {
                    if val != 0.0 {
                        let mut s = 0.0;
                        for &x in &v[i..i + r as usize] {
                            s += x;
                        }
                        acc += val * s;
                    }
                    i += r as usize;
                }
                acc
            }
            ColumnGroup::Uc { values } => values.iter().zip(v).map(|(a, b)| a * b).sum(),
        }
    }

    /// Scatter `col * scalar` into an output accumulator (`X %*% v` uses
    /// this per column with `scalar = v[j]`).
    pub fn axpy(&self, scalar: f64, out: &mut [f64]) {
        if scalar == 0.0 {
            return;
        }
        match self {
            ColumnGroup::Ddc8 { dict, codes } => {
                // Pre-scale the dictionary once, then scatter codes.
                let scaled: Vec<f64> = dict.iter().map(|d| d * scalar).collect();
                for (i, &c) in codes.iter().enumerate() {
                    out[i] += scaled[c as usize];
                }
            }
            ColumnGroup::Ddc16 { dict, codes } => {
                let scaled: Vec<f64> = dict.iter().map(|d| d * scalar).collect();
                for (i, &c) in codes.iter().enumerate() {
                    out[i] += scaled[c as usize];
                }
            }
            ColumnGroup::Rle { runs } => {
                let mut i = 0usize;
                for &(val, r) in runs {
                    let add = val * scalar;
                    if add != 0.0 {
                        for o in &mut out[i..i + r as usize] {
                            *o += add;
                        }
                    }
                    i += r as usize;
                }
            }
            ColumnGroup::Uc { values } => {
                for (o, &x) in out.iter_mut().zip(values) {
                    *o += x * scalar;
                }
            }
        }
    }

    /// Column sum in compressed space.
    pub fn sum(&self) -> f64 {
        match self {
            ColumnGroup::Ddc8 { dict, codes } => {
                let mut counts = vec![0usize; dict.len()];
                for &c in codes {
                    counts[c as usize] += 1;
                }
                counts.iter().zip(dict).map(|(&n, d)| n as f64 * d).sum()
            }
            ColumnGroup::Ddc16 { dict, codes } => {
                let mut counts = vec![0usize; dict.len()];
                for &c in codes {
                    counts[c as usize] += 1;
                }
                counts.iter().zip(dict).map(|(&n, d)| n as f64 * d).sum()
            }
            ColumnGroup::Rle { runs } => runs.iter().map(|&(v, r)| v * r as f64).sum(),
            ColumnGroup::Uc { values } => values.iter().sum(),
        }
    }

    /// Multiply by a scalar — a dictionary-only update for DDC/RLE.
    pub fn scale(&self, s: f64) -> ColumnGroup {
        match self {
            ColumnGroup::Ddc8 { dict, codes } => ColumnGroup::Ddc8 {
                dict: dict.iter().map(|d| d * s).collect(),
                codes: codes.clone(),
            },
            ColumnGroup::Ddc16 { dict, codes } => ColumnGroup::Ddc16 {
                dict: dict.iter().map(|d| d * s).collect(),
                codes: codes.clone(),
            },
            ColumnGroup::Rle { runs } => ColumnGroup::Rle {
                runs: runs.iter().map(|&(v, r)| (v * s, r)).collect(),
            },
            ColumnGroup::Uc { values } => ColumnGroup::Uc {
                values: values.iter().map(|v| v * s).collect(),
            },
        }
    }
}

/// A column-compressed matrix.
#[derive(Debug, Clone)]
pub struct CompressedMatrix {
    rows: usize,
    groups: Vec<ColumnGroup>,
}

impl CompressedMatrix {
    /// Compress a matrix column-by-column.
    #[allow(clippy::needless_range_loop)] // writes a reused scratch column
    pub fn compress(m: &Matrix) -> CompressedMatrix {
        let (rows, cols) = m.shape();
        let d = m.to_dense();
        let mut groups = Vec::with_capacity(cols);
        let mut col = vec![0.0f64; rows];
        for j in 0..cols {
            for i in 0..rows {
                col[i] = d.get(i, j);
            }
            groups.push(ColumnGroup::compress(&col));
        }
        CompressedMatrix { rows, groups }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.groups.len()
    }

    /// Compressed size in bytes.
    pub fn size_bytes(&self) -> usize {
        32 + self
            .groups
            .iter()
            .map(ColumnGroup::size_bytes)
            .sum::<usize>()
    }

    /// Compression ratio vs dense (`>1` means smaller).
    pub fn compression_ratio(&self) -> f64 {
        let dense = (self.rows * self.cols() * 8).max(1);
        dense as f64 / self.size_bytes() as f64
    }

    /// Encodings used, for diagnostics: `(ddc8, ddc16, rle, uc)` counts.
    pub fn encoding_counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for g in &self.groups {
            match g {
                ColumnGroup::Ddc8 { .. } => c.0 += 1,
                ColumnGroup::Ddc16 { .. } => c.1 += 1,
                ColumnGroup::Rle { .. } => c.2 += 1,
                ColumnGroup::Uc { .. } => c.3 += 1,
            }
        }
        c
    }

    /// Decompress back into a dense matrix.
    pub fn decompress(&self) -> Matrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols());
        for (j, g) in self.groups.iter().enumerate() {
            for (i, v) in g.decompress().into_iter().enumerate() {
                out.set(i, j, v);
            }
        }
        Matrix::Dense(out).compact()
    }

    /// `X %*% v` directly on the compressed representation.
    pub fn mat_vec(&self, v: &Matrix) -> Result<Matrix> {
        if v.rows() != self.cols() || v.cols() != 1 {
            return Err(SysDsError::DimensionMismatch {
                op: "compressed %*%",
                lhs: (self.rows, self.cols()),
                rhs: v.shape(),
            });
        }
        let mut out = vec![0.0f64; self.rows];
        for (j, g) in self.groups.iter().enumerate() {
            g.axpy(v.get(j, 0), &mut out);
        }
        Matrix::from_vec(self.rows, 1, out)
    }

    /// `t(X) %*% v` directly on the compressed representation.
    pub fn tmv(&self, v: &Matrix) -> Result<Matrix> {
        if v.rows() != self.rows || v.cols() != 1 {
            return Err(SysDsError::DimensionMismatch {
                op: "compressed t(X)%*%v",
                lhs: (self.rows, self.cols()),
                rhs: v.shape(),
            });
        }
        let dense_v = v.to_vec();
        let out: Vec<f64> = self.groups.iter().map(|g| g.dot(&dense_v)).collect();
        Matrix::from_vec(self.cols(), 1, out)
    }

    /// Column sums without decompression.
    pub fn col_sums(&self) -> Matrix {
        let sums: Vec<f64> = self.groups.iter().map(ColumnGroup::sum).collect();
        Matrix::from_vec(1, self.cols(), sums).expect("shape by construction")
    }

    /// Scalar multiplication — touches only dictionaries/runs.
    pub fn scale(&self, s: f64) -> CompressedMatrix {
        CompressedMatrix {
            rows: self.rows,
            groups: self.groups.iter().map(|g| g.scale(s)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{gen, matmult, reorg};

    /// Low-cardinality matrix: the transformencode output shape.
    fn categorical(rows: usize, cols: usize, levels: usize, seed: u64) -> Matrix {
        let raw = gen::rand_uniform(rows, cols, 0.0, levels as f64, 1.0, seed);
        let d = raw.to_dense();
        let data = d.values().iter().map(|v| v.floor()).collect();
        Matrix::Dense(DenseMatrix::from_vec(rows, cols, data))
    }

    #[test]
    fn compress_decompress_round_trip() {
        for m in [
            categorical(100, 5, 7, 901),
            gen::rand_uniform(50, 4, -1.0, 1.0, 1.0, 902), // high cardinality → UC
            gen::rand_uniform(60, 6, -1.0, 1.0, 0.1, 903).compact(),
        ] {
            let c = CompressedMatrix::compress(&m);
            assert!(c.decompress().approx_eq(&m, 0.0));
        }
    }

    #[test]
    fn low_cardinality_columns_use_ddc() {
        let m = categorical(1000, 8, 5, 904);
        let c = CompressedMatrix::compress(&m);
        let (ddc8, _, _, uc) = c.encoding_counts();
        assert_eq!(ddc8, 8, "all columns have ≤5 distinct values");
        assert_eq!(uc, 0);
        assert!(
            c.compression_ratio() > 4.0,
            "ratio {}",
            c.compression_ratio()
        );
    }

    #[test]
    fn sorted_column_uses_rle() {
        // A column of long runs compresses best with RLE.
        let mut data = Vec::new();
        for block in 0..10 {
            data.extend(std::iter::repeat_n(block as f64, 100));
        }
        let m = Matrix::from_vec(1000, 1, data).unwrap();
        let c = CompressedMatrix::compress(&m);
        let (_, _, rle, _) = c.encoding_counts();
        assert_eq!(rle, 1);
        assert!(
            c.compression_ratio() > 40.0,
            "ratio {}",
            c.compression_ratio()
        );
        assert!(c.decompress().approx_eq(&m, 0.0));
    }

    #[test]
    fn random_columns_stay_uncompressed() {
        let m = gen::rand_uniform(500, 3, -1.0, 1.0, 1.0, 905);
        let c = CompressedMatrix::compress(&m);
        let (_, _, _, uc) = c.encoding_counts();
        assert_eq!(uc, 3);
        // ratio near 1 (slight overhead)
        assert!(c.compression_ratio() > 0.9 && c.compression_ratio() <= 1.0);
    }

    #[test]
    fn compressed_matvec_matches_dense() {
        let m = categorical(200, 6, 9, 906);
        let v = gen::rand_uniform(6, 1, -1.0, 1.0, 1.0, 907);
        let c = CompressedMatrix::compress(&m);
        let got = c.mat_vec(&v).unwrap();
        let expect = matmult::matmul(&m, &v, 1, false).unwrap();
        assert!(got.approx_eq(&expect, 1e-9));
        assert!(c.mat_vec(&Matrix::zeros(3, 1)).is_err());
    }

    #[test]
    fn compressed_tmv_matches_dense() {
        let m = categorical(150, 5, 4, 908);
        let v = gen::rand_uniform(150, 1, -1.0, 1.0, 1.0, 909);
        let c = CompressedMatrix::compress(&m);
        let got = c.tmv(&v).unwrap();
        let expect = matmult::matmul(&reorg::transpose(&m, 1), &v, 1, false).unwrap();
        assert!(got.approx_eq(&expect, 1e-9));
        assert!(c.tmv(&Matrix::zeros(3, 1)).is_err());
    }

    #[test]
    fn col_sums_without_decompression() {
        let m = categorical(300, 4, 6, 910);
        let c = CompressedMatrix::compress(&m);
        let got = c.col_sums();
        let expect = crate::kernels::aggregate::aggregate_axis(
            crate::kernels::AggFn::Sum,
            crate::kernels::Direction::Col,
            &m,
        )
        .unwrap();
        assert!(got.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn scale_is_dictionary_only_and_exact() {
        let m = categorical(100, 3, 5, 911);
        let c = CompressedMatrix::compress(&m);
        let scaled = c.scale(2.5);
        let expect = crate::kernels::elementwise::binary_ms(crate::kernels::BinaryOp::Mul, &m, 2.5);
        assert!(scaled.decompress().approx_eq(&expect, 1e-12));
        // same compressed size: only dictionary values changed
        assert_eq!(scaled.size_bytes(), c.size_bytes());
    }

    #[test]
    fn rle_dot_skips_zero_runs() {
        let mut data = vec![0.0; 500];
        data.extend(vec![2.0; 500]);
        let m = Matrix::from_vec(1000, 1, data).unwrap();
        let c = CompressedMatrix::compress(&m);
        let v = Matrix::filled(1000, 1, 1.0);
        assert_eq!(c.tmv(&v).unwrap().get(0, 0), 1000.0);
    }
}
