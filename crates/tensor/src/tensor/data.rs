//! Heterogeneous tensor blocks: a schema on the second dimension.
//!
//! A `DataTensorBlock` generalizes 2-D datasets (paper Figure 4(a)): along
//! dimension 1 sits a schema of value types (e.g. sensor readings, flags,
//! categories), while all other dimensions are homogeneous. Internally it is
//! "composed of multiple basic tensors for the given schema" — one
//! [`BasicTensorBlock`] per schema column, each of shape
//! `[dims[0], 1, dims[2..]]` flattened to `[dims[0], dims[2..]]`.

use super::basic::BasicTensorBlock;
use sysds_common::{Result, ScalarValue, SysDsError, ValueType};

/// A multi-dimensional array whose second dimension carries a schema.
#[derive(Debug, Clone, PartialEq)]
pub struct DataTensorBlock {
    /// Full dimensions; `dims[1] == schema.len()`.
    dims: Vec<usize>,
    schema: Vec<ValueType>,
    /// One basic tensor per schema column with dims `[dims[0], dims[2..]]`.
    columns: Vec<BasicTensorBlock>,
}

impl DataTensorBlock {
    /// Zero-initialized data tensor: `rows x schema.len() (x rest...)`.
    pub fn zeros(rows: usize, schema: Vec<ValueType>, rest: &[usize]) -> DataTensorBlock {
        let mut dims = Vec::with_capacity(2 + rest.len());
        dims.push(rows);
        dims.push(schema.len());
        dims.extend_from_slice(rest);
        let col_dims: Vec<usize> = std::iter::once(rows).chain(rest.iter().copied()).collect();
        let columns = schema
            .iter()
            .map(|&vt| BasicTensorBlock::zeros(vt, col_dims.clone()))
            .collect();
        DataTensorBlock {
            dims,
            schema,
            columns,
        }
    }

    /// Build from per-column basic tensors; all columns must share dims.
    pub fn from_columns(columns: Vec<BasicTensorBlock>) -> Result<DataTensorBlock> {
        let first = columns
            .first()
            .ok_or_else(|| SysDsError::runtime("data tensor needs at least one column"))?;
        let col_dims = first.dims().to_vec();
        for c in &columns {
            if c.dims() != col_dims.as_slice() {
                return Err(SysDsError::runtime(
                    "data tensor columns must share dimensions",
                ));
            }
        }
        let schema = columns.iter().map(|c| c.value_type()).collect();
        let mut dims = Vec::with_capacity(col_dims.len() + 1);
        dims.push(col_dims[0]);
        dims.push(columns.len());
        dims.extend_from_slice(&col_dims[1..]);
        Ok(DataTensorBlock {
            dims,
            schema,
            columns,
        })
    }

    /// Full dimensions including the schema dimension.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The per-column schema.
    pub fn schema(&self) -> &[ValueType] {
        &self.schema
    }

    /// Number of rows (size of dimension 0).
    pub fn rows(&self) -> usize {
        self.dims[0]
    }

    /// Number of schema columns (size of dimension 1).
    pub fn num_columns(&self) -> usize {
        self.schema.len()
    }

    /// Borrow one column's basic tensor.
    pub fn column(&self, c: usize) -> Result<&BasicTensorBlock> {
        self.columns
            .get(c)
            .ok_or_else(|| SysDsError::IndexOutOfBounds {
                msg: format!("column {c} of {}", self.schema.len()),
            })
    }

    /// Cell read: `index` addresses the full dims (schema axis included).
    pub fn get(&self, index: &[usize]) -> Result<ScalarValue> {
        let (c, inner) = self.split_index(index)?;
        self.columns[c].get(&inner)
    }

    /// Cell write with the column's value type coercion.
    pub fn set(&mut self, index: &[usize], value: ScalarValue) -> Result<()> {
        let (c, inner) = self.split_index(index)?;
        self.columns[c].set(&inner, value)
    }

    fn split_index(&self, index: &[usize]) -> Result<(usize, Vec<usize>)> {
        if index.len() != self.dims.len() {
            return Err(SysDsError::IndexOutOfBounds {
                msg: format!(
                    "{}-d index into {}-d data tensor",
                    index.len(),
                    self.dims.len()
                ),
            });
        }
        let c = index[1];
        if c >= self.schema.len() {
            return Err(SysDsError::IndexOutOfBounds {
                msg: format!("schema column {c} of {}", self.schema.len()),
            });
        }
        let mut inner = Vec::with_capacity(index.len() - 1);
        inner.push(index[0]);
        inner.extend_from_slice(&index[2..]);
        Ok((c, inner))
    }

    /// Convert all numeric columns to one dense FP64 basic tensor
    /// (the bridge from data integration into linear algebra).
    pub fn to_basic_f64(&self) -> Result<BasicTensorBlock> {
        let rows = self.rows();
        let inner: usize = self.dims[2..].iter().product::<usize>().max(1);
        let ncol = self.num_columns();
        let mut data = vec![0.0f64; rows * ncol * inner];
        for (c, col) in self.columns.iter().enumerate() {
            let vals = col.f64_values()?;
            // Column c's cell (r, rest...) goes to offset ((r*ncol)+c)*inner + rest.
            for (lin, &v) in vals.iter().enumerate() {
                let r = lin / inner;
                let rest = lin % inner;
                data[(r * ncol + c) * inner + rest] = v;
            }
        }
        BasicTensorBlock::from_f64(self.dims.clone(), data)
    }

    /// Estimated in-memory size in bytes.
    pub fn in_memory_size(&self) -> usize {
        64 + self
            .columns
            .iter()
            .map(|c| c.in_memory_size())
            .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataTensorBlock {
        // 3 rows, schema [fp64, string, boolean]
        let mut t = DataTensorBlock::zeros(
            3,
            vec![ValueType::Fp64, ValueType::String, ValueType::Boolean],
            &[],
        );
        t.set(&[0, 0], ScalarValue::F64(1.5)).unwrap();
        t.set(&[0, 1], ScalarValue::Str("red".into())).unwrap();
        t.set(&[0, 2], ScalarValue::Bool(true)).unwrap();
        t.set(&[2, 0], ScalarValue::F64(-2.0)).unwrap();
        t
    }

    #[test]
    fn schema_on_second_dimension() {
        let t = sample();
        assert_eq!(t.dims(), &[3, 3]);
        assert_eq!(
            t.schema(),
            &[ValueType::Fp64, ValueType::String, ValueType::Boolean]
        );
    }

    #[test]
    fn heterogeneous_get_set() {
        let t = sample();
        assert_eq!(t.get(&[0, 0]).unwrap(), ScalarValue::F64(1.5));
        assert_eq!(t.get(&[0, 1]).unwrap(), ScalarValue::Str("red".into()));
        assert_eq!(t.get(&[0, 2]).unwrap(), ScalarValue::Bool(true));
        assert_eq!(t.get(&[1, 1]).unwrap(), ScalarValue::Str(String::new()));
        assert!(t.get(&[0, 3]).is_err());
        assert!(t.get(&[3, 0]).is_err());
    }

    #[test]
    fn type_coercion_on_write() {
        let mut t = sample();
        // Writing a number into the boolean column coerces.
        t.set(&[1, 2], ScalarValue::F64(1.0)).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), ScalarValue::Bool(true));
    }

    #[test]
    fn from_columns_validates_dims() {
        let a = BasicTensorBlock::zeros(ValueType::Fp64, vec![2, 2]);
        let b = BasicTensorBlock::zeros(ValueType::Int64, vec![3, 2]);
        assert!(DataTensorBlock::from_columns(vec![a.clone(), b]).is_err());
        let c = BasicTensorBlock::zeros(ValueType::Int64, vec![2, 2]);
        let t = DataTensorBlock::from_columns(vec![a, c]).unwrap();
        // column dims [2,2] -> data tensor dims [2, 2 cols, 2]
        assert_eq!(t.dims(), &[2, 2, 2]);
        assert!(DataTensorBlock::from_columns(vec![]).is_err());
    }

    #[test]
    fn three_dimensional_data_tensor() {
        // 2 appliances x 2 features x 3 time steps (paper Figure 4(a)).
        let mut t = DataTensorBlock::zeros(2, vec![ValueType::Fp64, ValueType::Int64], &[3]);
        t.set(&[1, 0, 2], ScalarValue::F64(7.5)).unwrap();
        t.set(&[1, 1, 2], ScalarValue::I64(9)).unwrap();
        assert_eq!(t.get(&[1, 0, 2]).unwrap(), ScalarValue::F64(7.5));
        assert_eq!(t.get(&[1, 1, 2]).unwrap(), ScalarValue::I64(9));
        assert_eq!(t.dims(), &[2, 2, 3]);
    }

    #[test]
    fn to_basic_f64_interleaves_columns() {
        let mut t = DataTensorBlock::zeros(2, vec![ValueType::Fp64, ValueType::Int64], &[]);
        t.set(&[0, 0], ScalarValue::F64(1.0)).unwrap();
        t.set(&[0, 1], ScalarValue::I64(2)).unwrap();
        t.set(&[1, 0], ScalarValue::F64(3.0)).unwrap();
        t.set(&[1, 1], ScalarValue::I64(4)).unwrap();
        let b = t.to_basic_f64().unwrap();
        assert_eq!(b.dims(), &[2, 2]);
        assert_eq!(b.f64_values().unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn to_basic_f64_fails_on_non_numeric_strings() {
        let t = sample();
        assert!(t.to_basic_f64().is_err());
    }
}
