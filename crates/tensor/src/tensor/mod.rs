//! The heterogeneous tensor data model (paper §2.4).
//!
//! * [`BasicTensorBlock`] — a linearized, multi-dimensional array of a
//!   single [`ValueType`](sysds_common::ValueType) with dense and sparse (COO) storage.
//! * [`DataTensorBlock`] — a tensor with a schema on the second dimension,
//!   internally composed of one basic tensor per schema column.

mod basic;
mod data;
pub mod ops;

pub use basic::{BasicTensorBlock, TensorStorage};
pub use data::DataTensorBlock;
