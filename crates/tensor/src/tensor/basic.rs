//! Homogeneous n-dimensional tensor blocks.

use crate::matrix::Matrix;
use sysds_common::{Result, ScalarValue, SysDsError, ValueType};

/// Typed dense storage of a linearized tensor.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorStorage {
    Fp32(Vec<f32>),
    Fp64(Vec<f64>),
    Int32(Vec<i32>),
    Int64(Vec<i64>),
    Boolean(Vec<bool>),
    String(Vec<String>),
    /// Sparse COO storage of numeric tensors: sorted linear offsets with
    /// f64 values (other cells are zero).
    SparseFp64 {
        offsets: Vec<usize>,
        values: Vec<f64>,
    },
}

impl TensorStorage {
    fn value_type(&self) -> ValueType {
        match self {
            TensorStorage::Fp32(_) => ValueType::Fp32,
            TensorStorage::Fp64(_) | TensorStorage::SparseFp64 { .. } => ValueType::Fp64,
            TensorStorage::Int32(_) => ValueType::Int32,
            TensorStorage::Int64(_) => ValueType::Int64,
            TensorStorage::Boolean(_) => ValueType::Boolean,
            TensorStorage::String(_) => ValueType::String,
        }
    }
}

/// A homogeneous, linearized, multi-dimensional array of a single value
/// type (paper §2.4, `BasicTensorBlock`). Row-major linearization: the last
/// dimension varies fastest.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicTensorBlock {
    dims: Vec<usize>,
    storage: TensorStorage,
}

impl BasicTensorBlock {
    /// Zero-initialized dense tensor of the given type and dimensions.
    pub fn zeros(value_type: ValueType, dims: Vec<usize>) -> BasicTensorBlock {
        let len: usize = dims.iter().product();
        let storage = match value_type {
            ValueType::Fp32 => TensorStorage::Fp32(vec![0.0; len]),
            ValueType::Fp64 => TensorStorage::Fp64(vec![0.0; len]),
            ValueType::Int32 => TensorStorage::Int32(vec![0; len]),
            ValueType::Int64 => TensorStorage::Int64(vec![0; len]),
            ValueType::Boolean => TensorStorage::Boolean(vec![false; len]),
            ValueType::String => TensorStorage::String(vec![String::new(); len]),
        };
        BasicTensorBlock { dims, storage }
    }

    /// Dense FP64 tensor from a linearized vector.
    pub fn from_f64(dims: Vec<usize>, data: Vec<f64>) -> Result<BasicTensorBlock> {
        let len: usize = dims.iter().product();
        if data.len() != len {
            return Err(SysDsError::runtime(format!(
                "tensor dims {dims:?} require {len} values, got {}",
                data.len()
            )));
        }
        Ok(BasicTensorBlock {
            dims,
            storage: TensorStorage::Fp64(data),
        })
    }

    /// Sparse FP64 tensor from `(linear offset, value)` pairs.
    pub fn sparse_f64(dims: Vec<usize>, mut cells: Vec<(usize, f64)>) -> Result<BasicTensorBlock> {
        let len: usize = dims.iter().product();
        cells.sort_unstable_by_key(|&(o, _)| o);
        cells.dedup_by_key(|c| c.0);
        if cells.last().is_some_and(|&(o, _)| o >= len) {
            return Err(SysDsError::IndexOutOfBounds {
                msg: "sparse tensor offset".into(),
            });
        }
        let (offsets, values) = cells.into_iter().filter(|&(_, v)| v != 0.0).unzip();
        Ok(BasicTensorBlock {
            dims,
            storage: TensorStorage::SparseFp64 { offsets, values },
        })
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Total cell count.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the tensor has zero cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The tensor's value type.
    pub fn value_type(&self) -> ValueType {
        self.storage.value_type()
    }

    /// Whether the underlying storage is sparse.
    pub fn is_sparse(&self) -> bool {
        matches!(self.storage, TensorStorage::SparseFp64 { .. })
    }

    /// Borrow the storage.
    pub fn storage(&self) -> &TensorStorage {
        &self.storage
    }

    /// Linearize an index vector (row-major; last dimension fastest).
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.dims.len() {
            return Err(SysDsError::IndexOutOfBounds {
                msg: format!("{}-d index into {}-d tensor", index.len(), self.dims.len()),
            });
        }
        let mut off = 0usize;
        for (d, (&i, &n)) in index.iter().zip(&self.dims).enumerate() {
            if i >= n {
                return Err(SysDsError::IndexOutOfBounds {
                    msg: format!("index {i} >= dim {n} (axis {d})"),
                });
            }
            off = off * n + i;
        }
        Ok(off)
    }

    /// Typed cell read.
    pub fn get(&self, index: &[usize]) -> Result<ScalarValue> {
        let off = self.offset(index)?;
        Ok(match &self.storage {
            TensorStorage::Fp32(v) => ScalarValue::F64(v[off] as f64),
            TensorStorage::Fp64(v) => ScalarValue::F64(v[off]),
            TensorStorage::Int32(v) => ScalarValue::I64(v[off] as i64),
            TensorStorage::Int64(v) => ScalarValue::I64(v[off]),
            TensorStorage::Boolean(v) => ScalarValue::Bool(v[off]),
            TensorStorage::String(v) => ScalarValue::Str(v[off].clone()),
            TensorStorage::SparseFp64 { offsets, values } => {
                ScalarValue::F64(match offsets.binary_search(&off) {
                    Ok(k) => values[k],
                    Err(_) => 0.0,
                })
            }
        })
    }

    /// Typed cell write (sparse tensors reject point writes; densify first).
    pub fn set(&mut self, index: &[usize], value: ScalarValue) -> Result<()> {
        let off = self.offset(index)?;
        match &mut self.storage {
            TensorStorage::Fp32(v) => v[off] = value.as_f64()? as f32,
            TensorStorage::Fp64(v) => v[off] = value.as_f64()?,
            TensorStorage::Int32(v) => v[off] = value.as_i64()? as i32,
            TensorStorage::Int64(v) => v[off] = value.as_i64()?,
            TensorStorage::Boolean(v) => v[off] = value.as_bool()?,
            TensorStorage::String(v) => v[off] = value.to_display_string(),
            TensorStorage::SparseFp64 { .. } => {
                return Err(SysDsError::runtime(
                    "point writes on sparse tensors; densify first",
                ))
            }
        }
        Ok(())
    }

    /// Convert to a dense FP64 tensor (lossy for strings that don't parse —
    /// those become an error).
    pub fn to_f64_dense(&self) -> Result<BasicTensorBlock> {
        let data = self.f64_values()?;
        BasicTensorBlock::from_f64(self.dims.clone(), data)
    }

    /// All cell values as `f64` in linear order.
    pub fn f64_values(&self) -> Result<Vec<f64>> {
        Ok(match &self.storage {
            TensorStorage::Fp32(v) => v.iter().map(|&x| x as f64).collect(),
            TensorStorage::Fp64(v) => v.clone(),
            TensorStorage::Int32(v) => v.iter().map(|&x| x as f64).collect(),
            TensorStorage::Int64(v) => v.iter().map(|&x| x as f64).collect(),
            TensorStorage::Boolean(v) => v.iter().map(|&b| f64::from(b)).collect(),
            TensorStorage::String(v) => {
                let mut out = Vec::with_capacity(v.len());
                for s in v {
                    out.push(s.trim().parse::<f64>().map_err(|_| {
                        SysDsError::TypeError(format!("cannot convert '{s}' to fp64"))
                    })?);
                }
                out
            }
            TensorStorage::SparseFp64 { offsets, values } => {
                let mut out = vec![0.0; self.len()];
                for (&o, &v) in offsets.iter().zip(values) {
                    out[o] = v;
                }
                out
            }
        })
    }

    /// Reinterpret a 2-D FP64 tensor as a [`Matrix`] (consistency between
    /// local matrix ops and the general tensor model).
    pub fn to_matrix(&self) -> Result<Matrix> {
        if self.dims.len() != 2 {
            return Err(SysDsError::runtime(format!(
                "to_matrix on a {}-d tensor",
                self.dims.len()
            )));
        }
        let data = self.f64_values()?;
        Matrix::from_vec(self.dims[0], self.dims[1], data)
    }

    /// Wrap a [`Matrix`] as a 2-D FP64 tensor block.
    pub fn from_matrix(m: &Matrix) -> BasicTensorBlock {
        match m {
            Matrix::Dense(d) => BasicTensorBlock {
                dims: vec![d.rows(), d.cols()],
                storage: TensorStorage::Fp64(d.values().to_vec()),
            },
            Matrix::Sparse(s) => {
                let cells = s
                    .iter_nonzeros()
                    .map(|(i, j, v)| (i * s.cols() + j, v))
                    .collect();
                BasicTensorBlock::sparse_f64(vec![s.rows(), s.cols()], cells)
                    .expect("offsets in range by construction")
            }
        }
    }

    /// Reshape without copying semantics change (cell count must match).
    pub fn reshape(&self, dims: Vec<usize>) -> Result<BasicTensorBlock> {
        let new_len: usize = dims.iter().product();
        if new_len != self.len() {
            return Err(SysDsError::runtime(format!(
                "tensor reshape {:?} -> {dims:?} changes cell count",
                self.dims
            )));
        }
        Ok(BasicTensorBlock {
            dims,
            storage: self.storage.clone(),
        })
    }

    /// Element-wise f64 map producing a dense FP64 tensor.
    pub fn map_f64(&self, f: impl Fn(f64) -> f64) -> Result<BasicTensorBlock> {
        let data = self.f64_values()?.into_iter().map(f).collect();
        BasicTensorBlock::from_f64(self.dims.clone(), data)
    }

    /// Estimated in-memory size in bytes.
    pub fn in_memory_size(&self) -> usize {
        let elems = match &self.storage {
            TensorStorage::SparseFp64 { offsets, .. } => offsets.len() * 16,
            _ => self.len() * self.value_type().element_size(),
        };
        48 + elems
    }

    /// Slice along the first dimension: rows `lo..hi` (for n-d blocking).
    pub fn slice_dim0(&self, lo: usize, hi: usize) -> Result<BasicTensorBlock> {
        if lo > hi || hi > self.dims.first().copied().unwrap_or(0) {
            return Err(SysDsError::IndexOutOfBounds {
                msg: format!("dim0 slice {lo}..{hi}"),
            });
        }
        let inner: usize = self.dims[1..].iter().product();
        let mut dims = self.dims.clone();
        dims[0] = hi - lo;
        match &self.storage {
            TensorStorage::SparseFp64 { offsets, values } => {
                let cells = offsets
                    .iter()
                    .zip(values)
                    .filter(|(&o, _)| o >= lo * inner && o < hi * inner)
                    .map(|(&o, &v)| (o - lo * inner, v))
                    .collect();
                BasicTensorBlock::sparse_f64(dims, cells)
            }
            _ => {
                let all = self.f64_values()?;
                BasicTensorBlock::from_f64(dims, all[lo * inner..hi * inner].to_vec())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_of_each_type() {
        for vt in [
            ValueType::Fp32,
            ValueType::Fp64,
            ValueType::Int32,
            ValueType::Int64,
            ValueType::Boolean,
            ValueType::String,
        ] {
            let t = BasicTensorBlock::zeros(vt, vec![2, 3]);
            assert_eq!(t.value_type(), vt);
            assert_eq!(t.len(), 6);
        }
    }

    #[test]
    fn offset_linearization_row_major() {
        let t = BasicTensorBlock::zeros(ValueType::Fp64, vec![2, 3, 4]);
        assert_eq!(t.offset(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(t.offset(&[0, 0, 3]).unwrap(), 3);
        assert_eq!(t.offset(&[0, 1, 0]).unwrap(), 4);
        assert_eq!(t.offset(&[1, 0, 0]).unwrap(), 12);
        assert_eq!(t.offset(&[1, 2, 3]).unwrap(), 23);
        assert!(t.offset(&[2, 0, 0]).is_err());
        assert!(t.offset(&[0, 0]).is_err());
    }

    #[test]
    fn get_set_round_trip_typed() {
        let mut t = BasicTensorBlock::zeros(ValueType::Int32, vec![2, 2]);
        t.set(&[1, 0], ScalarValue::I64(42)).unwrap();
        assert_eq!(t.get(&[1, 0]).unwrap(), ScalarValue::I64(42));
        let mut s = BasicTensorBlock::zeros(ValueType::String, vec![1, 1]);
        s.set(&[0, 0], ScalarValue::Str("hi".into())).unwrap();
        assert_eq!(s.get(&[0, 0]).unwrap(), ScalarValue::Str("hi".into()));
    }

    #[test]
    fn sparse_tensor_reads() {
        let t = BasicTensorBlock::sparse_f64(vec![2, 3], vec![(4, 9.0), (0, 1.0)]).unwrap();
        assert!(t.is_sparse());
        assert_eq!(t.get(&[0, 0]).unwrap(), ScalarValue::F64(1.0));
        assert_eq!(t.get(&[1, 1]).unwrap(), ScalarValue::F64(9.0));
        assert_eq!(t.get(&[0, 2]).unwrap(), ScalarValue::F64(0.0));
        assert!(BasicTensorBlock::sparse_f64(vec![2, 2], vec![(4, 1.0)]).is_err());
    }

    #[test]
    fn matrix_round_trip_dense_and_sparse() {
        let m = crate::kernels::gen::rand_uniform(5, 4, -1.0, 1.0, 1.0, 81);
        let t = BasicTensorBlock::from_matrix(&m);
        assert_eq!(t.dims(), &[5, 4]);
        assert!(t.to_matrix().unwrap().approx_eq(&m, 0.0));

        let s = crate::kernels::gen::rand_uniform(10, 10, -1.0, 1.0, 0.1, 82).compact();
        let ts = BasicTensorBlock::from_matrix(&s);
        assert!(ts.is_sparse());
        assert!(ts.to_matrix().unwrap().approx_eq(&s, 0.0));
    }

    #[test]
    fn reshape_preserves_linear_order() {
        let t = BasicTensorBlock::from_f64(vec![2, 3], (0..6).map(|x| x as f64).collect()).unwrap();
        let r = t.reshape(vec![3, 2]).unwrap();
        assert_eq!(r.get(&[0, 1]).unwrap(), ScalarValue::F64(1.0));
        assert_eq!(r.get(&[2, 0]).unwrap(), ScalarValue::F64(4.0));
        assert!(t.reshape(vec![4, 2]).is_err());
    }

    #[test]
    fn slice_dim0_of_3d_tensor() {
        let t =
            BasicTensorBlock::from_f64(vec![4, 2, 2], (0..16).map(|x| x as f64).collect()).unwrap();
        let s = t.slice_dim0(1, 3).unwrap();
        assert_eq!(s.dims(), &[2, 2, 2]);
        assert_eq!(s.get(&[0, 0, 0]).unwrap(), ScalarValue::F64(4.0));
        assert_eq!(s.get(&[1, 1, 1]).unwrap(), ScalarValue::F64(11.0));
        assert!(t.slice_dim0(3, 5).is_err());
    }

    #[test]
    fn map_f64_applies() {
        let t = BasicTensorBlock::from_f64(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let sq = t.map_f64(|v| v * v).unwrap();
        assert_eq!(sq.f64_values().unwrap(), vec![1.0, 4.0, 9.0, 16.0]);
    }

    #[test]
    fn string_conversion_errors_surface() {
        let mut t = BasicTensorBlock::zeros(ValueType::String, vec![1, 1]);
        t.set(&[0, 0], ScalarValue::Str("not-a-number".into()))
            .unwrap();
        assert!(t.f64_values().is_err());
    }
}
