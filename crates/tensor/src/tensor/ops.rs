//! Element-wise and aggregation operations over n-dimensional tensor
//! blocks — "a common TensorBlock operation library" (paper §2.3 (4)) for
//! data beyond two dimensions.

use super::basic::BasicTensorBlock;
use crate::kernels::{AggFn, BinaryOp, UnaryOp};
use sysds_common::{Result, SysDsError};

/// Element-wise binary op between two tensors of identical dimensions
/// (numeric value types; output is dense FP64).
pub fn binary(
    op: BinaryOp,
    a: &BasicTensorBlock,
    b: &BasicTensorBlock,
) -> Result<BasicTensorBlock> {
    if a.dims() != b.dims() {
        return Err(SysDsError::runtime(format!(
            "tensor binary {}: dims {:?} vs {:?}",
            op.opcode(),
            a.dims(),
            b.dims()
        )));
    }
    let av = a.f64_values()?;
    let bv = b.f64_values()?;
    let data = av.iter().zip(&bv).map(|(&x, &y)| op.apply(x, y)).collect();
    BasicTensorBlock::from_f64(a.dims().to_vec(), data)
}

/// Element-wise binary op with a scalar on the right.
pub fn binary_scalar(op: BinaryOp, a: &BasicTensorBlock, s: f64) -> Result<BasicTensorBlock> {
    a.map_f64(|v| op.apply(v, s))
}

/// Element-wise unary op.
pub fn unary(op: UnaryOp, a: &BasicTensorBlock) -> Result<BasicTensorBlock> {
    a.map_f64(|v| op.apply(v))
}

/// Full aggregation over all cells.
pub fn aggregate(f: AggFn, a: &BasicTensorBlock) -> Result<f64> {
    let v = a.f64_values()?;
    let n = v.len() as f64;
    if v.is_empty() && !matches!(f, AggFn::Sum | AggFn::SumSq) {
        return Err(SysDsError::runtime("aggregation over empty tensor"));
    }
    Ok(match f {
        AggFn::Sum => v.iter().sum(),
        AggFn::SumSq => v.iter().map(|x| x * x).sum(),
        AggFn::Mean => v.iter().sum::<f64>() / n,
        AggFn::Min => v.iter().copied().fold(f64::INFINITY, f64::min),
        AggFn::Max => v.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        AggFn::Var => {
            let mean = v.iter().sum::<f64>() / n;
            v.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0).max(1.0)
        }
        AggFn::Sd => aggregate(AggFn::Var, a)?.sqrt(),
    })
}

/// Aggregate along one axis, reducing that dimension away. Returns a
/// tensor whose dims are the input's dims with `axis` removed (rank-1
/// results keep a single dimension).
pub fn aggregate_axis(f: AggFn, a: &BasicTensorBlock, axis: usize) -> Result<BasicTensorBlock> {
    let dims = a.dims().to_vec();
    if axis >= dims.len() {
        return Err(SysDsError::IndexOutOfBounds {
            msg: format!("axis {axis} of a {}-d tensor", dims.len()),
        });
    }
    if !matches!(f, AggFn::Sum | AggFn::Mean | AggFn::Min | AggFn::Max) {
        return Err(SysDsError::runtime(
            "axis aggregation supports sum/mean/min/max",
        ));
    }
    let values = a.f64_values()?;
    // Decompose linear offsets as (outer, axis, inner).
    let axis_len = dims[axis];
    let inner: usize = dims[axis + 1..].iter().product::<usize>().max(1);
    let outer: usize = dims[..axis].iter().product::<usize>().max(1);
    let mut out_dims: Vec<usize> = dims.clone();
    out_dims.remove(axis);
    if out_dims.is_empty() {
        out_dims.push(1);
    }
    let mut out = vec![
        match f {
            AggFn::Min => f64::INFINITY,
            AggFn::Max => f64::NEG_INFINITY,
            _ => 0.0,
        };
        outer * inner
    ];
    for o in 0..outer {
        for k in 0..axis_len {
            for i in 0..inner {
                let v = values[(o * axis_len + k) * inner + i];
                let dst = &mut out[o * inner + i];
                match f {
                    AggFn::Sum | AggFn::Mean => *dst += v,
                    AggFn::Min => *dst = dst.min(v),
                    AggFn::Max => *dst = dst.max(v),
                    _ => unreachable!("filtered above"),
                }
            }
        }
    }
    if f == AggFn::Mean {
        for v in &mut out {
            *v /= axis_len as f64;
        }
    }
    BasicTensorBlock::from_f64(out_dims, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t3(d0: usize, d1: usize, d2: usize) -> BasicTensorBlock {
        let n = d0 * d1 * d2;
        BasicTensorBlock::from_f64(vec![d0, d1, d2], (0..n).map(|x| x as f64).collect()).unwrap()
    }

    #[test]
    fn binary_same_dims() {
        let a = t3(2, 3, 2);
        let b = t3(2, 3, 2);
        let s = binary(BinaryOp::Add, &a, &b).unwrap();
        assert_eq!(s.f64_values().unwrap()[5], 10.0);
        let mismatch = t3(3, 2, 2);
        assert!(binary(BinaryOp::Add, &a, &mismatch).is_err());
    }

    #[test]
    fn scalar_and_unary_ops() {
        let a = t3(2, 2, 2);
        let doubled = binary_scalar(BinaryOp::Mul, &a, 2.0).unwrap();
        assert_eq!(doubled.f64_values().unwrap()[3], 6.0);
        let neg = unary(UnaryOp::Neg, &a).unwrap();
        assert_eq!(neg.f64_values().unwrap()[1], -1.0);
    }

    #[test]
    fn full_aggregates() {
        let a = t3(2, 2, 2); // 0..8
        assert_eq!(aggregate(AggFn::Sum, &a).unwrap(), 28.0);
        assert_eq!(aggregate(AggFn::Mean, &a).unwrap(), 3.5);
        assert_eq!(aggregate(AggFn::Min, &a).unwrap(), 0.0);
        assert_eq!(aggregate(AggFn::Max, &a).unwrap(), 7.0);
        assert_eq!(aggregate(AggFn::SumSq, &a).unwrap(), 140.0);
    }

    #[test]
    fn axis_sum_matches_manual() {
        // dims [2, 3, 2]: summing axis 1 collapses the middle dimension.
        let a = t3(2, 3, 2);
        let s = aggregate_axis(AggFn::Sum, &a, 1).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        // out[0, 0] = a[0,0,0] + a[0,1,0] + a[0,2,0] = 0 + 2 + 4
        assert_eq!(s.f64_values().unwrap(), vec![6.0, 9.0, 24.0, 27.0]);
    }

    #[test]
    fn axis_mean_min_max() {
        let a = t3(2, 2, 2);
        let m = aggregate_axis(AggFn::Mean, &a, 0).unwrap();
        assert_eq!(m.dims(), &[2, 2]);
        assert_eq!(m.f64_values().unwrap(), vec![2.0, 3.0, 4.0, 5.0]);
        let mn = aggregate_axis(AggFn::Min, &a, 2).unwrap();
        assert_eq!(mn.f64_values().unwrap(), vec![0.0, 2.0, 4.0, 6.0]);
        let mx = aggregate_axis(AggFn::Max, &a, 2).unwrap();
        assert_eq!(mx.f64_values().unwrap(), vec![1.0, 3.0, 5.0, 7.0]);
    }

    #[test]
    fn axis_validation() {
        let a = t3(2, 2, 2);
        assert!(aggregate_axis(AggFn::Sum, &a, 3).is_err());
        assert!(aggregate_axis(AggFn::Var, &a, 0).is_err());
    }

    #[test]
    fn rank_one_result_keeps_a_dimension() {
        let v = BasicTensorBlock::from_f64(vec![4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let s = aggregate_axis(AggFn::Sum, &v, 0).unwrap();
        assert_eq!(s.dims(), &[1]);
        assert_eq!(s.f64_values().unwrap(), vec![10.0]);
    }

    #[test]
    fn consistency_with_matrix_ops_on_2d() {
        // The same computation through the Matrix path and the tensor path
        // must agree ("ensures consistency across local and distributed
        // operations" extends to the data model bridge).
        let m = crate::kernels::gen::rand_uniform(6, 5, -1.0, 1.0, 1.0, 1201);
        let t = BasicTensorBlock::from_matrix(&m);
        let tm = aggregate(AggFn::Sum, &t).unwrap();
        let mm = crate::kernels::aggregate::aggregate_full(AggFn::Sum, &m).unwrap();
        assert!((tm - mm).abs() < 1e-9);
        let col_sum_t = aggregate_axis(AggFn::Sum, &t, 0).unwrap();
        let col_sum_m = crate::kernels::aggregate::aggregate_axis(
            AggFn::Sum,
            crate::kernels::Direction::Col,
            &m,
        )
        .unwrap();
        for j in 0..5 {
            assert!((col_sum_t.f64_values().unwrap()[j] - col_sum_m.get(0, j)).abs() < 1e-9);
        }
    }
}
