//! Shared harness for regenerating the paper's Figure 5 and the ablation
//! benchmarks (see DESIGN.md §4 for the experiment index).
//!
//! Sizes are scaled down from the paper's single-node setup (100K×1K,
//! k ≤ 70) so the full sweep finishes in CI time; set `SYSDS_SCALE=paper`
//! to run the original sizes. The *shape* of the results — who wins, by
//! roughly what factor, where lines cross — is what the harness verifies,
//! not absolute numbers (the substrate is a simulator, not the authors'
//! testbed).

use std::time::Instant;
use sysds::api::SystemDS;
use sysds_baselines::{EagerEngine, Engine, GraphEngine, HyperParamWorkload, NativeEngine};
use sysds_common::config::ReusePolicy;
use sysds_common::EngineConfig;

/// Benchmark scale: dimensions of the Figure 5 workloads.
#[derive(Debug, Clone)]
pub struct Scale {
    pub rows: usize,
    pub cols: usize,
    /// The k sweep of Fig. 5(a)-(c) (paper: 1, 10, 20, ..., 70).
    pub ks: Vec<usize>,
    /// The nrow sweep of Fig. 5(d) (paper: 33K, 100K, 330K, 1M, 3.3M).
    pub row_sweep: Vec<usize>,
    /// k used in Fig. 5(d) (paper: 70).
    pub k_sweep: usize,
}

impl Scale {
    /// Scale from the `SYSDS_SCALE` environment variable:
    /// `ci` (tiny), `default` (seconds per series), or `paper` (original).
    pub fn from_env() -> Scale {
        match std::env::var("SYSDS_SCALE").as_deref() {
            Ok("paper") => Scale {
                rows: 100_000,
                cols: 1_000,
                ks: vec![1, 10, 20, 30, 40, 50, 60, 70],
                row_sweep: vec![33_000, 100_000, 330_000, 1_000_000, 3_300_000],
                k_sweep: 70,
            },
            Ok("ci") => Scale {
                rows: 2_000,
                cols: 50,
                ks: vec![1, 4, 8],
                row_sweep: vec![1_000, 2_000, 4_000],
                k_sweep: 8,
            },
            _ => Scale {
                rows: 20_000,
                cols: 200,
                ks: vec![1, 4, 8, 12, 16, 20],
                row_sweep: vec![6_600, 20_000, 66_000, 200_000],
                k_sweep: 14,
            },
        }
    }

    /// The workload for a given k / sparsity (dense = 1.0, sparse = 0.1).
    pub fn workload(&self, k: usize, sparsity: f64) -> HyperParamWorkload {
        HyperParamWorkload {
            rows: self.rows,
            cols: self.cols,
            sparsity,
            num_models: k,
            seed: 0xF165,
            dir: bench_dir(),
        }
    }

    /// The Fig. 5(d) workload for a given row count.
    pub fn workload_rows(&self, rows: usize) -> HyperParamWorkload {
        HyperParamWorkload {
            rows,
            cols: self.cols,
            sparsity: 0.1,
            num_models: self.k_sweep,
            seed: 0xF165D,
            dir: bench_dir(),
        }
    }
}

/// Scratch directory for benchmark inputs.
pub fn bench_dir() -> std::path::PathBuf {
    let d = std::env::temp_dir().join("sysds-bench-data");
    let _ = std::fs::create_dir_all(&d);
    d
}

/// The paper's workload as a DML script, end-to-end: read CSV, train k
/// models, write the stacked models as one CSV.
pub fn hyperparam_script(w: &HyperParamWorkload) -> String {
    format!(
        r#"
        X = read("{x}")
        y = read("{y}")
        B = matrix(0, rows=ncol(X), cols={k})
        for (i in 1:{k}) {{
            reg = 0.000001 * i
            Bi = lmDS(X=X, y=y, reg=reg)
            B[, i] = Bi
        }}
        write(B, "{out}")
        "#,
        x = w.x_path().display(),
        y = w.y_path().display(),
        k = w.num_models,
        out = w.model_path().display(),
    )
}

/// The SystemDS engine variants of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysVariant {
    /// Portable kernels, no reuse (SysDS).
    Plain,
    /// Optimized BLAS-like kernels (SysDS-B).
    Blas,
    /// Portable kernels + lineage-based reuse (SysDS w/ Reuse).
    Reuse,
}

impl SysVariant {
    pub fn label(self) -> &'static str {
        match self {
            SysVariant::Plain => "SysDS",
            SysVariant::Blas => "SysDS-B",
            SysVariant::Reuse => "SysDS+Reuse",
        }
    }

    fn config(self) -> EngineConfig {
        let base = EngineConfig::default();
        match self {
            SysVariant::Plain => base,
            SysVariant::Blas => base.blas(true),
            SysVariant::Reuse => base.reuse_policy(ReusePolicy::FullAndPartial),
        }
    }
}

/// Number of repetitions averaged per measurement (paper §4.1 reports the
/// "mean of 3 repetitions"); override with `SYSDS_REPS`.
pub fn repetitions() -> usize {
    std::env::var("SYSDS_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// Run the DML workload end-to-end (including I/O) and return seconds.
/// Every run uses a fresh session so no state leaks between measurements.
pub fn run_sysds(w: &HyperParamWorkload, variant: SysVariant) -> f64 {
    let mut sds = SystemDS::with_config(variant.config()).expect("config valid");
    let script = hyperparam_script(w);
    let t0 = Instant::now();
    sds.execute(&script, &[], &[]).expect("workload runs");
    t0.elapsed().as_secs_f64()
}

/// Mean of [`repetitions`] runs of a measurement closure.
pub fn mean_secs(mut f: impl FnMut() -> f64) -> f64 {
    let reps = repetitions();
    let total: f64 = (0..reps).map(|_| f()).sum();
    total / reps as f64
}

/// Run one of the baseline engines end-to-end and return seconds.
pub fn run_baseline(w: &HyperParamWorkload, which: &str) -> f64 {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let engine: Box<dyn Engine> = match which {
        "TF" => Box::new(EagerEngine { threads }),
        "TF-G" => Box::new(GraphEngine { threads }),
        "Julia" => Box::new(NativeEngine { threads }),
        other => panic!("unknown baseline '{other}'"),
    };
    let t0 = Instant::now();
    engine.run(w).expect("baseline runs");
    t0.elapsed().as_secs_f64()
}

/// Pretty-print one figure's series as a markdown-ish table.
pub fn print_table(title: &str, xlabel: &str, xs: &[String], series: &[(String, Vec<f64>)]) {
    println!("\n## {title}");
    print!("| {xlabel:>12} |");
    for (name, _) in series {
        print!(" {name:>12} |");
    }
    println!();
    print!("|{}|", "-".repeat(14));
    for _ in series {
        print!("{}|", "-".repeat(14));
    }
    println!();
    for (i, x) in xs.iter().enumerate() {
        print!("| {x:>12} |");
        for (_, ys) in series {
            match ys.get(i) {
                Some(v) => print!(" {v:>11.3}s |"),
                None => print!(" {:>12} |", "-"),
            }
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_env_variants() {
        // Default path (no env var assumed in tests).
        let s = Scale::from_env();
        assert!(!s.ks.is_empty());
        assert!(s.rows > 0);
    }

    #[test]
    fn workload_paths_distinct_by_parameters() {
        let s = Scale::from_env();
        let a = s.workload(4, 1.0);
        let b = s.workload(4, 0.1);
        assert_ne!(a.x_path(), b.x_path());
    }

    #[test]
    fn sysds_and_baselines_agree_end_to_end() {
        let w = HyperParamWorkload {
            rows: 200,
            cols: 10,
            sparsity: 1.0,
            num_models: 3,
            seed: 42,
            dir: bench_dir().join("agree-test"),
        };
        w.materialize().unwrap();
        // Baseline writes its models...
        run_baseline(&w, "Julia");
        let desc = sysds_io::FormatDescriptor::csv();
        let julia = sysds_io::csv::read_matrix(w.model_path(), &desc, 1).unwrap();
        // ...then SystemDS overwrites the same file via the DML script.
        run_sysds(&w, SysVariant::Plain);
        let sys = sysds_io::csv::read_matrix(w.model_path(), &desc, 1).unwrap();
        assert_eq!(julia.shape(), sys.shape());
        assert!(
            julia.approx_eq(&sys, 1e-6),
            "engines must train identical models"
        );
        w.cleanup();
    }

    #[test]
    fn reuse_variant_matches_plain_results() {
        let w = HyperParamWorkload {
            rows: 300,
            cols: 12,
            sparsity: 1.0,
            num_models: 4,
            seed: 43,
            dir: bench_dir().join("reuse-test"),
        };
        w.materialize().unwrap();
        run_sysds(&w, SysVariant::Plain);
        let desc = sysds_io::FormatDescriptor::csv();
        let plain = sysds_io::csv::read_matrix(w.model_path(), &desc, 1).unwrap();
        run_sysds(&w, SysVariant::Reuse);
        let reuse = sysds_io::csv::read_matrix(w.model_path(), &desc, 1).unwrap();
        assert!(plain.approx_eq(&reuse, 1e-9));
        w.cleanup();
    }
}
