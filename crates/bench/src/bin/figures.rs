//! Regenerate the paper's Figure 5 series as tables.
//!
//! ```bash
//! cargo run --release -p sysds-bench --bin figures            # all figures
//! cargo run --release -p sysds-bench --bin figures -- 5a 5c   # subset
//! SYSDS_SCALE=paper cargo run --release -p sysds-bench --bin figures
//! ```
//!
//! Scales default to a laptop-friendly reduction of the paper's setup
//! (see `sysds_bench::Scale`); the claims being reproduced are *shapes*:
//!
//! * 5(a) dense: SysDS beats TF for one model (multi-threaded CSV parse);
//!   SysDS-B ≈ Julia; all grow linearly with k.
//! * 5(b) sparse: SysDS wins big (fused sparse tsmm, no transpose);
//!   TF pays the materialized transpose per model, TF-G once.
//! * 5(c): reuse flattens the k-sweep to near-constant after model 1.
//! * 5(d): the reuse gap grows with the input rows.

use sysds_bench::{mean_secs, print_table, run_baseline, run_sysds, Scale, SysVariant};

/// Also dump each figure's series as a CSV file for plotting when
/// `--csv <dir>` is passed.
fn maybe_write_csv(
    dir: &Option<std::path::PathBuf>,
    name: &str,
    xlabel: &str,
    xs: &[String],
    series: &[(String, Vec<f64>)],
) {
    let Some(dir) = dir else { return };
    let _ = std::fs::create_dir_all(dir);
    let mut out = String::new();
    out.push_str(xlabel);
    for (n, _) in series {
        out.push(',');
        out.push_str(n);
    }
    out.push('\n');
    for (i, x) in xs.iter().enumerate() {
        out.push_str(x);
        for (_, ys) in series {
            out.push(',');
            out.push_str(&ys.get(i).map_or(String::new(), |v| format!("{v:.6}")));
        }
        out.push('\n');
    }
    let path = dir.join(format!("{name}.csv"));
    if std::fs::write(&path, out).is_ok() {
        eprintln!("# wrote {}", path.display());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv_dir: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    let flags: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    let csv_path_str = csv_dir.as_ref().map(|p| p.display().to_string());
    let flags: Vec<String> = flags
        .into_iter()
        .filter(|a| Some(a.as_str()) != csv_path_str.as_deref())
        .collect();
    let args = flags;
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |f: &str| all || args.iter().any(|a| a == f);
    let scale = Scale::from_env();
    println!(
        "# SystemDS-rs figure harness (rows={}, cols={}, ks={:?})",
        scale.rows, scale.cols, scale.ks
    );

    if want("5a") {
        figure_5a(&scale, &csv_dir);
    }
    if want("5b") {
        figure_5b(&scale, &csv_dir);
    }
    if want("5c") {
        figure_5c(&scale, &csv_dir);
    }
    if want("5d") {
        figure_5d(&scale, &csv_dir);
    }
}

fn figure_5a(scale: &Scale, csv: &Option<std::path::PathBuf>) {
    let mut series: Vec<(String, Vec<f64>)> = ["TF", "TF-G", "Julia"]
        .iter()
        .map(|n| (n.to_string(), Vec::new()))
        .collect();
    series.push(("SysDS".into(), Vec::new()));
    series.push(("SysDS-B".into(), Vec::new()));
    let mut xs = Vec::new();
    for &k in &scale.ks {
        let w = scale.workload(k, 1.0);
        w.materialize().expect("generate inputs");
        xs.push(k.to_string());
        for (name, ys) in series.iter_mut() {
            let secs = mean_secs(|| match name.as_str() {
                "SysDS" => run_sysds(&w, SysVariant::Plain),
                "SysDS-B" => run_sysds(&w, SysVariant::Blas),
                other => run_baseline(&w, other),
            });
            ys.push(secs);
        }
    }
    print_table("Figure 5(a): baselines, dense", "k models", &xs, &series);
    maybe_write_csv(csv, "fig5a", "k", &xs, &series);
}

fn figure_5b(scale: &Scale, csv: &Option<std::path::PathBuf>) {
    let mut series: Vec<(String, Vec<f64>)> = ["TF", "TF-G", "Julia"]
        .iter()
        .map(|n| (n.to_string(), Vec::new()))
        .collect();
    series.push(("SysDS".into(), Vec::new()));
    let mut xs = Vec::new();
    for &k in &scale.ks {
        let w = scale.workload(k, 0.1);
        w.materialize().expect("generate inputs");
        xs.push(k.to_string());
        for (name, ys) in series.iter_mut() {
            let secs = mean_secs(|| match name.as_str() {
                "SysDS" => run_sysds(&w, SysVariant::Plain),
                other => run_baseline(&w, other),
            });
            ys.push(secs);
        }
    }
    print_table(
        "Figure 5(b): baselines, sparse (0.1)",
        "k models",
        &xs,
        &series,
    );
    maybe_write_csv(csv, "fig5b", "k", &xs, &series);
}

fn figure_5c(scale: &Scale, csv: &Option<std::path::PathBuf>) {
    let mut series = vec![
        ("SysDS".to_string(), Vec::new()),
        ("SysDS w/ Reuse".to_string(), Vec::new()),
    ];
    let mut xs = Vec::new();
    for &k in &scale.ks {
        let w = scale.workload(k, 1.0);
        w.materialize().expect("generate inputs");
        xs.push(k.to_string());
        series[0]
            .1
            .push(mean_secs(|| run_sysds(&w, SysVariant::Plain)));
        series[1]
            .1
            .push(mean_secs(|| run_sysds(&w, SysVariant::Reuse)));
    }
    print_table("Figure 5(c): reuse, dense", "k models", &xs, &series);
    maybe_write_csv(csv, "fig5c", "k", &xs, &series);
}

fn figure_5d(scale: &Scale, csv: &Option<std::path::PathBuf>) {
    let mut series = vec![
        ("SysDS".to_string(), Vec::new()),
        ("SysDS w/ Reuse".to_string(), Vec::new()),
    ];
    let mut xs = Vec::new();
    for &rows in &scale.row_sweep {
        let w = scale.workload_rows(rows);
        w.materialize().expect("generate inputs");
        xs.push(rows.to_string());
        series[0]
            .1
            .push(mean_secs(|| run_sysds(&w, SysVariant::Plain)));
        series[1]
            .1
            .push(mean_secs(|| run_sysds(&w, SysVariant::Reuse)));
    }
    print_table(
        &format!(
            "Figure 5(d): reuse, sparse rows sweep (k={})",
            scale.k_sweep
        ),
        "nrow(X)",
        &xs,
        &series,
    );
    maybe_write_csv(csv, "fig5d", "nrow", &xs, &series);
}
