//! Ablation 6 (§3.1, Example 1): partial reuse in `steplm` — the
//! compensation plan assembles `tsmm(cbind(Xg, xj))` from the cached
//! `tsmm(Xg)`, turning O(n·k²) what-if trainings into O(n·k) updates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sysds::api::SystemDS;
use sysds::Data;
use sysds_common::config::ReusePolicy;
use sysds_common::EngineConfig;
use sysds_tensor::kernels::BinaryOp;
use sysds_tensor::kernels::{elementwise, gen, indexing};
use sysds_tensor::Matrix;

fn dataset(rows: usize, cols: usize) -> (Matrix, Matrix) {
    let x = gen::rand_uniform(rows, cols, -1.0, 1.0, 1.0, 6401);
    // two informative features keep the selection loop short & stable
    let a = indexing::column(&x, 1).unwrap();
    let b = indexing::column(&x, cols - 2).unwrap();
    let y = elementwise::binary_mm(
        BinaryOp::Add,
        &elementwise::binary_ms(BinaryOp::Mul, &a, 3.0),
        &elementwise::binary_ms(BinaryOp::Mul, &b, -2.0),
    )
    .unwrap();
    (x, y)
}

fn run_steplm(x: &Matrix, y: &Matrix, policy: ReusePolicy) {
    let mut sds = SystemDS::with_config(EngineConfig::default().reuse_policy(policy)).unwrap();
    sds.execute(
        "[B, S] = steplm(X=X, y=y, reg=0.000001, max_feat=4)",
        &[
            ("X", Data::from_matrix(x.clone())),
            ("y", Data::from_matrix(y.clone())),
        ],
        &["B", "S"],
    )
    .unwrap();
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_partial_reuse");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(3));

    for &(rows, cols) in &[(4_000usize, 20usize), (12_000, 30)] {
        let (x, y) = dataset(rows, cols);
        let id = format!("{rows}x{cols}");
        g.bench_with_input(BenchmarkId::new("steplm_no_reuse", &id), &id, |b, _| {
            b.iter(|| run_steplm(&x, &y, ReusePolicy::None))
        });
        g.bench_with_input(BenchmarkId::new("steplm_full_reuse", &id), &id, |b, _| {
            b.iter(|| run_steplm(&x, &y, ReusePolicy::Full))
        });
        g.bench_with_input(
            BenchmarkId::new("steplm_partial_reuse", &id),
            &id,
            |b, _| b.iter(|| run_steplm(&x, &y, ReusePolicy::FullAndPartial)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
