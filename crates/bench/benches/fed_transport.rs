//! Transport ablation: the same federated algorithms (tsmm, lm) over the
//! in-process channel transport vs the localhost-TCP transport — isolating
//! the cost of framing, sockets, and the robustness layer from the
//! federated computation itself.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use sysds_common::NetConfig;
use sysds_fed::learn::federated_lm;
use sysds_fed::{FederatedMatrix, Transport, WorkerHandle};
use sysds_net::{TcpTransport, WorkerServer};
use sysds_tensor::kernels::gen;

const SITES: usize = 2;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fed_transport");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));

    let (x, y) = gen::synthetic_regression(20_000, 32, 1.0, 0.05, 6401);

    // In-process channel transport.
    let local: Vec<Arc<dyn Transport>> = (0..SITES)
        .map(|_| Arc::new(WorkerHandle::spawn(vec![], 1)) as Arc<dyn Transport>)
        .collect();
    let lfx = FederatedMatrix::scatter(&x, &local).unwrap();
    let lfy = FederatedMatrix::scatter(&y, &local).unwrap();

    // Localhost TCP transport: daemons stay up for the whole benchmark, so
    // iterations measure request round trips over warm connections.
    let servers: Vec<WorkerServer> = (0..SITES)
        .map(|_| WorkerServer::bind("127.0.0.1:0", vec![], 1).unwrap())
        .collect();
    let tcp: Vec<Arc<dyn Transport>> = servers
        .iter()
        .map(|s| {
            Arc::new(
                TcpTransport::connect(&s.local_addr().to_string(), NetConfig::default()).unwrap(),
            ) as Arc<dyn Transport>
        })
        .collect();
    let tfx = FederatedMatrix::scatter(&x, &tcp).unwrap();
    let tfy = FederatedMatrix::scatter(&y, &tcp).unwrap();

    g.bench_function("tsmm_inprocess", |b| b.iter(|| lfx.tsmm().unwrap()));
    g.bench_function("tsmm_tcp", |b| b.iter(|| tfx.tsmm().unwrap()));
    g.bench_function("lm_inprocess", |b| {
        b.iter(|| federated_lm(&lfx, &lfy, 0.001).unwrap())
    });
    g.bench_function("lm_tcp", |b| {
        b.iter(|| federated_lm(&tfx, &tfy, 0.001).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
