//! Ablation 2 (§4.2 I/O claim): "multi-threaded I/O in SysDS yields better
//! performance ... because string-to-double parsing is compute-intensive".
//! Measures CSV parse throughput with 1..N parser threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sysds_io::FormatDescriptor;
use sysds_tensor::kernels::gen;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_csv");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));

    let dir = sysds_bench::bench_dir().join("csv");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("parse-bench.csv");
    let m = gen::rand_uniform(50_000, 40, -1000.0, 1000.0, 1.0, 6101);
    let desc = FormatDescriptor::csv();
    sysds_io::csv::write_matrix(&path, &m, &desc).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    let mut sweep = vec![1usize, 2, 4, max_threads];
    sweep.dedup();
    sweep.sort_unstable();
    sweep.dedup();
    for threads in sweep {
        g.bench_with_input(BenchmarkId::new("parse", threads), &threads, |b, &t| {
            b.iter(|| sysds_io::csv::parse_matrix(&bytes, &desc, t).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
