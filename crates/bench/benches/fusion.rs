//! Fusion ablation: fused cell-wise pipelines vs the same expression run
//! through the unfused kernel sequence, at 1k x 1k and 4k x 1k. The fused
//! path should win >= 1.5x on the memory-bound chains by touching each
//! input once and materializing no intermediates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sysds_tensor::kernels::fused::{FusedInput, FusedTemplate, TemplateNode};
use sysds_tensor::kernels::{aggregate, elementwise, fused, gen};
use sysds_tensor::kernels::{AggFn, BinaryOp, Direction, UnaryOp};
use sysds_tensor::Matrix;

/// sum((X - Y)^2): three unfused passes (sub, pow, sum) vs one fused pass.
fn sum_sq_diff_template() -> FusedTemplate {
    FusedTemplate {
        nodes: vec![
            TemplateNode::Input(0),
            TemplateNode::Input(1),
            TemplateNode::Binary(BinaryOp::Sub, 0, 1),
            TemplateNode::Const(2.0),
            TemplateNode::Binary(BinaryOp::Pow, 2, 3),
        ],
        root: 4,
        agg: Some((AggFn::Sum, Direction::Full)),
        num_inputs: 2,
        saved_intermediates: 2,
    }
}

fn sum_sq_diff_unfused(x: &Matrix, y: &Matrix) -> f64 {
    let d = elementwise::binary_mm(BinaryOp::Sub, x, y).unwrap();
    let sq = elementwise::binary_ms(BinaryOp::Pow, &d, 2.0);
    aggregate::aggregate_full(AggFn::Sum, &sq).unwrap()
}

/// sigmoid(X * W + b): a dense elementwise chain producing a matrix.
fn sigmoid_chain_template() -> FusedTemplate {
    FusedTemplate {
        nodes: vec![
            TemplateNode::Input(0),
            TemplateNode::Input(1),
            TemplateNode::Binary(BinaryOp::Mul, 0, 1),
            TemplateNode::Input(2),
            TemplateNode::Binary(BinaryOp::Add, 2, 3),
            TemplateNode::Unary(UnaryOp::Sigmoid, 4),
        ],
        root: 5,
        agg: None,
        num_inputs: 3,
        saved_intermediates: 2,
    }
}

fn sigmoid_chain_unfused(x: &Matrix, w: &Matrix, b: f64) -> Matrix {
    let xw = elementwise::binary_mm(BinaryOp::Mul, x, w).unwrap();
    let shifted = elementwise::binary_ms(BinaryOp::Add, &xw, b);
    elementwise::unary(UnaryOp::Sigmoid, &shifted)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fusion");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    for &(rows, cols) in &[(1000usize, 1000usize), (4000, 1000)] {
        let label = format!("{rows}x{cols}");
        let x = gen::rand_uniform(rows, cols, -1.0, 1.0, 1.0, 7001);
        let y = gen::rand_uniform(rows, cols, -1.0, 1.0, 1.0, 7002);

        let t = sum_sq_diff_template();
        let inputs = [FusedInput::Matrix(&x), FusedInput::Matrix(&y)];
        g.bench_function(BenchmarkId::new("sum_sq_diff_unfused", &label), |bch| {
            bch.iter(|| sum_sq_diff_unfused(&x, &y))
        });
        g.bench_function(BenchmarkId::new("sum_sq_diff_fused", &label), |bch| {
            bch.iter(|| fused::eval(&t, &inputs, threads).unwrap())
        });

        let t2 = sigmoid_chain_template();
        let inputs2 = [
            FusedInput::Matrix(&x),
            FusedInput::Matrix(&y),
            FusedInput::Scalar(0.25),
        ];
        g.bench_function(BenchmarkId::new("sigmoid_chain_unfused", &label), |bch| {
            bch.iter(|| sigmoid_chain_unfused(&x, &y, 0.25))
        });
        g.bench_function(BenchmarkId::new("sigmoid_chain_fused", &label), |bch| {
            bch.iter(|| fused::eval(&t2, &inputs2, threads).unwrap())
        });
    }

    // Sparse zero-preserving chain: rowSums((X * s)^2) over 5% nonzeros —
    // the fused sparse path touches stored values only.
    let xs: Matrix = gen::rand_uniform(4000, 1000, -1.0, 1.0, 0.05, 7003).compact();
    assert!(xs.is_sparse());
    let ts = FusedTemplate {
        nodes: vec![
            TemplateNode::Input(0),
            TemplateNode::Const(0.5),
            TemplateNode::Binary(BinaryOp::Mul, 0, 1),
            TemplateNode::Const(2.0),
            TemplateNode::Binary(BinaryOp::Pow, 2, 3),
        ],
        root: 4,
        agg: Some((AggFn::Sum, Direction::Row)),
        num_inputs: 1,
        saved_intermediates: 2,
    };
    let sparse_inputs = [FusedInput::Matrix(&xs)];
    g.bench_function("sparse_rowsums_unfused", |bch| {
        bch.iter(|| {
            let scaled = elementwise::binary_ms(BinaryOp::Mul, &xs, 0.5);
            let sq = elementwise::binary_ms(BinaryOp::Pow, &scaled, 2.0);
            aggregate::aggregate_axis(AggFn::Sum, Direction::Row, &sq).unwrap()
        })
    });
    g.bench_function("sparse_rowsums_fused", |bch| {
        bch.iter(|| fused::eval(&ts, &sparse_inputs, threads).unwrap())
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
