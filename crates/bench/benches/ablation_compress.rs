//! Ablation 7 (§3.4 "lossless and lossy compression"): compressed linear
//! algebra on low-cardinality (encoded) data — `X%*%v` and `t(X)%*%v`
//! directly on the compressed representation vs dense, plus compression
//! throughput. On DDC-coded columns the compressed ops touch one multiply
//! per *distinct* value.

use criterion::{criterion_group, criterion_main, Criterion};
use sysds_tensor::kernels::{gen, matmult, tsmm};
use sysds_tensor::{CompressedMatrix, DenseMatrix, Matrix};

/// Low-cardinality matrix resembling transformencode output.
fn categorical(rows: usize, cols: usize, levels: usize, seed: u64) -> Matrix {
    let raw = gen::rand_uniform(rows, cols, 0.0, levels as f64, 1.0, seed);
    let d = raw.to_dense();
    let (r, c) = (d.rows(), d.cols());
    let data = d.values().iter().map(|v| v.floor()).collect();
    Matrix::Dense(DenseMatrix::from_vec(r, c, data))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_compress");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));

    let x = categorical(100_000, 20, 8, 6501);
    let v_cols = gen::rand_uniform(20, 1, -1.0, 1.0, 1.0, 6502);
    let v_rows = gen::rand_uniform(100_000, 1, -1.0, 1.0, 1.0, 6503);
    let compressed = CompressedMatrix::compress(&x);
    println!(
        "compression ratio on 8-level categorical data: {:.1}x (encodings {:?})",
        compressed.compression_ratio(),
        compressed.encoding_counts()
    );

    g.bench_function("compress_100kx20", |b| {
        b.iter(|| CompressedMatrix::compress(&x))
    });
    g.bench_function("matvec_dense", |b| {
        b.iter(|| matmult::matmul(&x, &v_cols, 1, false).unwrap())
    });
    g.bench_function("matvec_compressed", |b| {
        b.iter(|| compressed.mat_vec(&v_cols).unwrap())
    });
    g.bench_function("tmv_dense", |b| {
        b.iter(|| tsmm::tmv(&x, &v_rows, 1).unwrap())
    });
    g.bench_function("tmv_compressed", |b| {
        b.iter(|| compressed.tmv(&v_rows).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
