//! Figure 5(c): lineage-based reuse of intermediates on the dense
//! hyper-parameter workload — SysDS vs SysDS w/ Reuse over the k sweep.
//! The reuse series should stay near-flat as k grows (X'X and X'y hit
//! the cache for every model after the first).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sysds_baselines::HyperParamWorkload;
use sysds_bench::{run_sysds, SysVariant};

fn workload(k: usize) -> HyperParamWorkload {
    let w = HyperParamWorkload {
        rows: 6_000,
        cols: 100,
        sparsity: 1.0,
        num_models: k,
        seed: 5003,
        dir: sysds_bench::bench_dir().join("fig5c"),
    };
    w.materialize().expect("inputs");
    w
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5c_reuse_dense");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));
    for k in [1usize, 4, 8, 16] {
        let w = workload(k);
        g.bench_with_input(BenchmarkId::new("SysDS", k), &k, |b, _| {
            b.iter(|| run_sysds(&w, SysVariant::Plain))
        });
        g.bench_with_input(BenchmarkId::new("SysDS-Reuse", k), &k, |b, _| {
            b.iter(|| run_sysds(&w, SysVariant::Reuse))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
