//! Figure 5(b): baseline comparison on sparse data (sparsity 0.1) —
//! SysDS's fused sparse `tsmm` vs baselines that materialize transposes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sysds_baselines::HyperParamWorkload;
use sysds_bench::{run_baseline, run_sysds, SysVariant};

fn workload(k: usize) -> HyperParamWorkload {
    let w = HyperParamWorkload {
        rows: 8_000,
        cols: 80,
        sparsity: 0.1,
        num_models: k,
        seed: 5002,
        dir: sysds_bench::bench_dir().join("fig5b"),
    };
    w.materialize().expect("inputs");
    w
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5b_baselines_sparse");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));
    for k in [1usize, 4, 8] {
        let w = workload(k);
        for engine in ["TF", "TF-G", "Julia"] {
            g.bench_with_input(BenchmarkId::new(engine, k), &k, |b, _| {
                b.iter(|| run_baseline(&w, engine))
            });
        }
        g.bench_with_input(BenchmarkId::new("SysDS", k), &k, |b, _| {
            b.iter(|| run_sysds(&w, SysVariant::Plain))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
