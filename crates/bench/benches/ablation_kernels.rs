//! Ablation 1 (§4.2 kernel gap): portable naive matmul vs the BLAS-like
//! blocked kernel vs the fused tsmm, single- and multi-threaded. This is
//! the micro-level mechanism behind the SysDS vs SysDS-B vs Julia gaps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sysds_tensor::kernels::{gen, matmult, reorg, tsmm};
use sysds_tensor::Matrix;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_kernels");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    // Square matmul: portable vs blocked.
    let n = 256;
    let a = gen::rand_uniform(n, n, -1.0, 1.0, 1.0, 6001);
    let b = gen::rand_uniform(n, n, -1.0, 1.0, 1.0, 6002);
    g.bench_function(BenchmarkId::new("matmul_naive_1t", n), |bch| {
        bch.iter(|| matmult::matmul(&a, &b, 1, false).unwrap())
    });
    g.bench_function(BenchmarkId::new("matmul_blocked_1t", n), |bch| {
        bch.iter(|| matmult::matmul(&a, &b, 1, true).unwrap())
    });
    g.bench_function(BenchmarkId::new("matmul_naive_mt", n), |bch| {
        bch.iter(|| matmult::matmul(&a, &b, threads, false).unwrap())
    });
    g.bench_function(BenchmarkId::new("matmul_blocked_mt", n), |bch| {
        bch.iter(|| matmult::matmul(&a, &b, threads, true).unwrap())
    });

    // Tall-skinny Gram: explicit t(X)%*%X vs fused tsmm (dense + sparse).
    let x = gen::rand_uniform(20_000, 64, -1.0, 1.0, 1.0, 6003);
    g.bench_function("gram_explicit_dense", |bch| {
        bch.iter(|| {
            let xt = reorg::transpose(&x, threads);
            matmult::matmul(&xt, &x, threads, false).unwrap()
        })
    });
    g.bench_function("gram_tsmm_dense", |bch| {
        bch.iter(|| tsmm::tsmm(&x, threads, false))
    });
    g.bench_function("gram_tsmm_dense_blas", |bch| {
        bch.iter(|| tsmm::tsmm(&x, threads, true))
    });

    let xs: Matrix = gen::rand_uniform(20_000, 64, -1.0, 1.0, 0.1, 6004).compact();
    assert!(xs.is_sparse());
    g.bench_function("gram_explicit_sparse", |bch| {
        bch.iter(|| {
            let xt = reorg::transpose(&xs, threads);
            matmult::matmul(&xt, &xs, threads, false).unwrap()
        })
    });
    g.bench_function("gram_tsmm_sparse", |bch| {
        bch.iter(|| tsmm::tsmm(&xs, threads, false))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
