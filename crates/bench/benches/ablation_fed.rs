//! Ablation 5 (§3.3): federated `lm` vs local `lm`, sweeping the number of
//! federated sites. Shows the aggregate-only exchange cost and the
//! parallelism gained from per-site computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use sysds_fed::learn::federated_lm;
use sysds_fed::{FederatedMatrix, Transport, WorkerHandle};
use sysds_tensor::kernels::BinaryOp;
use sysds_tensor::kernels::{elementwise, gen, solve, tsmm};
use sysds_tensor::Matrix;

fn local_lm(x: &Matrix, y: &Matrix, lambda: f64) -> Matrix {
    let mut g = tsmm::tsmm(x, 1, false);
    let reg = elementwise::binary_ms(
        BinaryOp::Mul,
        &Matrix::Dense(Matrix::identity(g.rows()).to_dense()),
        lambda,
    );
    g = elementwise::binary_mm(BinaryOp::Add, &g, &reg).unwrap();
    let b = tsmm::tmv(x, y, 1).unwrap();
    solve::solve(&g, &b).unwrap()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_fed");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));

    let (x, y) = gen::synthetic_regression(30_000, 40, 1.0, 0.05, 6301);

    g.bench_function("lm_local_1t", |b| b.iter(|| local_lm(&x, &y, 0.001)));

    for sites in [1usize, 2, 4] {
        // Spawn workers once per configuration; the benchmark measures the
        // federated instruction round trips, not thread spawning.
        let workers: Vec<Arc<dyn Transport>> = (0..sites)
            .map(|_| Arc::new(WorkerHandle::spawn(vec![], 1)) as Arc<dyn Transport>)
            .collect();
        let fx = FederatedMatrix::scatter(&x, &workers).unwrap();
        let fy = FederatedMatrix::scatter(&y, &workers).unwrap();
        g.bench_with_input(BenchmarkId::new("lm_federated", sites), &sites, |b, _| {
            b.iter(|| federated_lm(&fx, &fy, 0.001).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
