//! Ablation 3 (§3.1 overhead): lineage tracing must be cheap enough to be
//! always-on. Compares the same script with lineage off, lineage tracing
//! only, and tracing + reuse — on a workload with NO redundancy, so reuse
//! cannot win and any gap is pure overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use sysds::api::SystemDS;
use sysds_common::config::ReusePolicy;
use sysds_common::EngineConfig;

/// A redundancy-free pipeline: every op has distinct inputs.
const SCRIPT: &str = r#"
    X = rand(rows=2000, cols=60, seed=1)
    Y = rand(rows=2000, cols=60, seed=2)
    A = t(X) %*% Y
    B = A * 2 + 1
    C = t(Y) %*% X
    s = sum(B) + sum(C) + sum(X + Y)
"#;

fn run(config: EngineConfig) -> f64 {
    let mut sds = SystemDS::with_config(config).unwrap();
    let out = sds.execute(SCRIPT, &[], &["s"]).unwrap();
    out.f64("s").unwrap()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_lineage");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));

    g.bench_function("lineage_off", |b| b.iter(|| run(EngineConfig::default())));
    g.bench_function("lineage_trace_only", |b| {
        b.iter(|| {
            let config = EngineConfig {
                lineage: true,
                ..EngineConfig::default()
            };
            run(config)
        })
    });
    g.bench_function("lineage_full_reuse", |b| {
        b.iter(|| run(EngineConfig::default().reuse_policy(ReusePolicy::FullAndPartial)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
