//! Figure 5(d): reuse on sparse data while sweeping the number of rows
//! (fixed k). "The larger the input, the higher the improvements because
//! the remaining operations access only intermediates, whose size is
//! independent of the number of rows."

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sysds_baselines::HyperParamWorkload;
use sysds_bench::{run_sysds, SysVariant};

fn workload(rows: usize) -> HyperParamWorkload {
    let w = HyperParamWorkload {
        rows,
        cols: 80,
        sparsity: 0.1,
        num_models: 8,
        seed: 5004,
        dir: sysds_bench::bench_dir().join("fig5d"),
    };
    w.materialize().expect("inputs");
    w
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5d_reuse_sparse");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));
    for rows in [2_000usize, 6_000, 18_000] {
        let w = workload(rows);
        g.bench_with_input(BenchmarkId::new("SysDS", rows), &rows, |b, _| {
            b.iter(|| run_sysds(&w, SysVariant::Plain))
        });
        g.bench_with_input(BenchmarkId::new("SysDS-Reuse", rows), &rows, |b, _| {
            b.iter(|| run_sysds(&w, SysVariant::Reuse))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
