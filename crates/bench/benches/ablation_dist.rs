//! Ablation 4 (§2.4 blocking): distributed blocked execution vs local —
//! reblock cost, blocked matmul, blocked tsmm, and the n-d local reblock
//! conversion of the exponentially-decreasing blocking scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sysds_dist::{BlockedMatrix, BlockedTensor};
use sysds_tensor::kernels::{gen, matmult, tsmm};
use sysds_tensor::BasicTensorBlock;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_dist");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    let a = gen::rand_uniform(512, 512, -1.0, 1.0, 1.0, 6201);
    let b = gen::rand_uniform(512, 512, -1.0, 1.0, 1.0, 6202);

    g.bench_function("matmul_local", |bch| {
        bch.iter(|| matmult::matmul(&a, &b, threads, false).unwrap())
    });
    for bs in [64usize, 128, 256] {
        g.bench_with_input(BenchmarkId::new("matmul_blocked", bs), &bs, |bch, &bs| {
            bch.iter(|| {
                let da = BlockedMatrix::from_matrix(&a, bs, threads).unwrap();
                let db = BlockedMatrix::from_matrix(&b, bs, threads).unwrap();
                da.matmul(&db, 1).unwrap().to_matrix()
            })
        });
    }

    // Tall-skinny tsmm: local fused vs distributed per-block plan.
    let x = gen::rand_uniform(40_000, 64, -1.0, 1.0, 1.0, 6203);
    g.bench_function("tsmm_local", |bch| {
        bch.iter(|| tsmm::tsmm(&x, threads, false))
    });
    g.bench_function("tsmm_dist", |bch| {
        bch.iter(|| {
            let d = BlockedMatrix::from_matrix(&x, 1024, threads).unwrap();
            d.tsmm(1).unwrap()
        })
    });

    // Pure reblock overhead (the CSV → binary blocks step of §2.3).
    g.bench_function("reblock_512x512_bs128", |bch| {
        bch.iter(|| BlockedMatrix::from_matrix(&a, 128, threads).unwrap())
    });

    // N-d local blocking conversion (paper: 1024² → 128³ scaled down).
    let t = BasicTensorBlock::from_f64(
        vec![64, 64, 16],
        (0..64 * 64 * 16).map(|v| v as f64).collect(),
    )
    .unwrap();
    g.bench_function("ndblock_reblock_16_to_4", |bch| {
        bch.iter(|| {
            let coarse = BlockedTensor::from_tensor(&t, Some(16), threads).unwrap();
            coarse.reblock_to(4).unwrap()
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
