//! Per-endpoint network statistics for federated transports.
//!
//! Every networked site the master talks to gets one all-atomic cell keyed
//! by its endpoint string (`tcp://host:port`). Transports record each
//! request's byte counts, latency, retries, and timeouts here; the
//! `--stats` report renders one row per site plus workspace-wide totals
//! from the `net_*` counters in [`crate::registry::Counters`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// One endpoint's all-atomic statistics cell.
#[derive(Debug, Default)]
struct SiteCell {
    requests: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    failures: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_recv: AtomicU64,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

/// Plain snapshot of one endpoint's network statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteStats {
    pub endpoint: String,
    /// Completed request round trips (after any retries).
    pub requests: u64,
    /// Re-sent attempts beyond each request's first try.
    pub retries: u64,
    /// Attempts abandoned at the per-request deadline.
    pub timeouts: u64,
    /// Requests that exhausted their retry budget (site lost).
    pub failures: u64,
    pub bytes_sent: u64,
    pub bytes_recv: u64,
    pub total_nanos: u64,
    pub max_nanos: u64,
}

impl SiteStats {
    /// Mean round-trip latency in nanoseconds (0 when idle).
    pub fn mean_nanos(&self) -> u64 {
        if self.requests == 0 {
            0
        } else {
            self.total_nanos / self.requests
        }
    }
}

fn sites() -> &'static RwLock<HashMap<String, Arc<SiteCell>>> {
    static SITES: OnceLock<RwLock<HashMap<String, Arc<SiteCell>>>> = OnceLock::new();
    SITES.get_or_init(|| RwLock::new(HashMap::new()))
}

fn cell(endpoint: &str) -> Arc<SiteCell> {
    {
        let map = sites().read().expect("net registry poisoned");
        if let Some(c) = map.get(endpoint) {
            return Arc::clone(c);
        }
    }
    let mut map = sites().write().expect("net registry poisoned");
    Arc::clone(
        map.entry(endpoint.to_string())
            .or_insert_with(|| Arc::new(SiteCell::default())),
    )
}

/// Record one completed request round trip against `endpoint`.
/// `retries` counts the attempts beyond the first; `timeouts` the attempts
/// that hit the deadline along the way.
pub fn record_request(
    endpoint: &str,
    bytes_sent: u64,
    bytes_recv: u64,
    nanos: u64,
    retries: u64,
    timeouts: u64,
) {
    let c = cell(endpoint);
    c.requests.fetch_add(1, Ordering::Relaxed);
    c.retries.fetch_add(retries, Ordering::Relaxed);
    c.timeouts.fetch_add(timeouts, Ordering::Relaxed);
    c.bytes_sent.fetch_add(bytes_sent, Ordering::Relaxed);
    c.bytes_recv.fetch_add(bytes_recv, Ordering::Relaxed);
    c.total_nanos.fetch_add(nanos, Ordering::Relaxed);
    c.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    let g = crate::registry::counters();
    g.net_requests.fetch_add(1, Ordering::Relaxed);
    g.net_retries.fetch_add(retries, Ordering::Relaxed);
    g.net_timeouts.fetch_add(timeouts, Ordering::Relaxed);
    g.net_bytes_sent.fetch_add(bytes_sent, Ordering::Relaxed);
    g.net_bytes_recv.fetch_add(bytes_recv, Ordering::Relaxed);
    g.net_request_nanos.fetch_add(nanos, Ordering::Relaxed);
}

/// Record a request that exhausted its retry budget against `endpoint`
/// (the site is reported lost to the caller).
pub fn record_failure(endpoint: &str, retries: u64, timeouts: u64) {
    let c = cell(endpoint);
    c.failures.fetch_add(1, Ordering::Relaxed);
    c.retries.fetch_add(retries, Ordering::Relaxed);
    c.timeouts.fetch_add(timeouts, Ordering::Relaxed);
    let g = crate::registry::counters();
    g.net_failures.fetch_add(1, Ordering::Relaxed);
    g.net_retries.fetch_add(retries, Ordering::Relaxed);
    g.net_timeouts.fetch_add(timeouts, Ordering::Relaxed);
}

/// Snapshot every endpoint's statistics, sorted by endpoint for
/// deterministic reports.
pub fn site_stats() -> Vec<SiteStats> {
    let map = sites().read().expect("net registry poisoned");
    let mut rows: Vec<SiteStats> = map
        .iter()
        .map(|(endpoint, c)| SiteStats {
            endpoint: endpoint.clone(),
            requests: c.requests.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            failures: c.failures.load(Ordering::Relaxed),
            bytes_sent: c.bytes_sent.load(Ordering::Relaxed),
            bytes_recv: c.bytes_recv.load(Ordering::Relaxed),
            total_nanos: c.total_nanos.load(Ordering::Relaxed),
            max_nanos: c.max_nanos.load(Ordering::Relaxed),
        })
        .collect();
    rows.sort_by(|a, b| a.endpoint.cmp(&b.endpoint));
    rows
}

/// Drop every endpoint cell (called from [`crate::reset`]).
pub fn reset() {
    sites().write().expect("net registry poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot_per_site() {
        record_request("test://a", 100, 200, 1_000, 0, 0);
        record_request("test://a", 50, 25, 3_000, 2, 1);
        record_request("test://b", 10, 10, 500, 0, 0);
        let rows = site_stats();
        let a = rows.iter().find(|r| r.endpoint == "test://a").unwrap();
        assert_eq!(a.requests, 2);
        assert_eq!(a.retries, 2);
        assert_eq!(a.timeouts, 1);
        assert_eq!(a.bytes_sent, 150);
        assert_eq!(a.bytes_recv, 225);
        assert_eq!(a.mean_nanos(), 2_000);
        assert_eq!(a.max_nanos, 3_000);
        let pos_a = rows.iter().position(|r| r.endpoint == "test://a").unwrap();
        let pos_b = rows.iter().position(|r| r.endpoint == "test://b").unwrap();
        assert!(pos_a < pos_b, "sorted by endpoint");
    }

    #[test]
    fn failures_tracked_separately() {
        record_failure("test://dead", 3, 3);
        let rows = site_stats();
        let d = rows.iter().find(|r| r.endpoint == "test://dead").unwrap();
        assert_eq!(d.failures, 1);
        assert_eq!(d.retries, 3);
        assert_eq!(d.requests, 0);
    }

    #[test]
    fn global_counters_accumulate() {
        let before = crate::registry::counters().snapshot();
        record_request("test://c", 7, 9, 100, 1, 0);
        let after = crate::registry::counters().snapshot();
        assert!(after.net_requests > before.net_requests);
        assert!(after.net_bytes_sent >= before.net_bytes_sent + 7);
        assert!(after.net_bytes_recv >= before.net_bytes_recv + 9);
    }
}
