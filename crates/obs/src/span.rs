//! RAII spans with parent/child linking and worker attribution.
//!
//! [`Span::enter`] is a no-op returning an inert guard unless observability
//! is enabled — the disabled cost is one relaxed atomic load and a `None`
//! move. Active spans push their id onto a thread-local stack (so nested
//! spans record their parent), and on drop feed the statistics registry
//! and/or the JSONL trace sink.

use crate::registry::Phase;
use crate::trace::TraceRecord;
use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static WORKER_ID: Cell<Option<u64>> = const { Cell::new(None) };
    static THREAD_ID: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Process-wide trace epoch; span start offsets are relative to this.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn thread_id() -> u64 {
    THREAD_ID.with(|t| match t.get() {
        Some(id) => id,
        None => {
            let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            t.set(Some(id));
            id
        }
    })
}

/// Tag the current thread as logical worker `id` (parfor or federated
/// site); spans finished while the guard lives carry the id. Restores the
/// previous tag on drop, so nesting is safe.
pub fn set_worker(id: u64) -> WorkerGuard {
    let prev = WORKER_ID.with(|w| w.replace(Some(id)));
    WorkerGuard { prev }
}

/// Guard returned by [`set_worker`]; restores the previous worker tag.
pub struct WorkerGuard {
    prev: Option<u64>,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        WORKER_ID.with(|w| w.set(self.prev));
    }
}

struct ActiveSpan {
    id: u64,
    parent: u64,
    phase: Phase,
    opcode: Cow<'static, str>,
    start: Instant,
    start_nanos: u64,
}

/// A (possibly inert) span guard; see [`Span::enter`].
pub struct Span(Option<ActiveSpan>);

impl Span {
    /// Open a span with a static opcode. Inert (and free) when
    /// observability is disabled.
    #[inline]
    pub fn enter(phase: Phase, opcode: &'static str) -> Span {
        if !crate::enabled() {
            return Span(None);
        }
        Span(Some(ActiveSpan::open(phase, Cow::Borrowed(opcode))))
    }

    /// Open a span with a lazily computed opcode; the closure only runs
    /// when observability is enabled, so callers pay no allocation on the
    /// disabled fast path.
    #[inline]
    pub fn enter_with<F: FnOnce() -> String>(phase: Phase, opcode: F) -> Span {
        if !crate::enabled() {
            return Span(None);
        }
        Span(Some(ActiveSpan::open(phase, Cow::Owned(opcode()))))
    }

    /// Whether this guard is actually recording.
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }
}

impl ActiveSpan {
    fn open(phase: Phase, opcode: Cow<'static, str>) -> ActiveSpan {
        let start = Instant::now();
        let start_nanos = start.duration_since(epoch()).as_nanos() as u64;
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied().unwrap_or(0);
            s.push(id);
            parent
        });
        ActiveSpan {
            id,
            parent,
            phase,
            opcode,
            start,
            start_nanos,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(span) = self.0.take() else { return };
        let nanos = span.start.elapsed().as_nanos() as u64;
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Pop our own id; tolerate unbalanced stacks from panics.
            if s.last() == Some(&span.id) {
                s.pop();
            } else if let Some(pos) = s.iter().rposition(|&id| id == span.id) {
                s.truncate(pos);
            }
        });
        if crate::stats_enabled() {
            crate::registry::record(span.phase, &span.opcode, nanos);
        }
        if crate::trace_enabled() {
            crate::trace::write(&TraceRecord {
                id: span.id,
                parent: span.parent,
                phase: span.phase.as_str().to_string(),
                op: span.opcode.into_owned(),
                start_ns: span.start_nanos,
                dur_ns: nanos,
                thread: thread_id(),
                worker: WORKER_ID.with(|w| w.get()),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_inert() {
        let _g = crate::test_flag_guard();
        crate::disable_stats();
        crate::disable_trace();
        let s = Span::enter(Phase::Instruction, "noop");
        assert!(!s.is_active());
        let called = std::cell::Cell::new(false);
        let s2 = Span::enter_with(Phase::Instruction, || {
            called.set(true);
            "x".to_string()
        });
        assert!(!s2.is_active());
        assert!(!called.get(), "closure must not run when disabled");
    }

    #[test]
    fn worker_guard_restores() {
        {
            let _a = set_worker(7);
            WORKER_ID.with(|w| assert_eq!(w.get(), Some(7)));
            {
                let _b = set_worker(9);
                WORKER_ID.with(|w| assert_eq!(w.get(), Some(9)));
            }
            WORKER_ID.with(|w| assert_eq!(w.get(), Some(7)));
        }
        WORKER_ID.with(|w| assert_eq!(w.get(), None));
    }

    #[test]
    fn nesting_links_parents() {
        let _g = crate::test_flag_guard();
        crate::enable_stats();
        let outer = Span::enter(Phase::Execute, "outer-span-test");
        let outer_id = outer.0.as_ref().unwrap().id;
        let inner = Span::enter(Phase::Instruction, "inner-span-test");
        assert_eq!(inner.0.as_ref().unwrap().parent, outer_id);
        drop(inner);
        drop(outer);
        crate::disable_stats();
    }
}
