//! Stable 64-bit fingerprints for compiled plans.
//!
//! The conformance harness and the recompile-attribution audit both need a
//! cheap, deterministic identity for "the plan this run executed": two runs
//! whose explained plans render identically must fingerprint identically,
//! across processes and across machines. We hash the rendered plan text
//! with the same FxHash mixing function the engine uses for lineage keys
//! (re-implemented here so `sysds-obs` stays dependency-free).

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style fingerprint of an arbitrary byte string.
pub fn fingerprint64(text: &str) -> u64 {
    let mut hash = 0u64;
    let bytes = text.as_bytes();
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        hash = (hash.rotate_left(5) ^ u64::from_le_bytes(c.try_into().unwrap())).wrapping_mul(SEED);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        hash =
            (hash.rotate_left(5) ^ (u64::from_le_bytes(buf) ^ rem.len() as u64)).wrapping_mul(SEED);
    }
    hash
}

/// Render a fingerprint the way reports print it (16 hex digits).
pub fn render_fingerprint(fp: u64) -> String {
    format!("{fp:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(fingerprint64("abc"), fingerprint64("abc"));
        assert_ne!(fingerprint64("abc"), fingerprint64("abd"));
        assert_ne!(fingerprint64(""), fingerprint64(" "));
    }

    #[test]
    fn tail_bytes_matter() {
        // Exercise the chunk remainder path: same 8-byte prefix, different
        // tails must differ.
        assert_ne!(fingerprint64("12345678a"), fingerprint64("12345678b"));
        assert_ne!(fingerprint64("12345678"), fingerprint64("12345678\0"));
    }

    #[test]
    fn rendering_is_fixed_width_hex() {
        let s = render_fingerprint(fingerprint64("plan"));
        assert_eq!(s.len(), 16);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
