//! `sysds-obs` — span-based runtime observability.
//!
//! Three cooperating pieces, all global and lock-light:
//!
//! * a **statistics registry** ([`registry`]): atomic counters plus
//!   per-phase, per-opcode timing cells (count / total / max / log2
//!   histogram) with a SystemDS-style heavy-hitter query;
//! * a **span API** ([`span::Span`]): RAII guards around compiler phases,
//!   instruction executions, buffer-pool transfers, parfor workers, and
//!   federated requests, with parent/child linking through a thread-local
//!   span stack and worker attribution through a thread-local worker id;
//! * a **JSONL trace sink** ([`trace`]): one record per finished span,
//!   machine-parseable with [`trace::parse_record`] (no serde needed);
//! * an **estimate-vs-actual audit** ([`audit`]): per-opcode residuals of
//!   compile-time size/memory estimates against observed outputs, plus
//!   per-trigger attribution of dynamic recompiles;
//! * a **Chrome-trace exporter** ([`chrome_trace`]): converts buffered
//!   span records ([`enable_memory_trace`]) into `trace_event` JSON for
//!   `chrome://tracing` / Perfetto.
//!
//! Everything is disabled by default. The fast path for a disabled
//! observer is a single relaxed atomic load ([`enabled`]) — no mutex, no
//! allocation, no clock read. Enabling statistics ([`enable_stats`]) turns
//! on the registry; enabling tracing ([`enable_trace`]) additionally
//! appends every span to a JSONL file.

pub mod audit;
pub mod chrome_trace;
pub mod fingerprint;
pub mod net;
pub mod registry;
pub mod report;
pub mod span;
pub mod trace;

pub use audit::{AuditRow, EstimateInfo, RecompileTrigger, RecompileTriggers};
pub use chrome_trace::{parse_events, ChromeEvent};
pub use fingerprint::{fingerprint64, render_fingerprint};
pub use net::SiteStats;
pub use registry::{counters, CounterSnapshot, Counters, HeavyHitter, OpStats, Phase};
pub use span::{set_worker, Span, WorkerGuard};
pub use trace::{parse_record, TraceRecord};

use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};

const STATS_BIT: u8 = 1;
const TRACE_BIT: u8 = 2;

static FLAGS: AtomicU8 = AtomicU8::new(0);

/// Whether any observability (stats or tracing) is on.
///
/// This is the *only* check on the instruction fast path: one relaxed
/// atomic load.
#[inline(always)]
pub fn enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) != 0
}

/// Whether the statistics registry is collecting.
#[inline(always)]
pub fn stats_enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) & STATS_BIT != 0
}

/// Whether the JSONL trace sink is collecting.
#[inline(always)]
pub fn trace_enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) & TRACE_BIT != 0
}

/// Turn on the statistics registry.
pub fn enable_stats() {
    FLAGS.fetch_or(STATS_BIT, Ordering::Relaxed);
}

/// Turn off the statistics registry (already-recorded data is kept).
pub fn disable_stats() {
    FLAGS.fetch_and(!STATS_BIT, Ordering::Relaxed);
}

/// Open `path` as the JSONL trace sink and start emitting span records.
pub fn enable_trace(path: &Path) -> std::io::Result<()> {
    trace::open(path)?;
    FLAGS.fetch_or(TRACE_BIT, Ordering::Relaxed);
    Ok(())
}

/// Start buffering span records in memory (for post-run export, e.g. the
/// Chrome-trace sink). Composes with [`enable_trace`]: when both are on,
/// every record goes to the file and the buffer.
pub fn enable_memory_trace() {
    trace::open_memory();
    FLAGS.fetch_or(TRACE_BIT, Ordering::Relaxed);
}

/// Take all span records buffered by [`enable_memory_trace`] and stop the
/// memory sink. Leaves the trace flag untouched when a file sink is still
/// open; call [`disable_trace`] to stop tracing entirely.
pub fn take_memory_trace() -> Vec<TraceRecord> {
    trace::drain_memory()
}

/// Stop tracing and flush/close the sink.
pub fn disable_trace() {
    FLAGS.fetch_and(!TRACE_BIT, Ordering::Relaxed);
    trace::close();
}

/// Reset all counters, timing cells, and audit tables (flags are left as
/// they are).
pub fn reset() {
    registry::reset();
    audit::reset();
    net::reset();
}

/// Serializes unit tests that mutate the global flags or trace sink;
/// `cargo test` runs tests on parallel threads inside one process.
#[cfg(test)]
pub(crate) fn test_flag_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_toggle_independently() {
        let _g = crate::test_flag_guard();
        disable_stats();
        disable_trace();
        assert!(!enabled());
        enable_stats();
        assert!(enabled());
        assert!(stats_enabled());
        assert!(!trace_enabled());
        disable_stats();
        assert!(!enabled());
    }
}
