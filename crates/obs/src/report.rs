//! Text rendering for statistics reports.
//!
//! Produces the SystemDS-style heavy-hitter table printed by `--stats`:
//!
//! ```text
//! Heavy hitter instructions:
//!   #  Instruction      Time(s)     Count   Mean(ms)    Max(ms)
//!   1  ba+*              0.01234        12      1.028      2.110
//!   2  rand              0.00410         3      1.367      1.501
//! ```

use crate::registry::{heavy_hitters, HeavyHitter, Phase};

fn secs(nanos: u64) -> f64 {
    nanos as f64 / 1e9
}

fn millis(nanos: u64) -> f64 {
    nanos as f64 / 1e6
}

/// Render a heavy-hitter table for `phase` (top `k` opcodes by cumulative
/// time). Returns `None` when nothing was recorded for the phase.
pub fn heavy_hitter_table(phase: Phase, k: usize) -> Option<String> {
    let hitters = heavy_hitters(phase, k);
    if hitters.is_empty() {
        return None;
    }
    Some(render_table(&hitters))
}

/// Render a pre-fetched heavy-hitter list as an aligned table.
pub fn render_table(hitters: &[HeavyHitter]) -> String {
    let op_width = hitters
        .iter()
        .map(|h| h.opcode.len())
        .chain(std::iter::once("Instruction".len()))
        .max()
        .unwrap_or(11);
    let mut out = String::new();
    out.push_str(&format!(
        "  {:>3}  {:<op_width$}  {:>10}  {:>8}  {:>10}  {:>10}\n",
        "#", "Instruction", "Time(s)", "Count", "Mean(ms)", "Max(ms)",
    ));
    for (i, h) in hitters.iter().enumerate() {
        out.push_str(&format!(
            "  {:>3}  {:<op_width$}  {:>10.5}  {:>8}  {:>10.3}  {:>10.3}\n",
            i + 1,
            h.opcode,
            secs(h.total_nanos),
            h.count,
            millis(h.mean_nanos),
            millis(h.max_nanos),
        ));
    }
    out
}

/// Render a compact one-phase summary line, e.g. for compiler phases:
/// `parse 0.00123s (1)`.
pub fn phase_summary(phase: Phase) -> Option<String> {
    let stats = crate::registry::phase_stats(phase);
    if stats.is_empty() {
        return None;
    }
    let total: u64 = stats.iter().map(|s| s.total_nanos).sum();
    let count: u64 = stats.iter().map(|s| s.count).sum();
    Some(format!(
        "{:<12} {:>10.5}s  ({} calls)",
        phase.as_str(),
        secs(total),
        count
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::HeavyHitter;

    #[test]
    fn table_renders_rows_in_order() {
        let hitters = vec![
            HeavyHitter {
                opcode: "ba+*".to_string(),
                count: 12,
                total_nanos: 12_340_000,
                mean_nanos: 1_028_333,
                max_nanos: 2_110_000,
            },
            HeavyHitter {
                opcode: "rand".to_string(),
                count: 3,
                total_nanos: 4_100_000,
                mean_nanos: 1_366_666,
                max_nanos: 1_501_000,
            },
        ];
        let table = render_table(&hitters);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("Instruction"));
        assert!(lines[1].contains("ba+*"));
        assert!(lines[2].contains("rand"));
        let pos1 = table.find("ba+*").unwrap();
        let pos2 = table.find("rand").unwrap();
        assert!(pos1 < pos2, "rows must keep heavy-hitter order");
    }

    #[test]
    fn empty_phase_renders_nothing() {
        // Phase chosen to be untouched by other unit tests in this crate.
        assert!(heavy_hitter_table(Phase::Federated, 10).is_none());
        assert!(phase_summary(Phase::Federated).is_none());
    }
}
