//! Estimate-vs-actual audit: validating the compiler's size and memory
//! estimates against what the runtime actually produced.
//!
//! The optimizer picks execution types (CP vs distributed) and decides
//! when to recompile based on compile-time `SizeInfo` estimates. This
//! module keeps a per-opcode table of how those estimates compared to the
//! observed outputs (residual = actual bytes / estimated bytes), plus a
//! per-trigger attribution of every dynamic recompile. Like the registry,
//! cells are lock-light: a `RwLock<HashMap>` is read-locked on the common
//! path and all mutation inside a cell is relaxed atomics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Residuals are accumulated as fixed-point milli-units (ratio × 1000) so
/// cells stay plain `AtomicU64`s. Capped to keep sums from overflowing.
const RESID_SCALE: f64 = 1000.0;
const RESID_CAP_MILLI: u64 = 1_000_000_000; // ratio cap of 1e6

/// Compile-time knowledge about one instruction's output, as recorded by
/// the runtime next to the observed actuals.
#[derive(Debug, Clone, Copy, Default)]
pub struct EstimateInfo {
    /// Estimated output rows, if known at compile time.
    pub rows: Option<u64>,
    /// Estimated output columns, if known at compile time.
    pub cols: Option<u64>,
    /// Estimated output memory in bytes, if dims were known.
    pub bytes: Option<u64>,
}

#[derive(Debug, Default)]
struct AuditCell {
    /// Matrix outputs observed for this opcode.
    count: AtomicU64,
    /// Outputs whose compile-time estimate was unknown (no dims).
    unknown_est: AtomicU64,
    /// Outputs whose estimated dims were known but wrong.
    dim_mismatches: AtomicU64,
    /// Sum of estimated bytes over rows with an estimate.
    est_bytes: AtomicU64,
    /// Sum of actual bytes over rows with an estimate.
    actual_bytes: AtomicU64,
    /// Sum of per-row residuals (actual/estimated) in milli-units.
    resid_milli_sum: AtomicU64,
    /// Largest per-row residual in milli-units.
    resid_milli_max: AtomicU64,
}

impl AuditCell {
    fn record(&self, est: &EstimateInfo, actual_rows: u64, actual_cols: u64, actual_bytes: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        let Some(est_bytes) = est.bytes else {
            self.unknown_est.fetch_add(1, Ordering::Relaxed);
            return;
        };
        if est.rows.is_some_and(|r| r != actual_rows) || est.cols.is_some_and(|c| c != actual_cols)
        {
            self.dim_mismatches.fetch_add(1, Ordering::Relaxed);
        }
        self.est_bytes.fetch_add(est_bytes, Ordering::Relaxed);
        self.actual_bytes.fetch_add(actual_bytes, Ordering::Relaxed);
        let ratio = actual_bytes as f64 / est_bytes.max(1) as f64;
        let milli = ((ratio * RESID_SCALE) as u64).min(RESID_CAP_MILLI);
        self.resid_milli_sum.fetch_add(milli, Ordering::Relaxed);
        self.resid_milli_max.fetch_max(milli, Ordering::Relaxed);
    }
}

/// Snapshot of one opcode's estimate-vs-actual audit cell.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditRow {
    pub opcode: String,
    /// Matrix outputs observed.
    pub count: u64,
    /// Outputs that had no compile-time estimate (unknown dims).
    pub unknown_est: u64,
    /// Outputs whose estimated dims were known but differed from actuals.
    pub dim_mismatches: u64,
    /// Total estimated bytes (rows with an estimate only).
    pub est_bytes: u64,
    /// Total actual bytes (rows with an estimate only).
    pub actual_bytes: u64,
    /// Mean residual actual/estimated over rows with an estimate.
    pub mean_residual: f64,
    /// Worst single-output residual actual/estimated.
    pub max_residual: f64,
}

impl AuditRow {
    /// How far the worst residual strays from a perfect 1.0 estimate, in
    /// log space (over- and under-estimation rank symmetrically).
    fn badness(&self) -> f64 {
        if self.count == self.unknown_est {
            // No estimates at all: rank below any row with a measurable
            // residual but above perfect rows.
            return 0.0;
        }
        self.max_residual.max(1e-9).ln().abs()
    }
}

fn table() -> &'static RwLock<HashMap<String, Arc<AuditCell>>> {
    static TABLE: OnceLock<RwLock<HashMap<String, Arc<AuditCell>>>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Record one instruction's actual matrix output against its compile-time
/// estimate.
pub fn record(
    opcode: &str,
    est: &EstimateInfo,
    actual_rows: u64,
    actual_cols: u64,
    actual_bytes: u64,
) {
    let shard = table();
    {
        let map = shard.read().expect("obs audit poisoned");
        if let Some(cell) = map.get(opcode) {
            cell.record(est, actual_rows, actual_cols, actual_bytes);
            return;
        }
    }
    let mut map = shard.write().expect("obs audit poisoned");
    map.entry(opcode.to_string())
        .or_insert_with(|| Arc::new(AuditCell::default()))
        .record(est, actual_rows, actual_cols, actual_bytes);
}

/// Snapshot every audit cell, unsorted.
pub fn snapshot() -> Vec<AuditRow> {
    let map = table().read().expect("obs audit poisoned");
    map.iter()
        .map(|(opcode, cell)| {
            let count = cell.count.load(Ordering::Relaxed);
            let unknown_est = cell.unknown_est.load(Ordering::Relaxed);
            let with_est = count.saturating_sub(unknown_est);
            let sum_milli = cell.resid_milli_sum.load(Ordering::Relaxed);
            AuditRow {
                opcode: opcode.clone(),
                count,
                unknown_est,
                dim_mismatches: cell.dim_mismatches.load(Ordering::Relaxed),
                est_bytes: cell.est_bytes.load(Ordering::Relaxed),
                actual_bytes: cell.actual_bytes.load(Ordering::Relaxed),
                mean_residual: if with_est == 0 {
                    0.0
                } else {
                    sum_milli as f64 / RESID_SCALE / with_est as f64
                },
                max_residual: cell.resid_milli_max.load(Ordering::Relaxed) as f64 / RESID_SCALE,
            }
        })
        .collect()
}

/// The `k` opcodes whose estimates were furthest from reality, worst
/// first (residual distance from 1.0 in log space; ties by opcode).
pub fn worst_offenders(k: usize) -> Vec<AuditRow> {
    let mut rows = snapshot();
    rows.sort_by(|a, b| {
        b.badness()
            .partial_cmp(&a.badness())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| b.unknown_est.cmp(&a.unknown_est))
            .then_with(|| a.opcode.cmp(&b.opcode))
    });
    rows.truncate(k);
    rows
}

/// Render audit rows as an aligned table for the `--stats` report.
pub fn render_audit_table(rows: &[AuditRow]) -> String {
    let op_width = rows
        .iter()
        .map(|r| r.opcode.len())
        .chain(std::iter::once("Opcode".len()))
        .max()
        .unwrap_or(6);
    let mut out = String::new();
    out.push_str(&format!(
        "  {:>3}  {:<op_width$}  {:>8}  {:>10}  {:>10}  {:>9}  {:>9}  {:>6}  {:>7}\n",
        "#", "Opcode", "Count", "Est(KB)", "Act(KB)", "MeanResid", "MaxResid", "NoEst", "DimMiss",
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {:>3}  {:<op_width$}  {:>8}  {:>10.1}  {:>10.1}  {:>9.3}  {:>9.3}  {:>6}  {:>7}\n",
            i + 1,
            r.opcode,
            r.count,
            r.est_bytes as f64 / 1024.0,
            r.actual_bytes as f64 / 1024.0,
            r.mean_residual,
            r.max_residual,
            r.unknown_est,
            r.dim_mismatches,
        ));
    }
    out
}

/// Why a block plan was re-lowered (paper §2.3 (3): dynamic recompilation
/// "to mitigate initial unknowns").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecompileTrigger {
    /// The cached plan was lowered with unknown dims somewhere in the DAG.
    UnknownDims,
    /// A live-in's dimensions changed since the plan was lowered.
    DimsChange,
    /// A live-in's sparsity drifted across a bucket boundary.
    SparsityDrift,
    /// The recompiled plan crossed the memory budget: its CP/distributed
    /// operator split differs from the replaced plan's.
    BudgetCrossing,
}

static TRIGGER_COUNTS: [AtomicU64; 4] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

fn trigger_index(t: RecompileTrigger) -> usize {
    match t {
        RecompileTrigger::UnknownDims => 0,
        RecompileTrigger::DimsChange => 1,
        RecompileTrigger::SparsityDrift => 2,
        RecompileTrigger::BudgetCrossing => 3,
    }
}

/// Attribute one dynamic recompile to its trigger. A single recompile may
/// record [`RecompileTrigger::BudgetCrossing`] in addition to its cause.
pub fn record_recompile(trigger: RecompileTrigger) {
    TRIGGER_COUNTS[trigger_index(trigger)].fetch_add(1, Ordering::Relaxed);
}

/// Plain-integer snapshot of the recompile-trigger attribution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecompileTriggers {
    pub unknown_dims: u64,
    pub dims_change: u64,
    pub sparsity_drift: u64,
    pub budget_crossings: u64,
}

impl RecompileTriggers {
    /// Recompiles attributed to a cause (budget crossings are a side
    /// classification, not a cause).
    pub fn total(&self) -> u64 {
        self.unknown_dims + self.dims_change + self.sparsity_drift
    }

    /// One-line rendering for the `--stats` report.
    pub fn render(&self) -> String {
        format!(
            "unknown dims {}, dims change {}, sparsity drift {}, budget crossings {}",
            self.unknown_dims, self.dims_change, self.sparsity_drift, self.budget_crossings
        )
    }
}

/// Read the recompile-trigger counters.
pub fn recompile_triggers() -> RecompileTriggers {
    RecompileTriggers {
        unknown_dims: TRIGGER_COUNTS[0].load(Ordering::Relaxed),
        dims_change: TRIGGER_COUNTS[1].load(Ordering::Relaxed),
        sparsity_drift: TRIGGER_COUNTS[2].load(Ordering::Relaxed),
        budget_crossings: TRIGGER_COUNTS[3].load(Ordering::Relaxed),
    }
}

/// Clear the audit table and trigger counters.
pub fn reset() {
    table().write().expect("obs audit poisoned").clear();
    for c in &TRIGGER_COUNTS {
        c.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residuals_accumulate_per_opcode() {
        let est = EstimateInfo {
            rows: Some(10),
            cols: Some(10),
            bytes: Some(800),
        };
        // Perfect estimate, then a 2x overshoot by the runtime.
        record("audit-test-a", &est, 10, 10, 800);
        record("audit-test-a", &est, 20, 10, 1600);
        let rows = snapshot();
        let r = rows.iter().find(|r| r.opcode == "audit-test-a").unwrap();
        assert_eq!(r.count, 2);
        assert_eq!(r.unknown_est, 0);
        assert_eq!(r.dim_mismatches, 1, "second output had 20 rows, not 10");
        assert_eq!(r.est_bytes, 1600);
        assert_eq!(r.actual_bytes, 2400);
        assert!((r.mean_residual - 1.5).abs() < 1e-9, "{}", r.mean_residual);
        assert!((r.max_residual - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_estimates_counted_separately() {
        record("audit-test-unknown", &EstimateInfo::default(), 5, 5, 200);
        let rows = snapshot();
        let r = rows
            .iter()
            .find(|r| r.opcode == "audit-test-unknown")
            .unwrap();
        assert_eq!(r.count, 1);
        assert_eq!(r.unknown_est, 1);
        assert_eq!(r.est_bytes, 0, "no estimate, nothing accumulated");
        assert_eq!(r.mean_residual, 0.0);
    }

    #[test]
    fn worst_offenders_rank_by_residual_distance() {
        let est = EstimateInfo {
            rows: Some(1),
            cols: Some(1),
            bytes: Some(1000),
        };
        record("audit-rank-good", &est, 1, 1, 1000); // residual 1.0
        record("audit-rank-bad", &est, 1, 1, 8000); // residual 8.0
        record("audit-rank-under", &est, 1, 1, 100); // residual 0.1
        let rows = worst_offenders(100);
        let pos = |name: &str| rows.iter().position(|r| r.opcode == name).unwrap();
        assert!(pos("audit-rank-under") < pos("audit-rank-good"));
        assert!(pos("audit-rank-bad") < pos("audit-rank-good"));
    }

    #[test]
    fn recompile_triggers_count_and_render() {
        record_recompile(RecompileTrigger::UnknownDims);
        record_recompile(RecompileTrigger::DimsChange);
        record_recompile(RecompileTrigger::BudgetCrossing);
        let t = recompile_triggers();
        assert!(t.unknown_dims >= 1);
        assert!(t.dims_change >= 1);
        assert!(t.budget_crossings >= 1);
        assert!(t.total() >= 2);
        assert!(t.render().contains("unknown dims"));
    }

    #[test]
    fn audit_table_renders_rows() {
        let est = EstimateInfo {
            rows: Some(2),
            cols: Some(2),
            bytes: Some(32),
        };
        record("audit-render", &est, 2, 2, 32);
        let rows: Vec<AuditRow> = snapshot()
            .into_iter()
            .filter(|r| r.opcode == "audit-render")
            .collect();
        let text = render_audit_table(&rows);
        assert!(text.contains("Opcode"));
        assert!(text.contains("audit-render"));
        assert!(text.contains("MaxResid"));
    }
}
