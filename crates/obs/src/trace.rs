//! The JSONL trace sink: one object per line, one line per finished span.
//!
//! Schema (all fields always present; `worker` is `null` off-worker):
//!
//! ```json
//! {"id":12,"parent":3,"phase":"instruction","op":"ba+*",
//!  "start_ns":104114,"dur_ns":88021,"thread":0,"worker":null}
//! ```
//!
//! Records are written under a short mutex — tracing is a diagnostics
//! mode, not the fast path. [`parse_record`] reads the schema back without
//! a JSON dependency, so tests and the bench harness can consume traces
//! machine-readably.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

static SINK: Mutex<Option<BufWriter<File>>> = Mutex::new(None);

/// Optional in-memory sink (Chrome-trace export buffers records here).
static MEM_SINK: Mutex<Option<Vec<TraceRecord>>> = Mutex::new(None);

/// One span record, as written to (and parsed from) the trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    pub id: u64,
    pub parent: u64,
    pub phase: String,
    pub op: String,
    /// Start offset in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Per-process logical thread id.
    pub thread: u64,
    /// Logical worker id (parfor worker or federated site), if any.
    pub worker: Option<u64>,
}

/// Open (truncate) `path` as the sink.
pub(crate) fn open(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    *SINK.lock().unwrap_or_else(|e| e.into_inner()) = Some(BufWriter::new(file));
    Ok(())
}

/// Flush and drop the sink.
pub(crate) fn close() {
    let mut guard = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(mut w) = guard.take() {
        let _ = w.flush();
    }
}

/// Flush buffered records without closing the sink.
pub fn flush() {
    let mut guard = SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(w) = guard.as_mut() {
        let _ = w.flush();
    }
}

/// Start buffering records in memory (in addition to any file sink).
pub(crate) fn open_memory() {
    *MEM_SINK.lock().unwrap_or_else(|e| e.into_inner()) = Some(Vec::new());
}

/// Take all buffered in-memory records and stop the memory sink.
pub(crate) fn drain_memory() -> Vec<TraceRecord> {
    MEM_SINK
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
        .unwrap_or_default()
}

pub(crate) fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl TraceRecord {
    /// Render as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("{\"id\":");
        s.push_str(&self.id.to_string());
        s.push_str(",\"parent\":");
        s.push_str(&self.parent.to_string());
        s.push_str(",\"phase\":\"");
        escape_into(&mut s, &self.phase);
        s.push_str("\",\"op\":\"");
        escape_into(&mut s, &self.op);
        s.push_str("\",\"start_ns\":");
        s.push_str(&self.start_ns.to_string());
        s.push_str(",\"dur_ns\":");
        s.push_str(&self.dur_ns.to_string());
        s.push_str(",\"thread\":");
        s.push_str(&self.thread.to_string());
        s.push_str(",\"worker\":");
        match self.worker {
            Some(w) => s.push_str(&w.to_string()),
            None => s.push_str("null"),
        }
        s.push('}');
        s
    }
}

/// Append one record to the open sinks (no-op when none is open).
pub(crate) fn write(rec: &TraceRecord) {
    {
        let mut guard = SINK.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(w) = guard.as_mut() {
            let _ = writeln!(w, "{}", rec.to_json());
        }
    }
    let mut mem = MEM_SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(buf) = mem.as_mut() {
        buf.push(rec.clone());
    }
}

/// Parse one JSONL line produced by this sink. Returns `None` for
/// malformed lines or lines missing required fields.
pub fn parse_record(line: &str) -> Option<TraceRecord> {
    let fields = parse_flat_object(line.trim())?;
    let get_u64 = |k: &str| -> Option<u64> {
        match fields.iter().find(|(n, _)| n == k)? {
            (_, JsonValue::Num(v)) => Some(*v),
            _ => None,
        }
    };
    let get_str = |k: &str| -> Option<String> {
        match fields.iter().find(|(n, _)| n == k)? {
            (_, JsonValue::Str(v)) => Some(v.clone()),
            _ => None,
        }
    };
    let worker = match fields.iter().find(|(n, _)| n == "worker")? {
        (_, JsonValue::Num(v)) => Some(*v),
        (_, JsonValue::Null) => None,
        _ => return None,
    };
    Some(TraceRecord {
        id: get_u64("id")?,
        parent: get_u64("parent")?,
        phase: get_str("phase")?,
        op: get_str("op")?,
        start_ns: get_u64("start_ns")?,
        dur_ns: get_u64("dur_ns")?,
        thread: get_u64("thread")?,
        worker,
    })
}

enum JsonValue {
    Num(u64),
    Str(String),
    Null,
}

/// Minimal parser for the flat `{"key":value,...}` objects this module
/// emits: values are unsigned integers, strings, or `null`.
fn parse_flat_object(s: &str) -> Option<Vec<(String, JsonValue)>> {
    let inner = s.strip_prefix('{')?.strip_suffix('}')?;
    let mut out = Vec::new();
    let mut chars = inner.chars().peekable();
    loop {
        // Key.
        skip_ws(&mut chars);
        if chars.peek().is_none() {
            break;
        }
        if chars.next()? != '"' {
            return None;
        }
        let key = parse_string_body(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        // Value.
        let value = match chars.peek()? {
            '"' => {
                chars.next();
                JsonValue::Str(parse_string_body(&mut chars)?)
            }
            'n' => {
                for expect in ['n', 'u', 'l', 'l'] {
                    if chars.next()? != expect {
                        return None;
                    }
                }
                JsonValue::Null
            }
            c if c.is_ascii_digit() => {
                let mut num = String::new();
                while let Some(c) = chars.peek() {
                    if c.is_ascii_digit() {
                        num.push(*c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                JsonValue::Num(num.parse().ok()?)
            }
            _ => return None,
        };
        out.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some(',') => continue,
            None => break,
            Some(_) => return None,
        }
    }
    Some(out)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
        chars.next();
    }
}

/// Parse a JSON string body after the opening quote, consuming the
/// closing quote.
pub(crate) fn parse_string_body(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Option<String> {
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                '/' => out.push('/'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let rec = TraceRecord {
            id: 42,
            parent: 7,
            phase: "instruction".into(),
            op: "ba+*".into(),
            start_ns: 1_000,
            dur_ns: 2_500,
            thread: 3,
            worker: Some(1),
        };
        let line = rec.to_json();
        assert_eq!(parse_record(&line).unwrap(), rec);
    }

    #[test]
    fn null_worker_round_trip() {
        let rec = TraceRecord {
            id: 1,
            parent: 0,
            phase: "parse".into(),
            op: "parse".into(),
            start_ns: 0,
            dur_ns: 9,
            thread: 0,
            worker: None,
        };
        let parsed = parse_record(&rec.to_json()).unwrap();
        assert_eq!(parsed.worker, None);
    }

    #[test]
    fn escaping_round_trips() {
        let rec = TraceRecord {
            id: 1,
            parent: 0,
            phase: "instruction".into(),
            op: "weird\"op\\with\nstuff".into(),
            start_ns: 0,
            dur_ns: 0,
            thread: 0,
            worker: None,
        };
        assert_eq!(parse_record(&rec.to_json()).unwrap().op, rec.op);
    }

    #[test]
    fn quotes_and_backslashes_round_trip() {
        for op in [
            r#"a"b"#,
            r"a\b",
            r#"\""#,
            r#""\"#,
            r"\\\\",
            r#"end with quote""#,
            r#""start with quote"#,
            r#"mix \" of \\ both \n"#,
        ] {
            let rec = TraceRecord {
                id: 9,
                parent: 0,
                phase: format!("p-{op}"),
                op: op.to_string(),
                start_ns: 0,
                dur_ns: 0,
                thread: 0,
                worker: None,
            };
            let parsed = parse_record(&rec.to_json())
                .unwrap_or_else(|| panic!("unparseable for op {op:?}: {}", rec.to_json()));
            assert_eq!(parsed, rec, "round trip for {op:?}");
        }
    }

    #[test]
    fn control_characters_round_trip() {
        // Every C0 control char, plus the common named escapes.
        let mut op = String::new();
        for c in 0u32..0x20 {
            op.push(char::from_u32(c).unwrap());
        }
        op.push_str("\n\r\t\u{7f}");
        let rec = TraceRecord {
            id: 10,
            parent: 0,
            phase: "ctrl".into(),
            op: op.clone(),
            start_ns: 0,
            dur_ns: 0,
            thread: 0,
            worker: None,
        };
        let line = rec.to_json();
        assert!(
            !line.chars().any(|c| (c as u32) < 0x20),
            "raw control chars must never reach the wire: {line:?}"
        );
        assert_eq!(parse_record(&line).unwrap().op, op);
    }

    #[test]
    fn non_ascii_and_astral_round_trip() {
        let rec = TraceRecord {
            id: 11,
            parent: 0,
            phase: "unicode".into(),
            op: "öp-𝛴-矩阵".into(),
            start_ns: 0,
            dur_ns: 0,
            thread: 0,
            worker: None,
        };
        assert_eq!(parse_record(&rec.to_json()).unwrap(), rec);
    }

    #[test]
    fn memory_sink_buffers_and_drains() {
        let _g = crate::test_flag_guard();
        open_memory();
        let rec = TraceRecord {
            id: 77,
            parent: 0,
            phase: "instruction".into(),
            op: "mem-sink".into(),
            start_ns: 1,
            dur_ns: 2,
            thread: 0,
            worker: Some(1),
        };
        write(&rec);
        let drained = drain_memory();
        assert_eq!(drained, vec![rec]);
        // Drained sink is closed: further writes are dropped.
        write(&TraceRecord {
            id: 78,
            parent: 0,
            phase: "instruction".into(),
            op: "dropped".into(),
            start_ns: 0,
            dur_ns: 0,
            thread: 0,
            worker: None,
        });
        assert!(drain_memory().is_empty());
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(parse_record("").is_none());
        assert!(parse_record("{").is_none());
        assert!(parse_record("{\"id\":1}").is_none());
        assert!(parse_record("not json at all").is_none());
    }

    #[test]
    fn file_sink_writes_lines() {
        let _g = crate::test_flag_guard();
        // Unique per process AND per call (sysds-obs is dependency-free,
        // so this inlines what sysds_common::testing::unique_temp_dir does).
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("sysds-obs-tests-{}-{seq}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        open(&path).unwrap();
        write(&TraceRecord {
            id: 5,
            parent: 0,
            phase: "execute".into(),
            op: "script".into(),
            start_ns: 1,
            dur_ns: 2,
            thread: 0,
            worker: None,
        });
        close();
        let content = std::fs::read_to_string(&path).unwrap();
        let rec = parse_record(content.lines().next().unwrap()).unwrap();
        assert_eq!(rec.id, 5);
        std::fs::remove_file(&path).ok();
    }
}
