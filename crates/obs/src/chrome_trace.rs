//! Chrome/Perfetto `trace_event` export.
//!
//! Converts the span records collected by the [`crate::trace`] sink into
//! the Trace Event Format consumed by `chrome://tracing`, Perfetto, and
//! speedscope: a JSON array of events with `ph`/`ts`/`dur`/`pid`/`tid`.
//!
//! * every finished span becomes a complete (`"ph":"X"`) duration event
//!   with microsecond `ts`/`dur`;
//! * recompiles and buffer-pool evictions additionally emit instant
//!   (`"ph":"i"`) marker events;
//! * parfor workers and federated sites render as their own timeline rows:
//!   a span carrying worker id `w` is assigned `tid = 100 + w`, and a
//!   `thread_name` metadata event labels the row `worker-w`.
//!
//! Like the rest of this crate, both the writer and the test-facing
//! [`parse_events`] reader are hand-rolled — no serde.

use crate::trace::TraceRecord;
use std::collections::BTreeSet;
use std::path::Path;

/// Timeline rows for workers start here so they never collide with plain
/// thread ids.
pub const WORKER_TID_BASE: u64 = 100;

/// The pid stamped on every event (single-process engine).
pub const TRACE_PID: u64 = 1;

fn tid_of(rec: &TraceRecord) -> u64 {
    match rec.worker {
        Some(w) => WORKER_TID_BASE + w,
        None => rec.thread,
    }
}

fn push_escaped(out: &mut String, s: &str) {
    crate::trace::escape_into(out, s);
}

fn push_duration_event(out: &mut String, rec: &TraceRecord) {
    out.push_str("{\"name\":\"");
    push_escaped(out, &rec.op);
    out.push_str("\",\"cat\":\"");
    push_escaped(out, &rec.phase);
    out.push_str("\",\"ph\":\"X\",\"ts\":");
    out.push_str(&format!("{:.3}", rec.start_ns as f64 / 1000.0));
    out.push_str(",\"dur\":");
    out.push_str(&format!("{:.3}", rec.dur_ns as f64 / 1000.0));
    out.push_str(&format!(",\"pid\":{TRACE_PID},\"tid\":{}}}", tid_of(rec)));
}

fn push_instant_event(out: &mut String, rec: &TraceRecord) {
    out.push_str("{\"name\":\"");
    push_escaped(out, &rec.op);
    out.push_str("\",\"cat\":\"");
    push_escaped(out, &rec.phase);
    out.push_str("\",\"ph\":\"i\",\"s\":\"t\",\"ts\":");
    out.push_str(&format!("{:.3}", rec.start_ns as f64 / 1000.0));
    out.push_str(&format!(
        ",\"dur\":0,\"pid\":{TRACE_PID},\"tid\":{}}}",
        tid_of(rec)
    ));
}

fn push_thread_name(out: &mut String, tid: u64, name: &str) {
    out.push_str("{\"name\":\"thread_name\",\"cat\":\"__metadata\",\"ph\":\"M\",\"ts\":0,");
    out.push_str(&format!("\"pid\":{TRACE_PID},\"tid\":{tid},"));
    out.push_str("\"args\":{\"name\":\"");
    push_escaped(out, name);
    out.push_str("\"}}");
}

/// Whether a span should additionally surface as an instant marker.
fn is_marker(rec: &TraceRecord) -> bool {
    rec.phase == "recompile" || (rec.phase == "buffer_pool" && rec.op == "evict")
}

/// Render span records as a Chrome `trace_event` JSON array.
pub fn to_chrome_trace(records: &[TraceRecord]) -> String {
    let mut events: Vec<String> = Vec::with_capacity(records.len() + 8);
    // Metadata first: name the process and every timeline row.
    {
        let mut s = String::new();
        s.push_str("{\"name\":\"process_name\",\"cat\":\"__metadata\",\"ph\":\"M\",\"ts\":0,");
        s.push_str(&format!("\"pid\":{TRACE_PID},\"tid\":0,"));
        s.push_str("\"args\":{\"name\":\"sysds\"}}");
        events.push(s);
    }
    let mut worker_tids: BTreeSet<u64> = BTreeSet::new();
    let mut thread_tids: BTreeSet<u64> = BTreeSet::new();
    for rec in records {
        match rec.worker {
            Some(w) => {
                worker_tids.insert(w);
            }
            None => {
                thread_tids.insert(rec.thread);
            }
        }
    }
    for t in &thread_tids {
        let mut s = String::new();
        push_thread_name(&mut s, *t, &format!("thread-{t}"));
        events.push(s);
    }
    for w in &worker_tids {
        let mut s = String::new();
        push_thread_name(&mut s, WORKER_TID_BASE + w, &format!("worker-{w}"));
        events.push(s);
    }
    for rec in records {
        let mut s = String::new();
        push_duration_event(&mut s, rec);
        events.push(s);
        if is_marker(rec) {
            let mut s = String::new();
            push_instant_event(&mut s, rec);
            events.push(s);
        }
    }
    let mut out = String::with_capacity(events.iter().map(|e| e.len() + 2).sum::<usize>() + 4);
    out.push_str("[\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str(e);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Write the Chrome trace for `records` to `path`.
pub fn write_chrome_trace(path: &Path, records: &[TraceRecord]) -> std::io::Result<()> {
    std::fs::write(path, to_chrome_trace(records))
}

/// One parsed trace event (reader side, for tests and tooling).
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeEvent {
    pub name: String,
    pub cat: String,
    pub ph: String,
    pub ts: f64,
    /// Present on duration events; instant/metadata events carry 0 or none.
    pub dur: Option<f64>,
    pub pid: u64,
    pub tid: u64,
    /// `args.name`, set on metadata events.
    pub arg_name: Option<String>,
}

/// Parse a Chrome `trace_event` JSON array as produced by
/// [`to_chrome_trace`]. Returns `None` on malformed input or events
/// missing required fields.
pub fn parse_events(s: &str) -> Option<Vec<ChromeEvent>> {
    let mut p = Parser {
        chars: s.chars().peekable(),
    };
    p.skip_ws();
    let Value::Array(items) = p.value()? else {
        return None;
    };
    p.skip_ws();
    if p.chars.next().is_some() {
        return None;
    }
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let Value::Object(fields) = item else {
            return None;
        };
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        let get_str = |k: &str| match get(k) {
            Some(Value::Str(v)) => Some(v.clone()),
            _ => None,
        };
        let get_num = |k: &str| match get(k) {
            Some(Value::Num(v)) => Some(*v),
            _ => None,
        };
        let arg_name = match get("args") {
            Some(Value::Object(args)) => {
                args.iter()
                    .find(|(n, _)| n == "name")
                    .and_then(|(_, v)| match v {
                        Value::Str(s) => Some(s.clone()),
                        _ => None,
                    })
            }
            _ => None,
        };
        out.push(ChromeEvent {
            name: get_str("name")?,
            cat: get_str("cat")?,
            ph: get_str("ph")?,
            ts: get_num("ts")?,
            dur: get_num("dur"),
            pid: get_num("pid")? as u64,
            tid: get_num("tid")? as u64,
            arg_name,
        });
    }
    Some(out)
}

enum Value {
    Str(String),
    Num(f64),
    Object(Vec<(String, Value)>),
    Array(Vec<Value>),
    Null,
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some(c) if c.is_whitespace()) {
            self.chars.next();
        }
    }

    fn value(&mut self) -> Option<Value> {
        self.skip_ws();
        match *self.chars.peek()? {
            '{' => self.object(),
            '[' => self.array(),
            '"' => {
                self.chars.next();
                Some(Value::Str(crate::trace::parse_string_body(
                    &mut self.chars,
                )?))
            }
            'n' => {
                for expect in ['n', 'u', 'l', 'l'] {
                    if self.chars.next()? != expect {
                        return None;
                    }
                }
                Some(Value::Null)
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut num = String::new();
                while let Some(&c) = self.chars.peek() {
                    if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                        num.push(c);
                        self.chars.next();
                    } else {
                        break;
                    }
                }
                Some(Value::Num(num.parse().ok()?))
            }
            _ => None,
        }
    }

    fn object(&mut self) -> Option<Value> {
        self.chars.next(); // consume '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.chars.peek() == Some(&'}') {
            self.chars.next();
            return Some(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            if self.chars.next()? != '"' {
                return None;
            }
            let key = crate::trace::parse_string_body(&mut self.chars)?;
            self.skip_ws();
            if self.chars.next()? != ':' {
                return None;
            }
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.chars.next()? {
                ',' => continue,
                '}' => return Some(Value::Object(fields)),
                _ => return None,
            }
        }
    }

    fn array(&mut self) -> Option<Value> {
        self.chars.next(); // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.chars.peek() == Some(&']') {
            self.chars.next();
            return Some(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.chars.next()? {
                ',' => continue,
                ']' => return Some(Value::Array(items)),
                _ => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(phase: &str, op: &str, start: u64, dur: u64, worker: Option<u64>) -> TraceRecord {
        TraceRecord {
            id: 1,
            parent: 0,
            phase: phase.into(),
            op: op.into(),
            start_ns: start,
            dur_ns: dur,
            thread: 0,
            worker,
        }
    }

    #[test]
    fn duration_events_round_trip() {
        let records = vec![
            rec("parse", "parse", 1_000, 2_000, None),
            rec("instruction", "ba+*", 5_000, 500, Some(2)),
        ];
        let json = to_chrome_trace(&records);
        let events = parse_events(&json).expect("valid trace json");
        let xs: Vec<&ChromeEvent> = events.iter().filter(|e| e.ph == "X").collect();
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[0].name, "parse");
        assert!((xs[0].ts - 1.0).abs() < 1e-9, "ns converted to µs");
        assert_eq!(xs[0].dur, Some(2.0));
        assert_eq!(xs[0].tid, 0);
        assert_eq!(xs[1].tid, WORKER_TID_BASE + 2, "worker gets its own tid");
        assert!(events.iter().all(|e| e.pid == TRACE_PID));
    }

    #[test]
    fn recompiles_and_evictions_become_instants() {
        let records = vec![
            rec("recompile", "recompile", 10, 5, None),
            rec("buffer_pool", "evict", 20, 5, None),
            rec("buffer_pool", "restore", 30, 5, None),
        ];
        let events = parse_events(&to_chrome_trace(&records)).unwrap();
        let instants: Vec<&ChromeEvent> = events.iter().filter(|e| e.ph == "i").collect();
        assert_eq!(instants.len(), 2, "recompile + evict, but not restore");
        assert!(instants.iter().any(|e| e.name == "recompile"));
        assert!(instants.iter().any(|e| e.name == "evict"));
    }

    #[test]
    fn workers_get_named_timeline_rows() {
        let records = vec![
            rec("parfor_worker", "worker-0", 0, 10, Some(0)),
            rec("parfor_worker", "worker-3", 0, 10, Some(3)),
        ];
        let events = parse_events(&to_chrome_trace(&records)).unwrap();
        let meta: Vec<&ChromeEvent> = events
            .iter()
            .filter(|e| e.ph == "M" && e.name == "thread_name")
            .collect();
        assert!(meta
            .iter()
            .any(|e| e.arg_name.as_deref() == Some("worker-0") && e.tid == WORKER_TID_BASE));
        assert!(meta
            .iter()
            .any(|e| e.arg_name.as_deref() == Some("worker-3") && e.tid == WORKER_TID_BASE + 3));
    }

    #[test]
    fn op_names_are_escaped() {
        let records = vec![rec("instruction", "weird\"op\\n", 0, 1, None)];
        let json = to_chrome_trace(&records);
        let events = parse_events(&json).expect("escaping must keep json valid");
        assert!(events.iter().any(|e| e.name == "weird\"op\\n"));
    }

    #[test]
    fn empty_records_still_valid() {
        let events = parse_events(&to_chrome_trace(&[])).unwrap();
        // Just the process_name metadata event.
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].ph, "M");
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(parse_events("").is_none());
        assert!(parse_events("{}").is_none());
        assert!(
            parse_events("[{\"name\":\"x\"}]").is_none(),
            "missing fields"
        );
        assert!(parse_events("[{]").is_none());
    }
}
