//! The global statistics registry: named counters plus per-phase,
//! per-opcode timing cells.
//!
//! Cells are lock-light: a `RwLock<HashMap>` per phase is read-locked for
//! the common "opcode already known" case and write-locked only the first
//! time a new opcode appears; all mutation inside a cell is relaxed
//! atomics, so concurrent parfor workers never serialize on a mutex while
//! recording.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Execution phases a span can belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// DML text → AST.
    Parse,
    /// AST → program blocks + HOP DAGs (inlining, CSE).
    HopBuild,
    /// Static or dynamic DAG rewrites.
    Rewrite,
    /// Size/sparsity propagation over a DAG.
    SizeProp,
    /// DAG → instruction plan.
    Lower,
    /// Re-lowering a block whose live-in sizes changed.
    Recompile,
    /// One runtime instruction execution.
    Instruction,
    /// Buffer-pool evict/restore transfers.
    BufferPool,
    /// A parfor worker's whole chunk.
    ParforWorker,
    /// One federated request round trip (master side) or site execution.
    Federated,
    /// Whole-script execution.
    Execute,
}

impl Phase {
    /// Stable lowercase name used in trace records and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::HopBuild => "hop_build",
            Phase::Rewrite => "rewrite",
            Phase::SizeProp => "size_prop",
            Phase::Lower => "lower",
            Phase::Recompile => "recompile",
            Phase::Instruction => "instruction",
            Phase::BufferPool => "buffer_pool",
            Phase::ParforWorker => "parfor_worker",
            Phase::Federated => "federated",
            Phase::Execute => "execute",
        }
    }

    /// All phases, in registry order.
    pub const ALL: [Phase; 11] = [
        Phase::Parse,
        Phase::HopBuild,
        Phase::Rewrite,
        Phase::SizeProp,
        Phase::Lower,
        Phase::Recompile,
        Phase::Instruction,
        Phase::BufferPool,
        Phase::ParforWorker,
        Phase::Federated,
        Phase::Execute,
    ];

    fn index(&self) -> usize {
        Phase::ALL
            .iter()
            .position(|p| p == self)
            .expect("phase listed in ALL")
    }
}

/// Number of log2(nanos) histogram buckets (bucket 31 ≈ ≥ 2.1 s).
pub const HIST_BUCKETS: usize = 32;

/// One timing cell: all-atomic, shared behind an `Arc`.
#[derive(Debug, Default)]
struct OpCell {
    count: AtomicU64,
    total_nanos: AtomicU64,
    max_nanos: AtomicU64,
    hist: [AtomicU64; HIST_BUCKETS],
}

impl OpCell {
    fn record(&self, nanos: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        let bucket = if nanos == 0 {
            0
        } else {
            (63 - nanos.leading_zeros() as usize).min(HIST_BUCKETS - 1)
        };
        self.hist[bucket].fetch_add(1, Ordering::Relaxed);
    }
}

/// Snapshot of one (phase, opcode) timing cell.
#[derive(Debug, Clone)]
pub struct OpStats {
    pub phase: Phase,
    pub opcode: String,
    pub count: u64,
    pub total_nanos: u64,
    pub max_nanos: u64,
    /// log2(nanos) histogram: bucket `i` counts spans with
    /// `2^i <= nanos < 2^(i+1)` (bucket 0 also holds sub-nanosecond spans).
    pub hist: [u64; HIST_BUCKETS],
}

impl OpStats {
    /// Mean duration in nanoseconds (0 when the cell is empty).
    pub fn mean_nanos(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.total_nanos / self.count
        }
    }
}

/// One row of the heavy-hitter table.
#[derive(Debug, Clone)]
pub struct HeavyHitter {
    pub opcode: String,
    pub count: u64,
    pub total_nanos: u64,
    pub mean_nanos: u64,
    pub max_nanos: u64,
}

struct Registry {
    phases: Vec<RwLock<HashMap<String, Arc<OpCell>>>>,
}

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| Registry {
        phases: Phase::ALL
            .iter()
            .map(|_| RwLock::new(HashMap::new()))
            .collect(),
    })
}

/// Record one finished span into the registry.
pub fn record(phase: Phase, opcode: &str, nanos: u64) {
    let shard = &registry().phases[phase.index()];
    {
        let map = shard.read().expect("obs registry poisoned");
        if let Some(cell) = map.get(opcode) {
            cell.record(nanos);
            return;
        }
    }
    let mut map = shard.write().expect("obs registry poisoned");
    map.entry(opcode.to_string())
        .or_insert_with(|| Arc::new(OpCell::default()))
        .record(nanos);
}

/// Snapshot every cell of one phase.
pub fn phase_stats(phase: Phase) -> Vec<OpStats> {
    let map = registry().phases[phase.index()]
        .read()
        .expect("obs registry poisoned");
    map.iter()
        .map(|(opcode, cell)| {
            let mut hist = [0u64; HIST_BUCKETS];
            for (dst, src) in hist.iter_mut().zip(cell.hist.iter()) {
                *dst = src.load(Ordering::Relaxed);
            }
            OpStats {
                phase,
                opcode: opcode.clone(),
                count: cell.count.load(Ordering::Relaxed),
                total_nanos: cell.total_nanos.load(Ordering::Relaxed),
                max_nanos: cell.max_nanos.load(Ordering::Relaxed),
                hist,
            }
        })
        .collect()
}

/// Top-k opcodes of a phase by cumulative time (the SystemDS heavy-hitter
/// table; ties broken by opcode name for determinism).
pub fn heavy_hitters(phase: Phase, k: usize) -> Vec<HeavyHitter> {
    let mut rows: Vec<OpStats> = phase_stats(phase);
    rows.sort_by(|a, b| {
        b.total_nanos
            .cmp(&a.total_nanos)
            .then_with(|| a.opcode.cmp(&b.opcode))
    });
    rows.truncate(k);
    rows.into_iter()
        .map(|s| HeavyHitter {
            mean_nanos: s.mean_nanos(),
            opcode: s.opcode,
            count: s.count,
            total_nanos: s.total_nanos,
            max_nanos: s.max_nanos,
        })
        .collect()
}

/// Named event counters covering the non-span subsystems.
#[derive(Debug, Default)]
pub struct Counters {
    /// Buffer pool: matrices written to spill files.
    pub buf_evictions: AtomicU64,
    /// Buffer pool: bytes written to spill files.
    pub buf_spilled_bytes: AtomicU64,
    /// Buffer pool: matrices restored from spill files.
    pub buf_restores: AtomicU64,
    /// Buffer pool: bytes restored from spill files.
    pub buf_restored_bytes: AtomicU64,
    /// Lineage cache: full hits.
    pub lin_hits: AtomicU64,
    /// Lineage cache: partial (compensation-plan) hits.
    pub lin_partial_hits: AtomicU64,
    /// Lineage cache: misses.
    pub lin_misses: AtomicU64,
    /// Lineage cache: evictions.
    pub lin_evictions: AtomicU64,
    /// Parfor: workers spawned.
    pub parfor_workers: AtomicU64,
    /// Parfor: iterations executed.
    pub parfor_iters: AtomicU64,
    /// Parfor: summed worker wall time.
    pub parfor_worker_nanos: AtomicU64,
    /// Federated: requests sent by the master.
    pub fed_requests: AtomicU64,
    /// Federated: summed request round-trip latency.
    pub fed_request_nanos: AtomicU64,
    /// Compiler: block plans re-lowered after a size change.
    pub recompiles: AtomicU64,
    /// Fused operators executed via the one-pass kernel.
    pub fusion_hits: AtomicU64,
    /// Bytes of per-operator intermediates fusion avoided materializing.
    pub fusion_bytes_saved: AtomicU64,
    /// Network transport: completed request round trips.
    pub net_requests: AtomicU64,
    /// Network transport: re-sent attempts beyond each request's first try.
    pub net_retries: AtomicU64,
    /// Network transport: attempts abandoned at the per-request deadline.
    pub net_timeouts: AtomicU64,
    /// Network transport: requests that exhausted their retry budget.
    pub net_failures: AtomicU64,
    /// Network transport: request frame bytes written to sockets.
    pub net_bytes_sent: AtomicU64,
    /// Network transport: response frame bytes read from sockets.
    pub net_bytes_recv: AtomicU64,
    /// Network transport: summed request round-trip latency.
    pub net_request_nanos: AtomicU64,
    /// Conformance harness: differential checks executed (script × config
    /// matrix runs).
    pub conf_checks: AtomicU64,
    /// Conformance harness: divergences detected between configurations.
    pub conf_divergences: AtomicU64,
}

static COUNTERS: Counters = Counters {
    buf_evictions: AtomicU64::new(0),
    buf_spilled_bytes: AtomicU64::new(0),
    buf_restores: AtomicU64::new(0),
    buf_restored_bytes: AtomicU64::new(0),
    lin_hits: AtomicU64::new(0),
    lin_partial_hits: AtomicU64::new(0),
    lin_misses: AtomicU64::new(0),
    lin_evictions: AtomicU64::new(0),
    parfor_workers: AtomicU64::new(0),
    parfor_iters: AtomicU64::new(0),
    parfor_worker_nanos: AtomicU64::new(0),
    fed_requests: AtomicU64::new(0),
    fed_request_nanos: AtomicU64::new(0),
    recompiles: AtomicU64::new(0),
    fusion_hits: AtomicU64::new(0),
    fusion_bytes_saved: AtomicU64::new(0),
    net_requests: AtomicU64::new(0),
    net_retries: AtomicU64::new(0),
    net_timeouts: AtomicU64::new(0),
    net_failures: AtomicU64::new(0),
    net_bytes_sent: AtomicU64::new(0),
    net_bytes_recv: AtomicU64::new(0),
    net_request_nanos: AtomicU64::new(0),
    conf_checks: AtomicU64::new(0),
    conf_divergences: AtomicU64::new(0),
};

/// The global counter set.
pub fn counters() -> &'static Counters {
    &COUNTERS
}

/// Plain-integer copy of [`Counters`] for reports and delta assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub buf_evictions: u64,
    pub buf_spilled_bytes: u64,
    pub buf_restores: u64,
    pub buf_restored_bytes: u64,
    pub lin_hits: u64,
    pub lin_partial_hits: u64,
    pub lin_misses: u64,
    pub lin_evictions: u64,
    pub parfor_workers: u64,
    pub parfor_iters: u64,
    pub parfor_worker_nanos: u64,
    pub fed_requests: u64,
    pub fed_request_nanos: u64,
    pub recompiles: u64,
    pub fusion_hits: u64,
    pub fusion_bytes_saved: u64,
    pub net_requests: u64,
    pub net_retries: u64,
    pub net_timeouts: u64,
    pub net_failures: u64,
    pub net_bytes_sent: u64,
    pub net_bytes_recv: u64,
    pub net_request_nanos: u64,
    pub conf_checks: u64,
    pub conf_divergences: u64,
}

impl Counters {
    /// Read every counter (relaxed) into a plain snapshot.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            buf_evictions: self.buf_evictions.load(Ordering::Relaxed),
            buf_spilled_bytes: self.buf_spilled_bytes.load(Ordering::Relaxed),
            buf_restores: self.buf_restores.load(Ordering::Relaxed),
            buf_restored_bytes: self.buf_restored_bytes.load(Ordering::Relaxed),
            lin_hits: self.lin_hits.load(Ordering::Relaxed),
            lin_partial_hits: self.lin_partial_hits.load(Ordering::Relaxed),
            lin_misses: self.lin_misses.load(Ordering::Relaxed),
            lin_evictions: self.lin_evictions.load(Ordering::Relaxed),
            parfor_workers: self.parfor_workers.load(Ordering::Relaxed),
            parfor_iters: self.parfor_iters.load(Ordering::Relaxed),
            parfor_worker_nanos: self.parfor_worker_nanos.load(Ordering::Relaxed),
            fed_requests: self.fed_requests.load(Ordering::Relaxed),
            fed_request_nanos: self.fed_request_nanos.load(Ordering::Relaxed),
            recompiles: self.recompiles.load(Ordering::Relaxed),
            fusion_hits: self.fusion_hits.load(Ordering::Relaxed),
            fusion_bytes_saved: self.fusion_bytes_saved.load(Ordering::Relaxed),
            net_requests: self.net_requests.load(Ordering::Relaxed),
            net_retries: self.net_retries.load(Ordering::Relaxed),
            net_timeouts: self.net_timeouts.load(Ordering::Relaxed),
            net_failures: self.net_failures.load(Ordering::Relaxed),
            net_bytes_sent: self.net_bytes_sent.load(Ordering::Relaxed),
            net_bytes_recv: self.net_bytes_recv.load(Ordering::Relaxed),
            net_request_nanos: self.net_request_nanos.load(Ordering::Relaxed),
            conf_checks: self.conf_checks.load(Ordering::Relaxed),
            conf_divergences: self.conf_divergences.load(Ordering::Relaxed),
        }
    }
}

/// Reset all timing cells and counters to zero.
pub fn reset() {
    for shard in &registry().phases {
        shard.write().expect("obs registry poisoned").clear();
    }
    let c = counters();
    for a in [
        &c.buf_evictions,
        &c.buf_spilled_bytes,
        &c.buf_restores,
        &c.buf_restored_bytes,
        &c.lin_hits,
        &c.lin_partial_hits,
        &c.lin_misses,
        &c.lin_evictions,
        &c.parfor_workers,
        &c.parfor_iters,
        &c.parfor_worker_nanos,
        &c.fed_requests,
        &c.fed_request_nanos,
        &c.recompiles,
        &c.fusion_hits,
        &c.fusion_bytes_saved,
        &c.net_requests,
        &c.net_retries,
        &c.net_timeouts,
        &c.net_failures,
        &c.net_bytes_sent,
        &c.net_bytes_recv,
        &c.net_request_nanos,
        &c.conf_checks,
        &c.conf_divergences,
    ] {
        a.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_heavy_hitters() {
        // Use a phase no other test writes to, to stay parallel-safe.
        record(Phase::Execute, "hh-test-a", 100);
        record(Phase::Execute, "hh-test-a", 300);
        record(Phase::Execute, "hh-test-b", 50);
        let hh = heavy_hitters(Phase::Execute, 10);
        let a = hh.iter().find(|h| h.opcode == "hh-test-a").unwrap();
        assert_eq!(a.count, 2);
        assert_eq!(a.total_nanos, 400);
        assert_eq!(a.mean_nanos, 200);
        assert_eq!(a.max_nanos, 300);
        let pos_a = hh.iter().position(|h| h.opcode == "hh-test-a").unwrap();
        let pos_b = hh.iter().position(|h| h.opcode == "hh-test-b").unwrap();
        assert!(pos_a < pos_b, "sorted by cumulative time");
    }

    #[test]
    fn histogram_buckets() {
        record(Phase::Parse, "hist-test", 1); // bucket 0
        record(Phase::Parse, "hist-test", 1024); // bucket 10
        let stats = phase_stats(Phase::Parse);
        let s = stats.iter().find(|s| s.opcode == "hist-test").unwrap();
        assert!(s.hist[0] >= 1);
        assert!(s.hist[10] >= 1);
    }

    #[test]
    fn counter_snapshot_reads_back() {
        counters().fed_requests.fetch_add(3, Ordering::Relaxed);
        assert!(counters().snapshot().fed_requests >= 3);
    }
}
