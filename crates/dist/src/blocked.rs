//! Blocked matrix representation and distributed operations.
//!
//! A [`BlockedMatrix`] is the paper's `PairRDD<TensorIndexes, TensorBlock>`:
//! fixed-size square blocks keyed by `(block_row, block_col)`. "Squared
//! 1K×1K blocks ... simplify join processing because blocks are always
//! aligned" — element-wise ops join on identical keys, and matmul joins
//! A's column-block index with B's row-block index.

use crate::collection::DistCollection;
use sysds_common::{Result, SysDsError};
use sysds_tensor::kernels::BinaryOp;
use sysds_tensor::kernels::{elementwise, indexing, matmult, tsmm};
use sysds_tensor::{DenseMatrix, Matrix};

/// Block index `(block_row, block_col)`.
pub type BlockIndex = (usize, usize);

/// A matrix partitioned into fixed-size square blocks.
#[derive(Debug, Clone)]
pub struct BlockedMatrix {
    rows: usize,
    cols: usize,
    block_size: usize,
    blocks: DistCollection<BlockIndex, Matrix>,
}

impl BlockedMatrix {
    /// Reblock a local matrix into `block_size` tiles over
    /// `num_partitions` partitions (the paper's `reblock` of CSV inputs).
    pub fn from_matrix(
        m: &Matrix,
        block_size: usize,
        num_partitions: usize,
    ) -> Result<BlockedMatrix> {
        let bs = block_size.max(1);
        let (rows, cols) = m.shape();
        let mut items = Vec::new();
        for br in 0..rows.div_ceil(bs) {
            for bc in 0..cols.div_ceil(bs) {
                let r0 = br * bs;
                let c0 = bc * bs;
                let block = indexing::slice(m, r0..(r0 + bs).min(rows), c0..(c0 + bs).min(cols))?;
                items.push(((br, bc), block));
            }
        }
        Ok(BlockedMatrix {
            rows,
            cols,
            block_size: bs,
            blocks: DistCollection::from_vec(items, num_partitions),
        })
    }

    /// Materialize back into one local matrix (Spark `collect` + stitch).
    pub fn to_matrix(&self) -> Matrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for (&(br, bc), block) in self.blocks.clone().collect().iter().map(|(k, v)| (k, v)) {
            let (r0, c0) = (br * self.block_size, bc * self.block_size);
            for i in 0..block.rows() {
                for j in 0..block.cols() {
                    out.set(r0 + i, c0 + j, block.get(i, j));
                }
            }
        }
        Matrix::Dense(out).compact()
    }

    /// Logical shape.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Tile edge length.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of stored blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.count()
    }

    /// Distributed element-wise op: join on aligned block indexes.
    pub fn elementwise(&self, op: BinaryOp, other: &BlockedMatrix) -> Result<BlockedMatrix> {
        if self.shape() != other.shape() || self.block_size != other.block_size {
            return Err(SysDsError::runtime(
                "blocked elementwise: misaligned blocking",
            ));
        }
        let joined = self.blocks.clone().join(other.blocks.clone());
        let blocks = joined.map_values(|_, (a, b)| {
            elementwise::binary_mm(op, &a, &b).expect("aligned blocks share shapes")
        });
        Ok(BlockedMatrix {
            rows: self.rows,
            cols: self.cols,
            block_size: self.block_size,
            blocks,
        })
    }

    /// Distributed matrix multiply: replicate-free join on the contraction
    /// index followed by reduce-by-output-block (the classic RMM plan).
    pub fn matmul(&self, other: &BlockedMatrix, threads: usize) -> Result<BlockedMatrix> {
        if self.cols != other.rows || self.block_size != other.block_size {
            return Err(SysDsError::DimensionMismatch {
                op: "dist %*%",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let parts = self.blocks.num_partitions();
        // Key A blocks by contraction index k = bc, B blocks by k = br.
        let a_by_k = self
            .blocks
            .clone()
            .flat_map(parts, |(br, bc), block| vec![(bc, (br, block))]);
        let b_by_k = other
            .blocks
            .clone()
            .flat_map(parts, |(br, bc), block| vec![(br, (bc, block))]);
        let joined = a_by_k.join(b_by_k);
        let partials = joined.flat_map(parts, move |_k, ((br, ablock), (bc, bblock))| {
            let prod = matmult::matmul(&ablock, &bblock, threads, false)
                .expect("contraction dims align by construction");
            vec![((br, bc), prod)]
        });
        let blocks = partials.reduce_by_key(|a, b| {
            elementwise::binary_mm(BinaryOp::Add, &a, &b).expect("partial products share shapes")
        });
        Ok(BlockedMatrix {
            rows: self.rows,
            cols: other.cols,
            block_size: self.block_size,
            blocks,
        })
    }

    /// Distributed `t(X) %*% X`: per-block fused tsmm partials reduced on
    /// the driver (the MapMM-style plan SystemML uses for tall-skinny X).
    pub fn tsmm(&self, threads: usize) -> Result<Matrix> {
        if self.cols > self.block_size {
            // General case: transpose-based plan.
            let t = self.transpose()?;
            return Ok(t.matmul(self, threads)?.to_matrix());
        }
        let partials = self
            .blocks
            .clone()
            .map_values(move |_, block| tsmm::tsmm(&block, threads, false));
        partials
            .reduce(|a, b| {
                elementwise::binary_mm(BinaryOp::Add, &a, &b).expect("gram matrices share shape")
            })
            .map(Matrix::compact)
            .ok_or_else(|| SysDsError::runtime("tsmm over empty blocked matrix"))
    }

    /// Distributed transpose: remap block indexes and transpose each tile
    /// locally ("blocks ... allow local transformations like transpose").
    pub fn transpose(&self) -> Result<BlockedMatrix> {
        let parts = self.blocks.num_partitions();
        let blocks = self.blocks.clone().flat_map(parts, |(br, bc), block| {
            vec![((bc, br), sysds_tensor::kernels::reorg::transpose(&block, 1))]
        });
        Ok(BlockedMatrix {
            rows: self.cols,
            cols: self.rows,
            block_size: self.block_size,
            blocks,
        })
    }

    /// Distributed full-sum aggregate.
    pub fn sum(&self) -> f64 {
        self.blocks
            .clone()
            .map_values(|_, block| {
                sysds_tensor::kernels::aggregate::aggregate_full(
                    sysds_tensor::kernels::AggFn::Sum,
                    &block,
                )
                .expect("sum of non-empty block")
            })
            .reduce(|a, b| a + b)
            .unwrap_or(0.0)
    }

    /// Scalar op applied block-wise.
    pub fn scalar_op(&self, op: BinaryOp, s: f64) -> BlockedMatrix {
        let blocks = self
            .blocks
            .clone()
            .map_values(move |_, block| elementwise::binary_ms(op, &block, s));
        BlockedMatrix {
            rows: self.rows,
            cols: self.cols,
            block_size: self.block_size,
            blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysds_tensor::kernels::gen;

    #[test]
    fn reblock_round_trip() {
        let m = gen::rand_uniform(37, 23, -1.0, 1.0, 1.0, 121);
        let b = BlockedMatrix::from_matrix(&m, 10, 4).unwrap();
        assert_eq!(b.num_blocks(), 4 * 3);
        assert!(b.to_matrix().approx_eq(&m, 0.0));
    }

    #[test]
    fn reblock_sparse_preserves_representation() {
        let m = gen::rand_uniform(50, 50, -1.0, 1.0, 0.05, 122).compact();
        let b = BlockedMatrix::from_matrix(&m, 16, 3).unwrap();
        assert!(b.to_matrix().approx_eq(&m, 0.0));
    }

    #[test]
    fn distributed_matmul_matches_local() {
        let a = gen::rand_uniform(33, 29, -1.0, 1.0, 1.0, 123);
        let b = gen::rand_uniform(29, 17, -1.0, 1.0, 1.0, 124);
        let expect = matmult::matmul(&a, &b, 1, false).unwrap();
        let da = BlockedMatrix::from_matrix(&a, 8, 4).unwrap();
        let db = BlockedMatrix::from_matrix(&b, 8, 4).unwrap();
        let got = da.matmul(&db, 1).unwrap().to_matrix();
        assert!(got.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn distributed_matmul_rejects_misaligned() {
        let a = BlockedMatrix::from_matrix(&Matrix::zeros(4, 4), 2, 1).unwrap();
        let b = BlockedMatrix::from_matrix(&Matrix::zeros(4, 4), 3, 1).unwrap();
        assert!(a.matmul(&b, 1).is_err());
        let c = BlockedMatrix::from_matrix(&Matrix::zeros(5, 4), 2, 1).unwrap();
        assert!(a.matmul(&c, 1).is_err());
    }

    #[test]
    fn distributed_elementwise_matches_local() {
        let a = gen::rand_uniform(20, 15, -1.0, 1.0, 1.0, 125);
        let b = gen::rand_uniform(20, 15, -1.0, 1.0, 1.0, 126);
        let expect = elementwise::binary_mm(BinaryOp::Mul, &a, &b).unwrap();
        let da = BlockedMatrix::from_matrix(&a, 7, 3).unwrap();
        let db = BlockedMatrix::from_matrix(&b, 7, 3).unwrap();
        let got = da.elementwise(BinaryOp::Mul, &db).unwrap().to_matrix();
        assert!(got.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn distributed_tsmm_matches_local() {
        // tall-skinny: cols < block size, uses the fused per-block plan
        let x = gen::rand_uniform(64, 6, -1.0, 1.0, 1.0, 127);
        let d = BlockedMatrix::from_matrix(&x, 16, 4).unwrap();
        let got = d.tsmm(2).unwrap();
        let expect = tsmm::tsmm(&x, 1, false);
        assert!(got.approx_eq(&expect, 1e-9));
        // wide: cols > block size, falls back to transpose plan
        let w = gen::rand_uniform(30, 25, -1.0, 1.0, 1.0, 128);
        let dw = BlockedMatrix::from_matrix(&w, 8, 4).unwrap();
        assert!(dw
            .tsmm(1)
            .unwrap()
            .approx_eq(&tsmm::tsmm(&w, 1, false), 1e-9));
    }

    #[test]
    fn distributed_transpose_matches_local() {
        let m = gen::rand_uniform(21, 34, -1.0, 1.0, 1.0, 129);
        let d = BlockedMatrix::from_matrix(&m, 8, 4).unwrap();
        let got = d.transpose().unwrap().to_matrix();
        assert!(got.approx_eq(&sysds_tensor::kernels::reorg::transpose(&m, 1), 0.0));
    }

    #[test]
    fn distributed_sum_and_scalar_op() {
        let m = gen::rand_uniform(30, 30, 0.0, 1.0, 1.0, 130);
        let d = BlockedMatrix::from_matrix(&m, 9, 3).unwrap();
        let local =
            sysds_tensor::kernels::aggregate::aggregate_full(sysds_tensor::kernels::AggFn::Sum, &m)
                .unwrap();
        assert!((d.sum() - local).abs() < 1e-9);
        let scaled = d.scalar_op(BinaryOp::Mul, 2.0);
        assert!((scaled.sum() - 2.0 * local).abs() < 1e-9);
    }
}
