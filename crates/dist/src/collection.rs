//! An RDD-like partitioned key-value collection executed on threads.
//!
//! `DistCollection<K, V>` models Spark's `PairRDD<K, V>`: data lives in
//! partitions; transformations (`map_values`, `filter`) run per-partition in
//! parallel; `reduce_by_key` and `join` shuffle by key hash. Everything is
//! eager (no lazy DAG) because the compiler above us already decides
//! operator order.

use std::collections::HashMap;
use std::hash::Hash;

/// A partitioned collection of `(K, V)` pairs.
#[derive(Debug, Clone)]
pub struct DistCollection<K, V> {
    partitions: Vec<Vec<(K, V)>>,
}

impl<K, V> DistCollection<K, V>
where
    K: Eq + Hash + Clone + Send + Sync,
    V: Send + Sync,
{
    /// Distribute items round-robin into `num_partitions`.
    pub fn from_vec(items: Vec<(K, V)>, num_partitions: usize) -> Self {
        let n = num_partitions.max(1);
        let mut partitions: Vec<Vec<(K, V)>> = (0..n).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            partitions[i % n].push(item);
        }
        DistCollection { partitions }
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of elements.
    pub fn count(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// Gather all elements into one vector (Spark `collect`).
    pub fn collect(self) -> Vec<(K, V)> {
        self.partitions.into_iter().flatten().collect()
    }

    /// Parallel map over values, keeping keys and partitioning.
    pub fn map_values<V2, F>(self, f: F) -> DistCollection<K, V2>
    where
        V2: Send + Sync,
        F: Fn(&K, V) -> V2 + Send + Sync,
    {
        let f = &f;
        let partitions = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = self
                .partitions
                .into_iter()
                .map(|part| {
                    s.spawn(move |_| {
                        part.into_iter()
                            .map(|(k, v)| {
                                let v2 = f(&k, v);
                                (k, v2)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("map worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("map scope failed");
        DistCollection { partitions }
    }

    /// Parallel flat-map over pairs, repartitioning the output.
    pub fn flat_map<K2, V2, I, F>(self, num_partitions: usize, f: F) -> DistCollection<K2, V2>
    where
        K2: Eq + Hash + Clone + Send + Sync,
        V2: Send + Sync,
        I: IntoIterator<Item = (K2, V2)>,
        F: Fn(K, V) -> I + Send + Sync,
    {
        let f = &f;
        let items: Vec<(K2, V2)> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = self
                .partitions
                .into_iter()
                .map(|part| {
                    s.spawn(move |_| {
                        part.into_iter()
                            .flat_map(|(k, v)| f(k, v))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("flat_map worker panicked"))
                .collect()
        })
        .expect("flat_map scope failed");
        DistCollection::from_vec(items, num_partitions)
    }

    /// Keep pairs satisfying the predicate.
    pub fn filter<F>(self, f: F) -> DistCollection<K, V>
    where
        F: Fn(&K, &V) -> bool + Send + Sync,
    {
        let f = &f;
        let partitions = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = self
                .partitions
                .into_iter()
                .map(|part| {
                    s.spawn(move |_| {
                        part.into_iter()
                            .filter(|(k, v)| f(k, v))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("filter worker panicked"))
                .collect::<Vec<_>>()
        })
        .expect("filter scope failed");
        DistCollection { partitions }
    }

    /// Shuffle by key and combine values with `f` (Spark `reduceByKey`).
    pub fn reduce_by_key<F>(self, f: F) -> DistCollection<K, V>
    where
        F: Fn(V, V) -> V + Send + Sync,
        V: Send,
    {
        let n = self.partitions.len().max(1);
        let mut merged: HashMap<K, V> = HashMap::new();
        for part in self.partitions {
            for (k, v) in part {
                match merged.remove(&k) {
                    Some(prev) => {
                        let combined = f(prev, v);
                        merged.insert(k, combined);
                    }
                    None => {
                        merged.insert(k, v);
                    }
                }
            }
        }
        DistCollection::from_vec(merged.into_iter().collect(), n)
    }

    /// Inner join on keys; produces one pair per key match combination.
    pub fn join<V2>(self, other: DistCollection<K, V2>) -> DistCollection<K, (V, V2)>
    where
        V: Clone,
        V2: Clone + Send + Sync,
    {
        let n = self.partitions.len().max(1);
        let mut left: HashMap<K, Vec<V>> = HashMap::new();
        for (k, v) in self.collect() {
            left.entry(k).or_default().push(v);
        }
        let mut out = Vec::new();
        for (k, v2) in other.collect() {
            if let Some(vs) = left.get(&k) {
                for v in vs {
                    out.push((k.clone(), (v.clone(), v2.clone())));
                }
            }
        }
        DistCollection::from_vec(out, n)
    }

    /// Fold all values into one (driver-side aggregate; Spark `reduce`).
    pub fn reduce<F>(self, f: F) -> Option<V>
    where
        F: Fn(V, V) -> V,
    {
        self.partitions
            .into_iter()
            .flatten()
            .map(|(_, v)| v)
            .reduce(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numbers(n: usize, parts: usize) -> DistCollection<usize, f64> {
        DistCollection::from_vec((0..n).map(|i| (i % 4, i as f64)).collect(), parts)
    }

    #[test]
    fn from_vec_distributes_round_robin() {
        let c = numbers(10, 3);
        assert_eq!(c.num_partitions(), 3);
        assert_eq!(c.count(), 10);
    }

    #[test]
    fn map_values_applies_in_parallel() {
        let c = numbers(100, 4).map_values(|_, v| v * 2.0);
        let total: f64 = c.collect().into_iter().map(|(_, v)| v).sum();
        assert_eq!(total, (0..100).map(|i| i as f64 * 2.0).sum::<f64>());
    }

    #[test]
    fn filter_keeps_matching() {
        let c = numbers(10, 2).filter(|&k, _| k == 0);
        assert_eq!(c.count(), 3); // keys 0,4,8
    }

    #[test]
    fn reduce_by_key_sums_groups() {
        let c = numbers(8, 3).reduce_by_key(|a, b| a + b);
        let mut got: Vec<(usize, f64)> = c.collect();
        got.sort_by_key(|&(k, _)| k);
        // key 0: 0+4, key 1: 1+5, key 2: 2+6, key 3: 3+7
        assert_eq!(got, vec![(0, 4.0), (1, 6.0), (2, 8.0), (3, 10.0)]);
    }

    #[test]
    fn join_matches_keys() {
        let a = DistCollection::from_vec(vec![(1, "a"), (2, "b")], 2);
        let b = DistCollection::from_vec(vec![(2, 20.0), (3, 30.0)], 2);
        let j = a.join(b).collect();
        assert_eq!(j, vec![(2, ("b", 20.0))]);
    }

    #[test]
    fn join_produces_cross_product_per_key() {
        let a = DistCollection::from_vec(vec![(1, "x"), (1, "y")], 1);
        let b = DistCollection::from_vec(vec![(1, 10)], 1);
        let mut j = a.join(b).collect();
        j.sort_by_key(|&(_, (s, _))| s);
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn flat_map_repartitions() {
        let c = numbers(4, 2).flat_map(3, |k, v| vec![(k, v), (k + 10, v)]);
        assert_eq!(c.count(), 8);
        assert_eq!(c.num_partitions(), 3);
    }

    #[test]
    fn reduce_folds_all() {
        assert_eq!(numbers(5, 2).reduce(|a, b| a + b), Some(10.0));
        let empty: DistCollection<usize, f64> = DistCollection::from_vec(vec![], 2);
        assert_eq!(empty.reduce(|a, b| a + b), None);
    }
}
