//! N-dimensional blocking with exponentially decreasing block sizes.
//!
//! Paper §2.4: "fixed-size blocking for n-dimensional data is challenging.
//! We use a scheme of exponentially decreasing block sizes (1024², 128³,
//! 32⁴, 16⁵, 8⁶, 8⁷), which similarly bounds the size to few megabytes and
//! allows for local conversion. For example, on a 3D-tensor/matrix
//! operation, we split each 1024² matrix block into 64 × 128² blocks and
//! perform the join, yielding again a 3D-tensor with 128³ blocking."
//!
//! [`block_edge`] implements the scheme; [`BlockedTensor`] stores an n-d
//! tensor as blocks keyed by block indexes; [`BlockedTensor::reblock_to`]
//! performs the purely local conversion between blockings.

use crate::collection::DistCollection;
use sysds_common::{Result, SysDsError, ValueType};
use sysds_tensor::BasicTensorBlock;

/// Block edge length per number of dimensions (paper's scheme).
pub fn block_edge(ndims: usize) -> usize {
    match ndims {
        0..=2 => 1024,
        3 => 128,
        4 => 32,
        5 => 16,
        _ => 8,
    }
}

/// Number of cells per full block for `ndims` dimensions.
pub fn block_cells(ndims: usize) -> usize {
    block_edge(ndims).pow(ndims.max(1) as u32)
}

/// An n-dimensional tensor stored as fixed-size blocks.
#[derive(Debug, Clone)]
pub struct BlockedTensor {
    dims: Vec<usize>,
    edge: usize,
    blocks: DistCollection<Vec<usize>, BasicTensorBlock>,
}

impl BlockedTensor {
    /// Block a dense FP64 tensor with the scheme's edge for its rank
    /// (overridable via `edge` for tests).
    pub fn from_tensor(
        t: &BasicTensorBlock,
        edge: Option<usize>,
        num_partitions: usize,
    ) -> Result<BlockedTensor> {
        let dims = t.dims().to_vec();
        let edge = edge.unwrap_or_else(|| block_edge(dims.len())).max(1);
        let values = t.f64_values()?;
        let nblocks: Vec<usize> = dims.iter().map(|&d| d.div_ceil(edge).max(1)).collect();
        let mut items = Vec::new();
        let mut bidx = vec![0usize; dims.len()];
        loop {
            // Extract block at bidx.
            let lo: Vec<usize> = bidx.iter().map(|&b| b * edge).collect();
            let hi: Vec<usize> = lo
                .iter()
                .zip(&dims)
                .map(|(&l, &d)| (l + edge).min(d))
                .collect();
            let bdims: Vec<usize> = lo.iter().zip(&hi).map(|(&l, &h)| h - l).collect();
            let mut data = Vec::with_capacity(bdims.iter().product());
            let mut cell = lo.clone();
            'cells: loop {
                // linear offset of `cell` in the source tensor
                let mut off = 0usize;
                for (&c, &d) in cell.iter().zip(&dims) {
                    off = off * d + c;
                }
                data.push(values[off]);
                // increment cell within [lo, hi)
                for axis in (0..dims.len()).rev() {
                    cell[axis] += 1;
                    if cell[axis] < hi[axis] {
                        continue 'cells;
                    }
                    cell[axis] = lo[axis];
                }
                break;
            }
            items.push((bidx.clone(), BasicTensorBlock::from_f64(bdims, data)?));
            // increment block index
            let mut done = true;
            for axis in (0..dims.len()).rev() {
                bidx[axis] += 1;
                if bidx[axis] < nblocks[axis] {
                    done = false;
                    break;
                }
                bidx[axis] = 0;
            }
            if done {
                break;
            }
        }
        Ok(BlockedTensor {
            dims,
            edge,
            blocks: DistCollection::from_vec(items, num_partitions),
        })
    }

    /// The tensor's dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The blocking edge.
    pub fn edge(&self) -> usize {
        self.edge
    }

    /// Number of stored blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.count()
    }

    /// Materialize back into one local tensor.
    pub fn to_tensor(&self) -> Result<BasicTensorBlock> {
        let mut out = BasicTensorBlock::zeros(ValueType::Fp64, self.dims.clone());
        let mut values = out.f64_values()?;
        for (bidx, block) in self.blocks.clone().collect() {
            let lo: Vec<usize> = bidx.iter().map(|&b| b * self.edge).collect();
            let bdims = block.dims().to_vec();
            let bvals = block.f64_values()?;
            let mut cell = vec![0usize; bdims.len()];
            for &v in &bvals {
                let mut off = 0usize;
                for ((&c, &l), &d) in cell.iter().zip(&lo).zip(&self.dims) {
                    off = off * d + (l + c);
                }
                values[off] = v;
                for axis in (0..bdims.len()).rev() {
                    cell[axis] += 1;
                    if cell[axis] < bdims[axis] {
                        break;
                    }
                    cell[axis] = 0;
                }
            }
        }
        out = BasicTensorBlock::from_f64(self.dims.clone(), values)?;
        Ok(out)
    }

    /// Locally convert to a smaller blocking edge. The paper's key property:
    /// when the new edge divides the old one, each old block splits into
    /// `(old/new)^ndims` new blocks without any shuffle.
    pub fn reblock_to(&self, new_edge: usize) -> Result<BlockedTensor> {
        if new_edge == 0 || !self.edge.is_multiple_of(new_edge) {
            return Err(SysDsError::runtime(format!(
                "local reblock requires the new edge ({new_edge}) to divide the old ({})",
                self.edge
            )));
        }
        let ratio = self.edge / new_edge;
        if ratio == 1 {
            return Ok(self.clone());
        }
        let parts = self.blocks.num_partitions();
        let dims = self.dims.clone();
        let ndims = dims.len();
        let old_edge = self.edge;
        let blocks = self.blocks.clone().flat_map(parts, move |bidx, block| {
            let bdims = block.dims().to_vec();
            let values = block.f64_values().expect("fp64 blocks");
            // Enumerate sub-block indexes within this block.
            let sub_counts: Vec<usize> = bdims.iter().map(|&d| d.div_ceil(new_edge)).collect();
            let mut out = Vec::new();
            let mut sidx = vec![0usize; ndims];
            loop {
                let lo: Vec<usize> = sidx.iter().map(|&s| s * new_edge).collect();
                let hi: Vec<usize> = lo
                    .iter()
                    .zip(&bdims)
                    .map(|(&l, &d)| (l + new_edge).min(d))
                    .collect();
                let sdims: Vec<usize> = lo.iter().zip(&hi).map(|(&l, &h)| h - l).collect();
                let mut data = Vec::with_capacity(sdims.iter().product());
                let mut cell = lo.clone();
                'cells: loop {
                    let mut off = 0usize;
                    for (&c, &d) in cell.iter().zip(&bdims) {
                        off = off * d + c;
                    }
                    data.push(values[off]);
                    for axis in (0..ndims).rev() {
                        cell[axis] += 1;
                        if cell[axis] < hi[axis] {
                            continue 'cells;
                        }
                        cell[axis] = lo[axis];
                    }
                    break;
                }
                let new_bidx: Vec<usize> = bidx
                    .iter()
                    .zip(&sidx)
                    .map(|(&b, &s)| b * (old_edge / new_edge) + s)
                    .collect();
                out.push((
                    new_bidx,
                    BasicTensorBlock::from_f64(sdims, data).expect("sub-block shape"),
                ));
                let mut done = true;
                for axis in (0..ndims).rev() {
                    sidx[axis] += 1;
                    if sidx[axis] < sub_counts[axis] {
                        done = false;
                        break;
                    }
                    sidx[axis] = 0;
                }
                if done {
                    break;
                }
            }
            out
        });
        Ok(BlockedTensor {
            dims,
            edge: new_edge,
            blocks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor_3d(d0: usize, d1: usize, d2: usize) -> BasicTensorBlock {
        let n = d0 * d1 * d2;
        BasicTensorBlock::from_f64(vec![d0, d1, d2], (0..n).map(|x| x as f64).collect()).unwrap()
    }

    #[test]
    fn scheme_matches_paper() {
        assert_eq!(block_edge(2), 1024);
        assert_eq!(block_edge(3), 128);
        assert_eq!(block_edge(4), 32);
        assert_eq!(block_edge(5), 16);
        assert_eq!(block_edge(6), 8);
        assert_eq!(block_edge(7), 8);
    }

    #[test]
    fn block_sizes_bounded_to_few_megabytes() {
        // 8 bytes per FP64 cell; every rank's full block must stay <= 16 MiB.
        for nd in 2..=7 {
            let bytes = block_cells(nd) * 8;
            assert!(bytes <= 16 << 20, "rank {nd}: {bytes} bytes");
        }
    }

    #[test]
    fn blocking_round_trip_2d() {
        let t = tensor_3d(6, 5, 1).reshape(vec![6, 5]).unwrap();
        let b = BlockedTensor::from_tensor(&t, Some(4), 2).unwrap();
        assert_eq!(b.num_blocks(), 2 * 2);
        assert_eq!(b.to_tensor().unwrap(), t);
    }

    #[test]
    fn blocking_round_trip_3d() {
        let t = tensor_3d(5, 7, 3);
        let b = BlockedTensor::from_tensor(&t, Some(3), 3).unwrap();
        assert_eq!(b.to_tensor().unwrap(), t);
        assert_eq!(b.num_blocks(), (2 * 3));
    }

    #[test]
    fn local_reblock_splits_blocks() {
        // Paper example in miniature: edge 8 -> edge 2 splits each full
        // 2-d block into (8/2)^2 = 16 blocks.
        let t = tensor_3d(8, 8, 1).reshape(vec![8, 8]).unwrap();
        let b8 = BlockedTensor::from_tensor(&t, Some(8), 2).unwrap();
        assert_eq!(b8.num_blocks(), 1);
        let b2 = b8.reblock_to(2).unwrap();
        assert_eq!(b2.num_blocks(), 16);
        assert_eq!(b2.to_tensor().unwrap(), t);
    }

    #[test]
    fn local_reblock_3d_preserves_content() {
        let t = tensor_3d(6, 4, 4);
        let b4 = BlockedTensor::from_tensor(&t, Some(4), 2).unwrap();
        let b2 = b4.reblock_to(2).unwrap();
        assert_eq!(b2.edge(), 2);
        assert_eq!(b2.to_tensor().unwrap(), t);
    }

    #[test]
    fn reblock_requires_divisibility() {
        let t = tensor_3d(4, 4, 1).reshape(vec![4, 4]).unwrap();
        let b = BlockedTensor::from_tensor(&t, Some(4), 1).unwrap();
        assert!(b.reblock_to(3).is_err());
        assert!(b.reblock_to(0).is_err());
        // same edge is a no-op clone
        assert_eq!(b.reblock_to(4).unwrap().num_blocks(), b.num_blocks());
    }

    #[test]
    fn paper_conversion_example_scaled() {
        // "split each 1024^2 matrix block into 64 x 128^2 blocks": scaled to
        // 16^2 -> (16/2=8)^2 = 64 sub-blocks of 2^2.
        let t = tensor_3d(16, 16, 1).reshape(vec![16, 16]).unwrap();
        let b = BlockedTensor::from_tensor(&t, Some(16), 2).unwrap();
        let fine = b.reblock_to(2).unwrap();
        assert_eq!(fine.num_blocks(), 64);
        assert_eq!(fine.to_tensor().unwrap(), t);
    }
}
