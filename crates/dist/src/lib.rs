//! Simulated distributed backend (paper §2.3 (4), §2.4).
//!
//! SystemDS executes distributed operations on Spark as RDDs of
//! `(TensorIndexes, TensorBlock)` pairs. This crate reproduces that
//! execution model on a single node:
//!
//! * [`collection`] — an RDD-like partitioned collection with
//!   `map`/`reduce_by_key`/`join` executed on a thread pool;
//! * [`blocked`] — blocked matrices (fixed-size square tiles, aligned
//!   joins) with distributed matmul, tsmm, element-wise ops, and
//!   aggregations;
//! * [`ndblock`] — the paper's exponentially-decreasing n-dimensional
//!   blocking scheme (1024², 128³, 32⁴, 16⁵, 8⁶, 8⁷) and local conversion
//!   between blockings of different dimensionality.

pub mod blocked;
pub mod collection;
pub mod ndblock;

pub use blocked::BlockedMatrix;
pub use collection::DistCollection;
pub use ndblock::{block_edge, BlockedTensor};
