//! The TCP site daemon: serves the framed wire protocol over a socket.
//!
//! One accept thread plus one thread per connection. All connections share
//! the site's variable map, the request sequence counter the
//! [`FaultPlan`] triggers on, and a bounded request-id deduplication cache
//! that makes retried mutating requests (`Put`, `Remove`, `*Keep`) exactly-
//! once: a replayed request id is answered from the cache without
//! re-executing, and a retry that races the still-executing original (e.g.
//! arriving on a second connection after a timeout) waits for the
//! original's result via an in-flight marker instead of executing twice.
//! Client request ids carry a randomized per-process epoch (see
//! `client::next_request_id`), so a restarted or second master never
//! collides with a predecessor's ids in this cache.
//!
//! Shutdown is graceful: a wire `Shutdown` request (or
//! [`WorkerServer::shutdown`]) stops the accept loop, lets in-flight
//! requests finish and their responses flush, then joins every thread.

use crate::fault::{FaultAction, FaultPlan};
use crate::wire;
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use sysds_common::{Result, SysDsError};
use sysds_fed::worker::execute_request;
use sysds_fed::{FedRequest, FedResponse};
use sysds_tensor::Matrix;

/// Maximum request ids remembered for replay deduplication.
const DEDUP_CAPACITY: usize = 1024;
/// Longest a retry waits for the original in-flight attempt to finish
/// before giving up with an error reply.
const DEDUP_WAIT_TIMEOUT: Duration = Duration::from_secs(60);
/// Poll granularity of idle connections and the accept loop.
const POLL_INTERVAL: Duration = Duration::from_millis(20);
/// Read deadline for the body of a frame whose first byte has arrived.
const FRAME_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Offset for TCP site ids in trace worker attribution, keeping them
/// visually distinct from in-process site ids.
static NEXT_TCP_SITE: AtomicU64 = AtomicU64::new(10_000);

/// State of a request id in the dedup cache.
#[derive(Clone)]
enum DedupEntry {
    /// The first arrival is still executing; retries wait on the condvar.
    InFlight,
    /// Finished: replay the recorded response.
    Done(FedResponse),
}

/// Bounded request-id → response cache (FIFO eviction of completed
/// entries; in-flight markers are never evicted).
struct DedupCache {
    map: HashMap<u64, DedupEntry>,
    order: VecDeque<u64>,
}

impl DedupCache {
    fn new() -> DedupCache {
        DedupCache {
            map: HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&self, id: u64) -> Option<DedupEntry> {
        self.map.get(&id).cloned()
    }

    /// Claim `id` for execution; the caller must later [`Self::complete`].
    fn begin(&mut self, id: u64) {
        self.map.insert(id, DedupEntry::InFlight);
    }

    /// Record the result of an in-flight id and make it evictable.
    fn complete(&mut self, id: u64, resp: FedResponse) {
        if self.map.insert(id, DedupEntry::Done(resp)).is_some() {
            self.order.push_back(id);
            while self.order.len() > DEDUP_CAPACITY {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }
}

struct SiteState {
    vars: Mutex<HashMap<String, Matrix>>,
    dedup: Mutex<DedupCache>,
    /// Signalled whenever an in-flight dedup entry completes.
    dedup_done: Condvar,
    faults: FaultPlan,
    /// Server-wide request sequence; the fault plan matches against it.
    seq: AtomicU64,
    threads: usize,
    shutdown: AtomicBool,
    site_id: u64,
}

/// A running TCP federated site.
#[derive(Debug)]
pub struct WorkerServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_join: Option<JoinHandle<()>>,
}

impl WorkerServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// serving with the given initial variables.
    pub fn bind(
        addr: &str,
        initial: Vec<(String, Matrix)>,
        threads: usize,
    ) -> Result<WorkerServer> {
        WorkerServer::bind_with_faults(addr, initial, threads, FaultPlan::none())
    }

    /// [`WorkerServer::bind`] plus a deterministic fault-injection plan.
    pub fn bind_with_faults(
        addr: &str,
        initial: Vec<(String, Matrix)>,
        threads: usize,
        faults: FaultPlan,
    ) -> Result<WorkerServer> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| SysDsError::Federated(format!("bind {addr}: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| SysDsError::Federated(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| SysDsError::Federated(format!("set_nonblocking: {e}")))?;
        let state = Arc::new(SiteState {
            vars: Mutex::new(initial.into_iter().collect()),
            dedup: Mutex::new(DedupCache::new()),
            dedup_done: Condvar::new(),
            faults,
            seq: AtomicU64::new(0),
            threads: threads.max(1),
            shutdown: AtomicBool::new(false),
            site_id: NEXT_TCP_SITE.fetch_add(1, Ordering::Relaxed),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_join = std::thread::spawn(move || {
            accept_loop(listener, state, accept_shutdown);
        });
        Ok(WorkerServer {
            addr: local,
            shutdown,
            accept_join: Some(accept_join),
        })
    }

    /// The bound socket address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The endpoint string clients connect to.
    pub fn endpoint(&self) -> String {
        format!("tcp://{}", self.addr)
    }

    /// Stop accepting, drain in-flight requests, and join all threads.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(join) = self.accept_join.take() {
            let _ = join.join();
        }
    }

    /// Whether the server has fully stopped (after a wire `Shutdown`
    /// request or [`WorkerServer::shutdown`]).
    pub fn is_stopped(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
            && self.accept_join.as_ref().map_or(true, |j| j.is_finished())
    }
}

impl Drop for WorkerServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, state: Arc<SiteState>, external_stop: Arc<AtomicBool>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    loop {
        if external_stop.load(Ordering::Relaxed) || state.shutdown.load(Ordering::Relaxed) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let state = Arc::clone(&state);
                handlers.push(std::thread::spawn(move || {
                    let _worker = sysds_obs::set_worker(state.site_id);
                    serve_connection(stream, &state);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => break,
        }
        handlers.retain(|h| !h.is_finished());
    }
    // Propagate the stop to connection handlers and drain them: each one
    // finishes (and flushes) its in-flight request before exiting.
    state.shutdown.store(true, Ordering::Relaxed);
    external_stop.store(true, Ordering::Relaxed);
    for h in handlers {
        let _ = h.join();
    }
}

fn serve_connection(mut stream: TcpStream, state: &SiteState) {
    let _ = stream.set_nodelay(true);
    loop {
        // Idle-wait for the next frame with a short poll so shutdown is
        // honored quickly, without consuming bytes (peek).
        let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
        let mut probe = [0u8; 1];
        match stream.peek(&mut probe) {
            Ok(0) => return, // peer closed
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if state.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        // A frame is arriving: read it whole under the long deadline.
        let _ = stream.set_read_timeout(Some(FRAME_READ_TIMEOUT));
        let (header, payload) = match wire::read_frame(&mut stream) {
            Ok(Ok(frame)) => frame,
            // Protocol violation: this peer is corrupt; drop the link.
            Ok(Err(_)) | Err(_) => return,
        };
        let request_id = header.request_id;
        let req = match wire::decode_request(&header, payload) {
            Ok(req) => req,
            Err(e) => {
                // Malformed payload: answer with an error, keep serving.
                let frame = wire::response_frame(request_id, &FedResponse::Error(e.to_string()));
                if wire::write_frame(&mut stream, &frame).is_err() {
                    return;
                }
                continue;
            }
        };
        let seq = state.seq.fetch_add(1, Ordering::Relaxed);
        let fault = state.faults.action_for(seq);
        let is_shutdown = matches!(req, FedRequest::Shutdown);
        let resp = respond(state, request_id, req);
        let frame = wire::response_frame(request_id, &resp);
        match fault {
            Some(FaultAction::DropResponse) => return,
            Some(FaultAction::DelayMillis(ms)) => {
                std::thread::sleep(Duration::from_millis(ms));
                let _ = wire::write_frame(&mut stream, &frame);
            }
            Some(FaultAction::CloseAfterBytes(n)) => {
                let cut = n.min(frame.len());
                let _ = stream.write_all(&frame[..cut]);
                let _ = stream.flush();
                return;
            }
            None => {
                if wire::write_frame(&mut stream, &frame).is_err() {
                    return;
                }
            }
        }
        if is_shutdown {
            state.shutdown.store(true, Ordering::Relaxed);
            return;
        }
    }
}

fn respond(state: &SiteState, request_id: u64, req: FedRequest) -> FedResponse {
    if matches!(req, FedRequest::Shutdown) {
        return FedResponse::Ok;
    }
    if req.idempotent() {
        let mut vars = state.vars.lock().expect("site vars poisoned");
        return execute_request(&mut vars, req, state.threads);
    }
    // Mutating request: under the dedup lock, atomically either claim the
    // id (first arrival) or defer to the attempt that already did. A retry
    // racing the still-executing original waits for its result instead of
    // executing the mutation twice.
    {
        let mut cache = state.dedup.lock().expect("dedup poisoned");
        let deadline = Instant::now() + DEDUP_WAIT_TIMEOUT;
        loop {
            match cache.get(request_id) {
                Some(DedupEntry::Done(resp)) => return resp,
                Some(DedupEntry::InFlight) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return FedResponse::Error(format!(
                            "request {request_id} still in flight after {DEDUP_WAIT_TIMEOUT:?}"
                        ));
                    }
                    cache = state
                        .dedup_done
                        .wait_timeout(cache, deadline - now)
                        .expect("dedup poisoned")
                        .0;
                }
                None => {
                    cache.begin(request_id);
                    break;
                }
            }
        }
    }
    let resp = {
        let mut vars = state.vars.lock().expect("site vars poisoned");
        execute_request(&mut vars, req, state.threads)
    };
    state
        .dedup
        .lock()
        .expect("dedup poisoned")
        .complete(request_id, resp.clone());
    state.dedup_done.notify_all();
    resp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_cache_replays_and_evicts() {
        let mut cache = DedupCache::new();
        cache.begin(1);
        assert!(matches!(cache.get(1), Some(DedupEntry::InFlight)));
        cache.complete(1, FedResponse::Scalar(1.0));
        assert!(matches!(cache.get(1), Some(DedupEntry::Done(FedResponse::Scalar(v))) if v == 1.0));
        assert!(cache.get(2).is_none());
        for id in 2..(DEDUP_CAPACITY as u64 + 2) {
            cache.begin(id);
            cache.complete(id, FedResponse::Ok);
        }
        assert!(cache.get(1).is_none(), "oldest completed entry evicted");
        assert!(cache.get(DEDUP_CAPACITY as u64 + 1).is_some());
    }

    #[test]
    fn retry_waits_for_in_flight_original_instead_of_reexecuting() {
        let state = Arc::new(SiteState {
            vars: Mutex::new(HashMap::new()),
            dedup: Mutex::new(DedupCache::new()),
            dedup_done: Condvar::new(),
            faults: FaultPlan::none(),
            seq: AtomicU64::new(0),
            threads: 1,
            shutdown: AtomicBool::new(false),
            site_id: 0,
        });
        // Simulate the original attempt still executing.
        state.dedup.lock().unwrap().begin(42);
        let retry = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || {
                respond(
                    &state,
                    42,
                    FedRequest::Put {
                        var: "X".into(),
                        data: Matrix::filled(1, 1, 7.0),
                    },
                )
            })
        };
        // Give the retry time to block, then publish the original result.
        std::thread::sleep(Duration::from_millis(50));
        state
            .dedup
            .lock()
            .unwrap()
            .complete(42, FedResponse::Scalar(9.0));
        state.dedup_done.notify_all();
        let resp = retry.join().unwrap();
        assert!(
            matches!(resp, FedResponse::Scalar(v) if v == 9.0),
            "retry must replay the original result, got {resp:?}"
        );
        assert!(
            state.vars.lock().unwrap().is_empty(),
            "retry must not re-execute the mutation"
        );
    }

    #[test]
    fn bind_reports_endpoint_and_stops() {
        let mut server = WorkerServer::bind("127.0.0.1:0", vec![], 1).unwrap();
        assert!(server.endpoint().starts_with("tcp://127.0.0.1:"));
        assert!(!server.is_stopped());
        server.shutdown();
        assert!(server.is_stopped());
    }
}
