//! Deterministic server-side fault injection.
//!
//! A [`FaultPlan`] maps *request sequence numbers* (the order requests are
//! accepted by one server, starting at 0) to actions. Because the plan
//! triggers on exact sequence positions, retry and timeout paths are
//! CI-testable without flaky sleeps or random drops: "drop the first
//! response" always drops exactly the first response.

/// What to do to the response of one matched request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Execute the request but never send the response; the connection is
    /// closed instead, forcing the client onto its retry path.
    DropResponse,
    /// Delay the response by this many milliseconds (exercises client
    /// deadlines when larger than the request timeout).
    DelayMillis(u64),
    /// Send only the first N bytes of the response frame, then close the
    /// connection (exercises truncated-frame handling).
    CloseAfterBytes(usize),
}

/// One rule: apply `action` to the request with sequence number `seq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    pub seq: u64,
    pub action: FaultAction,
}

/// A deterministic set of fault rules for one server.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Add a rule (builder style).
    pub fn with(mut self, seq: u64, action: FaultAction) -> FaultPlan {
        self.rules.push(FaultRule { seq, action });
        self
    }

    /// Drop the response of request `seq`.
    pub fn drop_response(self, seq: u64) -> FaultPlan {
        self.with(seq, FaultAction::DropResponse)
    }

    /// Delay the response of request `seq` by `ms` milliseconds.
    pub fn delay_response(self, seq: u64, ms: u64) -> FaultPlan {
        self.with(seq, FaultAction::DelayMillis(ms))
    }

    /// Truncate the response frame of request `seq` after `bytes` bytes.
    pub fn truncate_response(self, seq: u64, bytes: usize) -> FaultPlan {
        self.with(seq, FaultAction::CloseAfterBytes(bytes))
    }

    /// The action for request number `seq`, if any rule matches.
    pub fn action_for(&self, seq: u64) -> Option<FaultAction> {
        self.rules.iter().find(|r| r.seq == seq).map(|r| r.action)
    }

    /// Whether the plan has any rules at all.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_match_exact_sequence_numbers() {
        let plan = FaultPlan::none()
            .drop_response(0)
            .delay_response(2, 50)
            .truncate_response(5, 10);
        assert_eq!(plan.action_for(0), Some(FaultAction::DropResponse));
        assert_eq!(plan.action_for(1), None);
        assert_eq!(plan.action_for(2), Some(FaultAction::DelayMillis(50)));
        assert_eq!(plan.action_for(5), Some(FaultAction::CloseAfterBytes(10)));
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }
}
