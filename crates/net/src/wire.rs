//! The framed binary wire protocol for federated requests.
//!
//! Every message is one frame: a fixed 24-byte little-endian header followed
//! by an opcode-specific payload. Matrix payloads reuse the workspace binary
//! block format (`sysds_io::binary`), so a site stores exactly the bytes the
//! master would spill to disk.
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "SNET"
//! 4       2     version (currently 1)
//! 6       1     kind    (0 = request, 1 = response)
//! 7       1     opcode  (see `FedRequest::wire_opcode` / response codes)
//! 8       8     request id (echoed verbatim in the response)
//! 16      8     payload length in bytes
//! 24      ...   payload
//! ```
//!
//! Decoding is strict: wrong magic, unknown version/kind/opcode, truncated
//! payloads, and trailing garbage are all rejected with
//! [`SysDsError::Format`] rather than silently tolerated — a corrupt frame
//! must never be half-applied at a site.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};
use sysds_common::{Result, SysDsError};
use sysds_fed::{FedRequest, FedResponse};
use sysds_io::binary::{decode_block, encode_block};
use sysds_tensor::kernels::BinaryOp;

/// Frame magic: the first four bytes of every message.
pub const MAGIC: [u8; 4] = *b"SNET";
/// Current protocol version.
pub const VERSION: u16 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 24;
/// Upper bound on a payload, guarding length-prefix corruption: a frame
/// claiming more than this is rejected at header parse. Below the limit
/// the payload is read in [`READ_CHUNK`]-sized steps, so a bogus length
/// fails on `read_exact` instead of forcing a huge upfront allocation.
pub const MAX_PAYLOAD: u64 = 1 << 34;
/// Granularity of streaming payload reads (allocation grows with the
/// bytes actually received, never with the header's claimed length).
const READ_CHUNK: usize = 1 << 22;

/// Frame kind: request (master → site) or response (site → master).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    Request,
    Response,
}

/// Parsed fixed-size frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    pub kind: FrameKind,
    pub opcode: u8,
    pub request_id: u64,
    pub payload_len: u64,
}

const REQ_PUT: u8 = 0;
const REQ_REMOVE: u8 = 1;
const REQ_TSMM: u8 = 2;
const REQ_TMV: u8 = 3;
const REQ_MATVEC_KEEP: u8 = 4;
const REQ_SCALAR_OP_KEEP: u8 = 5;
const REQ_BINARY_OP_KEEP: u8 = 6;
const REQ_COLSUMS: u8 = 7;
const REQ_SUMSQ: u8 = 8;
const REQ_NROWS: u8 = 9;
const REQ_LINREG_GRAD: u8 = 10;
const REQ_PING: u8 = 11;
const REQ_SHUTDOWN: u8 = 12;

const RESP_OK: u8 = 0;
const RESP_AGGREGATE: u8 = 1;
const RESP_SCALAR: u8 = 2;
const RESP_ERROR: u8 = 3;

fn op_to_u8(op: BinaryOp) -> u8 {
    match op {
        BinaryOp::Add => 0,
        BinaryOp::Sub => 1,
        BinaryOp::Mul => 2,
        BinaryOp::Div => 3,
        BinaryOp::Pow => 4,
        BinaryOp::Mod => 5,
        BinaryOp::IntDiv => 6,
        BinaryOp::Min => 7,
        BinaryOp::Max => 8,
        BinaryOp::Eq => 9,
        BinaryOp::Neq => 10,
        BinaryOp::Lt => 11,
        BinaryOp::Le => 12,
        BinaryOp::Gt => 13,
        BinaryOp::Ge => 14,
        BinaryOp::And => 15,
        BinaryOp::Or => 16,
    }
}

fn u8_to_op(code: u8) -> Result<BinaryOp> {
    Ok(match code {
        0 => BinaryOp::Add,
        1 => BinaryOp::Sub,
        2 => BinaryOp::Mul,
        3 => BinaryOp::Div,
        4 => BinaryOp::Pow,
        5 => BinaryOp::Mod,
        6 => BinaryOp::IntDiv,
        7 => BinaryOp::Min,
        8 => BinaryOp::Max,
        9 => BinaryOp::Eq,
        10 => BinaryOp::Neq,
        11 => BinaryOp::Lt,
        12 => BinaryOp::Le,
        13 => BinaryOp::Gt,
        14 => BinaryOp::Ge,
        15 => BinaryOp::And,
        16 => BinaryOp::Or,
        _ => return Err(SysDsError::Format(format!("unknown binary op code {code}"))),
    })
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String> {
    if buf.remaining() < 4 {
        return Err(SysDsError::Format("truncated string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(SysDsError::Format("truncated string payload".into()));
    }
    let raw = buf.copy_to_bytes(len);
    String::from_utf8(raw.as_ref().to_vec())
        .map_err(|_| SysDsError::Format("non-utf8 string in frame".into()))
}

fn get_f64(buf: &mut Bytes) -> Result<f64> {
    if buf.remaining() < 8 {
        return Err(SysDsError::Format("truncated f64".into()));
    }
    Ok(buf.get_f64_le())
}

fn get_u8(buf: &mut Bytes) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(SysDsError::Format("truncated u8".into()));
    }
    Ok(buf.get_u8())
}

/// Wire opcode of a request (stable protocol contract, distinct from the
/// human-readable `FedRequest::opcode()` statistics name).
pub fn request_opcode(req: &FedRequest) -> u8 {
    match req {
        FedRequest::Put { .. } => REQ_PUT,
        FedRequest::Remove { .. } => REQ_REMOVE,
        FedRequest::Tsmm { .. } => REQ_TSMM,
        FedRequest::Tmv { .. } => REQ_TMV,
        FedRequest::MatVecKeep { .. } => REQ_MATVEC_KEEP,
        FedRequest::ScalarOpKeep { .. } => REQ_SCALAR_OP_KEEP,
        FedRequest::BinaryOpKeep { .. } => REQ_BINARY_OP_KEEP,
        FedRequest::ColSums { .. } => REQ_COLSUMS,
        FedRequest::SumSq { .. } => REQ_SUMSQ,
        FedRequest::NumRows { .. } => REQ_NROWS,
        FedRequest::LinRegGradient { .. } => REQ_LINREG_GRAD,
        FedRequest::Ping => REQ_PING,
        FedRequest::Shutdown => REQ_SHUTDOWN,
    }
}

fn encode_request_payload(req: &FedRequest) -> BytesMut {
    let mut buf = BytesMut::new();
    match req {
        FedRequest::Put { var, data } => {
            put_str(&mut buf, var);
            encode_block(data, &mut buf);
        }
        FedRequest::Remove { var }
        | FedRequest::Tsmm { var }
        | FedRequest::ColSums { var }
        | FedRequest::SumSq { var }
        | FedRequest::NumRows { var } => put_str(&mut buf, var),
        FedRequest::Tmv { x, y } => {
            put_str(&mut buf, x);
            put_str(&mut buf, y);
        }
        FedRequest::MatVecKeep { var, v, out } => {
            put_str(&mut buf, var);
            put_str(&mut buf, out);
            encode_block(v, &mut buf);
        }
        FedRequest::ScalarOpKeep {
            var,
            op,
            scalar,
            out,
        } => {
            put_str(&mut buf, var);
            put_str(&mut buf, out);
            buf.put_u8(op_to_u8(*op));
            buf.put_f64_le(*scalar);
        }
        FedRequest::BinaryOpKeep { lhs, rhs, op, out } => {
            put_str(&mut buf, lhs);
            put_str(&mut buf, rhs);
            put_str(&mut buf, out);
            buf.put_u8(op_to_u8(*op));
        }
        FedRequest::LinRegGradient { x, y, w } => {
            put_str(&mut buf, x);
            put_str(&mut buf, y);
            encode_block(w, &mut buf);
        }
        FedRequest::Ping | FedRequest::Shutdown => {}
    }
    buf
}

fn decode_request_payload(opcode: u8, payload: Vec<u8>) -> Result<FedRequest> {
    let mut buf = Bytes::from(payload);
    let req = match opcode {
        REQ_PUT => FedRequest::Put {
            var: get_str(&mut buf)?,
            data: decode_block(&mut buf)?,
        },
        REQ_REMOVE => FedRequest::Remove {
            var: get_str(&mut buf)?,
        },
        REQ_TSMM => FedRequest::Tsmm {
            var: get_str(&mut buf)?,
        },
        REQ_TMV => FedRequest::Tmv {
            x: get_str(&mut buf)?,
            y: get_str(&mut buf)?,
        },
        REQ_MATVEC_KEEP => FedRequest::MatVecKeep {
            var: get_str(&mut buf)?,
            out: get_str(&mut buf)?,
            v: decode_block(&mut buf)?,
        },
        REQ_SCALAR_OP_KEEP => {
            let var = get_str(&mut buf)?;
            let out = get_str(&mut buf)?;
            let op = u8_to_op(get_u8(&mut buf)?)?;
            let scalar = get_f64(&mut buf)?;
            FedRequest::ScalarOpKeep {
                var,
                op,
                scalar,
                out,
            }
        }
        REQ_BINARY_OP_KEEP => {
            let lhs = get_str(&mut buf)?;
            let rhs = get_str(&mut buf)?;
            let out = get_str(&mut buf)?;
            let op = u8_to_op(get_u8(&mut buf)?)?;
            FedRequest::BinaryOpKeep { lhs, rhs, op, out }
        }
        REQ_COLSUMS => FedRequest::ColSums {
            var: get_str(&mut buf)?,
        },
        REQ_SUMSQ => FedRequest::SumSq {
            var: get_str(&mut buf)?,
        },
        REQ_NROWS => FedRequest::NumRows {
            var: get_str(&mut buf)?,
        },
        REQ_LINREG_GRAD => FedRequest::LinRegGradient {
            x: get_str(&mut buf)?,
            y: get_str(&mut buf)?,
            w: decode_block(&mut buf)?,
        },
        REQ_PING => FedRequest::Ping,
        REQ_SHUTDOWN => FedRequest::Shutdown,
        other => {
            return Err(SysDsError::Format(format!(
                "unknown request opcode {other}"
            )))
        }
    };
    if buf.remaining() != 0 {
        return Err(SysDsError::Format(format!(
            "{} trailing bytes after request payload",
            buf.remaining()
        )));
    }
    Ok(req)
}

fn encode_response_payload(resp: &FedResponse) -> (u8, BytesMut) {
    let mut buf = BytesMut::new();
    let opcode = match resp {
        FedResponse::Ok => RESP_OK,
        FedResponse::Aggregate(m) => {
            encode_block(m, &mut buf);
            RESP_AGGREGATE
        }
        FedResponse::Scalar(v) => {
            buf.put_f64_le(*v);
            RESP_SCALAR
        }
        FedResponse::Error(msg) => {
            put_str(&mut buf, msg);
            RESP_ERROR
        }
    };
    (opcode, buf)
}

fn decode_response_payload(opcode: u8, payload: Vec<u8>) -> Result<FedResponse> {
    let mut buf = Bytes::from(payload);
    let resp = match opcode {
        RESP_OK => FedResponse::Ok,
        RESP_AGGREGATE => FedResponse::Aggregate(decode_block(&mut buf)?),
        RESP_SCALAR => FedResponse::Scalar(get_f64(&mut buf)?),
        RESP_ERROR => FedResponse::Error(get_str(&mut buf)?),
        other => {
            return Err(SysDsError::Format(format!(
                "unknown response opcode {other}"
            )))
        }
    };
    if buf.remaining() != 0 {
        return Err(SysDsError::Format(format!(
            "{} trailing bytes after response payload",
            buf.remaining()
        )));
    }
    Ok(resp)
}

fn frame(kind: FrameKind, opcode: u8, request_id: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.push(match kind {
        FrameKind::Request => 0,
        FrameKind::Response => 1,
    });
    out.push(opcode);
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Encode a complete request frame.
pub fn request_frame(request_id: u64, req: &FedRequest) -> Vec<u8> {
    let payload = encode_request_payload(req);
    frame(
        FrameKind::Request,
        request_opcode(req),
        request_id,
        &payload,
    )
}

/// Encode a complete response frame.
pub fn response_frame(request_id: u64, resp: &FedResponse) -> Vec<u8> {
    let (opcode, payload) = encode_response_payload(resp);
    frame(FrameKind::Response, opcode, request_id, &payload)
}

/// Parse a header from its 24 fixed bytes.
pub fn parse_header(raw: &[u8; HEADER_LEN]) -> Result<FrameHeader> {
    if raw[0..4] != MAGIC {
        return Err(SysDsError::Format("bad frame magic".into()));
    }
    let version = u16::from_le_bytes([raw[4], raw[5]]);
    if version != VERSION {
        return Err(SysDsError::Format(format!(
            "unsupported protocol version {version}"
        )));
    }
    let kind = match raw[6] {
        0 => FrameKind::Request,
        1 => FrameKind::Response,
        k => return Err(SysDsError::Format(format!("unknown frame kind {k}"))),
    };
    let request_id = u64::from_le_bytes(raw[8..16].try_into().expect("8 bytes"));
    let payload_len = u64::from_le_bytes(raw[16..24].try_into().expect("8 bytes"));
    if payload_len > MAX_PAYLOAD {
        return Err(SysDsError::Format(format!(
            "frame payload length {payload_len} exceeds limit"
        )));
    }
    Ok(FrameHeader {
        kind,
        opcode: raw[7],
        request_id,
        payload_len,
    })
}

/// Parse a complete request frame (header + payload) from a byte slice.
pub fn parse_request_frame(bytes: &[u8]) -> Result<(u64, FedRequest)> {
    let (header, payload) = split_frame(bytes)?;
    if header.kind != FrameKind::Request {
        return Err(SysDsError::Format("expected a request frame".into()));
    }
    Ok((
        header.request_id,
        decode_request_payload(header.opcode, payload)?,
    ))
}

/// Parse a complete response frame (header + payload) from a byte slice.
pub fn parse_response_frame(bytes: &[u8]) -> Result<(u64, FedResponse)> {
    let (header, payload) = split_frame(bytes)?;
    if header.kind != FrameKind::Response {
        return Err(SysDsError::Format("expected a response frame".into()));
    }
    Ok((
        header.request_id,
        decode_response_payload(header.opcode, payload)?,
    ))
}

fn split_frame(bytes: &[u8]) -> Result<(FrameHeader, Vec<u8>)> {
    if bytes.len() < HEADER_LEN {
        return Err(SysDsError::Format("truncated frame header".into()));
    }
    let header = parse_header(bytes[..HEADER_LEN].try_into().expect("header bytes"))?;
    let payload = &bytes[HEADER_LEN..];
    if payload.len() as u64 != header.payload_len {
        return Err(SysDsError::Format(format!(
            "frame payload length mismatch: header says {}, got {}",
            header.payload_len,
            payload.len()
        )));
    }
    Ok((header, payload.to_vec()))
}

/// Read one frame from a stream. Transport failures surface as the io
/// error; protocol violations as `Ok(Err(..))` so callers can distinguish
/// "retry the connection" from "corrupt peer".
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Result<(FrameHeader, Vec<u8>)>> {
    let mut head = [0u8; HEADER_LEN];
    r.read_exact(&mut head)?;
    let header = match parse_header(&head) {
        Ok(h) => h,
        Err(e) => return Ok(Err(e)),
    };
    let total = header.payload_len as usize;
    let mut payload = Vec::with_capacity(total.min(READ_CHUNK));
    while payload.len() < total {
        let old = payload.len();
        payload.resize(old + (total - old).min(READ_CHUNK), 0);
        r.read_exact(&mut payload[old..])?;
    }
    Ok(Ok((header, payload)))
}

/// Write one pre-encoded frame to a stream, returning the byte count.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> std::io::Result<usize> {
    w.write_all(frame)?;
    w.flush()?;
    Ok(frame.len())
}

/// Decode the request carried by a frame read with [`read_frame`].
pub fn decode_request(header: &FrameHeader, payload: Vec<u8>) -> Result<FedRequest> {
    if header.kind != FrameKind::Request {
        return Err(SysDsError::Format("expected a request frame".into()));
    }
    decode_request_payload(header.opcode, payload)
}

/// Decode the response carried by a frame read with [`read_frame`].
pub fn decode_response(header: &FrameHeader, payload: Vec<u8>) -> Result<FedResponse> {
    if header.kind != FrameKind::Response {
        return Err(SysDsError::Format("expected a response frame".into()));
    }
    decode_response_payload(header.opcode, payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysds_tensor::Matrix;

    #[test]
    fn request_frame_round_trips() {
        let req = FedRequest::Put {
            var: "X".into(),
            data: Matrix::filled(3, 2, 1.5),
        };
        let bytes = request_frame(42, &req);
        let (id, back) = parse_request_frame(&bytes).unwrap();
        assert_eq!(id, 42);
        match back {
            FedRequest::Put { var, data } => {
                assert_eq!(var, "X");
                assert_eq!(data.shape(), (3, 2));
                assert_eq!(data.get(2, 1), 1.5);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn response_frame_round_trips() {
        let bytes = response_frame(7, &FedResponse::Scalar(2.25));
        let (id, back) = parse_response_frame(&bytes).unwrap();
        assert_eq!(id, 7);
        assert!(matches!(back, FedResponse::Scalar(v) if v == 2.25));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = request_frame(1, &FedRequest::Ping);
        bytes[0] = b'X';
        assert!(parse_request_frame(&bytes).is_err());
    }

    #[test]
    fn truncated_frame_rejected() {
        let bytes = request_frame(
            1,
            &FedRequest::Tsmm {
                var: "long_variable_name".into(),
            },
        );
        for cut in [1, HEADER_LEN - 1, HEADER_LEN + 3, bytes.len() - 1] {
            assert!(parse_request_frame(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn unknown_version_rejected() {
        let mut bytes = request_frame(1, &FedRequest::Ping);
        bytes[4] = 0xff;
        assert!(parse_request_frame(&bytes).is_err());
    }

    #[test]
    fn all_binary_ops_round_trip() {
        for code in 0..17u8 {
            let op = u8_to_op(code).unwrap();
            assert_eq!(op_to_u8(op), code);
        }
        assert!(u8_to_op(17).is_err());
    }

    #[test]
    fn oversized_payload_length_rejected() {
        let mut bytes = request_frame(1, &FedRequest::Ping);
        bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(parse_request_frame(&bytes).is_err());
    }

    #[test]
    fn bogus_in_limit_length_fails_on_read_without_huge_alloc() {
        // Header claims a multi-GiB payload (under MAX_PAYLOAD, so it
        // passes header validation) but the stream ends immediately. The
        // chunked reader must fail with an io error after allocating at
        // most one READ_CHUNK — this test OOMs if it preallocates.
        let mut bytes = request_frame(1, &FedRequest::Ping);
        bytes[16..24].copy_from_slice(&(MAX_PAYLOAD - 1).to_le_bytes());
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(read_frame(&mut cursor).is_err());
    }
}
