//! The master-side TCP transport: a [`sysds_fed::Transport`] over sockets.
//!
//! Each [`TcpTransport`] owns a small connection pool to one site and runs
//! every request through the robustness layer:
//!
//! * **deadlines** — read/write socket timeouts bound each attempt by
//!   [`NetConfig::request_timeout_ms`];
//! * **bounded retries** — up to [`NetConfig::max_retries`] re-sends with
//!   exponential backoff plus deterministic jitter. Re-sending is safe for
//!   every request kind: read-only requests are idempotent and mutating
//!   requests are deduplicated site-side by request id;
//! * **graceful degradation** — when the budget is exhausted the request
//!   fails with [`SysDsError::FederatedSiteLost`] instead of hanging;
//! * **heartbeats** — an optional background pinger tracks site health.
//!
//! Every round trip is recorded into `sysds_obs::net` (per-endpoint bytes,
//! latency, retries, timeouts) in addition to the federated counters the
//! [`Transport::request`] wrapper keeps.

use crate::wire;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use sysds_common::rng::XorShift64;
use sysds_common::{NetConfig, Result, SysDsError};
use sysds_fed::{FedRequest, FedResponse, Transport};

/// Process-wide request sequence, combined with a randomized epoch by
/// [`next_request_id`].
static NEXT_REQUEST_SEQ: AtomicU64 = AtomicU64::new(1);

/// Produce a request id that is unique per site *across processes*: the
/// server deduplicates mutating replays by id against a long-lived cache,
/// so a restarted or second master must never reuse a predecessor's ids.
/// The high 32 bits are a per-process random epoch (OS-seeded `RandomState`
/// folded with the pid); the low 32 bits count up within the process.
fn next_request_id() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    use std::sync::OnceLock;
    static EPOCH: OnceLock<u64> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(|| {
        let mut h = std::collections::hash_map::RandomState::new().build_hasher();
        h.write_u32(std::process::id());
        h.finish() << 32
    });
    epoch | (NEXT_REQUEST_SEQ.fetch_add(1, Ordering::Relaxed) & 0xFFFF_FFFF)
}

/// Most idle connections kept per site.
const POOL_LIMIT: usize = 4;

/// TCP transport to one federated site.
#[derive(Debug)]
pub struct TcpTransport {
    addr: SocketAddr,
    endpoint: String,
    cfg: NetConfig,
    threads: usize,
    pool: Mutex<Vec<TcpStream>>,
    healthy: AtomicBool,
    heartbeat_stop: Arc<AtomicBool>,
    heartbeat: Mutex<Option<JoinHandle<()>>>,
}

impl TcpTransport {
    /// Resolve `addr` (`host:port`) and verify the site with one ping.
    pub fn connect(addr: &str, cfg: NetConfig) -> Result<TcpTransport> {
        let sock_addr = addr
            .to_socket_addrs()
            .map_err(|e| SysDsError::site_lost(addr, format!("resolve: {e}")))?
            .next()
            .ok_or_else(|| SysDsError::site_lost(addr, "no address resolved"))?;
        let transport = TcpTransport {
            addr: sock_addr,
            endpoint: format!("tcp://{sock_addr}"),
            cfg,
            threads: 1,
            pool: Mutex::new(Vec::new()),
            healthy: AtomicBool::new(false),
            heartbeat_stop: Arc::new(AtomicBool::new(false)),
            heartbeat: Mutex::new(None),
        };
        transport.ping()?;
        transport.healthy.store(true, Ordering::Relaxed);
        Ok(transport)
    }

    /// Last known health of the site (updated by requests and heartbeats).
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::Relaxed)
    }

    /// Start a background heartbeat: pings every
    /// [`NetConfig::heartbeat_interval_ms`] and updates [`Self::is_healthy`].
    /// The pinger holds only a `Weak` reference, so it does not keep the
    /// transport alive: dropping the last `Arc` (or calling
    /// [`Self::stop_heartbeat`]) stops the thread. A stopped heartbeat
    /// cannot be restarted.
    pub fn start_heartbeat(self: &Arc<Self>) {
        let mut slot = self.heartbeat.lock().expect("heartbeat poisoned");
        if slot.is_some() {
            return;
        }
        let me = Arc::downgrade(self);
        let stop = Arc::clone(&self.heartbeat_stop);
        let interval = Duration::from_millis(self.cfg.heartbeat_interval_ms.max(10));
        *slot = Some(std::thread::spawn(move || {
            let slice = Duration::from_millis(25);
            loop {
                let mut slept = Duration::ZERO;
                while slept < interval {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    std::thread::sleep(slice);
                    slept += slice;
                }
                // Upgrade only around the ping: if every strong reference
                // is gone the transport is being (or has been) dropped.
                let Some(t) = me.upgrade() else { return };
                let ok =
                    t.single_attempt(&wire::request_frame(next_request_id(), &FedRequest::Ping));
                t.healthy.store(ok.is_ok(), Ordering::Relaxed);
            }
        }));
    }

    /// Stop the background heartbeat and join its thread (also happens
    /// automatically when the transport is dropped).
    pub fn stop_heartbeat(&self) {
        self.heartbeat_stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.heartbeat.lock().expect("heartbeat poisoned").take() {
            // The pinger may itself hold the last Arc when the upgrade
            // races a drop; never join the current thread.
            if join.thread().id() != std::thread::current().id() {
                let _ = join.join();
            }
        }
    }

    /// Ask the site daemon to shut down gracefully.
    pub fn shutdown_site(&self) -> Result<()> {
        match self.request(FedRequest::Shutdown)? {
            FedResponse::Ok => Ok(()),
            other => Err(SysDsError::Federated(format!(
                "unexpected shutdown response: {other:?}"
            ))),
        }
    }

    fn checkout(&self) -> std::io::Result<TcpStream> {
        if let Some(conn) = self.pool.lock().expect("pool poisoned").pop() {
            return Ok(conn);
        }
        let conn = TcpStream::connect_timeout(
            &self.addr,
            Duration::from_millis(self.cfg.connect_timeout_ms.max(1)),
        )?;
        conn.set_nodelay(true)?;
        Ok(conn)
    }

    fn checkin(&self, conn: TcpStream) {
        let mut pool = self.pool.lock().expect("pool poisoned");
        if pool.len() < POOL_LIMIT {
            pool.push(conn);
        }
    }

    /// One attempt: send the frame, read the matching response. Any error
    /// drops the connection (a stale or half-written socket must never go
    /// back into the pool). Returns the response plus bytes received.
    fn single_attempt(&self, frame: &[u8]) -> std::io::Result<(FedResponse, u64)> {
        let timeout = Duration::from_millis(self.cfg.request_timeout_ms.max(1));
        let mut conn = self.checkout()?;
        conn.set_write_timeout(Some(timeout))?;
        conn.set_read_timeout(Some(timeout))?;
        let sent = wire::write_frame(&mut conn, frame);
        if let Err(e) = sent {
            return Err(e);
        }
        let (header, payload) = match wire::read_frame(&mut conn)? {
            Ok(ok) => ok,
            Err(proto) => {
                return Err(std::io::Error::new(
                    ErrorKind::InvalidData,
                    proto.to_string(),
                ))
            }
        };
        let expected_id = u64::from_le_bytes(frame[8..16].try_into().expect("frame id"));
        if header.request_id != expected_id {
            return Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!(
                    "response id {} does not match request id {expected_id}",
                    header.request_id
                ),
            ));
        }
        let bytes_recv = (wire::HEADER_LEN + payload.len()) as u64;
        let resp = wire::decode_response(&header, payload)
            .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
        self.checkin(conn);
        Ok((resp, bytes_recv))
    }

    fn backoff(&self, attempt: u32, rng: &mut XorShift64) -> Duration {
        let base = self.cfg.backoff_base_ms.max(1);
        let max = self.cfg.backoff_max_ms.max(base);
        let exp = base.saturating_mul(1u64 << attempt.min(16));
        let capped = exp.min(max);
        // Deterministic jitter in [0, capped/2]: spreads synchronized
        // retries without introducing nondeterminism into tests. The total
        // is clamped so no single sleep ever exceeds backoff_max_ms.
        let jitter = rng.next_below((capped / 2 + 1) as usize) as u64;
        Duration::from_millis((capped + jitter).min(max))
    }
}

impl Transport for TcpTransport {
    fn exchange(&self, req: FedRequest) -> Result<FedResponse> {
        let request_id = next_request_id();
        let frame = wire::request_frame(request_id, &req);
        let mut rng = XorShift64::new(self.cfg.jitter_seed ^ request_id);
        let attempts = self.cfg.max_retries as u64 + 1;
        let start = Instant::now();
        let mut bytes_sent = 0u64;
        let mut retries = 0u64;
        let mut timeouts = 0u64;
        let mut last_err = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                retries += 1;
                std::thread::sleep(self.backoff(attempt as u32 - 1, &mut rng));
            }
            bytes_sent += frame.len() as u64;
            match self.single_attempt(&frame) {
                Ok((resp, bytes_recv)) => {
                    self.healthy.store(true, Ordering::Relaxed);
                    sysds_obs::net::record_request(
                        &self.endpoint,
                        bytes_sent,
                        bytes_recv,
                        start.elapsed().as_nanos() as u64,
                        retries,
                        timeouts,
                    );
                    return Ok(resp);
                }
                Err(e) => {
                    if matches!(e.kind(), ErrorKind::TimedOut | ErrorKind::WouldBlock) {
                        timeouts += 1;
                    }
                    last_err = e.to_string();
                }
            }
        }
        self.healthy.store(false, Ordering::Relaxed);
        sysds_obs::net::record_failure(&self.endpoint, retries, timeouts);
        Err(SysDsError::site_lost(
            &self.endpoint,
            format!("{attempts} attempts failed; last error: {last_err}"),
        ))
    }

    fn endpoint(&self) -> &str {
        &self.endpoint
    }

    fn threads(&self) -> usize {
        self.threads
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        self.stop_heartbeat();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_to_dead_address_is_site_lost() {
        // Port 1 on localhost is essentially never listening.
        let err = TcpTransport::connect(
            "127.0.0.1:1",
            NetConfig::default()
                .max_retries(0)
                .request_timeout_ms(200)
                .backoff_base_ms(1),
        )
        .unwrap_err();
        assert!(matches!(err, SysDsError::FederatedSiteLost { .. }), "{err}");
    }

    #[test]
    fn backoff_grows_and_respects_cap() {
        let t = TcpTransport {
            addr: "127.0.0.1:1".parse().unwrap(),
            endpoint: "tcp://test".into(),
            cfg: NetConfig::default().backoff_base_ms(10),
            threads: 1,
            pool: Mutex::new(Vec::new()),
            healthy: AtomicBool::new(false),
            heartbeat_stop: Arc::new(AtomicBool::new(false)),
            heartbeat: Mutex::new(None),
        };
        let mut rng = XorShift64::new(1);
        let b0 = t.backoff(0, &mut rng);
        let b4 = t.backoff(4, &mut rng);
        assert!(b0 >= Duration::from_millis(10));
        assert!(b4 >= b0);
        let cap_ms = t.cfg.backoff_max_ms;
        for attempt in 0..40 {
            assert!(
                t.backoff(attempt, &mut rng) <= Duration::from_millis(cap_ms),
                "attempt {attempt} slept past backoff_max_ms"
            );
        }
    }

    #[test]
    fn request_ids_share_a_process_epoch_and_increment() {
        let a = next_request_id();
        let b = next_request_id();
        assert_eq!(a >> 32, b >> 32, "epoch must be stable within a process");
        assert!(
            (b & 0xFFFF_FFFF) > (a & 0xFFFF_FFFF),
            "sequence must increase"
        );
    }

    #[test]
    fn heartbeat_thread_exits_when_transport_dropped() {
        let mut cfg = NetConfig::default().request_timeout_ms(50);
        cfg.heartbeat_interval_ms = 10;
        let t = Arc::new(TcpTransport {
            addr: "127.0.0.1:1".parse().unwrap(),
            endpoint: "tcp://test".into(),
            cfg,
            threads: 1,
            pool: Mutex::new(Vec::new()),
            healthy: AtomicBool::new(false),
            heartbeat_stop: Arc::new(AtomicBool::new(false)),
            heartbeat: Mutex::new(None),
        });
        t.start_heartbeat();
        let weak = Arc::downgrade(&t);
        drop(t); // must stop + join the pinger, not leak the transport
        for _ in 0..200 {
            if weak.upgrade().is_none() {
                return;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("heartbeat thread kept the transport alive");
    }
}
