//! `sysds-net` — networked federated workers.
//!
//! The paper's federated tensors (§3.3) reference *remote* sub-tensors;
//! `sysds-fed` models the protocol with in-process threads, and this crate
//! provides the real transport: a length-prefixed binary wire protocol
//! ([`wire`]), a TCP site daemon ([`server::WorkerServer`], exposed as
//! `sysds worker --listen ADDR`), and a master-side transport
//! ([`client::TcpTransport`]) implementing [`sysds_fed::Transport`] — so
//! `FederatedMatrix` and the learning algorithms run unchanged over
//! threads or sockets.
//!
//! Robustness is first-class: per-request deadlines, bounded retries with
//! exponential backoff + deterministic jitter, request-id deduplication for
//! mutating requests, heartbeat health checks, and typed
//! `FederatedSiteLost` degradation. The deterministic [`fault::FaultPlan`]
//! hook injects drops/delays/truncations server-side so every failure path
//! is testable in CI without flaky sleeps.

pub mod client;
pub mod fault;
pub mod server;
pub mod wire;

pub use client::TcpTransport;
pub use fault::{FaultAction, FaultPlan, FaultRule};
pub use server::WorkerServer;
