//! Property tests for the framed wire protocol: every request/response
//! variant survives serialize → deserialize exactly (including empty and
//! large matrices), and truncated or corrupted frames are rejected instead
//! of being half-decoded.

use proptest::prelude::*;
use sysds_fed::{FedRequest, FedResponse};
use sysds_net::wire;
use sysds_tensor::kernels::gen;
use sysds_tensor::kernels::BinaryOp;
use sysds_tensor::Matrix;

/// All binary ops the wire protocol must carry.
const OPS: [BinaryOp; 17] = [
    BinaryOp::Add,
    BinaryOp::Sub,
    BinaryOp::Mul,
    BinaryOp::Div,
    BinaryOp::Pow,
    BinaryOp::Mod,
    BinaryOp::IntDiv,
    BinaryOp::Min,
    BinaryOp::Max,
    BinaryOp::Eq,
    BinaryOp::Neq,
    BinaryOp::Lt,
    BinaryOp::Le,
    BinaryOp::Gt,
    BinaryOp::Ge,
    BinaryOp::And,
    BinaryOp::Or,
];

/// A matrix of the given shape — empty when either dimension is 0, dense
/// or sparse otherwise depending on `sparsity`.
fn matrix_for(rows: usize, cols: usize, sparsity: f64, seed: u64) -> Matrix {
    if rows == 0 || cols == 0 {
        Matrix::zeros(rows, cols)
    } else {
        gen::rand_uniform(rows, cols, -1e6, 1e6, sparsity, seed).compact()
    }
}

/// Exact structural equality via the derived debug representation: f64
/// formatting is shortest-round-trip, so equal strings mean bitwise-equal
/// values, shapes, and dense/sparse representation.
fn same_request(a: &FedRequest, b: &FedRequest) -> bool {
    format!("{a:?}") == format!("{b:?}")
}

fn same_response(a: &FedResponse, b: &FedResponse) -> bool {
    format!("{a:?}") == format!("{b:?}")
}

/// One instance of every request variant from the generated ingredients.
fn all_request_variants(var: String, m: Matrix, op: BinaryOp, scalar: f64) -> Vec<FedRequest> {
    vec![
        FedRequest::Put {
            var: var.clone(),
            data: m.clone(),
        },
        FedRequest::Remove { var: var.clone() },
        FedRequest::Tsmm { var: var.clone() },
        FedRequest::Tmv {
            x: var.clone(),
            y: format!("{var}_y"),
        },
        FedRequest::MatVecKeep {
            var: var.clone(),
            v: m.clone(),
            out: format!("{var}_out"),
        },
        FedRequest::ScalarOpKeep {
            var: var.clone(),
            op,
            scalar,
            out: format!("{var}_out"),
        },
        FedRequest::BinaryOpKeep {
            lhs: var.clone(),
            rhs: format!("{var}_rhs"),
            op,
            out: format!("{var}_out"),
        },
        FedRequest::ColSums { var: var.clone() },
        FedRequest::SumSq { var: var.clone() },
        FedRequest::NumRows { var: var.clone() },
        FedRequest::LinRegGradient {
            x: var.clone(),
            y: format!("{var}_y"),
            w: m,
        },
        FedRequest::Ping,
        FedRequest::Shutdown,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_request_variant_round_trips(
        var in "[a-zA-Z0-9_]{1,12}",
        rows in 0usize..20,
        cols in 0usize..8,
        sparsity in prop_oneof![Just(1.0f64), Just(0.2)],
        op_idx in 0usize..17,
        scalar in -1e9f64..1e9,
        id in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let m = matrix_for(rows, cols, sparsity, seed);
        for req in all_request_variants(var.clone(), m, OPS[op_idx], scalar) {
            let bytes = wire::request_frame(id, &req);
            let (back_id, back) = wire::parse_request_frame(&bytes).unwrap();
            prop_assert_eq!(back_id, id);
            prop_assert!(
                same_request(&req, &back),
                "variant {:?} changed across the wire", req.opcode()
            );
        }
    }

    #[test]
    fn every_response_variant_round_trips(
        rows in 0usize..20,
        cols in 0usize..8,
        sparsity in prop_oneof![Just(1.0f64), Just(0.2)],
        scalar in prop_oneof![Just(0.0f64), Just(-0.0), Just(f64::NAN), Just(f64::INFINITY), Just(2.5e-300)],
        msg in "[a-zA-Z0-9 _.]{0,40}",
        id in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let m = matrix_for(rows, cols, sparsity, seed);
        let responses = vec![
            FedResponse::Ok,
            FedResponse::Aggregate(m),
            FedResponse::Scalar(scalar),
            FedResponse::Error(msg),
        ];
        for resp in responses {
            let bytes = wire::response_frame(id, &resp);
            let (back_id, back) = wire::parse_response_frame(&bytes).unwrap();
            prop_assert_eq!(back_id, id);
            prop_assert!(same_response(&resp, &back), "{resp:?} vs {back:?}");
        }
    }

    #[test]
    fn every_truncation_is_rejected(
        var in "[a-z]{1,6}",
        rows in 1usize..4,
        cols in 1usize..4,
        seed in any::<u64>(),
    ) {
        // A small Put frame (header + strings + matrix block): every strict
        // prefix must fail to parse — no cut point half-applies.
        let req = FedRequest::Put {
            var,
            data: matrix_for(rows, cols, 1.0, seed),
        };
        let bytes = wire::request_frame(1, &req);
        for cut in 0..bytes.len() {
            prop_assert!(
                wire::parse_request_frame(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes was accepted", bytes.len()
            );
        }
    }

    #[test]
    fn corrupt_header_bytes_are_rejected(
        id in any::<u64>(),
    ) {
        // Clobbering any of magic, version, kind, or opcode must fail the
        // parse (0xff is outside every valid range).
        let bytes = wire::request_frame(id, &FedRequest::Ping);
        for pos in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[pos] = 0xff;
            prop_assert!(
                wire::parse_request_frame(&corrupt).is_err(),
                "corrupt byte {pos} was accepted"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected(
        junk in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let mut bytes = wire::request_frame(9, &FedRequest::Tsmm { var: "X".into() });
        bytes.extend_from_slice(&junk);
        prop_assert!(wire::parse_request_frame(&bytes).is_err());
    }

    #[test]
    fn response_as_request_is_rejected(id in any::<u64>()) {
        let resp = wire::response_frame(id, &FedResponse::Ok);
        prop_assert!(wire::parse_request_frame(&resp).is_err());
        let req = wire::request_frame(id, &FedRequest::Ping);
        prop_assert!(wire::parse_response_frame(&req).is_err());
    }
}

#[test]
fn large_dense_matrix_round_trips() {
    let m = gen::rand_uniform(300, 200, -1.0, 1.0, 1.0, 77);
    let req = FedRequest::Put {
        var: "big".into(),
        data: m,
    };
    let bytes = wire::request_frame(5, &req);
    assert!(bytes.len() > 300 * 200 * 8, "payload carries all cells");
    let (_, back) = wire::parse_request_frame(&bytes).unwrap();
    assert!(same_request(&req, &back));
}

#[test]
fn large_sparse_matrix_round_trips() {
    let m = gen::rand_uniform(2000, 500, -1.0, 1.0, 0.001, 78).compact();
    let resp = FedResponse::Aggregate(m);
    let bytes = wire::response_frame(6, &resp);
    let (_, back) = wire::parse_response_frame(&bytes).unwrap();
    assert!(same_response(&resp, &back));
}

#[test]
fn empty_matrix_round_trips() {
    for (rows, cols) in [(0usize, 0usize), (0, 5), (5, 0)] {
        let req = FedRequest::Put {
            var: "empty".into(),
            data: Matrix::zeros(rows, cols),
        };
        let bytes = wire::request_frame(1, &req);
        let (_, back) = wire::parse_request_frame(&bytes).unwrap();
        assert!(same_request(&req, &back), "shape {rows}x{cols}");
    }
}
