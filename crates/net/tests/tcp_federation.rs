//! End-to-end federation over real sockets: the TCP transport must be
//! indistinguishable from the in-process channel transport (bitwise-equal
//! results), and every injected failure mode — dropped responses, truncated
//! frames, deadline overruns, dead sites — must resolve through the
//! robustness layer (retries, dedup, typed degradation).

use std::sync::Arc;
use std::time::{Duration, Instant};
use sysds_common::{NetConfig, SysDsError};
use sysds_fed::learn::federated_lm;
use sysds_fed::{FedRequest, FederatedMatrix, Transport, WorkerHandle};
use sysds_net::{FaultPlan, TcpTransport, WorkerServer};
use sysds_tensor::kernels::gen;
use sysds_tensor::Matrix;

/// Fast-failing config so negative-path tests stay quick.
fn quick_cfg() -> NetConfig {
    NetConfig::default()
        .request_timeout_ms(2000)
        .max_retries(3)
        .backoff_base_ms(5)
}

fn connect(server: &WorkerServer, cfg: NetConfig) -> Arc<TcpTransport> {
    Arc::new(TcpTransport::connect(&server.local_addr().to_string(), cfg).unwrap())
}

fn lm_over(workers: &[Arc<dyn Transport>], x: &Matrix, y: &Matrix, lambda: f64) -> Matrix {
    let fx = FederatedMatrix::scatter(x, workers).unwrap();
    let fy = FederatedMatrix::scatter(y, workers).unwrap();
    federated_lm(&fx, &fy, lambda).unwrap()
}

#[test]
fn tcp_lm_is_bitwise_identical_to_in_process() {
    let (x, y) = gen::synthetic_regression(80, 5, 1.0, 0.1, 99);
    let servers: Vec<WorkerServer> = (0..3)
        .map(|_| WorkerServer::bind("127.0.0.1:0", vec![], 1).unwrap())
        .collect();
    let tcp: Vec<Arc<dyn Transport>> = servers
        .iter()
        .map(|s| connect(s, quick_cfg()) as Arc<dyn Transport>)
        .collect();
    let local: Vec<Arc<dyn Transport>> = (0..3)
        .map(|_| Arc::new(WorkerHandle::spawn(vec![], 1)) as Arc<dyn Transport>)
        .collect();
    for lambda in [0.0, 0.01, 1.0] {
        let over_tcp = lm_over(&tcp, &x, &y, lambda);
        let in_process = lm_over(&local, &x, &y, lambda);
        assert_eq!(
            over_tcp.to_vec(),
            in_process.to_vec(),
            "transport changed the result at lambda={lambda}"
        );
    }
}

#[test]
fn dropped_first_response_completes_via_retry() {
    let (x, y) = gen::synthetic_regression(60, 4, 1.0, 0.1, 100);
    // Site 0 executes its first post-connect request (the Put from
    // scatter) but never answers it: the client must retry, and the
    // site-side request-id dedup must answer the replay from cache
    // without re-executing the mutation. Sequence 0 is the connect ping.
    let faulty = WorkerServer::bind_with_faults(
        "127.0.0.1:0",
        vec![],
        1,
        FaultPlan::none().drop_response(1),
    )
    .unwrap();
    let clean = WorkerServer::bind("127.0.0.1:0", vec![], 1).unwrap();
    let t0 = connect(&faulty, quick_cfg());
    let tcp: Vec<Arc<dyn Transport>> = vec![
        Arc::clone(&t0) as Arc<dyn Transport>,
        connect(&clean, quick_cfg()) as Arc<dyn Transport>,
    ];
    let local: Vec<Arc<dyn Transport>> = (0..2)
        .map(|_| Arc::new(WorkerHandle::spawn(vec![], 1)) as Arc<dyn Transport>)
        .collect();
    assert_eq!(
        lm_over(&tcp, &x, &y, 0.01).to_vec(),
        lm_over(&local, &x, &y, 0.01).to_vec()
    );
    let stats = sysds_obs::net::site_stats();
    let site = stats
        .iter()
        .find(|s| s.endpoint == t0.endpoint())
        .expect("faulty site recorded");
    assert!(site.retries >= 1, "retry not recorded: {site:?}");
}

#[test]
fn truncated_response_completes_via_retry() {
    let (x, y) = gen::synthetic_regression(50, 3, 1.0, 0.1, 101);
    let faulty = WorkerServer::bind_with_faults(
        "127.0.0.1:0",
        vec![],
        1,
        FaultPlan::none().truncate_response(1, 10),
    )
    .unwrap();
    let tcp: Vec<Arc<dyn Transport>> = vec![connect(&faulty, quick_cfg()) as Arc<dyn Transport>];
    let local: Vec<Arc<dyn Transport>> =
        vec![Arc::new(WorkerHandle::spawn(vec![], 1)) as Arc<dyn Transport>];
    assert_eq!(
        lm_over(&tcp, &x, &y, 0.0).to_vec(),
        lm_over(&local, &x, &y, 0.0).to_vec()
    );
}

#[test]
fn delayed_response_times_out_then_retries() {
    let (x, y) = gen::synthetic_regression(40, 3, 1.0, 0.1, 102);
    // The delayed response overruns the 100ms per-attempt deadline; the
    // retry (sequence 2, no fault) succeeds.
    let faulty = WorkerServer::bind_with_faults(
        "127.0.0.1:0",
        vec![],
        1,
        FaultPlan::none().delay_response(1, 600),
    )
    .unwrap();
    let cfg = quick_cfg().request_timeout_ms(100);
    let t = connect(&faulty, cfg);
    let tcp: Vec<Arc<dyn Transport>> = vec![Arc::clone(&t) as Arc<dyn Transport>];
    let local: Vec<Arc<dyn Transport>> =
        vec![Arc::new(WorkerHandle::spawn(vec![], 1)) as Arc<dyn Transport>];
    assert_eq!(
        lm_over(&tcp, &x, &y, 0.1).to_vec(),
        lm_over(&local, &x, &y, 0.1).to_vec()
    );
    let stats = sysds_obs::net::site_stats();
    let site = stats
        .iter()
        .find(|s| s.endpoint == t.endpoint())
        .expect("site recorded");
    assert!(site.timeouts >= 1, "timeout not recorded: {site:?}");
}

#[test]
fn dead_site_degrades_to_site_lost() {
    let mut server = WorkerServer::bind("127.0.0.1:0", vec![], 1).unwrap();
    let cfg = quick_cfg().max_retries(1).request_timeout_ms(300);
    let t = connect(&server, cfg);
    server.shutdown();
    let err = t
        .request(FedRequest::NumRows { var: "X".into() })
        .unwrap_err();
    assert!(
        matches!(err, SysDsError::FederatedSiteLost { .. }),
        "expected FederatedSiteLost, got: {err}"
    );
    assert!(!t.is_healthy());
}

#[test]
fn site_error_is_a_reply_not_a_retry_storm() {
    // A request that fails *at the site* (missing variable) must come back
    // as one FedResponse::Error reply — a federated error, not a transport
    // failure, and without burning the retry budget.
    let server = WorkerServer::bind("127.0.0.1:0", vec![], 1).unwrap();
    let t = connect(&server, quick_cfg());
    let before = sysds_obs::net::site_stats()
        .iter()
        .find(|s| s.endpoint == t.endpoint())
        .map(|s| s.retries)
        .unwrap_or(0);
    let err = t
        .request(FedRequest::Tsmm { var: "nope".into() })
        .unwrap_err();
    assert!(
        matches!(err, SysDsError::Federated(_)),
        "expected Federated error, got: {err}"
    );
    let after = sysds_obs::net::site_stats()
        .iter()
        .find(|s| s.endpoint == t.endpoint())
        .map(|s| s.retries)
        .unwrap_or(0);
    assert_eq!(before, after, "site-side errors must not be retried");
}

#[test]
fn wire_shutdown_stops_the_daemon_gracefully() {
    let server = WorkerServer::bind("127.0.0.1:0", vec![], 1).unwrap();
    let t = connect(&server, quick_cfg());
    t.shutdown_site().unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while !server.is_stopped() {
        assert!(Instant::now() < deadline, "daemon did not stop");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn heartbeat_detects_a_dying_site() {
    let mut server = WorkerServer::bind("127.0.0.1:0", vec![], 1).unwrap();
    let mut cfg = quick_cfg().max_retries(0).request_timeout_ms(200);
    cfg.heartbeat_interval_ms = 50;
    let t = connect(&server, cfg);
    t.start_heartbeat();
    assert!(t.is_healthy());
    server.shutdown();
    let deadline = Instant::now() + Duration::from_secs(5);
    while t.is_healthy() {
        assert!(
            Instant::now() < deadline,
            "heartbeat never noticed the dead site"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn parameter_server_trains_over_tcp() {
    let (x, y) = gen::synthetic_regression(120, 4, 1.0, 0.0, 103);
    let servers: Vec<WorkerServer> = (0..2)
        .map(|_| WorkerServer::bind("127.0.0.1:0", vec![], 1).unwrap())
        .collect();
    let tcp: Vec<Arc<dyn Transport>> = servers
        .iter()
        .map(|s| connect(s, quick_cfg()) as Arc<dyn Transport>)
        .collect();
    let fx = FederatedMatrix::scatter(&x, &tcp).unwrap();
    let fy = FederatedMatrix::scatter(&y, &tcp).unwrap();
    let mut ps = sysds_fed::learn::FederatedParamServer::new(4, 0.5, 0.0);
    let first = ps.step(&fx, &fy).unwrap();
    let mut last = first;
    for _ in 0..30 {
        last = ps.step(&fx, &fy).unwrap();
    }
    assert!(
        last < first,
        "gradient norm should shrink: {first} -> {last}"
    );
}
