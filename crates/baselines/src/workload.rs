//! The Figure 5 hyper-parameter-optimization workload definition.
//!
//! §4.1: "The workload is a hyper-parameter optimization script that reads
//! a CSV file, trains k regression models with different regularization
//! parameters λ (see lmDS in Figure 2), and stores the resulting models as
//! a single CSV file."

use std::path::{Path, PathBuf};
use sysds_common::Result;
use sysds_io::FormatDescriptor;
use sysds_tensor::kernels::gen;
use sysds_tensor::Matrix;

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct HyperParamWorkload {
    /// Rows of the feature matrix X.
    pub rows: usize,
    /// Columns of X.
    pub cols: usize,
    /// Sparsity of X (1.0 = dense, Fig. 5(b) uses 0.1).
    pub sparsity: f64,
    /// Number of models k; λ values are `1e-6 * 2^i`.
    pub num_models: usize,
    /// Data-generation seed.
    pub seed: u64,
    /// Directory for the CSV input and model output.
    pub dir: PathBuf,
}

impl HyperParamWorkload {
    /// The paper's λ sweep: k distinct regularization values.
    pub fn lambdas(&self) -> Vec<f64> {
        (0..self.num_models)
            .map(|i| 1e-6 * (i as f64 + 1.0))
            .collect()
    }

    /// Path of the generated feature CSV.
    pub fn x_path(&self) -> PathBuf {
        self.dir.join(format!(
            "X_{}x{}_sp{}_s{}.csv",
            self.rows, self.cols, self.sparsity, self.seed
        ))
    }

    /// Path of the generated label CSV.
    pub fn y_path(&self) -> PathBuf {
        self.dir.join(format!(
            "y_{}_sp{}_s{}.csv",
            self.rows, self.sparsity, self.seed
        ))
    }

    /// Path models are written to.
    pub fn model_path(&self) -> PathBuf {
        self.dir.join(format!(
            "models_{}x{}_k{}.csv",
            self.rows, self.cols, self.num_models
        ))
    }

    /// Generate the synthetic input files if not already present; returns
    /// the (X, y) pair as in-memory matrices as well.
    pub fn materialize(&self) -> Result<(Matrix, Matrix)> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| sysds_common::SysDsError::io(self.dir.display().to_string(), e))?;
        let (x, y) =
            gen::synthetic_regression(self.rows, self.cols, self.sparsity, 0.05, self.seed);
        let desc = FormatDescriptor::csv();
        if !self.x_path().exists() {
            sysds_io::csv::write_matrix(self.x_path(), &x, &desc)?;
            sysds_io::Metadata::matrix(x.rows(), x.cols(), x.nnz(), "csv").save(self.x_path())?;
        }
        if !self.y_path().exists() {
            sysds_io::csv::write_matrix(self.y_path(), &y, &desc)?;
            sysds_io::Metadata::matrix(y.rows(), y.cols(), y.nnz(), "csv").save(self.y_path())?;
        }
        Ok((x, y))
    }

    /// Remove generated files (benchmark cleanup).
    pub fn cleanup(&self) {
        for p in [self.x_path(), self.y_path(), self.model_path()] {
            let _ = std::fs::remove_file(&p);
            let _ = std::fs::remove_file(sysds_io::Metadata::sidecar_path(&p));
        }
    }
}

/// Result of one engine run: per-λ models stacked column-wise, ready to be
/// checked against other engines.
#[derive(Debug)]
pub struct WorkloadResult {
    /// `cols x k` matrix; column i is the model for λ_i.
    pub models: Matrix,
}

impl WorkloadResult {
    /// Compare against another engine's result.
    pub fn approx_eq(&self, other: &WorkloadResult, tol: f64) -> bool {
        self.models.approx_eq(&other.models, tol)
    }

    /// Write models as a single CSV (the workload's final step).
    pub fn write(&self, path: &Path) -> Result<()> {
        sysds_io::csv::write_matrix(path, &self.models, &FormatDescriptor::csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl() -> HyperParamWorkload {
        HyperParamWorkload {
            rows: 50,
            cols: 4,
            sparsity: 1.0,
            num_models: 3,
            seed: 11,
            dir: std::env::temp_dir().join("sysds-workload-tests"),
        }
    }

    #[test]
    fn lambdas_are_distinct_and_positive() {
        let l = wl().lambdas();
        assert_eq!(l.len(), 3);
        for w in l.windows(2) {
            assert!(w[0] < w[1]);
            assert!(w[0] > 0.0);
        }
    }

    #[test]
    fn materialize_writes_files_and_metadata() {
        let w = wl();
        w.cleanup();
        let (x, y) = w.materialize().unwrap();
        assert_eq!(x.shape(), (50, 4));
        assert_eq!(y.shape(), (50, 1));
        assert!(w.x_path().exists());
        let meta = sysds_io::Metadata::load(w.x_path()).unwrap().unwrap();
        assert_eq!((meta.rows, meta.cols), (50, 4));
        // idempotent
        let (x2, _) = w.materialize().unwrap();
        assert!(x2.approx_eq(&x, 0.0));
        w.cleanup();
        assert!(!w.x_path().exists());
    }
}
