//! Baseline engines for the paper's Figure 5 experiments.
//!
//! The paper compares SystemDS against TensorFlow (eager and graph mode)
//! and Julia on a hyper-parameter-optimization workload: read a CSV file,
//! train `k` ridge-regression models (`lmDS`) with different λ, write the
//! models. We cannot run the originals offline, so each baseline is
//! re-implemented to reproduce its *performance-shaping behaviour*
//! (see DESIGN.md §2):
//!
//! * [`EagerEngine`] (≈ TF eager): op-by-op execution, **materializes the
//!   transpose** for `t(X) %*% X` (TF's sparse-dense matmul "lacks a fused
//!   call"), single-threaded CSV parse, no redundancy elimination at all.
//! * [`GraphEngine`] (≈ TF-G): builds one expression graph for the whole
//!   λ-sweep and eliminates common subexpressions **within that graph** —
//!   the transpose happens once — but still recomputes the per-λ work.
//! * [`NativeEngine`] (≈ Julia): straight-line calls into the optimized
//!   (BLAS-like) kernels with fused `tsmm`, but single-threaded I/O and no
//!   cross-model reuse.
//!
//! All engines share one workload definition, [`workload::HyperParamWorkload`],
//! which is also what the SystemDS engine runs via DML in `sysds-bench`.

pub mod engines;
pub mod workload;

pub use engines::{EagerEngine, Engine, GraphEngine, NativeEngine};
pub use workload::{HyperParamWorkload, WorkloadResult};
