//! The three baseline engines (TF eager, TF graph, Julia stand-ins).

use crate::workload::{HyperParamWorkload, WorkloadResult};
use sysds_common::hash::FxHashMap;
use sysds_common::Result;
use sysds_io::FormatDescriptor;
use sysds_tensor::kernels::BinaryOp;
use sysds_tensor::kernels::{elementwise, indexing, matmult, reorg, solve, tsmm};
use sysds_tensor::Matrix;

/// A baseline engine that can run the hyper-parameter workload end-to-end
/// (CSV read → k model trainings → CSV write), like §4.1 measures.
pub trait Engine {
    /// Engine label as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Run the workload end-to-end; input files must exist
    /// (see [`HyperParamWorkload::materialize`]).
    fn run(&self, w: &HyperParamWorkload) -> Result<WorkloadResult>;
}

fn ridge_lhs(gram: &Matrix, lambda: f64) -> Result<Matrix> {
    let n = gram.rows();
    let reg = elementwise::binary_ms(
        BinaryOp::Mul,
        &Matrix::Dense(Matrix::identity(n).to_dense()),
        lambda,
    );
    elementwise::binary_mm(BinaryOp::Add, gram, &reg)
}

fn stack_models(models: Vec<Matrix>) -> Result<Matrix> {
    let mut it = models.into_iter();
    let mut acc = it.next().expect("at least one model");
    for m in it {
        acc = indexing::cbind(&acc, &m)?;
    }
    Ok(acc)
}

/// TF-eager stand-in: single-threaded I/O, op-by-op execution with a
/// **materialized transpose** per model, portable (non-BLAS) kernels, and
/// zero redundancy elimination — `t(X)`, `t(X)X`, and `t(X)y` are
/// recomputed for every λ.
pub struct EagerEngine {
    /// Threads available to compute kernels (TF parallelizes matmuls).
    pub threads: usize,
}

impl Engine for EagerEngine {
    fn name(&self) -> &'static str {
        "TF"
    }

    fn run(&self, w: &HyperParamWorkload) -> Result<WorkloadResult> {
        let desc = FormatDescriptor::csv();
        // Single-threaded parse: this is what makes TF's single-model
        // cold-start slower than SysDS in Fig. 5(a).
        let x = sysds_io::csv::read_matrix(w.x_path(), &desc, 1)?;
        let y = sysds_io::csv::read_matrix(w.y_path(), &desc, 1)?;
        let mut models = Vec::with_capacity(w.num_models);
        for lambda in w.lambdas() {
            // materialized transpose, every iteration
            let xt = reorg::transpose(&x, self.threads);
            let gram = matmult::matmul(&xt, &x, self.threads, false)?;
            let xty = matmult::matmul(&xt, &y, self.threads, false)?;
            let lhs = ridge_lhs(&gram, lambda)?;
            models.push(solve::solve(&lhs, &xty)?);
        }
        let result = WorkloadResult {
            models: stack_models(models)?,
        };
        result.write(&w.model_path())?;
        Ok(result)
    }
}

/// TF-graph stand-in: the whole sweep is staged as one expression graph;
/// common subexpressions across the k models are computed **once** (the
/// transpose and the Gram matrix), but there is no fused tsmm and no
/// cross-run reuse.
pub struct GraphEngine {
    pub threads: usize,
}

/// A tiny expression graph with hash-consing — just enough to demonstrate
/// the "single graph → CSE" behaviour of TF-G.
struct ExprGraph {
    nodes: Vec<(String, Vec<usize>)>,
    cse: FxHashMap<(String, Vec<usize>), usize>,
    values: Vec<Option<Matrix>>,
}

impl ExprGraph {
    fn new() -> ExprGraph {
        ExprGraph {
            nodes: Vec::new(),
            cse: FxHashMap::default(),
            values: Vec::new(),
        }
    }

    fn add(&mut self, op: impl Into<String>, inputs: Vec<usize>) -> usize {
        let key = (op.into(), inputs);
        if let Some(&id) = self.cse.get(&key) {
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(key.clone());
        self.values.push(None);
        self.cse.insert(key, id);
        id
    }

    fn feed(&mut self, name: &str, value: Matrix) -> usize {
        let id = self.add(format!("feed:{name}"), vec![]);
        self.values[id] = Some(value);
        id
    }

    /// Evaluate all nodes once, in insertion (topological) order.
    fn run(&mut self, threads: usize) -> Result<()> {
        for id in 0..self.nodes.len() {
            if self.values[id].is_some() {
                continue;
            }
            let (op, inputs) = self.nodes[id].clone();
            let get = |k: usize| self.values[inputs[k]].as_ref().expect("topo order");
            let out = match op.as_str() {
                "transpose" => reorg::transpose(get(0), threads),
                "matmul" => matmult::matmul(get(0), get(1), threads, false)?,
                op if op.starts_with("ridge:") => {
                    let lambda: f64 = op["ridge:".len()..].parse().expect("encoded lambda");
                    ridge_lhs(get(0), lambda)?
                }
                "solve" => solve::solve(get(0), get(1))?,
                other => {
                    return Err(sysds_common::SysDsError::runtime(format!(
                        "graph engine: unknown op '{other}'"
                    )))
                }
            };
            self.values[id] = Some(out);
        }
        Ok(())
    }

    fn take(&mut self, id: usize) -> Matrix {
        self.values[id].take().expect("node evaluated")
    }
}

impl Engine for GraphEngine {
    fn name(&self) -> &'static str {
        "TF-G"
    }

    fn run(&self, w: &HyperParamWorkload) -> Result<WorkloadResult> {
        let desc = FormatDescriptor::csv();
        let x = sysds_io::csv::read_matrix(w.x_path(), &desc, 1)?;
        let y = sysds_io::csv::read_matrix(w.y_path(), &desc, 1)?;
        // Stage one graph for the entire sweep; CSE shares t(X), t(X)X,
        // and t(X)y across the k models.
        let mut g = ExprGraph::new();
        let xn = g.feed("X", x);
        let yn = g.feed("y", y);
        let xt = g.add("transpose", vec![xn]);
        let gram = g.add("matmul", vec![xt, xn]);
        let xty = g.add("matmul", vec![xt, yn]);
        let mut outs = Vec::with_capacity(w.num_models);
        for lambda in w.lambdas() {
            let lhs = g.add(format!("ridge:{lambda}"), vec![gram]);
            outs.push(g.add("solve", vec![lhs, xty]));
        }
        g.run(self.threads)?;
        let models: Vec<Matrix> = outs.into_iter().map(|id| g.take(id)).collect();
        let result = WorkloadResult {
            models: stack_models(models)?,
        };
        result.write(&w.model_path())?;
        Ok(result)
    }
}

/// Julia stand-in: tuned native kernels (BLAS-like blocked matmul, fused
/// `tsmm`) but single-threaded I/O and no cross-model redundancy
/// elimination — every λ recomputes `X'X` and `X'y`.
pub struct NativeEngine {
    pub threads: usize,
}

impl Engine for NativeEngine {
    fn name(&self) -> &'static str {
        "Julia"
    }

    fn run(&self, w: &HyperParamWorkload) -> Result<WorkloadResult> {
        let desc = FormatDescriptor::csv();
        let x = sysds_io::csv::read_matrix(w.x_path(), &desc, 1)?;
        let y = sysds_io::csv::read_matrix(w.y_path(), &desc, 1)?;
        let mut models = Vec::with_capacity(w.num_models);
        for lambda in w.lambdas() {
            // Dense: fused, optimized kernels — but recomputed per model.
            // Sparse: Julia 1.1's sparse stack had no fused X'X (the paper's
            // Fig. 5(b) point), so the transpose is materialized.
            let (gram, xty) = if x.is_sparse() {
                let xt = reorg::transpose(&x, self.threads);
                (
                    matmult::matmul(&xt, &x, self.threads, true)?,
                    matmult::matmul(&xt, &y, self.threads, true)?,
                )
            } else {
                (
                    tsmm::tsmm(&x, self.threads, true),
                    tsmm::tmv(&x, &y, self.threads)?,
                )
            };
            let lhs = ridge_lhs(&gram, lambda)?;
            models.push(solve::solve(&lhs, &xty)?);
        }
        let result = WorkloadResult {
            models: stack_models(models)?,
        };
        result.write(&w.model_path())?;
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl(name: &str) -> HyperParamWorkload {
        HyperParamWorkload {
            rows: 60,
            cols: 5,
            sparsity: 1.0,
            num_models: 4,
            seed: 21,
            dir: std::env::temp_dir().join(format!("sysds-baseline-tests-{name}")),
        }
    }

    #[test]
    fn all_engines_agree_on_models() {
        let w = wl("agree");
        w.materialize().unwrap();
        let eager = EagerEngine { threads: 2 }.run(&w).unwrap();
        let graph = GraphEngine { threads: 2 }.run(&w).unwrap();
        let native = NativeEngine { threads: 2 }.run(&w).unwrap();
        assert!(eager.approx_eq(&graph, 1e-7));
        assert!(eager.approx_eq(&native, 1e-7));
        assert_eq!(eager.models.shape(), (5, 4));
        w.cleanup();
    }

    #[test]
    fn sparse_workload_also_agrees() {
        let w = HyperParamWorkload {
            sparsity: 0.2,
            ..wl("sparse")
        };
        w.materialize().unwrap();
        let eager = EagerEngine { threads: 1 }.run(&w).unwrap();
        let native = NativeEngine { threads: 1 }.run(&w).unwrap();
        assert!(eager.approx_eq(&native, 1e-7));
        w.cleanup();
    }

    #[test]
    fn models_differ_across_lambdas() {
        let w = wl("lambdas");
        w.materialize().unwrap();
        let r = NativeEngine { threads: 1 }.run(&w).unwrap();
        // Different λ must give (slightly) different models.
        let c0 = indexing::column(&r.models, 0).unwrap();
        let c3 = indexing::column(&r.models, 3).unwrap();
        assert!(!c0.approx_eq(&c3, 0.0));
        w.cleanup();
    }

    #[test]
    fn graph_engine_cse_counts_nodes() {
        // The graph for k models must contain exactly one transpose and
        // two shared matmuls, plus k ridge and k solve nodes.
        let mut g = ExprGraph::new();
        let x = g.feed("X", Matrix::identity(3));
        let y = g.feed("y", Matrix::zeros(3, 1));
        let xt1 = g.add("transpose", vec![x]);
        let xt2 = g.add("transpose", vec![x]);
        assert_eq!(xt1, xt2, "transpose CSE'd");
        let g1 = g.add("matmul", vec![xt1, x]);
        let g2 = g.add("matmul", vec![xt2, x]);
        assert_eq!(g1, g2, "gram CSE'd");
        let _ = y;
    }

    #[test]
    fn workload_output_written() {
        let w = wl("output");
        w.materialize().unwrap();
        NativeEngine { threads: 1 }.run(&w).unwrap();
        assert!(w.model_path().exists());
        let back = sysds_io::csv::read_matrix(w.model_path(), &FormatDescriptor::csv(), 1).unwrap();
        assert_eq!(back.shape(), (5, 4));
        w.cleanup();
    }
}
