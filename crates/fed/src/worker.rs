//! Federated site workers and the request/response protocol.
//!
//! A worker owns named local matrices and executes *federated instructions*
//! pushed down by the master. Every response is an aggregate (its size
//! depends only on column counts or is scalar) — the protocol has no
//! "return your rows" request, which is how the exchange constraint of
//! paper §3.3 is kept by construction.

use crossbeam::channel::{bounded, unbounded, Sender};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread::JoinHandle;
use sysds_common::{Result, SysDsError};
use sysds_tensor::kernels::{aggregate, elementwise, matmult, tsmm};
use sysds_tensor::kernels::{AggFn, BinaryOp, Direction};
use sysds_tensor::Matrix;

/// Instructions the master can push to a federated site.
///
/// `Clone` because networked transports re-send requests on retry; the
/// mutating variants stay retry-safe through site-side request-id
/// deduplication (see `sysds-net`).
#[derive(Debug, Clone)]
pub enum FedRequest {
    /// Store a matrix under a variable id (site-side data loading).
    Put { var: String, data: Matrix },
    /// Drop a variable.
    Remove { var: String },
    /// Fused `t(X) %*% X` over the local partition → `cols x cols`.
    Tsmm { var: String },
    /// Fused `t(X) %*% y` with both operands local → `cols x 1`.
    Tmv { x: String, y: String },
    /// `X %*% v` with a broadcast `v`; result *stays at the site* under
    /// `out` (it is row-partitioned data, so it may not travel).
    MatVecKeep { var: String, v: Matrix, out: String },
    /// Element-wise op with a broadcast scalar, kept at the site.
    ScalarOpKeep {
        var: String,
        op: BinaryOp,
        scalar: f64,
        out: String,
    },
    /// Element-wise op between two local variables, kept at the site.
    BinaryOpKeep {
        lhs: String,
        rhs: String,
        op: BinaryOp,
        out: String,
    },
    /// Column sums of a local variable → `1 x cols` aggregate.
    ColSums { var: String },
    /// Full sum of squares (e.g. local residual norms) → scalar.
    SumSq { var: String },
    /// Local row count → scalar.
    NumRows { var: String },
    /// Gradient of squared loss at broadcast weights:
    /// `t(X) %*% (X w - y)` → `cols x 1` aggregate.
    LinRegGradient { x: String, y: String, w: Matrix },
    /// Liveness probe; answered with [`FedResponse::Ok`] without touching
    /// any site state (used by heartbeat health checks).
    Ping,
    /// Stop the worker loop.
    Shutdown,
}

/// Responses: aggregates only.
#[derive(Debug, Clone)]
pub enum FedResponse {
    Ok,
    Aggregate(Matrix),
    Scalar(f64),
    Error(String),
}

impl FedRequest {
    /// Stable opcode used in statistics and trace records.
    pub fn opcode(&self) -> &'static str {
        match self {
            FedRequest::Put { .. } => "fed_put",
            FedRequest::Remove { .. } => "fed_remove",
            FedRequest::Tsmm { .. } => "fed_tsmm",
            FedRequest::Tmv { .. } => "fed_tmv",
            FedRequest::MatVecKeep { .. } => "fed_matvec",
            FedRequest::ScalarOpKeep { .. } => "fed_scalar_op",
            FedRequest::BinaryOpKeep { .. } => "fed_binary_op",
            FedRequest::ColSums { .. } => "fed_colsums",
            FedRequest::SumSq { .. } => "fed_sumsq",
            FedRequest::NumRows { .. } => "fed_nrows",
            FedRequest::LinRegGradient { .. } => "fed_linreg_grad",
            FedRequest::Ping => "fed_ping",
            FedRequest::Shutdown => "fed_shutdown",
        }
    }

    /// Whether a replay of this request is observably identical to a single
    /// delivery *without* site-side deduplication. Read-only requests are;
    /// mutating requests (`Put`, `Remove`, `*Keep`) need the request-id
    /// dedup cache a networked server keeps.
    pub fn idempotent(&self) -> bool {
        matches!(
            self,
            FedRequest::Tsmm { .. }
                | FedRequest::Tmv { .. }
                | FedRequest::ColSums { .. }
                | FedRequest::SumSq { .. }
                | FedRequest::NumRows { .. }
                | FedRequest::LinRegGradient { .. }
                | FedRequest::Ping
                | FedRequest::Shutdown
        )
    }
}

type Envelope = (FedRequest, Sender<FedResponse>);

/// Logical site ids for worker attribution in traces.
static NEXT_SITE_ID: AtomicU64 = AtomicU64::new(0);

/// The master-side handle to one federated site running as an in-process
/// thread (the channel transport).
#[derive(Debug)]
pub struct WorkerHandle {
    tx: Sender<Envelope>,
    join: Option<JoinHandle<()>>,
    threads: usize,
    endpoint: String,
}

impl WorkerHandle {
    /// Spawn a site worker with initial local variables.
    pub fn spawn(initial: Vec<(String, Matrix)>, threads: usize) -> WorkerHandle {
        let (tx, rx) = unbounded::<Envelope>();
        let site_id = NEXT_SITE_ID.fetch_add(1, Ordering::Relaxed);
        let join = std::thread::spawn(move || {
            let _worker = sysds_obs::set_worker(site_id);
            let mut vars: HashMap<String, Matrix> = initial.into_iter().collect();
            while let Ok((req, reply)) = rx.recv() {
                if matches!(req, FedRequest::Shutdown) {
                    let _ = reply.send(FedResponse::Ok);
                    break;
                }
                let resp = execute_request(&mut vars, req, threads);
                let _ = reply.send(resp);
            }
        });
        WorkerHandle {
            tx,
            join: Some(join),
            threads,
            endpoint: format!("inproc://site-{site_id}"),
        }
    }
}

impl crate::transport::Transport for WorkerHandle {
    fn exchange(&self, req: FedRequest) -> Result<FedResponse> {
        let (rtx, rrx) = bounded(1);
        self.tx
            .send((req, rtx))
            .map_err(|_| SysDsError::Federated("worker channel closed".into()))?;
        rrx.recv()
            .map_err(|_| SysDsError::Federated("worker died before responding".into()))
    }

    fn endpoint(&self) -> &str {
        &self.endpoint
    }

    fn threads(&self) -> usize {
        self.threads
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        let (rtx, _rrx) = bounded(1);
        let _ = self.tx.send((FedRequest::Shutdown, rtx));
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

fn get<'a>(vars: &'a HashMap<String, Matrix>, var: &str) -> Result<&'a Matrix> {
    vars.get(var)
        .ok_or_else(|| SysDsError::Federated(format!("unknown federated variable '{var}'")))
}

/// Execute one request against a site's variable map, never panicking:
/// kernel errors *and* kernel panics both become [`FedResponse::Error`]
/// replies so a malformed request cannot kill the site. Shared by the
/// in-process worker loop and the TCP daemon in `sysds-net`.
pub fn execute_request(
    vars: &mut HashMap<String, Matrix>,
    req: FedRequest,
    threads: usize,
) -> FedResponse {
    let _span = sysds_obs::Span::enter(sysds_obs::Phase::Federated, req.opcode());
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| execute(vars, req, threads))) {
        Ok(Ok(resp)) => resp,
        Ok(Err(e)) => FedResponse::Error(e.to_string()),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("site kernel panicked");
            FedResponse::Error(format!("site panic: {msg}"))
        }
    }
}

fn execute(
    vars: &mut HashMap<String, Matrix>,
    req: FedRequest,
    threads: usize,
) -> Result<FedResponse> {
    Ok(match req {
        FedRequest::Put { var, data } => {
            vars.insert(var, data);
            FedResponse::Ok
        }
        FedRequest::Remove { var } => {
            vars.remove(&var);
            FedResponse::Ok
        }
        FedRequest::Tsmm { var } => {
            let x = get(vars, &var)?;
            FedResponse::Aggregate(tsmm::tsmm(x, threads, false))
        }
        FedRequest::Tmv { x, y } => {
            let xv = get(vars, &x)?;
            let yv = get(vars, &y)?;
            FedResponse::Aggregate(tsmm::tmv(xv, yv, threads)?)
        }
        FedRequest::MatVecKeep { var, v, out } => {
            let x = get(vars, &var)?;
            let r = matmult::matmul(x, &v, threads, false)?;
            vars.insert(out, r);
            FedResponse::Ok
        }
        FedRequest::ScalarOpKeep {
            var,
            op,
            scalar,
            out,
        } => {
            let x = get(vars, &var)?;
            let r = elementwise::binary_ms(op, x, scalar);
            vars.insert(out, r);
            FedResponse::Ok
        }
        FedRequest::BinaryOpKeep { lhs, rhs, op, out } => {
            let a = get(vars, &lhs)?;
            let b = get(vars, &rhs)?;
            let r = elementwise::binary_mm(op, a, b)?;
            vars.insert(out, r);
            FedResponse::Ok
        }
        FedRequest::ColSums { var } => {
            let x = get(vars, &var)?;
            FedResponse::Aggregate(aggregate::aggregate_axis(AggFn::Sum, Direction::Col, x)?)
        }
        FedRequest::SumSq { var } => {
            let x = get(vars, &var)?;
            FedResponse::Scalar(aggregate::aggregate_full(AggFn::SumSq, x)?)
        }
        FedRequest::NumRows { var } => FedResponse::Scalar(get(vars, &var)?.rows() as f64),
        FedRequest::LinRegGradient { x, y, w } => {
            let xv = get(vars, &x)?;
            let yv = get(vars, &y)?;
            let pred = matmult::matmul(xv, &w, threads, false)?;
            let resid = elementwise::binary_mm(BinaryOp::Sub, &pred, yv)?;
            FedResponse::Aggregate(tsmm::tmv(xv, &resid, threads)?)
        }
        FedRequest::Ping | FedRequest::Shutdown => FedResponse::Ok,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Transport;
    use sysds_tensor::kernels::{gen, reorg};

    #[test]
    fn put_tsmm_round_trip() {
        let x = gen::rand_uniform(20, 4, -1.0, 1.0, 1.0, 131);
        let w = WorkerHandle::spawn(vec![("X".into(), x.clone())], 2);
        let g = w
            .request_aggregate(FedRequest::Tsmm { var: "X".into() })
            .unwrap();
        let expect = matmult::matmul(&reorg::transpose(&x, 1), &x, 1, false).unwrap();
        assert!(g.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn unknown_variable_is_error() {
        let w = WorkerHandle::spawn(vec![], 1);
        assert!(w
            .request(FedRequest::Tsmm {
                var: "missing".into()
            })
            .is_err());
    }

    #[test]
    fn matvec_keeps_result_at_site() {
        let x = gen::rand_uniform(10, 3, -1.0, 1.0, 1.0, 132);
        let v = gen::rand_uniform(3, 1, -1.0, 1.0, 1.0, 133);
        let w = WorkerHandle::spawn(vec![("X".into(), x.clone())], 1);
        w.request(FedRequest::MatVecKeep {
            var: "X".into(),
            v: v.clone(),
            out: "P".into(),
        })
        .unwrap();
        // The site can aggregate over P, proving it exists locally.
        let ss = w
            .request_scalar(FedRequest::SumSq { var: "P".into() })
            .unwrap();
        let local = matmult::matmul(&x, &v, 1, false).unwrap();
        let expect = aggregate::aggregate_full(AggFn::SumSq, &local).unwrap();
        assert!((ss - expect).abs() < 1e-9);
    }

    #[test]
    fn gradient_matches_local_computation() {
        let (x, y) = gen::synthetic_regression(30, 4, 1.0, 0.1, 134);
        let wvec = gen::rand_uniform(4, 1, -1.0, 1.0, 1.0, 135);
        let site = WorkerHandle::spawn(vec![("X".into(), x.clone()), ("y".into(), y.clone())], 2);
        let g = site
            .request_aggregate(FedRequest::LinRegGradient {
                x: "X".into(),
                y: "y".into(),
                w: wvec.clone(),
            })
            .unwrap();
        let pred = matmult::matmul(&x, &wvec, 1, false).unwrap();
        let resid = elementwise::binary_mm(BinaryOp::Sub, &pred, &y).unwrap();
        let expect = tsmm::tmv(&x, &resid, 1).unwrap();
        assert!(g.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn put_remove_lifecycle() {
        let w = WorkerHandle::spawn(vec![], 1);
        w.request(FedRequest::Put {
            var: "A".into(),
            data: Matrix::filled(2, 2, 1.0),
        })
        .unwrap();
        assert_eq!(
            w.request_scalar(FedRequest::NumRows { var: "A".into() })
                .unwrap(),
            2.0
        );
        w.request(FedRequest::Remove { var: "A".into() }).unwrap();
        assert!(w.request(FedRequest::NumRows { var: "A".into() }).is_err());
    }

    #[test]
    fn colsums_aggregate() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let w = WorkerHandle::spawn(vec![("X".into(), x)], 1);
        let cs = w
            .request_aggregate(FedRequest::ColSums { var: "X".into() })
            .unwrap();
        assert_eq!(cs.to_vec(), vec![4.0, 6.0]);
    }

    #[test]
    fn worker_survives_errors() {
        let w = WorkerHandle::spawn(vec![("X".into(), Matrix::zeros(2, 2))], 1);
        assert!(w.request(FedRequest::Tsmm { var: "nope".into() }).is_err());
        // still serving afterwards
        assert!(w.request(FedRequest::Tsmm { var: "X".into() }).is_ok());
    }

    #[test]
    fn ping_answers_ok() {
        let w = WorkerHandle::spawn(vec![], 1);
        w.ping().unwrap();
        assert!(w.endpoint().starts_with("inproc://site-"));
    }

    #[test]
    fn endpoints_are_distinct_per_site() {
        let a = WorkerHandle::spawn(vec![], 1);
        let b = WorkerHandle::spawn(vec![], 1);
        assert_ne!(a.endpoint(), b.endpoint());
    }

    #[test]
    fn idempotence_classification() {
        assert!(FedRequest::Tsmm { var: "x".into() }.idempotent());
        assert!(FedRequest::Ping.idempotent());
        assert!(!FedRequest::Put {
            var: "x".into(),
            data: Matrix::zeros(1, 1)
        }
        .idempotent());
        assert!(!FedRequest::Remove { var: "x".into() }.idempotent());
    }

    #[test]
    fn execute_request_catches_panics() {
        let mut vars: HashMap<String, Matrix> = HashMap::new();
        let resp = execute_request(&mut vars, FedRequest::Tsmm { var: "gone".into() }, 1);
        assert!(matches!(resp, FedResponse::Error(_)));
        let panics = std::panic::catch_unwind(|| {
            let mut vars: HashMap<String, Matrix> = HashMap::new();
            execute_request(&mut vars, FedRequest::Ping, 1)
        });
        assert!(panics.is_ok());
    }
}
