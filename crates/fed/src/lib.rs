//! Federated ML (paper §3.3).
//!
//! "Our basic design consists of multiple control programs, each having
//! local data. A master control program holds the federated tensors
//! including connections to the other sites."
//!
//! Here each site is an in-process worker thread owning its partition; the
//! master communicates exclusively over message channels. The key invariant
//! — the *exchange constraint* — is enforced structurally: workers only
//! ever answer with **aggregates whose size is independent of the local row
//! count** (Gram matrices, gradient vectors, scalar statistics); there is no
//! request that returns raw rows.
//!
//! * [`worker`] — the federated site: request/response protocol and the
//!   worker event loop;
//! * [`transport`] — the pluggable [`Transport`] trait the master uses to
//!   reach a site (in-process channels here; TCP in `sysds-net`);
//! * [`tensor`] — [`FederatedMatrix`]: a metadata object mapping disjoint
//!   row ranges to workers, with federated instructions (tsmm, `t(X)y`,
//!   broadcast mat-vec, scalar ops, column aggregates);
//! * [`learn`] — federated linear regression (normal equations) and
//!   federated mini-batch SGD with a parameter-server master.

pub mod learn;
pub mod tensor;
pub mod transport;
pub mod worker;

pub use tensor::FederatedMatrix;
pub use transport::Transport;
pub use worker::{FedRequest, FedResponse, WorkerHandle};
