//! Federated tensors: metadata objects over row-partitioned remote data.
//!
//! "A federated tensor ... is a metadata object holding multiple references
//! to — potentially remote — in-memory or distributed tensors. Subtensors
//! cover disjoint index ranges of the tensor" (paper §2.4). We implement
//! the row-partitioned 2-D case, which is the one federated learning uses.

use crate::transport::Transport;
use crate::worker::FedRequest;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use sysds_common::{Result, SysDsError};
use sysds_tensor::kernels::elementwise::BinaryOp;
use sysds_tensor::kernels::indexing;
use sysds_tensor::Matrix;

static NEXT_VAR: AtomicU64 = AtomicU64::new(0);

fn fresh_var(prefix: &str) -> String {
    format!(
        "__fed_{prefix}_{}",
        NEXT_VAR.fetch_add(1, Ordering::Relaxed)
    )
}

/// One partition: rows `[row_lo, row_hi)` live at `worker` under `var`.
/// The worker is any [`Transport`] — an in-process thread or a TCP site.
#[derive(Debug, Clone)]
pub struct FedPartition {
    pub row_lo: usize,
    pub row_hi: usize,
    pub worker: Arc<dyn Transport>,
    pub var: String,
}

/// A row-partitioned federated matrix.
#[derive(Debug, Clone)]
pub struct FederatedMatrix {
    rows: usize,
    cols: usize,
    partitions: Vec<FedPartition>,
}

impl FederatedMatrix {
    /// Scatter a local matrix across `workers` in contiguous row ranges
    /// (test/bootstrap path; production data would already live at sites).
    pub fn scatter(m: &Matrix, workers: &[Arc<dyn Transport>]) -> Result<FederatedMatrix> {
        if workers.is_empty() {
            return Err(SysDsError::Federated(
                "scatter needs at least one worker".into(),
            ));
        }
        let rows = m.rows();
        let per = rows.div_ceil(workers.len()).max(1);
        let mut partitions = Vec::new();
        let mut lo = 0usize;
        for w in workers {
            if lo >= rows {
                break;
            }
            let hi = (lo + per).min(rows);
            let var = fresh_var("part");
            let slice = indexing::slice(m, lo..hi, 0..m.cols())?;
            w.request(FedRequest::Put {
                var: var.clone(),
                data: slice,
            })?;
            partitions.push(FedPartition {
                row_lo: lo,
                row_hi: hi,
                worker: Arc::clone(w),
                var,
            });
            lo = hi;
        }
        Ok(FederatedMatrix {
            rows,
            cols: m.cols(),
            partitions,
        })
    }

    /// Assemble from partitions that already live at sites. Ranges must be
    /// contiguous from zero and disjoint ("uncovered areas are zero" is
    /// not needed for the row-partitioned learning case).
    pub fn from_partitions(cols: usize, partitions: Vec<FedPartition>) -> Result<FederatedMatrix> {
        let mut expected = 0usize;
        for p in &partitions {
            if p.row_lo != expected || p.row_hi <= p.row_lo {
                return Err(SysDsError::Federated(
                    "federated ranges must be contiguous and non-empty".into(),
                ));
            }
            expected = p.row_hi;
        }
        Ok(FederatedMatrix {
            rows: expected,
            cols,
            partitions,
        })
    }

    /// Total row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of federated sites backing this tensor.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Access partition metadata.
    pub fn partitions(&self) -> &[FedPartition] {
        &self.partitions
    }

    /// Federated `t(X) %*% X`: push fused tsmm to every site, add the
    /// aggregates at the master. Only `cols x cols` matrices travel.
    pub fn tsmm(&self) -> Result<Matrix> {
        let mut acc: Option<Matrix> = None;
        for p in &self.partitions {
            let part = p
                .worker
                .request_aggregate(FedRequest::Tsmm { var: p.var.clone() })?;
            acc = Some(match acc {
                None => part,
                Some(a) => elementwise_add(&a, &part)?,
            });
        }
        acc.ok_or_else(|| SysDsError::Federated("tsmm over empty federated matrix".into()))
    }

    /// Federated `t(X) %*% y` for an aligned federated `y`.
    pub fn tmv(&self, y: &FederatedMatrix) -> Result<Matrix> {
        self.check_aligned(y)?;
        let mut acc: Option<Matrix> = None;
        for (px, py) in self.partitions.iter().zip(&y.partitions) {
            let part = px.worker.request_aggregate(FedRequest::Tmv {
                x: px.var.clone(),
                y: py.var.clone(),
            })?;
            acc = Some(match acc {
                None => part,
                Some(a) => elementwise_add(&a, &part)?,
            });
        }
        acc.ok_or_else(|| SysDsError::Federated("tmv over empty federated matrix".into()))
    }

    /// Federated `X %*% v` with broadcast `v`; the row-partitioned result
    /// stays federated (a new federated matrix of the same ranges).
    pub fn mat_vec(&self, v: &Matrix) -> Result<FederatedMatrix> {
        if v.rows() != self.cols || v.cols() != 1 {
            return Err(SysDsError::DimensionMismatch {
                op: "fed %*%",
                lhs: (self.rows, self.cols),
                rhs: v.shape(),
            });
        }
        let mut partitions = Vec::with_capacity(self.partitions.len());
        for p in &self.partitions {
            let out = fresh_var("mv");
            p.worker.request(FedRequest::MatVecKeep {
                var: p.var.clone(),
                v: v.clone(),
                out: out.clone(),
            })?;
            partitions.push(FedPartition {
                row_lo: p.row_lo,
                row_hi: p.row_hi,
                worker: Arc::clone(&p.worker),
                var: out,
            });
        }
        FederatedMatrix::from_partitions(1, partitions)
    }

    /// Federated element-wise op with an aligned federated operand; the
    /// result stays federated.
    pub fn binary_op(&self, op: BinaryOp, other: &FederatedMatrix) -> Result<FederatedMatrix> {
        self.check_aligned(other)?;
        if self.cols != other.cols {
            return Err(SysDsError::Federated(
                "federated binary op: column mismatch".into(),
            ));
        }
        let mut partitions = Vec::with_capacity(self.partitions.len());
        for (pa, pb) in self.partitions.iter().zip(&other.partitions) {
            let out = fresh_var("bin");
            pa.worker.request(FedRequest::BinaryOpKeep {
                lhs: pa.var.clone(),
                rhs: pb.var.clone(),
                op,
                out: out.clone(),
            })?;
            partitions.push(FedPartition {
                row_lo: pa.row_lo,
                row_hi: pa.row_hi,
                worker: Arc::clone(&pa.worker),
                var: out,
            });
        }
        FederatedMatrix::from_partitions(self.cols, partitions)
    }

    /// Federated element-wise op with a broadcast scalar; the result stays
    /// federated at the sites.
    pub fn scalar_op(&self, op: BinaryOp, scalar: f64) -> Result<FederatedMatrix> {
        let mut partitions = Vec::with_capacity(self.partitions.len());
        for p in &self.partitions {
            let out = fresh_var("sop");
            p.worker.request(FedRequest::ScalarOpKeep {
                var: p.var.clone(),
                op,
                scalar,
                out: out.clone(),
            })?;
            partitions.push(FedPartition {
                row_lo: p.row_lo,
                row_hi: p.row_hi,
                worker: Arc::clone(&p.worker),
                var: out,
            });
        }
        FederatedMatrix::from_partitions(self.cols, partitions)
    }

    /// Federated column sums (a `1 x cols` aggregate).
    pub fn col_sums(&self) -> Result<Matrix> {
        let mut acc: Option<Matrix> = None;
        for p in &self.partitions {
            let part = p
                .worker
                .request_aggregate(FedRequest::ColSums { var: p.var.clone() })?;
            acc = Some(match acc {
                None => part,
                Some(a) => elementwise_add(&a, &part)?,
            });
        }
        acc.ok_or_else(|| SysDsError::Federated("col_sums over empty federated matrix".into()))
    }

    /// Federated sum of squares (scalar aggregate; e.g. residual norms).
    pub fn sum_sq(&self) -> Result<f64> {
        let mut acc = 0.0;
        for p in &self.partitions {
            acc += p
                .worker
                .request_scalar(FedRequest::SumSq { var: p.var.clone() })?;
        }
        Ok(acc)
    }

    /// Free the site-side variables backing this federated matrix.
    pub fn free(self) -> Result<()> {
        for p in &self.partitions {
            p.worker
                .request(FedRequest::Remove { var: p.var.clone() })?;
        }
        Ok(())
    }

    fn check_aligned(&self, other: &FederatedMatrix) -> Result<()> {
        if self.partitions.len() != other.partitions.len()
            || self.partitions.iter().zip(&other.partitions).any(|(a, b)| {
                a.row_lo != b.row_lo
                    || a.row_hi != b.row_hi
                    || a.worker.endpoint() != b.worker.endpoint()
            })
        {
            return Err(SysDsError::Federated(
                "federated operands are not range-aligned".into(),
            ));
        }
        Ok(())
    }
}

fn elementwise_add(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    sysds_tensor::kernels::elementwise::binary_mm(BinaryOp::Add, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::WorkerHandle;
    use sysds_tensor::kernels::{gen, matmult, reorg, tsmm as local_tsmm};

    fn workers(n: usize) -> Vec<Arc<dyn Transport>> {
        (0..n)
            .map(|_| Arc::new(WorkerHandle::spawn(vec![], 1)) as Arc<dyn Transport>)
            .collect()
    }

    #[test]
    fn scatter_covers_all_rows() {
        let m = gen::rand_uniform(25, 4, -1.0, 1.0, 1.0, 141);
        let ws = workers(3);
        let f = FederatedMatrix::scatter(&m, &ws).unwrap();
        assert_eq!(f.rows(), 25);
        assert_eq!(f.cols(), 4);
        assert_eq!(f.num_partitions(), 3);
        let covered: usize = f.partitions().iter().map(|p| p.row_hi - p.row_lo).sum();
        assert_eq!(covered, 25);
    }

    #[test]
    fn federated_tsmm_matches_local() {
        let m = gen::rand_uniform(40, 5, -1.0, 1.0, 1.0, 142);
        let ws = workers(4);
        let f = FederatedMatrix::scatter(&m, &ws).unwrap();
        let got = f.tsmm().unwrap();
        assert!(got.approx_eq(&local_tsmm::tsmm(&m, 1, false), 1e-9));
    }

    #[test]
    fn federated_tmv_matches_local() {
        let (x, y) = gen::synthetic_regression(30, 4, 1.0, 0.2, 143);
        let ws = workers(3);
        let fx = FederatedMatrix::scatter(&x, &ws).unwrap();
        let fy = FederatedMatrix::scatter(&y, &ws).unwrap();
        let got = fx.tmv(&fy).unwrap();
        let expect = matmult::matmul(&reorg::transpose(&x, 1), &y, 1, false).unwrap();
        assert!(got.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn misaligned_operands_rejected() {
        let x = gen::rand_uniform(20, 3, -1.0, 1.0, 1.0, 144);
        let ws2 = workers(2);
        let ws3 = workers(3);
        let fa = FederatedMatrix::scatter(&x, &ws2).unwrap();
        let fb = FederatedMatrix::scatter(&x, &ws3).unwrap();
        assert!(fa.tmv(&fb).is_err());
    }

    #[test]
    fn mat_vec_stays_federated_and_aggregates_match() {
        let x = gen::rand_uniform(22, 4, -1.0, 1.0, 1.0, 145);
        let v = gen::rand_uniform(4, 1, -1.0, 1.0, 1.0, 146);
        let ws = workers(2);
        let f = FederatedMatrix::scatter(&x, &ws).unwrap();
        let fp = f.mat_vec(&v).unwrap();
        assert_eq!(fp.rows(), 22);
        assert_eq!(fp.cols(), 1);
        let local = matmult::matmul(&x, &v, 1, false).unwrap();
        let local_ss = sysds_tensor::kernels::aggregate::aggregate_full(
            sysds_tensor::kernels::AggFn::SumSq,
            &local,
        )
        .unwrap();
        assert!((fp.sum_sq().unwrap() - local_ss).abs() < 1e-9);
        assert!(f.mat_vec(&Matrix::zeros(9, 1)).is_err());
    }

    #[test]
    fn binary_op_between_federated_results() {
        let (x, y) = gen::synthetic_regression(18, 3, 1.0, 0.0, 147);
        let w = gen::rand_uniform(3, 1, -1.0, 1.0, 1.0, 148);
        let ws = workers(3);
        let fx = FederatedMatrix::scatter(&x, &ws).unwrap();
        let fy = FederatedMatrix::scatter(&y, &ws).unwrap();
        let pred = fx.mat_vec(&w).unwrap();
        let resid = pred.binary_op(BinaryOp::Sub, &fy).unwrap();
        let local_pred = matmult::matmul(&x, &w, 1, false).unwrap();
        let local_resid =
            sysds_tensor::kernels::elementwise::binary_mm(BinaryOp::Sub, &local_pred, &y).unwrap();
        let local_ss = sysds_tensor::kernels::aggregate::aggregate_full(
            sysds_tensor::kernels::AggFn::SumSq,
            &local_resid,
        )
        .unwrap();
        assert!((resid.sum_sq().unwrap() - local_ss).abs() < 1e-9);
    }

    #[test]
    fn col_sums_match_local() {
        let m = gen::rand_uniform(31, 6, 0.0, 1.0, 1.0, 149);
        let ws = workers(4);
        let f = FederatedMatrix::scatter(&m, &ws).unwrap();
        let got = f.col_sums().unwrap();
        let expect = sysds_tensor::kernels::aggregate::aggregate_axis(
            sysds_tensor::kernels::AggFn::Sum,
            sysds_tensor::kernels::Direction::Col,
            &m,
        )
        .unwrap();
        assert!(got.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn free_releases_site_variables() {
        let m = gen::rand_uniform(10, 2, 0.0, 1.0, 1.0, 150);
        let ws = workers(2);
        let f = FederatedMatrix::scatter(&m, &ws).unwrap();
        let vars: Vec<(Arc<dyn Transport>, String)> = f
            .partitions()
            .iter()
            .map(|p| (Arc::clone(&p.worker), p.var.clone()))
            .collect();
        f.free().unwrap();
        for (w, var) in vars {
            assert!(w.request(FedRequest::NumRows { var }).is_err());
        }
    }

    #[test]
    fn from_partitions_validates_ranges() {
        let ws = workers(1);
        let bad = vec![FedPartition {
            row_lo: 5,
            row_hi: 10,
            worker: Arc::clone(&ws[0]),
            var: "x".into(),
        }];
        assert!(FederatedMatrix::from_partitions(2, bad).is_err());
    }
}
