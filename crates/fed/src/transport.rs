//! The pluggable site transport.
//!
//! `FederatedMatrix` and the learning algorithms never talk to a concrete
//! worker type: they hold `Arc<dyn Transport>` handles and issue
//! [`FedRequest`]s through this trait. The in-process channel transport
//! ([`crate::worker::WorkerHandle`]) and the TCP transport in `sysds-net`
//! both implement it, so the same federated program runs unchanged over
//! threads or sockets.
//!
//! Implementors provide the raw [`Transport::exchange`] round trip; the
//! instrumented `request*` wrappers (span + counters + error mapping) are
//! default methods so every transport reports into `sysds-obs` the same way.

use crate::worker::{FedRequest, FedResponse};
use std::sync::atomic::Ordering;
use sysds_common::{Result, SysDsError};
use sysds_tensor::Matrix;

/// One federated site, as seen by the master.
pub trait Transport: Send + Sync + std::fmt::Debug {
    /// Send one request and wait for the raw response. Transport-level
    /// failures (closed channel, socket error, exhausted retries) surface
    /// as `Err`; site-side execution failures arrive as
    /// [`FedResponse::Error`] and are mapped by [`Transport::request`].
    fn exchange(&self, req: FedRequest) -> Result<FedResponse>;

    /// Stable identity of the site (e.g. `inproc://site-3` or
    /// `tcp://127.0.0.1:7700`). Partition alignment checks compare
    /// endpoints, so two handles to the same site must agree.
    fn endpoint(&self) -> &str;

    /// Degree of parallelism the site uses for its local kernels.
    fn threads(&self) -> usize;

    /// Send one request and wait for the response, instrumented with a
    /// `Federated` span and the master-side request counters.
    fn request(&self, req: FedRequest) -> Result<FedResponse> {
        let opcode = req.opcode();
        let _span = sysds_obs::Span::enter(sysds_obs::Phase::Federated, opcode);
        let start = std::time::Instant::now();
        let out = match self.exchange(req) {
            Ok(FedResponse::Error(msg)) => Err(SysDsError::Federated(msg)),
            other => other,
        };
        if sysds_obs::stats_enabled() {
            let c = sysds_obs::counters();
            c.fed_requests.fetch_add(1, Ordering::Relaxed);
            c.fed_request_nanos
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        out
    }

    /// Request an aggregate-matrix response.
    fn request_aggregate(&self, req: FedRequest) -> Result<Matrix> {
        match self.request(req)? {
            FedResponse::Aggregate(m) => Ok(m),
            other => Err(SysDsError::Federated(format!(
                "expected aggregate, got {other:?}"
            ))),
        }
    }

    /// Request a scalar response.
    fn request_scalar(&self, req: FedRequest) -> Result<f64> {
        match self.request(req)? {
            FedResponse::Scalar(v) => Ok(v),
            other => Err(SysDsError::Federated(format!(
                "expected scalar, got {other:?}"
            ))),
        }
    }

    /// Liveness probe: a [`FedRequest::Ping`] round trip.
    fn ping(&self) -> Result<()> {
        match self.request(FedRequest::Ping)? {
            FedResponse::Ok => Ok(()),
            other => Err(SysDsError::Federated(format!(
                "unexpected ping response: {other:?}"
            ))),
        }
    }
}
