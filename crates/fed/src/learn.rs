//! Federated learning algorithms (paper §3.3).
//!
//! * [`federated_lm`] — ridge regression over federated data via the normal
//!   equations: sites compute `Xi'Xi` and `Xi'yi`, the master sums and
//!   solves. The model is *exactly* the centralized solution.
//! * [`FederatedParamServer`] — mini-batch-style federated SGD: the master
//!   broadcasts weights, each site returns its local gradient (a `cols x 1`
//!   aggregate), and the master applies synchronous (BSP) updates —
//!   "extend our existing parameter server for respecting the boundaries of
//!   federated tensors".

use crate::tensor::FederatedMatrix;
use crate::worker::FedRequest;
use sysds_common::{Result, SysDsError};
use sysds_tensor::kernels::BinaryOp;
use sysds_tensor::kernels::{elementwise, solve};
use sysds_tensor::Matrix;

/// Federated ridge regression via normal equations.
/// Solves `(t(X)X + lambda I) w = t(X) y` without moving any rows.
pub fn federated_lm(x: &FederatedMatrix, y: &FederatedMatrix, lambda: f64) -> Result<Matrix> {
    if y.cols() != 1 {
        return Err(SysDsError::Federated(
            "federated lm expects a label vector".into(),
        ));
    }
    let mut gram = x.tsmm()?;
    if lambda != 0.0 {
        let n = gram.rows();
        let reg = elementwise::binary_ms(
            BinaryOp::Mul,
            &Matrix::Dense(Matrix::identity(n).to_dense()),
            lambda,
        );
        gram = elementwise::binary_mm(BinaryOp::Add, &gram, &reg)?;
    }
    let xty = x.tmv(y)?;
    solve::solve(&gram, &xty)
}

/// Synchronous federated parameter server for linear regression SGD.
#[derive(Debug)]
pub struct FederatedParamServer {
    /// Current model weights (`cols x 1`).
    weights: Matrix,
    /// Step size.
    learning_rate: f64,
    /// L2 regularization strength.
    lambda: f64,
}

impl FederatedParamServer {
    /// Initialize with zero weights.
    pub fn new(num_features: usize, learning_rate: f64, lambda: f64) -> FederatedParamServer {
        FederatedParamServer {
            weights: Matrix::zeros(num_features, 1),
            learning_rate,
            lambda,
        }
    }

    /// Current weights.
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// One BSP epoch: broadcast weights, gather per-site gradients of the
    /// squared loss, average, and step. Returns the gradient norm.
    pub fn step(&mut self, x: &FederatedMatrix, y: &FederatedMatrix) -> Result<f64> {
        if x.num_partitions() != y.num_partitions() {
            return Err(SysDsError::Federated("X and y partitioning differs".into()));
        }
        let mut grad: Option<Matrix> = None;
        for (px, py) in x.partitions().iter().zip(y.partitions()) {
            let g = px.worker.request_aggregate(FedRequest::LinRegGradient {
                x: px.var.clone(),
                y: py.var.clone(),
                w: self.weights.clone(),
            })?;
            grad = Some(match grad {
                None => g,
                Some(acc) => elementwise::binary_mm(BinaryOp::Add, &acc, &g)?,
            });
        }
        let mut grad = grad.ok_or_else(|| SysDsError::Federated("no partitions".into()))?;
        // Average over the global row count and add the L2 term.
        grad = elementwise::binary_ms(BinaryOp::Div, &grad, x.rows() as f64);
        if self.lambda != 0.0 {
            let reg = elementwise::binary_ms(BinaryOp::Mul, &self.weights, self.lambda);
            grad = elementwise::binary_mm(BinaryOp::Add, &grad, &reg)?;
        }
        let step = elementwise::binary_ms(BinaryOp::Mul, &grad, self.learning_rate);
        self.weights = elementwise::binary_mm(BinaryOp::Sub, &self.weights, &step)?;
        let norm = sysds_tensor::kernels::aggregate::aggregate_full(
            sysds_tensor::kernels::AggFn::SumSq,
            &grad,
        )?
        .sqrt();
        Ok(norm)
    }

    /// Run epochs until the gradient norm drops below `tol` or `max_epochs`
    /// is reached; returns the number of epochs run.
    pub fn train(
        &mut self,
        x: &FederatedMatrix,
        y: &FederatedMatrix,
        max_epochs: usize,
        tol: f64,
    ) -> Result<usize> {
        for epoch in 1..=max_epochs {
            let norm = self.step(x, y)?;
            if norm < tol {
                return Ok(epoch);
            }
        }
        Ok(max_epochs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::Transport;
    use crate::worker::WorkerHandle;
    use std::sync::Arc;
    use sysds_tensor::kernels::{gen, tsmm};

    fn workers(n: usize) -> Vec<Arc<dyn Transport>> {
        (0..n)
            .map(|_| Arc::new(WorkerHandle::spawn(vec![], 1)) as Arc<dyn Transport>)
            .collect()
    }

    fn centralized_lm(x: &Matrix, y: &Matrix, lambda: f64) -> Matrix {
        let mut g = tsmm::tsmm(x, 1, false);
        if lambda != 0.0 {
            let reg = elementwise::binary_ms(
                BinaryOp::Mul,
                &Matrix::Dense(Matrix::identity(g.rows()).to_dense()),
                lambda,
            );
            g = elementwise::binary_mm(BinaryOp::Add, &g, &reg).unwrap();
        }
        let b = tsmm::tmv(x, y, 1).unwrap();
        solve::solve(&g, &b).unwrap()
    }

    #[test]
    fn federated_lm_equals_centralized() {
        let (x, y) = gen::synthetic_regression(60, 5, 1.0, 0.1, 151);
        let ws = workers(3);
        let fx = FederatedMatrix::scatter(&x, &ws).unwrap();
        let fy = FederatedMatrix::scatter(&y, &ws).unwrap();
        for lambda in [0.0, 0.01, 1.0] {
            let fed = federated_lm(&fx, &fy, lambda).unwrap();
            let central = centralized_lm(&x, &y, lambda);
            assert!(fed.approx_eq(&central, 1e-7), "lambda={lambda}");
        }
    }

    #[test]
    fn federated_lm_single_site_degenerates_to_local() {
        let (x, y) = gen::synthetic_regression(30, 3, 1.0, 0.05, 152);
        let ws = workers(1);
        let fx = FederatedMatrix::scatter(&x, &ws).unwrap();
        let fy = FederatedMatrix::scatter(&y, &ws).unwrap();
        let fed = federated_lm(&fx, &fy, 0.001).unwrap();
        assert!(fed.approx_eq(&centralized_lm(&x, &y, 0.001), 1e-8));
    }

    #[test]
    fn federated_lm_rejects_matrix_labels() {
        let x = gen::rand_uniform(10, 2, 0.0, 1.0, 1.0, 153);
        let ws = workers(2);
        let fx = FederatedMatrix::scatter(&x, &ws).unwrap();
        let fy2 = FederatedMatrix::scatter(&x, &ws).unwrap();
        assert!(federated_lm(&fx, &fy2, 0.0).is_err());
    }

    #[test]
    fn federated_sgd_converges_toward_true_weights() {
        let (x, y) = gen::synthetic_regression(200, 4, 1.0, 0.0, 154);
        let ws = workers(4);
        let fx = FederatedMatrix::scatter(&x, &ws).unwrap();
        let fy = FederatedMatrix::scatter(&y, &ws).unwrap();
        let mut ps = FederatedParamServer::new(4, 0.5, 0.0);
        let epochs = ps.train(&fx, &fy, 500, 1e-8).unwrap();
        assert!(epochs <= 500);
        let exact = centralized_lm(&x, &y, 0.0);
        assert!(
            ps.weights().approx_eq(&exact, 1e-2),
            "sgd {:?} vs exact {:?}",
            ps.weights().to_vec(),
            exact.to_vec()
        );
    }

    #[test]
    fn sgd_gradient_norm_decreases() {
        let (x, y) = gen::synthetic_regression(100, 3, 1.0, 0.0, 155);
        let ws = workers(2);
        let fx = FederatedMatrix::scatter(&x, &ws).unwrap();
        let fy = FederatedMatrix::scatter(&y, &ws).unwrap();
        let mut ps = FederatedParamServer::new(3, 0.5, 0.0);
        let first = ps.step(&fx, &fy).unwrap();
        let mut last = first;
        for _ in 0..50 {
            last = ps.step(&fx, &fy).unwrap();
        }
        assert!(
            last < first,
            "gradient norm should shrink: {first} -> {last}"
        );
    }

    #[test]
    fn sgd_with_regularization_shrinks_weights() {
        let (x, y) = gen::synthetic_regression(100, 3, 1.0, 0.0, 156);
        let ws = workers(2);
        let fx = FederatedMatrix::scatter(&x, &ws).unwrap();
        let fy = FederatedMatrix::scatter(&y, &ws).unwrap();
        let mut free = FederatedParamServer::new(3, 0.3, 0.0);
        let mut reg = FederatedParamServer::new(3, 0.3, 1.0);
        free.train(&fx, &fy, 200, 1e-10).unwrap();
        reg.train(&fx, &fy, 200, 1e-10).unwrap();
        let norm = |m: &Matrix| {
            sysds_tensor::kernels::aggregate::aggregate_full(sysds_tensor::kernels::AggFn::SumSq, m)
                .unwrap()
        };
        assert!(norm(reg.weights()) < norm(free.weights()));
    }
}
