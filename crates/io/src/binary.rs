//! Binary blocked matrix format.
//!
//! The on-disk layout mirrors the distributed representation (paper §2.4):
//! a header followed by fixed-size, independently-encoded blocks keyed by
//! block indices. The same encoding backs buffer-pool spill files.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "SDSB" | version u32 | rows u64 | cols u64 | block_size u64 | nblocks u64
//! per block: brow u64 | bcol u64 | kind u8 (0 dense, 1 sparse) | payload
//!   dense payload:  r u64 | c u64 | r*c f64 values (row-major)
//!   sparse payload: r u64 | c u64 | nnz u64 | nnz * (row u64, col u64, value f64)
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fs;
use std::path::Path;
use sysds_common::{Result, SysDsError};
use sysds_tensor::kernels::indexing;
use sysds_tensor::{DenseMatrix, Matrix, SparseMatrix};

const MAGIC: &[u8; 4] = b"SDSB";
const VERSION: u32 = 1;

/// Encode one matrix block (any shape) into a byte buffer.
pub fn encode_block(m: &Matrix, buf: &mut BytesMut) {
    match m {
        Matrix::Dense(d) => {
            buf.put_u8(0);
            buf.put_u64_le(d.rows() as u64);
            buf.put_u64_le(d.cols() as u64);
            for &v in d.values() {
                buf.put_f64_le(v);
            }
        }
        Matrix::Sparse(s) => {
            buf.put_u8(1);
            buf.put_u64_le(s.rows() as u64);
            buf.put_u64_le(s.cols() as u64);
            buf.put_u64_le(s.nnz() as u64);
            for (i, j, v) in s.iter_nonzeros() {
                buf.put_u64_le(i as u64);
                buf.put_u64_le(j as u64);
                buf.put_f64_le(v);
            }
        }
    }
}

/// Decode one matrix block from a byte buffer.
pub fn decode_block(buf: &mut Bytes) -> Result<Matrix> {
    if buf.remaining() < 17 {
        return Err(SysDsError::Format("binary block truncated".into()));
    }
    let kind = buf.get_u8();
    let rows = buf.get_u64_le() as usize;
    let cols = buf.get_u64_le() as usize;
    match kind {
        0 => {
            if buf.remaining() < rows * cols * 8 {
                return Err(SysDsError::Format("dense block truncated".into()));
            }
            let mut data = Vec::with_capacity(rows * cols);
            for _ in 0..rows * cols {
                data.push(buf.get_f64_le());
            }
            Ok(Matrix::Dense(DenseMatrix::from_vec(rows, cols, data)))
        }
        1 => {
            if buf.remaining() < 8 {
                return Err(SysDsError::Format("sparse block truncated".into()));
            }
            let nnz = buf.get_u64_le() as usize;
            if buf.remaining() < nnz * 24 {
                return Err(SysDsError::Format("sparse block truncated".into()));
            }
            let mut triples = Vec::with_capacity(nnz);
            for _ in 0..nnz {
                let i = buf.get_u64_le() as usize;
                let j = buf.get_u64_le() as usize;
                let v = buf.get_f64_le();
                if i >= rows || j >= cols {
                    return Err(SysDsError::Format("sparse block index out of range".into()));
                }
                triples.push((i, j, v));
            }
            Ok(Matrix::Sparse(SparseMatrix::from_triples(
                rows, cols, triples,
            )))
        }
        other => Err(SysDsError::Format(format!("unknown block kind {other}"))),
    }
}

/// Write a matrix as a blocked binary file with `block_size` tiles.
pub fn write_matrix(path: impl AsRef<Path>, m: &Matrix, block_size: usize) -> Result<()> {
    let path = path.as_ref();
    let bs = block_size.max(1);
    let (rows, cols) = m.shape();
    let brows = rows.div_ceil(bs).max(1);
    let bcols = cols.div_ceil(bs).max(1);
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(rows as u64);
    buf.put_u64_le(cols as u64);
    buf.put_u64_le(bs as u64);
    let nblocks = if rows == 0 || cols == 0 {
        0
    } else {
        brows * bcols
    };
    buf.put_u64_le(nblocks as u64);
    if nblocks > 0 {
        for br in 0..brows {
            for bc in 0..bcols {
                let r0 = br * bs;
                let c0 = bc * bs;
                let block = indexing::slice(m, r0..(r0 + bs).min(rows), c0..(c0 + bs).min(cols))?;
                buf.put_u64_le(br as u64);
                buf.put_u64_le(bc as u64);
                encode_block(&block, &mut buf);
            }
        }
    }
    fs::write(path, &buf).map_err(|e| SysDsError::io(path.display().to_string(), e))
}

/// Read a blocked binary matrix file.
pub fn read_matrix(path: impl AsRef<Path>) -> Result<Matrix> {
    let path = path.as_ref();
    let data = fs::read(path).map_err(|e| SysDsError::io(path.display().to_string(), e))?;
    let mut buf = Bytes::from(data);
    if buf.remaining() < 4 + 4 + 32 || &buf.copy_to_bytes(4)[..] != MAGIC {
        return Err(SysDsError::Format(
            "not a SystemDS binary matrix file".into(),
        ));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(SysDsError::Format(format!(
            "unsupported binary version {version}"
        )));
    }
    let rows = buf.get_u64_le() as usize;
    let cols = buf.get_u64_le() as usize;
    let bs = buf.get_u64_le() as usize;
    let nblocks = buf.get_u64_le() as usize;
    let mut out = DenseMatrix::zeros(rows, cols);
    for _ in 0..nblocks {
        if buf.remaining() < 16 {
            return Err(SysDsError::Format("block header truncated".into()));
        }
        let br = buf.get_u64_le() as usize;
        let bc = buf.get_u64_le() as usize;
        let block = decode_block(&mut buf)?;
        let (r0, c0) = (br * bs, bc * bs);
        if r0 + block.rows() > rows || c0 + block.cols() > cols {
            return Err(SysDsError::Format("block exceeds matrix bounds".into()));
        }
        for i in 0..block.rows() {
            for j in 0..block.cols() {
                out.set(r0 + i, c0 + j, block.get(i, j));
            }
        }
    }
    Ok(Matrix::Dense(out).compact())
}

/// Encode a whole matrix into one buffer (used by buffer-pool spilling).
pub fn encode_matrix(m: &Matrix) -> Bytes {
    let mut buf = BytesMut::new();
    encode_block(m, &mut buf);
    buf.freeze()
}

/// Decode a whole matrix from one buffer.
pub fn decode_matrix(bytes: &[u8]) -> Result<Matrix> {
    let mut buf = Bytes::copy_from_slice(bytes);
    decode_block(&mut buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysds_tensor::kernels::gen;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = sysds_common::testing::unique_temp_dir("sysds-io-binary-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn dense_round_trip() {
        let m = gen::rand_uniform(100, 37, -10.0, 10.0, 1.0, 111);
        let p = tmp("dense.bin");
        write_matrix(&p, &m, 32).unwrap();
        let back = read_matrix(&p).unwrap();
        assert!(back.approx_eq(&m, 0.0));
    }

    #[test]
    fn sparse_round_trip() {
        let m = gen::rand_uniform(80, 80, -1.0, 1.0, 0.05, 112).compact();
        assert!(m.is_sparse());
        let p = tmp("sparse.bin");
        write_matrix(&p, &m, 25).unwrap();
        let back = read_matrix(&p).unwrap();
        assert!(back.approx_eq(&m, 0.0));
        assert!(back.is_sparse());
    }

    #[test]
    fn block_size_larger_than_matrix() {
        let m = gen::rand_uniform(5, 5, 0.0, 1.0, 1.0, 113);
        let p = tmp("big-block.bin");
        write_matrix(&p, &m, 1024).unwrap();
        assert!(read_matrix(&p).unwrap().approx_eq(&m, 0.0));
    }

    #[test]
    fn empty_matrix_round_trip() {
        let m = Matrix::zeros(0, 0);
        let p = tmp("empty.bin");
        write_matrix(&p, &m, 16).unwrap();
        let back = read_matrix(&p).unwrap();
        assert_eq!(back.shape(), (0, 0));
    }

    #[test]
    fn corrupted_file_rejected() {
        let p = tmp("corrupt.bin");
        std::fs::write(&p, b"garbage data here").unwrap();
        assert!(read_matrix(&p).is_err());
        std::fs::write(&p, b"SD").unwrap();
        assert!(read_matrix(&p).is_err());
    }

    #[test]
    fn single_buffer_encode_decode() {
        let m = gen::rand_uniform(20, 20, -1.0, 1.0, 0.1, 114).compact();
        let bytes = encode_matrix(&m);
        let back = decode_matrix(&bytes).unwrap();
        assert!(back.approx_eq(&m, 0.0));
    }

    #[test]
    fn truncated_block_rejected() {
        let m = gen::rand_uniform(10, 10, 0.0, 1.0, 1.0, 115);
        let bytes = encode_matrix(&m);
        assert!(decode_matrix(&bytes[..bytes.len() / 2]).is_err());
        assert!(decode_matrix(&[]).is_err());
    }
}
