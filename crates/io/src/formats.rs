//! Additional external formats: LibSVM and MatrixMarket (paper §3.2:
//! "the number of external data formats is virtually unlimited").
//!
//! Both are sparse text formats, parsed straight into CSR without a dense
//! detour:
//!
//! * **LibSVM**: `label idx:value idx:value ...` per row, 1-based feature
//!   indices; the labels come back as a separate vector (the natural
//!   shape for training).
//! * **MatrixMarket** coordinate format: a `%%MatrixMarket` banner,
//!   optional `%` comments, a `rows cols nnz` size line, then 1-based
//!   `row col value` triples (`pattern` entries default to 1.0).

use std::fs;
use std::io::Write as _;
use std::path::Path;
use sysds_common::{Result, SysDsError};
use sysds_tensor::{Matrix, SparseMatrix};

/// Read a LibSVM file: returns `(X, y)`. `num_features` fixes the column
/// count; pass `None` to infer it from the largest index seen.
pub fn read_libsvm(
    path: impl AsRef<Path>,
    num_features: Option<usize>,
) -> Result<(Matrix, Matrix)> {
    let path = path.as_ref();
    let text =
        fs::read_to_string(path).map_err(|e| SysDsError::io(path.display().to_string(), e))?;
    parse_libsvm(&text, num_features)
}

/// Parse LibSVM text (see [`read_libsvm`]).
pub fn parse_libsvm(text: &str, num_features: Option<usize>) -> Result<(Matrix, Matrix)> {
    let mut labels = Vec::new();
    let mut triples: Vec<(usize, usize, f64)> = Vec::new();
    let mut max_col = 0usize;
    for (row, line) in text.lines().filter(|l| !l.trim().is_empty()).enumerate() {
        let mut parts = line.split_whitespace();
        let label = parts
            .next()
            .ok_or_else(|| SysDsError::Format(format!("libsvm: empty line {}", row + 1)))?;
        labels.push(label.parse::<f64>().map_err(|_| {
            SysDsError::Format(format!("libsvm: bad label '{label}' on line {}", row + 1))
        })?);
        for feat in parts {
            if feat.starts_with('#') {
                break; // trailing comment
            }
            let (idx, value) = feat.split_once(':').ok_or_else(|| {
                SysDsError::Format(format!(
                    "libsvm: malformed feature '{feat}' on line {}",
                    row + 1
                ))
            })?;
            let idx: usize = idx.parse().map_err(|_| {
                SysDsError::Format(format!("libsvm: bad index '{idx}' on line {}", row + 1))
            })?;
            if idx == 0 {
                return Err(SysDsError::Format(format!(
                    "libsvm: indices are 1-based, got 0 on line {}",
                    row + 1
                )));
            }
            let value: f64 = value.parse().map_err(|_| {
                SysDsError::Format(format!("libsvm: bad value '{value}' on line {}", row + 1))
            })?;
            max_col = max_col.max(idx);
            triples.push((row, idx - 1, value));
        }
    }
    let rows = labels.len();
    let cols = match num_features {
        Some(n) => {
            if max_col > n {
                return Err(SysDsError::Format(format!(
                    "libsvm: feature index {max_col} exceeds declared {n}"
                )));
            }
            n
        }
        None => max_col,
    };
    let x = Matrix::Sparse(SparseMatrix::from_triples(rows, cols, triples)).compact();
    let y = Matrix::from_vec(rows, 1, labels)?;
    Ok((x, y))
}

/// Write `(X, y)` in LibSVM format.
pub fn write_libsvm(path: impl AsRef<Path>, x: &Matrix, y: &Matrix) -> Result<()> {
    let path = path.as_ref();
    if x.rows() != y.rows() || y.cols() != 1 {
        return Err(SysDsError::DimensionMismatch {
            op: "libsvm",
            lhs: x.shape(),
            rhs: y.shape(),
        });
    }
    let file = fs::File::create(path).map_err(|e| SysDsError::io(path.display().to_string(), e))?;
    let mut w = std::io::BufWriter::new(file);
    let io_err = |e| SysDsError::io(path.display().to_string(), e);
    let sparse = x.to_sparse();
    for i in 0..x.rows() {
        write!(w, "{}", y.get(i, 0)).map_err(io_err)?;
        let (cols, vals) = sparse.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            write!(w, " {}:{}", c + 1, v).map_err(io_err)?;
        }
        writeln!(w).map_err(io_err)?;
    }
    w.flush().map_err(io_err)
}

/// Read a MatrixMarket coordinate file into a matrix.
pub fn read_matrix_market(path: impl AsRef<Path>) -> Result<Matrix> {
    let path = path.as_ref();
    let text =
        fs::read_to_string(path).map_err(|e| SysDsError::io(path.display().to_string(), e))?;
    parse_matrix_market(&text)
}

/// Parse MatrixMarket coordinate text (see [`read_matrix_market`]).
pub fn parse_matrix_market(text: &str) -> Result<Matrix> {
    let mut lines = text.lines();
    let banner = lines
        .next()
        .ok_or_else(|| SysDsError::Format("matrixmarket: empty file".into()))?;
    if !banner.starts_with("%%MatrixMarket") {
        return Err(SysDsError::Format(
            "matrixmarket: missing %%MatrixMarket banner".into(),
        ));
    }
    let lower = banner.to_lowercase();
    if !lower.contains("matrix") || !lower.contains("coordinate") {
        return Err(SysDsError::Format(
            "matrixmarket: only 'matrix coordinate' files are supported".into(),
        ));
    }
    let pattern = lower.contains("pattern");
    let symmetric = lower.contains("symmetric");
    let mut data_lines = lines.filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('%'));
    let size = data_lines
        .next()
        .ok_or_else(|| SysDsError::Format("matrixmarket: missing size line".into()))?;
    let dims: Vec<usize> = size
        .split_whitespace()
        .map(|t| {
            t.parse()
                .map_err(|_| SysDsError::Format(format!("matrixmarket: bad size '{t}'")))
        })
        .collect::<Result<_>>()?;
    let [rows, cols, nnz] = dims.as_slice() else {
        return Err(SysDsError::Format(
            "matrixmarket: size line needs rows cols nnz".into(),
        ));
    };
    let mut triples = Vec::with_capacity(nnz * if symmetric { 2 } else { 1 });
    let mut count = 0usize;
    for line in data_lines {
        let mut t = line.split_whitespace();
        let (Some(r), Some(c)) = (t.next(), t.next()) else {
            return Err(SysDsError::Format(format!(
                "matrixmarket: malformed entry '{line}'"
            )));
        };
        let r: usize = r
            .parse()
            .map_err(|_| SysDsError::Format(format!("matrixmarket: bad row '{r}'")))?;
        let c: usize = c
            .parse()
            .map_err(|_| SysDsError::Format(format!("matrixmarket: bad col '{c}'")))?;
        if r == 0 || c == 0 || r > *rows || c > *cols {
            return Err(SysDsError::Format(format!(
                "matrixmarket: entry ({r},{c}) out of range"
            )));
        }
        let v: f64 = if pattern {
            1.0
        } else {
            let raw = t.next().ok_or_else(|| {
                SysDsError::Format(format!("matrixmarket: missing value in '{line}'"))
            })?;
            raw.parse()
                .map_err(|_| SysDsError::Format(format!("matrixmarket: bad value '{raw}'")))?
        };
        triples.push((r - 1, c - 1, v));
        if symmetric && r != c {
            triples.push((c - 1, r - 1, v));
        }
        count += 1;
    }
    if count != *nnz {
        return Err(SysDsError::Format(format!(
            "matrixmarket: size line declares {nnz} entries, found {count}"
        )));
    }
    Ok(Matrix::Sparse(SparseMatrix::from_triples(*rows, *cols, triples)).compact())
}

/// Write a matrix as MatrixMarket coordinate (general, real).
pub fn write_matrix_market(path: impl AsRef<Path>, m: &Matrix) -> Result<()> {
    let path = path.as_ref();
    let file = fs::File::create(path).map_err(|e| SysDsError::io(path.display().to_string(), e))?;
    let mut w = std::io::BufWriter::new(file);
    let io_err = |e| SysDsError::io(path.display().to_string(), e);
    writeln!(w, "%%MatrixMarket matrix coordinate real general").map_err(io_err)?;
    writeln!(w, "{} {} {}", m.rows(), m.cols(), m.nnz()).map_err(io_err)?;
    for (i, j, v) in m.iter_nonzeros() {
        writeln!(w, "{} {} {}", i + 1, j + 1, v).map_err(io_err)?;
    }
    w.flush().map_err(io_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysds_tensor::kernels::gen;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = sysds_common::testing::unique_temp_dir("sysds-formats-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn libsvm_round_trip() {
        let x = gen::rand_uniform(30, 10, -1.0, 1.0, 0.2, 1101).compact();
        let y = gen::rand_uniform(30, 1, 0.0, 1.0, 1.0, 1102);
        let p = tmp("rt.libsvm");
        write_libsvm(&p, &x, &y).unwrap();
        let (x2, y2) = read_libsvm(&p, Some(10)).unwrap();
        assert!(x2.approx_eq(&x, 1e-12));
        assert!(y2.approx_eq(&y, 1e-12));
    }

    #[test]
    fn libsvm_parses_reference_format() {
        let text = "+1 1:0.5 3:1.5\n-1 2:2.0 # comment\n3 \n";
        let (x, y) = parse_libsvm(text, None).unwrap();
        assert_eq!(x.shape(), (3, 3));
        assert_eq!(y.to_vec(), vec![1.0, -1.0, 3.0]);
        assert_eq!(x.get(0, 0), 0.5);
        assert_eq!(x.get(0, 2), 1.5);
        assert_eq!(x.get(1, 1), 2.0);
        assert_eq!(x.nnz(), 3);
    }

    #[test]
    fn libsvm_rejects_malformed() {
        assert!(parse_libsvm("notanumber 1:1\n", None).is_err());
        assert!(parse_libsvm("1 0:1\n", None).is_err(), "0 index is invalid");
        assert!(parse_libsvm("1 5:x\n", None).is_err());
        assert!(parse_libsvm("1 broken\n", None).is_err());
        assert!(
            parse_libsvm("1 9:1\n", Some(5)).is_err(),
            "index beyond declared width"
        );
    }

    #[test]
    fn matrix_market_round_trip() {
        let m = gen::rand_uniform(20, 15, -2.0, 2.0, 0.15, 1103).compact();
        let p = tmp("rt.mtx");
        write_matrix_market(&p, &m).unwrap();
        let back = read_matrix_market(&p).unwrap();
        assert!(back.approx_eq(&m, 1e-12));
    }

    #[test]
    fn matrix_market_parses_symmetric_and_pattern() {
        let sym =
            "%%MatrixMarket matrix coordinate real symmetric\n% comment\n3 3 2\n1 1 5.0\n3 1 2.0\n";
        let m = parse_matrix_market(sym).unwrap();
        assert_eq!(m.get(0, 0), 5.0);
        assert_eq!(m.get(2, 0), 2.0);
        assert_eq!(m.get(0, 2), 2.0, "mirrored");

        let pat = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n";
        let m = parse_matrix_market(pat).unwrap();
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn matrix_market_rejects_malformed() {
        assert!(parse_matrix_market("").is_err());
        assert!(parse_matrix_market("not a banner\n1 1 0\n").is_err());
        assert!(
            parse_matrix_market("%%MatrixMarket matrix array real general\n1 1\n1.0\n").is_err()
        );
        assert!(parse_matrix_market(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 5 1.0\n"
        )
        .is_err());
        assert!(
            parse_matrix_market("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n")
                .is_err(),
            "nnz mismatch"
        );
    }
}
