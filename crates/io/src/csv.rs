//! CSV readers and writers for matrices and frames.
//!
//! Matrix reads are multi-threaded: the in-memory byte buffer is split at
//! line boundaries into `threads` ranges parsed concurrently, because
//! string-to-double parsing dominates cold-start I/O (paper §4.2).

use crate::descriptor::FormatDescriptor;
use std::fs;
use std::io::Write;
use std::path::Path;
use sysds_common::{Result, SysDsError};
use sysds_frame::{Frame, FrameColumn};
use sysds_tensor::{DenseMatrix, Matrix};

/// Read a numeric CSV file into a [`Matrix`] using `threads` parser threads.
pub fn read_matrix(
    path: impl AsRef<Path>,
    desc: &FormatDescriptor,
    threads: usize,
) -> Result<Matrix> {
    let path = path.as_ref();
    let bytes = fs::read(path).map_err(|e| SysDsError::io(path.display().to_string(), e))?;
    parse_matrix(&bytes, desc, threads)
}

/// Parse CSV bytes into a matrix (exposed separately for generated readers
/// and tests).
pub fn parse_matrix(bytes: &[u8], desc: &FormatDescriptor, threads: usize) -> Result<Matrix> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| SysDsError::Format("csv file is not valid UTF-8".into()))?;
    // Collect line boundaries once; skip header if requested.
    let mut lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if desc.header && !lines.is_empty() {
        lines.remove(0);
    }
    let rows = lines.len();
    if rows == 0 {
        return Matrix::from_vec(0, 0, Vec::new());
    }
    let cols = split_fields(lines[0], desc.delimiter).count();
    let mut out = DenseMatrix::zeros(rows, cols);
    let parts = DenseMatrix::row_partitions(rows, threads);
    let lines = &lines;
    let mut rest = out.values_mut();
    let mut first_err: Option<SysDsError> = None;
    crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for &(lo, hi) in &parts {
            let (chunk, tail) = rest.split_at_mut((hi - lo) * cols);
            rest = tail;
            handles.push(s.spawn(move |_| -> Result<()> {
                for (r, line) in lines[lo..hi].iter().enumerate() {
                    let mut c = 0usize;
                    for field in split_fields(line, desc.delimiter) {
                        if c >= cols {
                            return Err(SysDsError::Format(format!(
                                "row {} has more than {cols} fields",
                                lo + r + 1
                            )));
                        }
                        chunk[r * cols + c] = parse_field(field, desc, lo + r, c)?;
                        c += 1;
                    }
                    if c != cols {
                        return Err(SysDsError::Format(format!(
                            "row {} has {c} fields, expected {cols}",
                            lo + r + 1
                        )));
                    }
                }
                Ok(())
            }));
        }
        for h in handles {
            if let Err(e) = h.join().expect("csv parser panicked") {
                first_err.get_or_insert(e);
            }
        }
    })
    .expect("csv scope failed");
    if let Some(e) = first_err {
        return Err(e);
    }
    Ok(Matrix::Dense(out).compact())
}

fn parse_field(field: &str, desc: &FormatDescriptor, row: usize, col: usize) -> Result<f64> {
    let t = field.trim().trim_matches(desc.quote);
    if t.is_empty() || desc.na_values.iter().any(|na| na == t) {
        return Ok(f64::NAN);
    }
    t.parse::<f64>().map_err(|_| {
        SysDsError::Format(format!(
            "cannot parse '{t}' as number at row {}, column {}",
            row + 1,
            col + 1
        ))
    })
}

fn split_fields(line: &str, delimiter: char) -> impl Iterator<Item = &str> {
    line.split(delimiter)
}

/// Write a matrix as CSV.
pub fn write_matrix(path: impl AsRef<Path>, m: &Matrix, desc: &FormatDescriptor) -> Result<()> {
    let path = path.as_ref();
    let file = fs::File::create(path).map_err(|e| SysDsError::io(path.display().to_string(), e))?;
    let mut w = std::io::BufWriter::new(file);
    let io_err = |e| SysDsError::io(path.display().to_string(), e);
    if desc.header {
        let names: Vec<String> = (1..=m.cols()).map(|j| format!("C{j}")).collect();
        writeln!(w, "{}", names.join(&desc.delimiter.to_string())).map_err(io_err)?;
    }
    let mut line = String::new();
    for i in 0..m.rows() {
        line.clear();
        for j in 0..m.cols() {
            if j > 0 {
                line.push(desc.delimiter);
            }
            let v = m.get(i, j);
            if v == v.trunc() && v.abs() < 1e15 {
                line.push_str(&format!("{}", v as i64));
            } else {
                line.push_str(&format!("{v}"));
            }
        }
        writeln!(w, "{line}").map_err(io_err)?;
    }
    w.flush().map_err(io_err)
}

/// Read a CSV file into a [`Frame`] (all columns start as strings; callers
/// apply [`Frame::detect_schema`]). A header row supplies column names.
pub fn read_frame(path: impl AsRef<Path>, desc: &FormatDescriptor) -> Result<Frame> {
    let path = path.as_ref();
    let text =
        fs::read_to_string(path).map_err(|e| SysDsError::io(path.display().to_string(), e))?;
    parse_frame(&text, desc)
}

/// Parse CSV text into a string-typed frame. Unlike the matrix parser,
/// rows are preserved exactly: a line of empty fields is a valid frame row
/// (only the trailing newline's empty segment is dropped).
pub fn parse_frame(text: &str, desc: &FormatDescriptor) -> Result<Frame> {
    let mut all: Vec<&str> = text
        .split('\n')
        .map(|l| l.strip_suffix('\r').unwrap_or(l))
        .collect();
    if all.last() == Some(&"") {
        all.pop();
    }
    let mut lines = all.into_iter();
    let (names, first_data): (Vec<String>, Option<&str>) = if desc.header {
        match lines.next() {
            Some(h) => (
                split_fields(h, desc.delimiter)
                    .map(|s| s.trim().trim_matches(desc.quote).to_string())
                    .collect(),
                None,
            ),
            None => return Ok(Frame::new()),
        }
    } else {
        match lines.next() {
            Some(first) => {
                let n = split_fields(first, desc.delimiter).count();
                ((1..=n).map(|j| format!("C{j}")).collect(), Some(first))
            }
            None => return Ok(Frame::new()),
        }
    };
    let cols = names.len();
    let mut data: Vec<Vec<String>> = vec![Vec::new(); cols];
    for line in first_data.into_iter().chain(lines) {
        let mut c = 0;
        for field in split_fields(line, desc.delimiter) {
            if c >= cols {
                return Err(SysDsError::Format(format!(
                    "frame row has more than {cols} fields"
                )));
            }
            data[c].push(field.trim().trim_matches(desc.quote).to_string());
            c += 1;
        }
        while c < cols {
            data[c].push(String::new());
            c += 1;
        }
    }
    let mut f = Frame::new();
    for (name, col) in names.into_iter().zip(data) {
        f.push_column(name, FrameColumn::Str(col))?;
    }
    Ok(f)
}

/// Write a frame as CSV with a header row.
pub fn write_frame(path: impl AsRef<Path>, frame: &Frame, desc: &FormatDescriptor) -> Result<()> {
    let path = path.as_ref();
    let file = fs::File::create(path).map_err(|e| SysDsError::io(path.display().to_string(), e))?;
    let mut w = std::io::BufWriter::new(file);
    let io_err = |e| SysDsError::io(path.display().to_string(), e);
    let sep = desc.delimiter.to_string();
    writeln!(w, "{}", frame.names().join(&sep)).map_err(io_err)?;
    let cols: Vec<Vec<String>> = (0..frame.cols())
        .map(|j| frame.column(j).unwrap().as_strings())
        .collect();
    for i in 0..frame.rows() {
        let row: Vec<&str> = cols.iter().map(|c| c[i].as_str()).collect();
        writeln!(w, "{}", row.join(&sep)).map_err(io_err)?;
    }
    w.flush().map_err(io_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysds_tensor::kernels::gen;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = sysds_common::testing::unique_temp_dir("sysds-io-csv-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn matrix_round_trip() {
        let m = gen::rand_uniform(50, 7, -5.0, 5.0, 1.0, 101);
        let p = tmp("round.csv");
        let desc = FormatDescriptor::csv();
        write_matrix(&p, &m, &desc).unwrap();
        let back = read_matrix(&p, &desc, 4).unwrap();
        assert!(back.approx_eq(&m, 1e-12));
    }

    #[test]
    fn parallel_parse_equals_serial() {
        let m = gen::rand_uniform(199, 5, 0.0, 1.0, 1.0, 102);
        let p = tmp("par.csv");
        let desc = FormatDescriptor::csv();
        write_matrix(&p, &m, &desc).unwrap();
        let a = read_matrix(&p, &desc, 1).unwrap();
        let b = read_matrix(&p, &desc, 8).unwrap();
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn header_skipped() {
        let text = "a,b\n1,2\n3,4\n";
        let m = parse_matrix(
            text.as_bytes(),
            &FormatDescriptor::csv().with_header(true),
            2,
        )
        .unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    fn na_values_become_nan() {
        let text = "1,NA\n,2\n";
        let m = parse_matrix(text.as_bytes(), &FormatDescriptor::csv(), 1).unwrap();
        assert!(m.get(0, 1).is_nan());
        assert!(m.get(1, 0).is_nan());
        assert_eq!(m.get(1, 1), 2.0);
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(parse_matrix(b"1,2\n3\n", &FormatDescriptor::csv(), 1).is_err());
        assert!(parse_matrix(b"1,2\n3,4,5\n", &FormatDescriptor::csv(), 2).is_err());
    }

    #[test]
    fn bad_number_reported_with_position() {
        let err = parse_matrix(b"1,2\n3,oops\n", &FormatDescriptor::csv(), 1).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("oops") && msg.contains("row 2"), "{msg}");
    }

    #[test]
    fn custom_delimiter_and_quotes() {
        let text = "\"1.5\";\"2.5\"\n3;4\n";
        let desc = FormatDescriptor::csv().with_delimiter(';');
        let m = parse_matrix(text.as_bytes(), &desc, 1).unwrap();
        assert_eq!(m.get(0, 0), 1.5);
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    fn empty_file_is_zero_matrix() {
        let m = parse_matrix(b"", &FormatDescriptor::csv(), 2).unwrap();
        assert_eq!(m.shape(), (0, 0));
    }

    #[test]
    fn frame_round_trip_with_header() {
        let f = Frame::from_columns(vec![
            ("id".into(), FrameColumn::I64(vec![1, 2])),
            (
                "name".into(),
                FrameColumn::Str(vec!["anna".into(), "bob".into()]),
            ),
        ])
        .unwrap();
        let p = tmp("frame.csv");
        let desc = FormatDescriptor::csv().with_header(true);
        write_frame(&p, &f, &desc).unwrap();
        let back = read_frame(&p, &desc).unwrap().detect_schema();
        assert_eq!(back.names(), f.names());
        assert_eq!(back.get(1, 1).unwrap().to_display_string(), "bob");
        assert_eq!(back.get(0, 0).unwrap().as_i64().unwrap(), 1);
    }

    #[test]
    fn frame_without_header_gets_default_names() {
        let f = parse_frame("1,x\n2,y\n", &FormatDescriptor::csv()).unwrap();
        assert_eq!(f.names(), &["C1".to_string(), "C2".to_string()]);
        assert_eq!(f.rows(), 2);
    }

    #[test]
    fn frame_short_rows_padded() {
        let f = parse_frame("a,b\n1,2\n3\n", &FormatDescriptor::csv().with_header(true)).unwrap();
        assert_eq!(f.rows(), 2);
        assert_eq!(f.get(1, 1).unwrap().to_display_string(), "");
    }
}
