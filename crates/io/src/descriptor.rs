//! Format descriptors and generated readers (paper §3.2).
//!
//! SystemDS aims "to automatically generate code for efficient readers and
//! writers from high-level descriptions of data formats". We model the
//! high-level description as a [`FormatDescriptor`] parsed from a compact
//! spec string, and "generation" as specializing the parse pipeline to the
//! descriptor up front (delimiter, header, NA tokens, projected columns)
//! instead of re-interpreting options per cell.

use sysds_common::{Result, SysDsError};

/// A high-level description of an external text format.
#[derive(Debug, Clone, PartialEq)]
pub struct FormatDescriptor {
    /// Field delimiter.
    pub delimiter: char,
    /// Whether the first row is a header.
    pub header: bool,
    /// Quote character stripped from field ends.
    pub quote: char,
    /// Tokens treated as missing values.
    pub na_values: Vec<String>,
    /// Optional column projection (0-based indices) applied by generated
    /// readers; `None` keeps all columns.
    pub project: Option<Vec<usize>>,
}

impl FormatDescriptor {
    /// Standard comma-separated values, no header.
    pub fn csv() -> FormatDescriptor {
        FormatDescriptor {
            delimiter: ',',
            header: false,
            quote: '"',
            na_values: vec!["NA".into(), "NaN".into()],
            project: None,
        }
    }

    /// Tab-separated values.
    pub fn tsv() -> FormatDescriptor {
        FormatDescriptor {
            delimiter: '\t',
            ..FormatDescriptor::csv()
        }
    }

    /// Builder-style delimiter override.
    pub fn with_delimiter(mut self, d: char) -> Self {
        self.delimiter = d;
        self
    }

    /// Builder-style header flag.
    pub fn with_header(mut self, h: bool) -> Self {
        self.header = h;
        self
    }

    /// Builder-style column projection.
    pub fn with_projection(mut self, cols: Vec<usize>) -> Self {
        self.project = Some(cols);
        self
    }

    /// Parse a compact spec string like
    /// `"csv delim=; header=true na=NA,null project=0,2,5"`.
    pub fn parse(spec: &str) -> Result<FormatDescriptor> {
        let mut parts = spec.split_whitespace();
        let base = match parts.next() {
            Some("csv") | None => FormatDescriptor::csv(),
            Some("tsv") => FormatDescriptor::tsv(),
            Some(other) => {
                return Err(SysDsError::Format(format!("unknown base format '{other}'")))
            }
        };
        let mut out = base;
        for part in parts {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| SysDsError::Format(format!("malformed format option '{part}'")))?;
            match key {
                "delim" => {
                    let mut chars = value.chars();
                    out.delimiter = chars
                        .next()
                        .ok_or_else(|| SysDsError::Format("empty delimiter".into()))?;
                    if chars.next().is_some() {
                        return Err(SysDsError::Format("delimiter must be one character".into()));
                    }
                }
                "header" => {
                    out.header = match value {
                        "true" => true,
                        "false" => false,
                        _ => return Err(SysDsError::Format("header must be true/false".into())),
                    }
                }
                "quote" => {
                    out.quote = value
                        .chars()
                        .next()
                        .ok_or_else(|| SysDsError::Format("empty quote".into()))?;
                }
                "na" => {
                    out.na_values = value.split(',').map(str::to_string).collect();
                }
                "project" => {
                    let mut cols = Vec::new();
                    for c in value.split(',') {
                        cols.push(c.parse::<usize>().map_err(|_| {
                            SysDsError::Format(format!("bad projection index '{c}'"))
                        })?);
                    }
                    out.project = Some(cols);
                }
                other => {
                    return Err(SysDsError::Format(format!(
                        "unknown format option '{other}'"
                    )))
                }
            }
        }
        Ok(out)
    }
}

/// A "generated" reader: the descriptor is resolved once into a concrete
/// parse plan; invoking it parses bytes with no per-cell option checks.
pub struct GeneratedReader {
    desc: FormatDescriptor,
}

impl GeneratedReader {
    /// Specialize a reader for a descriptor.
    pub fn generate(desc: FormatDescriptor) -> GeneratedReader {
        GeneratedReader { desc }
    }

    /// Parse bytes into a matrix, applying the descriptor's projection.
    pub fn read_matrix(&self, bytes: &[u8], threads: usize) -> Result<sysds_tensor::Matrix> {
        let full = crate::csv::parse_matrix(bytes, &self.desc, threads)?;
        match &self.desc.project {
            None => Ok(full),
            Some(cols) => {
                for &c in cols {
                    if c >= full.cols() {
                        return Err(SysDsError::IndexOutOfBounds {
                            msg: format!("projected column {c} of {}", full.cols()),
                        });
                    }
                }
                let mut out = sysds_tensor::DenseMatrix::zeros(full.rows(), cols.len());
                for i in 0..full.rows() {
                    for (dst, &src) in cols.iter().enumerate() {
                        out.set(i, dst, full.get(i, src));
                    }
                }
                Ok(sysds_tensor::Matrix::Dense(out).compact())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let d = FormatDescriptor::parse("csv delim=; header=true na=NA,null project=0,2").unwrap();
        assert_eq!(d.delimiter, ';');
        assert!(d.header);
        assert_eq!(d.na_values, vec!["NA".to_string(), "null".to_string()]);
        assert_eq!(d.project, Some(vec![0, 2]));
    }

    #[test]
    fn parse_tsv_base() {
        let d = FormatDescriptor::parse("tsv").unwrap();
        assert_eq!(d.delimiter, '\t');
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(FormatDescriptor::parse("xml").is_err());
        assert!(FormatDescriptor::parse("csv nonsense").is_err());
        assert!(FormatDescriptor::parse("csv header=maybe").is_err());
        assert!(FormatDescriptor::parse("csv delim=ab").is_err());
        assert!(FormatDescriptor::parse("csv project=x").is_err());
        assert!(FormatDescriptor::parse("csv foo=1").is_err());
    }

    #[test]
    fn generated_reader_projects_columns() {
        let desc = FormatDescriptor::parse("csv project=2,0").unwrap();
        let r = GeneratedReader::generate(desc);
        let m = r.read_matrix(b"1,2,3\n4,5,6\n", 1).unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 6.0);
    }

    #[test]
    fn generated_reader_validates_projection() {
        let desc = FormatDescriptor::csv().with_projection(vec![9]);
        let r = GeneratedReader::generate(desc);
        assert!(r.read_matrix(b"1,2\n", 1).is_err());
    }

    #[test]
    fn generated_reader_without_projection_passthrough() {
        let r = GeneratedReader::generate(FormatDescriptor::csv());
        let m = r.read_matrix(b"1,2\n3,4\n", 2).unwrap();
        assert_eq!(m.shape(), (2, 2));
    }
}
