//! I/O: CSV (multi-threaded parse), binary blocked format, metadata files,
//! and format descriptors with generated readers (paper §2.3, §3.2).
//!
//! The paper's Figure 5(a) observes that "multi-threaded I/O in SysDS yields
//! better performance than TF or Julia for a single model because
//! string-to-double parsing is compute-intensive" — [`csv::read_matrix`]
//! reproduces exactly that: the file is split into line ranges parsed in
//! parallel.

pub mod binary;
pub mod csv;
pub mod descriptor;
pub mod formats;
pub mod mtd;

pub use descriptor::FormatDescriptor;
pub use mtd::Metadata;
