//! `.mtd` metadata files.
//!
//! SystemDS stores dimensions, sparsity, and format next to each persisted
//! dataset so the compiler can propagate sizes without reading the data
//! (paper §2.3: size propagation needs dims and sparsity up front). We write
//! a minimal JSON object with a hand-rolled serializer/parser (flat schema,
//! no nesting — no serde needed).

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use sysds_common::{Result, SysDsError};

/// Dataset metadata persisted beside the data file.
#[derive(Debug, Clone, PartialEq)]
pub struct Metadata {
    pub rows: usize,
    pub cols: usize,
    pub nnz: Option<usize>,
    /// `"csv"`, `"binary"`, or `"frame-csv"`.
    pub format: String,
    pub header: bool,
}

impl Metadata {
    /// Metadata for a matrix.
    pub fn matrix(rows: usize, cols: usize, nnz: usize, format: &str) -> Metadata {
        Metadata {
            rows,
            cols,
            nnz: Some(nnz),
            format: format.into(),
            header: false,
        }
    }

    /// The sparsity implied by `nnz` (1.0 if unknown).
    pub fn sparsity(&self) -> f64 {
        match self.nnz {
            Some(nnz) if self.rows * self.cols > 0 => nnz as f64 / (self.rows * self.cols) as f64,
            _ => 1.0,
        }
    }

    /// The conventional sidecar path: `<data>.mtd`.
    pub fn sidecar_path(data_path: impl AsRef<Path>) -> PathBuf {
        let mut p = data_path.as_ref().as_os_str().to_owned();
        p.push(".mtd");
        PathBuf::from(p)
    }

    /// Serialize as a one-line JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        write!(s, "\"rows\": {}, \"cols\": {}", self.rows, self.cols).unwrap();
        if let Some(nnz) = self.nnz {
            write!(s, ", \"nnz\": {nnz}").unwrap();
        }
        write!(
            s,
            ", \"format\": \"{}\", \"header\": {}",
            self.format, self.header
        )
        .unwrap();
        s.push('}');
        s
    }

    /// Parse the JSON produced by [`Metadata::to_json`] (tolerant of key
    /// order and whitespace; flat string/number/bool values only).
    pub fn from_json(text: &str) -> Result<Metadata> {
        let inner = text
            .trim()
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| SysDsError::Format("mtd: expected a JSON object".into()))?;
        let mut rows = None;
        let mut cols = None;
        let mut nnz = None;
        let mut format = None;
        let mut header = false;
        for pair in split_top_level(inner) {
            let (k, v) = pair
                .split_once(':')
                .ok_or_else(|| SysDsError::Format(format!("mtd: malformed pair '{pair}'")))?;
            let key = k.trim().trim_matches('"');
            let value = v.trim();
            match key {
                "rows" => rows = Some(parse_usize(value)?),
                "cols" => cols = Some(parse_usize(value)?),
                "nnz" => nnz = Some(parse_usize(value)?),
                "format" => format = Some(value.trim_matches('"').to_string()),
                "header" => header = value == "true",
                _ => {} // forward compatible: ignore unknown keys
            }
        }
        Ok(Metadata {
            rows: rows.ok_or_else(|| SysDsError::Format("mtd: missing rows".into()))?,
            cols: cols.ok_or_else(|| SysDsError::Format("mtd: missing cols".into()))?,
            nnz,
            format: format.unwrap_or_else(|| "csv".into()),
            header,
        })
    }

    /// Write the sidecar file for `data_path`.
    pub fn save(&self, data_path: impl AsRef<Path>) -> Result<()> {
        let p = Self::sidecar_path(data_path);
        fs::write(&p, self.to_json()).map_err(|e| SysDsError::io(p.display().to_string(), e))
    }

    /// Load the sidecar file for `data_path`, or `None` if absent.
    pub fn load(data_path: impl AsRef<Path>) -> Result<Option<Metadata>> {
        let p = Self::sidecar_path(data_path);
        match fs::read_to_string(&p) {
            Ok(text) => Ok(Some(Metadata::from_json(&text)?)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(SysDsError::io(p.display().to_string(), e)),
        }
    }
}

fn parse_usize(v: &str) -> Result<usize> {
    v.parse()
        .map_err(|_| SysDsError::Format(format!("mtd: expected integer, got '{v}'")))
}

/// Split `a: 1, b: "x,y"` at top-level commas (commas inside quotes kept).
fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth_quote = false;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '"' => depth_quote = !depth_quote,
            ',' if !depth_quote => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < s.len() {
        out.push(&s[start..]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let m = Metadata::matrix(100, 10, 250, "csv");
        let back = Metadata::from_json(&m.to_json()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn sparsity_from_nnz() {
        let m = Metadata::matrix(10, 10, 25, "csv");
        assert!((m.sparsity() - 0.25).abs() < 1e-12);
        let unknown = Metadata { nnz: None, ..m };
        assert_eq!(unknown.sparsity(), 1.0);
    }

    #[test]
    fn parses_reordered_keys_and_unknowns() {
        let m = Metadata::from_json(
            r#"{ "format": "binary", "cols": 3, "rows": 2, "future_key": 7, "header": true }"#,
        )
        .unwrap();
        assert_eq!(m.rows, 2);
        assert_eq!(m.cols, 3);
        assert_eq!(m.format, "binary");
        assert!(m.header);
        assert_eq!(m.nnz, None);
    }

    #[test]
    fn rejects_malformed() {
        assert!(Metadata::from_json("not json").is_err());
        assert!(Metadata::from_json(r#"{"rows": 2}"#).is_err());
        assert!(Metadata::from_json(r#"{"rows": "x", "cols": 1}"#).is_err());
    }

    #[test]
    fn sidecar_save_load() {
        let dir = sysds_common::testing::unique_temp_dir("sysds-io-mtd-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join(format!("data-{}.csv", std::process::id()));
        std::fs::write(&data, "1,2\n").unwrap();
        let m = Metadata::matrix(1, 2, 2, "csv");
        m.save(&data).unwrap();
        assert_eq!(Metadata::load(&data).unwrap(), Some(m));
        let missing = dir.join("nonexistent.csv");
        assert_eq!(Metadata::load(missing).unwrap(), None);
    }
}
