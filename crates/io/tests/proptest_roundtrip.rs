//! Property tests: every matrix survives CSV and binary round trips, for
//! arbitrary shapes, sparsity, and parser thread counts.

use proptest::prelude::*;
use sysds_io::FormatDescriptor;
use sysds_tensor::kernels::gen;
use sysds_tensor::Matrix;

fn tmpfile(tag: &str, case: u64) -> std::path::PathBuf {
    let dir = sysds_common::testing::unique_temp_dir("sysds-io-proptests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}-{}-{case}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn csv_round_trip(
        rows in 1usize..60,
        cols in 1usize..20,
        sparsity in prop_oneof![Just(1.0f64), Just(0.3), Just(0.05)],
        threads in 1usize..8,
        seed in any::<u64>(),
    ) {
        let m = gen::rand_uniform(rows, cols, -1e6, 1e6, sparsity, seed).compact();
        let p = tmpfile("csv", seed);
        let desc = FormatDescriptor::csv();
        sysds_io::csv::write_matrix(&p, &m, &desc).unwrap();
        let back = sysds_io::csv::read_matrix(&p, &desc, threads).unwrap();
        std::fs::remove_file(&p).ok();
        prop_assert!(back.approx_eq(&m, 1e-9));
    }

    #[test]
    fn binary_round_trip(
        rows in 1usize..80,
        cols in 1usize..30,
        block in 1usize..40,
        sparsity in prop_oneof![Just(1.0f64), Just(0.1)],
        seed in any::<u64>(),
    ) {
        let m = gen::rand_uniform(rows, cols, -1.0, 1.0, sparsity, seed).compact();
        let p = tmpfile("bin", seed);
        sysds_io::binary::write_matrix(&p, &m, block).unwrap();
        let back = sysds_io::binary::read_matrix(&p).unwrap();
        std::fs::remove_file(&p).ok();
        // binary is exact
        prop_assert!(back.approx_eq(&m, 0.0));
    }

    #[test]
    fn block_encode_decode_exact(
        rows in 1usize..50,
        cols in 1usize..50,
        sparsity in prop_oneof![Just(1.0f64), Just(0.08)],
        seed in any::<u64>(),
    ) {
        let m = gen::rand_uniform(rows, cols, -1.0, 1.0, sparsity, seed).compact();
        let bytes = sysds_io::binary::encode_matrix(&m);
        let back = sysds_io::binary::decode_matrix(&bytes).unwrap();
        prop_assert!(back.approx_eq(&m, 0.0));
        prop_assert_eq!(back.is_sparse(), m.is_sparse());
    }

    #[test]
    fn metadata_round_trip(rows in 0usize..1_000_000, cols in 0usize..10_000, nnz in 0usize..100_000) {
        let m = sysds_io::Metadata::matrix(rows, cols, nnz, "csv");
        let back = sysds_io::Metadata::from_json(&m.to_json()).unwrap();
        prop_assert_eq!(m, back);
    }

    #[test]
    fn frame_csv_round_trip_strings(
        cells in proptest::collection::vec("[a-zA-Z0-9_.]{0,12}", 1..40),
        cols in 1usize..4,
    ) {
        // pad to a rectangle
        let rows = cells.len().div_ceil(cols);
        let mut padded = cells.clone();
        padded.resize(rows * cols, String::new());
        let mut frame = sysds_frame::Frame::new();
        for j in 0..cols {
            let col: Vec<String> = (0..rows).map(|i| padded[i * cols + j].clone()).collect();
            frame.push_column(format!("c{j}"), sysds_frame::FrameColumn::Str(col)).unwrap();
        }
        let p = tmpfile("frame", cells.len() as u64 * 31 + cols as u64);
        let desc = FormatDescriptor::csv().with_header(true);
        sysds_io::csv::write_frame(&p, &frame, &desc).unwrap();
        let back = sysds_io::csv::read_frame(&p, &desc).unwrap();
        std::fs::remove_file(&p).ok();
        prop_assert_eq!(back.rows(), frame.rows());
        prop_assert_eq!(back.cols(), frame.cols());
        for i in 0..rows {
            for j in 0..cols {
                prop_assert_eq!(
                    back.get(i, j).unwrap().to_display_string(),
                    frame.get(i, j).unwrap().to_display_string()
                );
            }
        }
    }

    #[test]
    fn compressed_matrix_round_trip(
        rows in 1usize..120,
        cols in 1usize..8,
        levels in 1usize..12,
        seed in any::<u64>(),
    ) {
        // quantized data → mixture of DDC and RLE encodings
        let raw = gen::rand_uniform(rows, cols, 0.0, levels as f64, 1.0, seed);
        let d = raw.to_dense();
        let data: Vec<f64> = d.values().iter().map(|v| v.floor()).collect();
        let m = Matrix::from_vec(rows, cols, data).unwrap();
        let c = sysds_tensor::CompressedMatrix::compress(&m);
        prop_assert!(c.decompress().approx_eq(&m, 0.0));
        // compressed ops agree with dense ops
        let v = gen::rand_uniform(cols, 1, -1.0, 1.0, 1.0, seed ^ 7);
        let got = c.mat_vec(&v).unwrap();
        let expect = sysds_tensor::kernels::matmult::matmul(&m, &v, 1, false).unwrap();
        prop_assert!(got.approx_eq(&expect, 1e-9));
    }
}
