//! Property tests for buffer-pool evict/restore round-trips.
//!
//! The pool's contract: no matter how small the budget, how often handles
//! are evicted and restored, what representation (dense/sparse) a matrix
//! uses, or how many threads acquire concurrently, `acquire()` always
//! returns bit-identical data to what was registered. Spill files are
//! binary-block encoded, so round-trips are exact — comparisons use zero
//! tolerance.

use proptest::prelude::*;
use std::sync::Arc;
use sysds::runtime::bufferpool::BufferPool;
use sysds_common::testing::unique_temp_dir;
use sysds_tensor::kernels::gen::rand_uniform;
use sysds_tensor::Matrix;

fn pool(limit: usize) -> BufferPool {
    BufferPool::new(limit, unique_temp_dir("sysds-pool-proptests")).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dense matrices survive registration under a budget small enough to
    /// evict everything.
    #[test]
    fn dense_round_trip_under_tiny_budget(
        rows in 1usize..24,
        cols in 1usize..24,
        seed in 0u64..1_000,
    ) {
        let p = pool(256); // a few dozen cells at most stay cached
        let originals: Vec<Matrix> = (0..4)
            .map(|i| rand_uniform(rows, cols, -1.0, 1.0, 1.0, seed + i))
            .collect();
        let handles: Vec<_> = originals
            .iter()
            .map(|m| p.register(m.clone()).unwrap())
            .collect();
        for (h, m) in handles.iter().zip(&originals) {
            prop_assert!(h.acquire().unwrap().approx_eq(m, 0.0));
            prop_assert_eq!(h.shape(), Some((rows, cols)));
        }
    }

    /// Sparse matrices round-trip through the same spill path.
    #[test]
    fn sparse_round_trip_under_tiny_budget(
        rows in 1usize..32,
        cols in 1usize..32,
        sparsity in 0.05f64..0.4,
        seed in 0u64..1_000,
    ) {
        let p = pool(128);
        let a = rand_uniform(rows, cols, -1.0, 1.0, sparsity, seed);
        let b = rand_uniform(rows, cols, -1.0, 1.0, sparsity, seed + 7);
        let ha = p.register(a.clone()).unwrap();
        let hb = p.register(b.clone()).unwrap();
        prop_assert!(ha.acquire().unwrap().approx_eq(&a, 0.0));
        prop_assert!(hb.acquire().unwrap().approx_eq(&b, 0.0));
        prop_assert_eq!(ha.acquire().unwrap().is_sparse(), a.is_sparse());
    }

    /// Arbitrary acquire sequences force repeated evict/restore cycles;
    /// every single acquire must return the registered data.
    #[test]
    fn repeated_eviction_is_lossless(
        accesses in proptest::collection::vec(0usize..6, 1..40),
        seed in 0u64..1_000,
    ) {
        // Budget fits roughly one matrix: almost every acquire restores
        // from disk and evicts someone else.
        let p = pool(6 * 6 * 8 + 32);
        let originals: Vec<Matrix> = (0..6)
            .map(|i| rand_uniform(6, 6, -1.0, 1.0, 1.0, seed + i))
            .collect();
        let handles: Vec<_> = originals
            .iter()
            .map(|m| p.register(m.clone()).unwrap())
            .collect();
        for &i in &accesses {
            prop_assert!(handles[i].acquire().unwrap().approx_eq(&originals[i], 0.0));
        }
    }

    /// Concurrent acquire from multiple threads against an evicting pool:
    /// no torn restores, no lost data, no deadlocks.
    #[test]
    fn concurrent_acquire_is_consistent(
        threads in 2usize..5,
        rounds in 1usize..12,
        seed in 0u64..500,
    ) {
        let p = Arc::new(pool(512));
        let originals: Arc<Vec<Matrix>> = Arc::new(
            (0..5)
                .map(|i| rand_uniform(8, 8, -1.0, 1.0, 1.0, seed + i))
                .collect(),
        );
        let handles: Arc<Vec<_>> = Arc::new(
            originals
                .iter()
                .map(|m| p.register(m.clone()).unwrap())
                .collect(),
        );
        let workers: Vec<_> = (0..threads)
            .map(|t| {
                let originals = Arc::clone(&originals);
                let handles = Arc::clone(&handles);
                std::thread::spawn(move || {
                    for r in 0..rounds {
                        // Each thread walks the handles in a different
                        // rotation so acquires interleave with evictions.
                        let i = (t + r) % handles.len();
                        let got = handles[i].acquire().unwrap();
                        assert!(
                            got.approx_eq(&originals[i], 0.0),
                            "thread {t} round {r}: handle {i} corrupted"
                        );
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker thread panicked");
        }
        // The pool still enforces its limit after the storm.
        prop_assert!(p.live_handles() >= 5);
    }
}
