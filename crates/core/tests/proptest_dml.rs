#![allow(clippy::field_reassign_with_default)]

//! Property tests for the DML engine: randomly generated programs are
//! evaluated by the full parse → compile → optimize → execute stack and
//! checked against a direct reference evaluation. This exercises constant
//! folding, CSE, and instruction execution on arbitrary expression shapes.

use proptest::prelude::*;
use sysds::api::SystemDS;
use sysds_common::EngineConfig;

fn session() -> SystemDS {
    let mut config = EngineConfig::default();
    config.spill_dir = sysds_common::testing::unique_temp_dir("sysds-dml-proptests");
    SystemDS::with_config(config).unwrap()
}

/// A random arithmetic expression together with its reference value.
/// Values stay in f64-exact integer territory so comparisons are exact.
#[derive(Debug, Clone)]
struct GenExpr {
    text: String,
    value: f64,
}

fn leaf() -> impl Strategy<Value = GenExpr> {
    (-50i64..50).prop_map(|v| GenExpr {
        text: format!("{v}"),
        value: v as f64,
    })
}

fn expr() -> impl Strategy<Value = GenExpr> {
    leaf().prop_recursive(4, 64, 3, |inner| {
        (inner.clone(), inner, 0u8..5).prop_map(|(a, b, op)| match op {
            0 => GenExpr {
                text: format!("({} + {})", a.text, b.text),
                value: a.value + b.value,
            },
            1 => GenExpr {
                text: format!("({} - {})", a.text, b.text),
                value: a.value - b.value,
            },
            2 => GenExpr {
                text: format!("({} * {})", a.text, b.text),
                value: a.value * b.value,
            },
            3 => GenExpr {
                text: format!("min({}, {})", a.text, b.text),
                value: a.value.min(b.value),
            },
            _ => GenExpr {
                text: format!("max({}, {})", a.text, b.text),
                value: a.value.max(b.value),
            },
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_arithmetic_matches_reference(e in expr()) {
        let mut s = session();
        let out = s.execute(&format!("x = {}", e.text), &[], &["x"]).unwrap();
        prop_assert_eq!(out.f64("x").unwrap(), e.value, "expr {}", e.text);
    }

    #[test]
    fn loop_accumulation_matches_closed_form(n in 1i64..40, step in 1i64..5) {
        let mut s = session();
        let script = format!(
            "acc = 0\nfor (i in seq(1, {n}, {step})) {{ acc = acc + i }}"
        );
        let out = s.execute(&script, &[], &["acc"]).unwrap();
        let expect: i64 = (1..=n).step_by(step as usize).sum();
        prop_assert_eq!(out.f64("acc").unwrap(), expect as f64);
    }

    #[test]
    fn branching_matches_reference(a in -20i64..20, b in -20i64..20) {
        let mut s = session();
        let script = format!(
            "if ({a} > {b}) {{ r = {a} - {b} }} else {{ r = {b} - {a} }}"
        );
        let out = s.execute(&script, &[], &["r"]).unwrap();
        prop_assert_eq!(out.f64("r").unwrap(), (a - b).abs() as f64);
    }

    #[test]
    fn matrix_scalar_pipeline_matches(rows in 1usize..12, cols in 1usize..8, s1 in -5i64..5) {
        let mut sess = session();
        let script = format!(
            r#"
            X = matrix({s1}, rows={rows}, cols={cols})
            Y = (X + 1) * 2
            total = sum(Y)
            "#
        );
        let out = sess.execute(&script, &[], &["total"]).unwrap();
        let expect = ((s1 + 1) * 2) as f64 * (rows * cols) as f64;
        prop_assert_eq!(out.f64("total").unwrap(), expect);
    }

    #[test]
    fn parfor_and_for_agree(n in 1usize..12) {
        let mut s = session();
        let script = format!(
            r#"
            A = matrix(0, rows=1, cols={n})
            B = matrix(0, rows=1, cols={n})
            for (i in 1:{n}) {{ A[1, i] = i * i }}
            parfor (i in 1:{n}) {{ B[1, i] = i * i }}
            d = sum((A - B) * (A - B))
            "#
        );
        let out = s.execute(&script, &[], &["d"]).unwrap();
        prop_assert_eq!(out.f64("d").unwrap(), 0.0);
    }

    #[test]
    fn cse_never_changes_results(a in -10i64..10, b in 1i64..10) {
        // The same subexpression appears three times; CSE must not alter
        // the value.
        let mut s = session();
        let script = format!(
            "x = ({a} * {b} + 1) + ({a} * {b} + 1) + ({a} * {b} + 1)"
        );
        let out = s.execute(&script, &[], &["x"]).unwrap();
        prop_assert_eq!(out.f64("x").unwrap(), 3.0 * (a * b + 1) as f64);
    }

    #[test]
    fn while_loop_terminates_correctly(target in 1i64..1000) {
        let mut s = session();
        let script = format!(
            "i = 0\nwhile (2 ^ i < {target}) {{ i = i + 1 }}"
        );
        let out = s.execute(&script, &[], &["i"]).unwrap();
        let expect = (0..).find(|&i| 2f64.powi(i) >= target as f64).unwrap();
        prop_assert_eq!(out.f64("i").unwrap(), expect as f64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser must never panic: arbitrary input either parses or
    /// returns a positioned error.
    #[test]
    fn parser_never_panics_on_arbitrary_input(src in "\\PC{0,200}") {
        let _ = sysds::parser::parse_program(&src);
    }

    /// Arbitrary token soup built from DML fragments must also never
    /// panic anywhere in parse + compile.
    #[test]
    fn compiler_never_panics_on_fragment_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("x"), Just("="), Just("("), Just(")"), Just("{"), Just("}"),
                Just("["), Just("]"), Just("+"), Just("*"), Just("%*%"), Just(","),
                Just("if"), Just("else"), Just("for"), Just("while"), Just("function"),
                Just("return"), Just("1"), Just("2.5"), Just("\"s\""), Just("in"),
                Just(":"), Just("t"), Just("sum"), Just("rand"), Just("<-"), Just(";")
            ],
            0..40,
        )
    ) {
        let src = parts.join(" ");
        if let Ok(ast) = sysds::parser::parse_program(&src) {
            let _ = sysds::compiler::compile_program(&ast, &|_| None);
        }
    }
}
