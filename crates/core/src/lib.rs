//! # SystemDS in Rust
//!
//! A declarative ML system for the end-to-end data science lifecycle,
//! reproducing Boehm et al., *SystemDS* (CIDR 2020). The crate hosts the
//! paper's primary contribution — the stack from language to runtime:
//!
//! * [`parser`] — DML, a scripting language with R-like syntax: linear
//!   algebra, control flow (`if`/`for`/`while`/`parfor`), user-defined
//!   functions, named arguments, multi-assignments.
//! * [`compiler`] — the compilation chain of §2.3: statement blocks → HOP
//!   DAGs → rewrites (constant folding, CSE, algebraic simplification with
//!   `tsmm`/`tmv` fusion, dead-code elimination) → size propagation (dims
//!   and sparsity) → memory estimates → operator selection (CP vs
//!   distributed) → runtime instructions.
//! * [`runtime`] — the control program of §2.3: block interpretation,
//!   dynamic recompilation, a buffer pool with spill-to-disk eviction,
//!   `parfor` with result merge, and a local parameter server.
//! * [`lineage`] — §3.1: fine-grained lineage tracing, loop deduplication,
//!   and the lineage-keyed cache for full **and partial** reuse of
//!   intermediates (compensation plans over `cbind` as in `steplm`).
//! * [`builtins`] — the registry of DML-bodied builtin functions (`lm`,
//!   `lmDS`, `lmCG`, `steplm`, `pca`, `kmeans`, `l2svm`, `scale`, ...);
//!   §2.2's "mechanism for registering DML-bodied built-in functions".
//! * [`api`] — the embedding APIs: [`api::SystemDS`] (an `MLContext`-like
//!   session) and [`api::PreparedScript`] (a `JMLC`-like pre-compiled
//!   script for low-latency repeated scoring).
//!
//! ## Quickstart
//!
//! ```
//! use sysds::api::SystemDS;
//!
//! let mut sds = SystemDS::new();
//! let out = sds
//!     .execute(
//!         r#"
//!         X = rand(rows=100, cols=5, seed=7)
//!         y = rand(rows=100, cols=1, seed=8)
//!         B = lmDS(X=X, y=y, reg=0.001)
//!         print(toString(nrow(B)))
//!         "#,
//!         &[],
//!         &["B"],
//!     )
//!     .unwrap();
//! let b = out.matrix("B").unwrap();
//! assert_eq!(b.rows(), 5);
//! ```

pub mod api;
pub mod builtins;
pub mod compiler;
pub mod lineage;
pub mod parser;
pub mod runtime;

pub use api::{PreparedScript, ScriptOutputs, SystemDS};
pub use runtime::value::Data;
pub use sysds_common::{EngineConfig, Result, SysDsError};
