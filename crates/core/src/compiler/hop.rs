//! High-level operator (HOP) DAGs.
//!
//! All statements of a basic block compile into one DAG of high-level
//! operators (paper §2.3 (2)). Nodes are hash-consed on construction, which
//! gives common-subexpression elimination for free; rewrites then replace
//! patterns (e.g. `t(X) %*% X` → fused `tsmm`), and size propagation
//! annotates every node with dimensions and sparsity for memory estimates
//! and operator selection.

use std::sync::Arc;
use sysds_common::hash::FxHashMap;
use sysds_common::{ScalarValue, ValueType};
use sysds_tensor::kernels::fused::FusedTemplate;
use sysds_tensor::kernels::{AggFn, BinaryOp, Direction, UnaryOp};
use sysds_tensor::Matrix;

/// Node id within one DAG.
pub type HopId = usize;

/// High-level operators.
#[derive(Debug, Clone, PartialEq)]
pub enum HopOp {
    /// A literal scalar.
    Lit(ScalarValue),
    /// Read of a live-in variable.
    Var(String),
    /// Element-wise unary op.
    Unary(UnaryOp),
    /// Element-wise / scalar binary op (operand kinds resolved at runtime).
    Binary(BinaryOp),
    /// Matrix multiplication `%*%`.
    MatMul,
    /// Fused transpose-self product `t(X) %*% X` (rewrite-introduced).
    Tsmm,
    /// Fused `t(X) %*% y` (rewrite-introduced).
    Tmv,
    /// Transpose.
    Transpose,
    /// Aggregation.
    Agg(AggFn, Direction),
    /// A fused cell-wise pipeline (optionally closed by an aggregate),
    /// introduced by the fusion pass after dynamic rewrites. Inputs are
    /// the template's leaves in template order.
    Fused(Arc<FusedTemplate>),
    /// Right indexing; inputs: `target, row_lo, row_hi, col_lo, col_hi`
    /// (1-based inclusive scalar hops).
    Index,
    /// Left indexing; inputs: `target, value, row_lo, row_hi, col_lo, col_hi`.
    LeftIndex,
    /// A named runtime builtin with positional inputs (`rand`, `cbind`,
    /// `solve`, `nrow`, `print`, ...). Named arguments are resolved to
    /// positions during construction.
    Nary(&'static str),
}

impl HopOp {
    /// Opcode string used for lineage hashing and tracing.
    pub fn opcode(&self) -> String {
        match self {
            HopOp::Lit(v) => format!("lit:{v:?}"),
            HopOp::Var(n) => format!("var:{n}"),
            HopOp::Unary(u) => u.opcode().to_string(),
            HopOp::Binary(b) => b.opcode().to_string(),
            HopOp::MatMul => "ba+*".to_string(),
            HopOp::Tsmm => "tsmm".to_string(),
            HopOp::Tmv => "tmv".to_string(),
            HopOp::Transpose => "r'".to_string(),
            HopOp::Agg(f, d) => format!("ua{f:?}{d:?}").to_lowercase(),
            // The template signature keys lineage, heavy-hitter stats, and
            // the estimate-vs-actual audit, e.g. `fused:sum((X-Y)^2)`.
            HopOp::Fused(t) => format!("fused:{}", t.signature()),
            HopOp::Index => "rightIndex".to_string(),
            HopOp::LeftIndex => "leftIndex".to_string(),
            HopOp::Nary(n) => (*n).to_string(),
        }
    }
}

/// Dimension knowledge for size propagation: exact, or unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dim {
    Known(usize),
    Unknown,
}

impl Dim {
    /// Exact value if known.
    pub fn value(self) -> Option<usize> {
        match self {
            Dim::Known(v) => Some(v),
            Dim::Unknown => None,
        }
    }
}

/// Propagated size information of one HOP output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeInfo {
    pub rows: Dim,
    pub cols: Dim,
    /// Estimated sparsity (`None` = unknown, assume dense).
    pub sparsity: Option<f64>,
    /// Whether the output is a scalar (dims 1x1 but cheaper to test).
    pub scalar: bool,
}

impl SizeInfo {
    /// A scalar output.
    pub fn scalar() -> SizeInfo {
        SizeInfo {
            rows: Dim::Known(1),
            cols: Dim::Known(1),
            sparsity: Some(1.0),
            scalar: true,
        }
    }

    /// A matrix with both dims unknown.
    pub fn unknown() -> SizeInfo {
        SizeInfo {
            rows: Dim::Unknown,
            cols: Dim::Unknown,
            sparsity: None,
            scalar: false,
        }
    }

    /// A matrix with known dims.
    pub fn matrix(rows: usize, cols: usize, sparsity: Option<f64>) -> SizeInfo {
        SizeInfo {
            rows: Dim::Known(rows),
            cols: Dim::Known(cols),
            sparsity,
            scalar: false,
        }
    }

    /// Whether both dimensions are known.
    pub fn fully_known(&self) -> bool {
        self.rows.value().is_some() && self.cols.value().is_some()
    }

    /// Memory estimate in bytes, or `None` when either dimension is
    /// unknown. Callers must decide explicitly how to treat unknowns
    /// (operator selection stays conservative in CP and relies on dynamic
    /// recompilation once sizes materialize).
    pub fn memory_estimate(&self) -> Option<usize> {
        match (self.rows.value(), self.cols.value()) {
            (Some(r), Some(c)) => Some(Matrix::estimate_size(r, c, self.sparsity.unwrap_or(1.0))),
            _ => None,
        }
    }
}

/// Where an operator executes (paper: CP vs Spark instructions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecType {
    /// Local control-program instruction.
    Cp,
    /// Simulated distributed instruction over blocked matrices.
    Dist,
}

/// One node of the DAG.
#[derive(Debug, Clone)]
pub struct Hop {
    pub op: HopOp,
    pub inputs: Vec<HopId>,
    pub size: SizeInfo,
    pub exec: ExecType,
}

/// A DAG of high-level operators with hash-consing (CSE on construction).
#[derive(Debug, Clone, Default)]
pub struct HopDag {
    nodes: Vec<Hop>,
    /// CSE table: (opcode, inputs) → node id. `Var` and effectful `Nary`
    /// ops are excluded (see [`HopDag::add`]).
    cse: FxHashMap<(String, Vec<HopId>), HopId>,
}

/// Builtins with side effects (never CSE'd, never dead-code eliminated).
pub fn is_effectful(name: &str) -> bool {
    matches!(name, "print" | "write" | "stop")
}

/// Builtins that are non-deterministic without an explicit seed; excluded
/// from CSE (their lineage captures the generated seed instead).
pub fn is_nondeterministic(name: &str) -> bool {
    matches!(name, "rand_unseeded")
}

impl HopDag {
    /// Empty DAG.
    pub fn new() -> HopDag {
        HopDag::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow a node.
    pub fn node(&self, id: HopId) -> &Hop {
        &self.nodes[id]
    }

    /// Mutably borrow a node (rewrites).
    pub fn node_mut(&mut self, id: HopId) -> &mut Hop {
        &mut self.nodes[id]
    }

    /// All nodes in insertion (topological) order.
    pub fn nodes(&self) -> &[Hop] {
        &self.nodes
    }

    /// Add a node with hash-consing. Effectful and non-deterministic ops
    /// always get fresh nodes.
    pub fn add(&mut self, op: HopOp, inputs: Vec<HopId>) -> HopId {
        let skip_cse = match &op {
            HopOp::Nary(n) => is_effectful(n) || is_nondeterministic(n),
            _ => false,
        };
        let key = (op.opcode(), inputs.clone());
        if !skip_cse {
            if let Some(&id) = self.cse.get(&key) {
                return id;
            }
        }
        let id = self.nodes.len();
        self.nodes.push(Hop {
            op,
            inputs,
            size: SizeInfo::unknown(),
            exec: ExecType::Cp,
        });
        if !skip_cse {
            self.cse.insert(key, id);
        }
        id
    }

    /// Add a literal (hash-consed by value).
    pub fn lit(&mut self, v: ScalarValue) -> HopId {
        self.add(HopOp::Lit(v), Vec::new())
    }

    /// Replace node `id`'s operator and inputs in place (rewrites). The CSE
    /// table is not updated — rewrites run after construction.
    pub fn replace(&mut self, id: HopId, op: HopOp, inputs: Vec<HopId>) {
        let n = &mut self.nodes[id];
        n.op = op;
        n.inputs = inputs;
    }

    /// Mark nodes reachable from `roots`; used by dead-code elimination.
    pub fn reachable(&self, roots: &[HopId]) -> Vec<bool> {
        let mut mark = vec![false; self.nodes.len()];
        let mut stack: Vec<HopId> = roots.to_vec();
        while let Some(id) = stack.pop() {
            if mark[id] {
                continue;
            }
            mark[id] = true;
            stack.extend(self.nodes[id].inputs.iter().copied());
        }
        mark
    }

    /// The literal value of a node, if it is a literal.
    pub fn as_lit(&self, id: HopId) -> Option<&ScalarValue> {
        match &self.nodes[id].op {
            HopOp::Lit(v) => Some(v),
            _ => None,
        }
    }

    /// Infer the value type a node produces where statically known.
    pub fn value_type(&self, id: HopId) -> Option<ValueType> {
        match &self.nodes[id].op {
            HopOp::Lit(v) => Some(v.value_type()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedupes() {
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let t1 = dag.add(HopOp::Transpose, vec![x]);
        let t2 = dag.add(HopOp::Transpose, vec![x]);
        assert_eq!(t1, t2);
        assert_eq!(dag.len(), 2);
    }

    #[test]
    fn effectful_ops_not_consed() {
        let mut dag = HopDag::new();
        let s = dag.lit(ScalarValue::Str("hi".into()));
        let p1 = dag.add(HopOp::Nary("print"), vec![s]);
        let p2 = dag.add(HopOp::Nary("print"), vec![s]);
        assert_ne!(p1, p2);
    }

    #[test]
    fn literals_consed_by_value() {
        let mut dag = HopDag::new();
        let a = dag.lit(ScalarValue::F64(1.0));
        let b = dag.lit(ScalarValue::F64(1.0));
        let c = dag.lit(ScalarValue::F64(2.0));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn reachability() {
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let t = dag.add(HopOp::Transpose, vec![x]);
        let dead = dag.add(HopOp::Var("Y".into()), vec![]);
        let mark = dag.reachable(&[t]);
        assert!(mark[x] && mark[t]);
        assert!(!mark[dead]);
    }

    #[test]
    fn size_info_memory_estimates() {
        let dense = SizeInfo::matrix(100, 100, Some(1.0)).memory_estimate();
        let sparse = SizeInfo::matrix(100, 100, Some(0.01)).memory_estimate();
        assert!(dense.unwrap() > sparse.unwrap());
        assert_eq!(SizeInfo::unknown().memory_estimate(), None);
        assert_eq!(
            SizeInfo::matrix(10, 10, None).memory_estimate(),
            SizeInfo::matrix(10, 10, Some(1.0)).memory_estimate(),
            "missing sparsity is estimated dense"
        );
        assert!(SizeInfo::scalar().fully_known());
    }

    #[test]
    fn opcode_strings() {
        assert_eq!(HopOp::MatMul.opcode(), "ba+*");
        assert_eq!(HopOp::Tsmm.opcode(), "tsmm");
        assert_eq!(HopOp::Binary(BinaryOp::Add).opcode(), "+");
        assert_eq!(
            HopOp::Agg(AggFn::Sum, Direction::Full).opcode(),
            "uasumfull"
        );
    }
}
