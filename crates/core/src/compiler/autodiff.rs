//! Reverse-mode automatic differentiation over HOP DAGs.
//!
//! The paper positions lineage as "a key enabling technique for model
//! versioning, reuse of intermediates, **auto differentiation**, and
//! debugging" (§3.1). This module implements the differentiation half: a
//! compiled expression DAG with a scalar root is extended with its
//! gradient computation — new HOP nodes appended to the same DAG, so the
//! backward pass shares the forward pass's subexpressions via CSE and
//! flows through the ordinary lowering, operator selection, lineage
//! tracing, and reuse machinery.
//!
//! Supported operators (matrix calculus, denominator layout):
//!
//! | forward | adjoint contributions |
//! |---|---|
//! | `C = A + B` | `dA += G`, `dB += G` |
//! | `C = A - B` | `dA += G`, `dB += -G` |
//! | `C = A ⊙ B` | `dA += G ⊙ B`, `dB += G ⊙ A` (same shape or scalar) |
//! | `C = A / b` (scalar b) | `dA += G / b` |
//! | `C = A %*% B` | `dA += G %*% t(B)`, `dB += t(A) %*% G` |
//! | `C = t(X) %*% X` (tsmm) | `dX += X %*% (G + t(G))` |
//! | `c = t(X) %*% y` (tmv) | `dX += y %*% t(G)`, `dy += X %*% G` |
//! | `C = t(X)` | `dX += t(G)` |
//! | `s = sum(X)` | `dX += G ⊗ ones` |
//! | `s = sumSq(X)` | `dX += 2 G ⊙ X` |
//! | unary `exp/log/sqrt/sigmoid/neg/sin/cos` | chain rule |
//! | `X ^ k` (const k) | `dX += G ⊙ k X^(k-1)` |

use super::hop::{HopDag, HopId, HopOp};
use super::{BasicBlock, Root};
use sysds_common::hash::FxHashMap;
use sysds_common::{Result, ScalarValue, SysDsError};
use sysds_tensor::kernels::{AggFn, BinaryOp, Direction, UnaryOp};

/// Extend an expression block (single `__result` root, scalar-valued) with
/// gradient outputs `__grad_<name>` for each requested variable. Returns a
/// new block whose roots are the original result plus one gradient binding
/// per `wrt` entry.
pub fn gradient_block(block: &BasicBlock, wrt: &[&str]) -> Result<BasicBlock> {
    let mut dag = block.dag.clone();
    let result = block
        .roots
        .iter()
        .find_map(|r| match r {
            Root::Bind(name, id) if name == "__result" => Some(*id),
            _ => None,
        })
        .ok_or_else(|| SysDsError::compile("autodiff requires an expression block"))?;

    // Reverse topological order: nodes are constructed inputs-first, so a
    // reverse id sweep visits consumers before producers.
    let reachable = dag.reachable(&[result]);

    // Forward closure: which nodes depend on any differentiation variable?
    // Sub-expressions outside this set are constants of the optimization
    // (e.g. `nrow(X)` when differentiating w.r.t. `w`) — adjoints neither
    // flow into them nor are required from them.
    let mut depends = vec![false; dag.len()];
    for id in 0..dag.len() {
        if let HopOp::Var(n) = &dag.node(id).op {
            if wrt.iter().any(|w| w == n) {
                depends[id] = true;
            }
        }
        if dag.node(id).inputs.iter().any(|&i| depends[i]) {
            depends[id] = true;
        }
    }

    let mut adjoint: FxHashMap<HopId, HopId> = FxHashMap::default();
    let one = dag.lit(ScalarValue::F64(1.0));
    adjoint.insert(result, one);
    depends.resize(dag.len().max(depends.len()), false);

    for id in (0..reachable.len()).rev() {
        if !reachable[id] || !depends.get(id).copied().unwrap_or(false) {
            continue;
        }
        let Some(&g) = adjoint.get(&id) else { continue };
        let node = dag.node(id).clone();
        let dep = |k: usize| depends.get(node.inputs[k]).copied().unwrap_or(false);
        match &node.op {
            HopOp::Lit(_) | HopOp::Var(_) => {}
            HopOp::Binary(BinaryOp::Add) => {
                if dep(0) {
                    accumulate(&mut dag, &mut adjoint, node.inputs[0], g);
                }
                if dep(1) {
                    accumulate(&mut dag, &mut adjoint, node.inputs[1], g);
                }
            }
            HopOp::Binary(BinaryOp::Sub) => {
                if dep(0) {
                    accumulate(&mut dag, &mut adjoint, node.inputs[0], g);
                }
                if dep(1) {
                    let neg = dag.add(HopOp::Unary(UnaryOp::Neg), vec![g]);
                    accumulate(&mut dag, &mut adjoint, node.inputs[1], neg);
                }
            }
            HopOp::Binary(BinaryOp::Mul) => {
                let (a, b) = (node.inputs[0], node.inputs[1]);
                if dep(0) {
                    let da = dag.add(HopOp::Binary(BinaryOp::Mul), vec![g, b]);
                    accumulate(&mut dag, &mut adjoint, a, da);
                }
                if dep(1) {
                    let db = dag.add(HopOp::Binary(BinaryOp::Mul), vec![g, a]);
                    accumulate(&mut dag, &mut adjoint, b, db);
                }
            }
            HopOp::Binary(BinaryOp::Div) => {
                // Denominators must be constants of the optimization (the
                // common case: normalization by nrow(X)); the numerator
                // gets dA += G / b.
                let (a, b) = (node.inputs[0], node.inputs[1]);
                if dep(1) {
                    return Err(SysDsError::compile(
                        "autodiff: denominator must not depend on the differentiation variables",
                    ));
                }
                if dep(0) {
                    let da = dag.add(HopOp::Binary(BinaryOp::Div), vec![g, b]);
                    accumulate(&mut dag, &mut adjoint, a, da);
                }
            }
            HopOp::Binary(BinaryOp::Pow) => {
                let (a, k) = (node.inputs[0], node.inputs[1]);
                if dep(1) {
                    return Err(SysDsError::compile(
                        "autodiff: exponent must not depend on the differentiation variables",
                    ));
                }
                // dA += G * k * A^(k-1), with k as a (possibly dynamic) node
                let onel = dag.lit(ScalarValue::F64(1.0));
                let km1 = dag.add(HopOp::Binary(BinaryOp::Sub), vec![k, onel]);
                let pk = dag.add(HopOp::Binary(BinaryOp::Pow), vec![a, km1]);
                let scaled = dag.add(HopOp::Binary(BinaryOp::Mul), vec![pk, k]);
                let da = dag.add(HopOp::Binary(BinaryOp::Mul), vec![g, scaled]);
                accumulate(&mut dag, &mut adjoint, a, da);
            }
            HopOp::MatMul => {
                let (a, b) = (node.inputs[0], node.inputs[1]);
                if dep(0) {
                    // dA += G %*% t(B)
                    let bt = dag.add(HopOp::Transpose, vec![b]);
                    let da = dag.add(HopOp::MatMul, vec![g, bt]);
                    accumulate(&mut dag, &mut adjoint, a, da);
                }
                if dep(1) {
                    // dB += t(A) %*% G
                    let at = dag.add(HopOp::Transpose, vec![a]);
                    let db = dag.add(HopOp::MatMul, vec![at, g]);
                    accumulate(&mut dag, &mut adjoint, b, db);
                }
            }
            HopOp::Tsmm => {
                // C = t(X) X; dX += X (G + t(G))
                let x = node.inputs[0];
                let gt = dag.add(HopOp::Transpose, vec![g]);
                let gsym = dag.add(HopOp::Binary(BinaryOp::Add), vec![g, gt]);
                let dx = dag.add(HopOp::MatMul, vec![x, gsym]);
                accumulate(&mut dag, &mut adjoint, x, dx);
            }
            HopOp::Tmv => {
                // c = t(X) y; dX += y t(G); dy += X G
                let (x, y) = (node.inputs[0], node.inputs[1]);
                if dep(0) {
                    let gt = dag.add(HopOp::Transpose, vec![g]);
                    let dx = dag.add(HopOp::MatMul, vec![y, gt]);
                    accumulate(&mut dag, &mut adjoint, x, dx);
                }
                if dep(1) {
                    let dy = dag.add(HopOp::MatMul, vec![x, g]);
                    accumulate(&mut dag, &mut adjoint, y, dy);
                }
            }
            HopOp::Transpose => {
                let gt = dag.add(HopOp::Transpose, vec![g]);
                accumulate(&mut dag, &mut adjoint, node.inputs[0], gt);
            }
            HopOp::Agg(AggFn::Sum, Direction::Full) => {
                // dX += G * ones(shape(X)); G is scalar, and scalar ⊙
                // matrix broadcasts — multiply against X*0+1 to get shape.
                let x = node.inputs[0];
                let zero = dag.lit(ScalarValue::F64(0.0));
                let zeros = dag.add(HopOp::Binary(BinaryOp::Mul), vec![x, zero]);
                let onel = dag.lit(ScalarValue::F64(1.0));
                let ones = dag.add(HopOp::Binary(BinaryOp::Add), vec![zeros, onel]);
                let dx = dag.add(HopOp::Binary(BinaryOp::Mul), vec![ones, g]);
                accumulate(&mut dag, &mut adjoint, x, dx);
            }
            HopOp::Agg(AggFn::SumSq, Direction::Full) => {
                // dX += 2 G ⊙ X
                let x = node.inputs[0];
                let two = dag.lit(ScalarValue::F64(2.0));
                let gx = dag.add(HopOp::Binary(BinaryOp::Mul), vec![x, two]);
                let dx = dag.add(HopOp::Binary(BinaryOp::Mul), vec![gx, g]);
                accumulate(&mut dag, &mut adjoint, x, dx);
            }
            HopOp::Unary(u) => {
                let x = node.inputs[0];
                let local = match u {
                    UnaryOp::Neg => {
                        let d = dag.add(HopOp::Unary(UnaryOp::Neg), vec![g]);
                        accumulate(&mut dag, &mut adjoint, x, d);
                        continue;
                    }
                    UnaryOp::Exp => dag.add(HopOp::Unary(UnaryOp::Exp), vec![x]),
                    UnaryOp::Log => {
                        let onel = dag.lit(ScalarValue::F64(1.0));
                        dag.add(HopOp::Binary(BinaryOp::Div), vec![onel, x].clone())
                    }
                    UnaryOp::Sqrt => {
                        // 1 / (2 sqrt(x))
                        let s = dag.add(HopOp::Unary(UnaryOp::Sqrt), vec![x]);
                        let two = dag.lit(ScalarValue::F64(2.0));
                        let denom = dag.add(HopOp::Binary(BinaryOp::Mul), vec![s, two]);
                        let onel = dag.lit(ScalarValue::F64(1.0));
                        dag.add(HopOp::Binary(BinaryOp::Div), vec![onel, denom])
                    }
                    UnaryOp::Sigmoid => {
                        // s(x)(1 - s(x))
                        let s = dag.add(HopOp::Unary(UnaryOp::Sigmoid), vec![x]);
                        let onel = dag.lit(ScalarValue::F64(1.0));
                        let oneminus = dag.add(HopOp::Binary(BinaryOp::Sub), vec![onel, s]);
                        dag.add(HopOp::Binary(BinaryOp::Mul), vec![s, oneminus])
                    }
                    UnaryOp::Sin => dag.add(HopOp::Unary(UnaryOp::Cos), vec![x]),
                    UnaryOp::Cos => {
                        let s = dag.add(HopOp::Unary(UnaryOp::Sin), vec![x]);
                        dag.add(HopOp::Unary(UnaryOp::Neg), vec![s])
                    }
                    other => {
                        return Err(SysDsError::compile(format!(
                            "autodiff: unary '{}' not differentiable here",
                            other.opcode()
                        )))
                    }
                };
                let dx = dag.add(HopOp::Binary(BinaryOp::Mul), vec![g, local]);
                accumulate(&mut dag, &mut adjoint, x, dx);
            }
            other => {
                return Err(SysDsError::compile(format!(
                    "autodiff: operator '{}' is not differentiable",
                    other.opcode()
                )))
            }
        }
    }

    // Collect requested gradients; a variable the result does not depend
    // on gets gradient zero (a 1x1 zero that broadcasts poorly, so error
    // instead — callers should only request live variables).
    let mut roots = vec![Root::Bind("__result".into(), result)];
    for name in wrt {
        let var_id =
            (0..dag.len()).find(|&i| matches!(dag.node(i).op, HopOp::Var(ref n) if n == name));
        let Some(var_id) = var_id else {
            return Err(SysDsError::compile(format!(
                "autodiff: '{name}' does not appear in the expression"
            )));
        };
        let Some(&g) = adjoint.get(&var_id) else {
            return Err(SysDsError::compile(format!(
                "autodiff: result does not depend on '{name}'"
            )));
        };
        roots.push(Root::Bind(format!("__grad_{name}"), g));
    }
    Ok(BasicBlock {
        dag,
        roots,
        plan: parking_lot::Mutex::new(None),
    })
}

/// `adjoint[node] += delta` — materialized as an Add node on collision.
fn accumulate(dag: &mut HopDag, adjoint: &mut FxHashMap<HopId, HopId>, node: HopId, delta: HopId) {
    match adjoint.get(&node) {
        Some(&existing) => {
            let sum = dag.add(HopOp::Binary(BinaryOp::Add), vec![existing, delta]);
            adjoint.insert(node, sum);
        }
        None => {
            adjoint.insert(node, delta);
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::runtime::instructions::{execute, ExecCtx, Slot};
    use crate::runtime::value::{Data, SymbolTable};
    use sysds_common::EngineConfig;
    use sysds_tensor::kernels::gen;
    use sysds_tensor::Matrix;

    /// Compile `expr_src` (an expression over variables), differentiate
    /// w.r.t. `wrt`, and evaluate value + gradients at the given inputs.
    fn eval_with_grad(
        expr_src: &str,
        wrt: &[&str],
        inputs: &[(&str, Matrix)],
    ) -> (f64, Vec<Matrix>) {
        let program = parse_program(&format!("__result = {expr_src}")).unwrap();
        let compiled = crate::compiler::compile_program(&program, &|_| None).unwrap();
        let crate::compiler::Block::Basic(block) = &compiled.blocks[0] else {
            panic!()
        };
        // rename the binding root to the expression-block convention
        let block = BasicBlock {
            dag: block.dag.clone(),
            roots: block
                .roots
                .iter()
                .map(|r| match r {
                    Root::Bind(_, id) => Root::Bind("__result".into(), *id),
                    other => other.clone(),
                })
                .collect(),
            plan: parking_lot::Mutex::new(None),
        };
        let gblock = gradient_block(&block, wrt).unwrap();

        let mut config = EngineConfig::default();
        config.spill_dir = sysds_common::testing::unique_temp_dir("sysds-autodiff-tests");
        let ctx = ExecCtx::new(config.clone()).unwrap();
        let mut st = SymbolTable::new();
        for (n, m) in inputs {
            st.set(n.to_string(), Data::from_matrix(m.clone()), None);
        }
        let plan = crate::compiler::lower::lower(&gblock, &st.size_env(), &config);
        let mut slots: Vec<Option<Slot>> = vec![None; plan.nslots];
        for instr in &plan.instrs {
            execute(instr, &mut slots, &st, &ctx).unwrap();
        }
        let value = plan
            .bindings
            .iter()
            .find(|b| b.name == "__result")
            .map(|b| slots[b.slot].as_ref().unwrap().data.as_f64().unwrap());
        let value = value
            .or_else(|| {
                plan.result_slot
                    .map(|s| slots[s].as_ref().unwrap().data.as_f64().unwrap())
            })
            .unwrap();
        let grads = wrt
            .iter()
            .map(|n| {
                let b = plan
                    .bindings
                    .iter()
                    .find(|b| b.name == format!("__grad_{n}"))
                    .expect("gradient bound");
                (*slots[b.slot].as_ref().unwrap().data.as_matrix().unwrap()).clone()
            })
            .collect();
        (value, grads)
    }

    /// Central finite differences for verification.
    fn numeric_grad(expr_src: &str, wrt: &str, inputs: &[(&str, Matrix)]) -> Matrix {
        let eval = |ins: &[(&str, Matrix)]| -> f64 {
            let (v, _) = eval_with_grad(expr_src, &[], ins);
            v
        };
        let base: Vec<(&str, Matrix)> = inputs.to_vec();
        let x = inputs.iter().find(|(n, _)| *n == wrt).unwrap().1.clone();
        let h = 1e-5;
        let mut g = Matrix::zeros(x.rows(), x.cols());
        for i in 0..x.rows() {
            for j in 0..x.cols() {
                let mut plus = base.clone();
                let mut minus = base.clone();
                for (n, m) in plus.iter_mut() {
                    if *n == wrt {
                        m.set(i, j, x.get(i, j) + h);
                    }
                }
                for (n, m) in minus.iter_mut() {
                    if *n == wrt {
                        m.set(i, j, x.get(i, j) - h);
                    }
                }
                g.set(i, j, (eval(&plus) - eval(&minus)) / (2.0 * h));
            }
        }
        g
    }

    fn check(expr: &str, wrt: &str, inputs: &[(&str, Matrix)], tol: f64) {
        let (_, grads) = eval_with_grad(expr, &[wrt], inputs);
        let numeric = numeric_grad(expr, wrt, inputs);
        assert!(
            grads[0].approx_eq(&numeric, tol),
            "analytic vs numeric mismatch for {expr} wrt {wrt}:\n{:?}\nvs\n{:?}",
            grads[0].to_vec(),
            numeric.to_vec()
        );
    }

    #[test]
    fn gradient_of_sum_of_squares() {
        let x = gen::rand_uniform(4, 3, -1.0, 1.0, 1.0, 1001);
        // d/dX sum(X*X) = 2X
        let (_, grads) = eval_with_grad("sum(X * X)", &["X"], &[("X", x.clone())]);
        let expect = sysds_tensor::kernels::elementwise::binary_ms(
            sysds_tensor::kernels::BinaryOp::Mul,
            &x,
            2.0,
        );
        assert!(grads[0].approx_eq(&expect, 1e-9));
    }

    #[test]
    fn gradient_of_linear_regression_loss() {
        // L(w) = sum((X w - y)^2); dL/dw = 2 X'(Xw - y)
        let (x, y) = gen::synthetic_regression(12, 4, 1.0, 0.3, 1002);
        let w = gen::rand_uniform(4, 1, -1.0, 1.0, 1.0, 1003);
        check(
            "sum((X %*% w - y) * (X %*% w - y))",
            "w",
            &[("X", x), ("y", y), ("w", w)],
            1e-4,
        );
    }

    #[test]
    fn gradient_through_tsmm() {
        // f(X) = sum(t(X) %*% X); the tsmm-fused path must differentiate.
        let x = gen::rand_uniform(5, 3, -1.0, 1.0, 1.0, 1004);
        check("sum(t(X) %*% X)", "X", &[("X", x)], 1e-5);
    }

    #[test]
    fn gradient_through_unaries() {
        let x = gen::rand_uniform(3, 3, 0.2, 1.5, 1.0, 1005);
        for expr in [
            "sum(exp(X))",
            "sum(log(X))",
            "sum(sqrt(X))",
            "sum(sigmoid(X))",
            "sum(sin(X))",
            "sum(cos(X))",
        ] {
            check(expr, "X", &[("X", x.clone())], 1e-4);
        }
    }

    #[test]
    fn gradient_of_logistic_loss() {
        // cross-entropy-ish: sum(sigmoid(X w)) wrt w
        let x = gen::rand_uniform(8, 3, -1.0, 1.0, 1.0, 1006);
        let w = gen::rand_uniform(3, 1, -1.0, 1.0, 1.0, 1007);
        check("sum(sigmoid(X %*% w))", "w", &[("X", x), ("w", w)], 1e-4);
    }

    #[test]
    fn gradient_with_power() {
        let x = gen::rand_uniform(3, 2, 0.5, 1.5, 1.0, 1008);
        check("sum(X ^ 3)", "X", &[("X", x)], 1e-4);
    }

    #[test]
    fn multiple_gradients_at_once() {
        let a = gen::rand_uniform(3, 3, -1.0, 1.0, 1.0, 1009);
        let b = gen::rand_uniform(3, 3, -1.0, 1.0, 1.0, 1010);
        let (_, grads) = eval_with_grad(
            "sum(A * B)",
            &["A", "B"],
            &[("A", a.clone()), ("B", b.clone())],
        );
        assert!(grads[0].approx_eq(&b, 1e-9), "d/dA sum(A⊙B) = B");
        assert!(grads[1].approx_eq(&a, 1e-9), "d/dB sum(A⊙B) = A");
    }

    #[test]
    fn unsupported_ops_are_reported() {
        let program = parse_program("__result = sum(abs(X))").unwrap();
        let compiled = crate::compiler::compile_program(&program, &|_| None).unwrap();
        let crate::compiler::Block::Basic(block) = &compiled.blocks[0] else {
            panic!()
        };
        let block = BasicBlock {
            dag: block.dag.clone(),
            roots: vec![Root::Bind("__result".into(), block.roots[0].id())],
            plan: parking_lot::Mutex::new(None),
        };
        assert!(gradient_block(&block, &["X"]).is_err());
    }

    #[test]
    fn independent_variable_rejected() {
        let program = parse_program("__result = sum(X)").unwrap();
        let compiled = crate::compiler::compile_program(&program, &|_| None).unwrap();
        let crate::compiler::Block::Basic(block) = &compiled.blocks[0] else {
            panic!()
        };
        let block = BasicBlock {
            dag: block.dag.clone(),
            roots: vec![Root::Bind("__result".into(), block.roots[0].id())],
            plan: parking_lot::Mutex::new(None),
        };
        assert!(gradient_block(&block, &["Z"]).is_err());
    }
}
