//! Operator fusion: cell-wise chains and aggregates over them collapse
//! into a single [`HopOp::Fused`] node carrying an expression template.
//!
//! SystemDS generates fused operators to avoid materializing the
//! intermediates of element-wise pipelines like `sum((X - U %*% t(V))^2)`
//! (paper §2.3, §4.2). This pass is the interpreted analogue: after
//! dynamic rewrites and size propagation it greedily absorbs maximal
//! single-consumer regions of `Binary`/`Unary` nodes that share one
//! output shape, optionally closed by a full/row/col aggregate root, and
//! replaces the region's root with a `Fused` HOP whose inputs are the
//! region's leaves. The runtime evaluates the template in one pass over
//! the data (`sysds_tensor::kernels::fused`), row-partitioned across
//! threads, with a sparse-exploiting path when the template preserves
//! zeros.
//!
//! Fusion only fires when the chain's dimensions are exactly known — in
//! blocks with unknowns it simply waits for dynamic recompilation to
//! learn the sizes, like the CP/Dist operator selection does.

use super::hop::{Dim, ExecType, Hop, HopDag, HopId, HopOp};
use std::sync::Arc;
use sysds_common::hash::FxHashMap;
use sysds_tensor::kernels::fused::{FusedTemplate, TemplateNode};
use sysds_tensor::kernels::AggFn;

/// Fuse eligible chains in `dag`; returns the number of `Fused` nodes
/// introduced. Callers gate on `EngineConfig::fusion`.
pub fn fuse(dag: &mut HopDag, roots: &[HopId]) -> usize {
    let reach = dag.reachable(roots);
    let n = dag.len();

    // Consumer lists over the reachable sub-graph, duplicates preserved:
    // a node used twice by one consumer still has two entries, so the
    // "all uses inside the region" test stays a simple subset check.
    let mut uses: Vec<Vec<HopId>> = vec![Vec::new(); n];
    for id in 0..n {
        if !reach[id] {
            continue;
        }
        for &i in &dag.node(id).inputs {
            uses[i].push(id);
        }
    }
    // DAG roots (statement bindings/effects) must stay materialized even
    // when they have no recorded consumer.
    let mut is_root = vec![false; n];
    for &r in roots {
        is_root[r] = true;
    }

    let mut absorbed = vec![false; n];
    let mut fused = 0usize;
    // Chain roots have higher ids than their members (topological
    // insertion order), so scanning downwards sees each maximal chain
    // before its sub-chains.
    for id in (0..n).rev() {
        if !reach[id] || absorbed[id] {
            continue;
        }
        if let Some((template, leaves, members)) = try_fuse(dag, id, &uses, &is_root, &absorbed) {
            for &m in &members {
                if m != id {
                    absorbed[m] = true;
                }
            }
            dag.replace(id, HopOp::Fused(Arc::new(template)), leaves);
            fused += 1;
        }
    }
    fused
}

/// Exact dims of a node when fully known and non-scalar.
fn matrix_dims(node: &Hop) -> Option<(usize, usize)> {
    if node.size.scalar {
        return None;
    }
    match (node.size.rows, node.size.cols) {
        (Dim::Known(r), Dim::Known(c)) => Some((r, c)),
        _ => None,
    }
}

/// Whether `id` can be inlined into a template over `shape`: a CP
/// cell-wise op of exactly that shape, consumed only inside the region,
/// with every operand usable as an interior node or leaf.
fn absorbable(
    dag: &HopDag,
    id: HopId,
    shape: (usize, usize),
    region: &[bool],
    uses: &[Vec<HopId>],
    is_root: &[bool],
    absorbed: &[bool],
) -> bool {
    let node = dag.node(id);
    is_cellwise(&node.op)
        && !is_root[id]
        && !absorbed[id]
        && node.exec == ExecType::Cp
        && matrix_dims(node) == Some(shape)
        && conforming_inputs(dag, node, shape)
        && uses[id].iter().all(|&u| region[u])
}

fn is_cellwise(op: &HopOp) -> bool {
    matches!(op, HopOp::Binary(_) | HopOp::Unary(_))
}

/// Every operand of a template member must be a valid leaf by itself:
/// a numeric literal (folded to a `Const`), a scalar, or a matrix of
/// exactly the chain shape. Broadcasts (row/col vectors) and string
/// literals stay unfused.
fn conforming_inputs(dag: &HopDag, node: &Hop, shape: (usize, usize)) -> bool {
    node.inputs.iter().all(|&i| {
        if let Some(lit) = dag.as_lit(i) {
            return lit.as_f64().is_ok();
        }
        let s = dag.node(i).size;
        s.scalar || matrix_dims(dag.node(i)) == Some(shape)
    })
}

/// Try to fuse the chain rooted at `id`. Returns the template, the leaf
/// hop ids (template input order), and all region members on success.
fn try_fuse(
    dag: &HopDag,
    id: HopId,
    uses: &[Vec<HopId>],
    is_root: &[bool],
    absorbed: &[bool],
) -> Option<(FusedTemplate, Vec<HopId>, Vec<HopId>)> {
    let node = dag.node(id);
    if node.exec != ExecType::Cp {
        return None;
    }
    // The root is either an aggregate over a cell-wise top, or the
    // topmost cell-wise op itself. Var/Sd are not single-pass fusable.
    let (agg, top) = match &node.op {
        HopOp::Agg(f, d) if !matches!(f, AggFn::Var | AggFn::Sd) => {
            (Some((*f, *d)), node.inputs[0])
        }
        op if is_cellwise(op) => (None, id),
        _ => return None,
    };
    let shape = matrix_dims(dag.node(top))?;

    // Grow the region around the root to a fixpoint. A member's operand
    // joins once all of its consumers are in — re-scanning handles
    // diamonds where a shared operand's last consumer joins late.
    let mut region = vec![false; dag.len()];
    region[id] = true;
    let mut members: Vec<HopId> = Vec::new();
    let mut changed = true;
    while changed {
        changed = false;
        let mut frontier: Vec<HopId> = dag.node(id).inputs.clone();
        for &m in &members {
            frontier.extend(dag.node(m).inputs.iter().copied());
        }
        for i in frontier {
            if !region[i] && absorbable(dag, i, shape, &region, uses, is_root, absorbed) {
                region[i] = true;
                members.push(i);
                changed = true;
            }
        }
    }

    // Cell-wise ops the template evaluates: the absorbed members plus,
    // for a chain without an aggregate, the root itself.
    let ops = members.len() + usize::from(agg.is_none());
    let worthwhile = if agg.is_some() { ops >= 1 } else { ops >= 2 };
    if !worthwhile || !region[top] {
        return None;
    }

    // Build the template bottom-up from the cell-wise top.
    let mut builder = Builder {
        dag,
        region: &region,
        memo: FxHashMap::default(),
        leaf_of: FxHashMap::default(),
        leaves: Vec::new(),
        nodes: Vec::new(),
    };
    let root = builder.build(top);
    let template = FusedTemplate {
        nodes: builder.nodes,
        root,
        agg,
        num_inputs: builder.leaves.len(),
        // Each absorbed cell-wise op would have materialized one
        // intermediate; without an aggregate the root's output is still
        // produced.
        saved_intermediates: if agg.is_some() { ops } else { ops - 1 },
    };
    debug_assert!(template.validate().is_ok());
    let mut all = members;
    all.push(id);
    Some((template, builder.leaves, all))
}

struct Builder<'a> {
    dag: &'a HopDag,
    region: &'a [bool],
    /// hop id → template node index (keeps shared sub-chains shared).
    memo: FxHashMap<HopId, usize>,
    /// hop id → leaf index (inputs are deduplicated).
    leaf_of: FxHashMap<HopId, usize>,
    leaves: Vec<HopId>,
    nodes: Vec<TemplateNode>,
}

impl Builder<'_> {
    fn push(&mut self, n: TemplateNode) -> usize {
        self.nodes.push(n);
        self.nodes.len() - 1
    }

    fn build(&mut self, id: HopId) -> usize {
        if let Some(&idx) = self.memo.get(&id) {
            return idx;
        }
        let idx = if self.region[id] {
            match &self.dag.node(id).op {
                HopOp::Unary(u) => {
                    let a = self.build(self.dag.node(id).inputs[0]);
                    self.push(TemplateNode::Unary(*u, a))
                }
                HopOp::Binary(b) => {
                    let (op, l, r) = (*b, self.dag.node(id).inputs[0], self.dag.node(id).inputs[1]);
                    let a = self.build(l);
                    let c = self.build(r);
                    self.push(TemplateNode::Binary(op, a, c))
                }
                other => unreachable!("non-cell-wise op {other:?} in fusion region"),
            }
        } else if let Some(v) = self.dag.as_lit(id).and_then(|l| l.as_f64().ok()) {
            self.push(TemplateNode::Const(v))
        } else {
            let next = self.leaves.len();
            let k = *self.leaf_of.entry(id).or_insert_with(|| {
                self.leaves.push(id);
                next
            });
            self.push(TemplateNode::Input(k))
        };
        self.memo.insert(id, idx);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::hop::SizeInfo;
    use crate::compiler::size::{propagate, SizeEnv};
    use sysds_common::{EngineConfig, ScalarValue};
    use sysds_tensor::kernels::{BinaryOp, Direction, UnaryOp};

    fn env(entries: &[(&str, usize, usize)]) -> SizeEnv {
        let mut env = SizeEnv::default();
        for &(n, r, c) in entries {
            env.insert(n.to_string(), SizeInfo::matrix(r, c, Some(1.0)));
        }
        env
    }

    fn fused_of(dag: &HopDag, id: HopId) -> &FusedTemplate {
        match &dag.node(id).op {
            HopOp::Fused(t) => t,
            other => panic!("expected Fused at {id}, got {other:?}"),
        }
    }

    #[test]
    fn sum_of_squared_difference_fuses() {
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let y = dag.add(HopOp::Var("Y".into()), vec![]);
        let sub = dag.add(HopOp::Binary(BinaryOp::Sub), vec![x, y]);
        let two = dag.lit(ScalarValue::F64(2.0));
        let sq = dag.add(HopOp::Binary(BinaryOp::Pow), vec![sub, two]);
        let agg = dag.add(HopOp::Agg(AggFn::Sum, Direction::Full), vec![sq]);
        let env = env(&[("X", 10, 4), ("Y", 10, 4)]);
        propagate(&mut dag, &env, &EngineConfig::default(), &[agg]);
        assert_eq!(fuse(&mut dag, &[agg]), 1);
        let t = fused_of(&dag, agg);
        assert_eq!(t.signature(), "sum((X-Y)^2)");
        assert_eq!(t.saved_intermediates, 2);
        assert_eq!(dag.node(agg).inputs, vec![x, y]);
        // The replaced root keeps its propagated size (scalar for sum).
        assert!(dag.node(agg).size.scalar);
    }

    #[test]
    fn cellwise_chain_without_aggregate_fuses() {
        // exp(-X) * Y : three cell-wise ops, no aggregate.
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let y = dag.add(HopOp::Var("Y".into()), vec![]);
        let neg = dag.add(HopOp::Unary(UnaryOp::Neg), vec![x]);
        let e = dag.add(HopOp::Unary(UnaryOp::Exp), vec![neg]);
        let mul = dag.add(HopOp::Binary(BinaryOp::Mul), vec![e, y]);
        let env = env(&[("X", 6, 6), ("Y", 6, 6)]);
        propagate(&mut dag, &env, &EngineConfig::default(), &[mul]);
        assert_eq!(fuse(&mut dag, &[mul]), 1);
        let t = fused_of(&dag, mul);
        assert_eq!(t.signature(), "(exp(-X)*Y)");
        assert_eq!(t.agg, None);
        assert_eq!(t.saved_intermediates, 2);
    }

    #[test]
    fn single_binary_not_worth_fusing() {
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let y = dag.add(HopOp::Var("Y".into()), vec![]);
        let add = dag.add(HopOp::Binary(BinaryOp::Add), vec![x, y]);
        propagate(
            &mut dag,
            &env(&[("X", 5, 5), ("Y", 5, 5)]),
            &EngineConfig::default(),
            &[add],
        );
        assert_eq!(fuse(&mut dag, &[add]), 0);
        assert_eq!(dag.node(add).op, HopOp::Binary(BinaryOp::Add));
    }

    #[test]
    fn multi_consumer_intermediate_stays_materialized() {
        // D = X - Y is consumed by the fused chain AND bound as a root:
        // it must survive as a leaf, not be inlined.
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let y = dag.add(HopOp::Var("Y".into()), vec![]);
        let d = dag.add(HopOp::Binary(BinaryOp::Sub), vec![x, y]);
        let two = dag.lit(ScalarValue::F64(2.0));
        let sq = dag.add(HopOp::Binary(BinaryOp::Pow), vec![d, two]);
        let agg = dag.add(HopOp::Agg(AggFn::Sum, Direction::Full), vec![sq]);
        let roots = [agg, d];
        propagate(
            &mut dag,
            &env(&[("X", 8, 3), ("Y", 8, 3)]),
            &EngineConfig::default(),
            &roots,
        );
        assert_eq!(fuse(&mut dag, &roots), 1);
        let t = fused_of(&dag, agg);
        assert_eq!(t.signature(), "sum(X^2)");
        assert_eq!(dag.node(agg).inputs, vec![d]);
        assert_eq!(dag.node(d).op, HopOp::Binary(BinaryOp::Sub));
    }

    #[test]
    fn broadcast_operand_blocks_absorption() {
        // X - colMeans-like row vector: the (1, c) operand cannot join a
        // (r, c) template, and the root has a non-conforming input, so
        // nothing fuses.
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let mu = dag.add(HopOp::Var("mu".into()), vec![]);
        let sub = dag.add(HopOp::Binary(BinaryOp::Sub), vec![x, mu]);
        let two = dag.lit(ScalarValue::F64(2.0));
        let sq = dag.add(HopOp::Binary(BinaryOp::Pow), vec![sub, two]);
        let agg = dag.add(HopOp::Agg(AggFn::Sum, Direction::Col), vec![sq]);
        let mut e = env(&[("X", 20, 5)]);
        e.insert("mu".into(), SizeInfo::matrix(1, 5, Some(1.0)));
        propagate(&mut dag, &e, &EngineConfig::default(), &[agg]);
        // Only the (sq, agg) pair can fuse; `sub` stays a leaf because of
        // its broadcast operand.
        assert_eq!(fuse(&mut dag, &[agg]), 1);
        let t = fused_of(&dag, agg);
        assert_eq!(t.signature(), "colSums(X^2)");
        assert_eq!(dag.node(agg).inputs, vec![sub]);
    }

    #[test]
    fn var_and_sd_aggregates_do_not_fuse() {
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let two = dag.lit(ScalarValue::F64(2.0));
        let sq = dag.add(HopOp::Binary(BinaryOp::Pow), vec![x, two]);
        let agg = dag.add(HopOp::Agg(AggFn::Var, Direction::Full), vec![sq]);
        propagate(
            &mut dag,
            &env(&[("X", 12, 12)]),
            &EngineConfig::default(),
            &[agg],
        );
        // The aggregate cannot fuse and the lone `sq` is not worthwhile.
        assert_eq!(fuse(&mut dag, &[agg]), 0);
    }

    #[test]
    fn unknown_dims_defer_fusion() {
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let y = dag.add(HopOp::Var("Y".into()), vec![]);
        let sub = dag.add(HopOp::Binary(BinaryOp::Sub), vec![x, y]);
        let two = dag.lit(ScalarValue::F64(2.0));
        let sq = dag.add(HopOp::Binary(BinaryOp::Pow), vec![sub, two]);
        let agg = dag.add(HopOp::Agg(AggFn::Sum, Direction::Full), vec![sq]);
        propagate(
            &mut dag,
            &SizeEnv::default(),
            &EngineConfig::default(),
            &[agg],
        );
        assert_eq!(fuse(&mut dag, &[agg]), 0, "no shapes, no fusion");
    }

    #[test]
    fn shared_subchain_fuses_as_diamond() {
        // (X*Y) + (X*Y)^2 : hash-consing shares the X*Y node; both its
        // consumers are in the region, so it is inlined, not a leaf.
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let y = dag.add(HopOp::Var("Y".into()), vec![]);
        let mul = dag.add(HopOp::Binary(BinaryOp::Mul), vec![x, y]);
        let two = dag.lit(ScalarValue::F64(2.0));
        let sq = dag.add(HopOp::Binary(BinaryOp::Pow), vec![mul, two]);
        let add = dag.add(HopOp::Binary(BinaryOp::Add), vec![mul, sq]);
        let agg = dag.add(HopOp::Agg(AggFn::Sum, Direction::Full), vec![add]);
        propagate(
            &mut dag,
            &env(&[("X", 9, 9), ("Y", 9, 9)]),
            &EngineConfig::default(),
            &[agg],
        );
        assert_eq!(fuse(&mut dag, &[agg]), 1);
        let t = fused_of(&dag, agg);
        assert_eq!(t.signature(), "sum((X*Y)+((X*Y)^2))");
        assert_eq!(t.num_inputs, 2, "shared sub-chain inlined, not a leaf");
        // The shared mul appears once as a template node (memoized).
        let muls = t
            .nodes
            .iter()
            .filter(|n| matches!(n, TemplateNode::Binary(BinaryOp::Mul, _, _)))
            .count();
        assert_eq!(muls, 1);
    }
}
