//! Plan explanation: SystemDS-style `--explain` output (paper §2.2).
//!
//! Two levels, mirroring SystemDS's `hops` and `runtime`:
//!
//! * [`ExplainLevel::Hops`] renders each statement block's HOP DAG after
//!   rewrites and size propagation — one line per operator with its
//!   inputs, propagated dims/sparsity, memory estimate, and the selected
//!   execution type;
//! * [`ExplainLevel::Runtime`] renders the lowered instruction program
//!   (the register-based plans produced by [`super::lower`]).
//!
//! Sizes are threaded across blocks the same way the interpreter threads
//! values: a [`SizeEnv`] carries each binding's propagated size into the
//! next block, control-flow branches fork the environment, and joins
//! invalidate bindings whose branches disagree. Everything here is
//! compile-time only; the output is a best-effort static view (blocks
//! with unknowns are recompiled at runtime with exact sizes).

use super::hop::{ExecType, HopId, SizeInfo};
use super::lower::{lower, Instr};
use super::size::{propagate, SizeEnv};
use super::{rewrites, BasicBlock, Block, CompiledProgram, Root};
use std::fmt::Write as _;
use sysds_common::EngineConfig;

/// How much of the compilation chain to render.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExplainLevel {
    /// HOP DAGs with propagated sizes, memory estimates, and exec types.
    Hops,
    /// Lowered instruction plans.
    Runtime,
}

impl std::str::FromStr for ExplainLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "hops" => Ok(ExplainLevel::Hops),
            "runtime" => Ok(ExplainLevel::Runtime),
            other => Err(format!(
                "unknown explain level '{other}' (expected 'hops' or 'runtime')"
            )),
        }
    }
}

/// Render a compiled program at the requested level.
pub fn explain(program: &CompiledProgram, config: &EngineConfig, level: ExplainLevel) -> String {
    let mut out = String::new();
    let what = match level {
        ExplainLevel::Hops => "HOPS",
        ExplainLevel::Runtime => "RUNTIME",
    };
    let _ = writeln!(out, "EXPLAIN ({what}):");
    let _ = writeln!(out, "MAIN PROGRAM ({} blocks)", program.blocks.len());
    let mut env = SizeEnv::default();
    explain_blocks(&program.blocks, &mut env, config, level, 1, &mut out);
    let mut names: Vec<&String> = program.functions.keys().collect();
    names.sort();
    for name in names {
        let f = &program.functions[name];
        let params: Vec<&str> = f.params.iter().map(|p| p.name.as_str()).collect();
        let _ = writeln!(
            out,
            "FUNCTION {name}({}) -> ({})",
            params.join(", "),
            f.outputs.join(", ")
        );
        // Parameter sizes are call-site dependent: explain with unknowns.
        let mut env = SizeEnv::default();
        explain_blocks(&f.blocks, &mut env, config, level, 1, &mut out);
    }
    out
}

/// Stable 64-bit identity of the plan this configuration would execute.
///
/// Hashes the rendered runtime-level explain output, so any change the
/// optimizer makes under a configuration — fusion decisions, exec types,
/// rewrites — changes the fingerprint. The conformance harness reports it
/// alongside divergences so a failing seed names *which* plans disagreed.
pub fn plan_fingerprint(program: &CompiledProgram, config: &EngineConfig) -> u64 {
    sysds_obs::fingerprint64(&explain(program, config, ExplainLevel::Runtime))
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn explain_blocks(
    blocks: &[Block],
    env: &mut SizeEnv,
    config: &EngineConfig,
    level: ExplainLevel,
    indent: usize,
    out: &mut String,
) {
    for block in blocks {
        match block {
            Block::Basic(bb) => {
                pad(out, indent);
                out.push_str("GENERIC block\n");
                explain_basic(bb, env, config, level, indent + 1, out);
            }
            Block::If {
                cond,
                then_blocks,
                else_blocks,
            } => {
                pad(out, indent);
                out.push_str("IF block\n");
                pad(out, indent + 1);
                out.push_str("predicate:\n");
                let mut cond_env = env.clone();
                explain_basic(cond, &mut cond_env, config, level, indent + 2, out);
                let mut then_env = env.clone();
                let mut else_env = env.clone();
                pad(out, indent + 1);
                out.push_str("then:\n");
                explain_blocks(then_blocks, &mut then_env, config, level, indent + 2, out);
                if !else_blocks.is_empty() {
                    pad(out, indent + 1);
                    out.push_str("else:\n");
                    explain_blocks(else_blocks, &mut else_env, config, level, indent + 2, out);
                }
                merge_branches(env, &then_env, &else_env);
            }
            Block::For {
                var,
                from,
                to,
                step,
                body,
                parallel,
            } => {
                pad(out, indent);
                let kind = if *parallel { "PARFOR" } else { "FOR" };
                let _ = writeln!(out, "{kind} block (var={var})");
                for (label, b) in [
                    ("from", Some(from)),
                    ("to", Some(to)),
                    ("step", step.as_ref()),
                ] {
                    if let Some(b) = b {
                        pad(out, indent + 1);
                        let _ = writeln!(out, "{label}:");
                        let mut e = env.clone();
                        explain_basic(b, &mut e, config, level, indent + 2, out);
                    }
                }
                pad(out, indent + 1);
                out.push_str("body:\n");
                let mut body_env = env.clone();
                body_env.insert(var.clone(), SizeInfo::scalar());
                explain_blocks(body, &mut body_env, config, level, indent + 2, out);
                // Loop-carried sizes may change per iteration: bindings made
                // inside the body are unknown after the loop.
                invalidate_bound(env, body);
            }
            Block::While { cond, body } => {
                pad(out, indent);
                out.push_str("WHILE block\n");
                pad(out, indent + 1);
                out.push_str("predicate:\n");
                let mut cond_env = env.clone();
                explain_basic(cond, &mut cond_env, config, level, indent + 2, out);
                pad(out, indent + 1);
                out.push_str("body:\n");
                let mut body_env = env.clone();
                explain_blocks(body, &mut body_env, config, level, indent + 2, out);
                invalidate_bound(env, body);
            }
            Block::Call {
                targets,
                function,
                args,
            } => {
                pad(out, indent);
                let _ = writeln!(
                    out,
                    "CALL {function}({} args) -> [{}]",
                    args.len(),
                    targets.join(", ")
                );
                for (name, arg) in args {
                    pad(out, indent + 1);
                    match name {
                        Some(n) => {
                            let _ = writeln!(out, "arg {n}:");
                        }
                        None => out.push_str("arg:\n"),
                    }
                    let mut e = env.clone();
                    explain_basic(arg, &mut e, config, level, indent + 2, out);
                }
                // Function outputs are opaque at this level.
                for t in targets {
                    env.insert(t.clone(), SizeInfo::unknown());
                }
            }
        }
    }
}

/// Explain one basic block and fold its bindings' sizes into `env`.
fn explain_basic(
    block: &BasicBlock,
    env: &mut SizeEnv,
    config: &EngineConfig,
    level: ExplainLevel,
    indent: usize,
    out: &mut String,
) {
    // Same pipeline as lowering: propagate, dynamic rewrites,
    // re-propagate, fuse — so `--explain hops` shows fused templates.
    let mut dag = block.dag.clone();
    let roots: Vec<HopId> = block.roots.iter().map(Root::id).collect();
    propagate(&mut dag, env, config, &roots);
    rewrites::rewrite_dynamic(&mut dag);
    propagate(&mut dag, env, config, &roots);
    if config.fusion {
        super::fusion::fuse(&mut dag, &roots);
    }

    match level {
        ExplainLevel::Hops => {
            let mark = dag.reachable(&roots);
            for (id, node) in dag.nodes().iter().enumerate() {
                if !mark[id] {
                    continue;
                }
                pad(out, indent);
                let ins: Vec<String> = node.inputs.iter().map(|i| i.to_string()).collect();
                let _ = writeln!(
                    out,
                    "({id}) {} ({}) [{}] {}",
                    node.op.opcode(),
                    ins.join(","),
                    fmt_size(&node.size),
                    fmt_exec(node.exec)
                );
            }
        }
        ExplainLevel::Runtime => {
            let plan = lower(block, env, config);
            for instr in &plan.instrs {
                pad(out, indent);
                out.push_str(&fmt_instr(instr));
                out.push('\n');
            }
            if plan.had_unknown {
                pad(out, indent);
                out.push_str("(sizes unknown: recompiled at runtime)\n");
            }
        }
    }

    for root in &block.roots {
        if let Root::Bind(name, id) = root {
            env.insert(name.clone(), dag.node(*id).size);
        }
    }
}

/// Join two branch environments back into `env`: keep agreements, mark
/// disagreements unknown.
fn merge_branches(env: &mut SizeEnv, then_env: &SizeEnv, else_env: &SizeEnv) {
    let mut names: Vec<&String> = then_env.keys().chain(else_env.keys()).collect();
    names.sort();
    names.dedup();
    for name in names {
        match (then_env.get(name), else_env.get(name)) {
            (Some(a), Some(b)) if a == b => {
                env.insert(name.clone(), *a);
            }
            _ => {
                env.insert(name.clone(), SizeInfo::unknown());
            }
        }
    }
}

/// Mark every variable bound anywhere inside `blocks` as unknown in `env`.
fn invalidate_bound(env: &mut SizeEnv, blocks: &[Block]) {
    for name in bound_names(blocks) {
        env.insert(name, SizeInfo::unknown());
    }
}

fn bound_names(blocks: &[Block]) -> Vec<String> {
    let mut names = Vec::new();
    fn walk(blocks: &[Block], names: &mut Vec<String>) {
        for block in blocks {
            match block {
                Block::Basic(bb) => {
                    for root in &bb.roots {
                        if let Root::Bind(name, _) = root {
                            names.push(name.clone());
                        }
                    }
                }
                Block::If {
                    then_blocks,
                    else_blocks,
                    ..
                } => {
                    walk(then_blocks, names);
                    walk(else_blocks, names);
                }
                Block::For { var, body, .. } => {
                    names.push(var.clone());
                    walk(body, names);
                }
                Block::While { body, .. } => walk(body, names),
                Block::Call { targets, .. } => names.extend(targets.iter().cloned()),
            }
        }
    }
    walk(blocks, &mut names);
    names.sort();
    names.dedup();
    names
}

/// Render one lowered instruction (shared with `--explain runtime`).
pub fn fmt_instr(instr: &Instr) -> String {
    let ins: Vec<String> = instr.inputs.iter().map(|i| i.to_string()).collect();
    format!(
        "[{}] {} {} in=[{}] [{}]",
        instr.out,
        fmt_exec(instr.exec),
        instr.op.opcode(),
        ins.join(","),
        fmt_size(&instr.size)
    )
}

fn fmt_exec(exec: ExecType) -> &'static str {
    match exec {
        ExecType::Cp => "CP",
        ExecType::Dist => "DIST",
    }
}

/// `RxC, sp=…, mem=…` with `?` for unknowns.
pub fn fmt_size(size: &SizeInfo) -> String {
    if size.scalar {
        return "scalar".to_string();
    }
    let dim = |d: super::hop::Dim| match d.value() {
        Some(v) => v.to_string(),
        None => "?".to_string(),
    };
    let sp = match size.sparsity {
        Some(s) => format!("{s:.2}"),
        None => "?".to_string(),
    };
    let mem = match size.memory_estimate() {
        Some(m) => fmt_bytes(m),
        None => "?".to_string(),
    };
    format!("{}x{}, sp={sp}, mem={mem}", dim(size.rows), dim(size.cols))
}

/// Human-readable byte count (fixed 1024 ladder, one decimal).
pub fn fmt_bytes(bytes: usize) -> String {
    const UNITS: [&str; 4] = ["B", "KB", "MB", "GB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes}B")
    } else {
        format!("{v:.1}{}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile_program;
    use crate::parser::parse_program;

    fn compiled(src: &str) -> CompiledProgram {
        compile_program(&parse_program(src).unwrap(), &|_| None).unwrap()
    }

    #[test]
    fn hops_level_shows_sizes_and_exec() {
        let p = compiled("X = rand(rows=100, cols=10, seed=1)\ng = t(X) %*% X");
        let text = explain(&p, &EngineConfig::default(), ExplainLevel::Hops);
        assert!(text.starts_with("EXPLAIN (HOPS):"), "{text}");
        assert!(text.contains("GENERIC block"), "{text}");
        assert!(text.contains("tsmm"), "{text}");
        assert!(text.contains("[100x10"), "{text}");
        assert!(text.contains("10x10"), "{text}");
        assert!(text.contains(" CP"), "{text}");
    }

    #[test]
    fn runtime_level_lists_instructions() {
        let p = compiled("y = X + 1");
        let text = explain(&p, &EngineConfig::default(), ExplainLevel::Runtime);
        assert!(text.starts_with("EXPLAIN (RUNTIME):"), "{text}");
        assert!(text.contains("[2] CP +"), "{text}");
        assert!(
            text.contains("recompiled at runtime"),
            "unknown X flags recompile: {text}"
        );
    }

    #[test]
    fn sizes_thread_across_blocks_and_branches() {
        // X's size is established in block 0 and must be visible inside the
        // if-branch HOPs; z is bound in only one branch, unknown after.
        let p = compiled(
            "X = rand(rows=50, cols=4, seed=1)\n\
             if (sum(X) > 0) { z = t(X) } else { w = X }\n\
             out = X + 1",
        );
        let text = explain(&p, &EngineConfig::default(), ExplainLevel::Hops);
        assert!(text.contains("IF block"), "{text}");
        assert!(text.contains("predicate:"), "{text}");
        // transpose inside the branch sees 50x4 -> 4x50
        assert!(text.contains("4x50"), "{text}");
        // the trailing block still knows X
        assert!(text.contains("50x4"), "{text}");
    }

    #[test]
    fn parfor_and_functions_render_headers() {
        let p = compiled(
            "f = function(matrix[double] M) return (matrix[double] N) {\n\
               if (nrow(M) > 1) { N = M } else { N = t(M) }\n\
             }\n\
             parfor (i in 1:2) { A = rand(rows=3, cols=3, seed=i) }\n\
             B = f(C)",
        );
        let text = explain(&p, &EngineConfig::default(), ExplainLevel::Hops);
        assert!(text.contains("PARFOR block (var=i)"), "{text}");
        assert!(text.contains("CALL f(1 args) -> [B]"), "{text}");
        assert!(text.contains("FUNCTION f(M) -> (N)"), "{text}");
    }

    #[test]
    fn explain_level_parses() {
        assert_eq!("hops".parse::<ExplainLevel>(), Ok(ExplainLevel::Hops));
        assert_eq!("runtime".parse::<ExplainLevel>(), Ok(ExplainLevel::Runtime));
        assert!("verbose".parse::<ExplainLevel>().is_err());
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(8192), "8.0KB");
        assert_eq!(fmt_bytes(3 << 20), "3.0MB");
    }
}
