//! The compilation chain (paper §2.3 (2)).
//!
//! A parsed [`Program`] is compiled into a hierarchy of program blocks:
//! control-flow statements delineate blocks, and all statements of a basic
//! (last-level) block are compiled into **one** HOP DAG — which is what
//! enables cross-statement common-subexpression elimination. Rewrites,
//! size propagation, memory estimates, and operator selection then run on
//! the DAG, and lowering produces the runtime instruction sequence.
//!
//! Function inlining happens up front at the AST level: calls to functions
//! with straight-line bodies (like `lmDS` in the paper's Figure 2) are
//! substituted into the caller, collapsing the abstraction stack so the
//! optimizer can reason about the end-to-end computation (Example 1).

pub mod autodiff;
pub mod explain;
pub mod fusion;
pub mod hop;
pub mod lower;
pub mod rewrites;
pub mod size;

use crate::parser::ast::*;
use hop::{HopDag, HopId, HopOp};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use sysds_common::hash::FxHashMap;
use sysds_common::{Result, ScalarValue, SysDsError};
use sysds_tensor::kernels::{AggFn, BinaryOp, Direction, UnaryOp};

/// A compiled program: top-level blocks plus the function table.
#[derive(Debug, Clone, Default)]
pub struct CompiledProgram {
    pub blocks: Vec<Block>,
    pub functions: FxHashMap<String, Arc<CompiledFunction>>,
}

/// A compiled function body.
#[derive(Debug)]
pub struct CompiledFunction {
    pub name: String,
    pub params: Vec<ParamSpec>,
    pub outputs: Vec<String>,
    pub blocks: Vec<Block>,
}

/// One function parameter with an optional constant default.
#[derive(Debug, Clone)]
pub struct ParamSpec {
    pub name: String,
    pub default: Option<ScalarValue>,
}

/// Program blocks (paper: "hierarchy of statement blocks ... control flow
/// statements like loops or branches delineate these blocks").
#[derive(Debug)]
pub enum Block {
    Basic(BasicBlock),
    If {
        cond: BasicBlock,
        then_blocks: Vec<Block>,
        else_blocks: Vec<Block>,
    },
    For {
        var: String,
        from: BasicBlock,
        to: BasicBlock,
        step: Option<BasicBlock>,
        body: Vec<Block>,
        parallel: bool,
    },
    While {
        cond: BasicBlock,
        body: Vec<Block>,
    },
    /// Call to a non-inlined function: `[targets] = f(args)`.
    Call {
        targets: Vec<String>,
        function: String,
        args: Vec<(Option<String>, BasicBlock)>,
    },
}

impl Clone for Block {
    fn clone(&self) -> Block {
        match self {
            Block::Basic(b) => Block::Basic(b.clone()),
            Block::If {
                cond,
                then_blocks,
                else_blocks,
            } => Block::If {
                cond: cond.clone(),
                then_blocks: then_blocks.clone(),
                else_blocks: else_blocks.clone(),
            },
            Block::For {
                var,
                from,
                to,
                step,
                body,
                parallel,
            } => Block::For {
                var: var.clone(),
                from: from.clone(),
                to: to.clone(),
                step: step.clone(),
                body: body.clone(),
                parallel: *parallel,
            },
            Block::While { cond, body } => Block::While {
                cond: cond.clone(),
                body: body.clone(),
            },
            Block::Call {
                targets,
                function,
                args,
            } => Block::Call {
                targets: targets.clone(),
                function: function.clone(),
                args: args.clone(),
            },
        }
    }
}

/// An ordered output of a basic block.
#[derive(Debug, Clone, PartialEq)]
pub enum Root {
    /// Bind the node's value to a variable after block execution.
    Bind(String, HopId),
    /// Execute for effect (`print`, `write`, `stop`).
    Effect(HopId),
}

impl Root {
    /// The root's node id.
    pub fn id(&self) -> HopId {
        match self {
            Root::Bind(_, id) | Root::Effect(id) => *id,
        }
    }
}

/// A basic block: one HOP DAG with ordered roots, plus a cached lowered
/// plan (invalidated when entry sizes change — dynamic recompilation).
#[derive(Debug)]
pub struct BasicBlock {
    pub dag: HopDag,
    pub roots: Vec<Root>,
    /// Cached lowered plan guarded for parfor workers.
    pub plan: Mutex<Option<Arc<lower::Plan>>>,
}

impl Clone for BasicBlock {
    fn clone(&self) -> BasicBlock {
        BasicBlock {
            dag: self.dag.clone(),
            roots: self.roots.clone(),
            plan: Mutex::new(None),
        }
    }
}

impl BasicBlock {
    fn new(dag: HopDag, roots: Vec<Root>) -> BasicBlock {
        BasicBlock {
            dag,
            roots,
            plan: Mutex::new(None),
        }
    }

    /// Live-in variables (names read before written inside the block).
    pub fn live_ins(&self) -> Vec<String> {
        let mut ins = Vec::new();
        for node in self.dag.nodes() {
            if let HopOp::Var(name) = &node.op {
                if !ins.contains(name) {
                    ins.push(name.clone());
                }
            }
        }
        ins
    }
}

static GENSYM: AtomicUsize = AtomicUsize::new(0);

fn gensym(prefix: &str) -> String {
    format!("__{prefix}{}", GENSYM.fetch_add(1, Ordering::Relaxed))
}

/// Compile a program. `extra_functions` supplies DML-bodied builtins
/// resolved on demand (paper §2.2's registration mechanism).
pub fn compile_program(
    program: &Program,
    extra_functions: &dyn Fn(&str) -> Option<Program>,
) -> Result<CompiledProgram> {
    let mut ctx = Ctx::default();
    // Collect user function definitions first (any order in the script).
    for f in &program.functions {
        ctx.defs.insert(f.name.clone(), f.clone());
    }
    // Resolve DML-bodied builtins reachable from the script.
    resolve_builtins(program, &mut ctx, extra_functions)?;

    // Compile every function (inlining within function bodies too).
    let names: Vec<String> = ctx.defs.keys().cloned().collect();
    let mut functions = FxHashMap::default();
    for name in names {
        let def = ctx.defs.get(&name).unwrap().clone();
        let body = remove_static_branches(inline_pass(&def.body, &ctx)?);
        let blocks = compile_stmts(&body, &ctx)?;
        let mut params = Vec::new();
        for (pname, _ty, default) in &def.params {
            let default = match default {
                None => None,
                Some(e) => Some(const_eval(e).ok_or_else(|| {
                    SysDsError::compile(format!(
                        "default for parameter '{pname}' of '{name}' must be a constant"
                    ))
                })?),
            };
            params.push(ParamSpec {
                name: pname.clone(),
                default,
            });
        }
        functions.insert(
            name.clone(),
            Arc::new(CompiledFunction {
                name: name.clone(),
                params,
                outputs: def.outputs.clone(),
                blocks,
            }),
        );
    }

    let stmts = remove_static_branches(inline_pass(&program.statements, &ctx)?);
    let blocks = compile_stmts(&stmts, &ctx)?;
    Ok(CompiledProgram { blocks, functions })
}

#[derive(Default)]
struct Ctx {
    /// All known function definitions (user + resolved DML builtins).
    defs: FxHashMap<String, FunctionDef>,
}

/// Walk the program for calls to unknown functions and pull in DML-bodied
/// builtins transitively.
fn resolve_builtins(
    program: &Program,
    ctx: &mut Ctx,
    extra: &dyn Fn(&str) -> Option<Program>,
) -> Result<()> {
    let mut pending: Vec<String> = Vec::new();
    let scan_stmts = |stmts: &[Stmt], pending: &mut Vec<String>| {
        collect_called_names(stmts, pending);
    };
    scan_stmts(&program.statements, &mut pending);
    for f in &program.functions {
        scan_stmts(&f.body, &mut pending);
    }
    while let Some(name) = pending.pop() {
        if ctx.defs.contains_key(&name) || is_runtime_builtin(&name) {
            continue;
        }
        if let Some(sub) = extra(&name) {
            for f in &sub.functions {
                if !ctx.defs.contains_key(&f.name) {
                    collect_called_names(&f.body, &mut pending);
                    ctx.defs.insert(f.name.clone(), f.clone());
                }
            }
        }
        // Unknown names that are neither runtime builtins nor registered
        // functions surface as compile errors later, with context.
    }
    Ok(())
}

fn collect_called_names(stmts: &[Stmt], out: &mut Vec<String>) {
    fn walk_expr(e: &Expr, out: &mut Vec<String>) {
        match e {
            Expr::Call { name, args } => {
                out.push(name.clone());
                for a in args {
                    walk_expr(&a.value, out);
                }
            }
            Expr::Unary(_, a) => walk_expr(a, out),
            Expr::Binary(_, a, b) | Expr::Seq(a, b) => {
                walk_expr(a, out);
                walk_expr(b, out);
            }
            Expr::Index { target, rows, cols } => {
                walk_expr(target, out);
                for ix in [rows, cols] {
                    match ix {
                        IndexExpr::Single(e) => walk_expr(e, out),
                        IndexExpr::Range(a, b) => {
                            walk_expr(a, out);
                            walk_expr(b, out);
                        }
                        IndexExpr::All => {}
                    }
                }
            }
            Expr::Const(_) | Expr::Var(_) => {}
        }
    }
    for s in stmts {
        match s {
            Stmt::Assign { value, .. }
            | Stmt::MultiAssign { value, .. }
            | Stmt::ExprStmt(value) => walk_expr(value, out),
            Stmt::IndexAssign {
                value, rows, cols, ..
            } => {
                walk_expr(value, out);
                for ix in [rows, cols] {
                    match ix {
                        IndexExpr::Single(e) => walk_expr(e, out),
                        IndexExpr::Range(a, b) => {
                            walk_expr(a, out);
                            walk_expr(b, out);
                        }
                        IndexExpr::All => {}
                    }
                }
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                walk_expr(cond, out);
                collect_called_names(then_branch, out);
                collect_called_names(else_branch, out);
            }
            Stmt::For {
                from,
                to,
                step,
                body,
                ..
            } => {
                walk_expr(from, out);
                walk_expr(to, out);
                if let Some(s) = step {
                    walk_expr(s, out);
                }
                collect_called_names(body, out);
            }
            Stmt::Parfor { from, to, body, .. } => {
                walk_expr(from, out);
                walk_expr(to, out);
                collect_called_names(body, out);
            }
            Stmt::While { cond, body } => {
                walk_expr(cond, out);
                collect_called_names(body, out);
            }
        }
    }
}

/// Evaluate a constant expression at compile time (function defaults).
fn const_eval(e: &Expr) -> Option<ScalarValue> {
    match e {
        Expr::Const(v) => Some(v.clone()),
        Expr::Unary(UnOp::Neg, inner) => match const_eval(inner)? {
            ScalarValue::F64(v) => Some(ScalarValue::F64(-v)),
            ScalarValue::I64(v) => Some(ScalarValue::I64(-v)),
            _ => None,
        },
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Function inlining (AST level)
// ---------------------------------------------------------------------

/// Whether a function body is straight-line and free of calls to other
/// registered functions — the inlining criterion.
fn is_inlinable(def: &FunctionDef, ctx: &Ctx) -> bool {
    fn expr_ok(e: &Expr, ctx: &Ctx) -> bool {
        match e {
            Expr::Call { name, args } => {
                (is_runtime_builtin(name) || !ctx.defs.contains_key(name))
                    && args.iter().all(|a| expr_ok(&a.value, ctx))
            }
            Expr::Unary(_, a) => expr_ok(a, ctx),
            Expr::Binary(_, a, b) | Expr::Seq(a, b) => expr_ok(a, ctx) && expr_ok(b, ctx),
            Expr::Index { target, rows, cols } => {
                expr_ok(target, ctx) && index_ok(rows, ctx) && index_ok(cols, ctx)
            }
            Expr::Const(_) | Expr::Var(_) => true,
        }
    }
    fn index_ok(ix: &IndexExpr, ctx: &Ctx) -> bool {
        match ix {
            IndexExpr::All => true,
            IndexExpr::Single(e) => expr_ok(e, ctx),
            IndexExpr::Range(a, b) => expr_ok(a, ctx) && expr_ok(b, ctx),
        }
    }
    def.body.iter().all(|s| match s {
        Stmt::Assign { value, .. } => expr_ok(value, ctx),
        Stmt::IndexAssign { value, .. } => expr_ok(value, ctx),
        Stmt::ExprStmt(e) => expr_ok(e, ctx),
        _ => false,
    })
}

/// Rename all variables of an inlined body with a unique prefix.
fn rename_expr(e: &Expr, map: &FxHashMap<String, String>) -> Expr {
    match e {
        Expr::Var(n) => Expr::Var(map.get(n).cloned().unwrap_or_else(|| n.clone())),
        Expr::Const(v) => Expr::Const(v.clone()),
        Expr::Unary(op, a) => Expr::Unary(*op, Box::new(rename_expr(a, map))),
        Expr::Binary(op, a, b) => Expr::Binary(
            *op,
            Box::new(rename_expr(a, map)),
            Box::new(rename_expr(b, map)),
        ),
        Expr::Seq(a, b) => Expr::Seq(Box::new(rename_expr(a, map)), Box::new(rename_expr(b, map))),
        Expr::Call { name, args } => Expr::Call {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| Arg {
                    name: a.name.clone(),
                    value: rename_expr(&a.value, map),
                })
                .collect(),
        },
        Expr::Index { target, rows, cols } => Expr::Index {
            target: Box::new(rename_expr(target, map)),
            rows: rename_index(rows, map),
            cols: rename_index(cols, map),
        },
    }
}

fn rename_index(ix: &IndexExpr, map: &FxHashMap<String, String>) -> IndexExpr {
    match ix {
        IndexExpr::All => IndexExpr::All,
        IndexExpr::Single(e) => IndexExpr::Single(Box::new(rename_expr(e, map))),
        IndexExpr::Range(a, b) => {
            IndexExpr::Range(Box::new(rename_expr(a, map)), Box::new(rename_expr(b, map)))
        }
    }
}

/// Bind call arguments to parameters (positional + named + defaults).
fn bind_args(def: &FunctionDef, args: &[Arg]) -> Result<Vec<(String, Expr)>> {
    let mut bound: Vec<Option<Expr>> = vec![None; def.params.len()];
    let mut pos = 0usize;
    for a in args {
        match &a.name {
            Some(n) => {
                let idx = def
                    .params
                    .iter()
                    .position(|(p, _, _)| p == n)
                    .ok_or_else(|| {
                        SysDsError::compile(format!("unknown argument '{n}' for '{}'", def.name))
                    })?;
                bound[idx] = Some(a.value.clone());
            }
            None => {
                while pos < bound.len() && bound[pos].is_some() {
                    pos += 1;
                }
                if pos >= bound.len() {
                    return Err(SysDsError::compile(format!(
                        "too many arguments for '{}'",
                        def.name
                    )));
                }
                bound[pos] = Some(a.value.clone());
                pos += 1;
            }
        }
    }
    let mut out = Vec::with_capacity(def.params.len());
    for ((pname, _ty, default), b) in def.params.iter().zip(bound) {
        let value = match (b, default) {
            (Some(v), _) => v,
            (None, Some(d)) => d.clone(),
            (None, None) => {
                return Err(SysDsError::compile(format!(
                    "missing argument '{pname}' for '{}'",
                    def.name
                )))
            }
        };
        out.push((pname.clone(), value));
    }
    Ok(out)
}

/// Inline eligible function calls in a statement list (recursively).
fn inline_pass(stmts: &[Stmt], ctx: &Ctx) -> Result<Vec<Stmt>> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::Assign {
                target,
                value: Expr::Call { name, args },
            } if ctx.defs.get(name).is_some_and(|d| is_inlinable(d, ctx)) => {
                inline_call(ctx, name, args, std::slice::from_ref(target), &mut out)?;
            }
            Stmt::MultiAssign {
                targets,
                value: Expr::Call { name, args },
            } if ctx.defs.get(name).is_some_and(|d| is_inlinable(d, ctx)) => {
                inline_call(ctx, name, args, targets, &mut out)?;
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => out.push(Stmt::If {
                cond: cond.clone(),
                then_branch: inline_pass(then_branch, ctx)?,
                else_branch: inline_pass(else_branch, ctx)?,
            }),
            Stmt::For {
                var,
                from,
                to,
                step,
                body,
            } => out.push(Stmt::For {
                var: var.clone(),
                from: from.clone(),
                to: to.clone(),
                step: step.clone(),
                body: inline_pass(body, ctx)?,
            }),
            Stmt::Parfor {
                var,
                from,
                to,
                body,
            } => out.push(Stmt::Parfor {
                var: var.clone(),
                from: from.clone(),
                to: to.clone(),
                body: inline_pass(body, ctx)?,
            }),
            Stmt::While { cond, body } => out.push(Stmt::While {
                cond: cond.clone(),
                body: inline_pass(body, ctx)?,
            }),
            other => out.push(other.clone()),
        }
    }
    Ok(out)
}

fn inline_call(
    ctx: &Ctx,
    name: &str,
    args: &[Arg],
    targets: &[String],
    out: &mut Vec<Stmt>,
) -> Result<()> {
    let def = ctx.defs.get(name).expect("checked by caller");
    if targets.len() > def.outputs.len() {
        return Err(SysDsError::compile(format!(
            "'{name}' returns {} values, {} requested",
            def.outputs.len(),
            targets.len()
        )));
    }
    let prefix = gensym("il");
    let mut map = FxHashMap::default();
    // Rename every local mention: params, outputs, and body-assigned vars.
    for (p, _, _) in &def.params {
        map.insert(p.clone(), format!("{prefix}_{p}"));
    }
    for o in &def.outputs {
        map.entry(o.clone())
            .or_insert_with(|| format!("{prefix}_{o}"));
    }
    for s in &def.body {
        if let Stmt::Assign { target, .. } | Stmt::IndexAssign { target, .. } = s {
            map.entry(target.clone())
                .or_insert_with(|| format!("{prefix}_{target}"));
        }
    }
    // Parameter bindings.
    for (pname, value) in bind_args(def, args)? {
        out.push(Stmt::Assign {
            target: map[&pname].clone(),
            value,
        });
    }
    // Body with renames.
    for s in &def.body {
        match s {
            Stmt::Assign { target, value } => out.push(Stmt::Assign {
                target: map.get(target).cloned().unwrap_or_else(|| target.clone()),
                value: rename_expr(value, &map),
            }),
            Stmt::IndexAssign {
                target,
                rows,
                cols,
                value,
            } => out.push(Stmt::IndexAssign {
                target: map.get(target).cloned().unwrap_or_else(|| target.clone()),
                rows: rename_index(rows, &map),
                cols: rename_index(cols, &map),
                value: rename_expr(value, &map),
            }),
            Stmt::ExprStmt(e) => out.push(Stmt::ExprStmt(rename_expr(e, &map))),
            _ => unreachable!("is_inlinable guarantees straight-line body"),
        }
    }
    // Output bindings.
    for (t, o) in targets.iter().zip(&def.outputs) {
        out.push(Stmt::Assign {
            target: t.clone(),
            value: Expr::Var(map[o].clone()),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Block construction
// ---------------------------------------------------------------------

/// Static branch removal at the AST level (paper Example 1: "removing
/// unnecessary branches"): `if` statements with constant predicates are
/// spliced into the surrounding statement stream, so the taken branch
/// merges into the enclosing basic block.
fn remove_static_branches(stmts: Vec<Stmt>) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => match const_eval_cond(&cond) {
                Some(true) => out.extend(remove_static_branches(then_branch)),
                Some(false) => out.extend(remove_static_branches(else_branch)),
                None => out.push(Stmt::If {
                    cond,
                    then_branch: remove_static_branches(then_branch),
                    else_branch: remove_static_branches(else_branch),
                }),
            },
            Stmt::For {
                var,
                from,
                to,
                step,
                body,
            } => out.push(Stmt::For {
                var,
                from,
                to,
                step,
                body: remove_static_branches(body),
            }),
            Stmt::Parfor {
                var,
                from,
                to,
                body,
            } => out.push(Stmt::Parfor {
                var,
                from,
                to,
                body: remove_static_branches(body),
            }),
            Stmt::While { cond, body } => out.push(Stmt::While {
                cond,
                body: remove_static_branches(body),
            }),
            other => out.push(other),
        }
    }
    out
}

fn compile_stmts(stmts: &[Stmt], ctx: &Ctx) -> Result<Vec<Block>> {
    let mut blocks = Vec::new();
    let mut builder = DagBuilder::new();
    for s in stmts {
        match s {
            Stmt::Assign { target, value } => {
                if let Expr::Call { name, args } = value {
                    if ctx.defs.contains_key(name) || is_multi_output_builtin(name) {
                        builder.flush(&mut blocks);
                        blocks.push(compile_call(ctx, name, args, vec![target.clone()])?);
                        continue;
                    }
                }
                let id = builder.expr(value, ctx)?;
                builder.bind(target, id);
            }
            Stmt::MultiAssign { targets, value } => {
                let Expr::Call { name, args } = value else {
                    return Err(SysDsError::compile("multi-assignment requires a call"));
                };
                if ctx.defs.contains_key(name) || is_multi_output_builtin(name) {
                    builder.flush(&mut blocks);
                    blocks.push(compile_call(ctx, name, args, targets.clone())?);
                } else {
                    return Err(SysDsError::compile(format!(
                        "'{name}' is not a multi-output function"
                    )));
                }
            }
            Stmt::IndexAssign {
                target,
                rows,
                cols,
                value,
            } => {
                let id = builder.index_assign(target, rows, cols, value, ctx)?;
                builder.bind(target, id);
            }
            Stmt::ExprStmt(e) => {
                if let Expr::Call { name, args } = e {
                    if ctx.defs.contains_key(name) {
                        builder.flush(&mut blocks);
                        blocks.push(compile_call(ctx, name, args, vec![])?);
                        continue;
                    }
                }
                let id = builder.expr(e, ctx)?;
                builder.effect(id);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                builder.flush(&mut blocks);
                blocks.push(Block::If {
                    cond: compile_expr_block(cond, ctx)?,
                    then_blocks: compile_stmts(then_branch, ctx)?,
                    else_blocks: compile_stmts(else_branch, ctx)?,
                });
            }
            Stmt::For {
                var,
                from,
                to,
                step,
                body,
            } => {
                builder.flush(&mut blocks);
                blocks.push(Block::For {
                    var: var.clone(),
                    from: compile_expr_block(from, ctx)?,
                    to: compile_expr_block(to, ctx)?,
                    step: step
                        .as_ref()
                        .map(|s| compile_expr_block(s, ctx))
                        .transpose()?,
                    body: compile_stmts(body, ctx)?,
                    parallel: false,
                });
            }
            Stmt::Parfor {
                var,
                from,
                to,
                body,
            } => {
                builder.flush(&mut blocks);
                blocks.push(Block::For {
                    var: var.clone(),
                    from: compile_expr_block(from, ctx)?,
                    to: compile_expr_block(to, ctx)?,
                    step: None,
                    body: compile_stmts(body, ctx)?,
                    parallel: true,
                });
            }
            Stmt::While { cond, body } => {
                builder.flush(&mut blocks);
                blocks.push(Block::While {
                    cond: compile_expr_block(cond, ctx)?,
                    body: compile_stmts(body, ctx)?,
                });
            }
        }
    }
    builder.flush(&mut blocks);
    Ok(blocks)
}

fn const_eval_cond(e: &Expr) -> Option<bool> {
    match e {
        Expr::Const(v) => v.as_bool().ok(),
        _ => None,
    }
}

fn compile_call(ctx: &Ctx, name: &str, args: &[Arg], targets: Vec<String>) -> Result<Block> {
    let mut compiled_args = Vec::with_capacity(args.len());
    for a in args {
        compiled_args.push((a.name.clone(), compile_expr_block(&a.value, ctx)?));
    }
    Ok(Block::Call {
        targets,
        function: name.to_string(),
        args: compiled_args,
    })
}

/// Compile a single expression into a one-root basic block.
fn compile_expr_block(e: &Expr, ctx: &Ctx) -> Result<BasicBlock> {
    let mut b = DagBuilder::new();
    let id = b.expr(e, ctx)?;
    b.roots.push(Root::Bind("__result".into(), id));
    Ok(b.finish())
}

/// Expression compile entry point for standalone use (tests, APIs) —
/// no user functions visible.
pub fn compile_expression(e: &Expr) -> Result<BasicBlock> {
    compile_expr_block(e, &Ctx::default())
}

struct DagBuilder {
    dag: HopDag,
    /// Block-local variable bindings (name → node).
    env: FxHashMap<String, HopId>,
    roots: Vec<Root>,
}

impl DagBuilder {
    fn new() -> DagBuilder {
        DagBuilder {
            dag: HopDag::new(),
            env: FxHashMap::default(),
            roots: Vec::new(),
        }
    }

    fn bind(&mut self, name: &str, id: HopId) {
        self.env.insert(name.to_string(), id);
        // Keep only the last binding per name in the roots.
        self.roots
            .retain(|r| !matches!(r, Root::Bind(n, _) if n == name));
        self.roots.push(Root::Bind(name.to_string(), id));
    }

    fn effect(&mut self, id: HopId) {
        self.roots.push(Root::Effect(id));
    }

    fn finish(self) -> BasicBlock {
        BasicBlock::new(self.dag, self.roots)
    }

    fn flush(&mut self, blocks: &mut Vec<Block>) {
        if self.roots.is_empty() {
            return;
        }
        let b = std::mem::replace(self, DagBuilder::new());
        let block = b.finish();
        // Static rewrites + DCE happen once per block at compile time.
        let mut block = block;
        let _span = sysds_obs::Span::enter(sysds_obs::Phase::Rewrite, "static");
        let new_roots = rewrites::rewrite_static(&mut block.dag, &root_ids(&block.roots));
        for (root, &nid) in block.roots.iter_mut().zip(&new_roots) {
            match root {
                Root::Bind(_, id) | Root::Effect(id) => *id = nid,
            }
        }
        blocks.push(Block::Basic(block));
    }

    fn var(&mut self, name: &str) -> HopId {
        if let Some(&id) = self.env.get(name) {
            id
        } else {
            self.dag.add(HopOp::Var(name.to_string()), vec![])
        }
    }

    fn expr(&mut self, e: &Expr, ctx: &Ctx) -> Result<HopId> {
        Ok(match e {
            Expr::Const(v) => self.dag.lit(v.clone()),
            Expr::Var(n) => self.var(n),
            Expr::Unary(UnOp::Neg, a) => {
                let id = self.expr(a, ctx)?;
                self.dag.add(HopOp::Unary(UnaryOp::Neg), vec![id])
            }
            Expr::Unary(UnOp::Not, a) => {
                let id = self.expr(a, ctx)?;
                self.dag.add(HopOp::Unary(UnaryOp::Not), vec![id])
            }
            Expr::Binary(op, a, b) => {
                let (l, r) = (self.expr(a, ctx)?, self.expr(b, ctx)?);
                let hop = match op {
                    BinOp::MatMul => HopOp::MatMul,
                    BinOp::Add => HopOp::Binary(BinaryOp::Add),
                    BinOp::Sub => HopOp::Binary(BinaryOp::Sub),
                    BinOp::Mul => HopOp::Binary(BinaryOp::Mul),
                    BinOp::Div => HopOp::Binary(BinaryOp::Div),
                    BinOp::Pow => HopOp::Binary(BinaryOp::Pow),
                    BinOp::Mod => HopOp::Binary(BinaryOp::Mod),
                    BinOp::IntDiv => HopOp::Binary(BinaryOp::IntDiv),
                    BinOp::Eq => HopOp::Binary(BinaryOp::Eq),
                    BinOp::Neq => HopOp::Binary(BinaryOp::Neq),
                    BinOp::Lt => HopOp::Binary(BinaryOp::Lt),
                    BinOp::Le => HopOp::Binary(BinaryOp::Le),
                    BinOp::Gt => HopOp::Binary(BinaryOp::Gt),
                    BinOp::Ge => HopOp::Binary(BinaryOp::Ge),
                    BinOp::And => HopOp::Binary(BinaryOp::And),
                    BinOp::Or => HopOp::Binary(BinaryOp::Or),
                };
                self.dag.add(hop, vec![l, r])
            }
            Expr::Seq(a, b) => {
                let (f, t) = (self.expr(a, ctx)?, self.expr(b, ctx)?);
                let one = self.dag.lit(ScalarValue::I64(1));
                self.dag.add(HopOp::Nary("seq"), vec![f, t, one])
            }
            Expr::Index { target, rows, cols } => {
                let t = self.expr(target, ctx)?;
                let (rl, rh) = self.index_bounds(rows, t, true, ctx)?;
                let (cl, ch) = self.index_bounds(cols, t, false, ctx)?;
                self.dag.add(HopOp::Index, vec![t, rl, rh, cl, ch])
            }
            Expr::Call { name, args } => self.call(name, args, ctx)?,
        })
    }

    /// 1-based inclusive `(lo, hi)` bound nodes for one index dimension.
    fn index_bounds(
        &mut self,
        ix: &IndexExpr,
        target: HopId,
        is_rows: bool,
        ctx: &Ctx,
    ) -> Result<(HopId, HopId)> {
        Ok(match ix {
            IndexExpr::All => {
                let one = self.dag.lit(ScalarValue::I64(1));
                let dim = self.dag.add(
                    HopOp::Nary(if is_rows { "nrow" } else { "ncol" }),
                    vec![target],
                );
                (one, dim)
            }
            IndexExpr::Single(e) => {
                let id = self.expr(e, ctx)?;
                (id, id)
            }
            IndexExpr::Range(a, b) => (self.expr(a, ctx)?, self.expr(b, ctx)?),
        })
    }

    fn index_assign(
        &mut self,
        target: &str,
        rows: &IndexExpr,
        cols: &IndexExpr,
        value: &Expr,
        ctx: &Ctx,
    ) -> Result<HopId> {
        let t = self.var(target);
        let v = self.expr(value, ctx)?;
        let (rl, rh) = self.index_bounds(rows, t, true, ctx)?;
        let (cl, ch) = self.index_bounds(cols, t, false, ctx)?;
        Ok(self.dag.add(HopOp::LeftIndex, vec![t, v, rl, rh, cl, ch]))
    }

    fn call(&mut self, name: &str, args: &[Arg], ctx: &Ctx) -> Result<HopId> {
        if ctx.defs.contains_key(name) {
            return Err(SysDsError::compile(format!(
                "call to function '{name}' must be a simple assignment (e.g. x = {name}(...))"
            )));
        }
        // Unary math builtins.
        if args.len() == 1 && args[0].name.is_none() {
            if let Some(u) = unary_builtin(name) {
                let id = self.expr(&args[0].value, ctx)?;
                return Ok(self.dag.add(HopOp::Unary(u), vec![id]));
            }
            if let Some((f, d)) = agg_builtin(name) {
                let id = self.expr(&args[0].value, ctx)?;
                return Ok(self.dag.add(HopOp::Agg(f, d), vec![id]));
            }
            if name == "t" {
                let id = self.expr(&args[0].value, ctx)?;
                return Ok(self.dag.add(HopOp::Transpose, vec![id]));
            }
        }
        // min/max with two arguments are element-wise.
        if (name == "min" || name == "max") && args.len() == 2 {
            let l = self.expr(&args[0].value, ctx)?;
            let r = self.expr(&args[1].value, ctx)?;
            let op = if name == "min" {
                BinaryOp::Min
            } else {
                BinaryOp::Max
            };
            return Ok(self.dag.add(HopOp::Binary(op), vec![l, r]));
        }
        // print with multiple args concatenates.
        if name == "print" && args.len() > 1 {
            let mut acc = self.expr(&args[0].value, ctx)?;
            for a in &args[1..] {
                let sep = self.dag.lit(ScalarValue::Str(" ".into()));
                let v = self.expr(&a.value, ctx)?;
                acc = self.dag.add(HopOp::Binary(BinaryOp::Add), vec![acc, sep]);
                acc = self.dag.add(HopOp::Binary(BinaryOp::Add), vec![acc, v]);
            }
            return Ok(self.dag.add(HopOp::Nary("print"), vec![acc]));
        }
        // General runtime builtins with signature-based argument binding.
        let Some(sig) = builtin_signature(name) else {
            return Err(SysDsError::compile(format!("unknown function '{name}'")));
        };
        let exprs = bind_builtin_args(name, sig, args)?;
        let mut input_ids = Vec::with_capacity(exprs.len());
        for e in &exprs {
            input_ids.push(self.expr(e, ctx)?);
        }
        Ok(self.dag.add(HopOp::Nary(sig.opcode), input_ids))
    }
}

fn root_ids(roots: &[Root]) -> Vec<HopId> {
    roots.iter().map(Root::id).collect()
}

fn unary_builtin(name: &str) -> Option<UnaryOp> {
    Some(match name {
        "abs" => UnaryOp::Abs,
        "exp" => UnaryOp::Exp,
        "log" => UnaryOp::Log,
        "sqrt" => UnaryOp::Sqrt,
        "sin" => UnaryOp::Sin,
        "cos" => UnaryOp::Cos,
        "tan" => UnaryOp::Tan,
        "sign" => UnaryOp::Sign,
        "round" => UnaryOp::Round,
        "floor" => UnaryOp::Floor,
        "ceil" | "ceiling" => UnaryOp::Ceil,
        "sigmoid" => UnaryOp::Sigmoid,
        _ => return None,
    })
}

fn agg_builtin(name: &str) -> Option<(AggFn, Direction)> {
    Some(match name {
        "sum" => (AggFn::Sum, Direction::Full),
        "mean" => (AggFn::Mean, Direction::Full),
        "min" => (AggFn::Min, Direction::Full),
        "max" => (AggFn::Max, Direction::Full),
        "var" => (AggFn::Var, Direction::Full),
        "sd" => (AggFn::Sd, Direction::Full),
        "sumSq" => (AggFn::SumSq, Direction::Full),
        "rowSums" => (AggFn::Sum, Direction::Row),
        "rowMeans" => (AggFn::Mean, Direction::Row),
        "rowMins" => (AggFn::Min, Direction::Row),
        "rowMaxs" => (AggFn::Max, Direction::Row),
        "rowVars" => (AggFn::Var, Direction::Row),
        "rowSds" => (AggFn::Sd, Direction::Row),
        "colSums" => (AggFn::Sum, Direction::Col),
        "colMeans" => (AggFn::Mean, Direction::Col),
        "colMins" => (AggFn::Min, Direction::Col),
        "colMaxs" => (AggFn::Max, Direction::Col),
        "colVars" => (AggFn::Var, Direction::Col),
        "colSds" => (AggFn::Sd, Direction::Col),
        _ => return None,
    })
}

/// Signature of a runtime builtin: canonical parameter order and defaults.
pub struct BuiltinSig {
    pub opcode: &'static str,
    pub params: Vec<(&'static str, Option<ScalarValue>)>,
}

macro_rules! sig {
    ($op:expr; $(($n:expr, $d:expr)),* $(,)?) => {
        BuiltinSig { opcode: $op, params: vec![$(($n, $d)),*] }
    };
}

/// Look up a builtin's signature by surface name.
pub fn builtin_signature(name: &str) -> Option<&'static BuiltinSig> {
    use ScalarValue::*;
    // Each arm hands out a &'static BuiltinSig backed by a OnceLock.
    macro_rules! entry {
        ($sig:expr) => {{
            static SIG: std::sync::OnceLock<BuiltinSig> = std::sync::OnceLock::new();
            Some(SIG.get_or_init(|| $sig))
        }};
    }
    match name {
        "rand" => entry!(sig!("rand";
            ("rows", None), ("cols", None), ("min", Some(F64(0.0))), ("max", Some(F64(1.0))),
            ("sparsity", Some(F64(1.0))), ("seed", Some(I64(-1))), ("pdf", Some(Str("uniform".into()))))),
        "matrix" => entry!(sig!("matrix"; ("data", None), ("rows", None), ("cols", None))),
        "seq" => entry!(sig!("seq"; ("from", None), ("to", None), ("incr", Some(I64(1))))),
        "solve" => entry!(sig!("solve"; ("a", None), ("b", None))),
        "inv" => entry!(sig!("inv"; ("x", None))),
        "cholesky" => entry!(sig!("cholesky"; ("x", None))),
        "det" => entry!(sig!("det"; ("x", None))),
        "diag" => entry!(sig!("diag"; ("x", None))),
        "trace" => entry!(sig!("trace"; ("x", None))),
        "nrow" => entry!(sig!("nrow"; ("x", None))),
        "ncol" => entry!(sig!("ncol"; ("x", None))),
        "length" => entry!(sig!("length"; ("x", None))),
        "nnz" => entry!(sig!("nnz"; ("x", None))),
        "cbind" => entry!(sig!("cbind"; ("a", None), ("b", None))),
        "rbind" => entry!(sig!("rbind"; ("a", None), ("b", None))),
        "cumsum" => entry!(sig!("cumsum"; ("x", None))),
        "cumprod" => entry!(sig!("cumprod"; ("x", None))),
        "rev" => entry!(sig!("rev"; ("x", None))),
        "rowIndexMax" => entry!(sig!("rowIndexMax"; ("x", None))),
        "quantile" => entry!(sig!("quantile"; ("x", None), ("p", None))),
        "median" => entry!(sig!("median"; ("x", None))),
        "table" => entry!(sig!("table"; ("a", None), ("b", None))),
        "outer" => entry!(sig!("outer"; ("a", None), ("b", None), ("op", Some(Str("*".into()))))),
        "order" => entry!(sig!("order";
            ("target", None), ("by", Some(I64(1))), ("decreasing", Some(Bool(false))),
            ("index.return", Some(Bool(false))))),
        "removeEmpty" => entry!(sig!("removeEmpty";
            ("target", None), ("margin", Some(Str("rows".into()))))),
        "replace" => entry!(sig!("replace";
            ("target", None), ("pattern", None), ("replacement", None))),
        "ifelse" => entry!(sig!("ifelse"; ("test", None), ("yes", None), ("no", None))),
        "as.scalar" => entry!(sig!("as.scalar"; ("x", None))),
        "as.matrix" => entry!(sig!("as.matrix"; ("x", None))),
        "as.integer" => entry!(sig!("as.integer"; ("x", None))),
        "as.double" => entry!(sig!("as.double"; ("x", None))),
        "as.logical" => entry!(sig!("as.logical"; ("x", None))),
        "toString" => entry!(sig!("toString"; ("x", None))),
        "print" => entry!(sig!("print"; ("x", None))),
        "stop" => entry!(sig!("stop"; ("x", None))),
        "read" => entry!(sig!("read";
            ("file", None), ("format", Some(Str("csv".into()))),
            ("data_type", Some(Str("matrix".into()))), ("header", Some(Bool(false))))),
        "write" => entry!(sig!("write";
            ("x", None), ("file", None), ("format", Some(Str("csv".into()))))),
        _ => None,
    }
}

fn bind_builtin_args(name: &str, sig: &BuiltinSig, args: &[Arg]) -> Result<Vec<Expr>> {
    let mut bound: Vec<Option<Expr>> = vec![None; sig.params.len()];
    let mut pos = 0usize;
    for a in args {
        match &a.name {
            Some(n) => {
                let idx = sig.params.iter().position(|(p, _)| p == n).ok_or_else(|| {
                    SysDsError::compile(format!("unknown argument '{n}' for '{name}'"))
                })?;
                bound[idx] = Some(a.value.clone());
            }
            None => {
                while pos < bound.len() && bound[pos].is_some() {
                    pos += 1;
                }
                if pos >= bound.len() {
                    return Err(SysDsError::compile(format!(
                        "too many arguments for '{name}'"
                    )));
                }
                bound[pos] = Some(a.value.clone());
                pos += 1;
            }
        }
    }
    let mut out = Vec::with_capacity(sig.params.len());
    for ((pname, default), b) in sig.params.iter().zip(bound) {
        match (b, default) {
            (Some(v), _) => out.push(v),
            (None, Some(d)) => out.push(Expr::Const(d.clone())),
            (None, None) => {
                return Err(SysDsError::compile(format!(
                    "missing argument '{pname}' for '{name}'"
                )))
            }
        }
    }
    Ok(out)
}

/// Whether a name is a runtime builtin (in-DAG executable).
pub fn is_runtime_builtin(name: &str) -> bool {
    builtin_signature(name).is_some()
        || unary_builtin(name).is_some()
        || agg_builtin(name).is_some()
        || matches!(name, "t" | "min" | "max")
}

/// Runtime builtins executed as call blocks (frame-typed arguments and/or
/// multiple outputs).
pub fn is_multi_output_builtin(name: &str) -> bool {
    matches!(
        name,
        "transformencode" | "transformapply" | "paramserv" | "eigen"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn compile(src: &str) -> CompiledProgram {
        compile_program(&parse_program(src).unwrap(), &|_| None).unwrap()
    }

    #[test]
    fn straight_line_merges_into_one_block() {
        let p = compile("a = 1 + 2\nb = a * 3\nprint(toString(b))");
        assert_eq!(p.blocks.len(), 1);
        let Block::Basic(b) = &p.blocks[0] else {
            panic!()
        };
        // constant folding collapsed everything into literals
        assert!(b.roots.len() >= 2);
    }

    #[test]
    fn control_flow_delineates_blocks() {
        let p = compile("a = 1\nif (x > 0) { b = 2 }\nc = 3");
        assert_eq!(p.blocks.len(), 3);
        assert!(matches!(p.blocks[0], Block::Basic(_)));
        assert!(matches!(p.blocks[1], Block::If { .. }));
        assert!(matches!(p.blocks[2], Block::Basic(_)));
    }

    #[test]
    fn static_branch_removal() {
        // if (FALSE) is removed entirely; if (TRUE) is spliced inline
        let p = compile("if (FALSE) { a = slow_path_nope(1) }\nb = 2");
        assert_eq!(p.blocks.len(), 1);
        let p = compile("if (TRUE) { a = 1 } else { a = bad_fn(2) }\nb = a");
        assert_eq!(p.blocks.len(), 1);
    }

    #[test]
    fn cse_across_statements() {
        let p = compile("a = t(X) %*% X\nb = t(X) %*% X\nc = a + b");
        let Block::Basic(bb) = &p.blocks[0] else {
            panic!()
        };
        // One tsmm node only (fused and CSE'd).
        let tsmm_count = bb
            .dag
            .nodes()
            .iter()
            .filter(|n| n.op == HopOp::Tsmm)
            .count();
        assert_eq!(tsmm_count, 1);
    }

    #[test]
    fn tsmm_fusion_applies() {
        let p = compile("g = t(X) %*% X");
        let Block::Basic(bb) = &p.blocks[0] else {
            panic!()
        };
        assert!(bb.dag.nodes().iter().any(|n| n.op == HopOp::Tsmm));
    }

    #[test]
    fn user_function_call_becomes_call_block() {
        let src = r#"
            f = function(matrix[double] X) return (matrix[double] Y) {
                if (nrow(X) > 3) { Y = X } else { Y = t(X) }
            }
            Z = f(A)
        "#;
        let p = compile(src);
        assert!(p.functions.contains_key("f"));
        assert!(matches!(p.blocks[0], Block::Call { .. }));
    }

    #[test]
    fn straight_line_function_is_inlined() {
        let src = r#"
            sq = function(matrix[double] X) return (matrix[double] Y) { Y = X * X }
            Z = sq(A)
        "#;
        let p = compile(src);
        // Inlined: the top level is a single basic block, no Call.
        assert_eq!(p.blocks.len(), 1);
        assert!(matches!(p.blocks[0], Block::Basic(_)));
    }

    #[test]
    fn inlining_enables_cross_function_cse() {
        // Both calls compute X*X; after inlining, CSE should share it.
        let src = r#"
            sq = function(matrix[double] X) return (matrix[double] Y) { Y = X * X }
            a = sq(A)
            b = sq(A)
            c = a + b
        "#;
        let p = compile(src);
        let Block::Basic(bb) = &p.blocks[0] else {
            panic!()
        };
        let muls = bb
            .dag
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, HopOp::Binary(BinaryOp::Mul)))
            .count();
        assert_eq!(muls, 1, "X*X must be CSE'd across inlined calls");
    }

    #[test]
    fn named_args_resolved_per_signature() {
        let p = compile("X = rand(cols=3, rows=5, seed=42)");
        let Block::Basic(bb) = &p.blocks[0] else {
            panic!()
        };
        let rand = bb
            .dag
            .nodes()
            .iter()
            .find(|n| n.op == HopOp::Nary("rand"))
            .unwrap();
        // canonical order: rows, cols, min, max, sparsity, seed, pdf
        assert_eq!(bb.dag.as_lit(rand.inputs[0]), Some(&ScalarValue::I64(5)));
        assert_eq!(bb.dag.as_lit(rand.inputs[1]), Some(&ScalarValue::I64(3)));
        assert_eq!(bb.dag.as_lit(rand.inputs[5]), Some(&ScalarValue::I64(42)));
    }

    #[test]
    fn unknown_function_rejected() {
        let err = compile_program(&parse_program("x = frobnicate(1)").unwrap(), &|_| None);
        assert!(err.is_err());
    }

    #[test]
    fn too_many_args_rejected() {
        let err = compile_program(&parse_program("x = nrow(a, b)").unwrap(), &|_| None);
        assert!(err.is_err());
    }

    #[test]
    fn multi_assign_needs_multi_output() {
        let err = compile_program(&parse_program("[a, b] = nrow(X)").unwrap(), &|_| None);
        assert!(err.is_err());
    }

    #[test]
    fn builtin_registry_resolution() {
        let registry = |name: &str| -> Option<Program> {
            if name == "double_it" {
                Some(
                    parse_program(
                        "double_it = function(matrix[double] X) return (matrix[double] Y) { Y = X * 2 }",
                    )
                    .unwrap(),
                )
            } else {
                None
            }
        };
        let p = compile_program(&parse_program("Z = double_it(A)").unwrap(), &registry).unwrap();
        // inlined (straight-line)
        assert_eq!(p.blocks.len(), 1);
        assert!(matches!(p.blocks[0], Block::Basic(_)));
    }

    #[test]
    fn live_ins_detected() {
        let p = compile("a = X + Y\nb = a * X");
        let Block::Basic(bb) = &p.blocks[0] else {
            panic!()
        };
        let mut ins = bb.live_ins();
        ins.sort();
        assert_eq!(ins, vec!["X".to_string(), "Y".to_string()]);
    }

    #[test]
    fn index_assign_builds_left_index() {
        let p = compile("B[, i] = v");
        let Block::Basic(bb) = &p.blocks[0] else {
            panic!()
        };
        assert!(bb.dag.nodes().iter().any(|n| n.op == HopOp::LeftIndex));
        // the binding for B points at the LeftIndex node
        let Root::Bind(name, id) = &bb.roots[bb.roots.len() - 1] else {
            panic!()
        };
        assert_eq!(name, "B");
        assert_eq!(bb.dag.node(*id).op, HopOp::LeftIndex);
    }

    #[test]
    fn function_default_must_be_constant() {
        let src = "f = function(matrix[double] X, double r = nrow(X)) return (matrix[double] Y) { Y = X }\nZ = f(A)";
        assert!(compile_program(&parse_program(src).unwrap(), &|_| None).is_err());
    }

    #[test]
    fn rebinding_keeps_single_root_per_name() {
        let p = compile("a = X + 1\na = a + 1\nb = a");
        let Block::Basic(bb) = &p.blocks[0] else {
            panic!()
        };
        let a_binds = bb
            .roots
            .iter()
            .filter(|r| matches!(r, Root::Bind(n, _) if n == "a"))
            .count();
        assert_eq!(a_binds, 1);
    }
}
